#!/usr/bin/env bash
# Tier-2 verification gate: build, vet, project invariants (texlint), and
# the race-detector test suite. Any diagnostic or failure exits non-zero.
# Works from a clean checkout with no network access (texlint type-checks
# against the source importer; nothing is downloaded).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> texlint"
go run ./cmd/texlint -baseline texlint.baseline ./...

echo "==> texlint -fixtures"
go run ./cmd/texlint -fixtures

echo "==> go test -race"
go test -race ./...

# Tier 3 (opt-in): wall-clock host benchmarks with a regression gate.
# Machine-dependent, so not part of the default gate.
if [[ "${TEXID_BENCH:-0}" == 1 ]]; then
  scripts/bench.sh
fi

echo "OK"
