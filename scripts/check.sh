#!/usr/bin/env bash
# Tier-2 verification gate: build, vet, project invariants (texlint), and
# the race-detector test suite. Any diagnostic or failure exits non-zero.
# Works from a clean checkout with no network access (texlint type-checks
# against the source importer; nothing is downloaded).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> texlint"
go run ./cmd/texlint -baseline texlint.baseline ./...

# Every registered check must ship a fixture package: a check without one
# has no proof it still catches its true positives.
echo "==> fixture coverage"
for c in $(go run ./cmd/texlint -list-checks); do
  if [[ ! -d "internal/analysis/testdata/src/$c" ]]; then
    echo "check.sh: check '$c' has no fixture directory under internal/analysis/testdata/src/" >&2
    exit 1
  fi
done

echo "==> texlint -fixtures"
go run ./cmd/texlint -fixtures

# The race suite also runs as its own CI job; TEXID_SKIP_RACE lets that
# job's sibling skip the duplicate run. Local runs always include it.
if [[ "${TEXID_SKIP_RACE:-0}" != 1 ]]; then
  echo "==> go test -race"
  go test -race ./...
fi

# Tier 3 (opt-in): wall-clock host benchmarks with a regression gate.
# Machine-dependent, so not part of the default gate.
if [[ "${TEXID_BENCH:-0}" == 1 ]]; then
  scripts/bench.sh
fi

echo "OK"
