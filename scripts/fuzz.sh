#!/usr/bin/env bash
# Fuzz smoke: run every fuzz target for a short budget (default 10s each).
# This is not a soak — it replays the committed corpus and gives the engine
# a brief window to find new crashers. Longer local runs:
#   FUZZTIME=5m scripts/fuzz.sh
# A crasher minimized by `go test -fuzz` lands in the package's
# testdata/fuzz/<Target>/ directory; commit it so the plain test suite
# replays it forever.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

# Enumerate fuzz targets per package: `go test -fuzz` accepts only one
# target at a time, so drive them individually.
fail=0
for pkg in $(go list ./...); do
  targets=$(go test "$pkg" -list '^Fuzz' 2>/dev/null | grep '^Fuzz' || true)
  [[ -z "$targets" ]] && continue
  for t in $targets; do
    echo "==> fuzz $pkg $t ($FUZZTIME)"
    if ! go test "$pkg" -run='^$' -fuzz="^${t}\$" -fuzztime="$FUZZTIME"; then
      fail=1
    fi
  done
done

exit "$fail"
