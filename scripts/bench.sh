#!/usr/bin/env bash
# Tier-3 (opt-in) wall-clock benchmark gate: runs the host benchmark suite
# (cmd/texbench -wallclock) and fails if any op's ns/op regressed more than
# 20% against the committed BENCH_HOST.json baseline.
#
#   scripts/bench.sh                          # compare against committed baseline
#   COUNT=5 scripts/bench.sh                  # more runs per op (less noise)
#   UPDATE=1 scripts/bench.sh                 # re-measure and update BENCH_HOST.json
#   TEXID_BENCH_BASELINE=skip scripts/bench.sh  # measure only, no regression gate
#
# The baseline is validated before the (slow) suite runs: a missing or
# malformed BENCH_HOST.json is a hard error, never a silent re-measure.
#
# Wall-clock numbers are machine-dependent: the committed baseline only
# gates relative regressions on the machine that runs the suite, so treat
# failures on very different hardware as a signal to re-baseline, not as a
# hard error.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"

if [[ "${UPDATE:-0}" == 1 ]]; then
  echo "==> texbench -wallclock (writing BENCH_HOST.json)"
  go run ./cmd/texbench -wallclock -count "$COUNT" -out BENCH_HOST.json
  echo "OK"
  exit 0
fi

if [[ "${TEXID_BENCH_BASELINE:-}" == "skip" ]]; then
  echo "==> texbench -wallclock (regression gate skipped: TEXID_BENCH_BASELINE=skip)"
  go run ./cmd/texbench -wallclock -count "$COUNT"
  echo "OK"
  exit 0
fi

if [[ ! -f BENCH_HOST.json ]]; then
  {
    echo "error: BENCH_HOST.json not found — there is no baseline to gate against."
    echo "  record one:       UPDATE=1 scripts/bench.sh"
    echo "  or skip the gate: TEXID_BENCH_BASELINE=skip scripts/bench.sh"
  } >&2
  exit 1
fi

if ! go run ./cmd/texbench -validate-baseline -baseline BENCH_HOST.json; then
  {
    echo "error: BENCH_HOST.json is malformed or empty."
    echo "  re-record it with: UPDATE=1 scripts/bench.sh"
  } >&2
  exit 1
fi

echo "==> texbench -wallclock (vs committed BENCH_HOST.json)"
go run ./cmd/texbench -wallclock -count "$COUNT" -baseline BENCH_HOST.json
echo "OK"
