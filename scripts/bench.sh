#!/usr/bin/env bash
# Tier-3 (opt-in) benchmark gates:
#
#   1. Wall-clock host suite (cmd/texbench -wallclock): fails if any op's
#      ns/op regressed more than 20% against the committed BENCH_HOST.json
#      baseline, or if an FP16 fast-path op exceeds its absolute ns/op
#      ceiling (see MAX_NS below). Machine-dependent.
#   2. Serving suite (cmd/texbench -serving): deterministic simulated QPS
#      of the micro-batching admission layer vs the serialized path. Fails
#      on lost result identity, a sub-3x speedup at concurrency 16, or a
#      >10% batched-QPS drop against the committed BENCH_SERVE.json.
#      Bit-reproducible — the same gate runs in CI.
#   3. Soak suite (cmd/texbench -soak): open-loop sustained-load scenarios
#      (steady + enrollment churn) with coordinated-omission-safe tail
#      latency and GC telemetry, a deterministic sim-clock soak, and
#      zero-drift allocation probes, gated against BENCH_SOAK.json. The
#      wall half is machine-dependent (50% p99 tolerance); the sim and
#      allocs halves are exact and also gate in CI via -soak-smoke.
#
#   scripts/bench.sh                          # compare against committed baselines
#   COUNT=5 scripts/bench.sh                  # more wall-clock runs per op (less noise)
#   UPDATE=1 scripts/bench.sh                 # re-measure and update both baselines
#   TEXID_BENCH_BASELINE=skip scripts/bench.sh  # measure only, no regression gates
#
# Baselines are validated before the (slow) suites run: a missing or
# malformed baseline file is a hard error, never a silent re-measure.
#
# Wall-clock numbers are machine-dependent: the committed BENCH_HOST.json
# only gates relative regressions on the machine that runs the suite, so
# treat failures on very different hardware as a signal to re-baseline, not
# as a hard error. The serving gate's simulated half has no such caveat.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"

# Absolute ns/op ceilings for the FP16 fast path — hard speedup floors, not
# relative regression checks. hgemm_tn_256x256x128 measured 55,099,813 ns/op
# before the table-driven conversion + F16C fused-rounding kernels; the
# ceiling pins a >=10x speedup. engine_search_steady_fp16 gets an absolute
# 200 ms budget (was ~1.71 s). Enforced in both the gated and the UPDATE=1
# flows so a re-baseline can never quietly absorb losing the fast path.
MAX_NS=(
  -max-ns hgemm_tn_256x256x128=5509981
  -max-ns engine_search_steady_fp16=200000000
  # The Hamming-prefilter pair: engine_search_steady_unpruned_10x measured
  # ~992 ms/op on the 160-image shard (GOMAXPROCS=1); the pruned ceiling
  # pins the prefiltered search to >=5x under that, and binq_scan_1m keeps
  # the raw 1M-code scan kernel under 300 ms even single-threaded.
  -max-ns engine_search_steady_pruned=198000000
  -max-ns binq_scan_1m=300000000
)

if [[ "${UPDATE:-0}" == 1 ]]; then
  echo "==> texbench -wallclock (writing BENCH_HOST.json)"
  go run ./cmd/texbench -wallclock -count "$COUNT" "${MAX_NS[@]}" -out BENCH_HOST.json
  echo "==> texbench -serving (writing BENCH_SERVE.json)"
  go run ./cmd/texbench -serving -out BENCH_SERVE.json
  echo "==> texbench -soak (writing BENCH_SOAK.json)"
  go run ./cmd/texbench -soak -soak-sweep -out BENCH_SOAK.json
  echo "OK"
  exit 0
fi

if [[ "${TEXID_BENCH_BASELINE:-}" == "skip" ]]; then
  echo "==> texbench -wallclock (regression gate skipped: TEXID_BENCH_BASELINE=skip)"
  go run ./cmd/texbench -wallclock -count "$COUNT"
  echo "==> texbench -serving (regression gate skipped: TEXID_BENCH_BASELINE=skip)"
  go run ./cmd/texbench -serving -serving-wall
  echo "==> texbench -soak (regression gate skipped: TEXID_BENCH_BASELINE=skip)"
  go run ./cmd/texbench -soak -soak-sweep
  echo "OK"
  exit 0
fi

for f in BENCH_HOST.json BENCH_SERVE.json BENCH_SOAK.json; do
  if [[ ! -f "$f" ]]; then
    {
      echo "error: $f not found — there is no baseline to gate against."
      echo "  record one:       UPDATE=1 scripts/bench.sh"
      echo "  or skip the gate: TEXID_BENCH_BASELINE=skip scripts/bench.sh"
    } >&2
    exit 1
  fi
done

if ! go run ./cmd/texbench -validate-baseline -baseline BENCH_HOST.json; then
  {
    echo "error: BENCH_HOST.json is malformed or empty."
    echo "  re-record it with: UPDATE=1 scripts/bench.sh"
  } >&2
  exit 1
fi
if ! go run ./cmd/texbench -serving -validate-baseline -baseline BENCH_SERVE.json; then
  {
    echo "error: BENCH_SERVE.json is malformed or empty."
    echo "  re-record it with: UPDATE=1 scripts/bench.sh"
  } >&2
  exit 1
fi
if ! go run ./cmd/texbench -soak -validate-baseline -baseline BENCH_SOAK.json; then
  {
    echo "error: BENCH_SOAK.json is malformed or empty."
    echo "  re-record it with: UPDATE=1 scripts/bench.sh"
  } >&2
  exit 1
fi

echo "==> texbench -wallclock (vs committed BENCH_HOST.json)"
go run ./cmd/texbench -wallclock -count "$COUNT" "${MAX_NS[@]}" -baseline BENCH_HOST.json
echo "==> texbench -serving (vs committed BENCH_SERVE.json)"
go run ./cmd/texbench -serving -baseline BENCH_SERVE.json
echo "==> texbench -soak (vs committed BENCH_SOAK.json)"
go run ./cmd/texbench -soak -baseline BENCH_SOAK.json
echo "OK"
