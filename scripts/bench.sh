#!/usr/bin/env bash
# Tier-3 (opt-in) wall-clock benchmark gate: runs the host benchmark suite
# (cmd/texbench -wallclock) and fails if any op's ns/op regressed more than
# 20% against the committed BENCH_HOST.json baseline.
#
#   scripts/bench.sh              # compare against committed baseline
#   COUNT=5 scripts/bench.sh      # more runs per op (less noise)
#   UPDATE=1 scripts/bench.sh     # re-measure and update BENCH_HOST.json
#
# Wall-clock numbers are machine-dependent: the committed baseline only
# gates relative regressions on the machine that runs the suite, so treat
# failures on very different hardware as a signal to re-baseline, not as a
# hard error.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"

if [[ "${UPDATE:-0}" == 1 || ! -f BENCH_HOST.json ]]; then
  echo "==> texbench -wallclock (writing BENCH_HOST.json)"
  go run ./cmd/texbench -wallclock -count "$COUNT" -out BENCH_HOST.json
else
  echo "==> texbench -wallclock (vs committed BENCH_HOST.json)"
  go run ./cmd/texbench -wallclock -count "$COUNT" -baseline BENCH_HOST.json
fi

echo "OK"
