package texid

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func prunedSmallConfig() Config {
	cfg := smallConfig()
	cfg.Engine.PruneC = 3
	return cfg
}

// TestSnapshotPrunedRoundTrip: a pruning system's snapshot carries the
// learned binarization thresholds and the enrolled code panels, so the
// restored system searches identically — and re-saving it reproduces the
// exact same bytes (codes are restored bit-for-bit, not re-encoded).
func TestSnapshotPrunedRoundTrip(t *testing.T) {
	sys, err := Open(prunedSmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	images := make(map[int]*Image)
	for id := 1; id <= 5; id++ {
		images[id] = smallTexture(int64(id * 3))
		if err := sys.EnrollImage(id, images[id]); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != snapshotVersion2 {
		t.Fatalf("pruned snapshot version %d, want %d", v, snapshotVersion2)
	}

	restored, err := Open(prunedSmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n, err := restored.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("restored %d references, want 5", n)
	}

	want := sys.eng.Thresholds()
	got := restored.eng.Thresholds()
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("thresholds: %d restored vs %d saved", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("threshold %d = %g, want %g", i, got[i], want[i])
		}
	}

	for id := 1; id <= 5; id++ {
		res, err := restored.SearchImage(CaptureQuery(images[id], int64(id), 0.25))
		if err != nil {
			t.Fatal(err)
		}
		if res.ID != id || !res.Accepted {
			t.Fatalf("texture %d lost in pruned snapshot: %+v", id, res)
		}
	}

	// Re-saving the restored system must reproduce the snapshot byte for
	// byte: thresholds are frozen and codes round-trip without re-encoding.
	var buf2 bytes.Buffer
	if err := restored.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-saved pruned snapshot differs: %d vs %d bytes", buf.Len(), buf2.Len())
	}
}

// TestSnapshotPrunedIntoUnpruned: a pruned (v2) snapshot cannot be loaded
// into a system with pruning disabled — the thresholds have nowhere to go
// and silently dropping them would change search behavior on re-save.
func TestSnapshotPrunedIntoUnpruned(t *testing.T) {
	sys, err := Open(prunedSmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.EnrollImage(1, smallTexture(7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}

	plain, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("pruned snapshot accepted by pruning-off system")
	}
}

// TestSnapshotPrunedCorruption: damage inside the v2 threshold section —
// truncation at every boundary and absurd dims — must fail cleanly.
func TestSnapshotPrunedCorruption(t *testing.T) {
	sys, err := Open(prunedSmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.EnrollImage(1, smallTexture(9)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()

	// The threshold section starts at offset 5: u32 dim, then dim floats.
	dim := int(binary.LittleEndian.Uint32(b[5:9]))
	if dim == 0 {
		t.Fatal("no thresholds in pruned snapshot")
	}
	for _, cut := range []int{6, 9, 9 + 4*dim/2, 9 + 4*dim - 1} {
		fresh, _ := Open(prunedSmallConfig())
		if _, err := fresh.Load(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("threshold section truncated at %d accepted", cut)
		}
	}

	// A dim claiming gigabytes of thresholds is corruption, not an
	// allocation request.
	mut := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(mut[5:9], 1<<30)
	fresh, _ := Open(prunedSmallConfig())
	if _, err := fresh.Load(bytes.NewReader(mut)); err == nil {
		t.Fatal("absurd threshold dim accepted")
	}

	// Wrong dim for the engine: SetThresholds must reject a mismatch.
	mut2 := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(mut2[5:9], uint32(dim-1))
	fresh2, _ := Open(prunedSmallConfig())
	if _, err := fresh2.Load(bytes.NewReader(mut2)); err == nil {
		t.Fatal("threshold dim mismatch accepted")
	}
}
