module texid

go 1.22
