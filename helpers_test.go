package texid

import (
	"texid/internal/cluster"
	"texid/internal/sift"
	"texid/internal/texture"
)

// Test-only helpers bridging the public facade and internal packages.

func defaultSmallParams() texture.GenParams {
	p := texture.DefaultGenParams()
	p.Size = 128
	p.Flakes = 500
	return p
}

func generateWith(seed int64, p texture.GenParams) *Image {
	return texture.Generate(seed, p)
}

// sys2QueryFeatures extracts query-side features with the cluster's
// extractor configuration.
func sys2QueryFeatures(cs *ClusterSystem, im *Image) *Features {
	return sift.Extract(im, cs.queryCfg)
}

func newAPIClient(baseURL string) *cluster.Client {
	return cluster.NewClient(baseURL)
}
