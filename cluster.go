package texid

import (
	"math/rand"
	"net/http"

	"texid/internal/blas"
	"texid/internal/cluster"
	"texid/internal/engine"
	"texid/internal/sift"
)

// ClusterConfig configures a distributed deployment (Sec. 8: 14 GPU
// containers behind a REST API with Redis-role metadata storage).
type ClusterConfig struct {
	// Workers is the number of shard GPUs (14 in the paper).
	Workers int
	// Extractor configures SIFT (RootSIFT forced on).
	Extractor sift.Config
	// Engine is the per-worker engine configuration.
	Engine engine.Config
	// StoreAddr optionally points at a kvstore server (see
	// internal/kvstore or cmd/texsearchd -kvstore) for persistence.
	StoreAddr string
	// Call tunes the coordinator→worker fault-tolerance policy (deadlines,
	// retries, hedging); zero value = cluster.DefaultCallPolicy().
	Call cluster.CallPolicy
	// Health tunes the per-worker failure detector.
	Health cluster.HealthPolicy
	// MinShards is the minimum shards that must answer a search before it
	// fails instead of degrading to a partial result (<= 0: any one).
	MinShards int
}

// DefaultClusterConfig returns the paper's 14-GPU deployment.
func DefaultClusterConfig() ClusterConfig {
	ext := sift.DefaultConfig()
	ext.RootSIFT = true
	return ClusterConfig{Workers: 14, Extractor: ext, Engine: engine.DefaultConfig()}
}

// ClusterSystem is a distributed texture identification system.
type ClusterSystem struct {
	cfg      ClusterConfig
	cl       *cluster.Cluster
	refCfg   sift.Config
	queryCfg sift.Config
}

// OpenCluster builds a distributed system from cfg.
func OpenCluster(cfg ClusterConfig) (*ClusterSystem, error) {
	cfg.Extractor.RootSIFT = true
	cl, err := cluster.New(cluster.Config{
		Workers:   cfg.Workers,
		Engine:    cfg.Engine,
		StoreAddr: cfg.StoreAddr,
		Call:      cfg.Call,
		Health:    cfg.Health,
		MinShards: cfg.MinShards,
	})
	if err != nil {
		return nil, err
	}
	refCfg, queryCfg := sift.ExtractAsymmetric(cfg.Extractor,
		cfg.Engine.RefFeatures, cfg.Engine.QueryFeatures)
	return &ClusterSystem{cfg: cfg, cl: cl, refCfg: refCfg, queryCfg: queryCfg}, nil
}

// Cluster exposes the underlying coordinator.
func (c *ClusterSystem) Cluster() *cluster.Cluster { return c.cl }

// Handler returns the REST API handler (mount it on any http.Server).
func (c *ClusterSystem) Handler() http.Handler { return c.cl.Handler() }

// EnrollImage extracts reference features and enrolls them on a shard.
func (c *ClusterSystem) EnrollImage(id int, im *Image) error {
	f := sift.Extract(im, c.refCfg)
	return c.cl.Add(id, f.Descriptors, f.Keypoints)
}

// SearchImage extracts query features and runs a distributed search.
func (c *ClusterSystem) SearchImage(im *Image) (*Result, error) {
	f := sift.Extract(im, c.queryCfg)
	rep, err := c.cl.Search(f.Descriptors, f.Keypoints)
	if err != nil {
		return nil, err
	}
	return clusterResult(rep), nil
}

// clusterResult converts a merged shard report to the public Result,
// carrying the graceful-degradation fields along.
func clusterResult(rep *cluster.Report) *Result {
	return &Result{
		ID:             rep.BestID,
		Score:          rep.Score,
		Accepted:       rep.Accepted,
		Compared:       rep.Compared,
		ElapsedUS:      rep.ElapsedUS,
		Speed:          rep.Speed,
		Partial:        rep.Partial,
		ShardsAnswered: rep.ShardsAnswered,
		ShardsTotal:    rep.ShardsTotal,
	}
}

// SearchImages answers several queries in one distributed pass (each shard
// matches the whole batch with multi-query GEMMs).
func (c *ClusterSystem) SearchImages(imgs []*Image) ([]*Result, error) {
	feats := make([]*blas.Matrix, len(imgs))
	kps := make([][]sift.Keypoint, len(imgs))
	for i, f := range sift.ExtractBatch(imgs, c.queryCfg) {
		feats[i] = f.Descriptors
		kps[i] = f.Keypoints
	}
	reps, err := c.cl.SearchBatch(feats, kps)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(reps))
	for i, rep := range reps {
		out[i] = clusterResult(rep)
	}
	return out, nil
}

// Compact reclaims tombstoned slots on every shard.
func (c *ClusterSystem) Compact() (int, error) { return c.cl.Compact() }

// Remove deletes a reference from its shard.
func (c *ClusterSystem) Remove(id int) bool { return c.cl.Remove(id) }

// Stats aggregates shard statistics.
func (c *ClusterSystem) Stats() cluster.Stats { return c.cl.Stats() }

// newRand builds a deterministic RNG for the public helpers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
