package texid

import (
	"bytes"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	sys, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	images := make(map[int]*Image)
	for id := 1; id <= 5; id++ {
		images[id] = smallTexture(int64(id * 3))
		if err := sys.EnrollImage(id, images[id]); err != nil {
			t.Fatal(err)
		}
	}
	sys.Remove(2) // tombstones must not be persisted

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n, err := restored.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("restored %d references, want 4", n)
	}
	// Restored index identifies re-captures of the surviving textures.
	for _, id := range []int{1, 3, 4, 5} {
		res, err := restored.SearchImage(CaptureQuery(images[id], int64(id), 0.25))
		if err != nil {
			t.Fatal(err)
		}
		if res.ID != id || !res.Accepted {
			t.Fatalf("texture %d lost in snapshot: %+v", id, res)
		}
	}
	// The removed texture stays gone.
	res, _ := restored.SearchImage(CaptureQuery(images[2], 99, 0.25))
	if res.Accepted && res.ID == 2 {
		t.Fatal("tombstoned texture resurrected by snapshot")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	sys, _ := Open(smallConfig())
	if _, err := sys.Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	// Truncated after the header.
	var buf bytes.Buffer
	sys2, _ := Open(smallConfig())
	sys2.EnrollImage(1, smallTexture(5))
	sys2.Save(&buf)
	for _, cut := range []int{5, 7, buf.Len() - 5} {
		if _, err := sys.Load(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
}
