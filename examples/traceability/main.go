// Traceability: the paper's motivating application. A manufacturer
// enrolls every tea brick's surface texture at packaging time; customers
// later photograph their brick to verify authenticity (one-to-one) or
// recover its identity (one-to-many). Counterfeit bricks — visually
// similar but physically different textures — must be rejected.
//
//	go run ./examples/traceability
package main

import (
	"fmt"
	"log"

	"texid"
)

const (
	batchSize  = 24 // bricks in this production batch
	recaptures = 6  // customer photos of genuine bricks
	fakes      = 4  // counterfeit attempts
)

func main() {
	sys, err := texid.Open(texid.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// --- Factory side: enroll a production batch. ---
	fmt.Printf("factory: enrolling %d tea bricks...\n", batchSize)
	bricks := make(map[int]*texid.Image)
	for id := 1; id <= batchSize; id++ {
		img := texid.GenerateTexture(int64(id) * 7919)
		bricks[id] = img
		if err := sys.EnrollImage(id, img); err != nil {
			log.Fatalf("brick %d: %v", id, err)
		}
	}
	st := sys.Stats()
	fmt.Printf("factory: index holds %d bricks (%.1f KB/brick, capacity %d)\n\n",
		st.References, float64(st.BytesPerRef)/1024, st.CapacityImages)

	// --- Customer side: genuine re-captures. ---
	fmt.Println("customers: photographing genuine bricks (new viewpoint, lighting, blur)...")
	identified := 0
	for i := 0; i < recaptures; i++ {
		trueID := 1 + (i*5)%batchSize
		photo := texid.CaptureQuery(bricks[trueID], int64(1000+i), 0.5)
		res, err := sys.SearchImage(photo)
		if err != nil {
			log.Fatal(err)
		}
		status := "REJECTED"
		if res.Accepted && res.ID == trueID {
			status = "traced"
			identified++
		} else if res.Accepted {
			status = fmt.Sprintf("MISTRACED to %d", res.ID)
		}
		fmt.Printf("  photo of brick %2d -> %s (%d matches, %.0f images/s)\n",
			trueID, status, res.Score, res.Speed)
	}
	fmt.Printf("traced %d/%d genuine re-captures\n\n", identified, recaptures)

	// --- Counterfeits: same product class, different physical texture. ---
	fmt.Println("counterfeiters: submitting visually similar but foreign bricks...")
	rejected := 0
	for i := 0; i < fakes; i++ {
		fake := texid.GenerateTexture(int64(500_000 + i))
		res, err := sys.SearchImage(fake)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Accepted {
			rejected++
			fmt.Printf("  counterfeit %d rejected (best candidate %d with only %d matches)\n",
				i+1, res.ID, res.Score)
		} else {
			fmt.Printf("  counterfeit %d WRONGLY ACCEPTED as brick %d (%d matches)\n",
				i+1, res.ID, res.Score)
		}
	}
	fmt.Printf("rejected %d/%d counterfeits\n\n", rejected, fakes)

	// --- One-to-one verification: "is this that brick?" ---
	photo := texid.CaptureQuery(bricks[7], 77, 0.4)
	same, score, err := sys.VerifyImages(bricks[7], photo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: photo vs enrolled brick 7 -> same=%v (%d matches)\n", same, score)
	same, score, err = sys.VerifyImages(bricks[8], photo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: photo vs enrolled brick 8 -> same=%v (%d matches)\n", same, score)
}
