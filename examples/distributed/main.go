// Distributed: an in-process replica of the paper's Sec. 8 deployment —
// 14 simulated Tesla P100 shard workers behind the REST API, searched both
// through the Go API and over HTTP.
//
//	go run ./examples/distributed
package main

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"texid"
	"texid/internal/gpusim"
	"texid/internal/wire"
)

func main() {
	cfg := texid.DefaultClusterConfig() // 14 workers, production engine
	cs, err := texid.OpenCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Capacity math of Sec. 8: each container reserves ~4 GB of GPU memory
	// for engine workspace and caches references in the remaining GPU
	// memory plus 64 GB of host memory.
	st := cs.Stats()
	fmt.Printf("cluster: %d workers, %.0f GB total cache, capacity %d references\n",
		st.Workers, st.CacheGB, st.CapacityImages)
	fmt.Printf("(the paper's full deployment stores 10.8M references at m=384, FP16)\n\n")

	// Enroll a small set across the shards.
	fmt.Println("enrolling 28 textures (2 per shard, round-robin)...")
	refs := make(map[int]*texid.Image)
	for id := 1; id <= 28; id++ {
		img := texid.GenerateTexture(int64(id) * 31)
		refs[id] = img
		if err := cs.EnrollImage(id, img); err != nil {
			log.Fatal(err)
		}
	}

	// Search through the Go API: the query scatters to all 14 shards in
	// parallel and results merge by match count.
	query := texid.CaptureQuery(refs[17], 5, 0.45)
	res, err := cs.SearchImage(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Go API search: texture %d, %d matches, %d compared, %.0f images/s aggregate\n\n",
		res.ID, res.Score, res.Compared, res.Speed)

	// The same search over the REST API (as the paper's web tier does).
	ts := httptest.NewServer(cs.Handler())
	defer ts.Close()

	ext := texid.DefaultConfig().Extractor
	ext.MaxFeatures = 768
	feats := texid.ExtractWith(query, ext)
	rec := &wire.FeatureRecord{Precision: gpusim.FP32, Scale: 1, Features: feats.Descriptors, Keypoints: feats.Keypoints}
	body := fmt.Sprintf(`{"record_b64": %q}`, base64.StdEncoding.EncodeToString(wire.Encode(rec)))

	resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		BestID   int     `json:"best_id"`
		Score    int     `json:"score"`
		Accepted bool    `json:"accepted"`
		Speed    float64 `json:"speed_images_per_sec"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("REST search:   texture %d, %d matches, accepted=%v, %.0f images/s\n",
		out.BestID, out.Score, out.Accepted, out.Speed)

	// Shard management: delete and confirm.
	cs.Remove(17)
	res, _ = cs.SearchImage(query)
	fmt.Printf("after delete:  accepted=%v (best %d, %d matches)\n", res.Accepted, res.ID, res.Score)
}
