// Tuning: explore the simulated GPU's performance space the way the
// paper's evaluation does — sweep batch size (Fig. 4), stream count
// (Table 6), and the asymmetric feature budget (Table 7) to pick an
// operating point for a deployment.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/knn"
)

// phantomSpeed measures search throughput on an engine filled with phantom
// (dimensions-only) references.
func phantomSpeed(cfg engine.Config, refs int, hostResident bool) float64 {
	if hostResident {
		// Budget for a single resident batch; the rest streams over PCIe.
		cfg.GPUCacheBytes = int64(cfg.BatchSize)*int64(cfg.RefFeatures)*int64(cfg.Dim)*2 + 1
	}
	e, err := engine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := e.AddPhantom(0, refs); err != nil {
		log.Fatal(err)
	}
	rep, err := e.Search(nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	return rep.Speed
}

func base() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Spec = gpusim.TeslaP100()
	cfg.Precision = gpusim.FP16
	cfg.Algorithm = knn.RootSIFT
	cfg.RefFeatures = 768
	cfg.QueryFeatures = 768
	cfg.Streams = 1
	return cfg
}

func main() {
	fmt.Println("== batch size sweep (GPU-resident, 1 stream; cf. Fig. 4) ==")
	for _, b := range []int{1, 16, 64, 256, 1024} {
		cfg := base()
		cfg.BatchSize = b
		speed := phantomSpeed(cfg, 4096, false)
		bar := int(speed / 1500)
		fmt.Printf("  batch %5d: %7.0f images/s %s\n", b, speed, stars(bar))
	}

	fmt.Println("\n== stream sweep (host-resident references; cf. Table 6) ==")
	for _, s := range []int{1, 2, 4, 8} {
		cfg := base()
		cfg.Spec = gpusim.WithJitter(cfg.Spec, 0.45, 42)
		cfg.BatchSize = 512
		cfg.Streams = s
		speed := phantomSpeed(cfg, 16*512, true)
		fmt.Printf("  %d stream(s): %7.0f images/s %s\n", s, speed, stars(int(speed/1500)))
	}

	fmt.Println("\n== asymmetric feature budget (batch 256; cf. Table 7) ==")
	fmt.Println("   (accuracy cost of small m is measured in Table 7 / texbench)")
	for _, m := range []int{768, 512, 384, 256} {
		cfg := base()
		cfg.BatchSize = 256
		cfg.RefFeatures = m
		speed := phantomSpeed(cfg, 4096, false)
		perRef := float64(m*cfg.Dim*2) / 1024
		fmt.Printf("  m=%3d: %7.0f images/s, %5.1f KB/reference %s\n",
			m, speed, perRef, stars(int(speed/1500)))
	}

	fmt.Println("\npaper's chosen operating point: batch 256, 8 streams, m=384, n=768")
}

func stars(n int) string {
	if n < 0 {
		n = 0
	}
	if n > 70 {
		n = 70
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
