// Quickstart: enroll a handful of reference textures and identify a
// re-captured query with the single-node system.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"texid"
)

func main() {
	// The default configuration is the paper's production setup: RootSIFT
	// features (384 per reference, 768 per query), FP16 storage, batch 256,
	// 8 CUDA streams on a simulated Tesla P100 with a 64 GB host cache.
	sys, err := texid.Open(texid.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Enroll five reference textures (seeded synthetic tea-brick surfaces;
	// in production these are photos taken at the factory). EnrollImages
	// extracts features for the whole batch in parallel.
	fmt.Println("enrolling references...")
	refs := make(map[int]*texid.Image)
	for id := 1; id <= 5; id++ {
		refs[id] = texid.GenerateTexture(int64(id) * 100)
	}
	if _, err := sys.EnrollImages(refs); err != nil {
		log.Fatal(err)
	}

	// A customer re-photographs texture 3: new viewpoint, different
	// lighting, a bit of blur and sensor noise.
	query := texid.CaptureQuery(refs[3], 42, 0.45)

	res, err := sys.SearchImage(query)
	if err != nil {
		log.Fatal(err)
	}
	if res.Accepted {
		fmt.Printf("identified texture %d with %d verified feature matches\n", res.ID, res.Score)
	} else {
		fmt.Printf("no confident match (best candidate %d, %d matches)\n", res.ID, res.Score)
	}
	fmt.Printf("compared %d references in %.1f us of simulated GPU time (%.0f images/s)\n",
		res.Compared, res.ElapsedUS, res.Speed)

	// A texture that was never enrolled must be rejected.
	foreign := texid.GenerateTexture(999_999)
	res, err = sys.SearchImage(foreign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("foreign texture: accepted=%v (best %d with %d matches)\n", res.Accepted, res.ID, res.Score)

	st := sys.Stats()
	fmt.Printf("index: %d references, capacity %d (%.1f KB per reference)\n",
		st.References, st.CapacityImages, float64(st.BytesPerRef)/1024)
}
