package texid

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"texid/internal/binq"
	"texid/internal/blas"
	"texid/internal/limits"
	"texid/internal/sift"
	"texid/internal/wire"
)

// Snapshot persistence for a single-node System: Save streams every
// enrolled reference as a length-prefixed wire.FeatureRecord, Load replays
// the stream into a (typically fresh) System. The distributed deployment
// persists through the kvstore instead; this format serves single-node
// embedding and offline backups.

const (
	snapshotMagic   = 0x54584442 // "TXDB"
	snapshotVersion = 1
	// snapshotVersion2 adds a binarization-threshold section between the
	// header and the records, present only when the engine runs candidate
	// pruning; pruning-off snapshots remain byte-identical version 1.
	snapshotVersion2 = 2
	// maxSnapshotRecord bounds one length-prefixed record (1 GB); larger
	// prefixes are treated as corruption rather than allocation requests.
	maxSnapshotRecord = 1 << 30
	// snapshotChunk is the allocation granularity for record payloads.
	snapshotChunk = 256 << 10
)

// ErrBadSnapshot is returned for malformed snapshot streams.
var ErrBadSnapshot = errors.New("texid: bad snapshot")

// Save writes the full reference index to w. Features are stored in the
// system's configured precision (FP16 snapshots are half the size): a
// snapshot of the same index must be byte-identical run to run.
//
//texlint:deterministic
func (s *System) Save(w io.Writer) error {
	// Seal pending enrollments first so the thresholds (learned at seal
	// time) exist before the header is committed.
	if err := s.eng.Flush(); err != nil {
		return err
	}
	thresh := s.eng.Thresholds()
	bw := bufio.NewWriter(w)
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], snapshotMagic)
	hdr[4] = snapshotVersion
	if thresh != nil {
		hdr[4] = snapshotVersion2
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if thresh != nil {
		var dim [4]byte
		binary.LittleEndian.PutUint32(dim[:], uint32(len(thresh)))
		if _, err := bw.Write(dim[:]); err != nil {
			return err
		}
		var tb [4]byte
		for _, t := range thresh {
			binary.LittleEndian.PutUint32(tb[:], math.Float32bits(t))
			if _, err := bw.Write(tb[:]); err != nil {
				return err
			}
		}
	}
	count := 0
	err := s.eng.Export(func(id int, feats *blas.Matrix, kps []sift.Keypoint, codes []binq.Code) error {
		rec := &wire.FeatureRecord{
			ID:        int64(id),
			Precision: s.cfg.Engine.Precision,
			Scale:     s.cfg.Engine.Scale,
			Features:  feats,
			Keypoints: kps,
			Codes:     codes,
		}
		b := wire.Encode(rec)
		var sz [4]byte
		binary.LittleEndian.PutUint32(sz[:], uint32(len(b)))
		if _, err := bw.Write(sz[:]); err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		count++
		return nil
	})
	if err != nil {
		return err
	}
	// Zero-length terminator.
	var end [4]byte
	if _, err := bw.Write(end[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Load replays a snapshot into the system, enrolling every record. It
// returns the number of references restored. Records whose ids already
// exist are rejected (load into a fresh system). The stream is a foreign
// file: its length prefixes are hostile until bounds-checked.
//
//texlint:untrusted
func (s *System) Load(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: short header", ErrBadSnapshot)
	}
	if binary.LittleEndian.Uint32(hdr[:4]) != snapshotMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if hdr[4] != snapshotVersion && hdr[4] != snapshotVersion2 {
		return 0, fmt.Errorf("texid: unsupported snapshot version %d", hdr[4])
	}
	if hdr[4] >= snapshotVersion2 {
		var dim [4]byte
		if _, err := io.ReadFull(br, dim[:]); err != nil {
			return 0, fmt.Errorf("%w: truncated threshold header", ErrBadSnapshot)
		}
		nd := int(binary.LittleEndian.Uint32(dim[:]))
		if err := limits.Check("threshold dim", nd, 1<<16); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		thresh := make(binq.Thresholds, nd)
		var tb [4]byte
		for i := range thresh {
			if _, err := io.ReadFull(br, tb[:]); err != nil {
				return 0, fmt.Errorf("%w: truncated thresholds", ErrBadSnapshot)
			}
			thresh[i] = math.Float32frombits(binary.LittleEndian.Uint32(tb[:]))
		}
		if err := s.eng.SetThresholds(thresh); err != nil {
			return 0, err
		}
	}
	n := 0
	for {
		var sz [4]byte
		if _, err := io.ReadFull(br, sz[:]); err != nil {
			return n, fmt.Errorf("%w: truncated record length", ErrBadSnapshot)
		}
		l := binary.LittleEndian.Uint32(sz[:])
		if l == 0 {
			return n, nil // terminator
		}
		if err := limits.Check("record size", int(l), maxSnapshotRecord); err != nil {
			return n, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		// The length prefix may be corrupt: commit memory chunk by chunk,
		// only as the stream actually delivers payload.
		buf, err := limits.ReadChunked(br, int(l), snapshotChunk)
		if err != nil {
			return n, fmt.Errorf("%w: truncated record", ErrBadSnapshot)
		}
		rec, err := wire.Decode(buf)
		if err != nil {
			return n, fmt.Errorf("texid: snapshot record %d: %w", n, err)
		}
		if err := s.eng.AddEncoded(int(rec.ID), rec.Features, rec.Keypoints, rec.Codes); err != nil {
			return n, err
		}
		n++
	}
}
