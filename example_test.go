package texid_test

import (
	"fmt"

	"texid"
	"texid/internal/gpusim"
	"texid/internal/knn"
)

// smallExampleConfig shrinks the production configuration so the examples
// run in a couple of seconds on any machine (the defaults target the
// paper's 256-px images and 384/768 feature budgets).
func smallExampleConfig() texid.Config {
	cfg := texid.DefaultConfig()
	cfg.Engine.Precision = gpusim.FP32
	cfg.Engine.Algorithm = knn.RootSIFT
	cfg.Engine.BatchSize = 4
	cfg.Engine.Streams = 2
	cfg.Engine.RefFeatures = 96
	cfg.Engine.QueryFeatures = 192
	cfg.Engine.Match.ImageSize = 256
	cfg.Engine.Match.MinMatches = 12
	cfg.Extractor.MaxOctaves = 4
	return cfg
}

// Example shows the minimal enroll-and-identify loop.
func Example() {
	sys, err := texid.Open(smallExampleConfig())
	if err != nil {
		panic(err)
	}

	// Enroll three reference textures.
	refs := map[int]*texid.Image{}
	for id := 1; id <= 3; id++ {
		refs[id] = texid.GenerateTexture(int64(id) * 11)
		if err := sys.EnrollImage(id, refs[id]); err != nil {
			panic(err)
		}
	}

	// Identify a perturbed re-capture of texture 2.
	res, err := sys.SearchImage(texid.CaptureQuery(refs[2], 7, 0.3))
	if err != nil {
		panic(err)
	}
	fmt.Println("matched:", res.Accepted, "id:", res.ID)
	// Output:
	// matched: true id: 2
}

// ExampleSystem_VerifyImages shows one-to-one verification: are two photos
// of the same physical texture?
func ExampleSystem_VerifyImages() {
	sys, err := texid.Open(smallExampleConfig())
	if err != nil {
		panic(err)
	}
	brick := texid.GenerateTexture(99)
	photo := texid.CaptureQuery(brick, 3, 0.25)

	same, _, err := sys.VerifyImages(brick, photo)
	if err != nil {
		panic(err)
	}
	other, _, err := sys.VerifyImages(texid.GenerateTexture(100), photo)
	if err != nil {
		panic(err)
	}
	fmt.Println("same texture:", same, "— different texture:", other)
	// Output:
	// same texture: true — different texture: false
}
