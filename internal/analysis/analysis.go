// Package analysis is texid's project-invariant static-analysis framework.
// It is deliberately stdlib-only: packages are discovered with go/build
// (no go/packages dependency), parsed with go/parser, and type-checked
// with go/types against a recursive source importer, so
// `go run ./cmd/texlint ./...` works from a clean checkout with no
// network access.
//
// The paper's results depend on a deterministic, calibrated timing model
// and a concurrent serving stack; the checks here encode the invariants
// that keep those properties from rotting: no nondeterminism sources in
// simulator code, no mutexes held across blocking operations, no dropped
// errors, every kernel launch paired with a stream sync, and no raw
// binary16 bit-pattern manipulation outside internal/half.
//
// Diagnostics may be suppressed with an escape hatch comment:
//
//	//texlint:ignore <check>[,<check>...] <reason>
//
// A trailing comment suppresses matching diagnostics on its own line; a
// comment in a declaration's doc group suppresses them for the entire
// declaration. The reason is mandatory: a bare ignore, or one naming an
// unknown check, is itself reported under the "directive" check.
//
// Flow-aware checks (hotalloc, clockdomain, aliasret, atomicmix, wiretaint,
// maporder) follow call chains across packages; they are driven by function
// annotations:
//
//	//texlint:hotpath               — this function and all callees must not allocate
//	//texlint:coldpath <reason>     — hot-path traversal stops here (reason required)
//	//texlint:scratchalias          — results alias a reusable scratch; callers are checked
//	//texlint:clockdomain           — extra root for the wall-clock reachability check
//	//texlint:untrusted             — parameters carry attacker-controlled data (wiretaint source)
//	//texlint:deterministic         — output must not depend on map/select ordering (maporder root)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	// Chain, when set, is the call path a flow-aware check followed from
	// its root to the reported function ("root -> ... -> fn"). It is also
	// rendered into Message; the separate field exists for -json consumers.
	// Kept a plain string so Diagnostic stays comparable (sortDiags dedups
	// with ==).
	Chain string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *PackageInfo
	PkgPath string
}

// Analyzer is one pluggable check.
type Analyzer struct {
	// Name identifies the check in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Applies reports whether the check runs on the given import path.
	// A nil Applies runs everywhere.
	Applies func(pkgPath string) bool
	// Run inspects one package and returns its findings.
	Run func(*Pass) []Diagnostic
	// RunProgram, if set, makes this a whole-program analyzer: RunAll
	// invokes it once over the full loaded package set (Run and Applies
	// are then ignored). Flow-aware checks that follow call chains across
	// package boundaries live here.
	RunProgram func(*Program) []Diagnostic
}

// knownCheckSet returns the check names valid in a //texlint:ignore list.
// It is derived from the full default suite (not the -checks subset in
// effect), so selecting a subset never turns existing ignores into
// unknown-check errors.
func knownCheckSet() map[string]bool {
	set := make(map[string]bool)
	for _, a := range DefaultAnalyzers() {
		set[a.Name] = true
	}
	return set
}

// Run executes every applicable analyzer over the package, filters
// suppressed diagnostics, and returns the rest sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Info, PkgPath: pkg.Path}
	ig := buildIgnoreIndex(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		for _, d := range a.Run(pass) {
			if ig.suppressed(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// ignoreIndex records where //texlint:ignore directives apply.
type ignoreIndex struct {
	// lines maps filename -> line -> set of ignored check names.
	lines map[string]map[int]map[string]bool
	// ranges holds declaration-wide suppressions.
	ranges []ignoreRange
	fset   *token.FileSet
}

type ignoreRange struct {
	file       string
	start, end int // line numbers, inclusive
	checks     map[string]bool
}

const ignorePrefix = "//texlint:ignore"

// parseIgnore extracts the ignored check set from one comment, or nil.
func parseIgnore(text string) map[string]bool {
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
	// The check list is the first whitespace-delimited field; anything
	// after it is the human-readable reason.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	checks := make(map[string]bool)
	for _, c := range strings.Split(fields[0], ",") {
		if c = strings.TrimSpace(c); c != "" {
			checks[c] = true
		}
	}
	return checks
}

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	ig := &ignoreIndex{lines: make(map[string]map[int]map[string]bool), fset: fset}
	for _, f := range files {
		// Doc-group directives suppress their whole declaration.
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				if checks := parseIgnore(c.Text); checks != nil {
					start := fset.Position(decl.Pos())
					end := fset.Position(decl.End())
					ig.ranges = append(ig.ranges, ignoreRange{
						file: start.Filename, start: start.Line, end: end.Line, checks: checks,
					})
				}
			}
		}
		// Any directive also suppresses its own line (covers trailing
		// comments and standalone comments inside function bodies, where
		// the next line is what they annotate).
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks := parseIgnore(c.Text)
				if checks == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := ig.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					ig.lines[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := byLine[line]
					if set == nil {
						set = make(map[string]bool)
						byLine[line] = set
					}
					for k := range checks {
						set[k] = true
					}
				}
			}
		}
	}
	return ig
}

func (ig *ignoreIndex) suppressed(d Diagnostic) bool {
	if set := ig.lines[d.Pos.Filename][d.Pos.Line]; set[d.Check] {
		return true
	}
	for _, r := range ig.ranges {
		if r.file == d.Pos.Filename && r.start <= d.Pos.Line && d.Pos.Line <= r.end && r.checks[d.Check] {
			return true
		}
	}
	return false
}

// pathMatches reports whether the import path equals or ends with one of
// the given suffixes (each suffix matched at a path-segment boundary).
func pathMatches(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// ScopedTo returns an Applies predicate for the given path suffixes.
func ScopedTo(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool { return pathMatches(pkgPath, suffixes) }
}

// NotIn returns an Applies predicate excluding the given path suffixes.
func NotIn(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool { return !pathMatches(pkgPath, suffixes) }
}
