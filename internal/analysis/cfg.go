package analysis

import (
	"go/ast"
	"go/token"
)

// Control-flow graphs, built without golang.org/x/tools: enough structure
// to answer the one flow question the allocation checks need — "does every
// path from this statement end in an error return or a panic?" — so that
// cold error-handling blocks (where fmt.Errorf may allocate freely) are
// distinguished from the steady-state path (where nothing may).

// Block is one basic block: a run of statements with a single entry and a
// set of successor blocks. A block that ends the function records its
// terminator (return, panic, or similar).
type Block struct {
	Stmts []ast.Stmt
	Succs []*Block
	// Term is the statement that leaves the function from this block
	// (a *ast.ReturnStmt or an ast.Stmt wrapping panic/os.Exit), or nil.
	Term ast.Stmt
}

// CFG is the intra-procedural control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Blocks []*Block
	// blockOf locates the basic block holding each statement, at any
	// nesting depth.
	blockOf map[ast.Stmt]*Block
	// irreducible is set when the body uses goto or an unresolvable
	// labeled branch; flow-sensitive refinements must then be skipped.
	irreducible bool
}

// BuildCFG constructs the CFG of a function body. It is deliberately
// conservative: unsupported control flow (goto) marks the graph
// irreducible rather than producing wrong edges.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{blockOf: make(map[ast.Stmt]*Block)}
	b := &cfgBuilder{g: g, labels: make(map[string]loopTargets)}
	g.Entry = b.newBlock()
	exit := b.buildList(body.List, g.Entry)
	_ = exit
	return g
}

type loopTargets struct {
	brk, cont *Block
}

type cfgBuilder struct {
	g      *CFG
	loops  []loopTargets
	labels map[string]loopTargets
	// pendingLabel names the label attached to the next loop statement.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) add(blk *Block, s ast.Stmt) {
	blk.Stmts = append(blk.Stmts, s)
	b.g.blockOf[s] = blk
}

// buildList threads a statement list through cur, returning the block where
// control continues afterwards (nil when every path has left the function).
func (b *cfgBuilder) buildList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminator: park it in its own
			// disconnected block so blockOf stays total.
			cur = b.newBlock()
		}
		cur = b.buildStmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) buildStmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		b.add(cur, s)
		cur.Term = s
		return nil
	case *ast.ExprStmt:
		b.add(cur, s)
		if isNoReturnCall(s.X) {
			cur.Term = s
			return nil
		}
		return cur
	case *ast.BlockStmt:
		b.add(cur, s)
		return b.buildList(s.List, cur)
	case *ast.IfStmt:
		b.add(cur, s)
		thenB := b.newBlock()
		cur.Succs = append(cur.Succs, thenB)
		thenExit := b.buildList(s.Body.List, thenB)
		var elseExit *Block
		hasElse := s.Else != nil
		if hasElse {
			elseB := b.newBlock()
			cur.Succs = append(cur.Succs, elseB)
			elseExit = b.buildStmt(s.Else, elseB)
		}
		join := b.newBlock()
		if !hasElse {
			cur.Succs = append(cur.Succs, join)
		}
		if thenExit != nil {
			thenExit.Succs = append(thenExit.Succs, join)
		}
		if elseExit != nil {
			elseExit.Succs = append(elseExit.Succs, join)
		}
		return join
	case *ast.ForStmt:
		return b.buildLoop(s, s.Body, s.Cond != nil || s.Init != nil || s.Post != nil)
	case *ast.RangeStmt:
		return b.buildLoop(s, s.Body, true)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.buildSwitch(s, cur)
	case *ast.LabeledStmt:
		b.add(cur, s)
		b.pendingLabel = s.Label.Name
		next := b.buildStmt(s.Stmt, cur)
		b.pendingLabel = ""
		return next
	case *ast.BranchStmt:
		b.add(cur, s)
		switch s.Tok {
		case token.GOTO:
			b.g.irreducible = true
			return nil
		case token.BREAK, token.CONTINUE:
			var t loopTargets
			ok := false
			if s.Label != nil {
				t, ok = b.labels[s.Label.Name]
			} else if len(b.loops) > 0 {
				t, ok = b.loops[len(b.loops)-1], true
			}
			if !ok {
				// break/continue inside a switch with no loop context, or
				// an unknown label: treat conservatively.
				b.g.irreducible = true
				return nil
			}
			if s.Tok == token.BREAK {
				cur.Succs = append(cur.Succs, t.brk)
			} else {
				cur.Succs = append(cur.Succs, t.cont)
			}
			return nil
		case token.FALLTHROUGH:
			// Handled structurally by buildSwitch (the next case body is a
			// successor); nothing to do here.
			return cur
		}
		return cur
	default:
		b.add(cur, s)
		return cur
	}
}

// buildLoop wires head -> {body, after}; the body loops back to head.
// hasExit reports whether the loop can terminate via its condition (a bare
// `for {}` exits only through break/return).
func (b *cfgBuilder) buildLoop(s ast.Stmt, body *ast.BlockStmt, hasExit bool) *Block {
	head := b.newBlock()
	b.add(head, s)
	after := b.newBlock()
	bodyB := b.newBlock()
	head.Succs = append(head.Succs, bodyB)
	if hasExit {
		head.Succs = append(head.Succs, after)
	}
	t := loopTargets{brk: after, cont: head}
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = t
		b.pendingLabel = ""
	}
	b.loops = append(b.loops, t)
	bodyExit := b.buildList(body.List, bodyB)
	b.loops = b.loops[:len(b.loops)-1]
	if bodyExit != nil {
		bodyExit.Succs = append(bodyExit.Succs, head)
	}
	return after
}

func (b *cfgBuilder) buildSwitch(s ast.Stmt, cur *Block) *Block {
	b.add(cur, s)
	join := b.newBlock()
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	t := loopTargets{brk: join, cont: join}
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = t
		b.pendingLabel = ""
	}
	hasDefault := false
	var caseBlocks []*Block
	var caseBodies [][]ast.Stmt
	for _, cs := range body.List {
		blk := b.newBlock()
		cur.Succs = append(cur.Succs, blk)
		switch cs := cs.(type) {
		case *ast.CaseClause:
			b.add(blk, cs)
			if cs.List == nil {
				hasDefault = true
			}
			caseBlocks = append(caseBlocks, blk)
			caseBodies = append(caseBodies, cs.Body)
		case *ast.CommClause:
			b.add(blk, cs)
			if cs.Comm == nil {
				hasDefault = true
			}
			caseBlocks = append(caseBlocks, blk)
			caseBodies = append(caseBodies, cs.Body)
		}
	}
	// Build case bodies with `break` targeting the join. fallthrough is
	// over-approximated: each case exit also reaches the join.
	b.loops = append(b.loops, loopTargets{brk: join, cont: join})
	for i, blk := range caseBlocks {
		if exit := b.buildList(caseBodies[i], blk); exit != nil {
			exit.Succs = append(exit.Succs, join)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if _, isSelect := s.(*ast.SelectStmt); !hasDefault || isSelect {
		// A switch without default (or any select) can skip every case.
		cur.Succs = append(cur.Succs, join)
	}
	return join
}

// isNoReturnCall reports whether the expression is a call that never
// returns: panic, os.Exit, log.Fatal*, runtime.Goexit.
func isNoReturnCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && fun.Sel.Name == "Exit":
				return true
			case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
				return true
			case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
				return true
			}
		}
	}
	return false
}

// ColdStmts returns the set of statements from which every path leaves the
// function through an error return or a panic — the cold error-handling
// region where allocation is tolerated. On an irreducible graph it returns
// an empty set (maximally conservative).
func (g *CFG) ColdStmts(info *PackageInfo) map[ast.Stmt]bool {
	out := make(map[ast.Stmt]bool)
	if g.irreducible {
		return out
	}
	state := make(map[*Block]int) // 0 unvisited, 1 in progress, 2 cold, 3 warm
	var cold func(b *Block) bool
	cold = func(b *Block) bool {
		switch state[b] {
		case 1, 3:
			return false // cycles and known-warm blocks are warm
		case 2:
			return true
		}
		state[b] = 1
		res := false
		if b.Term != nil {
			res = terminatesCold(b.Term, info)
		} else if len(b.Succs) > 0 {
			res = true
			for _, s := range b.Succs {
				if !cold(s) {
					res = false
					break
				}
			}
		}
		if res {
			state[b] = 2
		} else {
			state[b] = 3
		}
		return res
	}
	for _, b := range g.Blocks {
		if cold(b) {
			for _, s := range b.Stmts {
				out[s] = true
			}
		}
	}
	return out
}

// terminatesCold reports whether a terminator statement is an error exit:
// a return whose error-typed result is visibly non-nil, or a panic-like
// call.
func terminatesCold(s ast.Stmt, info *PackageInfo) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return isNoReturnCall(s.X)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			res = ast.Unparen(res)
			if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if tv, ok := info.Info.Types[res]; ok && tv.Type != nil && isErrorType(tv.Type) {
				return true
			}
		}
	}
	return false
}
