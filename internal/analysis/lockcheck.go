package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// NewLockCheck builds the lock-hygiene check. It flags two patterns that
// turn a mutex-protected fast path into a serving-stack stall:
//
//  1. a sync mutex held across a blocking operation — channel send or
//     receive, select, time.Sleep, sync.WaitGroup.Wait, blocking I/O
//     (net/os/bufio Read, Write, Flush, Accept, Sync), an HTTP round-trip
//     (net/http Do/Get/Post/PostForm/Head), or a kvstore.Dial/DialTimeout
//     TCP connect;
//  2. Lock without an immediate defer Unlock when an early return can
//     leave the function with the mutex held.
//
// Statements inside `go func(){...}` literals are not scanned: the
// spawned goroutine does not inherit the caller's critical section.
func NewLockCheck() *Analyzer {
	return &Analyzer{
		Name: "lockcheck",
		Doc:  "no mutex held across blocking ops; Lock pairs with defer Unlock on early-return paths",
		Run:  runLockCheck,
	}
}

var blockingIOMethods = map[string]bool{
	"Read": true, "Write": true, "Flush": true, "Accept": true, "Sync": true,
	"ReadString": true, "ReadBytes": true, "WriteString": true, "ReadFrom": true, "WriteTo": true,
}

// httpClientCalls are the net/http request entry points (package functions
// and http.Client methods share these names): each is a full round-trip.
var httpClientCalls = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

func runLockCheck(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, fd := range funcDecls(pass) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				diags = append(diags, scanStmtList(pass, n.List)...)
			case *ast.CaseClause:
				diags = append(diags, scanStmtList(pass, n.Body)...)
			case *ast.CommClause:
				diags = append(diags, scanStmtList(pass, n.Body)...)
			}
			return true
		})
	}
	return diags
}

// lockCall matches an ExprStmt of the form X.Lock() / X.RLock() where the
// method comes from package sync (covers embedded mutexes via method
// promotion). It returns the receiver's rendered text and the matching
// unlock method name.
func lockCall(pass *Pass, stmt ast.Stmt) (recv string, unlock string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := calleeFunc(pass.Pkg, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock":
		return exprText(sel.X), "Unlock", true
	case "RLock":
		return exprText(sel.X), "RUnlock", true
	}
	return "", "", false
}

// unlockStmt matches an ExprStmt calling recv.unlock().
func unlockStmt(pass *Pass, stmt ast.Stmt, recv, unlock string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	return isUnlockCall(pass, es.X, recv, unlock)
}

func isUnlockCall(pass *Pass, e ast.Expr, recv, unlock string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != unlock {
		return false
	}
	fn := calleeFunc(pass.Pkg, call)
	return fn != nil && funcPkgPath(fn) == "sync" && exprText(sel.X) == recv
}

// scanStmtList finds critical sections opened in one statement list and
// checks them. Only sections opened and (statically) closed at this
// nesting level are tracked; nested lists are handled by their own scan.
func scanStmtList(pass *Pass, stmts []ast.Stmt) []Diagnostic {
	var diags []Diagnostic
	for i := 0; i < len(stmts); i++ {
		recv, unlock, ok := lockCall(pass, stmts[i])
		if !ok {
			continue
		}
		deferUnlock := false
		if i+1 < len(stmts) {
			if ds, isDefer := stmts[i+1].(*ast.DeferStmt); isDefer {
				if isUnlockCall(pass, ds.Call, recv, unlock) {
					deferUnlock = true
				}
			}
		}
		// The critical section runs to the matching same-level Unlock, or
		// to the end of the list when defer-unlocked (or when the unlock
		// is buried in branches — conservative).
		region := stmts[i+1:]
		if !deferUnlock {
			for j := i + 1; j < len(stmts); j++ {
				if unlockStmt(pass, stmts[j], recv, unlock) {
					region = stmts[i+1 : j]
					break
				}
			}
		}
		for _, s := range region {
			diags = append(diags, blockingOps(pass, s, recv)...)
		}
		if !deferUnlock {
			diags = append(diags, earlyReturns(pass, region, recv, unlock, false)...)
		}
	}
	return diags
}

// blockingOps walks one statement for operations that must not run under
// a mutex. GoStmt bodies are skipped (the goroutine runs outside the
// critical section).
func blockingOps(pass *Pass, stmt ast.Stmt, recv string) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, what string) {
		diags = append(diags, Diagnostic{
			Pos:     pass.Fset.Position(pos),
			Check:   "lockcheck",
			Message: fmt.Sprintf("%s is held across %s; shrink the critical section", recv, what),
		})
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			report(n.Pos(), "a channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "a channel receive")
			}
		case *ast.SelectStmt:
			report(n.Pos(), "a select statement")
			return false
		case *ast.CallExpr:
			fn := calleeFunc(pass.Pkg, n)
			if fn == nil {
				return true
			}
			if isPkgFunc(fn, "time", "Sleep") {
				report(n.Pos(), "time.Sleep")
			}
			if isMethodOf(fn, "sync", "Wait") {
				report(n.Pos(), "sync.WaitGroup.Wait")
			}
			pkg := funcPkgPath(fn)
			if (pkg == "net" || pkg == "os" || pkg == "bufio") && blockingIOMethods[fn.Name()] {
				report(n.Pos(), fmt.Sprintf("blocking I/O (%s.%s)", pkg, fn.Name()))
			}
			// A mutex held across a whole HTTP round-trip or a TCP
			// connect is the worst stall in the serving stack: every
			// other request on that lock queues behind one slow peer.
			if pkg == "net/http" && httpClientCalls[fn.Name()] {
				report(n.Pos(), fmt.Sprintf("an HTTP round-trip (net/http %s)", fn.Name()))
			}
			if hasSuffixPath(pkg, "internal/kvstore") && (fn.Name() == "Dial" || fn.Name() == "DialTimeout") {
				report(n.Pos(), fmt.Sprintf("kvstore.%s (a TCP connect)", fn.Name()))
			}
		}
		return true
	})
	return diags
}

// earlyReturns flags returns inside a critical section that is not
// defer-unlocked, unless an explicit Unlock precedes the return on its
// own path.
func earlyReturns(pass *Pass, stmts []ast.Stmt, recv, unlock string, unlocked bool) []Diagnostic {
	var diags []Diagnostic
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if isUnlockCall(pass, s.X, recv, unlock) {
				unlocked = true
			}
		case *ast.ReturnStmt:
			if !unlocked {
				diags = append(diags, Diagnostic{
					Pos:     pass.Fset.Position(s.Pos()),
					Check:   "lockcheck",
					Message: fmt.Sprintf("return with %s still held; use defer %s.%s() or unlock before returning", recv, recv, unlock),
				})
			}
		case *ast.BlockStmt:
			diags = append(diags, earlyReturns(pass, s.List, recv, unlock, unlocked)...)
		case *ast.IfStmt:
			diags = append(diags, earlyReturns(pass, s.Body.List, recv, unlock, unlocked)...)
			if s.Else != nil {
				diags = append(diags, earlyReturns(pass, []ast.Stmt{s.Else}, recv, unlock, unlocked)...)
			}
		case *ast.ForStmt:
			diags = append(diags, earlyReturns(pass, s.Body.List, recv, unlock, unlocked)...)
		case *ast.RangeStmt:
			diags = append(diags, earlyReturns(pass, s.Body.List, recv, unlock, unlocked)...)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					diags = append(diags, earlyReturns(pass, cc.Body, recv, unlock, unlocked)...)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					diags = append(diags, earlyReturns(pass, cc.Body, recv, unlock, unlocked)...)
				}
			}
		}
	}
	return diags
}
