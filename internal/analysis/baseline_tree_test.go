package analysis

import (
	"path/filepath"
	"testing"
)

// TestBaselineNotStale loads the committed texlint.baseline and replays the
// full production suite over the real tree: every baseline entry must still
// match a live finding. A stale entry means the underlying code was fixed
// (or the check changed) and the baseline line must be deleted — the file
// may only shrink, never silently rot. This is the same staleness gate
// `texlint -baseline` applies, pinned as a unit test so `go test ./...`
// catches it without running the lint driver.
func TestBaselineNotStale(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAll(pkgs, DefaultAnalyzers())

	blPath := filepath.Join(root, "texlint.baseline")
	bl, err := LoadBaseline(blPath)
	if err != nil {
		t.Fatal(err)
	}
	bl.Filter(diags, root)

	enabled := make(map[string]bool)
	for _, a := range DefaultAnalyzers() {
		enabled[a.Name] = true
	}
	enabled["directive"] = true
	for _, entry := range bl.Stale(enabled) {
		t.Errorf("stale baseline entry (finding no longer produced): %s", entry)
	}
}
