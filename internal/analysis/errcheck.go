package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// NewErrCheck builds the unchecked-error check: a statement that calls a
// function returning an error and silently discards it is flagged.
// Explicit discards (`_ = f()`) and deferred cleanup (`defer f.Close()`)
// are allowed; so are fmt writes to stdout/stderr and to sticky or
// infallible writers (bytes.Buffer, strings.Builder, bufio.Writer —
// bufio errors are observed at Flush, which is itself checked).
func NewErrCheck() *Analyzer {
	return &Analyzer{
		Name: "errcheck",
		Doc:  "no silently dropped error returns in non-test code",
		Run:  runErrCheck,
	}
}

func runErrCheck(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	check := func(call *ast.CallExpr) {
		if !returnsError(pass.Pkg, call) || errExempt(pass, call) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:     pass.Fset.Position(call.Pos()),
			Check:   "errcheck",
			Message: fmt.Sprintf("error result of %s is dropped; handle it or assign to _", exprText(call.Fun)),
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call)
				}
			case *ast.GoStmt:
				check(n.Call)
			case *ast.DeferStmt:
				// Deferred cleanup errors are exempt by convention.
				return false
			}
			return true
		})
	}
	return diags
}

// errExempt reports whether a dropped error from this call is acceptable.
func errExempt(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg, call)
	if fn == nil {
		return false
	}
	pkg := funcPkgPath(fn)
	name := fn.Name()
	// fmt.Print* writes to stdout.
	if pkg == "fmt" && strings.HasPrefix(name, "Print") {
		return true
	}
	// fmt.Fprint* to stderr/stdout or to a sticky/infallible writer.
	if pkg == "fmt" && strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		return infallibleWriter(pass, call.Args[0])
	}
	// Methods on infallible in-memory writers, and bufio.Writer writes
	// (sticky errors, observed at Flush — Flush itself is not exempt).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if namedTypeIn(t, "strings", "Builder") || namedTypeIn(t, "bytes", "Buffer") {
			return true
		}
		if namedTypeIn(t, "bufio", "Writer") && name != "Flush" {
			return true
		}
	}
	return false
}

// infallibleWriter reports whether the expression denotes a writer whose
// errors are either impossible or observed later: os.Stdout, os.Stderr,
// *bytes.Buffer, *strings.Builder, or *bufio.Writer.
func infallibleWriter(pass *Pass, e ast.Expr) bool {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" &&
			(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
			if obj := pass.Pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" {
				return true
			}
		}
	}
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return namedTypeIn(tv.Type, "bytes", "Buffer") ||
		namedTypeIn(tv.Type, "strings", "Builder") ||
		namedTypeIn(tv.Type, "bufio", "Writer")
}
