package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Conservative allocation classifier: walks one function body and reports
// every construct that may heap-allocate — make, new, growing append,
// string concatenation, slice/map composite literals, &composite literals,
// map writes, closure captures, interface boxing at call boundaries,
// []byte/string conversions, goroutine launches, and calls into stdlib
// helpers that are known to allocate (fmt, sort.Slice, strings.Join, ...).
//
// Two flow-sensitive allowances keep the hot path annotatable without
// drowning in ignores:
//
//   - cold blocks: statements from which every path ends in an error
//     return or panic (per the CFG) may allocate — error formatting is
//     off the steady-state path by construction;
//   - amortized grows: allocations inside an if-block whose condition
//     reads cap() or len() are the standard grow-once-then-reuse idiom
//     (scratch slabs, pooled buffers) and are allowed;
//   - filter-in-place: append to a slice introduced as `dst := src[:0]`
//     never exceeds the donor's capacity and is allowed.
//
// Everything else on a hot path must be fixed, annotated away at a call
// edge, or carried in texlint.baseline with a reason.

type allocScan struct {
	pkg      *Package
	fd       *ast.FuncDecl
	inModule func(path string) bool
	report   func(pos token.Pos, msg string)

	cold map[ast.Stmt]bool
	// filterSlices holds variables introduced as `dst := src[:0]`;
	// appending to them reuses the donor's backing array.
	filterSlices map[types.Object]bool
}

// scanAllocs reports every potential heap allocation in fd's body.
// inModule distinguishes module packages (whose functions the hot-path
// traversal visits separately) from the stdlib.
func scanAllocs(pkg *Package, fd *ast.FuncDecl, inModule func(string) bool, report func(pos token.Pos, msg string)) {
	w := &allocScan{
		pkg: pkg, fd: fd, inModule: inModule, report: report,
		cold:         BuildCFG(fd.Body).ColdStmts(pkg.Info),
		filterSlices: make(map[types.Object]bool),
	}
	w.stmtList(fd.Body.List, false)
}

func (w *allocScan) info() *types.Info { return w.pkg.Info.Info }

func (w *allocScan) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.info().Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (w *allocScan) stmtList(list []ast.Stmt, allowed bool) {
	for _, s := range list {
		w.stmt(s, allowed)
	}
}

func (w *allocScan) stmt(s ast.Stmt, allowed bool) {
	if s == nil {
		return
	}
	allowed = allowed || w.cold[s]
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmtList(s.List, allowed)
	case *ast.IfStmt:
		w.stmt(s.Init, allowed)
		w.expr(s.Cond, allowed)
		// Amortized-grow idiom: a body guarded by a cap()/len() test runs
		// only when a reusable buffer is outgrown.
		w.stmt(s.Body, allowed || condReadsCapLen(s.Cond))
		w.stmt(s.Else, allowed)
	case *ast.ForStmt:
		w.stmt(s.Init, allowed)
		w.expr(s.Cond, allowed)
		w.stmt(s.Post, allowed)
		w.stmt(s.Body, allowed)
	case *ast.RangeStmt:
		w.expr(s.X, allowed)
		w.stmt(s.Body, allowed)
	case *ast.SwitchStmt:
		w.stmt(s.Init, allowed)
		w.expr(s.Tag, allowed)
		w.stmt(s.Body, allowed)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, allowed)
		w.stmt(s.Assign, allowed)
		w.stmt(s.Body, allowed)
	case *ast.SelectStmt:
		w.stmt(s.Body, allowed)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, allowed)
		}
		w.stmtList(s.Body, allowed)
	case *ast.CommClause:
		w.stmt(s.Comm, allowed)
		w.stmtList(s.Body, allowed)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, allowed)
	case *ast.AssignStmt:
		w.assign(s, allowed)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, allowed)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X, allowed)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, allowed)
		}
	case *ast.GoStmt:
		if !allowed {
			w.report(s.Pos(), "go statement launches a goroutine (allocates) on the hot path")
		}
		w.callArgs(s.Call, allowed)
	case *ast.DeferStmt:
		w.callArgs(s.Call, allowed)
	case *ast.SendStmt:
		w.expr(s.Chan, allowed)
		w.expr(s.Value, allowed)
	case *ast.IncDecStmt:
		w.expr(s.X, allowed)
	case *ast.BranchStmt, *ast.EmptyStmt:
		// no expressions
	}
}

// assign handles map writes, string +=, and the filter-in-place pattern,
// then descends into both sides.
func (w *allocScan) assign(s *ast.AssignStmt, allowed bool) {
	// dst := src[:0] introduces a filter-in-place slice.
	if s.Tok == token.DEFINE && len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if isZeroReslice(s.Rhs[i]) {
				if obj := w.info().Defs[id]; obj != nil {
					w.filterSlices[obj] = true
				}
			}
		}
	}
	for _, lhs := range s.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, isMap := typeUnder(w.typeOf(ix.X)).(*types.Map); isMap && !allowed {
				w.report(lhs.Pos(), fmt.Sprintf("map write to %s on the hot path (may allocate or rehash)", exprText(ix.X)))
			}
			w.expr(ix.X, allowed)
			w.expr(ix.Index, allowed)
			continue
		}
		// Plain ident targets carry no allocation; selector/star targets
		// may still contain interesting subexpressions.
		if _, ok := lhs.(*ast.Ident); !ok {
			w.expr(lhs, allowed)
		}
	}
	if s.Tok == token.ADD_ASSIGN && isStringType(w.typeOf(s.Lhs[0])) && !allowed {
		w.report(s.Pos(), "string += concatenation allocates on the hot path")
	}
	for _, rhs := range s.Rhs {
		w.expr(rhs, allowed)
	}
}

func (w *allocScan) expr(e ast.Expr, allowed bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		w.call(e, allowed)
	case *ast.FuncLit:
		// A literal not consumed directly by a call is a materialized
		// closure; if it captures variables it is heap-allocated.
		if caps := w.captures(e); len(caps) > 0 && !allowed {
			w.report(e.Pos(), fmt.Sprintf("closure capturing %s escapes on the hot path", strings.Join(caps, ", ")))
		}
		w.funcLitBody(e, allowed)
	case *ast.CompositeLit:
		w.compositeLit(e, allowed, false)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				if !allowed {
					w.report(e.Pos(), fmt.Sprintf("&%s escapes to the heap on the hot path", compositeLitName(w, cl)))
				}
				w.compositeLit(cl, allowed, true)
				return
			}
		}
		w.expr(e.X, allowed)
	case *ast.BinaryExpr:
		if e.Op == token.ADD && isStringType(w.typeOf(e.X)) && !allowed {
			w.report(e.Pos(), "string concatenation allocates on the hot path")
		}
		w.expr(e.X, allowed)
		w.expr(e.Y, allowed)
	case *ast.ParenExpr:
		w.expr(e.X, allowed)
	case *ast.StarExpr:
		w.expr(e.X, allowed)
	case *ast.SelectorExpr:
		w.expr(e.X, allowed)
	case *ast.IndexExpr:
		w.expr(e.X, allowed)
		w.expr(e.Index, allowed)
	case *ast.IndexListExpr:
		w.expr(e.X, allowed)
	case *ast.SliceExpr:
		w.expr(e.X, allowed)
		w.expr(e.Low, allowed)
		w.expr(e.High, allowed)
		w.expr(e.Max, allowed)
	case *ast.TypeAssertExpr:
		w.expr(e.X, allowed)
	case *ast.KeyValueExpr:
		w.expr(e.Key, allowed)
		w.expr(e.Value, allowed)
	}
}

// funcLitBody scans a literal's body with its own control-flow graph, so
// the literal's error paths count as cold just like a declaration's.
func (w *allocScan) funcLitBody(lit *ast.FuncLit, allowed bool) {
	for s, cold := range BuildCFG(lit.Body).ColdStmts(w.pkg.Info) {
		if cold {
			w.cold[s] = true
		}
	}
	w.stmtList(lit.Body.List, allowed)
}

// captures lists outer local variables referenced by the literal.
func (w *allocScan) captures(lit *ast.FuncLit) []string {
	seen := make(map[*types.Var]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.info().Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Captured = declared in the enclosing function but outside the
		// literal. Package-level variables are direct references, not
		// captures.
		if v.Pos() >= w.fd.Pos() && v.Pos() < w.fd.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			seen[v] = true
			out = append(out, v.Name())
		}
		return true
	})
	return out
}

func (w *allocScan) compositeLit(cl *ast.CompositeLit, allowed, addressed bool) {
	switch typeUnder(w.typeOf(cl)).(type) {
	case *types.Slice:
		if !allowed {
			w.report(cl.Pos(), "slice literal allocates on the hot path")
		}
	case *types.Map:
		if !allowed {
			w.report(cl.Pos(), "map literal allocates on the hot path")
		}
	}
	for _, el := range cl.Elts {
		w.expr(el, allowed)
	}
}

func compositeLitName(w *allocScan, cl *ast.CompositeLit) string {
	if cl.Type != nil {
		return exprText(cl.Type) + "{...}"
	}
	return "composite literal{...}"
}

// call classifies one call expression: conversion, builtin, resolved
// function, interface method, or call through a function value.
func (w *allocScan) call(call *ast.CallExpr, allowed bool) {
	info := w.info()
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		w.conversion(call, tv.Type, allowed)
		return
	}

	// Builtins: make, new, append, panic, len, cap, copy, ...
	if id := calleeIdent(fun); id != nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			w.builtin(call, b.Name(), allowed)
			return
		}
	}

	if callee := calleeFunc(w.pkg.Info, call); callee != nil {
		callee = callee.Origin()
		w.resolvedCall(call, callee, allowed)
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			w.expr(sel.X, allowed) // receiver expression may itself allocate
		}
		w.callArgs(call, allowed)
		return
	}

	// Call through a function value.
	if !allowed && !w.funcValueOK(fun) {
		w.report(call.Pos(), fmt.Sprintf("call through stored function value %s on the hot path; hotalloc cannot follow it", exprText(fun)))
	}
	if lit, ok := fun.(*ast.FuncLit); ok {
		// Immediately-invoked literal: no closure escapes; scan the body.
		w.funcLitBody(lit, allowed)
	} else {
		w.expr(fun, allowed)
	}
	w.callArgs(call, allowed)
}

// funcValueOK allows calls through func-typed parameters and locals of the
// current function (the kernel-callback pattern: gpusim's run(fn) invokes
// what the caller passed, and the caller's literal body is scanned where
// it is written). Stored fields and globals stay opaque and are flagged.
func (w *allocScan) funcValueOK(fun ast.Expr) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := w.info().Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() >= w.fd.Pos() && v.Pos() < w.fd.End()
}

// callArgs scans call arguments; function literals passed directly as
// arguments are not materialized closures from this function's point of
// view (the callee decides whether they escape), so only their bodies are
// scanned.
func (w *allocScan) callArgs(call *ast.CallExpr, allowed bool) {
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			w.funcLitBody(lit, allowed)
			continue
		}
		w.expr(arg, allowed)
	}
}

func (w *allocScan) builtin(call *ast.CallExpr, name string, allowed bool) {
	switch name {
	case "make":
		if !allowed {
			w.report(call.Pos(), "make allocates on the hot path")
		}
	case "new":
		if !allowed {
			w.report(call.Pos(), "new allocates on the hot path")
		}
	case "append":
		if !allowed && !w.appendInPlace(call) {
			w.report(call.Pos(), fmt.Sprintf("append to %s may grow on the hot path (pre-size the buffer or reuse a scratch)", exprText(call.Args[0])))
		}
	case "panic":
		// Panic paths are cold by definition; their arguments may allocate.
		allowed = true
	}
	for _, arg := range call.Args {
		w.expr(arg, allowed)
	}
}

// appendInPlace recognizes appends that provably reuse an existing backing
// array: append(x[:0], ...) directly, or append(dst, ...) where dst was
// introduced as `dst := src[:0]`.
func (w *allocScan) appendInPlace(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	first := ast.Unparen(call.Args[0])
	if isZeroReslice(first) {
		return true
	}
	if id, ok := first.(*ast.Ident); ok {
		if obj := w.info().Uses[id]; obj != nil && w.filterSlices[obj] {
			return true
		}
	}
	return false
}

func (w *allocScan) conversion(call *ast.CallExpr, target types.Type, allowed bool) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	defer w.expr(arg, allowed)
	if allowed {
		return
	}
	src := w.typeOf(arg)
	tu, su := typeUnder(target), typeUnder(src)
	switch t := tu.(type) {
	case *types.Slice:
		if isStringType(src) {
			w.report(call.Pos(), "[]byte(string) conversion copies on the hot path")
		}
		_ = t
	case *types.Basic:
		if t.Kind() == types.String {
			if _, ok := su.(*types.Slice); ok {
				w.report(call.Pos(), "string([]byte) conversion copies on the hot path")
			}
		}
	case *types.Interface:
		if boxes(src) {
			w.report(call.Pos(), fmt.Sprintf("conversion of %s to interface boxes on the hot path", types.TypeString(src, nil)))
		}
	}
}

// resolvedCall checks a statically-resolved function or method call:
// stdlib allocators, dynamic dispatch on module interfaces, and interface
// boxing of arguments.
func (w *allocScan) resolvedCall(call *ast.CallExpr, callee *types.Func, allowed bool) {
	if allowed {
		return
	}
	path := funcPkgPath(callee)
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil {
		return
	}
	if sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		if w.inModule(path) {
			w.report(call.Pos(), fmt.Sprintf("dynamic dispatch through interface method %s on the hot path; hotalloc cannot follow it", callee.Name()))
		}
		return
	}
	if msg := stdlibAllocMsg(callee, path); msg != "" {
		w.report(call.Pos(), msg)
		return
	}
	w.checkBoxing(call, sig)
}

// stdlibAllocMsg returns a finding for stdlib calls known to allocate.
func stdlibAllocMsg(callee *types.Func, path string) string {
	if path == "reflect" {
		return "reflect." + callee.Name() + " on the hot path (reflection allocates)"
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if namedTypeIn(recv, "strings", "Builder") || namedTypeIn(recv, "bytes", "Buffer") {
			return fmt.Sprintf("%s.%s may grow its buffer on the hot path", types.TypeString(recv, types.RelativeTo(callee.Pkg())), callee.Name())
		}
		return ""
	}
	if allocFuncs[path+"."+callee.Name()] {
		return path + "." + callee.Name() + " allocates on the hot path"
	}
	return ""
}

// allocFuncs lists package-level stdlib functions that always allocate.
var allocFuncs = map[string]bool{
	"fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true,
	"fmt.Errorf": true, "fmt.Appendf": true,
	"fmt.Printf": true, "fmt.Println": true, "fmt.Print": true,
	"fmt.Fprintf": true, "fmt.Fprintln": true, "fmt.Fprint": true,
	"errors.New": true,
	"strings.Join": true, "strings.Repeat": true, "strings.Split": true,
	"strings.Fields": true, "strings.Replace": true, "strings.ReplaceAll": true,
	"strings.ToUpper": true, "strings.ToLower": true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatUint": true,
	"strconv.FormatFloat": true, "strconv.Quote": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"math/rand.New": true, "math/rand.NewSource": true, "math/rand.Perm": true,
	"bytes.Join": true, "bytes.Repeat": true, "bytes.Split": true,
	"bytes.Fields": true, "bytes.Clone": true,
	"io.ReadAll": true, "os.ReadFile": true, "os.WriteFile": true,
	"bufio.NewReader": true, "bufio.NewWriter": true,
}

// checkBoxing reports concrete values boxed into interface parameters.
func (w *allocScan) checkBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through, not boxed per-arg
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(typeUnder(pt)) {
			continue
		}
		at := w.typeOf(arg)
		if tv, ok := w.info().Types[arg]; ok && tv.IsNil() {
			continue
		}
		if boxes(at) {
			w.report(arg.Pos(), fmt.Sprintf("argument of type %s boxed into interface parameter on the hot path", types.TypeString(at, nil)))
		}
	}
}

// boxes reports whether storing a value of type t in an interface requires
// a heap allocation: pointer-shaped types (pointers, channels, maps,
// funcs, unsafe pointers) and interfaces do not.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch typeUnder(t).(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		b := typeUnder(t).(*types.Basic)
		return b.Kind() != types.UnsafePointer && b.Kind() != types.UntypedNil
	}
	return true
}

// --- small shared helpers ---

func calleeIdent(fun ast.Expr) *ast.Ident {
	switch fun := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isStringType(t types.Type) bool {
	b, ok := typeUnder(t).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isZeroReslice matches x[:0] (and x[0:0], x[:0:cap]).
func isZeroReslice(e ast.Expr) bool {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || se.High == nil {
		return false
	}
	lit, ok := ast.Unparen(se.High).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && constant.Compare(constant.MakeFromLiteral(lit.Value, token.INT, 0), token.EQL, constant.MakeInt64(0))
}

// condReadsCapLen reports whether a condition expression contains a cap()
// or len() builtin call — the guard of the amortized-grow idiom.
func condReadsCapLen(cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
			found = true
			return false
		}
		return true
	})
	return found
}
