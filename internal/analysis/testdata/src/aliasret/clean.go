package fixture

// consume reduces the aliased result before the next reuse — the
// sanctioned consume-immediately pattern.
func consume(sc *Scratch) int {
	res := view(sc, 4)
	sum := 0
	for _, v := range res {
		sum += v
	}
	return sum
}

// snapshot copies before returning, so nothing aliases the scratch.
func snapshot(sc *Scratch) []int {
	res := view(sc, 4)
	out := make([]int, len(res))
	copy(out, res)
	return out
}

// viewAll wraps view and is itself annotated — how the aliasing contract
// propagates up an API layer.
//
//texlint:scratchalias
func viewAll(sc *Scratch) []int {
	res := view(sc, 16)
	return res
}

// pinned shows the escape hatch on a retention the caller controls.
func pinned(h *holder, sc *Scratch) {
	res := view(sc, 4)
	h.kept = res //texlint:ignore aliasret the holder is cleared before every scratch reuse in this fixture's protocol
}
