package fixture

// Scratch is a reusable buffer; view returns a slice aliasing it.
type Scratch struct {
	buf []int
}

// view returns the scratch-backed result slab, resized to n. The result
// is valid until the next view call on the same Scratch.
//
//texlint:scratchalias
func view(sc *Scratch, n int) []int {
	if cap(sc.buf) < n {
		sc.buf = make([]int, n)
	}
	return sc.buf[:n]
}

type holder struct{ kept []int }

func storeField(h *holder, sc *Scratch) {
	res := view(sc, 8)
	h.kept = res // want "aliased result of fixture.view stored in field h.kept"
}

func leak(sc *Scratch) []int {
	res := view(sc, 8)
	return res // want "returned; mark leak //texlint:scratchalias or copy before returning"
}

func useAfterReuse(sc *Scratch) int {
	a := view(sc, 4)
	b := view(sc, 4)
	b[0] = 1
	return a[0] // want "read after fixture.view reused scratch sc"
}

func accumulate(sc *Scratch, rounds int) []int {
	var acc []int
	for i := 0; i < rounds; i++ {
		res := view(sc, 4)
		acc = append(acc, res...) // want "append retains aliased result of fixture.view"
	}
	return acc
}

func staleRead(sc *Scratch, rounds int) int {
	sum := 0
	var res []int
	for i := 0; i < rounds; i++ {
		if res != nil { // want "read before the call in the same loop body"
			sum += res[0] // want "read before the call in the same loop body"
		}
		res = view(sc, 4)
	}
	return sum
}
