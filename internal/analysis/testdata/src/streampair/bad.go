package fixture

import "texid/internal/gpusim"

func gemmNoSync(s *gpusim.Stream) {
	s.Gemm(64, 64, 64, gpusim.FP32, nil) // want "Gemm enqueues async work with no later sync"
}

func copyNoSync(s *gpusim.Stream) int {
	s.CopyH2D(1<<20, true, nil) // want "CopyH2D enqueues async work with no later sync"
	return 0
}

func chainNoSync(s *gpusim.Stream) {
	s.Gemm(8, 8, 8, gpusim.FP16, nil)      // want "Gemm enqueues async work with no later sync"
	s.Top2Scan(8, 8, 1, gpusim.FP16, nil)  // want "Top2Scan enqueues async work with no later sync"
	s.CopyD2H(4096, false, nil)            // want "CopyD2H enqueues async work with no later sync"
}
