package fixture

import "texid/internal/gpusim"

func gemmThenSynchronize(s *gpusim.Stream) float64 {
	s.Gemm(64, 64, 64, gpusim.FP32, nil)
	return s.Device().Synchronize()
}

func launchesThenTail(s *gpusim.Stream) float64 {
	s.CopyH2D(1<<20, true, nil)
	s.Elementwise("scale", 4096, nil)
	s.CopyD2H(4096, false, nil)
	return s.TailUS()
}

func launchThenRecord(s *gpusim.Stream, e *gpusim.Event) {
	s.Gemm(8, 8, 8, gpusim.FP16, nil)
	s.Record(e)
}

//texlint:ignore streampair fixture for the escape hatch: the caller synchronizes the device
func suppressedLaunch(s *gpusim.Stream) {
	s.Gemm(8, 8, 8, gpusim.FP32, nil)
}
