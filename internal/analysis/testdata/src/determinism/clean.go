package fixture

import (
	"math/rand"
	"sort"
)

// A seeded generator threaded explicitly is the sanctioned pattern.
func seededDraw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Collect-then-sort makes the output order-independent.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Order-insensitive accumulation over a map is fine.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Map-to-map copies do not observe iteration order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

//texlint:ignore determinism fixture for the escape hatch: this draw is intentionally unseeded
func suppressedDraw() float64 {
	return rand.Float64()
}
