package fixture

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now breaks simulation reproducibility"
}

func globalDraw() float64 {
	return rand.Float64() // want "math/rand.Float64 draws from the global rand source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle draws from the global rand source"
}

func appendedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order is random"
		out = append(out, k)
	}
	return out
}

func printedEntries(m map[string]int) {
	for k, v := range m { // want "map iteration order is random"
		fmt.Println(k, v)
	}
}

func concatenated(m map[string]int) string {
	s := ""
	for k := range m { // want "map iteration order is random"
		s += k
	}
	return s
}
