package fixture

// hot is a //texlint:hotpath root: it and everything it transitively
// calls must be free of heap allocations.
//
//texlint:hotpath
func hot(dst []float32, names []string) string {
	buf := make([]float32, 8) // want "make allocates on the hot path"
	dst = append(dst, buf...) // want "append to dst may grow on the hot path"
	deeper(len(dst))
	return names[0] + names[1] // want "string concatenation allocates on the hot path"
}

// deeper is reached transitively; findings name the chain back to the root.
func deeper(n int) *box {
	return &box{n: n} // want "escapes to the heap on the hot path .hot path: fixture.hot -> fixture.deeper."
}

type box struct{ n int }

//texlint:hotpath
func spawns(fn func()) {
	go fn() // want "go statement launches a goroutine"
}

//texlint:hotpath
func tallies(m map[string]int, k string) {
	m[k] = m[k] + 1 // want "map write to m on the hot path"
}
