package fixture

import "fmt"

type scratch struct{ buf []float32 }

// amortized demonstrates the grow-once-then-reuse idiom: an allocation
// guarded by a cap()/len() test is the sanctioned scratch pattern.
//
//texlint:hotpath
func amortized(sc *scratch, n int) []float32 {
	if cap(sc.buf) < n {
		sc.buf = make([]float32, n)
	}
	sc.buf = sc.buf[:n]
	return sc.buf
}

// guarded shows that error formatting is cold: every path through the
// branch ends in an error return, so the fmt.Errorf is off the hot path.
//
//texlint:hotpath
func guarded(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative count %d", n)
	}
	return n * 2, nil
}

// filter demonstrates filter-in-place: out shares keep's backing array
// and the append can never grow past the donor's capacity.
//
//texlint:hotpath
func filter(keep []int) []int {
	out := keep[:0]
	for _, v := range keep {
		if v > 0 {
			out = append(out, v)
		}
	}
	return out
}

// buildTable allocates, but hot-path traversal stops at the coldpath
// annotation (the reason is mandatory).
//
//texlint:coldpath built once on first use and cached by the caller for the rest of the run
func buildTable() []int {
	return make([]int, 128)
}

//texlint:hotpath
func tableLookup(t []int, i int) int {
	if t == nil {
		t = buildTable()
	}
	return t[i%len(t)]
}

// allocFallback allocates by design; the hot caller prunes the edge with
// a justified ignore on the call line instead.
func allocFallback(n int) []float32 {
	return make([]float32, n)
}

//texlint:hotpath
func withFallback(buf []float32, n int) []float32 {
	if buf == nil {
		return allocFallback(n) //texlint:ignore hotalloc nil-buffer fallback runs once at setup, not in the steady state
	}
	return buf[:n]
}
