package fixture

// jobs is consumed by spawnRanger's goroutine but no close(jobs) exists
// anywhere in the package: the worker can never finish.
var jobs = make(chan int)

func spawnRanger() {
	go func() { // want "ranges over channel jobs, which is never closed in this package"
		for j := range jobs {
			_ = j
		}
	}()
}

// spawnForever loops with no return, break, or termination signal.
func spawnForever(work chan int) {
	go func() { // want "loops forever with no return, break, or termination signal"
		for {
			select {
			case w := <-work:
				_ = w
			}
		}
	}()
}

// spawnBlocked parks forever on an empty select.
func spawnBlocked() {
	go func() { // want "blocks forever on an empty select"
		select {}
	}()
}

// drain is a named worker with no exit; the spawn site is flagged.
func drain(ch chan int) {
	for v := range ch {
		_ = v
	}
}

var pending = make(chan int)

func spawnNamed() {
	go drain(pending) // want "ranges over channel ch, which is never closed in this package"
}
