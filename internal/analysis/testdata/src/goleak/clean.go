package fixture

import (
	"context"
	"sync"
)

// fanOut is the coordinator-closes pattern: workers range a channel the
// spawner closes once all work is submitted.
func fanOut(n int, fn func(int)) {
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// watch loops forever but selects on ctx.Done() and returns: a provable
// exit path.
func watch(ctx context.Context, events chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case ev := <-events:
				_ = ev
			}
		}
	}()
}

// bounded runs to the end of its body: nothing to prove.
func bounded(result chan<- int) {
	go func() {
		result <- 42
	}()
}

// stopOnSentinel breaks out of the loop at loop level.
func stopOnSentinel(ch chan int) {
	go func() {
		for {
			v := <-ch
			if v < 0 {
				break
			}
		}
	}()
}
