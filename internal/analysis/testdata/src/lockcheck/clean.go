package fixture

// The blocking work happens outside the critical section, the early
// return unlocks on its own path, and the goroutine body runs after the
// caller releases the mutex — none of these may be flagged.

func (c *counter) sendAfterUnlock() {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	c.ch <- v
}

func (c *counter) guardedEarlyReturn(cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

func (c *counter) deferredFastPath(cond bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cond {
		return 0
	}
	return c.n
}

func (c *counter) goroutineEscapes() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.ch <- 1
	}()
}

//texlint:ignore lockcheck fixture for the escape hatch: the send under lock is the point here
func (c *counter) suppressedSend() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ch <- c.n
}
