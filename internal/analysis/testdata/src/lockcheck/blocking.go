package fixture

import (
	"net/http"
	"sync"

	"texid/internal/kvstore"
)

// A mutex held across a cluster RPC or TCP connect serializes every other
// request on that lock behind one slow peer.
type rpc struct {
	mu   sync.Mutex
	cl   *http.Client
	addr string
	conn *kvstore.Client
}

func (r *rpc) fetchLocked(url string) (*http.Response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cl.Get(url) // want "r.mu is held across an HTTP round-trip"
}

func (r *rpc) postLocked(url string) (*http.Response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cl.Post(url, "application/octet-stream", nil) // want "r.mu is held across an HTTP round-trip"
}

func (r *rpc) dialLocked() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	conn, err := kvstore.Dial(r.addr) // want "r.mu is held across kvstore.Dial"
	r.conn = conn
	return err
}

// dialThenPublish connects outside the critical section and only takes the
// lock to publish the connection: the allowed shape.
func (r *rpc) dialThenPublish() error {
	conn, err := kvstore.DialTimeout(r.addr, 0)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.conn = conn
	r.mu.Unlock()
	return nil
}
