package fixture

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

func (c *counter) sendLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ch <- c.n // want "c.mu is held across a channel send"
}

func (c *counter) recvLocked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.ch // want "c.mu is held across a channel receive"
}

func (c *counter) sleepLocked() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "c.mu is held across time.Sleep"
	c.mu.Unlock()
}

func (c *counter) earlyReturn(cond bool) {
	c.mu.Lock()
	if cond {
		return // want "return with c.mu still held"
	}
	c.mu.Unlock()
}

func (c *counter) readEarlyReturn(cond bool) int {
	c.rw.RLock()
	if cond {
		return 0 // want "return with c.rw still held"
	}
	c.rw.RUnlock()
	return c.n
}

func (c *counter) waitLocked(wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want "c.mu is held across sync.WaitGroup.Wait"
}
