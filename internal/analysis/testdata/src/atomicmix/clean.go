package fixture

import "sync/atomic"

// Wrapper types make mixed access impossible by construction.
var gauge atomic.Int64

func setGauge(v int64) { gauge.Store(v) }
func readGauge() int64 { return gauge.Load() }

// A raw variable is fine as long as every access is atomic.
var total int64

func addTotal(v int64) { atomic.AddInt64(&total, v) }
func readTotal() int64 { return atomic.LoadInt64(&total) }

// The escape hatch: a plain write justified as happening before any
// concurrent reader exists.
var ready int64

func markReady() {
	ready = 1 //texlint:ignore atomicmix runs in the single-goroutine setup phase before any reader starts
}

func isReady() bool { return atomic.LoadInt64(&ready) != 0 }
