package fixture

import "sync/atomic"

var counter int64

func bump() {
	atomic.AddInt64(&counter, 1)
}

func racyRead() int64 {
	return counter // want "counter is accessed with sync/atomic at .+ but plainly here"
}

type stats struct {
	hits int64
}

func (s *stats) record() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) snapshot() int64 {
	return s.hits // want "hits is accessed with sync/atomic at .+ but plainly here"
}
