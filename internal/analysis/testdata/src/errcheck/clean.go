package fixture

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

func explicitDiscard() {
	_ = mayFail()
}

func deferredCleanup(f *os.File) {
	defer f.Close()
}

func exemptWriters(sb *strings.Builder, bw *bufio.Writer) error {
	fmt.Println("stdout is exempt")
	fmt.Fprintf(os.Stderr, "stderr is exempt\n")
	fmt.Fprintf(sb, "in-memory writers are exempt")
	sb.WriteString("so are their methods")
	bw.WriteString("bufio errors are sticky")
	return bw.Flush() // Flush is where the sticky error surfaces; it is checked.
}

//texlint:ignore errcheck fixture for the escape hatch: this drop is deliberate
func suppressedDrop() {
	mayFail()
}
