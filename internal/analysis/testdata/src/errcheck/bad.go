package fixture

import (
	"errors"
	"os"
)

func mayFail() error { return errors.New("boom") }

func openAndSize(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	f.Close() // want "error result of f.Close is dropped"
	return st.Size(), nil
}

func droppedCall() {
	mayFail() // want "error result of mayFail is dropped"
}

func droppedMultiValue() {
	os.Open("nope") // want "error result of os.Open is dropped"
}

func droppedInGoroutine() {
	go mayFail() // want "error result of mayFail is dropped"
}
