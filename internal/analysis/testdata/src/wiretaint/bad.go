package fixture

import "net"

// recvAlloc reads a length directly off the wire and trusts it. The
// connection type itself is the taint source (no annotation needed).
func recvAlloc(c net.Conn) []byte {
	var hdr [2]byte
	c.Read(hdr[:])
	n := int(hdr[0])<<8 | int(hdr[1])
	return make([]byte, n) // want "untrusted length flows into make"
}

// parseFrame decodes a length-prefixed frame from an untrusted buffer:
// the annotation taints every parameter.
//
//texlint:untrusted
func parseFrame(b []byte) []byte {
	n := int(b[0])
	allocate(n)
	if len(b) > 1 {
		_ = b[:n] // want "untrusted value used as a slice bound"
	}
	for i := 0; i < n; i++ { // want "untrusted value bounds this loop"
		_ = i
	}
	return nil
}

// allocate is reached only through parseFrame's tainted argument; the
// finding names the interprocedural chain.
func allocate(n int) []byte {
	return make([]byte, n) // want "untrusted length flows into make.*untrusted path: fixture.parseFrame -> fixture.allocate"
}

// pick indexes a table with a wire-supplied value.
//
//texlint:untrusted
func pick(table []int, i int) int {
	return table[i] // want "untrusted value used as a slice index"
}

type frameReader struct {
	buf []byte
	pos int
}

// next yields the next length byte from the wire buffer. Its own cursor is
// guarded (the len comparison sanitizes r.pos), but the returned byte stays
// tainted.
//
//texlint:untrusted
func (r *frameReader) next() int {
	if r.pos >= len(r.buf) {
		return 0
	}
	v := int(r.buf[r.pos])
	r.pos++
	return v
}

// recvHeader never touches the wire itself; taint arrives upward through
// next's result, and the chain records that edge.
func recvHeader(r *frameReader) []int {
	n := r.next()
	return make([]int, n) // want "untrusted length flows into make.*untrusted path: fixture.frameReader.next -> fixture.recvHeader"
}

// badVarAnn: the annotation only means something on functions.
//
//texlint:untrusted // want "texlint:untrusted must be in the doc comment of a function declaration"
var badVarAnn int

// noInputs has nothing to taint.
//
//texlint:untrusted // want "texlint:untrusted marks inputs as hostile, but this function has no receiver or parameters"
func noInputs() int { return 42 }
