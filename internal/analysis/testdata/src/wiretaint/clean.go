package fixture

import (
	"io"

	"texid/internal/limits"
)

const maxClean = 1 << 12

// boundedParse checks the wire-supplied count against a constant bound
// before allocating: the comparison sanitizes the value.
//
//texlint:untrusted
func boundedParse(b []byte) [][]byte {
	n := int(b[0])
	if n < 0 || n > maxClean {
		return nil
	}
	return make([][]byte, n)
}

// clamped trusts the builtin min with a constant operand.
//
//texlint:untrusted
func clamped(b []byte) []byte {
	n := int(b[0])
	return make([]byte, min(n, 64))
}

// viaLimits routes the hostile length through the canonical helpers: the
// limits call both validates n and returns trusted bytes.
//
//texlint:untrusted
func viaLimits(r io.Reader, n int) ([]byte, error) {
	if err := limits.Check("payload", n, maxClean); err != nil {
		return nil, err
	}
	return limits.ReadChunked(r, n, 0)
}

// lenChecked validates the claim against the payload actually present
// before slicing — the truncation-check idiom.
//
//texlint:untrusted
func lenChecked(b []byte, n int) []byte {
	if n > len(b) {
		return nil
	}
	return b[:n]
}

// committed sizes from data already in memory: len of a tainted slice is
// trusted (only the wire's *claims* about length are hostile).
//
//texlint:untrusted
func committed(payload []byte) []byte {
	out := make([]byte, len(payload))
	copy(out, payload)
	return out
}

// edgeReviewed stops propagation at a reviewed call edge.
//
//texlint:untrusted
func edgeReviewed(b []byte) []byte {
	n := int(b[0])
	return grow(n) //texlint:ignore wiretaint n is a cursor delta bounded by the framing layer above
}

// grow is only called through the reviewed edge: no taint arrives here.
func grow(n int) []byte {
	return make([]byte, n)
}
