package fixture

import "sync"

// Consistent global order (muC before muD everywhere, including through a
// call) produces an acyclic acquisition graph: no findings.
var (
	muC sync.Mutex
	muD sync.Mutex
)

func cdOrderDirect() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

func cdOrderViaCall() {
	muC.Lock()
	lockD()
	muC.Unlock()
}

func lockD() {
	muD.Lock()
	muD.Unlock()
}

type account struct {
	mu  sync.Mutex
	bal int
}

// transfer locks two *instances* of the same class; cross-instance
// ordering within one class is sharding, not self-deadlock, and is not
// reported (a runtime ordering discipline — e.g. by account ID — is the
// fix, which a static class graph cannot see).
func transfer(from, to *account, amount int) {
	from.mu.Lock()
	to.mu.Lock()
	from.bal -= amount
	to.bal += amount
	to.mu.Unlock()
	from.mu.Unlock()
}

type reader struct {
	rw sync.RWMutex
	n  int
}

// readThenWrite releases the read half before taking the write half: the
// legal way to "upgrade".
func (r *reader) readThenWrite() {
	r.rw.RLock()
	n := r.n
	r.rw.RUnlock()
	r.rw.Lock()
	r.n = n + 1
	r.rw.Unlock()
}

// sharedReaders takes the read half twice on a shared path; R-after-R is
// legal on an RWMutex and is not reported.
func (r *reader) peekTwice() int {
	r.rw.RLock()
	a := r.n
	r.rw.RUnlock()
	r.rw.RLock()
	b := r.n
	r.rw.RUnlock()
	return a + b
}
