package fixture

import "sync"

// Two package-level mutexes acquired in opposite orders on two paths: the
// classic AB-BA deadlock. The cycle is reported once, at the lexically
// first witness acquisition.
var (
	muA sync.Mutex
	muB sync.Mutex
)

func abOrder() {
	muA.Lock()
	muB.Lock() // want "lock-order cycle between lockorder.muA and lockorder.muB"
	muB.Unlock()
	muA.Unlock()
}

func baOrder() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

type gate struct {
	rw sync.RWMutex
	mu sync.Mutex
	n  int
}

// upgrade attempts the RLock→Lock upgrade: the Lock can never be granted
// while this goroutine still holds the read half.
func (g *gate) upgrade() int {
	g.rw.RLock()
	n := g.n
	g.rw.Lock() // want "RLock→Lock upgrade on lockorder.gate.rw"
	g.n = n + 1
	g.rw.Unlock()
	g.rw.RUnlock()
	return n
}

// relock reacquires a plain mutex it already holds.
func (g *gate) relock() {
	g.mu.Lock()
	g.mu.Lock() // want "lockorder.gate.mu is already held here; reacquiring it self-deadlocks"
	g.mu.Unlock()
	g.mu.Unlock()
}
