package fixture

// getPutClean uses the object strictly before the put.
func getPutClean() int {
	v := pool.Get().(*item)
	n := v.n
	pool.Put(v)
	return n
}

// deferredPut is the standard scratch idiom: the deferred Put runs after
// every body use, so uses between defer and return are fine.
func deferredPut(data []byte) int {
	v := pool.Get().(*item)
	defer pool.Put(v)
	v.buf = append(v.buf[:0], data...)
	return len(v.buf)
}

// rebind gets a fresh object after the put: the new binding is unrelated
// to the recycled one.
func rebind() int {
	v := pool.Get().(*item)
	pool.Put(v)
	v = pool.Get().(*item)
	n := v.n
	pool.Put(v)
	return n
}

// recycleLast hands the item back as its final act.
func recycleLast(it *item) {
	it.n = 0
	recycle(it)
}
