package fixture

import "sync"

type item struct {
	n   int
	buf []byte
}

var pool = sync.Pool{New: func() any { return new(item) }}

// useAfterPut touches the object after handing it back: the pool may have
// reissued it to another goroutine already.
func useAfterPut() int {
	v := pool.Get().(*item)
	v.n = 7
	pool.Put(v)
	return v.n // want "v is used after being handed back to the sync.Pool"
}

// doublePut recycles the same object twice.
func doublePut() {
	v := pool.Get().(*item)
	pool.Put(v)
	pool.Put(v) // want "v is recycled twice"
}

// deferredEscape returns the object a deferred Put recycles on exit.
func deferredEscape() *item {
	v := pool.Get().(*item)
	defer pool.Put(v)
	v.n = 1
	return v // want "v is returned, but a deferred the sync.Pool recycles it"
}

// recycle hands an item back to a package freelist; callers must not
// touch it afterwards.
//
//texlint:freelist
func recycle(it *item) {
	it.n = 0
	it.buf = it.buf[:0]
	freelist = append(freelist, it)
}

var freelist []*item

func useAfterRecycle(it *item) {
	recycle(it)
	it.n = 5 // want "it is used after being handed back to recycle"
}
