package fixture

import (
	"time"

	"texid/internal/gpusim"
)

// launch hands a functional payload to a gpusim stream; the payload runs
// on the simulated timeline and must not read the wall clock.
func launch(s *gpusim.Stream) {
	s.Elementwise("elementwise/scale", 4096, func() {
		_ = time.Now() // want "time.Now inside gpusim.Stream.Elementwise payload"
	})
}

// advance opts into the simulated-clock domain explicitly.
//
//texlint:clockdomain
func advance() {
	time.Sleep(time.Millisecond) // want "time.Sleep in simulated-clock code"
}

//texlint:clockdomain
func tick() float64 {
	return readClock()
}

// readClock is reached transitively from the annotated root tick.
func readClock() float64 {
	return float64(time.Now().UnixNano()) // want "sim time must flow from the device clock .reached via fixture.tick -> fixture.readClock"
}
