package fixture

import (
	"time"

	"texid/internal/gpusim"
)

// simNow is the sanctioned pattern: simulated time flows from the device
// clock, never from the host's wall clock.
//
//texlint:clockdomain
func simNow(d *gpusim.Device) float64 {
	return d.Synchronize()
}

// hostBenchmark lives outside the domain (a wall-clock harness measuring
// the simulator itself) and may use time freely.
func hostBenchmark() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// traced shows the escape hatch: a justified ignore on the offending line.
//
//texlint:clockdomain
func traced() int64 {
	return time.Now().UnixNano() //texlint:ignore clockdomain debug tracing stamp, stripped from production builds and never fed back into sim time
}
