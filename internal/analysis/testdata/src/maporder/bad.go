package fixture

import "fmt"

// emit is a deterministic root: its output must not depend on map order.
//
//texlint:deterministic
func emit(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order is random but this loop feeds deterministic output"
		out = append(out, k)
	}
	return out
}

// format is reached transitively; the finding names the chain back to the
// root.
func format(m map[string]int) string {
	s := ""
	for k, v := range m { // want "map iteration order is random.*deterministic path: fixture.report -> fixture.format"
		s += fmt.Sprintf("%s=%d;", k, v)
	}
	return s
}

// report promises byte-stable output but delegates to format.
//
//texlint:deterministic
func report(m map[string]int) string {
	return format(m)
}

// race returns whichever channel happened to be ready first.
//
//texlint:deterministic
func race(a, b chan int) int {
	select { // want "select picks a random ready case"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// badDetAnn: the annotation only means something on functions.
//
//texlint:deterministic // want "texlint:deterministic must be in the doc comment of a function declaration"
var badDetAnn int
