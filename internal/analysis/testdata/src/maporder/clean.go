package fixture

import "sort"

// sortedEmit uses the collect-then-sort idiom: the iteration order never
// reaches the output.
//
//texlint:deterministic
func sortedEmit(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// total is order-insensitive accumulation: addition commutes.
//
//texlint:deterministic
func total(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// guarded stops traversal at a reviewed call edge.
//
//texlint:deterministic
func guarded() int {
	return firstReady() //texlint:ignore maporder single-producer channel; arrival order reviewed as immaterial
}

// firstReady is only called through the reviewed edge, so its select is
// out of the deterministic closure.
func firstReady() int {
	a, b := make(chan int, 1), make(chan int, 1)
	a <- 1
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// debugDump is not reachable from any deterministic root: its ordering is
// not maporder's business.
func debugDump(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}
