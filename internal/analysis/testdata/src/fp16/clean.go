package fixture

import "texid/internal/half"

func rounded(f float32) half.Float16 {
	return half.FromFloat32(f)
}

func roundTrip(f half.Float16) half.Float16 {
	return half.FromBits(f.Bits())
}

func accumulate(a, b, acc half.Float16) half.Float16 {
	return half.FMA(a, b, acc)
}

func widened(a, b half.Float16) float32 {
	return a.Float32() + b.Float32()
}

func compare(a, b half.Float16) bool {
	return a == b
}

//texlint:ignore fp16 fixture for the escape hatch: bit-pattern arithmetic on purpose
func suppressedAdd(a, b half.Float16) half.Float16 {
	return a + b
}
