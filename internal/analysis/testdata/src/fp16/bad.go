package fixture

import "texid/internal/half"

func rawConversion(bits uint16) half.Float16 {
	return half.Float16(bits) // want "conversion writes a raw bit pattern"
}

func rawAdd(a, b half.Float16) half.Float16 {
	return a + b // want "native \+ on half.Float16"
}

func rawScale(a half.Float16) half.Float16 {
	return a * half.FromFloat32(2) // want "native \* on half.Float16"
}
