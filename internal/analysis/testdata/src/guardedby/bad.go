package fixture

import "sync"

type registry struct {
	mu sync.Mutex
	// names is the live name table.
	//texlint:guards mu
	names map[string]int
	next  int //texlint:guards mu
}

// lookupUnlocked reads a guarded field with no lock anywhere on the path.
func (r *registry) lookupUnlocked(name string) int {
	return r.names[name] // want "registry.names is read without mu"
}

// bumpUnlocked writes a guarded field with no lock.
func (r *registry) bumpUnlocked() {
	r.next++ // want "registry.next is written without mu.Lock held"
}

// lockTooLate releases the mutex before the write.
func (r *registry) lockTooLate(name string) {
	r.mu.Lock()
	id := r.next
	r.mu.Unlock()
	r.names[name] = id // want "registry.names is written without mu.Lock held"
}

type stats struct {
	rw sync.RWMutex
	//texlint:guards rw
	total int
}

// addUnderRead holds only the read half while writing: readers running
// concurrently would observe a torn update.
func (s *stats) addUnderRead(n int) {
	s.rw.RLock()
	s.total += n // want "stats.total is written without rw.Lock held"
	s.rw.RUnlock()
}

type orphan struct {
	//texlint:guards missing
	n int // want "guards names .missing., but orphan has no such field"
}

type notAMutex struct {
	guard int
	//texlint:guards guard
	n int // want "notAMutex.guard is not a sync.Mutex or sync.RWMutex"
}
