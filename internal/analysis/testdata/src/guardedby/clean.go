package fixture

import (
	"sync"
	"sync/atomic"
)

type table struct {
	mu sync.RWMutex
	//texlint:guards mu
	rows map[string]int
	//texlint:guards mu
	gen int64

	// hits is atomic: sync/atomic accesses carry their own ordering and
	// need no lock.
	//texlint:guards mu
	hits int64
}

// newTable composes the value before publication: guarded fields of a
// fresh local are exempt until the constructor returns.
func newTable() *table {
	t := &table{}
	t.rows = make(map[string]int)
	t.gen = 1
	return t
}

// get holds the read half for a read: sufficient.
func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

// put holds the write half for writes.
func (t *table) put(k string, v int) {
	t.mu.Lock()
	t.rows[k] = v
	t.gen++
	t.mu.Unlock()
}

// putLocked touches guarded fields with no local lock, but every caller
// holds the write half — the entry-held fixpoint proves it.
func (t *table) putLocked(k string, v int) {
	t.rows[k] = v
	t.gen++
}

func (t *table) putTwo(k1, k2 string, v int) {
	t.mu.Lock()
	t.putLocked(k1, v)
	t.putLocked(k2, v)
	t.mu.Unlock()
}

// bump uses sync/atomic on the guarded counter: allowed lock-free.
func (t *table) bump() int64 {
	return atomic.AddInt64(&t.hits, 1)
}
