package fixture

import "sync/atomic"

// docIgnored's doc-group directive names two checks; it must suppress
// every finding of both checks anywhere in the declaration.
//
//texlint:ignore hotalloc,atomicmix fixture: a doc-group directive covers the whole declaration for every listed check
//texlint:hotpath
func docIgnored() []int {
	plain = plain + 1
	return make([]int, 4)
}

var plain int64

func touchAtomic() {
	atomic.AddInt64(&plain, 1)
}

//texlint:hotpath
func trailingIgnored() []int {
	return make([]int, 4) //texlint:ignore hotalloc fixture: a trailing directive covers exactly its own line
}

//texlint:hotpath
func notIgnored() []int {
	return make([]int, 8)
}

// A directive in a var block's doc group spans the whole GenDecl, not
// just the line below the comment.
//
//texlint:ignore hotalloc fixture: var-block doc directive spans the declaration
var (
	blockBuf = make([]int, 16)
	blockTab = make([]int, 32)
)

//texlint:ignore nosuchcheck fixture: unknown check names must be diagnosed
var sentinel int64

func useAll() int64 {
	_ = blockBuf
	_ = blockTab
	return atomic.LoadInt64(&sentinel)
}
