package analysis

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"
)

// TestIgnoreEdgeCases pins the //texlint:ignore placement semantics on a
// dedicated fixture: comma-separated check lists, doc-group directives
// covering whole declarations (func and var block), trailing directives
// covering one line, and the directive check rejecting unknown names.
func TestIgnoreEdgeCases(t *testing.T) {
	pkg, err := fixtureLoad("testdata/src/ignoreedge")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAll([]*Package{pkg}, []*Analyzer{NewHotAlloc(), NewAtomicMix()})

	byCheck := map[string][]Diagnostic{}
	for _, d := range diags {
		byCheck[d.Check] = append(byCheck[d.Check], d)
	}

	// Every atomicmix finding sits inside docIgnored, whose comma list
	// names atomicmix; none may survive.
	if got := byCheck["atomicmix"]; len(got) != 0 {
		t.Errorf("atomicmix findings survived the comma-list ignore: %v", got)
	}
	// The only hotalloc survivor is notIgnored's make: docIgnored is
	// suppressed by its doc group, trailingIgnored by its trailing
	// directive, and the var block by its GenDecl doc directive.
	hot := byCheck["hotalloc"]
	if len(hot) != 1 || !strings.Contains(hot[0].Message, "make allocates on the hot path") {
		t.Errorf("want exactly one surviving hotalloc finding (notIgnored's make), got %v", hot)
	}
	// The bogus check name in the last directive is itself a finding.
	dir := byCheck["directive"]
	if len(dir) != 1 || !strings.Contains(dir[0].Message, `unknown check "nosuchcheck"`) {
		t.Errorf(`want exactly one directive finding about unknown check "nosuchcheck", got %v`, dir)
	}
	if extra := len(diags) - len(hot) - len(dir); extra != 0 {
		t.Errorf("unexpected findings from other checks: %v", diags)
	}

	// Placement semantics, probed directly through the suppression index.
	prog := BuildProgram([]*Package{pkg})
	docMake := makePosUnder(t, pkg, "docIgnored")
	for _, tc := range []struct {
		check string
		want  bool
	}{
		{"hotalloc", true},  // named in the comma list
		{"atomicmix", true}, // named in the comma list
		{"aliasret", false}, // not named: the list scopes the ignore
	} {
		if got := prog.Suppressed(tc.check, docMake); got != tc.want {
			t.Errorf("doc-group ignore: Suppressed(%q) = %v, want %v", tc.check, got, tc.want)
		}
	}
	if !prog.Suppressed("hotalloc", makePosUnder(t, pkg, "trailingIgnored")) {
		t.Error("trailing ignore must suppress its own line")
	}
	if prog.Suppressed("hotalloc", makePosUnder(t, pkg, "notIgnored")) {
		t.Error("notIgnored has no directive; nothing may be suppressed there")
	}
	// blockTab sits two lines below the directive comment: only the
	// GenDecl-range rule (not line+1 adjacency) can cover it.
	if !prog.Suppressed("hotalloc", makePosUnder(t, pkg, "blockTab")) {
		t.Error("var-block doc ignore must cover the whole GenDecl")
	}
}

// makePosUnder returns the position of the first make(...) call inside the
// top-level declaration that declares name (a func or a var in a block).
func makePosUnder(t *testing.T, pkg *Package, name string) token.Pos {
	t.Helper()
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if !declares(decl, name) {
				continue
			}
			var pos token.Pos
			ast.Inspect(decl, func(n ast.Node) bool {
				if pos.IsValid() {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
						pos = call.Pos()
						return false
					}
				}
				return true
			})
			if pos.IsValid() {
				return pos
			}
		}
	}
	t.Fatalf("no make call under declaration %q", name)
	return token.NoPos
}

func declares(decl ast.Decl, name string) bool {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		return d.Name.Name == name
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, n := range vs.Names {
					if n.Name == name {
						return true
					}
				}
			}
		}
	}
	return false
}
