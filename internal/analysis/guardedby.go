package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// guardedby enforces `//texlint:guards <mutex>` field annotations: a field
// so annotated may only be read with its protecting mutex read- or
// write-held and only written with it write-held. The check is
// whole-program — a method called only with the lock held (per the
// entry-held fixpoint) may touch guarded fields without locking locally.
//
// Allowances, in decreasing order of frequency:
//   - constructor/pre-publication: accesses through a local variable bound
//     to a freshly composed value (`v := &T{...}`, `var v T`, `new(T)`)
//     that has not escaped yet are unguarded by construction;
//   - sync/atomic call arguments are skipped by the walker (atomic fields
//     carry their own ordering);
//   - accesses inside function literals fall back to locally held locks
//     only (the literal's execution context is unknown), so a closure that
//     locks correctly still passes.
func NewGuardedBy() *Analyzer {
	return &Analyzer{
		Name: "guardedby",
		Doc:  "enforce //texlint:guards field annotations: guarded fields only reachable with the protecting mutex held",
		RunProgram: func(prog *Program) []Diagnostic {
			return runGuardedBy(prog)
		},
	}
}

// guardInfo binds one struct field to its protecting mutex class.
type guardInfo struct {
	mutexClass string // lock class of the guard, e.g. "pkg.Engine.mu"
	mutexName  string // field name of the guard, for messages
}

func runGuardedBy(prog *Program) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: prog.Fset.Position(pos), Check: "guardedby",
			Message: fmt.Sprintf(format, args...),
		})
	}

	guards := collectGuards(prog, report)
	if len(guards) == 0 {
		return diags
	}

	entry := prog.entryHeld()

	// Deterministic order over functions.
	fns := make([]*types.Func, 0, len(prog.Funcs))
	for fn := range prog.Funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	for _, fn := range fns {
		fi := prog.Funcs[fn]
		fresh := freshLocals(fi)
		ent := entry[fn]
		v := &lockVisitor{
			info: fi.Pkg.Info,
			onAccess: func(sel *ast.SelectorExpr, field *types.Var, write bool, held heldSet, inLit bool) {
				g, guarded := guards[field]
				if !guarded {
					return
				}
				if rootIsFresh(fi.Pkg.Info, sel.X, fresh) {
					return // pre-publication construction
				}
				if holdsGuard(g.mutexClass, write, held, ent, inLit) {
					return
				}
				verb := "read"
				need := "(R)Lock"
				if write {
					verb = "written"
					need = "Lock"
				}
				report(sel.Sel.Pos(), "%s.%s is %s without %s held (field is //texlint:guards %s); lock it, or make every caller hold it",
					fieldOwnerName(field), field.Name(), verb, g.mutexName+"."+need, g.mutexName)
			},
		}
		v.walkBody(fi.Decl.Body)
	}
	return diags
}

// holdsGuard reports whether the guard class is held with sufficient
// strength: writes need the write half, reads accept either half.
func holdsGuard(class string, write bool, held heldSet, ent map[string]entryInfo, inLit bool) bool {
	if h, ok := held[class]; ok {
		return !write || h.kind == 'W'
	}
	if inLit {
		return false
	}
	if info, ok := ent[class]; ok {
		return !write || info.kind == 'W'
	}
	return false
}

// collectGuards parses every //texlint:guards field annotation in the
// program, validating that the named guard is a sibling sync.Mutex or
// sync.RWMutex field. It returns a map from the guarded *types.Var to its
// binding.
func collectGuards(prog *Program, report func(pos token.Pos, format string, args ...any)) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				typeObj, ok := pkg.Info.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					return true
				}
				class := typeObj.Pkg().Path() + "." + typeObj.Name()

				// Index sibling fields by name for guard validation.
				fieldByName := make(map[string]*ast.Field)
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						fieldByName[name.Name] = fld
					}
				}

				for _, fld := range st.Fields.List {
					mutexName := guardsDirectiveOn(fld)
					if mutexName == "" {
						continue
					}
					if len(fld.Names) == 0 {
						report(fld.Pos(), "texlint:guards on an embedded field is not supported; name the field")
						continue
					}
					guardFld, ok := fieldByName[mutexName]
					if !ok {
						report(fld.Pos(), "texlint:guards names %q, but %s has no such field", mutexName, ts.Name.Name)
						continue
					}
					if tv, ok := pkg.Info.Info.Types[guardFld.Type]; !ok || !isSyncMutexType(tv.Type) {
						report(fld.Pos(), "texlint:guards %s: %s.%s is not a sync.Mutex or sync.RWMutex", mutexName, ts.Name.Name, mutexName)
						continue
					}
					for _, name := range fld.Names {
						if obj, ok := pkg.Info.Info.Defs[name].(*types.Var); ok {
							guards[obj] = guardInfo{
								mutexClass: class + "." + mutexName,
								mutexName:  mutexName,
							}
						}
					}
				}
				return true
			})
		}
	}
	return guards
}

// guardsDirectiveOn returns the mutex name of a //texlint:guards directive
// in the field's doc or line comment, or "".
func guardsDirectiveOn(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if directiveIs(c.Text, guardsPrefix) {
				arg := strings.TrimSpace(strings.TrimPrefix(c.Text, guardsPrefix))
				if i := strings.IndexAny(arg, " \t"); i >= 0 {
					arg = arg[:i]
				}
				return arg
			}
		}
	}
	return ""
}

// fieldOwnerName renders the owning struct's name for messages.
func fieldOwnerName(field *types.Var) string {
	// The field's parent scope does not name the struct; walk the package
	// scope for a named type whose underlying struct contains the field.
	if pkg := field.Pkg(); pkg != nil {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == field {
					return tn.Name()
				}
			}
		}
	}
	return "struct"
}

// freshLocals collects local variables bound to freshly composed values —
// `v := &T{...}`, `v := T{...}`, `v := new(T)`, `var v T` — whose guarded
// fields are pre-publication and therefore exempt. Assigning the variable
// anywhere else (aliasing an existing value) removes the exemption; being
// passed to a call or stored does not, matching the constructor pattern
// where the value is composed and then returned.
func freshLocals(fi *FuncInfo) map[*types.Var]bool {
	fresh := make(map[*types.Var]bool)
	unfresh := make(map[*types.Var]bool)
	mark := func(lhs ast.Expr, isFresh bool) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj, ok := fi.Pkg.Info.Info.Defs[id].(*types.Var)
		if !ok {
			if obj, ok2 := fi.Pkg.Info.Info.Uses[id].(*types.Var); ok2 {
				if !isFresh {
					unfresh[obj] = true
				}
				return
			}
			return
		}
		if isFresh {
			fresh[obj] = true
		} else {
			unfresh[obj] = true
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					mark(lhs, isFreshExpr(n.Rhs[i]))
				} else if len(n.Rhs) == 1 {
					mark(lhs, false)
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, name := range n.Names {
					mark(name, true) // var v T: zero value, unpublished
				}
				return true
			}
			for i, name := range n.Names {
				if i < len(n.Values) {
					mark(name, isFreshExpr(n.Values[i]))
				}
			}
		}
		return true
	})
	for obj := range unfresh {
		delete(fresh, obj)
	}
	return fresh
}

// isFreshExpr reports whether an expression composes a brand-new value.
func isFreshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, lit := ast.Unparen(e.X).(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// rootIsFresh reports whether the base of a selector spine is a fresh
// (pre-publication) local.
func rootIsFresh(info *PackageInfo, e ast.Expr, fresh map[*types.Var]bool) bool {
	if len(fresh) == 0 {
		return false
	}
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj, ok := info.Info.Uses[x].(*types.Var)
			if !ok {
				obj, ok = info.Info.Defs[x].(*types.Var)
			}
			return ok && fresh[obj]
		default:
			return false
		}
	}
}
