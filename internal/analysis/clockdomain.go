package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// clockdomain: the discrete-event simulator keeps its own clock, and the
// paper's calibrated timings depend on simulated time never mixing with
// the machine's. The determinism check already bans time.Now inside the
// simulator packages syntactically; clockdomain closes the transitive
// hole: nothing *reachable* from simulator code — including the kernel
// payload closures that knn hands to gpusim streams — may read the wall
// clock. (The wall-clock benchmark harness is the dual: it must use real
// time, and lives outside this domain by construction.)
//
// Roots are (a) every function declared in a package matched by the root
// scope (production: internal/gpusim), (b) functions annotated
// //texlint:clockdomain, and (c) the bodies of function literals passed to
// gpusim Stream/Device methods (kernel payloads execute under the
// simulated clock even though they are declared elsewhere).

// NewClockDomain returns the clock-domain check. rootScope selects the
// packages whose functions are implicit roots; nil means only annotated
// functions and kernel payloads are roots (used by fixtures).
func NewClockDomain(rootScope func(pkgPath string) bool) *Analyzer {
	return &Analyzer{
		Name: "clockdomain",
		Doc:  "simulated-clock code must not read the wall clock (time.Now and friends)",
		RunProgram: func(prog *Program) []Diagnostic {
			return runClockDomain(prog, rootScope)
		},
	}
}

// wallClockFuncs are the time package entry points that read or schedule
// against the machine clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runClockDomain(prog *Program, rootScope func(string) bool) []Diagnostic {
	type rootEntry struct {
		fn  *types.Func
		why string
	}
	var roots []rootEntry
	for fn, fi := range prog.Funcs {
		switch {
		case rootScope != nil && rootScope(fi.Pkg.Path):
			roots = append(roots, rootEntry{fn, "declared in " + fi.Pkg.Path})
		case fi.Ann.ClockRoot:
			roots = append(roots, rootEntry{fn, "annotated //texlint:clockdomain"})
		}
	}

	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos: prog.Fset.Position(pos), Check: "clockdomain",
			Message: fmt.Sprintf(format, args...),
		})
	}

	// Kernel payloads: function literals passed to gpusim stream/device
	// methods run on the simulated timeline. Scan the literal in place and
	// add the module functions it calls as traversal roots.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pkg.Info, call)
				if callee == nil || !pathMatches(funcPkgPath(callee), []string{"internal/gpusim"}) {
					return true
				}
				if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() == nil {
					return true
				}
				for _, arg := range call.Args {
					lit, ok := ast.Unparen(arg).(*ast.FuncLit)
					if !ok {
						continue
					}
					label := fmt.Sprintf("%s payload", funcDisplayName(callee))
					scanWallClock(pkg, lit.Body, label, report)
					for _, cfn := range literalCallees(pkg, lit) {
						if prog.Funcs[cfn] != nil {
							roots = append(roots, rootEntry{cfn, "called from " + label})
						}
					}
				}
				return true
			})
		}
	}

	sort.Slice(roots, func(i, j int) bool {
		return prog.Fset.Position(roots[i].fn.Pos()).Offset < prog.Fset.Position(roots[j].fn.Pos()).Offset
	})

	parent := make(map[*types.Func]*types.Func)
	why := make(map[*types.Func]string)
	seen := make(map[*types.Func]bool)
	var order []*types.Func
	for _, r := range roots {
		if seen[r.fn] {
			continue
		}
		seen[r.fn] = true
		why[r.fn] = r.why
		queue := []*types.Func{r.fn}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			order = append(order, fn)
			for _, site := range prog.Callees(fn) {
				if seen[site.Callee] || prog.Funcs[site.Callee] == nil {
					continue
				}
				if prog.Suppressed("clockdomain", site.Pos) {
					continue
				}
				seen[site.Callee] = true
				parent[site.Callee] = fn
				why[site.Callee] = why[r.fn]
				queue = append(queue, site.Callee)
			}
		}
	}

	for _, fn := range order {
		fi := prog.Funcs[fn]
		chain := clockChain(fn, parent)
		scanWallClock(fi.Pkg, fi.Decl.Body, "", func(pos token.Pos, format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			if chain != "" {
				msg += fmt.Sprintf(" (reached via %s; root %s)", chain, why[fn])
			} else {
				msg += fmt.Sprintf(" (%s)", why[fn])
			}
			report(pos, "%s", msg)
		})
	}
	return out
}

// scanWallClock reports direct wall-clock reads in one body. label, when
// non-empty, names the enclosing kernel payload.
func scanWallClock(pkg *Package, body ast.Node, label string, report func(pos token.Pos, format string, args ...any)) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil || funcPkgPath(fn) != "time" || !wallClockFuncs[fn.Name()] {
			return true
		}
		if label != "" {
			report(call.Pos(), "time.%s inside %s: simulated-clock code must not read the wall clock", fn.Name(), label)
		} else {
			report(call.Pos(), "time.%s in simulated-clock code: sim time must flow from the device clock", fn.Name())
		}
		return true
	})
}

// literalCallees resolves the module-local functions called from a
// function literal.
func literalCallees(pkg *Package, lit *ast.FuncLit) []*types.Func {
	var out []*types.Func
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pkg.Info, call); fn != nil {
			out = append(out, fn.Origin())
		}
		return true
	})
	return out
}

// clockChain renders "a -> b -> c" from the BFS parent pointers, or "".
func clockChain(fn *types.Func, parent map[*types.Func]*types.Func) string {
	if parent[fn] == nil {
		return ""
	}
	var chain []string
	for f := fn; f != nil; f = parent[f] {
		chain = append(chain, funcDisplayName(f))
	}
	s := chain[len(chain)-1]
	for i := len(chain) - 2; i >= 0; i-- {
		s += " -> " + chain[i]
	}
	return s
}
