package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// goleak requires every goroutine spawned from non-test code to have a
// provable exit path. The shapes it rejects:
//
//   - `select {}` with no cases: blocks forever by construction;
//   - an infinite `for`/`for {}` loop whose body contains no way out — no
//     return, no loop-level break, no panic/os.Exit/runtime.Goexit — so
//     the goroutine can never terminate;
//   - `for x := range ch` over a channel that is never closed anywhere in
//     the spawning package: the loop only ends when the channel closes, so
//     a close must be in evidence.
//
// The allowed patterns are the ones the repo actually uses: worker
// goroutines ranging over a channel that the coordinator closes
// (texture.parallelFor), loops with a `<-ctx.Done()` / done-channel select
// arm that returns, and bounded goroutines that simply run to the end of
// their body. Diagnostics anchor at the `go` statement so one
// //texlint:ignore there covers the spawn.
func NewGoLeak() *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc:  "require goroutines to have a provable exit path (closed channel, done signal, or bounded body)",
		RunProgram: func(prog *Program) []Diagnostic {
			return runGoLeak(prog)
		},
	}
}

func runGoLeak(prog *Program) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: prog.Fset.Position(pos), Check: "goleak",
			Message: fmt.Sprintf(format, args...),
		})
	}

	fns := make([]*types.Func, 0, len(prog.Funcs))
	for fn := range prog.Funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	for _, fn := range fns {
		fi := prog.Funcs[fn]
		if strings.HasSuffix(prog.Fset.Position(fi.Decl.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			var where string
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
				where = "this goroutine"
			default:
				callee := calleeFunc(fi.Pkg.Info, gs.Call)
				if callee == nil {
					return true
				}
				tf, ok := prog.Funcs[callee.Origin()]
				if !ok {
					return true
				}
				body = tf.Decl.Body
				where = callee.Name()
			}
			if msg := goroutineLeakShape(fi.Pkg, body, where); msg != "" {
				report(gs.Pos(), "%s", msg)
			}
			return true
		})
	}
	return diags
}

// goroutineLeakShape inspects a goroutine body for a shape with no exit
// path and returns a diagnostic message, or "".
func goroutineLeakShape(pkg *Package, body *ast.BlockStmt, where string) string {
	msg := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if msg != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested closures are their own goroutines' problem
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				msg = fmt.Sprintf("%s blocks forever on an empty select; a goroutine with no exit path leaks (give it a done channel or context)", where)
				return false
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				return true
			}
			if !loopHasExit(n.Body) {
				msg = fmt.Sprintf("%s loops forever with no return, break, or termination signal; a goroutine with no exit path leaks (select on ctx.Done() or a done channel inside the loop)", where)
				return false
			}
		case *ast.RangeStmt:
			ch, chName := rangedChannelVar(pkg, n)
			if ch == nil {
				return true
			}
			if !packageCloses(pkg, ch) {
				msg = fmt.Sprintf("%s ranges over channel %s, which is never closed in this package; the loop (and goroutine) can never finish — close the channel when producers are done", where, chName)
				return false
			}
		}
		return true
	})
	return msg
}

// loopHasExit reports whether an infinite-for body can leave the loop: a
// return anywhere (not in a nested function literal), an unlabeled break
// at loop level (not captured by a nested for/range/switch/select), a
// goto, or a call that never returns (panic, os.Exit, log.Fatal*,
// runtime.Goexit).
func loopHasExit(body *ast.BlockStmt) bool {
	exit := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		if n == nil || exit {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if exit {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exit = true
				return false
			case *ast.BranchStmt:
				switch m.Tok {
				case token.BREAK:
					// A labeled break targets an outer statement: treat as
					// exit. Unlabeled break exits only at loop level.
					if m.Label != nil || breakable {
						exit = true
						return false
					}
				case token.GOTO:
					exit = true // conservatively an exit
					return false
				}
			case *ast.ForStmt, *ast.RangeStmt:
				// break inside binds to the inner loop.
				if inner, ok := m.(*ast.ForStmt); ok {
					walk(inner.Body, false)
				} else {
					walk(m.(*ast.RangeStmt).Body, false)
				}
				return false
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				// break inside binds to the switch/select, not the loop.
				var list []ast.Stmt
				switch s := m.(type) {
				case *ast.SwitchStmt:
					list = s.Body.List
				case *ast.TypeSwitchStmt:
					list = s.Body.List
				case *ast.SelectStmt:
					list = s.Body.List
				}
				for _, c := range list {
					switch cc := c.(type) {
					case *ast.CaseClause:
						for _, s := range cc.Body {
							walk(s, false)
						}
					case *ast.CommClause:
						for _, s := range cc.Body {
							walk(s, false)
						}
					}
				}
				return false
			case *ast.CallExpr:
				if neverReturns(m) {
					exit = true
					return false
				}
			}
			return true
		})
	}
	walk(body, true)
	return exit
}

// neverReturns recognizes calls that terminate the goroutine or process.
func neverReturns(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// rangedChannelVar resolves the ranged expression to a channel-typed
// variable (local, field, or package var), or nil when it is not a
// channel or not a stable variable.
func rangedChannelVar(pkg *Package, rs *ast.RangeStmt) (*types.Var, string) {
	x := ast.Unparen(rs.X)
	tv, ok := pkg.Info.Info.Types[x]
	if !ok {
		return nil, ""
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return nil, ""
	}
	switch x := x.(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Info.Uses[x].(*types.Var); ok {
			return obj, x.Name
		}
	case *ast.SelectorExpr:
		if obj, ok := pkg.Info.Info.Uses[x.Sel].(*types.Var); ok {
			return obj, exprText(x)
		}
	}
	return nil, ""
}

// packageCloses reports whether any file in the package contains a
// close(...) whose argument resolves to the same variable object.
func packageCloses(pkg *Package, ch *types.Var) bool {
	for _, f := range pkg.Files {
		closed := false
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || closed {
				return !closed
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "close" || len(call.Args) != 1 {
				return true
			}
			if _, builtin := pkg.Info.Info.Uses[id].(*types.Builtin); !builtin {
				return true // shadowed close, not the builtin
			}
			switch a := ast.Unparen(call.Args[0]).(type) {
			case *ast.Ident:
				if pkg.Info.Info.Uses[a] == ch {
					closed = true
				}
			case *ast.SelectorExpr:
				if pkg.Info.Info.Uses[a.Sel] == ch {
					closed = true
				}
			}
			return true
		})
		if closed {
			return true
		}
	}
	return false
}
