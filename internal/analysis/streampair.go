package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NewStreamPair builds the stream-pairing check: every gpusim kernel
// launch or async copy enqueued on a stream must be followed, later in
// the same function, by a synchronization point — Device.Synchronize, or
// Stream.TailUS/Record on the launched timeline. Helper functions that
// intentionally leave synchronization to their caller document that with
// a //texlint:ignore streampair escape hatch on the declaration.
func NewStreamPair() *Analyzer {
	return &Analyzer{
		Name: "streampair",
		Doc:  "every gpusim launch/async copy is followed by a reachable stream sync in the same function",
		Run:  runStreamPair,
	}
}

const gpusimPath = "internal/gpusim"

// launchMethods enqueue asynchronous work on a *gpusim.Stream.
var launchMethods = map[string]bool{
	"Gemm": true, "Top2Scan": true, "InsertionSort": true, "Elementwise": true,
	"BaselineMatch": true, "CopyH2D": true, "CopyD2H": true, "HostPost": true,
}

// syncMethods observe or wait for a timeline's completion.
var syncStreamMethods = map[string]bool{"TailUS": true, "Record": true}

func runStreamPair(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, fd := range funcDecls(pass) {
		type launch struct {
			call *ast.CallExpr
			name string
		}
		var launches []launch
		var syncPos []ast.Node
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg, call)
			if fn == nil {
				return true
			}
			switch {
			case isStreamMethod(fn, launchMethods):
				launches = append(launches, launch{call, fn.Name()})
			case isStreamMethod(fn, syncStreamMethods),
				isMethodOf(fn, gpusimPath, "Synchronize"):
				syncPos = append(syncPos, call)
			}
			return true
		})
		for _, l := range launches {
			synced := false
			for _, s := range syncPos {
				if s.Pos() > l.call.Pos() {
					synced = true
					break
				}
			}
			if !synced {
				diags = append(diags, Diagnostic{
					Pos:   pass.Fset.Position(l.call.Pos()),
					Check: "streampair",
					Message: fmt.Sprintf("%s enqueues async work with no later sync in this function; "+
						"add Device.Synchronize/Stream.TailUS, or //texlint:ignore streampair on the declaration if the caller synchronizes", l.name),
				})
			}
		}
	}
	return diags
}

// isStreamMethod reports whether fn is a *gpusim.Stream method named in set.
func isStreamMethod(fn *types.Func, set map[string]bool) bool {
	if fn == nil || !set[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeIn(sig.Recv().Type(), gpusimPath, "Stream")
}
