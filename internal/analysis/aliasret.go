package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// aliasret: APIs annotated //texlint:scratchalias return results that
// alias a caller-provided (or internal) reusable scratch — the zero-alloc
// contract's other half. Callers must consume such results before the next
// call on the same scratch and must not let them outlive the scratch's
// reuse cycle. The check flags, per calling function:
//
//   - escapes: storing an aliased result in a struct field, global, map,
//     slice element, or composite literal, sending it on a channel, or
//     returning it (unless the caller is itself //texlint:scratchalias —
//     that is how the annotation propagates up wrapper APIs);
//   - copies that retain: append(acc, res...) and friends keep aliased
//     memory (or a view of it) beyond the next reuse;
//   - use-after-reuse: reading a result after a later scratchalias call
//     on the same scratch expression has recycled the backing buffers;
//   - cross-iteration reads: inside a loop, touching the result before
//     the aliasing call means reading the previous iteration's data.
//
// The analysis is intra-procedural per caller, with scratch identity
// approximated by the source text of the scratch argument (or receiver).

// NewAliasRet returns the scratch-aliasing misuse check.
func NewAliasRet() *Analyzer {
	return &Analyzer{
		Name:       "aliasret",
		Doc:        "results of //texlint:scratchalias APIs must not be retained across scratch reuse",
		RunProgram: runAliasRet,
	}
}

// aliasCall is one call to a scratchalias API within the analyzed body.
type aliasCall struct {
	call   *ast.CallExpr
	callee *types.Func
	key    string // source text of the scratch argument; "" if none found
	loop   ast.Stmt
	vars   []*types.Var // result bindings worth tracking
}

func runAliasRet(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Info.Defs[fd.Name].(*types.Func)
				var selfAliases bool
				if fn != nil && prog.Funcs[fn] != nil {
					selfAliases = prog.Funcs[fn].Ann.ScratchAlias
				}
				out = append(out, checkAliasUse(prog, pkg, fd, selfAliases)...)
			}
		}
	}
	return out
}

func checkAliasUse(prog *Program, pkg *Package, fd *ast.FuncDecl, selfAliases bool) []Diagnostic {
	parents := buildParents(fd.Body)

	// Collect scratchalias call sites and their result bindings.
	var calls []*aliasCall
	defIdents := make(map[*ast.Ident]bool) // idents that (re)bind a result
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pkg.Info, call)
		if callee == nil {
			return true
		}
		callee = callee.Origin()
		fi := prog.Funcs[callee]
		if fi == nil || !fi.Ann.ScratchAlias {
			return true
		}
		ac := &aliasCall{
			call:   call,
			callee: callee,
			key:    scratchKey(pkg, call, callee),
			loop:   enclosingLoop(parents, call),
		}
		// Result bindings: res, err := f(...) / res, err = f(...).
		if as, ok := parents[call].(*ast.AssignStmt); ok && len(as.Rhs) == 1 && ast.Unparen(as.Rhs[0]) == call {
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var v *types.Var
				if obj, ok := pkg.Info.Info.Defs[id].(*types.Var); ok {
					v = obj
				} else if obj, ok := pkg.Info.Info.Uses[id].(*types.Var); ok {
					v = obj
				}
				if v == nil || isErrorType(v.Type()) {
					continue
				}
				defIdents[id] = true
				ac.vars = append(ac.vars, v)
			}
		}
		calls = append(calls, ac)
		return true
	})
	if len(calls) == 0 {
		return nil
	}

	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos: prog.Fset.Position(pos), Check: "aliasret",
			Message: fmt.Sprintf(format, args...),
		})
	}

	for _, ac := range calls {
		calleeName := funcDisplayName(ac.callee)
		for _, v := range ac.vars {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || defIdents[id] {
					return true
				}
				if obj, ok := pkg.Info.Info.Uses[id].(*types.Var); !ok || obj != v {
					return true
				}
				// Uses inside the defining call (re-passing the old value
				// as an argument) are the call's own business.
				if id.Pos() >= ac.call.Pos() && id.Pos() < ac.call.End() {
					return true
				}
				checkOneUse(prog, pkg, fd, parents, calls, ac, calleeName, v, id, selfAliases, report)
				return true
			})
		}
	}
	return out
}

// checkOneUse applies the escape/retention rules to one use of an aliased
// result variable.
func checkOneUse(prog *Program, pkg *Package, fd *ast.FuncDecl, parents map[ast.Node]ast.Node,
	calls []*aliasCall, ac *aliasCall, calleeName string, v *types.Var, id *ast.Ident,
	selfAliases bool, report func(pos token.Pos, format string, args ...any)) {

	switch p := skipParens(parents, id).(type) {
	case *ast.AssignStmt:
		// id on the RHS: where does it land?
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != ast.Expr(id) {
				continue
			}
			lhs := p.Lhs[0]
			if len(p.Lhs) == len(p.Rhs) {
				lhs = p.Lhs[i]
			}
			switch l := ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr:
				report(id.Pos(), "aliased result of %s stored in field %s outlives the scratch reuse cycle", calleeName, exprText(l))
			case *ast.IndexExpr:
				report(id.Pos(), "aliased result of %s stored into %s outlives the scratch reuse cycle", calleeName, exprText(l))
			case *ast.Ident:
				if obj, ok := pkg.Info.Info.Uses[l].(*types.Var); ok && obj.Parent() == obj.Pkg().Scope() {
					report(id.Pos(), "aliased result of %s stored in package variable %s", calleeName, l.Name)
				} else if ac.loop != nil && !declaredWithin(pkg, l, ac.loop) && p.Tok != token.DEFINE {
					report(id.Pos(), "aliased result of %s assigned to %s declared outside the loop; it is recycled next iteration", calleeName, l.Name)
				}
			}
		}
	case *ast.ReturnStmt:
		if !selfAliases {
			report(id.Pos(), "aliased result of %s returned; mark %s //texlint:scratchalias or copy before returning", calleeName, fd.Name.Name)
		}
	case *ast.SendStmt:
		if p.Value == ast.Expr(id) || ast.Unparen(p.Value) == ast.Expr(id) {
			report(id.Pos(), "aliased result of %s sent on a channel; the receiver outlives the scratch reuse cycle", calleeName)
		}
	case *ast.KeyValueExpr:
		if ast.Unparen(p.Value) == ast.Expr(id) {
			report(id.Pos(), "aliased result of %s stored in a composite literal", calleeName)
		}
	case *ast.CompositeLit:
		report(id.Pos(), "aliased result of %s stored in a composite literal", calleeName)
	}

	// append(acc, res...) / append(acc, res) / append(acc, res[i]) retain
	// aliased memory or an element view of it.
	if call, argIdx := enclosingAppendArg(pkg, parents, id); call != nil && argIdx >= 1 {
		report(id.Pos(), "append retains aliased result of %s beyond the next scratch reuse; copy the elements instead", calleeName)
	}

	// Use after a later call reused the same scratch.
	for _, other := range calls {
		if other == ac || other.key == "" || other.key != ac.key {
			continue
		}
		if other.call.Pos() > ac.call.Pos() && id.Pos() >= other.call.End() {
			report(id.Pos(), "aliased result of %s read after %s reused scratch %s", calleeName, funcDisplayName(other.callee), ac.key)
			break
		}
	}

	// Inside the defining call's loop, a use textually before the call
	// reads the previous iteration's (already recycled) result.
	if ac.loop != nil && id.End() <= ac.call.Pos() &&
		id.Pos() >= ac.loop.Pos() && id.End() <= ac.loop.End() {
		report(id.Pos(), "aliased result of %s read before the call in the same loop body: that is the previous iteration's scratch contents", calleeName)
	}
}

// scratchKey identifies which scratch a call aliases: the receiver if its
// type names a *Scratch, else the first argument whose (pointer) type's
// name contains "Scratch".
func scratchKey(pkg *Package, call *ast.CallExpr, callee *types.Func) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && isScratchType(sig.Recv().Type()) {
			return exprText(sel.X)
		}
	}
	for _, arg := range call.Args {
		if tv, ok := pkg.Info.Info.Types[arg]; ok && isScratchType(tv.Type) {
			return exprText(ast.Unparen(arg))
		}
	}
	return ""
}

func isScratchType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := n.Obj().Name()
	return name == "Scratch" || (len(name) > 7 && name[len(name)-7:] == "Scratch")
}

// --- parent-map helpers ---

func buildParents(body ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// skipParens returns the nearest non-paren ancestor of n.
func skipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		if pe, ok := p.(*ast.ParenExpr); ok {
			p = parents[pe]
			continue
		}
		return p
	}
}

// enclosingLoop finds the nearest for/range statement containing n.
func enclosingLoop(parents map[ast.Node]ast.Node, n ast.Node) ast.Stmt {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p := p.(type) {
		case *ast.ForStmt:
			return p
		case *ast.RangeStmt:
			return p
		}
	}
	return nil
}

// enclosingAppendArg finds a builtin append call having n inside one of
// its arguments, returning the call and the argument index.
func enclosingAppendArg(pkg *Package, parents map[ast.Node]ast.Node, n ast.Node) (*ast.CallExpr, int) {
	for p := parents[n]; p != nil; p = parents[p] {
		call, ok := p.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := pkg.Info.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		for i, arg := range call.Args {
			if n.Pos() >= arg.Pos() && n.End() <= arg.End() {
				return call, i
			}
		}
		return nil, -1
	}
	return nil, -1
}

// declaredWithin reports whether the variable behind ident is declared
// inside the given statement's extent.
func declaredWithin(pkg *Package, id *ast.Ident, s ast.Stmt) bool {
	obj, ok := pkg.Info.Info.Uses[id].(*types.Var)
	if !ok {
		if obj, ok := pkg.Info.Info.Defs[id].(*types.Var); ok {
			return obj.Pos() >= s.Pos() && obj.Pos() < s.End()
		}
		return false
	}
	return obj.Pos() >= s.Pos() && obj.Pos() < s.End()
}
