package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Value-flow layer: module-local taint propagation for the wiretaint check.
// Taint enters at untrusted sources — expressions typed net.Conn or
// *http.Request (intrinsic), and the parameters of functions annotated
// //texlint:untrusted — and follows per-function def-use chains: through
// assignments, conversions, arithmetic, composite literals, container
// reads, and standard-library calls (a result computed from tainted input
// is tainted). Interprocedural flow rides the PR-3 call graph: a call site
// passing a tainted argument taints the callee's parameter, a callee whose
// results are tainted taints its callers, and the module iterates to a
// fixpoint over monotone per-function summaries. The call edges taint
// travelled are recorded so findings can render a source→sink chain the
// way hotalloc renders hot paths.
//
// Two scoping rules keep the propagation honest instead of explosive:
//
//   - Within a function, taint is field-path granular: writing a hostile
//     value into rec.ID taints rec.ID (and rec as a returned whole), not
//     sibling fields like rec.Features that were built from sanitized
//     dimensions.
//   - Across a call edge, taint only travels through types that can carry
//     raw wire claims: integers, strings, []byte, byte streams (io.Reader
//     interfaces, bufio.Reader, net.Conn, *http.Request), and structs of
//     the callee's own package (decode state like wire.reader). A domain
//     object handed across a package boundary — a *blas.Matrix built by
//     its constructor — is committed data whose invariants are its owning
//     package's contract, not a length claim.
//
// Sanitizers kill taint. Recognition is positional, in the spirit of the
// collect-then-sort heuristic: once a value has been compared against a
// constant (or a len/cap-derived expression), passed through the builtin
// min/max with a constant bound, or routed through an internal/limits
// helper, later uses of that value are clean. The analysis is therefore a
// reviewable approximation, not a proof — exactly like the rest of the
// suite — but it is tight enough that every decoder in the tree passes
// with zero escape hatches.

// limitsPkgSuffix identifies the canonical sanitizer package: calls into it
// clean their arguments, its results are trusted, and its own guarded
// allocation loops are not re-analyzed.
const limitsPkgSuffix = "internal/limits"

// taintSummary is one function's interprocedural taint contract. Both maps
// grow monotonically during the module fixpoint.
type taintSummary struct {
	// params marks parameters observed to receive untrusted data at some
	// call site (all of them for //texlint:untrusted functions). Key -1 is
	// the receiver.
	params map[int]bool
	// results marks results that may carry untrusted data.
	results []bool
}

// flowGraph drives the module-wide taint fixpoint and records the call
// edges taint travelled for chain rendering.
type flowGraph struct {
	prog  *Program
	check string
	sums  map[*types.Func]*taintSummary
	// callers[f] holds the functions whose analysis consumed f's result
	// summary; they re-run when it grows.
	callers map[*types.Func]map[*types.Func]bool
	// parent[f] is the adjacent function taint arrived from (a caller that
	// tainted f's parameter, or a callee whose tainted result f consumed);
	// rootOf[f] is the source function at the start of that chain.
	parent map[*types.Func]*types.Func
	rootOf map[*types.Func]*types.Func
	queued map[*types.Func]bool
	queue  []*types.Func
}

// buildFlow runs the module taint fixpoint and returns the converged graph.
func buildFlow(prog *Program, check string) *flowGraph {
	fg := &flowGraph{
		prog:    prog,
		check:   check,
		sums:    make(map[*types.Func]*taintSummary),
		callers: make(map[*types.Func]map[*types.Func]bool),
		parent:  make(map[*types.Func]*types.Func),
		rootOf:  make(map[*types.Func]*types.Func),
		queued:  make(map[*types.Func]bool),
	}
	fns := fg.sortedFuncs()
	for _, fn := range fns {
		sig := fn.Type().(*types.Signature)
		sum := &taintSummary{params: make(map[int]bool), results: make([]bool, sig.Results().Len())}
		fg.sums[fn] = sum
		if prog.Funcs[fn].Ann.Untrusted {
			if sig.Recv() != nil {
				sum.params[-1] = true
			}
			for i := 0; i < sig.Params().Len(); i++ {
				sum.params[i] = true
			}
			fg.rootOf[fn] = fn
		}
	}
	for _, fn := range fns {
		fg.enqueue(fn)
	}
	// The summaries are monotone (param and result sets only grow), so the
	// fixpoint terminates; the budget is a safety net, not a tuning knob.
	for budget := 50 * (len(fns) + 1); len(fg.queue) > 0 && budget > 0; budget-- {
		fn := fg.queue[0]
		fg.queue = fg.queue[1:]
		fg.queued[fn] = false
		fg.analyze(fn, nil)
	}
	return fg
}

// sortedFuncs returns every analyzable function in source order (excluding
// the sanitizer package itself).
func (fg *flowGraph) sortedFuncs() []*types.Func {
	var fns []*types.Func
	for fn, fi := range fg.prog.Funcs {
		if hasSuffixPath(fi.Pkg.Path, limitsPkgSuffix) {
			continue
		}
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool {
		return fg.prog.Fset.Position(fns[i].Pos()).Offset < fg.prog.Fset.Position(fns[j].Pos()).Offset
	})
	return fns
}

func (fg *flowGraph) enqueue(fn *types.Func) {
	if fg.sums[fn] == nil || fg.queued[fn] {
		return
	}
	fg.queued[fn] = true
	fg.queue = append(fg.queue, fn)
}

// rootFor returns fn's chain root, making fn its own root when taint
// originated locally (annotation or intrinsic source).
func (fg *flowGraph) rootFor(fn *types.Func) *types.Func {
	if r := fg.rootOf[fn]; r != nil {
		return r
	}
	fg.rootOf[fn] = fn
	return fn
}

// chainFor renders "source -> ... -> fn" along the recorded taint edges,
// or "" when fn is itself the source (or untainted).
func (fg *flowGraph) chainFor(fn *types.Func) string {
	return chainPath(fn, fg.parent)
}

// requestParamTaint records that caller passes untrusted data into
// callee's parameter idx (-1 = receiver), growing the callee summary and
// the chain bookkeeping.
func (fg *flowGraph) requestParamTaint(caller, callee *types.Func, idx int) {
	sum := fg.sums[callee]
	if sum == nil || sum.params[idx] {
		return
	}
	sum.params[idx] = true
	if fg.rootOf[callee] == nil {
		fg.parent[callee] = caller
		fg.rootOf[callee] = fg.rootFor(caller)
	}
	fg.enqueue(callee)
}

// analyze runs the per-function propagation: seed parameter taint from the
// summary, collect sanitizer positions, iterate the def-use walk to a local
// fixpoint, then publish result taint. With report non-nil it additionally
// scans for sinks (the final pass, after the module fixpoint converged).
func (fg *flowGraph) analyze(fn *types.Func, report func(pos token.Pos, msg string)) {
	fi := fg.prog.Funcs[fn]
	if fi == nil {
		return
	}
	st := &taintState{
		fg:          fg,
		fn:          fn,
		fi:          fi,
		info:        fi.Pkg.Info,
		tainted:     make(map[types.Object]bool),
		taintedPath: make(map[string]bool),
		sanAt:       make(map[string]token.Pos),
	}
	sig := fn.Type().(*types.Signature)
	st.results = make([]bool, sig.Results().Len())
	sum := fg.sums[fn]
	if sum.params[-1] && sig.Recv() != nil {
		st.setTaint(sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sum.params[i] {
			st.setTaint(sig.Params().At(i))
		}
	}
	st.collectSanitizers(fi.Decl.Body)
	st.markClosureReturns(fi.Decl.Body)
	for pass := 0; pass < 4; pass++ {
		st.changed = false
		st.propagate(fi.Decl.Body)
		if !st.changed {
			break
		}
	}
	// Publish result taint; callers that consumed the old summary re-run.
	grown := false
	for i, t := range st.results {
		if t && !sum.results[i] {
			sum.results[i] = true
			grown = true
		}
	}
	if grown {
		for caller := range fg.callers[fn] {
			fg.enqueue(caller)
		}
	}
	if report != nil {
		st.reportSinks(fi.Decl.Body, report)
	}
}

// taintState is the per-function propagation state.
type taintState struct {
	fg   *flowGraph
	fn   *types.Func
	fi   *FuncInfo
	info *PackageInfo
	// tainted is whole-object taint: parameters of source functions and
	// variables assigned a tainted value outright.
	tainted map[types.Object]bool
	// taintedPath is field-path taint ("rec.ID"): a hostile value written
	// into one field does not taint its siblings.
	taintedPath map[string]bool
	// sanAt is path-granular (rendered expression -> position): sanitizing
	// r.pos must not clean the payload r.b.
	sanAt       map[string]token.Pos
	results     []bool
	changed     bool
	closureRets map[*ast.ReturnStmt]bool
}

func (st *taintState) setTaint(obj types.Object) {
	if obj == nil || obj.Name() == "_" {
		return
	}
	if !st.tainted[obj] {
		st.tainted[obj] = true
		st.changed = true
	}
}

func (st *taintState) setTaintPath(path string) {
	if path == "" || path == "<expr>" || path == "_" {
		return
	}
	if !st.taintedPath[path] {
		st.taintedPath[path] = true
		st.changed = true
	}
}

// pathTainted reports whether path, a prefix of it, or an extension of it
// is recorded as tainted ("rec.A" taints "rec.A.B" and vice versa).
func (st *taintState) pathTainted(path string) bool {
	for p := range st.taintedPath {
		if p == path || strings.HasPrefix(path, p+".") || strings.HasPrefix(p, path+".") ||
			strings.HasPrefix(path, p+"[") || strings.HasPrefix(p, path+"[") {
			return true
		}
	}
	return false
}

// markClosureReturns records returns belonging to nested function literals
// so they are not attributed to the declaration's own results.
func (st *taintState) markClosureReturns(body *ast.BlockStmt) {
	st.closureRets = make(map[*ast.ReturnStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if r, ok := m.(*ast.ReturnStmt); ok {
				st.closureRets[r] = true
			}
			return true
		})
		return true
	})
}

// collectSanitizers records where values are bounds-checked: comparisons
// whose other side is constant or len/cap-derived, and arguments routed
// through internal/limits helpers.
func (st *taintState) collectSanitizers(body *ast.BlockStmt) {
	// A loop condition drives the loop, it does not guard it: "i < n" must
	// not count as a bounds check on n (it is wiretaint's loop-bound sink).
	forConds := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond != nil {
			forConds[f.Cond] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if forConds[n] {
				return true
			}
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if st.boundLike(n.Y) {
					st.sanitizePaths(n.X, n.Pos())
				}
				if st.boundLike(n.X) {
					st.sanitizePaths(n.Y, n.Pos())
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(st.info, n); fn != nil && hasSuffixPath(funcPkgPath(fn), limitsPkgSuffix) {
				for _, arg := range n.Args {
					st.sanitizePaths(arg, n.Pos())
				}
			}
		}
		return true
	})
}

// boundLike reports whether an expression is usable as a bound: a constant,
// an untainted variable (a budget field, a configured cap), or something
// derived from len/cap of committed data.
func (st *taintState) boundLike(e ast.Expr) bool {
	if tv, ok := st.info.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch b := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		// Comparing against a value the attacker does not control is a
		// bounds check; comparing two tainted values is not.
		return !st.exprTainted(b)
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			if _, isBuiltin := st.info.Info.Uses[id].(*types.Builtin); isBuiltin {
				found = true
			}
		}
		return true
	})
	return found
}

// sanitizePaths marks every variable path mentioned in e as clean from pos
// onward (the compared value has been bounds-checked).
func (st *taintState) sanitizePaths(e ast.Expr, pos token.Pos) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		key := exprText(e)
		if old, ok := st.sanAt[key]; !ok || pos < old {
			st.sanAt[key] = pos
		}
	case *ast.BinaryExpr:
		st.sanitizePaths(e.X, pos)
		st.sanitizePaths(e.Y, pos)
	case *ast.UnaryExpr:
		st.sanitizePaths(e.X, pos)
	case *ast.CallExpr:
		// A conversion like int(l) sanitizes the converted value.
		if tv, ok := st.info.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			st.sanitizePaths(e.Args[0], pos)
		}
	}
}

// sanitizedBefore reports whether the value path of e was bounds-checked at
// a position before its use.
func (st *taintState) sanitizedBefore(e ast.Expr) bool {
	san, ok := st.sanAt[exprText(e)]
	return ok && san < e.Pos()
}

// typeUntrusted reports whether a value of this type is external input by
// construction: a network connection or an inbound HTTP request.
func typeUntrusted(t types.Type) bool {
	return namedTypeIn(t, "net", "Conn") || namedTypeIn(t, "net/http", "Request")
}

// streamType reports whether t is a byte stream: an interface with a Read
// method (io.Reader and friends) or a bufio wrapper.
func streamType(t types.Type) bool {
	if t == nil {
		return false
	}
	if namedTypeIn(t, "bufio", "Reader") || namedTypeIn(t, "bufio", "Scanner") {
		return true
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Read" {
				return true
			}
		}
	}
	return false
}

// carrierType reports whether a value of type t can carry raw wire claims
// across a call boundary: integers and strings (length/id claims),
// []byte (undecoded payload), byte streams and connections, and named
// structs — restricted to the callee's own package when calleePkg is
// non-nil (decode state like wire.reader), or any struct when anyStruct is
// set (stdlib out-parameters like a json target). Everything else — float
// matrices, keypoint slices, domain objects from other packages — is
// committed data.
func carrierType(t types.Type, calleePkg *types.Package, anyStruct bool) bool {
	if t == nil {
		return false
	}
	if typeUntrusted(t) || streamType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsInteger|types.IsString) != 0
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
			return true
		}
	}
	pt := t
	if p, ok := pt.(*types.Pointer); ok {
		pt = p.Elem()
	}
	if n, ok := pt.(*types.Named); ok {
		if _, isStruct := n.Underlying().(*types.Struct); isStruct {
			if anyStruct {
				return true
			}
			return calleePkg != nil && n.Obj().Pkg() == calleePkg
		}
	}
	return false
}

// propagate performs one def-use walk over the body, growing the tainted
// set through assignments, declarations, range statements, returns, and
// call side effects.
func (st *taintState) propagate(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				ts := st.valueTaints(n.Rhs[0], len(n.Lhs))
				for i, lhs := range n.Lhs {
					if i < len(ts) && ts[i] {
						st.taintLValue(lhs)
					}
				}
			} else {
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) && st.exprTainted(n.Rhs[i]) {
						st.taintLValue(lhs)
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) > 1 {
				ts := st.valueTaints(n.Values[0], len(n.Names))
				for i, name := range n.Names {
					if i < len(ts) && ts[i] {
						st.setTaint(st.info.Info.ObjectOf(name))
					}
				}
			} else {
				for i, name := range n.Names {
					if i < len(n.Values) && st.exprTainted(n.Values[i]) {
						st.setTaint(st.info.Info.ObjectOf(name))
					}
				}
			}
		case *ast.RangeStmt:
			if st.exprTainted(n.X) {
				if n.Value != nil {
					st.taintLValue(n.Value)
				}
				if tv, ok := st.info.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && n.Key != nil {
						st.taintLValue(n.Key)
					}
				}
			}
		case *ast.ReturnStmt:
			if st.closureRets[n] {
				return true
			}
			switch {
			case len(n.Results) == len(st.results):
				for i, res := range n.Results {
					if st.exprTainted(res) {
						st.setResult(i)
					}
				}
			case len(n.Results) == 1 && len(st.results) > 1:
				for i, t := range st.valueTaints(n.Results[0], len(st.results)) {
					if t {
						st.setResult(i)
					}
				}
			case len(n.Results) == 0:
				// Named results returned bare.
				sig := st.fn.Type().(*types.Signature)
				for i := 0; i < sig.Results().Len(); i++ {
					if st.tainted[sig.Results().At(i)] {
						st.setResult(i)
					}
				}
			}
		case *ast.CallExpr:
			st.callEffects(n)
		}
		return true
	})
}

func (st *taintState) setResult(i int) {
	if i < len(st.results) && !st.results[i] {
		st.results[i] = true
		st.changed = true
	}
}

// taintLValue taints an assignment target: identifiers as whole objects,
// selector chains as field paths (siblings stay clean).
func (st *taintState) taintLValue(lhs ast.Expr) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		st.setTaint(st.info.Info.ObjectOf(lhs))
	case *ast.SelectorExpr:
		st.setTaintPath(exprText(lhs))
	case *ast.IndexExpr:
		// Storing into a container element does not taint the container:
		// a hostile id written into a map is that map's value, not a claim
		// about the map itself (the committed-data rule, write side).
	case *ast.SliceExpr:
		st.taintLValue(lhs.X)
	case *ast.StarExpr:
		st.taintLValue(lhs.X)
	}
}

// rootObj unwraps selectors, indexing, derefs, and parens down to the base
// identifier's object.
func (st *taintState) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return st.info.Info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprTainted reports whether evaluating e may yield untrusted data.
func (st *taintState) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if tv, ok := st.info.Info.Types[e]; ok {
		if tv.Value != nil {
			return false // constants are never tainted
		}
		if tv.Type != nil && typeUntrusted(tv.Type) {
			// Intrinsic source: this function is where untrusted data
			// enters the module.
			st.fg.rootFor(st.fn)
			return true
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := st.info.Info.ObjectOf(e)
		if obj == nil || st.sanitizedBefore(e) {
			return false
		}
		return st.tainted[obj] || st.pathTainted(e.Name)
	case *ast.SelectorExpr:
		if st.sanitizedBefore(e) {
			return false
		}
		// A field is tainted when its own path is, or when the base object
		// is tainted as a whole (source parameters, decode results).
		if st.pathTainted(exprText(e)) {
			return true
		}
		return st.exprTainted(e.X)
	case *ast.IndexExpr:
		return st.exprTainted(e.X)
	case *ast.SliceExpr:
		return st.exprTainted(e.X)
	case *ast.StarExpr:
		return st.exprTainted(e.X)
	case *ast.ParenExpr:
		return st.exprTainted(e.X)
	case *ast.UnaryExpr:
		return st.exprTainted(e.X)
	case *ast.TypeAssertExpr:
		return st.exprTainted(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return false // booleans are decisions, not data
		}
		return st.exprTainted(e.X) || st.exprTainted(e.Y)
	case *ast.CallExpr:
		for _, t := range st.valueTaints(e, 1) {
			if t {
				return true
			}
		}
		return false
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if st.exprTainted(el) {
				return true
			}
		}
		return false
	}
	return false
}

// valueTaints computes per-result taint for a (possibly multi-value)
// expression in a context expecting want values.
func (st *taintState) valueTaints(e ast.Expr, want int) []bool {
	out := make([]bool, want)
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return st.callResultTaints(e, want)
	case *ast.TypeAssertExpr:
		out[0] = st.exprTainted(e.X)
	case *ast.IndexExpr: // v, ok := m[k]
		out[0] = st.exprTainted(e.X)
	case *ast.UnaryExpr: // v, ok := <-ch
		out[0] = st.exprTainted(e.X)
	default:
		if st.exprTainted(e) {
			out[0] = true
		}
	}
	return out
}

// callResultTaints computes per-result taint for one call: conversions and
// builtins inline, module callees via their summaries, everything else by
// the conservative inputs→outputs rule filtered through carrier types.
func (st *taintState) callResultTaints(call *ast.CallExpr, want int) []bool {
	out := make([]bool, want)
	// Conversion: taint follows the converted value.
	if tv, ok := st.info.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && st.exprTainted(call.Args[0]) {
			out[0] = true
		}
		return out
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := st.info.Info.Uses[id].(*types.Builtin); isBuiltin {
			if st.builtinTaint(id.Name, call) {
				for i := range out {
					out[i] = true
				}
			}
			return out
		}
	}
	callee := calleeFunc(st.info, call)
	if callee != nil {
		callee = callee.Origin()
		if hasSuffixPath(funcPkgPath(callee), limitsPkgSuffix) {
			return out // the sanitizer package returns trusted values
		}
		sig, _ := callee.Type().(*types.Signature)
		if sum := st.fg.sums[callee]; sum != nil && sig != nil {
			// Module callee: consume its summary (carrier results only) and
			// subscribe to growth.
			cs := st.fg.callers[callee]
			if cs == nil {
				cs = make(map[*types.Func]bool)
				st.fg.callers[callee] = cs
			}
			cs[st.fn] = true
			// Struct results stay taintable only within one package
			// (decode state); across a boundary only raw-claim types
			// carry.
			structPkg := callee.Pkg()
			if structPkg != st.fn.Pkg() {
				structPkg = nil
			}
			any := false
			for i := 0; i < want && i < len(sum.results) && i < sig.Results().Len(); i++ {
				out[i] = sum.results[i] && carrierType(sig.Results().At(i).Type(), structPkg, false)
				any = any || out[i]
			}
			if any && st.fg.rootOf[st.fn] == nil && st.fg.rootOf[callee] != nil {
				// Taint flowed callee→caller through a result.
				st.fg.parent[st.fn] = callee
				st.fg.rootOf[st.fn] = st.fg.rootOf[callee]
			}
			return out
		}
		if sig != nil && !st.callInputsTainted(call) {
			return out
		}
		if sig != nil {
			// Stdlib call with tainted input: carrier-typed results come
			// back tainted (binary.Uvarint, strconv.Atoi, bufio reads...).
			for i := 0; i < want && i < sig.Results().Len(); i++ {
				out[i] = carrierType(sig.Results().At(i).Type(), nil, true)
			}
			return out
		}
	}
	// Indirect call through a function value: be conservative on inputs,
	// filter results by the call's type.
	if !st.callInputsTainted(call) {
		return out
	}
	if tv, ok := st.info.Info.Types[call]; ok && tv.Type != nil {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < want && i < tup.Len(); i++ {
				out[i] = carrierType(tup.At(i).Type(), nil, true)
			}
		} else if want > 0 {
			out[0] = carrierType(tv.Type, nil, true)
		}
	}
	return out
}

// builtinTaint models the builtins that matter for length flow.
func (st *taintState) builtinTaint(name string, call *ast.CallExpr) bool {
	switch name {
	case "len", "cap":
		// The length of already-committed data is trusted: only the wire's
		// *claims* about length are not.
		return false
	case "min", "max":
		for _, arg := range call.Args {
			if tv, ok := st.info.Info.Types[arg]; ok && tv.Value != nil {
				return false // clamped against a constant bound
			}
		}
		fallthrough
	case "append":
		for _, arg := range call.Args {
			if st.exprTainted(arg) {
				return true
			}
		}
	}
	return false
}

// callInputsTainted reports whether any receiver or argument of the call
// carries taint.
func (st *taintState) callInputsTainted(call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && st.exprTainted(sel.X) {
		return true
	}
	for _, arg := range call.Args {
		if st.exprTainted(arg) {
			return true
		}
	}
	return false
}

// callEffects handles a call's side channels: tainted arguments grow module
// callee summaries (carrier types only), and stdlib calls with tainted
// inputs fill their writable carrier arguments (io.ReadFull into a buffer,
// json.Decode into a request struct).
func (st *taintState) callEffects(call *ast.CallExpr) {
	if tv, ok := st.info.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := st.info.Info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	callee := calleeFunc(st.info, call)
	if callee != nil {
		callee = callee.Origin()
		if hasSuffixPath(funcPkgPath(callee), limitsPkgSuffix) {
			return
		}
		if st.fg.sums[callee] != nil {
			// An ignore on the call line is the edge-level escape hatch:
			// taint stops here, exactly like hotalloc traversal.
			if st.fg.prog.Suppressed(st.fg.check, call.Pos()) {
				return
			}
			sig := callee.Type().(*types.Signature)
			// Receiver taint crosses only same-package method calls: the
			// decode-state pattern (reader methods). A tainted domain
			// object's methods called from another package are that
			// package's contract.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sig.Recv() != nil &&
				callee.Pkg() == st.fn.Pkg() && st.exprTainted(sel.X) {
				st.fg.requestParamTaint(st.fn, callee, -1)
			}
			structPkg := callee.Pkg()
			if structPkg != st.fn.Pkg() {
				structPkg = nil
			}
			np := sig.Params().Len()
			for i, arg := range call.Args {
				if !st.exprTainted(arg) {
					continue
				}
				pi := i
				if sig.Variadic() && pi >= np-1 {
					pi = np - 1
				}
				if pi < 0 || pi >= np {
					continue
				}
				if !carrierType(sig.Params().At(pi).Type(), structPkg, false) {
					continue
				}
				st.fg.requestParamTaint(st.fn, callee, pi)
			}
			return
		}
	}
	// Stdlib call: tainted inputs flow into writable carrier arguments.
	if !st.callInputsTainted(call) {
		return
	}
	for _, arg := range call.Args {
		tv, ok := st.info.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Slice:
			if carrierType(tv.Type, nil, true) {
				st.taintLValue(arg)
			}
		}
	}
}

// reportSinks scans the body for places where a still-tainted length sizes
// memory: make arguments, slice bounds, indexing, and loop bounds.
func (st *taintState) reportSinks(body *ast.BlockStmt, report func(pos token.Pos, msg string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				return true
			}
			if _, isBuiltin := st.info.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			for _, arg := range n.Args[1:] {
				if st.exprTainted(arg) {
					report(arg.Pos(), "untrusted length flows into make without a bound check; compare against a limit or use internal/limits")
				}
			}
		case *ast.IndexExpr:
			tv, ok := st.info.Info.Types[n.X]
			if !ok || tv.Type == nil || !tv.IsValue() {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
				if st.exprTainted(n.Index) {
					report(n.Index.Pos(), "untrusted value used as a slice index without a bound check")
				}
			}
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
				if b != nil && st.exprTainted(b) {
					report(b.Pos(), "untrusted value used as a slice bound without a bound check")
				}
			}
		case *ast.ForStmt:
			cond, ok := n.Cond.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch cond.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
				if st.exprTainted(cond.X) || st.exprTainted(cond.Y) {
					report(cond.Pos(), "untrusted value bounds this loop without a prior limit check")
				}
			}
		}
		return true
	})
}
