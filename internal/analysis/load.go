package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // module-qualified import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *PackageInfo
	// TypeErrors collects soft type-check errors. Analysis proceeds on a
	// best-effort basis when they occur (fixture files are allowed to be
	// sloppy about unused variables, for example).
	TypeErrors []error
}

// PackageInfo bundles the go/types results an analyzer consumes.
type PackageInfo struct {
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses, and type-checks packages of one module. It
// resolves module-local imports by mapping import paths onto directories
// under the module root and everything else through the stdlib source
// importer, so no pre-built export data or network access is needed.
type Loader struct {
	Root       string // directory containing go.mod
	ModulePath string
	Fset       *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*Package // memoized module-local packages by import path
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader creates a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Root:       root,
		ModulePath: modPath,
		Fset:       fset,
		pkgs:       make(map[string]*Package),
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	l.std = std
	return l, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load from
// source under the module root, everything else delegates to the stdlib
// source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Info.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// pathFor maps a directory under the module root to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside the module root %s", dir, l.Root)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadPath loads (or returns the memoized) package at a module-local
// import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.loadDir(l.dirFor(path), path)
}

// LoadDir loads the package in dir (which must live under the module
// root). Used directly by the fixture test harness.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.pathFor(abs)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.loadDir(abs, path)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	// Memoize before type-checking: import cycles would otherwise
	// recurse forever (the type checker reports the cycle itself).
	l.pkgs[path] = pkg
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			delete(l.pkgs, path)
			return nil, fmt.Errorf("analysis: parsing %s: %w", filepath.Join(dir, name), err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		// Collect soft errors and keep going: analyzers work on the
		// best-effort type information that remains.
		Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, pkg.Files, info)
	pkg.Info = &PackageInfo{Types: tpkg, Info: info}
	return pkg, nil
}

// LoadPatterns resolves command-line package patterns ("./...", "./dir",
// ".", or module-qualified import paths) into loaded packages, sorted by
// import path. Directories named testdata or vendor, and those whose
// name starts with "." or "_", are never walked.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		if strings.HasPrefix(pat, l.ModulePath) {
			// Module-qualified: rewrite to a root-relative form.
			pat = "./" + strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/")
		}
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var out []*Package
	for dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			if _, ok := errNoGo(err); ok {
				continue
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// errNoGo reports whether err wraps build.NoGoError (a directory with no
// buildable Go files, e.g. one holding only test files or docs).
func errNoGo(err error) (*build.NoGoError, bool) {
	for err != nil {
		if ng, ok := err.(*build.NoGoError); ok {
			return ng, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}
