package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the called function or method of a call expression,
// or nil when the call is a conversion, a builtin, or a call through a
// function-typed value.
func calleeFunc(info *PackageInfo, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package declaring fn, or "".
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (methods never match).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || funcPkgPath(fn) != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isMethodOf reports whether fn is a method named name whose declaring
// package path equals or has the given suffix.
func isMethodOf(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return pathMatches(funcPkgPath(fn), []string{pkgSuffix})
}

// namedTypeIn reports whether t (after stripping pointers) is the named
// type name declared in a package whose path equals or has the suffix
// pkgSuffix.
func namedTypeIn(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathMatches(obj.Pkg().Path(), []string{pkgSuffix})
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// returnsError reports whether the call's result includes an error.
func returnsError(info *PackageInfo, call *ast.CallExpr) bool {
	tv, ok := info.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if isErrorType(tv.Type) {
		return true
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok {
		return false
	}
	for i := 0; i < tuple.Len(); i++ {
		if isErrorType(tuple.At(i).Type()) {
			return true
		}
	}
	return false
}

// exprText renders a (small) expression for diagnostics.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	case *ast.ParenExpr:
		return exprText(e.X)
	}
	return "<expr>"
}

// funcDecls yields every function declaration with a body in the pass.
func funcDecls(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// hasSuffixPath reports whether path equals suffix or ends in "/"+suffix.
func hasSuffixPath(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
