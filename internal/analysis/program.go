package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Whole-program analysis: the per-package checks inherited from texlint v1
// see one package at a time, but the zero-alloc and clock-domain contracts
// are properties of call *chains* that cross package boundaries
// (engine.Search -> knn -> blas -> gpusim). Program indexes every function
// declaration across the loaded packages, parses the texlint annotations
// that mark hot paths and scratch-aliasing APIs, and builds a module-local
// call graph on demand. All packages share one Loader and FileSet, so
// types.Object identity is consistent program-wide and the graph can be
// keyed directly on *types.Func.

// FuncAnn carries the texlint annotations parsed from a function's doc
// comment.
type FuncAnn struct {
	// Hot marks a //texlint:hotpath root: the function and everything it
	// transitively calls must be allocation-free.
	Hot bool
	// Cold marks a //texlint:coldpath function: hot-path traversal stops
	// here. A reason is mandatory.
	Cold       bool
	ColdReason string
	// ScratchAlias marks an API whose results alias a reusable scratch;
	// aliasret tracks its callers, and the function itself may return
	// aliased slices.
	ScratchAlias bool
	// ClockRoot marks a //texlint:clockdomain root for the wall-clock
	// reachability check (packages under internal/gpusim are roots
	// implicitly; the annotation exists for fixtures and future domains).
	ClockRoot bool
	// Freelist marks a //texlint:freelist recycler: pointer arguments
	// passed to this function return to a freelist, and the caller must
	// not touch them afterwards (poollife enforces the callers).
	Freelist bool
	// Untrusted marks a //texlint:untrusted seam: every parameter (and the
	// receiver) carries attacker-controlled data, and wiretaint taints them
	// as sources.
	Untrusted bool
	// Deterministic marks a //texlint:deterministic root: output produced
	// by this function and everything it transitively calls must not depend
	// on map iteration or select ordering (maporder enforces the closure).
	Deterministic bool
}

// FuncInfo is one function declaration in the program.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Ann  FuncAnn
}

// CallSite is one resolved call edge in the module-local call graph.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// Program bundles the loaded packages for whole-program checks.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Funcs indexes every function/method declaration with a body.
	Funcs map[*types.Func]*FuncInfo

	pkgPaths map[string]bool
	ignore   *ignoreIndex
	callees  map[*types.Func][]CallSite

	// Memoized concurrency-contract summaries (locks.go).
	locksums  map[*types.Func]*lockSummary
	entryheld map[*types.Func]map[string]entryInfo
	transacq  map[*types.Func]map[string]token.Pos
}

// BuildProgram indexes the packages (all loaded through one shared
// Loader/FileSet) for whole-program analysis.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:     pkgs,
		Funcs:    make(map[*types.Func]*FuncInfo),
		pkgPaths: make(map[string]bool),
		callees:  make(map[*types.Func][]CallSite),
	}
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		if prog.Fset == nil {
			prog.Fset = pkg.Fset
		}
		prog.pkgPaths[pkg.Path] = true
		allFiles = append(allFiles, pkg.Files...)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.Funcs[fn] = &FuncInfo{Obj: fn, Decl: fd, Pkg: pkg, Ann: parseFuncAnn(fd.Doc)}
			}
		}
	}
	if prog.Fset != nil {
		prog.ignore = buildIgnoreIndex(prog.Fset, allFiles)
	}
	return prog
}

// InModule reports whether the import path belongs to the loaded package
// set (i.e. the analyzed module, not the stdlib).
func (p *Program) InModule(path string) bool { return p.pkgPaths[path] }

// Suppressed reports whether a //texlint:ignore directive covers the given
// check at the given position. Whole-program checks use it to prune call
// edges: an ignore on a call line both silences diagnostics there and stops
// hot-path traversal into the callee.
func (p *Program) Suppressed(check string, pos token.Pos) bool {
	if p.ignore == nil || !pos.IsValid() {
		return false
	}
	position := p.Fset.Position(pos)
	return p.ignore.suppressed(Diagnostic{Pos: position, Check: check})
}

// Callees resolves (and memoizes) the module-local call edges of fn,
// including calls made inside function literals in its body — a closure's
// calls are attributed to the enclosing declaration.
func (p *Program) Callees(fn *types.Func) []CallSite {
	if sites, ok := p.callees[fn]; ok {
		return sites
	}
	fi := p.Funcs[fn]
	if fi == nil {
		return nil
	}
	var sites []CallSite
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(fi.Pkg.Info, call)
		if callee == nil {
			return true
		}
		callee = callee.Origin()
		if _, ok := p.Funcs[callee]; ok {
			sites = append(sites, CallSite{Callee: callee, Pos: call.Pos()})
		}
		return true
	})
	p.callees[fn] = sites
	return sites
}

// Annotation directives recognized on function doc comments.
const (
	hotpathPrefix       = "//texlint:hotpath"
	coldpathPrefix      = "//texlint:coldpath"
	scratchaliasPrefix  = "//texlint:scratchalias"
	clockdomainPrefix   = "//texlint:clockdomain"
	freelistPrefix      = "//texlint:freelist"
	guardsPrefix        = "//texlint:guards"
	untrustedPrefix     = "//texlint:untrusted"
	deterministicPrefix = "//texlint:deterministic"
)

// parseFuncAnn extracts texlint annotations from a doc comment group.
func parseFuncAnn(doc *ast.CommentGroup) FuncAnn {
	var ann FuncAnn
	if doc == nil {
		return ann
	}
	for _, c := range doc.List {
		switch {
		case directiveIs(c.Text, hotpathPrefix):
			ann.Hot = true
		case directiveIs(c.Text, coldpathPrefix):
			ann.Cold = true
			ann.ColdReason = strings.TrimSpace(strings.TrimPrefix(c.Text, coldpathPrefix))
		case directiveIs(c.Text, scratchaliasPrefix):
			ann.ScratchAlias = true
		case directiveIs(c.Text, clockdomainPrefix):
			ann.ClockRoot = true
		case directiveIs(c.Text, freelistPrefix):
			ann.Freelist = true
		case directiveIs(c.Text, untrustedPrefix):
			ann.Untrusted = true
		case directiveIs(c.Text, deterministicPrefix):
			ann.Deterministic = true
		}
	}
	return ann
}

// directiveIs matches a comment against one directive, requiring the name
// to end at a word boundary so //texlint:hotpath does not match a future
// //texlint:hotpath2.
func directiveIs(text, prefix string) bool {
	if !strings.HasPrefix(text, prefix) {
		return false
	}
	rest := text[len(prefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// directiveDiags validates every //texlint: comment in the program:
// unknown directive names, ignores with no check list, ignores naming an
// unknown check, bare ignores with no reason, and coldpath annotations
// with no reason all become findings under the "directive" check.
func (p *Program) directiveDiags(knownChecks map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos: p.Fset.Position(pos), Check: "directive",
			Message: fmt.Sprintf(format, args...),
		})
	}
	// Placement hygiene for the value-flow annotations: both only mean
	// something in the doc comment of a function declaration, and
	// //texlint:untrusted additionally needs inputs to taint (a receiver or
	// at least one parameter).
	funcDocPos := make(map[token.Pos]bool)
	untrustedOKPos := make(map[token.Pos]bool)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				hasInputs := fd.Recv != nil ||
					(fd.Type.Params != nil && len(fd.Type.Params.List) > 0)
				for _, c := range fd.Doc.List {
					funcDocPos[c.Pos()] = true
					if hasInputs {
						untrustedOKPos[c.Pos()] = true
					}
				}
			}
		}
	}
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					if !strings.HasPrefix(text, "//texlint:") {
						continue
					}
					switch {
					case directiveIs(text, ignorePrefix):
						rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
						fields := strings.Fields(rest)
						if len(fields) == 0 {
							report(c.Pos(), "texlint:ignore needs a check list and a reason: //texlint:ignore <check>[,<check>...] <reason>")
							continue
						}
						for _, name := range strings.Split(fields[0], ",") {
							name = strings.TrimSpace(name)
							if name != "" && !knownChecks[name] {
								report(c.Pos(), "texlint:ignore names unknown check %q (known: %s)", name, strings.Join(sortedKeys(knownChecks), ", "))
							}
						}
						if len(fields) == 1 {
							report(c.Pos(), "texlint:ignore %s has no reason; bare ignores are not allowed — say why, or record it in texlint.baseline", fields[0])
						}
					case directiveIs(text, coldpathPrefix):
						if strings.TrimSpace(strings.TrimPrefix(text, coldpathPrefix)) == "" {
							report(c.Pos(), "texlint:coldpath needs a reason explaining why this function is off the hot path")
						}
					case directiveIs(text, guardsPrefix):
						if strings.TrimSpace(strings.TrimPrefix(text, guardsPrefix)) == "" {
							report(c.Pos(), "texlint:guards needs the name of the protecting mutex field: //texlint:guards <mutex>")
						}
					case directiveIs(text, untrustedPrefix):
						if !funcDocPos[c.Pos()] {
							report(c.Pos(), "texlint:untrusted must be in the doc comment of a function declaration")
						} else if !untrustedOKPos[c.Pos()] {
							report(c.Pos(), "texlint:untrusted marks inputs as hostile, but this function has no receiver or parameters")
						}
					case directiveIs(text, deterministicPrefix):
						if !funcDocPos[c.Pos()] {
							report(c.Pos(), "texlint:deterministic must be in the doc comment of a function declaration")
						}
					case directiveIs(text, hotpathPrefix),
						directiveIs(text, scratchaliasPrefix),
						directiveIs(text, clockdomainPrefix),
						directiveIs(text, freelistPrefix):
						// Valid annotations; nothing to check.
					default:
						name := strings.TrimPrefix(text, "//texlint:")
						if i := strings.IndexAny(name, " \t"); i >= 0 {
							name = name[:i]
						}
						report(c.Pos(), "unknown texlint directive %q (known: ignore, hotpath, coldpath, scratchalias, clockdomain, freelist, guards, untrusted, deterministic)", name)
					}
				}
			}
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RunAll executes per-package analyzers over every package and
// whole-program analyzers once, validates texlint directives, filters
// suppressed diagnostics, and returns the rest sorted by position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	prog := BuildProgram(pkgs)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.RunProgram != nil {
			out = append(out, a.RunProgram(prog)...)
			continue
		}
		for _, pkg := range pkgs {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Info, PkgPath: pkg.Path}
			out = append(out, a.Run(pass)...)
		}
	}
	out = append(out, prog.directiveDiags(knownCheckSet())...)
	var kept []Diagnostic
	for _, d := range out {
		if prog.ignore != nil && prog.ignore.suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	return sortDiags(kept)
}

func sortDiags(ds []Diagnostic) []Diagnostic {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Pos.Filename != ds[j].Pos.Filename {
			return ds[i].Pos.Filename < ds[j].Pos.Filename
		}
		if ds[i].Pos.Line != ds[j].Pos.Line {
			return ds[i].Pos.Line < ds[j].Pos.Line
		}
		if ds[i].Check != ds[j].Check {
			return ds[i].Check < ds[j].Check
		}
		return ds[i].Message < ds[j].Message
	})
	// Whole-program traversals can reach the same site from several roots;
	// keep one copy of identical findings.
	w := 0
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		ds[w] = d
		w++
	}
	return ds[:w]
}
