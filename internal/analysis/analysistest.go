package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sync"
)

// Fixture testing: a fixture package under testdata/src/<name> contains
// files with `// want "regexp"` comments marking the lines where a check
// must report, plus clean files with no comments that must produce zero
// diagnostics. CheckFixture loads the package, runs the analyzer with
// its scope widened to the fixture path, and returns one error per
// mismatch in either direction.

var (
	fixtureOnce   sync.Once
	fixtureLoader *Loader
	fixtureErr    error
)

// fixtureLoad returns a process-wide loader so the (source-imported)
// stdlib is only type-checked once across all fixture tests.
func fixtureLoad(dir string) (*Package, error) {
	fixtureOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureLoader, fixtureErr = NewLoader(root)
	})
	if fixtureErr != nil {
		return nil, fixtureErr
	}
	return fixtureLoader.LoadDir(dir)
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// CheckFixture runs one analyzer over testdata/src/<fixture> and
// verifies its diagnostics against the `// want` expectations.
func CheckFixture(a *Analyzer, fixture string) []error {
	return CheckFixtureDir(a, filepath.Join("testdata", "src", fixture))
}

// CheckFixtureDir is CheckFixture with an explicit fixture directory; the
// `texlint -fixtures` self-test mode uses it from outside this package's
// working directory.
func CheckFixtureDir(a *Analyzer, dir string) []error {
	pkg, err := fixtureLoad(dir)
	if err != nil {
		return []error{err}
	}
	// Widen the scope: fixture packages live outside the production
	// package set the analyzer is normally restricted to. Directive
	// hygiene ("directive" findings from RunAll) is kept: fixtures assert
	// it with // want comments like any other check.
	widened := &Analyzer{Name: a.Name, Doc: a.Doc, Run: a.Run, RunProgram: a.RunProgram}
	diags := RunAll([]*Package{pkg}, []*Analyzer{widened})

	type want struct {
		re   *regexp.Regexp
		used bool
		pos  string
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	var errs []error
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						errs = append(errs, fmt.Errorf("%s: bad want regexp %q: %v", tf.Name(), m[1], err))
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := posKey(pos)
					wants[key] = append(wants[key], &want{re: re, pos: key})
				}
			}
		}
	}
	for _, d := range diags {
		key := posKey(d.Pos)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			errs = append(errs, fmt.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Check, d.Message))
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.used {
				errs = append(errs, fmt.Errorf("missing diagnostic at %s: want match for %q", w.pos, w.re))
			}
		}
	}
	return errs
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
