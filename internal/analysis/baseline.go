package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Findings baseline: instead of scattering //texlint:ignore comments for
// long-lived, reviewed exceptions, they can be recorded centrally in
// texlint.baseline. Each entry is one line:
//
//	path/file.go: [check] message
//
// Paths are module-root-relative with forward slashes, and entries carry
// no line numbers, so ordinary edits elsewhere in a file do not invalidate
// them. A diagnostic matching an entry is filtered; an entry matching no
// diagnostic (for a check that actually ran) is reported as stale so the
// file can only shrink, never silently rot.

// Baseline is a parsed findings-baseline file.
type Baseline struct {
	entries map[string][]*baselineEntry // key -> duplicates allowed
}

type baselineEntry struct {
	key   string
	check string
	line  int
	used  bool
}

// baselineKey renders the stable identity of a diagnostic.
func baselineKey(d Diagnostic, root string) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return fmt.Sprintf("%s: [%s] %s", filepath.ToSlash(file), d.Check, d.Message)
}

// LoadBaseline reads a baseline file. Blank lines and lines starting with
// "#" are comments. A malformed entry is an error (the file is reviewed
// code, not freeform text).
func LoadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b := &Baseline{entries: make(map[string][]*baselineEntry)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		check, ok := baselineEntryCheck(line)
		if !ok {
			return nil, fmt.Errorf("%s:%d: malformed baseline entry (want \"path/file.go: [check] message\"): %q", path, lineNo, line)
		}
		e := &baselineEntry{key: line, check: check, line: lineNo}
		b.entries[line] = append(b.entries[line], e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// baselineEntryCheck extracts the [check] name from an entry line.
func baselineEntryCheck(line string) (string, bool) {
	i := strings.Index(line, ": [")
	if i < 0 {
		return "", false
	}
	rest := line[i+3:]
	j := strings.Index(rest, "] ")
	if j <= 0 {
		return "", false
	}
	return rest[:j], true
}

// Filter removes diagnostics matching a baseline entry, consuming one
// entry per diagnostic, and returns the rest.
func (b *Baseline) Filter(diags []Diagnostic, root string) []Diagnostic {
	if b == nil {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		matched := false
		for _, e := range b.entries[baselineKey(d, root)] {
			if !e.used {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			out = append(out, d)
		}
	}
	return out
}

// Stale returns the unmatched entries for checks that were enabled this
// run, sorted by file line. Entries for disabled checks are left alone so
// `-checks determinism` does not report the hotalloc baseline as stale.
func (b *Baseline) Stale(enabled map[string]bool) []string {
	if b == nil {
		return nil
	}
	var stale []*baselineEntry
	for _, es := range b.entries {
		for _, e := range es {
			if !e.used && enabled[e.check] {
				stale = append(stale, e)
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].line < stale[j].line })
	out := make([]string, len(stale))
	for i, e := range stale {
		out[i] = e.key
	}
	return out
}

// WriteBaseline writes the diagnostics as a fresh baseline file, sorted
// and deduplicated-with-multiplicity (identical findings on different
// lines stay as repeated entries).
func WriteBaseline(path string, diags []Diagnostic, root string) error {
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, baselineKey(d, root))
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("# texlint findings baseline. Each line is one reviewed, justified finding:\n")
	sb.WriteString("#   path/file.go: [check] message\n")
	sb.WriteString("# Entries carry no line numbers so unrelated edits do not invalidate them.\n")
	sb.WriteString("# Regenerate with: go run ./cmd/texlint -write-baseline texlint.baseline ./...\n")
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
