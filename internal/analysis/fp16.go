package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// NewFP16 builds the FP16-discipline check: outside internal/half, code
// may not manufacture binary16 values by raw conversion
// (half.Float16(x) reinterprets x as a bit pattern, skipping
// round-to-nearest-even) nor apply native arithmetic operators to
// Float16 operands (which would add bit patterns, not numbers). The
// hgemm/cache path must go through half.FromFloat32/FromSlice/
// ScaleFromSlice for storage and half.FMA/Dot for arithmetic, so the
// simulated pre-Volta accumulation semantics stay faithful.
func NewFP16() *Analyzer {
	return &Analyzer{
		Name:    "fp16",
		Doc:     "no raw Float16 conversions or bit-pattern arithmetic outside internal/half",
		Applies: NotIn("internal/half"),
		Run:     runFP16,
	}
}

const halfPath = "internal/half"

var fp16ArithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
}

func runFP16(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pass.Fset.Position(pos),
			Check:   "fp16",
			Message: fmt.Sprintf(format, args...),
		})
	}
	isFloat16 := func(e ast.Expr) bool {
		tv, ok := pass.Pkg.Info.Types[e]
		return ok && namedTypeIn(tv.Type, halfPath, "Float16")
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// A conversion whose callee *is* the Float16 type.
				tv, ok := pass.Pkg.Info.Types[ast.Unparen(n.Fun)]
				if ok && tv.IsType() && namedTypeIn(tv.Type, halfPath, "Float16") {
					report(n.Pos(), "half.Float16(...) conversion writes a raw bit pattern; use half.FromFloat32/FromSlice/ScaleFromSlice")
				}
			case *ast.BinaryExpr:
				if fp16ArithOps[n.Op] && (isFloat16(n.X) || isFloat16(n.Y)) {
					report(n.Pos(), "native %s on half.Float16 operates on bit patterns; use half.FMA/half.Dot or convert via Float32()", n.Op)
				}
			}
			return true
		})
	}
	return diags
}

// DefaultAnalyzers returns the production check suite with the project's
// package scoping: the determinism check covers the simulator and the
// numeric hot path (timing results must be reproducible), the syntactic
// checks cover all non-test code, the flow-aware checks (hotalloc,
// clockdomain, aliasret, atomicmix) run whole-program with clockdomain
// rooted at the simulator, the concurrency-contract checks (lockorder,
// guardedby, poollife, goleak) run over the module-local lock-acquisition
// graph, and the value-flow checks (wiretaint, maporder) run whole-program
// over untrusted-input and deterministic-output closures.
func DefaultAnalyzers() []*Analyzer {
	simScope := ScopedTo(
		"internal/gpusim", "internal/engine", "internal/blas",
		"internal/knn", "internal/half", "internal/cache",
	)
	return []*Analyzer{
		NewDeterminism(simScope),
		NewLockCheck(),
		NewErrCheck(),
		NewStreamPair(),
		NewFP16(),
		NewHotAlloc(),
		NewClockDomain(ScopedTo("internal/gpusim")),
		NewAliasRet(),
		NewAtomicMix(),
		NewLockOrder(),
		NewGuardedBy(),
		NewPoolLife(),
		NewGoLeak(),
		NewWireTaint(),
		NewMapOrder(),
	}
}

// FixtureAnalyzers returns the suite configured for fixture packages:
// identical to DefaultAnalyzers except that clockdomain takes its roots
// only from //texlint:clockdomain annotations and stream payloads (the
// fixture package is not internal/gpusim). Used by the fixture tests and
// by `texlint -fixtures`.
func FixtureAnalyzers() []*Analyzer {
	out := DefaultAnalyzers()
	for i, a := range out {
		if a.Name == "clockdomain" {
			out[i] = NewClockDomain(nil)
		}
	}
	return out
}
