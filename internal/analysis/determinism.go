package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewDeterminism builds the determinism check: simulator code must be
// reproducible, so it may not read wall-clock time, draw from the global
// math/rand source, or emit ordered output from map iteration. Seeded
// *rand.Rand values passed explicitly are allowed (their methods are not
// package-level functions), as are rand.New/rand.NewSource constructors.
//
// scope restricts the check to the simulator packages; nil applies it
// everywhere (used by the fixture tests).
func NewDeterminism(scope func(string) bool) *Analyzer {
	return &Analyzer{
		Name:    "determinism",
		Doc:     "no time.Now, global math/rand, or map-ordered output in simulator code",
		Applies: scope,
		Run:     runDeterminism,
	}
}

func runDeterminism(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pass.Fset.Position(pos),
			Check:   "determinism",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg, call)
			if fn == nil {
				return true
			}
			if isPkgFunc(fn, "time", "Now") {
				report(call.Pos(), "time.Now breaks simulation reproducibility; use the simulated clock or inject the time")
				return true
			}
			pkg := funcPkgPath(fn)
			if (pkg == "math/rand" || pkg == "math/rand/v2") &&
				!strings.HasPrefix(fn.Name(), "New") {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					report(call.Pos(), "%s.%s draws from the global rand source; thread a seeded *rand.Rand instead", pkg, fn.Name())
				}
			}
			return true
		})
	}
	for _, fd := range funcDecls(pass) {
		diags = append(diags, mapOrderDiags(pass, fd)...)
	}
	return diags
}

// mapOrderDiags flags range-over-map loops that build ordered output
// (appends, prints, string concatenation) with no subsequent sort in the
// same function. Order-insensitive bodies (counting, map-to-map copies)
// are fine.
func mapOrderDiags(pass *Pass, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if !buildsOrderedOutput(pass, rng.Body) {
			return true
		}
		if sortedAfter(pass, fd, rng.End()) {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:     pass.Fset.Position(rng.Pos()),
			Check:   "determinism",
			Message: "map iteration order is random but this loop builds ordered output; sort before emitting",
		})
		return true
	})
	return diags
}

// buildsOrderedOutput reports whether the loop body performs an
// order-sensitive accumulation: append, fmt output, writer calls, or
// string concatenation.
func buildsOrderedOutput(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
			if fn := calleeFunc(pass.Pkg, n); fn != nil {
				name := fn.Name()
				if funcPkgPath(fn) == "fmt" && strings.Contains(name, "rint") {
					found = true
				}
				if strings.HasPrefix(name, "Write") {
					found = true
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if tv, ok := pass.Pkg.Info.Types[n.Lhs[0]]; ok && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// sortedAfter reports whether the function calls a sorting/ranking
// routine positioned after pos (the idiomatic collect-then-sort pattern).
func sortedAfter(pass *Pass, fd *ast.FuncDecl, pos token.Pos) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := calleeFunc(pass.Pkg, call)
		if fn == nil {
			return true
		}
		if funcPkgPath(fn) == "sort" || funcPkgPath(fn) == "slices" ||
			strings.Contains(fn.Name(), "Sort") || strings.Contains(fn.Name(), "Rank") {
			sorted = true
		}
		return true
	})
	return sorted
}
