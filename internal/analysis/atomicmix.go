package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicmix: a variable or struct field accessed through sync/atomic
// anywhere must be accessed atomically everywhere. Mixing atomic.AddInt64
// with a plain read is a data race the race detector only catches when the
// schedule cooperates; this check catches it statically, program-wide
// (the atomic access and the plain access are usually in different
// functions, often different files).
//
// Wrapper types (atomic.Int64 and friends) make the mix impossible by
// construction and are the style used in production code; this check
// covers the residual raw-function usage.

// NewAtomicMix returns the mixed atomic/plain access check.
func NewAtomicMix() *Analyzer {
	return &Analyzer{
		Name:       "atomicmix",
		Doc:        "variables accessed via sync/atomic must be accessed atomically everywhere",
		RunProgram: runAtomicMix,
	}
}

func runAtomicMix(prog *Program) []Diagnostic {
	// Pass 1: collect every variable whose address is taken as the first
	// argument of a sync/atomic function, plus the positions of idents
	// that appear inside any atomic call (those are the sanctioned uses).
	atomicTarget := make(map[*types.Var]token.Pos) // var -> one atomic-use site
	sanctioned := make(map[*ast.Ident]bool)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || funcPkgPath(fn) != "sync/atomic" {
					return true
				}
				// Sanction every ident inside the call (the &x.f argument
				// and any value operands).
				ast.Inspect(call, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						sanctioned[id] = true
					}
					return true
				})
				if len(call.Args) == 0 {
					return true
				}
				if v := addressedVar(pkg, call.Args[0]); v != nil {
					if _, ok := atomicTarget[v]; !ok {
						atomicTarget[v] = call.Pos()
					}
				}
				return true
			})
		}
	}
	if len(atomicTarget) == 0 {
		return nil
	}

	// Pass 2: any other use of those variables is a plain (racy) access.
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || sanctioned[id] {
					return true
				}
				v, ok := pkg.Info.Info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				first, ok := atomicTarget[v]
				if !ok {
					return true
				}
				out = append(out, Diagnostic{
					Pos:   prog.Fset.Position(id.Pos()),
					Check: "atomicmix",
					Message: fmt.Sprintf("%s is accessed with sync/atomic at %s but plainly here; every access must be atomic",
						v.Name(), prog.Fset.Position(first)),
				})
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// addressedVar resolves &x or &x.f to the variable or field being
// addressed, or nil.
func addressedVar(pkg *Package, arg ast.Expr) *types.Var {
	ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil
	}
	switch x := ast.Unparen(ue.X).(type) {
	case *ast.Ident:
		v, _ := pkg.Info.Info.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := pkg.Info.Info.Uses[x.Sel].(*types.Var)
		return v
	}
	return nil
}
