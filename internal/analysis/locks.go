package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Lock-class machinery shared by the concurrency-contract checks
// (lockorder, guardedby): a lock *class* names one mutex per owning type
// (or one package-level mutex), e.g. "texid/internal/engine.Engine.mu".
// The walker below threads a set of held classes through a function body —
// linearly through each statement list, cloning at branches, resetting at
// function-literal boundaries (a closure does not inherit its creator's
// critical section) — and reports acquisitions, module-local calls, and
// struct-field accesses together with the locks held at that point.
//
// The tracking is deliberately conservative in the same way lockcheck is:
// a lock acquired inside a branch is considered released when the branch
// joins (the common `if bad { mu.Unlock(); return }` shape keeps the outer
// view correct, because the unlocking path leaves the function), and a
// deferred unlock holds the class to the end of the function.

// heldLock is one acquired lock: its class, read/write kind, and the
// rendered owner expression ("e" for e.mu.Lock) for instance matching.
type heldLock struct {
	class string
	kind  byte // 'R' (RLock) or 'W' (Lock)
	recv  string
	pos   token.Pos
}

// heldSet is the set of lock classes held at a program point.
type heldSet map[string]*heldLock

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// snapshot returns the held locks as a sorted slice (stable diagnostics).
func (h heldSet) snapshot() []*heldLock {
	out := make([]*heldLock, 0, len(h))
	for _, l := range h {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].class < out[j].class })
	return out
}

// lockMethodKind classifies a sync mutex method name.
func lockMethodKind(name string) (kind byte, acquire, ok bool) {
	switch name {
	case "Lock":
		return 'W', true, true
	case "RLock":
		return 'R', true, true
	case "Unlock":
		return 'W', false, true
	case "RUnlock":
		return 'R', false, true
	}
	return 0, false, false
}

// isSyncMutexType reports whether t (after deref) is sync.Mutex/RWMutex.
func isSyncMutexType(t types.Type) bool {
	return namedTypeIn(t, "sync", "Mutex") || namedTypeIn(t, "sync", "RWMutex")
}

// lockClassOf resolves the lock class of a (R)Lock/(R)Unlock call.
// Returns ok=false for calls that are not sync mutex operations or whose
// mutex cannot be given a stable program-wide identity (local mutex vars).
func lockClassOf(info *PackageInfo, call *ast.CallExpr) (l heldLock, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return l, false, false
	}
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return l, false, false
	}
	kind, acquire, ok := lockMethodKind(fn.Name())
	if !ok {
		return l, false, false
	}
	l.kind = kind
	l.pos = call.Pos()

	target := ast.Unparen(sel.X)
	tv, hasType := info.Info.Types[target]
	if hasType && isSyncMutexType(tv.Type) {
		switch x := target.(type) {
		case *ast.SelectorExpr:
			// owner.field.Lock(): class is OwnerType.field.
			if otv, ok := info.Info.Types[ast.Unparen(x.X)]; ok {
				if cls := typeClassName(otv.Type); cls != "" {
					l.class = cls + "." + x.Sel.Name
					l.recv = exprText(x.X)
					return l, acquire, true
				}
			}
		case *ast.Ident:
			// mu.Lock(): package-level mutex var, or an untrackable local.
			if obj, ok := info.Info.Uses[x].(*types.Var); ok && obj.Pkg() != nil &&
				obj.Parent() == obj.Pkg().Scope() {
				l.class = obj.Pkg().Path() + "." + obj.Name()
				return l, acquire, true
			}
		}
		return l, false, false
	}
	// t.Lock() through an embedded mutex: class is OwnerType.Mutex.
	if hasType {
		if cls := typeClassName(tv.Type); cls != "" {
			l.class = cls + ".Mutex"
			l.recv = exprText(target)
			return l, acquire, true
		}
	}
	return l, false, false
}

// typeClassName renders pkgpath.TypeName for a (possibly pointered) named
// type, or "".
func typeClassName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// lockClassDisplay shortens a class key for diagnostics: the last two path
// segments are kept ("engine.Engine.mu").
func lockClassDisplay(class string) string {
	short := class
	for i := len(short) - 1; i >= 0; i-- {
		if short[i] == '/' {
			return short[i+1:]
		}
	}
	return short
}

// lockVisitor walks one function body tracking held locks. Callbacks may
// be nil. inLit reports whether the current point is inside a function
// literal (whose execution context is unknown, so caller-entry locks must
// not be assumed there).
type lockVisitor struct {
	info *PackageInfo

	onAcquire func(l *heldLock, held heldSet, inLit bool)
	onCall    func(callee *types.Func, pos token.Pos, held heldSet, inLit bool)
	onAccess  func(sel *ast.SelectorExpr, field *types.Var, write bool, held heldSet, inLit bool)

	litDepth int
}

func (v *lockVisitor) walkBody(body *ast.BlockStmt) {
	v.walkStmts(body.List, make(heldSet))
}

func (v *lockVisitor) walkStmts(list []ast.Stmt, held heldSet) {
	for _, s := range list {
		v.walkStmt(s, held)
	}
}

func (v *lockVisitor) walkStmt(s ast.Stmt, held heldSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if l, acquire, ok := lockClassOf(v.info, call); ok {
				if acquire {
					if v.onAcquire != nil {
						v.onAcquire(&l, held, v.litDepth > 0)
					}
					lc := l
					held[l.class] = &lc
				} else {
					delete(held, l.class)
				}
				return
			}
		}
		v.scanExpr(s.X, held)
	case *ast.DeferStmt:
		if l, acquire, ok := lockClassOf(v.info, s.Call); ok && !acquire {
			// Deferred unlock: the lock stays held to the end of the
			// function; nothing to do.
			_ = l
			return
		}
		v.scanExpr(s.Call, held)
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			v.scanTarget(lhs, held, true)
		}
		for _, rhs := range s.Rhs {
			v.scanExpr(rhs, held)
		}
	case *ast.IncDecStmt:
		v.scanTarget(s.X, held, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			v.scanExpr(r, held)
		}
	case *ast.SendStmt:
		v.scanExpr(s.Chan, held)
		v.scanExpr(s.Value, held)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the critical section;
		// its body is walked with an empty held set. Arguments are
		// evaluated in the caller's context.
		for _, a := range s.Call.Args {
			v.scanExpr(a, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			v.litDepth++
			v.walkStmts(lit.Body.List, make(heldSet))
			v.litDepth--
		}
	case *ast.BlockStmt:
		v.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			v.walkStmt(s.Init, held)
		}
		v.scanExpr(s.Cond, held)
		v.walkStmts(s.Body.List, held.clone())
		if s.Else != nil {
			v.walkStmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		inner := held.clone()
		if s.Init != nil {
			v.walkStmt(s.Init, inner)
		}
		if s.Cond != nil {
			v.scanExpr(s.Cond, inner)
		}
		v.walkStmts(s.Body.List, inner)
		if s.Post != nil {
			v.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		v.scanExpr(s.X, held)
		v.walkStmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			v.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			v.scanExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					v.scanExpr(e, held)
				}
				v.walkStmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			v.walkStmt(s.Init, held)
		}
		v.walkStmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				v.walkStmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.clone()
				if cc.Comm != nil {
					v.walkStmt(cc.Comm, inner)
				}
				v.walkStmts(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		v.walkStmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						v.scanExpr(val, held)
					}
				}
			}
		}
	}
}

// scanTarget handles an assignment target: the leftmost field-selector
// spine is a write, index expressions keep their index as reads.
func (v *lockVisitor) scanTarget(e ast.Expr, held heldSet, write bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		v.reportAccess(e, held, write)
		v.scanTarget(e.X, held, false)
	case *ast.IndexExpr:
		v.scanTarget(e.X, held, write)
		v.scanExpr(e.Index, held)
	case *ast.SliceExpr:
		v.scanTarget(e.X, held, write)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				v.scanExpr(idx, held)
			}
		}
	case *ast.StarExpr:
		v.scanTarget(e.X, held, write)
	case *ast.Ident:
		// Plain variables carry no guard contract.
	default:
		v.scanExpr(e, held)
	}
}

// scanExpr walks an expression for calls and field reads. Function
// literals are walked with a fresh held set; sync/atomic call arguments
// are skipped entirely (the atomic-access allowance for guarded fields).
func (v *lockVisitor) scanExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			v.litDepth++
			v.walkStmts(n.Body.List, make(heldSet))
			v.litDepth--
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Taking the address of a field can hand out a mutable
				// view; treat it as a write to the spine.
				v.scanTarget(n.X, held, true)
				return false
			}
		case *ast.CallExpr:
			if fn := calleeFunc(v.info, n); fn != nil {
				if funcPkgPath(fn) == "sync/atomic" {
					return false // atomic access allowance
				}
				if v.onCall != nil {
					v.onCall(fn.Origin(), n.Pos(), held, v.litDepth > 0)
				}
			}
		case *ast.SelectorExpr:
			v.reportAccess(n, held, false)
			// Children are still visited, so a nested field selector
			// (a.b in a.b.c) reports its own read.
		}
		return true
	})
}

// reportAccess forwards a field selection to onAccess.
func (v *lockVisitor) reportAccess(sel *ast.SelectorExpr, held heldSet, write bool) {
	if v.onAccess == nil {
		return
	}
	obj, ok := v.info.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return
	}
	v.onAccess(sel, obj, write, held, v.litDepth > 0)
}

// --- whole-program lock summaries ---

// acquireRec is one lock acquisition with the locks held just before it.
type acquireRec struct {
	lock  heldLock
	held  []*heldLock
	inLit bool
}

// callRec is one module-local call with the locks held at the call site.
type callRec struct {
	callee *types.Func
	pos    token.Pos
	held   []*heldLock
	inLit  bool
}

// lockSummary is the per-function result of one walker pass.
type lockSummary struct {
	acquires []acquireRec
	calls    []callRec
}

// lockSummaries runs the held-tracking walker over every function
// declaration once and memoizes the results on the Program.
func (p *Program) lockSummaries() map[*types.Func]*lockSummary {
	if p.locksums != nil {
		return p.locksums
	}
	sums := make(map[*types.Func]*lockSummary, len(p.Funcs))
	for fn, fi := range p.Funcs {
		sum := &lockSummary{}
		v := &lockVisitor{
			info: fi.Pkg.Info,
			onAcquire: func(l *heldLock, held heldSet, inLit bool) {
				sum.acquires = append(sum.acquires, acquireRec{lock: *l, held: held.snapshot(), inLit: inLit})
			},
			onCall: func(callee *types.Func, pos token.Pos, held heldSet, inLit bool) {
				if _, ok := p.Funcs[callee]; ok {
					sum.calls = append(sum.calls, callRec{callee: callee, pos: pos, held: held.snapshot(), inLit: inLit})
				}
			},
		}
		v.walkBody(fi.Decl.Body)
		sums[fn] = sum
	}
	p.locksums = sums
	return sums
}

// entryInfo is what is known to be held on entry to a function: the
// intersection over every in-module call site. kind degrades to 'R' when
// any caller holds only the read half; recv is kept only when all callers
// agree on the rendered owner expression.
type entryInfo struct {
	kind byte
	recv string
}

// entryHeld computes, for every function, the set of lock classes held on
// entry on *every* in-module call path (greatest fixpoint, starting from
// "unknown" and intersecting call-site held sets until stable). Functions
// with no in-module callers — exported API surface, goroutine roots — get
// the empty set. Call sites inside function literals contribute their
// local held set only (the literal's execution context is unknown).
func (p *Program) entryHeld() map[*types.Func]map[string]entryInfo {
	if p.entryheld != nil {
		return p.entryheld
	}
	sums := p.lockSummaries()

	// Deterministic function order for the fixpoint sweep.
	fns := make([]*types.Func, 0, len(sums))
	for fn := range sums {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	// callersOf[f] lists (caller, held-at-site) pairs.
	type site struct {
		caller *types.Func
		held   []*heldLock
		inLit  bool
	}
	callersOf := make(map[*types.Func][]site)
	for _, fn := range fns {
		for _, c := range sums[fn].calls {
			callersOf[c.callee] = append(callersOf[c.callee], site{caller: fn, held: c.held, inLit: c.inLit})
		}
	}

	// nil map value = "unknown" (⊤). Intersect downward until stable.
	entry := make(map[*types.Func]map[string]entryInfo, len(fns))
	for _, fn := range fns {
		if len(callersOf[fn]) == 0 {
			entry[fn] = map[string]entryInfo{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			sites := callersOf[fn]
			if len(sites) == 0 {
				continue
			}
			var acc map[string]entryInfo // nil = ⊤ so far
			for _, s := range sites {
				atSite := make(map[string]entryInfo)
				for _, h := range s.held {
					atSite[h.class] = entryInfo{kind: h.kind, recv: h.recv}
				}
				if !s.inLit {
					if ce := entry[s.caller]; ce == nil {
						// Caller still unknown: its entry could include
						// anything, so this site constrains nothing yet.
						continue
					} else {
						for cls, info := range ce {
							if _, dup := atSite[cls]; !dup {
								atSite[cls] = entryInfo{kind: info.kind}
							}
						}
					}
				}
				if acc == nil {
					acc = atSite
					continue
				}
				for cls, info := range acc {
					other, ok := atSite[cls]
					if !ok {
						delete(acc, cls)
						continue
					}
					if other.kind == 'R' {
						info.kind = 'R'
					}
					if other.recv != info.recv {
						info.recv = ""
					}
					acc[cls] = info
				}
			}
			if acc == nil {
				continue // every caller still unknown: stay ⊤
			}
			if !entryEqual(entry[fn], acc) {
				entry[fn] = acc
				changed = true
			}
		}
	}
	// Anything still unknown is unreachable from an entry point; treat it
	// as holding nothing (maximally strict).
	for _, fn := range fns {
		if entry[fn] == nil {
			entry[fn] = map[string]entryInfo{}
		}
	}
	p.entryheld = entry
	return entry
}

func entryEqual(a, b map[string]entryInfo) bool {
	if a == nil || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// transAcquires computes, for every function, the set of lock classes it
// (or any transitive module-local callee) may acquire. Sets only grow, so
// a simple iterate-to-fixpoint terminates.
func (p *Program) transAcquires() map[*types.Func]map[string]token.Pos {
	if p.transacq != nil {
		return p.transacq
	}
	sums := p.lockSummaries()
	acq := make(map[*types.Func]map[string]token.Pos, len(sums))
	for fn, sum := range sums {
		m := make(map[string]token.Pos)
		for _, a := range sum.acquires {
			if _, ok := m[a.lock.class]; !ok {
				m[a.lock.class] = a.lock.pos
			}
		}
		acq[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for fn, sum := range sums {
			m := acq[fn]
			for _, c := range sum.calls {
				for cls, pos := range acq[c.callee] {
					if _, ok := m[cls]; !ok {
						m[cls] = pos
						changed = true
					}
				}
			}
		}
	}
	p.transacq = acq
	return acq
}
