package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// poollife enforces pooled-object lifetimes: once a variable is handed
// back to a recycler — sync.Pool.Put, or any module function annotated
// //texlint:freelist — the caller must not touch it again. The recycler
// may hand the object to another goroutine immediately, so a use-after-put
// is an aliasing race: the late reader observes another request's data.
//
// The analysis is per-function and flow-light: within each function body,
// a use of the variable at a position after the put is flagged unless the
// variable is re-bound first (fresh Get, assignment). A *deferred* put is
// the `defer pool.Put(buf)` idiom — body uses are fine because the put
// runs last — but returning the pooled object from the function escapes it
// past its own recycling and is flagged.
func NewPoolLife() *Analyzer {
	return &Analyzer{
		Name: "poollife",
		Doc:  "flag uses of pooled objects after they are returned to a sync.Pool or //texlint:freelist recycler",
		RunProgram: func(prog *Program) []Diagnostic {
			return runPoolLife(prog)
		},
	}
}

// putSite is one recycle point for one variable.
type putSite struct {
	obj      *types.Var
	end      token.Pos // uses after this flag
	pos      token.Pos
	deferred bool
	what     string // "sync.Pool" or the freelist function name
}

func runPoolLife(prog *Program) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: prog.Fset.Position(pos), Check: "poollife",
			Message: fmt.Sprintf(format, args...),
		})
	}

	fns := make([]*types.Func, 0, len(prog.Funcs))
	for fn := range prog.Funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	for _, fn := range fns {
		fi := prog.Funcs[fn]
		checkPoolLife(prog, fi, report)
	}
	return diags
}

func checkPoolLife(prog *Program, fi *FuncInfo, report func(pos token.Pos, format string, args ...any)) {
	info := fi.Pkg.Info

	// Pass 1: collect put sites and variable re-bindings.
	var puts []putSite
	rebinds := make(map[*types.Var][]token.Pos)

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := localVarOf(info, id); obj != nil {
						rebinds[obj] = append(rebinds[obj], id.Pos())
					}
				}
			}
		case *ast.CallExpr:
			obj, what := recycledArg(prog, info, n)
			if obj == nil {
				return true
			}
			puts = append(puts, putSite{
				obj: obj, end: n.End(), pos: n.Pos(),
				deferred: hasDeferParent(fi, n), what: what,
			})
		}
		return true
	})
	if len(puts) == 0 {
		return
	}

	// Pass 2: flag uses after each put. Uses after an immediate put are
	// flagged wherever they appear (the Ident case below, including inside
	// returns). A *deferred* put makes body uses safe, so only escaping
	// the object past its own recycling is flagged: a return result that
	// is the object itself or aliases its storage (v, v.buf, v.buf[i:]).
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				id := aliasSpineRoot(info, res)
				if id == nil {
					continue
				}
				obj := localVarOf(info, id)
				if obj == nil {
					continue
				}
				for _, p := range puts {
					if p.obj == obj && p.deferred {
						report(id.Pos(), "%s is returned, but a deferred %s recycles it when this function exits; the caller would observe a recycled object", id.Name, p.what)
						break
					}
				}
			}
		case *ast.Ident:
			obj := localVarOf(info, n)
			if obj == nil {
				return true
			}
			if isRebindAt(rebinds[obj], n.Pos()) {
				return true // the re-binding itself is not a use
			}
			for _, p := range puts {
				if p.obj != obj || p.deferred {
					continue
				}
				if n.Pos() > p.end && !reboundBetween(rebinds[obj], p.end, n.Pos()) {
					if isSecondPut(prog, fi, n, obj) {
						report(n.Pos(), "%s is recycled twice; the second put hands out an object the pool already owns (double-free aliasing)", n.Name)
					} else {
						report(n.Pos(), "%s is used after being handed back to %s; the recycler may already have reissued it to another goroutine", n.Name, p.what)
					}
					return false
				}
			}
		}
		return true
	})
}

// aliasSpineRoot unwraps a selector/index/slice/deref spine whose result
// can alias the root object's storage and returns the root identifier, or
// nil when the expression does not alias its root (e.g. len(v.buf)).
func aliasSpineRoot(info *PackageInfo, e ast.Expr) *ast.Ident {
	if tv, ok := info.Info.Types[e]; ok && !isPointerish(tv.Type) {
		return nil
	}
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// recycledArg resolves a call to a recycler and returns the recycled local
// variable, if the argument is a plain identifier.
//
// sync.Pool.Put recycles its single argument; a //texlint:freelist module
// function recycles every plain-identifier pointer argument.
func recycledArg(prog *Program, info *PackageInfo, call *ast.CallExpr) (*types.Var, string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, ""
	}
	if isMethodOf(fn, "sync", "Put") && poolRecv(fn) {
		if len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				return localVarOf(info, id), "the sync.Pool"
			}
		}
		return nil, ""
	}
	if fi, ok := prog.Funcs[fn.Origin()]; ok && fi.Ann.Freelist {
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if obj := localVarOf(info, id); obj != nil && isPointerish(obj.Type()) {
					return obj, fn.Name() + " (a //texlint:freelist recycler)"
				}
			}
		}
	}
	return nil, ""
}

// poolRecv reports whether the method's receiver is sync.Pool.
func poolRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && namedTypeIn(sig.Recv().Type(), "sync", "Pool")
}

// localVarOf resolves an identifier to a function-local (non-field,
// non-package) variable.
func localVarOf(info *PackageInfo, id *ast.Ident) *types.Var {
	obj, ok := info.Info.Uses[id].(*types.Var)
	if !ok {
		obj, ok = info.Info.Defs[id].(*types.Var)
	}
	if !ok || obj.IsField() || obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
		return nil
	}
	return obj
}

// isPointerish reports whether a type can alias pool-owned storage.
func isPointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// hasDeferParent reports whether the call is the direct call of a
// DeferStmt.
func hasDeferParent(fi *FuncInfo, call *ast.CallExpr) bool {
	deferred := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok && ds.Call == call {
			deferred = true
			return false
		}
		return !deferred
	})
	return deferred
}

// isSecondPut reports whether the flagged identifier is itself the
// argument of another recycle call (double-put shape).
func isSecondPut(prog *Program, fi *FuncInfo, id *ast.Ident, obj *types.Var) bool {
	second := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || second {
			return !second
		}
		for _, a := range call.Args {
			if aid, ok := ast.Unparen(a).(*ast.Ident); ok && aid == id {
				if o, _ := recycledArg(prog, fi.Pkg.Info, call); o == obj {
					second = true
				}
			}
		}
		return !second
	})
	return second
}

// reboundBetween reports whether the variable was re-bound in (after, before).
func reboundBetween(binds []token.Pos, after, before token.Pos) bool {
	for _, p := range binds {
		if p > after && p < before {
			return true
		}
	}
	return false
}

// isRebindAt reports whether pos is one of the recorded re-binding sites.
func isRebindAt(binds []token.Pos, pos token.Pos) bool {
	for _, p := range binds {
		if p == pos {
			return true
		}
	}
	return false
}
