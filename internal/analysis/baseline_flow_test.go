package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// flowFixtureDiags runs the widened wiretaint analyzer (plus directive
// hygiene, which RunAll always includes) over the wiretaint fixture and
// returns the diagnostics — a stable, known-nonempty finding set for
// exercising the baseline machinery against the new value-flow checks.
func flowFixtureDiags(t *testing.T) []Diagnostic {
	t.Helper()
	pkg, err := fixtureLoad(filepath.Join("testdata", "src", "wiretaint"))
	if err != nil {
		t.Fatal(err)
	}
	a := NewWireTaint()
	widened := &Analyzer{Name: a.Name, Doc: a.Doc, RunProgram: a.RunProgram}
	diags := RunAll([]*Package{pkg}, []*Analyzer{widened})
	if len(diags) == 0 {
		t.Fatal("wiretaint fixture produced no diagnostics")
	}
	return diags
}

// TestBaselineRoundTripWireTaint pins the -write-baseline → -baseline
// round trip for the value-flow checks: a freshly written baseline filters
// every finding it was written from and leaves nothing stale.
func TestBaselineRoundTripWireTaint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks fixture + stdlib; skipped in -short mode")
	}
	diags := flowFixtureDiags(t)
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "texlint.baseline")
	if err := WriteBaseline(path, diags, root); err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if left := bl.Filter(diags, root); len(left) != 0 {
		t.Fatalf("round-tripped baseline left %d findings unfiltered: %v", len(left), left)
	}
	enabled := map[string]bool{"wiretaint": true, "directive": true}
	if stale := bl.Stale(enabled); len(stale) != 0 {
		t.Fatalf("round-tripped baseline has stale entries: %v", stale)
	}
}

// TestBaselineStaleEntryWireTaint pins the shrink-only contract: an entry
// for a wiretaint finding that is no longer produced must surface as stale
// — but only when the wiretaint check actually ran.
func TestBaselineStaleEntryWireTaint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks fixture + stdlib; skipped in -short mode")
	}
	diags := flowFixtureDiags(t)
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "texlint.baseline")
	if err := WriteBaseline(path, diags, root); err != nil {
		t.Fatal(err)
	}
	fixed := "internal/analysis/testdata/src/wiretaint/gone.go: [wiretaint] untrusted length flows into make without a bound check; compare against a limit or use internal/limits"
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(fixed + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	bl, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	bl.Filter(diags, root)
	stale := bl.Stale(map[string]bool{"wiretaint": true, "directive": true})
	if len(stale) != 1 || stale[0] != fixed {
		t.Fatalf("stale = %v, want exactly the fabricated entry", stale)
	}
	// A run without wiretaint must not report the entry: staleness is
	// only meaningful for checks that produced findings this run.
	bl2, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	bl2.Filter(diags, root)
	if stale := bl2.Stale(map[string]bool{"directive": true}); len(stale) != 0 {
		t.Fatalf("wiretaint disabled but its entry reported stale: %v", stale)
	}
}

// TestUntrustedDirectiveHygieneFindings pins that a //texlint:untrusted on
// a non-source declaration comes back as a directive finding (and so can be
// baselined or fixed like any other diagnostic).
func TestUntrustedDirectiveHygieneFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks fixture + stdlib; skipped in -short mode")
	}
	diags := flowFixtureDiags(t)
	var onVar, onNoInputs bool
	for _, d := range diags {
		if d.Check != "directive" {
			continue
		}
		if strings.Contains(d.Message, "texlint:untrusted must be in the doc comment of a function declaration") {
			onVar = true
		}
		if strings.Contains(d.Message, "texlint:untrusted marks inputs as hostile, but this function has no receiver or parameters") {
			onNoInputs = true
		}
	}
	if !onVar {
		t.Error("no directive finding for //texlint:untrusted on a var declaration")
	}
	if !onNoInputs {
		t.Error("no directive finding for //texlint:untrusted on a zero-input function")
	}
}
