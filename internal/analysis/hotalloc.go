package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// hotalloc: every function annotated //texlint:hotpath, and everything it
// transitively calls within the module, must be free of heap allocations.
// This turns the runtime AllocsPerRun guard on engine.Search into a static
// whole-program gate: an allocation introduced three packages down the
// call chain is reported at its source line, with the chain that reaches
// it.
//
// Traversal is pruned at //texlint:coldpath functions (with a mandatory
// reason) and at call sites carrying a //texlint:ignore hotalloc comment —
// the edge-level escape hatch for "this callee allocates by design and the
// hot caller only reaches it in an amortized or setup case".

// NewHotAlloc returns the hot-path allocation check.
func NewHotAlloc() *Analyzer {
	return &Analyzer{
		Name:       "hotalloc",
		Doc:        "functions marked //texlint:hotpath (and their callees) must not heap-allocate",
		RunProgram: runHotAlloc,
	}
}

func runHotAlloc(prog *Program) []Diagnostic {
	// Roots: every annotated hot function, in deterministic order.
	var roots []*types.Func
	for fn, fi := range prog.Funcs {
		if fi.Ann.Hot {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return prog.Fset.Position(roots[i].Pos()).Offset < prog.Fset.Position(roots[j].Pos()).Offset
	})

	// BFS over the module-local call graph, remembering the first parent
	// so findings can name the chain back to a root.
	parent := make(map[*types.Func]*types.Func)
	rootOf := make(map[*types.Func]*types.Func)
	var order []*types.Func
	seen := make(map[*types.Func]bool)
	for _, r := range roots {
		if seen[r] {
			continue
		}
		seen[r] = true
		rootOf[r] = r
		queue := []*types.Func{r}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			order = append(order, fn)
			for _, site := range prog.Callees(fn) {
				if seen[site.Callee] {
					continue
				}
				fi := prog.Funcs[site.Callee]
				if fi == nil || fi.Ann.Cold {
					continue
				}
				if prog.Suppressed("hotalloc", site.Pos) {
					continue // justified edge: traversal stops here
				}
				seen[site.Callee] = true
				parent[site.Callee] = fn
				rootOf[site.Callee] = rootOf[fn]
				queue = append(queue, site.Callee)
			}
		}
	}

	var out []Diagnostic
	for _, fn := range order {
		fi := prog.Funcs[fn]
		chain := chainPath(fn, parent)
		suffix := ""
		if chain != "" {
			suffix = fmt.Sprintf(" (hot path: %s)", chain)
		}
		scanAllocs(fi.Pkg, fi.Decl, prog.InModule, func(pos token.Pos, msg string) {
			out = append(out, Diagnostic{
				Pos:     prog.Fset.Position(pos),
				Check:   "hotalloc",
				Message: msg + suffix,
				Chain:   chain,
			})
		})
	}
	return out
}

// chainPath renders "root -> ... -> fn" along the recorded traversal
// parents, or "" for roots (whose annotation is on the line above).
func chainPath(fn *types.Func, parent map[*types.Func]*types.Func) string {
	if parent[fn] == nil {
		return ""
	}
	var chain []string
	seen := make(map[*types.Func]bool)
	for f := fn; f != nil && !seen[f]; f = parent[f] {
		seen[f] = true
		chain = append(chain, funcDisplayName(f))
	}
	// Reverse: root first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	s := chain[0]
	for _, c := range chain[1:] {
		s += " -> " + c
	}
	return s
}

// funcDisplayName renders pkg.Func or pkg.(Recv).Method.
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return pkg + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
