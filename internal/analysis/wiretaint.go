package analysis

import (
	"fmt"
	"go/token"
)

// wiretaint: every integer or length that originates at an untrusted
// source — a net.Conn, an inbound *http.Request, or a parameter of a
// function annotated //texlint:untrusted (the RESP parser, wire.Decode,
// snapshot.Load) — must pass a recognized sanitizer before it sizes
// memory: a comparison against a constant or len/cap-derived bound, the
// builtin min/max with a constant operand, or an internal/limits helper.
// Unsanitized flows into make, slice bounds, indexing, or loop bounds are
// reported with the source→sink call chain, like hotalloc's hot paths.
//
// The escape hatches are the usual ones: a //texlint:ignore wiretaint on a
// call line stops interprocedural propagation through that edge, and
// reviewed leftovers live in texlint.baseline.

// NewWireTaint returns the untrusted-length taint check.
func NewWireTaint() *Analyzer {
	return &Analyzer{
		Name:       "wiretaint",
		Doc:        "untrusted wire lengths must pass a bound check before sizing memory",
		RunProgram: runWireTaint,
	}
}

func runWireTaint(prog *Program) []Diagnostic {
	fg := buildFlow(prog, "wiretaint")
	var out []Diagnostic
	for _, fn := range fg.sortedFuncs() {
		chain := fg.chainFor(fn)
		suffix := ""
		if chain != "" {
			suffix = fmt.Sprintf(" (untrusted path: %s)", chain)
		}
		fg.analyze(fn, func(pos token.Pos, msg string) {
			out = append(out, Diagnostic{
				Pos:     prog.Fset.Position(pos),
				Check:   "wiretaint",
				Message: msg + suffix,
				Chain:   chain,
			})
		})
	}
	return out
}
