package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// lockorder infers the module-local lock-acquisition graph across function
// boundaries and reports (a) cycles in it — two lock classes each acquired
// while the other is held on some path is a potential deadlock — and
// (b) reacquisition of a mutex already held by the same owner, including
// the RLock→Lock upgrade on an RWMutex, which self-deadlocks as soon as a
// writer queues between the two acquisitions.
//
// Edges come from two sources: a direct acquisition with another class
// held (local walker state plus the entry-held fixpoint for what every
// caller holds), and a call made with a class held into a function that
// transitively acquires another class. Same-class edges via calls are
// dropped — a call chain touching two *instances* of one class (two
// engines, two shards) is ordinary sharding, not self-deadlock — while
// direct same-owner reacquisition is reported separately with exact
// positions.
func NewLockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "detect lock-order cycles and RLock→Lock upgrades across the module-local call graph",
		RunProgram: func(prog *Program) []Diagnostic {
			return runLockOrder(prog)
		},
	}
}

// lockEdge is one ordered pair in the acquisition graph with a witness.
type lockEdge struct {
	from, to string
	pos      token.Pos // where `to` is acquired (or the call that acquires it)
	viaCall  bool
}

func runLockOrder(prog *Program) []Diagnostic {
	sums := prog.lockSummaries()
	entry := prog.entryHeld()
	trans := prog.transAcquires()

	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: prog.Fset.Position(pos), Check: "lockorder",
			Message: fmt.Sprintf(format, args...),
		})
	}

	// Deterministic function order.
	fns := make([]*types.Func, 0, len(sums))
	for fn := range sums {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	edges := make(map[string]map[string]lockEdge)
	addEdge := func(from, to string, pos token.Pos, viaCall bool) {
		if from == to {
			return
		}
		m := edges[from]
		if m == nil {
			m = make(map[string]lockEdge)
			edges[from] = m
		}
		if old, ok := m[to]; !ok || pos < old.pos {
			m[to] = lockEdge{from: from, to: to, pos: pos, viaCall: viaCall}
		}
	}

	for _, fn := range fns {
		sum := sums[fn]
		ent := entry[fn]
		for _, a := range sum.acquires {
			// Locks held at the acquisition: local walker state, plus
			// whatever every caller provably holds (unless we are inside a
			// function literal, whose execution context is unknown).
			heldClasses := make(map[string]entryInfo)
			if !a.inLit {
				for cls, info := range ent {
					heldClasses[cls] = info
				}
			}
			for _, h := range a.held {
				heldClasses[h.class] = entryInfo{kind: h.kind, recv: h.recv}
			}
			for cls, info := range heldClasses {
				if cls != a.lock.class {
					addEdge(cls, a.lock.class, a.lock.pos, false)
					continue
				}
				// Same class already held: only a real self-deadlock when
				// it is provably the same instance (matching non-empty
				// rendered owner, or a package-level mutex with no owner
				// expression at all).
				sameInstance := info.recv == a.lock.recv &&
					(info.recv != "" || !hasOwnerExpr(cls))
				if !sameInstance {
					continue
				}
				if info.kind == 'R' && a.lock.kind == 'W' {
					report(a.lock.pos, "RLock→Lock upgrade on %s: Lock while the read half is already held self-deadlocks once a writer queues between them; release the RLock first (or redesign the critical section)", lockClassDisplay(cls))
				} else if a.lock.kind == 'W' || info.kind == 'W' {
					report(a.lock.pos, "%s is already held here; reacquiring it self-deadlocks (Go mutexes are not reentrant)", lockClassDisplay(cls))
				}
				// R-after-R on an RWMutex is legal (shared readers) and
				// not reported.
			}
		}
		for _, c := range sum.calls {
			if len(c.held) == 0 && (c.inLit || len(ent) == 0) {
				continue
			}
			heldClasses := make(map[string]bool)
			if !c.inLit {
				for cls := range ent {
					heldClasses[cls] = true
				}
			}
			for _, h := range c.held {
				heldClasses[h.class] = true
			}
			for acquired := range trans[c.callee] {
				for cls := range heldClasses {
					addEdge(cls, acquired, c.pos, true)
				}
			}
		}
	}

	diags = append(diags, reportLockCycles(prog, edges)...)
	return diags
}

// hasOwnerExpr reports whether a class key names a struct field mutex
// (which has per-instance owners) as opposed to a package-level var.
func hasOwnerExpr(class string) bool {
	// Field classes are pkgpath.Type.field — two dots after the last
	// slash; package vars are pkgpath.name — one dot.
	short := lockClassDisplay(class)
	dots := 0
	for i := 0; i < len(short); i++ {
		if short[i] == '.' {
			dots++
		}
	}
	return dots >= 2
}

// reportLockCycles finds strongly connected components of the class graph
// and reports each cycle once, at the lexically first witness edge.
func reportLockCycles(prog *Program, edges map[string]map[string]lockEdge) []Diagnostic {
	nodes := make([]string, 0, len(edges))
	seen := make(map[string]bool)
	for from, m := range edges {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range m {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	// Tarjan SCC, iterative enough for our graph sizes via recursion.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var counter int
	var sccs [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(edges[v]))
		for to := range edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sccs = append(sccs, comp)
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	var diags []Diagnostic
	for _, comp := range sccs {
		sort.Strings(comp)
		// Pick the earliest witness edge inside the component.
		var witness lockEdge
		var havePos bool
		for _, from := range comp {
			inComp := make(map[string]bool, len(comp))
			for _, c := range comp {
				inComp[c] = true
			}
			for to, e := range edges[from] {
				if inComp[to] && (!havePos || e.pos < witness.pos) {
					witness, havePos = e, true
				}
			}
		}
		names := make([]string, len(comp))
		for i, c := range comp {
			names[i] = lockClassDisplay(c)
		}
		pos := token.NoPos
		if havePos {
			pos = witness.pos
		}
		diags = append(diags, Diagnostic{
			Pos: prog.Fset.Position(pos), Check: "lockorder",
			Message: fmt.Sprintf("lock-order cycle between %s: each is acquired while the other is held on some path; pick one global order and stick to it", joinAnd(names)),
		})
	}
	return diags
}

// joinAnd renders ["a","b","c"] as "a, b and c".
func joinAnd(names []string) string {
	switch len(names) {
	case 0:
		return ""
	case 1:
		return names[0]
	case 2:
		return names[0] + " and " + names[1]
	}
	out := ""
	for i, n := range names[:len(names)-1] {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out + " and " + names[len(names)-1]
}
