package analysis

import "testing"

// Each analyzer is exercised against a fixture package holding a file of
// violations annotated with `// want "regexp"` comments and a clean file
// (including a //texlint:ignore use) that must produce no diagnostics.

func TestDeterminismFixture(t *testing.T) {
	for _, err := range CheckFixture(NewDeterminism(nil), "determinism") {
		t.Error(err)
	}
}

func TestLockCheckFixture(t *testing.T) {
	for _, err := range CheckFixture(NewLockCheck(), "lockcheck") {
		t.Error(err)
	}
}

func TestErrCheckFixture(t *testing.T) {
	for _, err := range CheckFixture(NewErrCheck(), "errcheck") {
		t.Error(err)
	}
}

func TestStreamPairFixture(t *testing.T) {
	for _, err := range CheckFixture(NewStreamPair(), "streampair") {
		t.Error(err)
	}
}

func TestFP16Fixture(t *testing.T) {
	for _, err := range CheckFixture(NewFP16(), "fp16") {
		t.Error(err)
	}
}

func TestHotAllocFixture(t *testing.T) {
	for _, err := range CheckFixture(NewHotAlloc(), "hotalloc") {
		t.Error(err)
	}
}

// The fixture variant of clockdomain has no package-scope roots (nil
// scope): roots come only from //texlint:clockdomain annotations and
// gpusim payload closures, exactly as FixtureAnalyzers wires it.
func TestClockDomainFixture(t *testing.T) {
	for _, err := range CheckFixture(NewClockDomain(nil), "clockdomain") {
		t.Error(err)
	}
}

func TestAliasRetFixture(t *testing.T) {
	for _, err := range CheckFixture(NewAliasRet(), "aliasret") {
		t.Error(err)
	}
}

func TestAtomicMixFixture(t *testing.T) {
	for _, err := range CheckFixture(NewAtomicMix(), "atomicmix") {
		t.Error(err)
	}
}

func TestLockOrderFixture(t *testing.T) {
	for _, err := range CheckFixture(NewLockOrder(), "lockorder") {
		t.Error(err)
	}
}

func TestGuardedByFixture(t *testing.T) {
	for _, err := range CheckFixture(NewGuardedBy(), "guardedby") {
		t.Error(err)
	}
}

func TestPoolLifeFixture(t *testing.T) {
	for _, err := range CheckFixture(NewPoolLife(), "poollife") {
		t.Error(err)
	}
}

func TestGoLeakFixture(t *testing.T) {
	for _, err := range CheckFixture(NewGoLeak(), "goleak") {
		t.Error(err)
	}
}

func TestWireTaintFixture(t *testing.T) {
	for _, err := range CheckFixture(NewWireTaint(), "wiretaint") {
		t.Error(err)
	}
}

func TestMapOrderFixture(t *testing.T) {
	for _, err := range CheckFixture(NewMapOrder(), "maporder") {
		t.Error(err)
	}
}

// TestDefaultAnalyzersScope pins the production scoping: the determinism
// check applies to the simulator packages and not to e.g. cmd/ tools,
// while fp16 skips internal/half itself. The flow-aware and
// concurrency-contract checks must all be present so the directive parser
// knows their names.
func TestDefaultAnalyzersScope(t *testing.T) {
	byName := map[string]*Analyzer{}
	for _, a := range DefaultAnalyzers() {
		byName[a.Name] = a
	}
	if len(byName) != 15 {
		t.Fatalf("expected 15 analyzers, got %d", len(byName))
	}
	for _, name := range []string{"hotalloc", "clockdomain", "aliasret", "atomicmix",
		"lockorder", "guardedby", "poollife", "goleak", "wiretaint", "maporder"} {
		a := byName[name]
		if a == nil {
			t.Fatalf("missing analyzer %q", name)
		}
		if a.RunProgram == nil {
			t.Errorf("%s must be flow-aware (RunProgram set)", name)
		}
	}
	det := byName["determinism"]
	if !det.Applies("texid/internal/gpusim") {
		t.Error("determinism must apply to internal/gpusim")
	}
	if det.Applies("texid/cmd/texgen") {
		t.Error("determinism must not apply to cmd/texgen")
	}
	fp := byName["fp16"]
	if fp.Applies("texid/internal/half") {
		t.Error("fp16 must not apply to internal/half")
	}
	if !fp.Applies("texid/internal/blas") {
		t.Error("fp16 must apply to internal/blas")
	}
}
