package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// maporder: the byte-exact outputs the system promises — wire encodings,
// /metrics and /v1/stats bodies, merged search reports — must not be shaped
// by Go's randomized map iteration order or by which select case happened
// to be ready first. Roots are the wire encoders, metrics exposition, and
// every function annotated //texlint:deterministic; the check walks their
// transitive module-local callees (like hotalloc walks hot paths) and flags
// two constructs inside the closure:
//
//   - a range over a map that builds ordered output (append, prints,
//     writer calls, string concatenation) with no subsequent sort in the
//     same function — the collect-then-sort idiom is the fix;
//   - a select with two or more communication cases, whose winner is
//     chosen at random when several are ready.
//
// A //texlint:ignore maporder on a call line prunes traversal through that
// edge (for paths whose ordering is reviewed as immaterial).

// NewMapOrder returns the output-determinism check.
func NewMapOrder() *Analyzer {
	return &Analyzer{
		Name:       "maporder",
		Doc:        "deterministic-output call closures must sort map iterations and avoid multi-way selects",
		RunProgram: runMapOrder,
	}
}

// intrinsicDeterministicRoot reports whether fn promises deterministic
// bytes by convention: wire encoders and the metrics text exposition.
func intrinsicDeterministicRoot(fn *types.Func, fi *FuncInfo) bool {
	if hasSuffixPath(fi.Pkg.Path, "internal/wire") && strings.HasPrefix(fn.Name(), "Encode") {
		return true
	}
	return isMethodOf(fn, "internal/metrics", "Expose")
}

func runMapOrder(prog *Program) []Diagnostic {
	var roots []*types.Func
	for fn, fi := range prog.Funcs {
		if fi.Ann.Deterministic || intrinsicDeterministicRoot(fn, fi) {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return prog.Fset.Position(roots[i].Pos()).Offset < prog.Fset.Position(roots[j].Pos()).Offset
	})

	// BFS over the module-local call graph, exactly like hotalloc: first
	// parent wins, ignore directives on call lines prune edges.
	parent := make(map[*types.Func]*types.Func)
	var order []*types.Func
	seen := make(map[*types.Func]bool)
	for _, r := range roots {
		if seen[r] {
			continue
		}
		seen[r] = true
		queue := []*types.Func{r}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			order = append(order, fn)
			for _, site := range prog.Callees(fn) {
				if seen[site.Callee] || prog.Funcs[site.Callee] == nil {
					continue
				}
				if prog.Suppressed("maporder", site.Pos) {
					continue // reviewed edge: ordering immaterial past here
				}
				seen[site.Callee] = true
				parent[site.Callee] = fn
				queue = append(queue, site.Callee)
			}
		}
	}

	var out []Diagnostic
	for _, fn := range order {
		fi := prog.Funcs[fn]
		pass := &Pass{Fset: prog.Fset, Files: fi.Pkg.Files, Pkg: fi.Pkg.Info, PkgPath: fi.Pkg.Path}
		chain := chainPath(fn, parent)
		suffix := ""
		if chain != "" {
			suffix = fmt.Sprintf(" (deterministic path: %s)", chain)
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.Pkg.Info.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if !buildsOrderedOutput(pass, n.Body) || sortedAfter(pass, fi.Decl, n.End()) {
					return true
				}
				out = append(out, Diagnostic{
					Pos:     prog.Fset.Position(n.Pos()),
					Check:   "maporder",
					Message: "map iteration order is random but this loop feeds deterministic output; collect the keys and sort first" + suffix,
					Chain:   chain,
				})
			case *ast.SelectStmt:
				comms := 0
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						comms++
					}
				}
				if comms >= 2 {
					out = append(out, Diagnostic{
						Pos:     prog.Fset.Position(n.Pos()),
						Check:   "maporder",
						Message: "select picks a random ready case; deterministic output must not depend on channel arrival order" + suffix,
						Chain:   chain,
					})
				}
			}
			return true
		})
	}
	return out
}
