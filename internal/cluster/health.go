package cluster

import "sync"

// HealthState is one worker's position in the coordinator's failure
// detector: healthy → suspect → dead → probing → healthy. Transitions are
// driven purely by call outcomes (never by wall-clock timers), so a fault
// schedule replays the same state trajectory on every run.
type HealthState int

const (
	// Healthy workers receive full traffic.
	Healthy HealthState = iota
	// Suspect workers have failed recently but are still routed to; the
	// state exists so operators (and tests) can see trouble building
	// before the detector declares death.
	Suspect
	// Dead workers are routed around: searches skip them (degrading to
	// partial results) and enrollment avoids them.
	Dead
	// Probing workers are dead workers being offered one trial call; a
	// success resurrects them, a failure sends them back to Dead.
	Probing
)

// String names the state for stats and logs.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Probing:
		return "probing"
	}
	return "unknown"
}

// HealthPolicy tunes the per-worker failure detector. The zero value is
// replaced by defaults (see withDefaults).
type HealthPolicy struct {
	// SuspectAfter consecutive call failures mark a worker Suspect.
	SuspectAfter int
	// DeadAfter consecutive call failures mark a worker Dead. Must be
	// >= SuspectAfter.
	DeadAfter int
	// ProbeEvery is the number of skipped calls after which a Dead worker
	// is offered one probe (counted in calls, not wall time, to preserve
	// determinism).
	ProbeEvery int
}

// withDefaults fills zero fields with the production defaults: one failure
// raises suspicion, three kill, and every fourth skipped call probes.
func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.SuspectAfter <= 0 {
		p.SuspectAfter = 1
	}
	if p.DeadAfter <= 0 {
		p.DeadAfter = 3
	}
	if p.DeadAfter < p.SuspectAfter {
		p.DeadAfter = p.SuspectAfter
	}
	if p.ProbeEvery <= 0 {
		p.ProbeEvery = 4
	}
	return p
}

// healthFSM is one worker's failure detector. Its own mutex (not the
// coordinator's) keeps transitions atomic while scatter-gather calls run
// concurrently.
type healthFSM struct {
	pol HealthPolicy

	mu sync.Mutex
	//texlint:guards mu
	state HealthState
	//texlint:guards mu
	fails int // consecutive failures
	//texlint:guards mu
	skipped int // calls skipped while Dead, counts toward the next probe
}

func newHealthFSM(pol HealthPolicy) *healthFSM {
	return &healthFSM{pol: pol.withDefaults()}
}

// allow reports whether the next call should be routed to the worker.
// Dead workers decline, except that every ProbeEvery-th declined call is
// converted into a probe (state Probing, call allowed).
//
//texlint:hotpath
func (h *healthFSM) allow() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != Dead {
		return true
	}
	h.skipped++
	if h.skipped >= h.pol.ProbeEvery {
		h.skipped = 0
		h.state = Probing
		return true
	}
	return false
}

// onSuccess records a successful call: any state returns to Healthy.
//
//texlint:hotpath
func (h *healthFSM) onSuccess() {
	h.mu.Lock()
	h.state = Healthy
	h.fails = 0
	h.mu.Unlock()
}

// onFailure records a failed call (after retries were exhausted for that
// attempt) and advances the detector.
//
//texlint:hotpath
func (h *healthFSM) onFailure() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == Probing {
		// The probe failed: back to Dead, restart the skip counter.
		h.state = Dead
		h.skipped = 0
		return
	}
	h.fails++
	switch {
	case h.fails >= h.pol.DeadAfter:
		h.state = Dead
		h.skipped = 0
	case h.fails >= h.pol.SuspectAfter:
		h.state = Suspect
	}
}

// State returns the current state.
func (h *healthFSM) State() HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}
