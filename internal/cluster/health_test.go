package cluster

import "testing"

func TestHealthFSMTransitions(t *testing.T) {
	h := newHealthFSM(HealthPolicy{SuspectAfter: 1, DeadAfter: 3, ProbeEvery: 2})

	if !h.allow() || h.State() != Healthy {
		t.Fatal("fresh worker must be healthy and routable")
	}
	h.onFailure()
	if h.State() != Suspect {
		t.Fatalf("after 1 failure: %v, want suspect", h.State())
	}
	if !h.allow() {
		t.Fatal("suspect workers still receive traffic")
	}
	h.onFailure()
	h.onFailure()
	if h.State() != Dead {
		t.Fatalf("after 3 failures: %v, want dead", h.State())
	}

	// Dead workers decline calls until the probe interval elapses.
	if h.allow() {
		t.Fatal("dead worker accepted a call before the probe interval")
	}
	if !h.allow() {
		t.Fatal("second skipped call should convert to a probe (ProbeEvery=2)")
	}
	if h.State() != Probing {
		t.Fatalf("probe state = %v", h.State())
	}
	// A failed probe goes straight back to Dead.
	h.onFailure()
	if h.State() != Dead {
		t.Fatalf("after failed probe: %v, want dead", h.State())
	}
	// Next probe succeeds: full resurrection.
	h.allow()
	if !h.allow() || h.State() != Probing {
		t.Fatalf("expected another probe, state %v", h.State())
	}
	h.onSuccess()
	if h.State() != Healthy {
		t.Fatalf("after successful probe: %v, want healthy", h.State())
	}
	// Consecutive-failure counter reset by the success.
	h.onFailure()
	if h.State() != Suspect {
		t.Fatalf("failure count survived resurrection: %v", h.State())
	}
}

func TestHealthPolicyDefaults(t *testing.T) {
	p := HealthPolicy{}.withDefaults()
	if p.SuspectAfter != 1 || p.DeadAfter != 3 || p.ProbeEvery != 4 {
		t.Fatalf("defaults = %+v", p)
	}
	// DeadAfter is clamped to at least SuspectAfter.
	p = HealthPolicy{SuspectAfter: 5, DeadAfter: 2}.withDefaults()
	if p.DeadAfter != 5 {
		t.Fatalf("DeadAfter not clamped: %+v", p)
	}
}
