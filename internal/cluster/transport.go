package cluster

import (
	"errors"
	"fmt"

	"texid/internal/engine"
	"texid/internal/faultsim"
)

// Coordinator→worker operation names. The fault injector keys per-call
// decisions on these, so they are part of the chaos-test contract.
const (
	opSearch      = "search"
	opSearchBatch = "searchbatch"
	opAdd         = "add"
	opCompact     = "compact"
)

// errShardDown is returned for calls the coordinator refuses to route
// because the target worker's failure detector says Dead.
var errShardDown = errors.New("cluster: shard marked dead")

// CallPolicy tunes per-call deadlines, retries, backoff, and hedging for
// coordinator→worker calls. All durations are *virtual* microseconds on
// the workers' simulated clocks — the policy never reads wall time, which
// is what keeps chaos runs bit-reproducible. The zero value is replaced by
// DefaultCallPolicy.
type CallPolicy struct {
	// DeadlineUS is the per-attempt deadline. A worker that has not
	// answered within it (injected hang, latency spike, lost reply) is
	// treated as failed for that attempt. <= 0 selects the default.
	DeadlineUS float64
	// MaxAttempts bounds tries per logical call (1 = no retries).
	MaxAttempts int
	// BackoffUS is the base backoff charged before the first retry; it
	// doubles per attempt and carries deterministic jitter in [0.5, 1.5)
	// (faultsim.Backoff).
	BackoffUS float64
	// HedgeAfterUS, when > 0, issues a duplicate ("hedged") request once
	// the primary has been outstanding that long, and takes whichever
	// answer lands first — the classic tail-latency cut for stragglers.
	// 0 disables hedging.
	HedgeAfterUS float64
	// Seed keys the deterministic backoff jitter.
	Seed int64
}

// DefaultCallPolicy is the production serving policy: a generous 30
// virtual seconds per attempt (an order of magnitude above the largest
// paper-scale shard search), three attempts, 5 ms base backoff, hedging
// off.
func DefaultCallPolicy() CallPolicy {
	return CallPolicy{DeadlineUS: 30e6, MaxAttempts: 3, BackoffUS: 5000, Seed: 1}
}

// withDefaults fills zero fields from DefaultCallPolicy.
func (p CallPolicy) withDefaults() CallPolicy {
	def := DefaultCallPolicy()
	if p.DeadlineUS <= 0 {
		p.DeadlineUS = def.DeadlineUS
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BackoffUS <= 0 {
		p.BackoffUS = def.BackoffUS
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	return p
}

// worker is the coordinator's handle on one shard: the engine, the fault
// transport (nil peer = fault-free direct calls), and the failure
// detector.
type worker struct {
	idx    int
	name   string
	eng    *engine.Engine
	peer   *faultsim.Peer // nil: direct, no fault seam
	health *healthFSM
}

// now reads the worker's virtual clock (the partition-window key).
func (w *worker) now() float64 { return w.eng.Device().Synchronize() }

// do routes one logical call to w under the cluster's call policy: health
// gating, per-attempt deadline, bounded retries with deterministic
// jittered backoff, and hedged requests for stragglers. invoke runs the
// real worker call and returns the virtual microseconds it consumed. The
// returned latency is coordinator-observed: injected latency, backoff
// waits, and billed deadlines all count.
//
// Genuine worker errors (as opposed to injected transport faults) are
// returned immediately without retrying and without charging the failure
// detector — a malformed query is not evidence the shard is unhealthy.
func (c *Cluster) do(w *worker, op string, invoke func() (float64, error)) (float64, error) {
	if !w.health.allow() {
		return 0, errShardDown
	}
	if w.peer == nil {
		// Fault-free serving: a direct in-process call that cannot time
		// out or be lost. Bit-identical to the pre-fault-layer path.
		el, err := invoke()
		if err != nil {
			return el, err
		}
		w.health.onSuccess()
		return el, nil
	}

	pol := c.call
	var total float64
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if attempt > 1 {
			total += faultsim.Backoff(pol.Seed, w.name, attempt, pol.BackoffUS)
			c.mWorkerRetries.Inc()
		}
		el, err := c.attempt(w, op, invoke)
		total += el
		if err == nil {
			return total, nil
		}
		if !faultsim.Injected(err) {
			return total, err
		}
		lastErr = err
		if errors.Is(err, faultsim.ErrPeerDown) {
			// Partitioned or killed: the peer's virtual clock cannot
			// advance while we spin, so retrying now cannot succeed.
			break
		}
	}
	return total, fmt.Errorf("cluster: %s on %s failed after retries: %w", op, w.name, lastErr)
}

// attempt makes one transport attempt, hedging stragglers when the policy
// asks for it, and feeds the outcome to the worker's failure detector.
func (c *Cluster) attempt(w *worker, op string, invoke func() (float64, error)) (float64, error) {
	pol := c.call
	el, err := w.peer.Do(op, pol.DeadlineUS, w.now(), invoke)
	if err == nil {
		if pol.HedgeAfterUS > 0 && el > pol.HedgeAfterUS {
			// The primary straggled past the hedge threshold: a duplicate
			// issued at that point may have answered first.
			c.mWorkerHedges.Inc()
			if hel, herr := w.peer.Do(op, pol.DeadlineUS, w.now(), invoke); herr == nil && pol.HedgeAfterUS+hel < el {
				el = pol.HedgeAfterUS + hel
			}
		}
		w.health.onSuccess()
		return el, nil
	}
	if !faultsim.Injected(err) {
		return el, err
	}
	c.mWorkerFailures.Inc()
	w.health.onFailure()
	// Timeout-shaped failures get one hedge before the attempt is charged:
	// the duplicate went out at the hedge threshold, well inside the
	// primary's deadline window.
	if pol.HedgeAfterUS > 0 && (errors.Is(err, faultsim.ErrDeadline) || errors.Is(err, faultsim.ErrReplyLost)) {
		c.mWorkerHedges.Inc()
		hel, herr := w.peer.Do(op, pol.DeadlineUS, w.now(), invoke)
		if herr == nil {
			w.health.onSuccess()
			if hedged := pol.HedgeAfterUS + hel; hedged < el {
				el = hedged
			}
			return el, nil
		}
		if faultsim.Injected(herr) {
			c.mWorkerFailures.Inc()
			w.health.onFailure()
		}
	}
	return el, err
}

// pickWorker returns the next enrollment target: round-robin over the
// workers, skipping any the failure detector has declared Dead. With every
// worker healthy this is the exact pre-fault-layer round-robin. The caller
// must hold c.mu.
func (c *Cluster) pickWorkerLocked() (int, error) {
	for tries := 0; tries < len(c.workers); tries++ {
		cand := c.next % len(c.workers)
		c.next++
		if c.workers[cand].health.State() != Dead {
			return cand, nil
		}
	}
	return -1, fmt.Errorf("cluster: all %d shards unavailable", len(c.workers))
}

// Health returns every worker's failure-detector state, indexed by worker.
func (c *Cluster) Health() []HealthState {
	out := make([]HealthState, len(c.workers))
	for i, w := range c.workers {
		out[i] = w.health.State()
	}
	return out
}
