package cluster

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"texid/internal/blas"
	"texid/internal/sift"
)

// TestSearchBatchScatterAllocs pins the allocation shape of the
// scatter-gather path BENCH_SOAK gates: a warm 4-query SearchBatch
// across 3 shards (goroutine fan-out, per-shard batch reports, merged
// per-query reports). The coordinator path is deliberately outside the
// zero-alloc contract (see serve.go), but its per-call allocation count
// is still a code-shape invariant — growth here means a new allocation
// per query or per shard crept into the merge, which a long soak turns
// into GC pressure.
func TestSearchBatchScatterAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := smallCluster(t, 3)
	refs := make([]*blas.Matrix, 6)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		if err := c.Add(i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	batch := []*blas.Matrix{
		queryFor(rng, refs[0], 32), queryFor(rng, refs[1], 32),
		queryFor(rng, refs[2], 32), queryFor(rng, refs[3], 32),
	}
	kps := make([][]sift.Keypoint, len(batch))

	if _, err := c.SearchBatch(batch, kps); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := c.SearchBatch(batch, kps); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~560 on the current implementation (3 shard goroutines ×
	// per-shard engine batch state + 4 merged reports with ranked lists).
	// The bound leaves room for noise, not for a per-query regression.
	if allocs > 900 {
		t.Fatalf("SearchBatch scatter does %.0f allocs/call, drifted above the pinned bound", allocs)
	}
}

// TestSearchBatchAllocsUnderChurn interleaves enrollment churn with the
// scatter path inside the measured window — the soak's mixed workload as
// a single-threaded, exactly-pinnable unit.
func TestSearchBatchAllocsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	c := smallCluster(t, 3)
	refs := make([]*blas.Matrix, 6)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		if err := c.Add(i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	fresh := unitFeatures(rng, 16, 24)
	batch := []*blas.Matrix{queryFor(rng, refs[0], 32), queryFor(rng, refs[1], 32)}
	kps := make([][]sift.Keypoint, len(batch))

	if _, err := c.SearchBatch(batch, kps); err != nil {
		t.Fatal(err)
	}
	if err := c.Update(2, fresh, nil); err != nil {
		t.Fatal(err)
	}

	i := 0
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := c.SearchBatch(batch, kps); err != nil {
			t.Fatal(err)
		}
		if err := c.Update(2+(i%4), fresh, nil); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// One 2-query scatter (~350) plus one Update (pending append +
	// occasional seal + tombstone bookkeeping).
	if allocs > 900 {
		t.Fatalf("scatter+churn unit does %.0f allocs, drifted above the pinned bound", allocs)
	}
}

// TestSearchBatchConcurrentChurnBounded runs reads and enrollment churn
// concurrently (the soak's actual interleaving, which AllocsPerRun
// cannot pin exactly) and bounds the mean allocations per operation
// process-wide.
func TestSearchBatchConcurrentChurnBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := smallCluster(t, 3)
	refs := make([]*blas.Matrix, 6)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		if err := c.Add(i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	fresh := unitFeatures(rng, 16, 24)
	batch := []*blas.Matrix{queryFor(rng, refs[0], 32), queryFor(rng, refs[1], 32)}
	kps := make([][]sift.Keypoint, len(batch))

	run := func(ops int) {
		var wg sync.WaitGroup
		for i := 0; i < ops; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if i%8 == 7 {
					if err := c.Update(i%6, fresh, nil); err != nil {
						t.Errorf("update: %v", err)
					}
					return
				}
				if _, err := c.SearchBatch(batch, kps); err != nil {
					t.Errorf("batch: %v", err)
				}
			}(i)
		}
		wg.Wait()
	}
	run(32) // warm

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	const ops = 256
	run(ops)
	runtime.ReadMemStats(&m1)
	perOp := float64(m1.Mallocs-m0.Mallocs) / ops
	// Each read op is a full 2-query scatter (~350 single-threaded); the
	// bound flags a leak per op without tripping on scheduler noise.
	if perOp > 1500 {
		t.Fatalf("concurrent scatter+churn averages %.0f allocs/op, drifted above the pinned bound", perOp)
	}
}
