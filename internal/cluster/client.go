package cluster

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"texid/internal/wire"
)

// DefaultClientTimeout bounds every REST call unless WithTimeout overrides
// it. Generous enough for large batch searches, small enough that a hung
// coordinator surfaces as an error instead of wedging the caller forever.
const DefaultClientTimeout = 30 * time.Second

// Client is a Go client for the cluster's REST API (used by the texsearch
// CLI and usable by any downstream service).
type Client struct {
	base string
	http *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithTimeout sets the per-request timeout (covering connect, request, and
// the full response body). 0 disables the bound entirely.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.http.Timeout = d }
}

// WithHTTPClient swaps the underlying *http.Client (custom transports,
// proxies, instrumentation). Later WithTimeout options apply to it.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// NewClient targets a coordinator at baseURL (e.g. "http://127.0.0.1:8080").
// Requests time out after DefaultClientTimeout unless overridden with
// WithTimeout.
func NewClient(baseURL string, opts ...Option) *Client {
	c := &Client{base: baseURL, http: &http.Client{Timeout: DefaultClientTimeout}}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) doJSON(method, path string, body any, out any) error {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e) // best-effort detail; resp.Status carries the verdict
		return fmt.Errorf("cluster: %s %s: %s (%s)", method, path, resp.Status, e.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Health checks the coordinator's liveness endpoint.
func (c *Client) Health() error {
	var out map[string]string
	if err := c.doJSON(http.MethodGet, "/healthz", nil, &out); err != nil {
		return err
	}
	if out["status"] != "ok" {
		return fmt.Errorf("cluster: unhealthy: %v", out)
	}
	return nil
}

// Stats fetches cluster statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.doJSON(http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Add enrolls a feature record.
func (c *Client) Add(rec *wire.FeatureRecord) error {
	body := textureRequest{
		ID:        int(rec.ID),
		RecordB64: base64.StdEncoding.EncodeToString(wire.Encode(rec)),
	}
	return c.doJSON(http.MethodPost, "/v1/textures", body, nil)
}

// Delete removes a texture by id.
func (c *Client) Delete(id int) error {
	return c.doJSON(http.MethodDelete, fmt.Sprintf("/v1/textures/%d", id), nil, nil)
}

// Update replaces a texture's features.
func (c *Client) Update(id int, rec *wire.FeatureRecord) error {
	body := textureRequest{RecordB64: base64.StdEncoding.EncodeToString(wire.Encode(rec))}
	return c.doJSON(http.MethodPut, fmt.Sprintf("/v1/textures/%d", id), body, nil)
}

// Search runs a one-to-many search with the record's features.
func (c *Client) Search(rec *wire.FeatureRecord) (SearchResponse, error) {
	body := textureRequest{RecordB64: base64.StdEncoding.EncodeToString(wire.Encode(rec))}
	var out SearchResponse
	err := c.doJSON(http.MethodPost, "/v1/search", body, &out)
	return out, err
}

// SearchBatch runs several searches in one request; the server matches the
// whole batch with multi-query GEMMs (higher throughput, batched latency).
func (c *Client) SearchBatch(recs []*wire.FeatureRecord) ([]SearchResponse, error) {
	body := batchSearchRequest{}
	for _, rec := range recs {
		body.RecordsB64 = append(body.RecordsB64, base64.StdEncoding.EncodeToString(wire.Encode(rec)))
	}
	var out struct {
		Results []SearchResponse `json:"results"`
	}
	err := c.doJSON(http.MethodPost, "/v1/search/batch", body, &out)
	return out.Results, err
}

// Compact reclaims tombstoned reference slots on every shard.
func (c *Client) Compact() (int, error) {
	var out struct {
		Reclaimed int `json:"reclaimed"`
	}
	err := c.doJSON(http.MethodPost, "/v1/compact", nil, &out)
	return out.Reclaimed, err
}
