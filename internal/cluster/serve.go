package cluster

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/knn"
	"texid/internal/serve"
	"texid/internal/sift"
)

// This file is the coordinator-side micro-batching admission layer:
// concurrent /v1/search requests (or SearchCoalesced callers) are coalesced
// into single SearchBatch scatter passes, so every worker matches the whole
// coalesced batch with one multi-query GEMM per reference batch instead of
// one fan-out per request. Results are demultiplexed per query and are
// bitwise identical to issuing each Search alone; only the latency
// attribution differs (a coalesced query's ElapsedUS is its batch's
// completion time).

// coalescedResult pairs a per-query report with a per-query error so one
// malformed query in a coalesced batch fails alone instead of poisoning the
// queries it happened to share a scatter pass with.
type coalescedResult struct {
	rep *Report
	err error
}

// newBatcher builds the admission layer over the cluster's scatter-gather
// paths. Coalesced execution requires the RootSIFT algorithm (the only
// batchable 2-NN variant); other algorithms — and mixed phantom/real
// batches — transparently fall back to per-query fan-out while keeping the
// same admission accounting.
func (c *Cluster) newBatcher(opts serve.Options) *serve.Batcher[serve.Query, coalescedResult] {
	batchable := c.cfg.Engine.Algorithm == knn.RootSIFT
	dim := c.cfg.Engine.Dim

	// Achieved batch sizes feed the serving histogram; chain any
	// caller-supplied hook behind it.
	observe := opts.Observe
	opts.Observe = func(n int) {
		c.mBatchSize.Observe(float64(n))
		if observe != nil {
			observe(n)
		}
	}

	// Leader-only scatter buffers (the Runner is called by exactly one
	// goroutine at a time), reused across batches.
	var feats []*blas.Matrix
	var kps [][]sift.Keypoint

	run := func(qs []serve.Query) ([]coalescedResult, error) {
		results := make([]coalescedResult, len(qs))

		// Validate up front and decide the execution shape: SearchBatch
		// needs uniform queries (all real with the engine's Dim, or all
		// phantom).
		phantoms, invalid := 0, false
		for i, q := range qs {
			if q.Feats == nil {
				phantoms++
			} else if q.Feats.Rows != dim {
				results[i].err = fmt.Errorf("cluster: query dim %d, want %d", q.Feats.Rows, dim)
				invalid = true
			}
		}
		uniform := phantoms == 0 || phantoms == len(qs)

		if !batchable || invalid || !uniform || len(qs) == 1 {
			for i, q := range qs {
				if results[i].err != nil {
					continue
				}
				results[i].rep, results[i].err = c.Search(q.Feats, q.Kps)
			}
			return results, nil
		}

		feats = feats[:0]
		kps = kps[:0]
		for _, q := range qs {
			feats = append(feats, q.Feats)
			kps = append(kps, q.Kps)
		}
		reps, err := c.SearchBatch(feats, kps)
		if err != nil {
			return nil, err
		}
		for i, rep := range reps {
			results[i].rep = rep
		}
		return results, nil
	}
	return serve.New(run, opts)
}

// SearchCoalesced submits one query through the micro-batching admission
// layer when one is configured (Config.Serve.MaxBatch > 1), falling back to
// a direct scatter-gather Search otherwise. Safe for concurrent use; under
// load, concurrent callers share batched GEMM passes.
//
// The coordinator path is deliberately outside the zero-alloc contract:
// scatter-gather allocates per-worker goroutines and merged reports by
// design. The hot-path guards live on the admission layer itself
// (serve.Batcher) and on the engine search path the workers run.
func (c *Cluster) SearchCoalesced(feats *blas.Matrix, kps []sift.Keypoint) (*Report, error) {
	if c.batcher == nil {
		return c.Search(feats, kps)
	}
	r, err := c.batcher.Do(serve.Query{Feats: feats, Kps: kps})
	if err != nil {
		return nil, err
	}
	return r.rep, r.err
}

// ServeStats returns the admission-layer counters; the zero Stats when no
// batcher is configured.
func (c *Cluster) ServeStats() serve.Stats {
	if c.batcher == nil {
		return serve.Stats{}
	}
	return c.batcher.Stats()
}
