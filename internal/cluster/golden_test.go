package cluster

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"texid/internal/gpusim"
	"texid/internal/wire"
)

// get fetches one body from the test server.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// TestMetricsAndStatsGolden pins the determinism contract maporder enforces
// statically: /metrics and /v1/stats emission must not be shaped by map
// iteration order. Two scrapes with no traffic in between are
// byte-identical, and the exposition lists metric families in sorted order.
func TestMetricsAndStatsGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := smallCluster(t, 2)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	api := NewClient(ts.URL)

	for i := 1; i <= 3; i++ {
		rec := &wire.FeatureRecord{ID: int64(i), Precision: gpusim.FP32, Scale: 1,
			Features: unitFeatures(rng, 16, 24)}
		if err := api.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Search(queryFor(rng, unitFeatures(rng, 16, 24), 32), nil); err != nil {
		t.Fatal(err)
	}

	// The scrape itself is an API request, so the request counter moves
	// between scrapes by design; mask its sample line (determinism is
	// about ordering and formatting, not monotone counters doing their
	// job).
	mask := func(body string) string {
		lines := strings.Split(body, "\n")
		for i, l := range lines {
			if strings.HasPrefix(l, "texid_api_requests_total ") {
				lines[i] = "texid_api_requests_total <masked>"
			}
		}
		return strings.Join(lines, "\n")
	}
	m1 := mask(get(t, ts.URL+"/metrics"))
	m2 := mask(get(t, ts.URL+"/metrics"))
	if m1 != m2 {
		t.Fatalf("two /metrics scrapes differ:\n--- first\n%s\n--- second\n%s", m1, m2)
	}

	// Metric families must appear in sorted order: the registry iterates
	// its name maps via collect-then-sort, never raw map order.
	var families []string
	for _, line := range strings.Split(m1, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 3 {
			families = append(families, fields[2])
		}
	}
	if len(families) == 0 {
		t.Fatal("no metric families in /metrics output")
	}
	if !sort.StringsAreSorted(families) {
		t.Fatalf("metric families not sorted: %v", families)
	}

	s1 := get(t, ts.URL+"/v1/stats")
	s2 := get(t, ts.URL+"/v1/stats")
	if s1 != s2 {
		t.Fatalf("two /v1/stats reads differ:\n--- first\n%s\n--- second\n%s", s1, s2)
	}
}

// metricShape reduces one exposition body to its structural identity:
// the ordered list of sample/series names with values stripped. Two
// scrapes with the same shape expose exactly the same key set.
func metricShape(body string) []string {
	var shape []string
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			shape = append(shape, line)
			continue
		}
		// "name value" or `name_bucket{le="..."} value`: keep the key.
		if i := strings.LastIndexByte(line, ' '); i > 0 {
			shape = append(shape, line[:i])
		}
	}
	return shape
}

// TestMetricsStableUnderSoakChurn is the exposition audit for sustained
// load: a mini-soak of interleaved searches, enrollment churn, compaction
// and scrapes must not mint a single new metric key — every op name is
// static, so the /metrics shape after the churn is byte-identical to the
// shape before it, and the MaxMetrics overflow counter never moves. This
// is the golden-stability guard against dynamic label keys growing the
// scrape without bound over an hours-scale soak.
func TestMetricsStableUnderSoakChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	c := smallCluster(t, 3)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	api := NewClient(ts.URL)

	refs := make([]*wire.FeatureRecord, 6)
	for i := range refs {
		refs[i] = &wire.FeatureRecord{ID: int64(i), Precision: gpusim.FP32, Scale: 1,
			Features: unitFeatures(rng, 16, 24)}
		if err := api.Add(refs[i]); err != nil {
			t.Fatal(err)
		}
	}
	query := &wire.FeatureRecord{Precision: gpusim.FP32, Scale: 1,
		Features: queryFor(rng, refs[0].Features, 32)}

	// Warm every serving path once so the first shape snapshot already
	// contains all lazily-registered families.
	if _, err := api.Search(query); err != nil {
		t.Fatal(err)
	}
	if _, err := api.SearchBatch([]*wire.FeatureRecord{query, query}); err != nil {
		t.Fatal(err)
	}
	before := metricShape(get(t, ts.URL+"/metrics"))
	if len(before) == 0 {
		t.Fatal("empty exposition")
	}

	for i := 0; i < 120; i++ {
		switch i % 6 {
		case 2:
			if err := api.Update(int(refs[i%len(refs)].ID), &wire.FeatureRecord{
				ID: refs[i%len(refs)].ID, Precision: gpusim.FP32, Scale: 1,
				Features: unitFeatures(rng, 16, 24)}); err != nil {
				t.Fatal(err)
			}
		case 5:
			if i%30 == 5 {
				if _, err := api.Compact(); err != nil {
					t.Fatal(err)
				}
			}
			// Scrape mid-soak: scrapes themselves must not mint keys.
			get(t, ts.URL+"/metrics")
		default:
			if _, err := api.Search(query); err != nil {
				t.Fatal(err)
			}
		}
	}

	after := metricShape(get(t, ts.URL+"/metrics"))
	if len(after) != len(before) {
		t.Fatalf("exposition grew under soak churn: %d keys -> %d keys", len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("exposition key %d changed under churn: %q -> %q", i, before[i], after[i])
		}
	}
	for _, line := range after {
		if strings.HasPrefix(line, "texid_metrics_dropped_total") {
			body := get(t, ts.URL+"/metrics")
			if !strings.Contains(body, "texid_metrics_dropped_total 0") {
				t.Fatal("static op names tripped the MaxMetrics cap")
			}
		}
	}
}
