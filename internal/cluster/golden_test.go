package cluster

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"texid/internal/gpusim"
	"texid/internal/wire"
)

// get fetches one body from the test server.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// TestMetricsAndStatsGolden pins the determinism contract maporder enforces
// statically: /metrics and /v1/stats emission must not be shaped by map
// iteration order. Two scrapes with no traffic in between are
// byte-identical, and the exposition lists metric families in sorted order.
func TestMetricsAndStatsGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := smallCluster(t, 2)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	api := NewClient(ts.URL)

	for i := 1; i <= 3; i++ {
		rec := &wire.FeatureRecord{ID: int64(i), Precision: gpusim.FP32, Scale: 1,
			Features: unitFeatures(rng, 16, 24)}
		if err := api.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Search(queryFor(rng, unitFeatures(rng, 16, 24), 32), nil); err != nil {
		t.Fatal(err)
	}

	// The scrape itself is an API request, so the request counter moves
	// between scrapes by design; mask its sample line (determinism is
	// about ordering and formatting, not monotone counters doing their
	// job).
	mask := func(body string) string {
		lines := strings.Split(body, "\n")
		for i, l := range lines {
			if strings.HasPrefix(l, "texid_api_requests_total ") {
				lines[i] = "texid_api_requests_total <masked>"
			}
		}
		return strings.Join(lines, "\n")
	}
	m1 := mask(get(t, ts.URL+"/metrics"))
	m2 := mask(get(t, ts.URL+"/metrics"))
	if m1 != m2 {
		t.Fatalf("two /metrics scrapes differ:\n--- first\n%s\n--- second\n%s", m1, m2)
	}

	// Metric families must appear in sorted order: the registry iterates
	// its name maps via collect-then-sort, never raw map order.
	var families []string
	for _, line := range strings.Split(m1, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 3 {
			families = append(families, fields[2])
		}
	}
	if len(families) == 0 {
		t.Fatal("no metric families in /metrics output")
	}
	if !sort.StringsAreSorted(families) {
		t.Fatalf("metric families not sorted: %v", families)
	}

	s1 := get(t, ts.URL+"/v1/stats")
	s2 := get(t, ts.URL+"/v1/stats")
	if s1 != s2 {
		t.Fatalf("two /v1/stats reads differ:\n--- first\n%s\n--- second\n%s", s1, s2)
	}
}
