package cluster

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"texid/internal/blas"
	"texid/internal/metrics"
	"texid/internal/sift"
	"texid/internal/wire"
)

// The RESTful API of Sec. 8: "We can add, delete, update, and search a
// texture image through the provided APIs in this system."
//
//	GET    /healthz            liveness probe
//	GET    /v1/stats           cluster statistics
//	POST   /v1/textures        add    {"id": 1, "record_b64": "..."}
//	PUT    /v1/textures/{id}   update {"record_b64": "..."}
//	DELETE /v1/textures/{id}   delete
//	POST   /v1/search          search {"record_b64": "..."}
//	POST   /v1/search/batch    search {"records_b64": ["...", ...]}
//	POST   /v1/compact         reclaim tombstoned reference slots
//
// record_b64 is a base64 wire.FeatureRecord (the same bytes the kvstore
// persists).

// textureRequest is the body of add/update calls.
type textureRequest struct {
	ID        int    `json:"id,omitempty"`
	RecordB64 string `json:"record_b64"`
}

// batchSearchRequest is the body of /v1/search/batch.
type batchSearchRequest struct {
	RecordsB64 []string `json:"records_b64"`
}

// SearchResponse is the body returned by /v1/search. Partial=true flags a
// degraded answer: one or more shards were down and the result covers only
// the shards_answered/shards_total that responded.
type SearchResponse struct {
	BestID         int     `json:"best_id"`
	Score          int     `json:"score"`
	Accepted       bool    `json:"accepted"`
	Compared       int     `json:"compared"`
	ElapsedUS      float64 `json:"elapsed_us"`
	Speed          float64 `json:"speed_images_per_sec"`
	Partial        bool    `json:"partial,omitempty"`
	ShardsAnswered int     `json:"shards_answered"`
	ShardsTotal    int     `json:"shards_total"`
	Ranked         []struct {
		RefID int `json:"ref_id"`
		Score int `json:"score"`
	} `json:"ranked,omitempty"`
}

// searchResponse converts a merged report to its JSON body (sans Ranked).
func searchResponse(rep *Report) SearchResponse {
	return SearchResponse{
		BestID:         rep.BestID,
		Score:          rep.Score,
		Accepted:       rep.Accepted,
		Compared:       rep.Compared,
		ElapsedUS:      rep.ElapsedUS,
		Speed:          rep.Speed,
		Partial:        rep.Partial,
		ShardsAnswered: rep.ShardsAnswered,
		ShardsTotal:    rep.ShardsTotal,
	}
}

// LatencyQuantiles summarizes a latency histogram: upper-bound estimates
// of the p50/p95/p99 bucket boundaries, in milliseconds.
type LatencyQuantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
}

// quantiles snapshots a histogram into its stats form.
func quantiles(h *metrics.Histogram) LatencyQuantiles {
	n, _ := h.Snapshot()
	return LatencyQuantiles{
		Count: n,
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// ServeStatsResponse reports the micro-batching admission layer: how many
// searches it admitted, how many scatter passes they coalesced into, and
// the achieved mean batch size. All zero when coalescing is disabled.
type ServeStatsResponse struct {
	Submitted uint64  `json:"submitted"`
	Batches   uint64  `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
}

// StatsResponse is the body returned by /v1/stats.
type StatsResponse struct {
	Workers        int      `json:"workers"`
	References     int      `json:"references"`
	CapacityImages int64    `json:"capacity_images"`
	CacheGB        float64  `json:"cache_gb"`
	WorkersDead    int      `json:"workers_dead"`
	Health         []string `json:"health"`
	// SimLatency summarizes the simulated GPU latency per search;
	// WallLatency the wall-clock time per search API request.
	SimLatency  LatencyQuantiles   `json:"sim_latency"`
	WallLatency LatencyQuantiles   `json:"wall_latency"`
	Serve       ServeStatsResponse `json:"serve"`
}

// statusRecorder captures the response code for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Handler returns the cluster's HTTP API.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Refresh occupancy gauges at scrape time.
		s := c.Stats()
		c.reg.Gauge("texid_references", "enrolled reference images").Set(float64(s.References))
		c.reg.Gauge("texid_capacity_images", "hybrid cache capacity in images").Set(float64(s.CapacityImages))
		c.reg.Gauge("texid_workers", "shard workers").Set(float64(s.Workers))
		c.reg.Handler().ServeHTTP(w, r)
	}))
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		s := c.Stats()
		sv := c.ServeStats()
		resp := StatsResponse{
			Workers:        s.Workers,
			References:     s.References,
			CapacityImages: s.CapacityImages,
			CacheGB:        s.CacheGB,
			WorkersDead:    s.WorkersDead,
			SimLatency:     quantiles(c.mSearchLatency),
			WallLatency:    quantiles(c.mWallLatency),
			Serve: ServeStatsResponse{
				Submitted: sv.Submitted,
				Batches:   sv.Batches,
				MeanBatch: sv.MeanBatch,
			},
		}
		for _, h := range s.Health {
			resp.Health = append(resp.Health, h.String())
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/v1/textures", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req textureRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		rec, err := decodeRecord(req.RecordB64)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		id := req.ID
		if id == 0 {
			id = int(rec.ID)
		}
		if err := c.Add(id, rec.Features, rec.Keypoints); err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, map[string]int{"id": id})
	})
	mux.HandleFunc("/v1/textures/", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/v1/textures/"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad texture id")
			return
		}
		switch r.Method {
		case http.MethodDelete:
			if !c.Remove(id) {
				httpError(w, http.StatusNotFound, fmt.Sprintf("texture %d not found", id))
				return
			}
			writeJSON(w, http.StatusOK, map[string]int{"deleted": id})
		case http.MethodPut:
			var req textureRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
				return
			}
			rec, err := decodeRecord(req.RecordB64)
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			if err := c.Update(id, rec.Features, rec.Keypoints); err != nil {
				httpError(w, http.StatusInternalServerError, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, map[string]int{"updated": id})
		default:
			httpError(w, http.StatusMethodNotAllowed, "PUT or DELETE")
		}
	})
	mux.HandleFunc("/v1/search/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req batchSearchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		if len(req.RecordsB64) == 0 || len(req.RecordsB64) > 256 {
			httpError(w, http.StatusBadRequest, "records_b64 must hold 1..256 records")
			return
		}
		var queryFeats []*blas.Matrix
		var queryKps [][]sift.Keypoint
		for i, b64 := range req.RecordsB64 {
			rec, err := decodeRecord(b64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("record %d: %v", i, err))
				return
			}
			queryFeats = append(queryFeats, rec.Features)
			queryKps = append(queryKps, rec.Keypoints)
		}
		start := time.Now()
		reps, err := c.SearchBatch(queryFeats, queryKps)
		c.mWallLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		out := make([]SearchResponse, len(reps))
		for i, rep := range reps {
			out[i] = searchResponse(rep)
		}
		writeJSON(w, http.StatusOK, map[string][]SearchResponse{"results": out})
	})
	mux.HandleFunc("/v1/compact", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		n, err := c.Compact()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"reclaimed": n})
	})
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req textureRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		rec, err := decodeRecord(req.RecordB64)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		// Concurrent requests coalesce into shared scatter passes when the
		// admission layer is configured.
		start := time.Now()
		rep, err := c.SearchCoalesced(rec.Features, rec.Keypoints)
		c.mWallLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp := searchResponse(rep)
		for _, cand := range rep.Ranked {
			if len(resp.Ranked) >= 10 {
				break
			}
			resp.Ranked = append(resp.Ranked, struct {
				RefID int `json:"ref_id"`
				Score int `json:"score"`
			}{cand.RefID, cand.Score})
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.mAPIRequests.Inc()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(sr, r)
		if sr.status >= 400 {
			c.mAPIErrors.Inc()
		}
	})
}

// decodeRecord turns a request-body base64 blob into a feature record: the
// blob is attacker-controlled, so every length inside it is hostile until
// wire.Decode's limits checks have run.
//
//texlint:untrusted
func decodeRecord(b64 string) (*wire.FeatureRecord, error) {
	if b64 == "" {
		return nil, fmt.Errorf("missing record_b64")
	}
	raw, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, fmt.Errorf("bad base64: %w", err)
	}
	rec, err := wire.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("bad feature record: %w", err)
	}
	return rec, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure here means the client hung up mid-reply; there is
	// no channel left to report on.
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
