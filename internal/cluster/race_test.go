package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"texid/internal/blas"
)

// TestClusterConcurrentMixedOps drives the coordinator the way the REST
// tier does: searches, enrollment churn (add/update/remove), and stats
// scrapes all at once. Run under -race this is the data-race gate for the
// serving path; functionally, searches for the stable population must
// keep resolving while unrelated ids churn.
func TestClusterConcurrentMixedOps(t *testing.T) {
	c := smallCluster(t, 3)
	rng := rand.New(rand.NewSource(70))

	const stable = 6
	refs := make([]*blas.Matrix, stable)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		if err := c.Add(i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}

	// Pre-draw every random input: *rand.Rand is not goroutine-safe.
	queries := make([]*blas.Matrix, stable)
	for i := range queries {
		queries[i] = queryFor(rng, refs[i], 32)
	}
	const churners, churnOps = 2, 8
	churn := make([][]*blas.Matrix, churners)
	for g := range churn {
		churn[g] = make([]*blas.Matrix, churnOps)
		for j := range churn[g] {
			churn[g][j] = unitFeatures(rng, 16, 24)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, stable+churners+1)

	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				rep, err := c.Search(queries[i], nil)
				if err != nil {
					errs <- err
					return
				}
				if rep.BestID != i {
					errs <- fmt.Errorf("query %d resolved to %d during churn", i, rep.BestID)
					return
				}
			}
		}(i)
	}

	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := 100 + g*churnOps
			for j := 0; j < churnOps; j++ {
				id := base + j
				if err := c.Add(id, churn[g][j], nil); err != nil {
					errs <- err
					return
				}
				if err := c.Update(id, churn[g][j], nil); err != nil {
					errs <- err
					return
				}
				if !c.Remove(id) {
					errs <- fmt.Errorf("churn id %d vanished before Remove", id)
					return
				}
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 10; round++ {
			s := c.Stats()
			if s.Workers != 3 {
				errs <- fmt.Errorf("stats reported %d workers", s.Workers)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := c.Stats().References; got != stable {
		t.Fatalf("after churn drained, %d references remain, want %d", got, stable)
	}
}
