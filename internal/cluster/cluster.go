// Package cluster implements the distributed texture search system of
// Sec. 8: N shard workers (14 GPU containers in the paper, each owning one
// simulated GPU engine with a 76 GB hybrid cache), a coordinator that
// scatters every query to all shards and merges the ranked results, an
// optional kvstore (Redis-role) persistence layer for serialized feature
// records, and a RESTful HTTP API for add/delete/update/search.
package cluster

import (
	"fmt"
	"sync"

	"texid/internal/blas"
	"texid/internal/engine"
	"texid/internal/kvstore"
	"texid/internal/match"
	"texid/internal/metrics"
	"texid/internal/sift"
	"texid/internal/wire"
)

// Config configures a cluster.
type Config struct {
	// Workers is the number of shard workers (GPU containers).
	Workers int
	// Engine is the per-worker engine configuration.
	Engine engine.Config
	// StoreAddr, when non-empty, connects the coordinator to a kvstore
	// server where every enrolled record is persisted (key "tex:<id>").
	StoreAddr string
}

// DefaultConfig returns the paper's deployment: 14 P100 workers with the
// production engine configuration.
func DefaultConfig() Config {
	return Config{Workers: 14, Engine: engine.DefaultConfig()}
}

// Cluster is the coordinator plus its shard workers.
type Cluster struct {
	cfg     Config
	workers []*engine.Engine
	store   *kvstore.Client

	mu     sync.Mutex
	shards map[int]int // texture id -> worker index
	next   int         // round-robin cursor

	// Service metrics, exposed at /metrics.
	reg            *metrics.Registry
	mSearches      *metrics.Counter
	mComparisons   *metrics.Counter
	mAPIRequests   *metrics.Counter
	mAPIErrors     *metrics.Counter
	mSearchLatency *metrics.Histogram
}

// New builds the cluster, creating one engine per worker.
func New(cfg Config) (*Cluster, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("cluster: need at least one worker, got %d", cfg.Workers)
	}
	c := &Cluster{cfg: cfg, shards: make(map[int]int), reg: metrics.NewRegistry()}
	c.mSearches = c.reg.Counter("texid_searches_total", "one-to-many searches served")
	c.mComparisons = c.reg.Counter("texid_comparisons_total", "reference comparisons performed")
	c.mAPIRequests = c.reg.Counter("texid_api_requests_total", "HTTP API requests")
	c.mAPIErrors = c.reg.Counter("texid_api_errors_total", "HTTP API error responses")
	c.mSearchLatency = c.reg.Histogram("texid_search_sim_latency_ms",
		"simulated GPU latency per search (ms)", metrics.DefBuckets)
	for i := 0; i < cfg.Workers; i++ {
		e, err := engine.New(cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		c.workers = append(c.workers, e)
	}
	if cfg.StoreAddr != "" {
		cl, err := kvstore.Dial(cfg.StoreAddr)
		if err != nil {
			return nil, fmt.Errorf("cluster: connecting to kvstore: %w", err)
		}
		if err := cl.Ping(); err != nil {
			return nil, fmt.Errorf("cluster: kvstore ping: %w", err)
		}
		c.store = cl
	}
	return c, nil
}

// Close releases the kvstore connection (engines are garbage-collected).
func (c *Cluster) Close() error {
	if c.store != nil {
		return c.store.Close()
	}
	return nil
}

// Workers returns the shard engines (for stats and benchmarks).
func (c *Cluster) Workers() []*engine.Engine { return c.workers }

// storeKey is the kvstore key of a texture record.
func storeKey(id int) string { return fmt.Sprintf("tex:%d", id) }

// Add enrolls a texture: references are spread round-robin so all shards
// stay equally loaded ("all the reference feature matrices are equally
// allocated to those 14 GPU containers"). The record is persisted to the
// kvstore when one is configured.
func (c *Cluster) Add(id int, feats *blas.Matrix, kps []sift.Keypoint) error {
	c.mu.Lock()
	if _, dup := c.shards[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("cluster: duplicate texture id %d", id)
	}
	w := c.next % len(c.workers)
	c.next++
	c.mu.Unlock()

	if err := c.workers[w].Add(id, feats, kps); err != nil {
		return err
	}
	c.mu.Lock()
	c.shards[id] = w
	c.mu.Unlock()

	if c.store != nil {
		rec := &wire.FeatureRecord{
			ID:        int64(id),
			Precision: c.cfg.Engine.Precision,
			Scale:     c.cfg.Engine.Scale,
			Features:  feats,
			Keypoints: kps,
		}
		if err := c.store.Set(storeKey(id), wire.Encode(rec)); err != nil {
			return fmt.Errorf("cluster: persisting record %d: %w", id, err)
		}
	}
	return nil
}

// AddPhantom enrolls count phantom references spread evenly across the
// workers (for paper-scale capacity/speed experiments).
func (c *Cluster) AddPhantom(count int) error {
	per := count / len(c.workers)
	extra := count % len(c.workers)
	start := 0
	for i, w := range c.workers {
		n := per
		if i < extra {
			n++
		}
		if n == 0 {
			continue
		}
		if err := w.AddPhantom(start, n); err != nil {
			return fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		start += n
	}
	return nil
}

// Remove deletes a texture from its shard (and the kvstore).
func (c *Cluster) Remove(id int) bool {
	c.mu.Lock()
	w, ok := c.shards[id]
	if ok {
		delete(c.shards, id)
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	removed := c.workers[w].Remove(id)
	if c.store != nil {
		// Best-effort: a failed delete leaves an orphaned record that the
		// next enrollment under this id overwrites.
		_, _ = c.store.Del(storeKey(id))
	}
	return removed
}

// Update replaces a texture's features on its shard.
func (c *Cluster) Update(id int, feats *blas.Matrix, kps []sift.Keypoint) error {
	c.mu.Lock()
	w, ok := c.shards[id]
	c.mu.Unlock()
	if !ok {
		return c.Add(id, feats, kps)
	}
	if err := c.workers[w].Update(id, feats, kps); err != nil {
		return err
	}
	if c.store != nil {
		rec := &wire.FeatureRecord{
			ID:        int64(id),
			Precision: c.cfg.Engine.Precision,
			Scale:     c.cfg.Engine.Scale,
			Features:  feats,
			Keypoints: kps,
		}
		if err := c.store.Set(storeKey(id), wire.Encode(rec)); err != nil {
			return fmt.Errorf("cluster: persisting record %d: %w", id, err)
		}
	}
	return nil
}

// Report is the merged outcome of a distributed search.
type Report struct {
	BestID   int
	Score    int
	Accepted bool
	Ranked   []match.SearchResult // top candidates across all shards
	Compared int
	// ElapsedUS is the slowest shard's simulated time (shards run on
	// separate GPUs in parallel); Speed is the aggregate comparison
	// throughput.
	ElapsedUS float64
	Speed     float64
	PerWorker []float64 // per-shard elapsed, for load-balance inspection
}

// Search scatters the query to every shard in parallel and merges the
// results. A nil feats runs a phantom (timing-only) search.
func (c *Cluster) Search(feats *blas.Matrix, kps []sift.Keypoint) (*Report, error) {
	reports := make([]*engine.Report, len(c.workers))
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *engine.Engine) {
			defer wg.Done()
			reports[i], errs[i] = w.Search(feats, kps)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
	}

	merged := &Report{BestID: -1, PerWorker: make([]float64, len(reports))}
	for i, r := range reports {
		merged.Compared += r.Compared
		merged.PerWorker[i] = r.ElapsedUS
		if r.ElapsedUS > merged.ElapsedUS {
			merged.ElapsedUS = r.ElapsedUS
		}
		merged.Ranked = append(merged.Ranked, r.Ranked...)
	}
	if merged.ElapsedUS > 0 {
		merged.Speed = float64(merged.Compared) / (merged.ElapsedUS * 1e-6)
	}
	c.mSearches.Inc()
	c.mComparisons.Add(float64(merged.Compared))
	c.mSearchLatency.Observe(merged.ElapsedUS / 1000)
	if feats != nil {
		top, ok := match.Identify(merged.Ranked, c.cfg.Engine.Match)
		merged.Ranked = match.RankResults(merged.Ranked)
		if len(merged.Ranked) > 32 {
			merged.Ranked = merged.Ranked[:32]
		}
		merged.BestID = top.RefID
		merged.Score = top.Score
		merged.Accepted = ok
	}
	return merged, nil
}

// SearchBatch scatters a batch of queries to every shard (each worker
// matches the whole query batch with one multi-query GEMM per reference
// batch) and merges per-query results. All query matrices must have the
// engine's descriptor dimension; shorter feature counts are padded by the
// engine.
func (c *Cluster) SearchBatch(queryFeats []*blas.Matrix, queryKps [][]sift.Keypoint) ([]*Report, error) {
	batches := make([]*engine.BatchReport, len(c.workers))
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *engine.Engine) {
			defer wg.Done()
			batches[i], errs[i] = w.SearchBatch(queryFeats, queryKps)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
	}
	out := make([]*Report, len(queryFeats))
	for qi := range queryFeats {
		merged := &Report{BestID: -1, PerWorker: make([]float64, len(batches))}
		for wi, br := range batches {
			rep := br.Reports[qi]
			merged.Compared += rep.Compared
			merged.PerWorker[wi] = br.ElapsedUS
			if br.ElapsedUS > merged.ElapsedUS {
				merged.ElapsedUS = br.ElapsedUS
			}
			merged.Ranked = append(merged.Ranked, rep.Ranked...)
		}
		if merged.ElapsedUS > 0 {
			merged.Speed = float64(merged.Compared) / (merged.ElapsedUS * 1e-6)
		}
		if queryFeats[qi] != nil {
			top, ok := match.Identify(merged.Ranked, c.cfg.Engine.Match)
			merged.Ranked = match.RankResults(merged.Ranked)
			if len(merged.Ranked) > 32 {
				merged.Ranked = merged.Ranked[:32]
			}
			merged.BestID = top.RefID
			merged.Score = top.Score
			merged.Accepted = ok
		}
		out[qi] = merged
	}
	return out, nil
}

// Compact rebuilds every shard's reference store, reclaiming tombstoned
// slots left by Remove/Update. Returns the total slots reclaimed.
func (c *Cluster) Compact() (int, error) {
	total := 0
	for i, w := range c.workers {
		n, err := w.Compact()
		if err != nil {
			return total, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		total += n
	}
	return total, nil
}

// Stats aggregates shard statistics.
type Stats struct {
	Workers        int
	References     int
	CapacityImages int64
	CacheGB        float64
	PerWorker      []engine.Stats
}

// Stats returns cluster-wide occupancy and capacity.
func (c *Cluster) Stats() Stats {
	s := Stats{Workers: len(c.workers)}
	for _, w := range c.workers {
		ws := w.Stats()
		s.References += ws.References
		s.CapacityImages += ws.CapacityImages
		s.CacheGB += float64(ws.Cache.GPUBudget+ws.Cache.HostBudget) / (1 << 30)
		s.PerWorker = append(s.PerWorker, ws)
	}
	return s
}

// LoadFromStore restores every persisted record from the kvstore into the
// cluster (used at daemon startup, mirroring the paper's Redis-backed
// recovery path).
func (c *Cluster) LoadFromStore() (int, error) {
	if c.store == nil {
		return 0, fmt.Errorf("cluster: no kvstore configured")
	}
	keys, err := c.store.Keys("tex:*")
	if err != nil {
		return 0, err
	}
	n := 0
	for _, k := range keys {
		b, ok, err := c.store.Get(k)
		if err != nil {
			return n, err
		}
		if !ok {
			continue
		}
		rec, err := wire.Decode(b)
		if err != nil {
			return n, fmt.Errorf("cluster: record %s: %w", k, err)
		}
		if err := c.addLoaded(int(rec.ID), rec.Features, rec.Keypoints); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// addLoaded enrolls a restored record without re-persisting it.
func (c *Cluster) addLoaded(id int, feats *blas.Matrix, kps []sift.Keypoint) error {
	c.mu.Lock()
	if _, dup := c.shards[id]; dup {
		c.mu.Unlock()
		return nil // already resident
	}
	w := c.next % len(c.workers)
	c.next++
	c.mu.Unlock()
	if err := c.workers[w].Add(id, feats, kps); err != nil {
		return err
	}
	c.mu.Lock()
	c.shards[id] = w
	c.mu.Unlock()
	return nil
}
