// Package cluster implements the distributed texture search system of
// Sec. 8: N shard workers (14 GPU containers in the paper, each owning one
// simulated GPU engine with a 76 GB hybrid cache), a coordinator that
// scatters every query to all shards and merges the ranked results, an
// optional kvstore (Redis-role) persistence layer for serialized feature
// records, and a RESTful HTTP API for add/delete/update/search.
//
// Coordinator→worker calls go through a fault-tolerant transport seam:
// per-call deadlines, bounded retries with deterministic jittered backoff,
// hedged requests for stragglers, and a per-worker health state machine
// (healthy → suspect → dead → probing) that routes around dead shards.
// Searches degrade gracefully — surviving shards still answer, with the
// merged Report flagged Partial — and the whole layer is driven by virtual
// time only, so chaos schedules (internal/faultsim) replay bit-identically.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"texid/internal/binq"
	"texid/internal/blas"
	"texid/internal/engine"
	"texid/internal/faultsim"
	"texid/internal/kvstore"
	"texid/internal/match"
	"texid/internal/metrics"
	"texid/internal/serve"
	"texid/internal/sift"
	"texid/internal/wire"
)

// storeTimeout bounds kvstore round-trips so a hung metadata store cannot
// wedge enrollment (wall-clock: the kvstore is real TCP, not simulated).
const storeTimeout = 5 * time.Second

// Config configures a cluster.
type Config struct {
	// Workers is the number of shard workers (GPU containers).
	Workers int
	// Engine is the per-worker engine configuration.
	Engine engine.Config
	// StoreAddr, when non-empty, connects the coordinator to a kvstore
	// server where every enrolled record is persisted (key "tex:<id>").
	StoreAddr string
	// Call tunes deadlines, retries, backoff, and hedging for
	// coordinator→worker calls. Zero value = DefaultCallPolicy().
	Call CallPolicy
	// Health tunes the per-worker failure detector. Zero value = defaults.
	Health HealthPolicy
	// Fault, when non-nil, runs every coordinator→worker call through the
	// given deterministic fault injector (chaos tests and failure drills;
	// nil in production serving).
	Fault *faultsim.Injector
	// MinShards is the minimum number of shards that must answer before a
	// search degrades to a partial result; with fewer survivors the search
	// fails outright. <= 0 means 1 (any survivor yields an answer).
	MinShards int
	// Serve configures the micro-batching admission layer in front of the
	// coordinator: concurrent single-query searches are coalesced into
	// batched scatter passes (one multi-query GEMM per reference batch on
	// every worker). MaxBatch <= 1 disables coalescing; Window bounds how
	// long the first query of a batch waits (wall clock) for co-travellers.
	Serve serve.Options
}

// DefaultConfig returns the paper's deployment: 14 P100 workers with the
// production engine configuration.
func DefaultConfig() Config {
	return Config{Workers: 14, Engine: engine.DefaultConfig()}
}

// workerName returns the stable peer name fault schedules key on.
func workerName(i int) string { return fmt.Sprintf("worker-%d", i) }

// Cluster is the coordinator plus its shard workers.
type Cluster struct {
	cfg       Config
	call      CallPolicy
	minShards int
	workers   []*worker
	store     *kvstore.Client
	batcher   *serve.Batcher[serve.Query, coalescedResult]

	mu sync.Mutex
	//texlint:guards mu
	shards map[int]int // texture id -> worker index
	//texlint:guards mu
	next int // round-robin cursor

	// Service metrics, exposed at /metrics.
	reg              *metrics.Registry
	mSearches        *metrics.Counter
	mComparisons     *metrics.Counter
	mAPIRequests     *metrics.Counter
	mAPIErrors       *metrics.Counter
	mSearchLatency   *metrics.Histogram
	mWorkerRetries   *metrics.Counter
	mWorkerFailures  *metrics.Counter
	mWorkerHedges    *metrics.Counter
	mPartialSearches *metrics.Counter
	mBatchSize       *metrics.Histogram
	mWallLatency     *metrics.Histogram
}

// New builds the cluster, creating one engine per worker.
func New(cfg Config) (*Cluster, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("cluster: need at least one worker, got %d", cfg.Workers)
	}
	c := &Cluster{
		cfg:       cfg,
		call:      cfg.Call.withDefaults(),
		minShards: cfg.MinShards,
		shards:    make(map[int]int),
		reg:       metrics.NewRegistry(),
	}
	if c.minShards <= 0 {
		c.minShards = 1
	}
	if c.minShards > cfg.Workers {
		return nil, fmt.Errorf("cluster: MinShards %d exceeds worker count %d", c.minShards, cfg.Workers)
	}
	c.mSearches = c.reg.Counter("texid_searches_total", "one-to-many searches served")
	c.mComparisons = c.reg.Counter("texid_comparisons_total", "reference comparisons performed")
	c.mAPIRequests = c.reg.Counter("texid_api_requests_total", "HTTP API requests")
	c.mAPIErrors = c.reg.Counter("texid_api_errors_total", "HTTP API error responses")
	c.mSearchLatency = c.reg.Histogram("texid_search_sim_latency_ms",
		"simulated GPU latency per search (ms)", metrics.DefBuckets)
	c.mWorkerRetries = c.reg.Counter("texid_worker_retries_total", "worker call retry attempts")
	c.mWorkerFailures = c.reg.Counter("texid_worker_call_failures_total", "failed worker call attempts")
	c.mWorkerHedges = c.reg.Counter("texid_worker_hedges_total", "hedged worker requests issued")
	c.mPartialSearches = c.reg.Counter("texid_partial_searches_total", "searches answered from a strict subset of shards")
	c.mBatchSize = c.reg.Histogram("texid_serve_batch_size",
		"achieved coalesced batch size per scatter pass", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	c.mWallLatency = c.reg.Histogram("texid_search_wall_latency_ms",
		"wall-clock latency per search API request (ms)", metrics.DefBuckets)
	for i := 0; i < cfg.Workers; i++ {
		e, err := engine.New(cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		w := &worker{idx: i, name: workerName(i), eng: e, health: newHealthFSM(cfg.Health)}
		if cfg.Fault != nil {
			w.peer = cfg.Fault.Peer(w.name)
		}
		c.workers = append(c.workers, w)
	}
	if cfg.StoreAddr != "" {
		cl, err := kvstore.DialTimeout(cfg.StoreAddr, storeTimeout)
		if err != nil {
			return nil, fmt.Errorf("cluster: connecting to kvstore: %w", err)
		}
		if err := cl.Ping(); err != nil {
			return nil, fmt.Errorf("cluster: kvstore ping: %w", err)
		}
		c.store = cl
	}
	if cfg.Serve.MaxBatch > 1 {
		c.batcher = c.newBatcher(cfg.Serve)
	}
	return c, nil
}

// Close drains the admission layer and releases the kvstore connection
// (engines are garbage-collected).
func (c *Cluster) Close() error {
	if c.batcher != nil {
		c.batcher.Close()
	}
	if c.store != nil {
		return c.store.Close()
	}
	return nil
}

// Workers returns the shard engines (for stats and benchmarks).
func (c *Cluster) Workers() []*engine.Engine {
	out := make([]*engine.Engine, len(c.workers))
	for i, w := range c.workers {
		out[i] = w.eng
	}
	return out
}

// storeKey is the kvstore key of a texture record.
func storeKey(id int) string { return fmt.Sprintf("tex:%d", id) }

// Add enrolls a texture: references are spread round-robin so all shards
// stay equally loaded ("all the reference feature matrices are equally
// allocated to those 14 GPU containers"), routing around workers the
// failure detector has declared dead. The record is persisted to the
// kvstore when one is configured.
func (c *Cluster) Add(id int, feats *blas.Matrix, kps []sift.Keypoint) error {
	c.mu.Lock()
	if _, dup := c.shards[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("cluster: duplicate texture id %d", id)
	}
	wi, err := c.pickWorkerLocked()
	c.mu.Unlock()
	if err != nil {
		return err
	}

	w := c.workers[wi]
	if _, err := c.do(w, opAdd, func() (float64, error) {
		if err := w.eng.Add(id, feats, kps); err != nil {
			return 0, err
		}
		return 0, nil
	}); err != nil {
		return err
	}
	c.mu.Lock()
	c.shards[id] = wi
	c.mu.Unlock()

	if c.store != nil {
		rec := &wire.FeatureRecord{
			ID:        int64(id),
			Precision: c.cfg.Engine.Precision,
			Scale:     c.cfg.Engine.Scale,
			Features:  feats,
			Keypoints: kps,
		}
		if err := c.store.Set(storeKey(id), wire.Encode(rec)); err != nil {
			return fmt.Errorf("cluster: persisting record %d: %w", id, err)
		}
	}
	return nil
}

// AddPhantom enrolls count phantom references spread evenly across the
// workers (for paper-scale capacity/speed experiments).
func (c *Cluster) AddPhantom(count int) error {
	per := count / len(c.workers)
	extra := count % len(c.workers)
	start := 0
	for i, w := range c.workers {
		n := per
		if i < extra {
			n++
		}
		if n == 0 {
			continue
		}
		if err := w.eng.AddPhantom(start, n); err != nil {
			return fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		start += n
	}
	return nil
}

// Remove deletes a texture from its shard (and the kvstore).
func (c *Cluster) Remove(id int) bool {
	c.mu.Lock()
	w, ok := c.shards[id]
	if ok {
		delete(c.shards, id)
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	removed := c.workers[w].eng.Remove(id)
	if c.store != nil {
		// Best-effort: a failed delete leaves an orphaned record that the
		// next enrollment under this id overwrites.
		_, _ = c.store.Del(storeKey(id))
	}
	return removed
}

// Update replaces a texture's features on its shard.
func (c *Cluster) Update(id int, feats *blas.Matrix, kps []sift.Keypoint) error {
	c.mu.Lock()
	w, ok := c.shards[id]
	c.mu.Unlock()
	if !ok {
		return c.Add(id, feats, kps)
	}
	if err := c.workers[w].eng.Update(id, feats, kps); err != nil {
		return err
	}
	if c.store != nil {
		rec := &wire.FeatureRecord{
			ID:        int64(id),
			Precision: c.cfg.Engine.Precision,
			Scale:     c.cfg.Engine.Scale,
			Features:  feats,
			Keypoints: kps,
		}
		if err := c.store.Set(storeKey(id), wire.Encode(rec)); err != nil {
			return fmt.Errorf("cluster: persisting record %d: %w", id, err)
		}
	}
	return nil
}

// Report is the merged outcome of a distributed search.
type Report struct {
	BestID   int
	Score    int
	Accepted bool
	Ranked   []match.SearchResult // top candidates across all shards
	Compared int
	// ElapsedUS is the slowest answering shard's coordinator-observed
	// latency (shards run on separate GPUs in parallel; retries, backoff,
	// and injected latency count); Speed is the aggregate comparison
	// throughput.
	ElapsedUS float64
	Speed     float64
	// PerWorker is per-shard observed latency, -1 for shards that did not
	// answer (for load-balance and degradation inspection).
	PerWorker []float64
	// Partial reports degraded service: at least one shard did not answer
	// and the results cover only the surviving shards' references.
	Partial bool
	// ShardsAnswered / ShardsTotal count the shards whose results are
	// merged into this report.
	ShardsAnswered int
	ShardsTotal    int
}

// Summary converts the report to its stable wire form. The chaos suite
// serializes summaries to assert byte-identical results across runs and
// GOMAXPROCS settings.
//
//texlint:deterministic
func (r *Report) Summary() *wire.SearchSummary {
	s := &wire.SearchSummary{
		BestID:         int64(r.BestID),
		Score:          int64(r.Score),
		Accepted:       r.Accepted,
		Partial:        r.Partial,
		ShardsAnswered: r.ShardsAnswered,
		ShardsTotal:    r.ShardsTotal,
		Compared:       int64(r.Compared),
		ElapsedUS:      r.ElapsedUS,
	}
	for _, m := range r.Ranked {
		s.Ranked = append(s.Ranked, wire.RankedMatch{RefID: int64(m.RefID), Score: int64(m.Score)})
	}
	return s
}

// shardResult is one worker's contribution to a scatter-gather search.
type shardResult struct {
	rep *engine.Report
	bat *engine.BatchReport
	el  float64
	err error
}

// Search scatters the query to every live shard in parallel and merges the
// results. A nil feats runs a phantom (timing-only) search. Shards that
// fail after retries are routed around: the merged report covers the
// survivors and is marked Partial. The search fails only when fewer than
// MinShards shards answer.
//
//texlint:deterministic
func (c *Cluster) Search(feats *blas.Matrix, kps []sift.Keypoint) (*Report, error) {
	results := make([]shardResult, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			var rep *engine.Report
			el, err := c.do(w, opSearch, func() (float64, error) {
				r, err := w.eng.Search(feats, kps)
				if err != nil {
					return 0, err
				}
				rep = r
				return r.ElapsedUS, nil
			})
			results[i] = shardResult{rep: rep, el: el, err: err}
		}(i, w)
	}
	wg.Wait()

	merged := &Report{BestID: -1, ShardsTotal: len(c.workers), PerWorker: make([]float64, len(results))}
	var firstErr error
	for i, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: worker %d: %w", i, r.err)
			}
			merged.PerWorker[i] = -1
			continue
		}
		merged.ShardsAnswered++
		merged.Compared += r.rep.Compared
		merged.PerWorker[i] = r.el
		if r.el > merged.ElapsedUS {
			merged.ElapsedUS = r.el
		}
		merged.Ranked = append(merged.Ranked, r.rep.Ranked...)
	}
	if err := c.checkQuorum(merged.ShardsAnswered, firstErr); err != nil {
		return nil, err
	}
	merged.Partial = merged.ShardsAnswered < merged.ShardsTotal
	if merged.Partial {
		c.mPartialSearches.Inc()
	}
	if merged.ElapsedUS > 0 {
		merged.Speed = float64(merged.Compared) / (merged.ElapsedUS * 1e-6)
	}
	c.mSearches.Inc()
	c.mComparisons.Add(float64(merged.Compared))
	c.mSearchLatency.Observe(merged.ElapsedUS / 1000)
	if feats != nil {
		top, ok := match.Identify(merged.Ranked, c.cfg.Engine.Match)
		merged.Ranked = match.RankResults(merged.Ranked)
		if len(merged.Ranked) > 32 {
			merged.Ranked = merged.Ranked[:32]
		}
		merged.BestID = top.RefID
		merged.Score = top.Score
		merged.Accepted = ok
	}
	return merged, nil
}

// checkQuorum enforces the MinShards floor on a merged search.
func (c *Cluster) checkQuorum(answered int, firstErr error) error {
	if answered == 0 {
		return fmt.Errorf("cluster: no shard answered: %w", firstErr)
	}
	if answered < c.minShards {
		return fmt.Errorf("cluster: only %d/%d shards answered, need %d: %w",
			answered, len(c.workers), c.minShards, firstErr)
	}
	return nil
}

// SearchBatch scatters a batch of queries to every live shard (each worker
// matches the whole query batch with one multi-query GEMM per reference
// batch) and merges per-query results, degrading to partial results like
// Search. All query matrices must have the engine's descriptor dimension;
// shorter feature counts are padded by the engine.
//
//texlint:deterministic
func (c *Cluster) SearchBatch(queryFeats []*blas.Matrix, queryKps [][]sift.Keypoint) ([]*Report, error) {
	results := make([]shardResult, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			var br *engine.BatchReport
			el, err := c.do(w, opSearchBatch, func() (float64, error) {
				b, err := w.eng.SearchBatch(queryFeats, queryKps)
				if err != nil {
					return 0, err
				}
				br = b
				return b.ElapsedUS, nil
			})
			results[i] = shardResult{bat: br, el: el, err: err}
		}(i, w)
	}
	wg.Wait()

	answered := 0
	var firstErr error
	for i, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: worker %d: %w", i, r.err)
			}
			continue
		}
		answered++
	}
	if err := c.checkQuorum(answered, firstErr); err != nil {
		return nil, err
	}
	partial := answered < len(c.workers)
	if partial {
		c.mPartialSearches.Inc()
	}

	out := make([]*Report, len(queryFeats))
	for qi := range queryFeats {
		merged := &Report{
			BestID:         -1,
			ShardsAnswered: answered,
			ShardsTotal:    len(c.workers),
			Partial:        partial,
			PerWorker:      make([]float64, len(results)),
		}
		for wi, r := range results {
			if r.err != nil {
				merged.PerWorker[wi] = -1
				continue
			}
			rep := r.bat.Reports[qi]
			merged.Compared += rep.Compared
			merged.PerWorker[wi] = r.el
			if r.el > merged.ElapsedUS {
				merged.ElapsedUS = r.el
			}
			merged.Ranked = append(merged.Ranked, rep.Ranked...)
		}
		if merged.ElapsedUS > 0 {
			merged.Speed = float64(merged.Compared) / (merged.ElapsedUS * 1e-6)
		}
		c.mSearches.Inc()
		c.mComparisons.Add(float64(merged.Compared))
		c.mSearchLatency.Observe(merged.ElapsedUS / 1000)
		if queryFeats[qi] != nil {
			top, ok := match.Identify(merged.Ranked, c.cfg.Engine.Match)
			merged.Ranked = match.RankResults(merged.Ranked)
			if len(merged.Ranked) > 32 {
				merged.Ranked = merged.Ranked[:32]
			}
			merged.BestID = top.RefID
			merged.Score = top.Score
			merged.Accepted = ok
		}
		out[qi] = merged
	}
	return out, nil
}

// Compact rebuilds every shard's reference store, reclaiming tombstoned
// slots left by Remove/Update. Returns the total slots reclaimed.
func (c *Cluster) Compact() (int, error) {
	total := 0
	for i, w := range c.workers {
		n, err := w.eng.Compact()
		if err != nil {
			return total, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		total += n
	}
	return total, nil
}

// Rebalance drains every live reference off the given worker and re-enrolls
// it round-robin across the remaining live workers (via the engine export
// path), updating the shard map. It restores full-coverage search after a
// shard is declared dead — the in-process engine still holds the feature
// data, standing in for the paper's Redis-backed re-shard — and is also the
// drain step for planned worker removal. Returns how many references moved.
func (c *Cluster) Rebalance(from int) (int, error) {
	if from < 0 || from >= len(c.workers) {
		return 0, fmt.Errorf("cluster: no worker %d", from)
	}
	if len(c.workers) < 2 {
		return 0, fmt.Errorf("cluster: nowhere to rebalance to")
	}
	src := c.workers[from]
	var moved []int
	// Codes are intentionally dropped: each destination engine re-encodes
	// under its own learned thresholds at seal time.
	err := src.eng.Export(func(id int, feats *blas.Matrix, kps []sift.Keypoint, _ []binq.Code) error {
		c.mu.Lock()
		wi, err := c.pickWorkerLocked()
		for err == nil && wi == from {
			wi, err = c.pickWorkerLocked()
		}
		c.mu.Unlock()
		if err != nil {
			return err
		}
		if err := c.workers[wi].eng.Add(id, feats, kps); err != nil {
			return fmt.Errorf("cluster: re-homing record %d: %w", id, err)
		}
		c.mu.Lock()
		c.shards[id] = wi
		c.mu.Unlock()
		moved = append(moved, id)
		return nil
	})
	if err != nil {
		return len(moved), err
	}
	for _, id := range moved {
		src.eng.Remove(id)
	}
	if _, err := src.eng.Compact(); err != nil {
		return len(moved), fmt.Errorf("cluster: compacting drained worker %d: %w", from, err)
	}
	return len(moved), nil
}

// Stats aggregates shard statistics.
type Stats struct {
	Workers        int
	References     int
	CapacityImages int64
	CacheGB        float64
	PerWorker      []engine.Stats
	// Health is each worker's failure-detector state; WorkersDead counts
	// the shards currently routed around.
	Health      []HealthState
	WorkersDead int
}

// Stats returns cluster-wide occupancy and capacity.
func (c *Cluster) Stats() Stats {
	s := Stats{Workers: len(c.workers)}
	for _, w := range c.workers {
		ws := w.eng.Stats()
		s.References += ws.References
		s.CapacityImages += ws.CapacityImages
		s.CacheGB += float64(ws.Cache.GPUBudget+ws.Cache.HostBudget) / (1 << 30)
		s.PerWorker = append(s.PerWorker, ws)
		h := w.health.State()
		s.Health = append(s.Health, h)
		if h == Dead {
			s.WorkersDead++
		}
	}
	return s
}

// LoadFromStore restores every persisted record from the kvstore into the
// cluster (used at daemon startup, mirroring the paper's Redis-backed
// recovery path).
func (c *Cluster) LoadFromStore() (int, error) {
	if c.store == nil {
		return 0, fmt.Errorf("cluster: no kvstore configured")
	}
	keys, err := c.store.Keys("tex:*")
	if err != nil {
		return 0, err
	}
	n := 0
	for _, k := range keys {
		b, ok, err := c.store.Get(k)
		if err != nil {
			return n, err
		}
		if !ok {
			continue
		}
		rec, err := wire.Decode(b)
		if err != nil {
			return n, fmt.Errorf("cluster: record %s: %w", k, err)
		}
		if err := c.addLoaded(int(rec.ID), rec.Features, rec.Keypoints); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// addLoaded enrolls a restored record without re-persisting it.
func (c *Cluster) addLoaded(id int, feats *blas.Matrix, kps []sift.Keypoint) error {
	c.mu.Lock()
	if _, dup := c.shards[id]; dup {
		c.mu.Unlock()
		return nil // already resident
	}
	w, err := c.pickWorkerLocked()
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if err := c.workers[w].eng.Add(id, feats, kps); err != nil {
		return err
	}
	c.mu.Lock()
	c.shards[id] = w
	c.mu.Unlock()
	return nil
}
