package cluster

import (
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"texid/internal/blas"
	"texid/internal/faultsim"
	"texid/internal/gpusim"
	"texid/internal/serve"
	"texid/internal/wire"
)

// serveOptions forces full coalescing in tests: every concurrent caller
// lands in one scatter pass (the window is far above any scheduling jitter).
func serveOptions(maxBatch int) serve.Options {
	return serve.Options{MaxBatch: maxBatch, Window: time.Second}
}

// TestClusterCoalescedMatchesSearch is the identity contract at the
// coordinator: N goroutines racing through the admission layer get reports
// bitwise identical (matches, scores, ranked lists) to sequential
// scatter-gather searches of the same queries.
func TestClusterCoalescedMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	c, err := New(Config{Workers: 3, Engine: smallEngine(), Serve: serveOptions(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	refs := make([]*blas.Matrix, 9)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		if err := c.Add(i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}

	const n = 16
	queries := make([]*blas.Matrix, n)
	for i := range queries {
		queries[i] = queryFor(rng, refs[i%len(refs)], 32)
	}
	want := make([]*Report, n)
	for i, q := range queries {
		rep, err := c.Search(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	got := make([]*Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = c.SearchCoalesced(queries[i], nil)
		}(i)
	}
	wg.Wait()

	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		g, w := got[i], want[i]
		if g.BestID != w.BestID || g.Score != w.Score || g.Accepted != w.Accepted || g.Compared != w.Compared {
			t.Fatalf("query %d: coalesced (best=%d score=%d) != sequential (best=%d score=%d)",
				i, g.BestID, g.Score, w.BestID, w.Score)
		}
		if len(g.Ranked) != len(w.Ranked) {
			t.Fatalf("query %d: ranked %d vs %d entries", i, len(g.Ranked), len(w.Ranked))
		}
		for j := range g.Ranked {
			if g.Ranked[j] != w.Ranked[j] {
				t.Fatalf("query %d ranked[%d]: %+v != %+v", i, j, g.Ranked[j], w.Ranked[j])
			}
		}
	}
	st := c.ServeStats()
	if st.Submitted != n {
		t.Fatalf("submitted %d, want %d", st.Submitted, n)
	}
	if st.Batches >= st.Submitted {
		t.Fatalf("no coalescing: %d batches for %d searches", st.Batches, st.Submitted)
	}
}

// TestClusterCoalescedChaosPartial composes the admission layer with the
// fault injector: with one shard killed mid-stream, coalesced searches keep
// degrading gracefully — every demultiplexed report is Partial, covers the
// surviving shards, and still finds its target.
func TestClusterCoalescedChaosPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	refs := make([]*blas.Matrix, 6)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
	}
	adds := len(refs) / 3
	c, err := New(Config{
		Workers: 3, Engine: smallEngine(), Serve: serveOptions(4),
		Fault: faultsim.New(faultsim.Plan{Seed: 72, Kill: map[string]uint64{workerName(2): uint64(adds) + 1}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, f := range refs {
		if err := c.Add(i, f, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Both targets live on surviving shards (round-robin: 0 -> worker-0,
	// 1 -> worker-1).
	const n = 4
	queries := make([]*blas.Matrix, n)
	for i := range queries {
		queries[i] = queryFor(rng, refs[i%2], 32)
	}
	reps := make([]*Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = c.SearchCoalesced(queries[i], nil)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("search %d: %v", i, errs[i])
		}
		rep := reps[i]
		if !rep.Partial || rep.ShardsAnswered != 2 || rep.ShardsTotal != 3 {
			t.Fatalf("search %d: partial=%v answered=%d/%d", i, rep.Partial, rep.ShardsAnswered, rep.ShardsTotal)
		}
		if rep.BestID != i%2 || !rep.Accepted {
			t.Fatalf("search %d lost its target on surviving shards: best=%d", i, rep.BestID)
		}
	}
}

// TestClusterCoalescedErrorIsolation pins the demux contract at the
// coordinator: a malformed query sharing a coalesced batch with valid ones
// fails alone.
func TestClusterCoalescedErrorIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	c, err := New(Config{Workers: 2, Engine: smallEngine(), Serve: serveOptions(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ref := unitFeatures(rng, 16, 24)
	if err := c.Add(0, ref, nil); err != nil {
		t.Fatal(err)
	}

	queries := []*blas.Matrix{
		queryFor(rng, ref, 32),
		unitFeatures(rng, 7, 32), // wrong dimension
		queryFor(rng, ref, 32),
	}
	reps := make([]*Report, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = c.SearchCoalesced(queries[i], nil)
		}(i)
	}
	wg.Wait()

	if errs[1] == nil {
		t.Fatal("wrong-dimension query accepted")
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("valid query %d poisoned by co-batched bad query: %v", i, errs[i])
		}
		if reps[i].BestID != 0 || !reps[i].Accepted {
			t.Fatalf("valid query %d: %+v", i, reps[i])
		}
	}
}

// TestServeStatsAndMetricsExposed covers the observability satellite: after
// traffic through the coalescing /v1/search path, /v1/stats carries latency
// quantiles and admission counters, and /metrics exposes the batch-size and
// wall-latency histograms.
func TestServeStatsAndMetricsExposed(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	c, err := New(Config{Workers: 2, Engine: smallEngine(), Serve: serveOptions(4)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	api := NewClient(ts.URL)

	ref := unitFeatures(rng, 16, 24)
	if err := api.Add(&wire.FeatureRecord{ID: 1, Precision: gpusim.FP32, Scale: 1, Features: ref}); err != nil {
		t.Fatal(err)
	}
	q := &wire.FeatureRecord{Precision: gpusim.FP32, Scale: 1, Features: queryFor(rng, ref, 32)}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := api.Search(q); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st, err := api.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Serve.Submitted != 3 || st.Serve.Batches == 0 || st.Serve.MeanBatch < 1 {
		t.Fatalf("serve stats = %+v", st.Serve)
	}
	if st.WallLatency.Count != 3 || st.WallLatency.P99 <= 0 {
		t.Fatalf("wall latency = %+v", st.WallLatency)
	}
	if st.SimLatency.Count == 0 || st.SimLatency.P50 <= 0 {
		t.Fatalf("sim latency = %+v", st.SimLatency)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"texid_serve_batch_size_count",
		"texid_search_wall_latency_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}
