package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"texid/internal/blas"
	"texid/internal/faultsim"
	"texid/internal/wire"
)

// The chaos suite drives the fault-tolerant serving path through seeded
// fault schedules and asserts the headline contract: with a fixed seed,
// killing any minority of workers mid-stream yields a deterministic,
// byte-identical partial result (same matches, Partial=true, correct
// ShardsAnswered) across consecutive runs and across GOMAXPROCS settings.
// Determinism comes from three design rules the tests below pin down:
// per-peer fault streams (faultsim), virtual-clock-only timing, and
// call-count-driven health transitions.

// chaosScenario is one table entry: a cluster shape, a fault plan, and the
// properties the (deterministic) outcome must satisfy.
type chaosScenario struct {
	name      string
	workers   int
	refs      int
	searches  int
	minShards int
	// directEnroll loads references straight into the shard engines,
	// bypassing the fault transport (for schedules whose rates would make
	// cluster.Add non-idempotent, e.g. reply loss).
	directEnroll bool
	plan         func(addsPerWorker int) faultsim.Plan
	call         CallPolicy
	health       HealthPolicy
	// check runs once per scenario (first run, default GOMAXPROCS) on the
	// collected outcome.
	check func(t *testing.T, out *chaosOutcome)
}

// chaosOutcome is everything one scenario run produced.
type chaosOutcome struct {
	c          *Cluster
	reports    []*Report // nil where the search errored
	errors     []error
	transcript []byte // concatenated wire summaries / error strings
}

// runChaos executes a scenario once and returns the outcome. Reference and
// query features derive from a fixed rng seed, so every run sees identical
// inputs.
func runChaos(t *testing.T, sc chaosScenario) *chaosOutcome {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	refs := make([]*blas.Matrix, sc.refs)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
	}
	queries := make([]*blas.Matrix, sc.searches)
	for i := range queries {
		// Every query targets reference 0 — enrolled on worker 0, which no
		// scenario kills — so a correct partial merge keeps finding it.
		queries[i] = queryFor(rng, refs[0], 32)
	}

	addsPerWorker := sc.refs / sc.workers
	if sc.directEnroll {
		addsPerWorker = 0
	}
	c, err := New(Config{
		Workers:   sc.workers,
		Engine:    smallEngine(),
		Call:      sc.call,
		Health:    sc.health,
		MinShards: sc.minShards,
		Fault:     faultsim.New(sc.plan(addsPerWorker)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range refs {
		if sc.directEnroll {
			if err := c.workers[i%sc.workers].eng.Add(i, f, nil); err != nil {
				t.Fatalf("direct enroll %d: %v", i, err)
			}
		} else if err := c.Add(i, f, nil); err != nil {
			t.Fatalf("enroll %d: %v", i, err)
		}
	}

	out := &chaosOutcome{c: c, reports: make([]*Report, sc.searches), errors: make([]error, sc.searches)}
	for s := 0; s < sc.searches; s++ {
		rep, err := c.Search(queries[s], nil)
		out.reports[s], out.errors[s] = rep, err
		if err != nil {
			out.transcript = append(out.transcript, fmt.Sprintf("search %d error: %v\n", s, err)...)
			continue
		}
		out.transcript = append(out.transcript, wire.EncodeSummary(rep.Summary())...)
	}
	return out
}

// assertDeterministic re-runs a scenario and requires a byte-identical
// transcript: 3 consecutive runs, then one run each at GOMAXPROCS 1 and 4.
func assertDeterministic(t *testing.T, sc chaosScenario, want []byte) {
	t.Helper()
	for run := 0; run < 2; run++ {
		if got := runChaos(t, sc).transcript; !bytes.Equal(got, want) {
			t.Fatalf("run %d transcript differs from first run", run+2)
		}
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		got := runChaos(t, sc).transcript
		runtime.GOMAXPROCS(prev)
		if !bytes.Equal(got, want) {
			t.Fatalf("GOMAXPROCS=%d transcript differs", procs)
		}
	}
}

func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{
			// The headline case: one of four workers dies between the first
			// and second search. Every later search is a partial result that
			// still finds the target.
			name: "kill-one-of-four", workers: 4, refs: 8, searches: 8,
			plan: func(adds int) faultsim.Plan {
				return faultsim.Plan{Seed: 11, Kill: map[string]uint64{workerName(1): uint64(adds) + 2}}
			},
			check: func(t *testing.T, out *chaosOutcome) {
				first := out.reports[0]
				if first == nil || first.Partial || first.ShardsAnswered != 4 {
					t.Fatalf("pre-kill search degraded: %+v", first)
				}
				for s := 1; s < len(out.reports); s++ {
					rep := out.reports[s]
					if out.errors[s] != nil {
						t.Fatalf("search %d errored: %v", s, out.errors[s])
					}
					if !rep.Partial || rep.ShardsAnswered != 3 || rep.ShardsTotal != 4 {
						t.Fatalf("search %d: partial=%v answered=%d/%d",
							s, rep.Partial, rep.ShardsAnswered, rep.ShardsTotal)
					}
					if rep.PerWorker[1] != -1 {
						t.Fatalf("search %d: dead shard billed latency %v", s, rep.PerWorker[1])
					}
					if rep.BestID != 0 || !rep.Accepted {
						t.Fatalf("search %d lost the target on surviving shards: best=%d", s, rep.BestID)
					}
				}
				if st := out.c.Health()[1]; st != Dead && st != Probing {
					t.Fatalf("killed worker health = %v", st)
				}
				if out.c.Stats().WorkersDead == 0 && out.c.Health()[1] == Dead {
					t.Fatal("stats do not report the dead shard")
				}
			},
		},
		{
			// A minority (two of five) dies at staggered points mid-stream.
			name: "kill-two-of-five", workers: 5, refs: 10, searches: 6,
			plan: func(adds int) faultsim.Plan {
				return faultsim.Plan{Seed: 12, Kill: map[string]uint64{
					workerName(2): uint64(adds) + 1,
					workerName(4): uint64(adds) + 3,
				}}
			},
			check: func(t *testing.T, out *chaosOutcome) {
				last := out.reports[len(out.reports)-1]
				if last == nil || !last.Partial || last.ShardsAnswered != 3 || last.ShardsTotal != 5 {
					t.Fatalf("final search: %+v (err %v)", last, out.errors[len(out.errors)-1])
				}
				if last.BestID != 0 || !last.Accepted {
					t.Fatalf("majority merge lost the target: %+v", last)
				}
			},
		},
		{
			// Random call drops are absorbed by bounded retries: service
			// stays up, the retry counter ticks.
			name: "drop-retry-storm", workers: 3, refs: 6, searches: 10,
			plan: func(adds int) faultsim.Plan {
				return faultsim.Plan{Seed: 13, DropRate: 0.25}
			},
			check: func(t *testing.T, out *chaosOutcome) {
				ok := 0
				for s, rep := range out.reports {
					if out.errors[s] == nil && rep.BestID == 0 && rep.Accepted {
						ok++
					}
				}
				if ok < len(out.reports)/2 {
					t.Fatalf("only %d/%d searches survived a 25%% drop rate", ok, len(out.reports))
				}
				if out.c.mWorkerRetries.Value() == 0 {
					t.Fatal("drops never triggered a retry")
				}
			},
		},
		{
			// The full fault mix (drops, hangs, lost replies, latency
			// spikes) over the search path. Enrollment bypasses the
			// transport: retrying a reply-lost Add is not idempotent.
			name: "flaky-mix", workers: 3, refs: 6, searches: 12, directEnroll: true,
			call: CallPolicy{MaxAttempts: 4},
			plan: func(adds int) faultsim.Plan {
				return faultsim.Plan{Seed: 14, DropRate: 0.1, HangRate: 0.05, ReplyLossRate: 0.05, SlowRate: 0.3, SlowUS: 2000}
			},
			check: func(t *testing.T, out *chaosOutcome) {
				ok := 0
				for s, rep := range out.reports {
					if out.errors[s] == nil && rep.BestID == 0 && rep.Accepted {
						ok++
					}
				}
				if ok < len(out.reports)/2 {
					t.Fatalf("only %d/%d searches survived the fault mix", ok, len(out.reports))
				}
			},
		},
		{
			// Permanent latency spikes with aggressive hedging: every
			// straggling call gets a duplicate, and hedged latency wins.
			name: "latency-hedge", workers: 3, refs: 6, searches: 4, directEnroll: true,
			call: CallPolicy{HedgeAfterUS: 1},
			plan: func(adds int) faultsim.Plan {
				return faultsim.Plan{Seed: 15, SlowRate: 1, SlowUS: 3000}
			},
			check: func(t *testing.T, out *chaosOutcome) {
				for s, rep := range out.reports {
					if out.errors[s] != nil || rep.Partial {
						t.Fatalf("search %d degraded under pure latency faults: %+v (%v)", s, rep, out.errors[s])
					}
				}
				if out.c.mWorkerHedges.Value() == 0 {
					t.Fatal("stragglers were never hedged")
				}
			},
		},
		{
			// Losing every shard fails the search outright (no silent empty
			// answers), and the error is itself deterministic.
			name: "all-dead-errors", workers: 3, refs: 6, searches: 4,
			plan: func(adds int) faultsim.Plan {
				return faultsim.Plan{Seed: 16, Kill: map[string]uint64{
					workerName(0): uint64(adds) + 1,
					workerName(1): uint64(adds) + 1,
					workerName(2): uint64(adds) + 1,
				}}
			},
			check: func(t *testing.T, out *chaosOutcome) {
				for s, err := range out.errors {
					if err == nil {
						t.Fatalf("search %d succeeded with every shard dead", s)
					}
				}
			},
		},
		{
			// A MinShards quorum turns graceful degradation back into hard
			// failure when coverage drops below the floor.
			name: "quorum-too-strict", workers: 4, refs: 8, searches: 3, minShards: 4,
			plan: func(adds int) faultsim.Plan {
				return faultsim.Plan{Seed: 17, Kill: map[string]uint64{workerName(3): uint64(adds) + 1}}
			},
			check: func(t *testing.T, out *chaosOutcome) {
				for s, err := range out.errors {
					if err == nil {
						t.Fatalf("search %d passed below the shard quorum", s)
					}
				}
			},
		},
	}
}

// TestChaosDeterministicPartialResults is the acceptance gate: every
// scenario's full transcript (wire-encoded summaries and error strings) is
// byte-identical across 3 consecutive runs and at GOMAXPROCS ∈ {1, 4}, and
// satisfies its scenario-specific degradation properties.
func TestChaosDeterministicPartialResults(t *testing.T) {
	for _, sc := range chaosScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			first := runChaos(t, sc)
			if sc.check != nil {
				sc.check(t, first)
			}
			if len(first.transcript) == 0 {
				t.Fatal("empty transcript")
			}
			assertDeterministic(t, sc, first.transcript)
		})
	}
}

// TestChaosZeroFaultBitIdentical pins the zero-overhead contract: a cluster
// carrying a zero-rate injector (the full transport seam active, no faults
// scheduled) produces byte-for-byte the results of a cluster with no
// injector at all (the direct pre-fault-layer path).
func TestChaosZeroFaultBitIdentical(t *testing.T) {
	run := func(fault *faultsim.Injector) []byte {
		rng := rand.New(rand.NewSource(41))
		c, err := New(Config{Workers: 3, Engine: smallEngine(), Fault: fault})
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]*blas.Matrix, 6)
		for i := range refs {
			refs[i] = unitFeatures(rng, 16, 24)
			if err := c.Add(i, refs[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		var transcript []byte
		for _, target := range []int{0, 3, 5} {
			rep, err := c.Search(queryFor(rng, refs[target], 32), nil)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Partial || rep.ShardsAnswered != 3 {
				t.Fatalf("degradation without faults: %+v", rep)
			}
			transcript = append(transcript, wire.EncodeSummary(rep.Summary())...)
		}
		return transcript
	}

	direct := run(nil)
	seamed := run(faultsim.New(faultsim.Plan{Seed: 99}))
	if !bytes.Equal(direct, seamed) {
		t.Fatal("zero-fault injector path diverges from the direct path")
	}
}

// TestChaosBatchPartial verifies SearchBatch degrades like Search: a dead
// shard marks every per-query report partial, deterministically.
func TestChaosBatchPartial(t *testing.T) {
	sc := chaosScenario{workers: 3, refs: 6, searches: 0}
	run := func() ([]*Report, []byte) {
		rng := rand.New(rand.NewSource(43))
		refs := make([]*blas.Matrix, sc.refs)
		for i := range refs {
			refs[i] = unitFeatures(rng, 16, 24)
		}
		adds := sc.refs / sc.workers
		c, err := New(Config{Workers: sc.workers, Engine: smallEngine(),
			Fault: faultsim.New(faultsim.Plan{Seed: 44, Kill: map[string]uint64{workerName(2): uint64(adds) + 1}})})
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range refs {
			if err := c.Add(i, f, nil); err != nil {
				t.Fatal(err)
			}
		}
		queries := []*blas.Matrix{queryFor(rng, refs[0], 32), queryFor(rng, refs[1], 32)}
		reps, err := c.SearchBatch(queries, nil)
		if err != nil {
			t.Fatal(err)
		}
		var transcript []byte
		for _, rep := range reps {
			transcript = append(transcript, wire.EncodeSummary(rep.Summary())...)
		}
		return reps, transcript
	}

	reps, first := run()
	for qi, rep := range reps {
		if !rep.Partial || rep.ShardsAnswered != 2 || rep.ShardsTotal != 3 {
			t.Fatalf("query %d: partial=%v answered=%d/%d", qi, rep.Partial, rep.ShardsAnswered, rep.ShardsTotal)
		}
		if rep.BestID != qi || !rep.Accepted {
			t.Fatalf("query %d merged wrong: best=%d accepted=%v", qi, rep.BestID, rep.Accepted)
		}
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		_, got := run()
		runtime.GOMAXPROCS(prev)
		if !bytes.Equal(got, first) {
			t.Fatalf("GOMAXPROCS=%d batch transcript differs", procs)
		}
	}
}

// TestChaosPartitionHealsAndProbeResurrects drives the full failure
// detector loop: a virtual-clock partition window takes a worker out,
// repeated failures mark it Dead, probe calls keep testing it, and once the
// worker's clock passes the window the probe succeeds and the worker
// returns to Healthy (full, non-partial service).
func TestChaosPartitionHealsAndProbeResurrects(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	refs := make([]*blas.Matrix, 4)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
	}
	query := queryFor(rng, refs[0], 32)

	// The window opens at virtual time zero and is tiny: any simulated work
	// on the worker carries its clock past it, but while every call is
	// refused the clock is frozen and the partition holds.
	c, err := New(Config{
		Workers: 2, Engine: smallEngine(),
		Health: HealthPolicy{SuspectAfter: 1, DeadAfter: 2, ProbeEvery: 1},
		Fault: faultsim.New(faultsim.Plan{Seed: 46,
			Partitions: []faultsim.Partition{{Peer: workerName(1), FromUS: 0, ToUS: 1}}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Enroll directly: the partition is live from t=0 and would refuse adds.
	for i, f := range refs {
		if err := c.workers[i%2].eng.Add(i, f, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Searches 1..2 fail on worker-1 (partitioned) and kill it.
	for s := 0; s < 2; s++ {
		rep, err := c.Search(query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Partial || rep.ShardsAnswered != 1 {
			t.Fatalf("search %d during partition: %+v", s, rep)
		}
	}
	if st := c.Health()[1]; st != Dead {
		t.Fatalf("worker-1 after 2 failures = %v, want dead", st)
	}
	// The next search probes (ProbeEvery=1); the probe still lands inside
	// the window, so the worker stays dead and service stays partial.
	rep, err := c.Search(query, nil)
	if err != nil || !rep.Partial {
		t.Fatalf("probe-into-partition search: %+v (%v)", rep, err)
	}
	if st := c.Health()[1]; st != Dead {
		t.Fatalf("worker-1 after failed probe = %v, want dead", st)
	}

	// The worker performs local simulated work: its virtual clock moves
	// past the window and the partition heals.
	if _, err := c.workers[1].eng.Search(query, nil); err != nil {
		t.Fatal(err)
	}
	rep, err = c.Search(query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial || rep.ShardsAnswered != 2 {
		t.Fatalf("post-heal search still degraded: %+v", rep)
	}
	if st := c.Health()[1]; st != Healthy {
		t.Fatalf("worker-1 after successful probe = %v, want healthy", st)
	}
}

// TestChaosRebalanceRestoresCoverage kills a shard, observes its references
// drop out of the answer, then drains the dead shard through the engine
// export path and verifies full coverage returns (while the dead worker
// itself stays routed around).
func TestChaosRebalanceRestoresCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	refs := make([]*blas.Matrix, 6)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
	}
	adds := len(refs) / 3
	c, err := New(Config{Workers: 3, Engine: smallEngine(),
		Fault: faultsim.New(faultsim.Plan{Seed: 48, Kill: map[string]uint64{workerName(1): uint64(adds) + 1}})})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range refs {
		if err := c.Add(i, f, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Reference 1 lives on (killed) worker-1: partial searches miss it.
	query := queryFor(rng, refs[1], 32)
	for s := 0; s < 3; s++ {
		rep, err := c.Search(query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Partial || rep.BestID == 1 {
			t.Fatalf("search %d against dead shard: partial=%v best=%d", s, rep.Partial, rep.BestID)
		}
	}
	if st := c.Health()[1]; st != Dead {
		t.Fatalf("worker-1 = %v, want dead", st)
	}

	moved, err := c.Rebalance(1)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("rebalanced %d references, want 2", moved)
	}
	rep, err := c.Search(query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestID != 1 || !rep.Accepted {
		t.Fatalf("rebalanced reference not found: %+v", rep)
	}
	if rep.Compared != len(refs) {
		t.Fatalf("post-rebalance coverage %d/%d references", rep.Compared, len(refs))
	}
}

// TestSummaryRoundTrip pins the wire form the transcripts are built from.
func TestSummaryRoundTrip(t *testing.T) {
	s := &wire.SearchSummary{
		BestID: -1, Score: 42, Accepted: true, Partial: true,
		ShardsAnswered: 3, ShardsTotal: 4, Compared: 1000, ElapsedUS: 1234.5,
		Ranked: []wire.RankedMatch{{RefID: 7, Score: 40}, {RefID: -1, Score: 2}},
	}
	b := wire.EncodeSummary(s)
	got, err := wire.DecodeSummary(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.BestID != s.BestID || got.Partial != s.Partial || got.ShardsAnswered != 3 ||
		len(got.Ranked) != 2 || got.Ranked[1].RefID != -1 {
		t.Fatalf("round trip mangled summary: %+v", got)
	}
	if _, err := wire.DecodeSummary(b[:len(b)-1]); err == nil {
		t.Fatal("truncated summary accepted")
	}
}
