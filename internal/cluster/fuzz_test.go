package cluster

import (
	"encoding/base64"
	"math/rand"
	"testing"

	"texid/internal/gpusim"
	"texid/internal/sift"
	"texid/internal/wire"
)

// fuzzSeedRecord builds a small valid record for the seed corpus.
func fuzzSeedRecord() string {
	m := unitFeatures(rand.New(rand.NewSource(9)), 8, 4)
	rec := &wire.FeatureRecord{
		ID: 7, Precision: gpusim.FP32, Scale: 1, Features: m,
		Keypoints: []sift.Keypoint{{X: 1, Y: 2, Sigma: 3, Angle: 0.5, Response: 0.9}},
	}
	return base64.StdEncoding.EncodeToString(wire.Encode(rec))
}

// FuzzDecodeRecord drives the REST request decoder (base64 + wire record
// parse) with arbitrary strings: the path every /v1/textures and /v1/search
// body flows through. Invariants: no panic, no giant allocation from a
// hostile header, and a successful decode re-encodes losslessly.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(fuzzSeedRecord())
	f.Add("")                      // missing record
	f.Add("!!!")                   // invalid base64
	f.Add("AAAA")                  // valid base64, garbage bytes
	f.Add(base64.StdEncoding.EncodeToString([]byte("TXIF junk")))
	// Valid magic+version, hostile dimensions, no payload.
	f.Add(base64.StdEncoding.EncodeToString([]byte{
		0x46, 0x49, 0x58, 0x54, // magic (LE)
		1,                      // version
		7,                      // id varint
		0,                      // FP32
		0, 0, 0x80, 0x3f,       // scale 1.0
		0x80, 0x80, 0x40,       // d varint = 1<<20
		0x80, 0x80, 0x40,       // m varint = 1<<20
	}))

	f.Fuzz(func(t *testing.T, b64 string) {
		rec, err := decodeRecord(b64)
		if err != nil {
			return
		}
		back, err := wire.Decode(wire.Encode(rec))
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if back.ID != rec.ID || back.Precision != rec.Precision ||
			len(back.Keypoints) != len(rec.Keypoints) {
			t.Fatalf("round trip drifted: %+v vs %+v", back, rec)
		}
	})
}
