package cluster

import (
	"io"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"texid/internal/blas"
	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/knn"
	"texid/internal/kvstore"
	"texid/internal/wire"
)

// smallEngine returns a tiny functional engine config for cluster tests.
func smallEngine() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.BatchSize = 4
	cfg.Streams = 2
	cfg.Precision = gpusim.FP32
	cfg.Algorithm = knn.RootSIFT
	cfg.RefFeatures = 24
	cfg.QueryFeatures = 32
	cfg.Dim = 16
	cfg.HostCacheBytes = 1 << 30
	cfg.Match.MinMatches = 10
	cfg.Match.EdgeMargin = 0
	return cfg
}

func smallCluster(t *testing.T, workers int) *Cluster {
	t.Helper()
	c, err := New(Config{Workers: workers, Engine: smallEngine()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func unitFeatures(rng *rand.Rand, d, n int) *blas.Matrix {
	m := blas.NewMatrix(d, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		var s float64
		for i := range col {
			col[i] = rng.Float32()
			s += float64(col[i]) * float64(col[i])
		}
		f := float32(1 / math.Sqrt(s))
		for i := range col {
			col[i] *= f
		}
	}
	return m
}

func queryFor(rng *rand.Rand, ref *blas.Matrix, n int) *blas.Matrix {
	q := blas.NewMatrix(ref.Rows, n)
	for j := 0; j < n; j++ {
		if j < ref.Cols {
			copy(q.Col(j), ref.Col(j))
			col := q.Col(j)
			var s float64
			for i := range col {
				col[i] += (rng.Float32()*2 - 1) * 0.02
				if col[i] < 0 {
					col[i] = 0
				}
				s += float64(col[i]) * float64(col[i])
			}
			f := float32(1 / math.Sqrt(s))
			for i := range col {
				col[i] *= f
			}
		} else {
			copy(q.Col(j), unitFeatures(rng, ref.Rows, 1).Col(0))
		}
	}
	return q
}

func TestClusterShardsRoundRobin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := smallCluster(t, 3)
	for i := 0; i < 9; i++ {
		if err := c.Add(i, unitFeatures(rng, 16, 24), nil); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.References != 9 {
		t.Fatalf("references = %d", s.References)
	}
	for i, ws := range s.PerWorker {
		if ws.References != 3 {
			t.Fatalf("worker %d holds %d refs, want 3", i, ws.References)
		}
	}
}

func TestClusterSearchFindsAcrossShards(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := smallCluster(t, 3)
	refs := make([]*blas.Matrix, 12)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		c.Add(i, refs[i], nil)
	}
	// Query for a texture on each shard.
	for _, target := range []int{0, 1, 2, 7, 11} {
		rep, err := c.Search(queryFor(rng, refs[target], 32), nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.BestID != target || !rep.Accepted {
			t.Fatalf("target %d: got best %d (score %d, accepted %v)", target, rep.BestID, rep.Score, rep.Accepted)
		}
		if rep.Compared != 12 {
			t.Fatalf("compared %d, want 12", rep.Compared)
		}
	}
}

func TestClusterRemoveAndUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := smallCluster(t, 2)
	ref := unitFeatures(rng, 16, 24)
	c.Add(5, ref, nil)
	if !c.Remove(5) {
		t.Fatal("Remove failed")
	}
	if c.Remove(5) {
		t.Fatal("double remove reported true")
	}
	// Update on a missing id enrolls it.
	newRef := unitFeatures(rng, 16, 24)
	if err := c.Update(5, newRef, nil); err != nil {
		t.Fatal(err)
	}
	rep, _ := c.Search(queryFor(rng, newRef, 32), nil)
	if rep.BestID != 5 || !rep.Accepted {
		t.Fatalf("updated texture not found: %+v", rep)
	}
}

func TestClusterDuplicateAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := smallCluster(t, 2)
	f := unitFeatures(rng, 16, 24)
	if err := c.Add(1, f, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(1, f, nil); err == nil {
		t.Fatal("duplicate add accepted")
	}
}

func TestClusterPhantomAggregateSpeed(t *testing.T) {
	// Sec. 8 shape: N workers in parallel deliver ~N× the single-GPU
	// throughput.
	cfg := Config{Workers: 4, Engine: engine.DefaultConfig()}
	cfg.Engine.BatchSize = 1024
	cfg.Engine.Streams = 1
	cfg.Engine.RefFeatures = 768
	cfg.Engine.QueryFeatures = 768
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddPhantom(4 * 4096); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Search(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compared != 4*4096 {
		t.Fatalf("compared %d", rep.Compared)
	}
	// Single-GPU batched resident speed is ~45k; 4 workers ≈ 180k.
	if rep.Speed < 120_000 || rep.Speed > 260_000 {
		t.Fatalf("aggregate speed %.0f img/s, want ~180k", rep.Speed)
	}
	t.Logf("4-worker aggregate speed: %.0f img/s", rep.Speed)
}

func TestKVStorePersistenceAndReload(t *testing.T) {
	srv, err := kvstore.Serve(kvstore.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewSource(5))
	cfg := Config{Workers: 2, Engine: smallEngine(), StoreAddr: srv.Addr()}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*blas.Matrix, 6)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		if err := c.Add(i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Remove(3)
	c.Close()

	// A fresh cluster restores from the store.
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c2.LoadFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("restored %d records, want 5 (one was deleted)", n)
	}
	rep, err := c2.Search(queryFor(rng, refs[1], 32), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestID != 1 || !rep.Accepted {
		t.Fatalf("restored texture not found: %+v", rep)
	}
}

func TestRESTAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := smallCluster(t, 2)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	api := NewClient(ts.URL)

	if err := api.Health(); err != nil {
		t.Fatal(err)
	}

	refs := make([]*blas.Matrix, 4)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		rec := &wire.FeatureRecord{ID: int64(i + 1), Precision: gpusim.FP32, Scale: 1, Features: refs[i]}
		if err := api.Add(rec); err != nil {
			t.Fatal(err)
		}
	}

	st, err := api.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.References != 4 {
		t.Fatalf("stats = %+v", st)
	}

	// Search via REST.
	q := &wire.FeatureRecord{Precision: gpusim.FP32, Scale: 1, Features: queryFor(rng, refs[2], 32)}
	res, err := api.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestID != 3 || !res.Accepted {
		t.Fatalf("REST search = %+v", res)
	}
	if res.Compared != 4 || res.Speed <= 0 {
		t.Fatalf("REST search missing metrics: %+v", res)
	}

	// Update then delete.
	if err := api.Update(3, &wire.FeatureRecord{Precision: gpusim.FP32, Scale: 1, Features: unitFeatures(rng, 16, 24)}); err != nil {
		t.Fatal(err)
	}
	if err := api.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := api.Delete(3); err == nil {
		t.Fatal("double delete should 404")
	}
	st, _ = api.Stats()
	if st.References != 3 {
		t.Fatalf("references after delete = %d", st.References)
	}
}

func TestRESTRejectsBadInput(t *testing.T) {
	c := smallCluster(t, 1)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	api := NewClient(ts.URL)

	// Garbage base64 record.
	err := api.doJSON("POST", "/v1/textures", textureRequest{ID: 1, RecordB64: "!!!"}, nil)
	if err == nil {
		t.Fatal("garbage base64 accepted")
	}
	// Valid base64, garbage bytes.
	err = api.doJSON("POST", "/v1/search", textureRequest{RecordB64: "AAAA"}, nil)
	if err == nil {
		t.Fatal("garbage record accepted")
	}
	// Missing record.
	err = api.doJSON("POST", "/v1/search", textureRequest{}, nil)
	if err == nil {
		t.Fatal("empty record accepted")
	}
	// Bad id in path.
	err = api.doJSON("DELETE", "/v1/textures/notanumber", nil, nil)
	if err == nil {
		t.Fatal("bad id accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Workers: 0, Engine: smallEngine()}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := New(Config{Workers: 1, Engine: smallEngine(), StoreAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable store accepted")
	}
}

func TestClusterSearchBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	c := smallCluster(t, 3)
	refs := make([]*blas.Matrix, 9)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		c.Add(i, refs[i], nil)
	}
	queries := []*blas.Matrix{
		queryFor(rng, refs[1], 32),
		queryFor(rng, refs[8], 32),
		unitFeatures(rng, 16, 32),
	}
	reps, err := c.SearchBatch(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d reports", len(reps))
	}
	if reps[0].BestID != 1 || !reps[0].Accepted {
		t.Fatalf("query 0: %+v", reps[0])
	}
	if reps[1].BestID != 8 || !reps[1].Accepted {
		t.Fatalf("query 1: %+v", reps[1])
	}
	if reps[2].Accepted {
		t.Fatalf("foreign query accepted: %+v", reps[2])
	}
	for _, rep := range reps {
		if rep.Compared != 9 {
			t.Fatalf("compared %d, want 9", rep.Compared)
		}
	}
}

func TestClusterCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	c := smallCluster(t, 2)
	refs := make([]*blas.Matrix, 8)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		c.Add(i, refs[i], nil)
	}
	c.Remove(2)
	c.Remove(5)
	n, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("reclaimed %d, want 2", n)
	}
	rep, _ := c.Search(queryFor(rng, refs[7], 32), nil)
	if rep.BestID != 7 || !rep.Accepted {
		t.Fatalf("reference lost after cluster compact: %+v", rep)
	}
}

func TestRESTBatchSearchAndCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	c := smallCluster(t, 2)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	api := NewClient(ts.URL)

	refs := make([]*blas.Matrix, 4)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		api.Add(&wire.FeatureRecord{ID: int64(i + 1), Precision: gpusim.FP32, Scale: 1, Features: refs[i]})
	}

	recs := []*wire.FeatureRecord{
		{Precision: gpusim.FP32, Scale: 1, Features: queryFor(rng, refs[0], 32)},
		{Precision: gpusim.FP32, Scale: 1, Features: queryFor(rng, refs[3], 32)},
	}
	results, err := api.SearchBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].BestID != 1 || results[1].BestID != 4 {
		t.Fatalf("batch REST results: %+v", results)
	}

	api.Delete(2)
	n, err := api.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("REST compact reclaimed %d", n)
	}

	// Oversized batch rejected.
	if _, err := api.SearchBatch(make([]*wire.FeatureRecord, 0)); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	c := smallCluster(t, 2)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	api := NewClient(ts.URL)

	ref := unitFeatures(rng, 16, 24)
	api.Add(&wire.FeatureRecord{ID: 1, Precision: gpusim.FP32, Scale: 1, Features: ref})
	api.Search(&wire.FeatureRecord{Precision: gpusim.FP32, Scale: 1, Features: queryFor(rng, ref, 32)})
	// Provoke one API error.
	api.Delete(999)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"texid_searches_total 1",
		"texid_api_errors_total 1",
		"texid_references 1",
		"texid_workers 2",
		"texid_search_sim_latency_ms_count 1",
		"texid_comparisons_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}
