package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestClientTimeoutOnHungServer pins the satellite fix for the unbounded
// http.DefaultClient: a coordinator that accepts the connection and then
// never answers must surface as an error within the configured timeout, not
// hang the caller forever.
func TestClientTimeoutOnHungServer(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold the request open until the test ends
	}))
	defer func() { close(release); ts.Close() }()

	api := NewClient(ts.URL, WithTimeout(100*time.Millisecond))
	start := time.Now()
	err := api.Health()
	if err == nil {
		t.Fatal("hung server did not error")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", waited)
	}
}

// TestClientDefaultTimeoutConfigured guards against regressing to the
// timeout-less http.DefaultClient.
func TestClientDefaultTimeoutConfigured(t *testing.T) {
	c := NewClient("http://example.invalid")
	if c.http.Timeout != DefaultClientTimeout {
		t.Fatalf("default timeout = %v, want %v", c.http.Timeout, DefaultClientTimeout)
	}
	if c.http == http.DefaultClient {
		t.Fatal("client shares http.DefaultClient")
	}
	custom := &http.Client{}
	c = NewClient("http://example.invalid", WithHTTPClient(custom), WithTimeout(time.Second))
	if c.http != custom || custom.Timeout != time.Second {
		t.Fatal("options did not compose")
	}
}
