package sift

import (
	"math"
)

const (
	// DescriptorDim is the SIFT descriptor dimensionality: a 4×4 spatial
	// grid of 8-bin orientation histograms.
	DescriptorDim = 128

	descWidth   = 4 // spatial bins per side
	descBins    = 8 // orientation bins
	descMagCap  = 0.2
	descNorm512 = 512 // OpenCV convention: descriptors scaled to L2 norm 512
)

// computeDescriptorInto extracts the 128-D descriptor of kp from the
// Gaussian level it was detected at, writing it into dst (length
// DescriptorDim), following Lowe §6: gradients in a rotated,
// scale-normalized window are accumulated into a 4×4×8 histogram with
// trilinear interpolation and Gaussian weighting; the vector is normalized,
// clamped at 0.2, renormalized, and finally scaled to L2 norm 512 to match
// OpenCV's output convention (which is the convention under which the FP16
// overflow behaviour of Table 2 occurs). Writing into the caller's column
// keeps the per-keypoint stage allocation-free.
func computeDescriptorInto(p *pyramid, kp Keypoint, dst []float32) {
	g := p.gauss[kp.Octave][kp.Level]
	scale := math.Pow(2, float64(kp.Octave)) * p.coordScale
	ox := kp.X / scale
	oy := kp.Y / scale
	sigma := kp.Sigma / scale

	cosT := math.Cos(kp.Angle)
	sinT := math.Sin(kp.Angle)

	histWidth := 3 * sigma // pixels per spatial bin
	radius := int(math.Round(histWidth * math.Sqrt2 * (descWidth + 1) * 0.5))
	if radius < 1 {
		radius = 1
	}
	// Clamp the radius so the window stays computable near borders.
	if m := g.W; radius > m {
		radius = m
	}

	var hist [descWidth + 2][descWidth + 2][descBins]float64
	xi, yi := int(math.Round(ox)), int(math.Round(oy))
	invGauss := -1.0 / (0.5 * float64(descWidth*descWidth))
	gw, pix := g.W, g.Pix

	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			x, y := xi+dx, yi+dy
			if x < 1 || x >= g.W-1 || y < 1 || y >= g.H-1 {
				continue
			}
			// Rotate the offset into the keypoint frame, in bin units.
			rx := (cosT*float64(dx) + sinT*float64(dy)) / histWidth
			ry := (-sinT*float64(dx) + cosT*float64(dy)) / histWidth
			// Bin coordinates in [0, descWidth); offset so bin centers
			// align with the grid.
			bx := rx + descWidth/2 - 0.5
			by := ry + descWidth/2 - 0.5
			if bx <= -1 || bx >= descWidth || by <= -1 || by >= descWidth {
				continue
			}

			// Interior pixel (guarded above): read neighbors directly.
			c := y*gw + x
			gx := float64(pix[c+1] - pix[c-1])
			gy := float64(pix[c+gw] - pix[c-gw])
			mag := math.Sqrt(gx*gx + gy*gy)
			ang := math.Atan2(gy, gx) - kp.Angle
			for ang < 0 {
				ang += 2 * math.Pi
			}
			for ang >= 2*math.Pi {
				ang -= 2 * math.Pi
			}
			ob := ang / (2 * math.Pi) * descBins

			w := math.Exp((rx*rx + ry*ry) * invGauss)
			v := mag * w

			// Trilinear interpolation into (bx, by, ob).
			x0 := int(math.Floor(bx))
			y0 := int(math.Floor(by))
			o0 := int(math.Floor(ob))
			fx := bx - float64(x0)
			fy := by - float64(y0)
			fo := ob - float64(o0)
			for di := 0; di < 2; di++ {
				yb := y0 + di
				if yb < -1 || yb > descWidth {
					continue
				}
				wy := v
				if di == 0 {
					wy *= 1 - fy
				} else {
					wy *= fy
				}
				for dj := 0; dj < 2; dj++ {
					xb := x0 + dj
					if xb < -1 || xb > descWidth {
						continue
					}
					wx := wy
					if dj == 0 {
						wx *= 1 - fx
					} else {
						wx *= fx
					}
					for dk := 0; dk < 2; dk++ {
						obn := (o0 + dk) % descBins
						if obn < 0 {
							obn += descBins
						}
						wo := wx
						if dk == 0 {
							wo *= 1 - fo
						} else {
							wo *= fo
						}
						hist[yb+1][xb+1][obn] += wo
					}
				}
			}
		}
	}

	// Flatten the interior 4×4 grid into a stack buffer.
	var desc [DescriptorDim]float64
	n := 0
	for i := 1; i <= descWidth; i++ {
		for j := 1; j <= descWidth; j++ {
			n += copy(desc[n:], hist[i][j][:])
		}
	}

	// Normalize, clamp at 0.2, renormalize, scale to 512.
	normalize(desc[:])
	for i, v := range desc {
		if v > descMagCap {
			desc[i] = descMagCap
		}
	}
	normalize(desc[:])

	for i, v := range desc {
		dst[i] = float32(v * descNorm512)
	}
}

// normalize scales v to unit L2 norm in place (no-op for the zero vector).
//
//texlint:hotpath
func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	inv := 1 / math.Sqrt(n)
	for i := range v {
		v[i] *= inv
	}
}
