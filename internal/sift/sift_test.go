package sift

import (
	"math"
	"math/rand"
	"testing"

	"texid/internal/blas"
	"texid/internal/texture"
)

func testImage(seed int64) *texture.Image {
	p := texture.DefaultGenParams()
	p.Size = 128
	p.Flakes = 80
	return texture.Generate(seed, p)
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxFeatures = 256
	return cfg
}

func TestExtractFindsKeypoints(t *testing.T) {
	f := Extract(testImage(1), testConfig())
	if f.Count() < 100 {
		t.Fatalf("only %d keypoints on a 128px texture; want >= 100", f.Count())
	}
	if f.Descriptors.Rows != DescriptorDim || f.Descriptors.Cols != f.Count() {
		t.Fatalf("descriptor matrix %dx%d for %d keypoints", f.Descriptors.Rows, f.Descriptors.Cols, f.Count())
	}
	for _, kp := range f.Keypoints {
		if kp.X < 0 || kp.X >= 128 || kp.Y < 0 || kp.Y >= 128 {
			t.Fatalf("keypoint outside image: (%g, %g)", kp.X, kp.Y)
		}
		if kp.Sigma <= 0 {
			t.Fatalf("non-positive keypoint scale %g", kp.Sigma)
		}
		if kp.Angle < 0 || kp.Angle >= 2*math.Pi+1e-9 {
			t.Fatalf("angle out of range: %g", kp.Angle)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	a := Extract(testImage(2), testConfig())
	b := Extract(testImage(2), testConfig())
	if a.Count() != b.Count() {
		t.Fatalf("count differs: %d vs %d", a.Count(), b.Count())
	}
	for i := range a.Descriptors.Data {
		if a.Descriptors.Data[i] != b.Descriptors.Data[i] {
			t.Fatal("descriptors differ between identical runs")
		}
	}
}

func TestDescriptorNorm512(t *testing.T) {
	f := Extract(testImage(3), testConfig())
	for j := 0; j < f.Descriptors.Cols; j++ {
		col := f.Descriptors.Col(j)
		var n float64
		for _, v := range col {
			if v < 0 {
				t.Fatalf("negative descriptor entry %g", v)
			}
			n += float64(v) * float64(v)
		}
		n = math.Sqrt(n)
		if math.Abs(n-512) > 1 {
			t.Fatalf("descriptor %d has L2 norm %g, want 512", j, n)
		}
	}
}

func TestRootSIFTUnitNorm(t *testing.T) {
	cfg := testConfig()
	cfg.RootSIFT = true
	f := Extract(testImage(4), cfg)
	for j := 0; j < f.Descriptors.Cols; j++ {
		col := f.Descriptors.Col(j)
		var n float64
		for _, v := range col {
			if v < 0 {
				t.Fatalf("RootSIFT entry negative: %g", v)
			}
			n += float64(v) * float64(v)
		}
		if math.Abs(n-1) > 1e-3 {
			t.Fatalf("RootSIFT descriptor %d has squared norm %g, want 1", j, n)
		}
	}
}

func TestRootSIFTIsHellinger(t *testing.T) {
	// For L1-normalized histograms x, y: ‖√x − √y‖² = 2 − 2·Σ√(x_i·y_i),
	// so the RootSIFT dot product equals the Hellinger kernel.
	x := []float32{4, 0, 1, 3}
	y := []float32{1, 1, 1, 1}
	m := blas.FromColumns(4, [][]float32{x, y})
	ApplyRootSIFT(m)
	var dot float64
	for i := 0; i < 4; i++ {
		dot += float64(m.At(i, 0)) * float64(m.At(i, 1))
	}
	// Hellinger kernel of the L1-normalized originals.
	var want float64
	for i := 0; i < 4; i++ {
		want += math.Sqrt(float64(x[i]) / 8 * float64(y[i]) / 4)
	}
	if math.Abs(dot-want) > 1e-6 {
		t.Fatalf("RootSIFT dot = %g, Hellinger = %g", dot, want)
	}
}

func TestTopKByResponse(t *testing.T) {
	kps := []Keypoint{
		{X: 1, Response: 0.5},
		{X: 2, Response: 0.9},
		{X: 3, Response: 0.1},
		{X: 4, Response: 0.7},
	}
	got := topKByResponse(kps, 2)
	if len(got) != 2 || got[0].X != 2 || got[1].X != 4 {
		t.Fatalf("topK wrong: %+v", got)
	}
	if len(topKByResponse(kps, 0)) != 4 {
		t.Fatal("k=0 should keep all")
	}
	if len(topKByResponse(kps, 100)) != 4 {
		t.Fatal("k>len should keep all")
	}
}

func TestMaxFeaturesCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxFeatures = 50
	f := Extract(testImage(5), cfg)
	if f.Count() != 50 {
		t.Fatalf("MaxFeatures=50 produced %d features", f.Count())
	}
}

// matchCount runs a brute-force 2-NN ratio test between two feature sets
// and returns the number of accepted matches.
func matchCount(ref, query *Features, ratio float64) int {
	n := 0
	for q := 0; q < query.Count(); q++ {
		qc := query.Descriptors.Col(q)
		best, second := math.MaxFloat64, math.MaxFloat64
		for r := 0; r < ref.Count(); r++ {
			rc := ref.Descriptors.Col(r)
			var d float64
			for i := range qc {
				diff := float64(qc[i] - rc[i])
				d += diff * diff
			}
			if d < best {
				second = best
				best = d
			} else if d < second {
				second = d
			}
		}
		if second > 0 && math.Sqrt(best) < ratio*math.Sqrt(second) {
			n++
		}
	}
	return n
}

func TestDiscriminability(t *testing.T) {
	// The core identification property: a perturbed re-capture of texture A
	// must match reference A far better than reference B matches A.
	cfg := testConfig()
	refA := Extract(testImage(10), cfg)
	refB := Extract(testImage(11), cfg)

	rng := rand.New(rand.NewSource(1))
	pert := texture.RandomPerturbation(rng, 0.3)
	queryA := Extract(pert.Apply(testImage(10)), cfg)

	same := matchCount(refA, queryA, 0.75)
	diff := matchCount(refB, queryA, 0.75)
	t.Logf("matches: same-texture %d, different-texture %d", same, diff)
	if same < 20 {
		t.Fatalf("too few same-texture matches: %d", same)
	}
	if same < 3*diff {
		t.Fatalf("insufficient margin: same %d vs diff %d", same, diff)
	}
}

func TestExtractAsymmetric(t *testing.T) {
	refCfg, qCfg := ExtractAsymmetric(testConfig(), 100, 200)
	if refCfg.MaxFeatures != 100 || qCfg.MaxFeatures != 200 {
		t.Fatalf("asymmetric budgets wrong: %d/%d", refCfg.MaxFeatures, qCfg.MaxFeatures)
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1.6, 3.2} {
		k := gaussianKernel(sigma)
		var sum float64
		for _, v := range k {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("kernel sigma=%g sums to %g", sigma, sum)
		}
		if len(k)%2 != 1 {
			t.Errorf("kernel sigma=%g has even length %d", sigma, len(k))
		}
	}
}

func TestBlurReducesVariance(t *testing.T) {
	im := testImage(6)
	blurred := blur(im, 2.0)
	varOf := func(im *texture.Image) float64 {
		mean := im.Mean()
		var s float64
		for _, v := range im.Pix {
			d := float64(v) - mean
			s += d * d
		}
		return s / float64(len(im.Pix))
	}
	if varOf(blurred) >= varOf(im) {
		t.Fatal("Gaussian blur did not reduce variance")
	}
}

func TestDownsampleHalves(t *testing.T) {
	im := texture.NewImage(8, 6)
	out := downsample(im)
	if out.W != 4 || out.H != 3 {
		t.Fatalf("downsample 8x6 -> %dx%d", out.W, out.H)
	}
}

func TestPyramidShape(t *testing.T) {
	cfg := testConfig()
	p := buildPyramid(testImage(7), cfg)
	if p.nOctaves < 3 {
		t.Fatalf("only %d octaves for a 128px image", p.nOctaves)
	}
	for o := 0; o < p.nOctaves; o++ {
		if len(p.gauss[o]) != cfg.OctaveScales+3 {
			t.Fatalf("octave %d has %d gaussian levels", o, len(p.gauss[o]))
		}
		if len(p.dog[o]) != cfg.OctaveScales+2 {
			t.Fatalf("octave %d has %d DoG levels", o, len(p.dog[o]))
		}
	}
	// Octave o+1 is half the size of octave o.
	if p.gauss[1][0].W != p.gauss[0][0].W/2 {
		t.Fatalf("octave downsampling broken: %d vs %d", p.gauss[1][0].W, p.gauss[0][0].W)
	}
}

func BenchmarkExtract128(b *testing.B) {
	im := testImage(100)
	cfg := testConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(im, cfg)
	}
}

// rotate90 rotates an image 90 degrees clockwise (exact, no resampling).
func rotate90(im *texture.Image) *texture.Image {
	out := texture.NewImage(im.H, im.W)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Set(im.H-1-y, x, im.At(x, y))
		}
	}
	return out
}

func TestRotationInvariance(t *testing.T) {
	// A 90-degree rotation is lossless, so SIFT's orientation normalization
	// should keep most descriptors matching their rotated counterparts.
	cfg := testConfig()
	cfg.MaxFeatures = 150
	im := testImage(30)
	orig := Extract(im, cfg)
	rot := Extract(rotate90(im), cfg)
	matches := matchCount(orig, rot, 0.75)
	t.Logf("rotation-invariance matches: %d of %d query features", matches, rot.Count())
	if matches < orig.Count()/3 {
		t.Fatalf("only %d/%d descriptors survive a lossless 90-degree rotation", matches, orig.Count())
	}
}

func TestScaleInvariancePartial(t *testing.T) {
	// Downscaling by 2x shifts keypoints one octave; a healthy fraction of
	// descriptors should still match across the scale change.
	cfg := testConfig()
	cfg.MaxFeatures = 150
	im := testImage(31)
	small := texture.NewImage(im.W/2, im.H/2)
	for y := 0; y < small.H; y++ {
		for x := 0; x < small.W; x++ {
			small.Set(x, y, (im.At(2*x, 2*y)+im.At(2*x+1, 2*y)+im.At(2*x, 2*y+1)+im.At(2*x+1, 2*y+1))/4)
		}
	}
	orig := Extract(im, cfg)
	scaled := Extract(small, cfg)
	matches := matchCount(orig, scaled, 0.75)
	t.Logf("scale-invariance matches: %d of %d query features", matches, scaled.Count())
	if matches < 15 {
		t.Fatalf("only %d descriptors survive a 2x downscale", matches)
	}
}

func TestCostEstimator(t *testing.T) {
	cfg := DefaultConfig()
	est := EstimateCost(1024, cfg, 768)
	if est.PyramidFLOPs <= 0 || est.DescriptorFLOPs <= 0 || est.Total() <= est.PyramidFLOPs {
		t.Fatalf("degenerate cost estimate: %+v", est)
	}
	// Extraction of a 1024px capture is on the order of GFLOPs — far more
	// than one 2-NN match (151 MFLOPs), far less than a million of them.
	if est.Total() < 5e8 || est.Total() > 1e11 {
		t.Fatalf("extraction estimate %.2e FLOPs out of plausible range", est.Total())
	}
	if Match2NNFLOPs(1, 768, 768, 128) != 2*768*768*128 {
		t.Fatal("Match2NNFLOPs wrong")
	}
	// Upsampling quadruples the base-octave work.
	noUp := cfg
	noUp.Upsample = false
	if EstimateCost(1024, noUp, 768).PyramidFLOPs >= est.PyramidFLOPs {
		t.Fatal("upsampled pyramid should cost more")
	}
}
