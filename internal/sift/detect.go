package sift

import (
	"math"
	"sort"

	"texid/internal/blas"
	"texid/internal/texture"
)

// Keypoint is a detected scale-space extremum with orientation.
type Keypoint struct {
	X, Y     float64 // position in original image coordinates
	Sigma    float64 // absolute scale
	Angle    float64 // dominant gradient orientation, radians in [0, 2π)
	Response float64 // |DoG| value at the refined extremum
	Octave   int
	Level    int
}

// slabRef identifies one (octave, level) DoG slab.
type slabRef struct{ o, l int }

// detectExtrema finds local extrema of the DoG pyramid, refines them to
// subpixel accuracy, and filters by contrast and edge response. Each
// (octave, level) slab scans independently and the per-slab results are
// concatenated in slab order, so the keypoint list is identical to the
// sequential scan at any GOMAXPROCS. All working buffers come from the
// arena; the returned slice aliases it and must be copied before escaping
// the extraction.
func detectExtrema(p *pyramid, a *arena, cfg Config) []Keypoint {
	const border = 5

	slabs := a.slabs[:0]
	for o := 0; o < p.nOctaves; o++ {
		for l := 1; l < len(p.dog[o])-1; l++ {
			slabs = append(slabs, slabRef{o, l})
		}
	}
	a.slabs = slabs

	// Per-slab result buffers, recycled across extractions (slab si's
	// buffer is touched only by worker si, in input order).
	for len(a.slabKps) < len(slabs) {
		a.slabKps = append(a.slabKps, nil)
	}
	found := a.slabKps[:len(slabs)]
	blas.Parallel(len(slabs), func(si int) {
		o, l := slabs[si].o, slabs[si].l
		scale := math.Pow(2, float64(o)) * p.coordScale // octave pixel -> original pixel
		d0 := p.dog[o][l-1]
		d1 := p.dog[o][l]
		d2 := p.dog[o][l+1]
		w, h := d1.W, d1.H
		kps := found[si][:0]
		for y := border; y < h-border; y++ {
			row := d1.Pix[y*w : y*w+w]
			for x := border; x < w-border; x++ {
				v := row[x]
				if math.Abs(float64(v)) < cfg.ContrastThreshold*0.5 {
					continue
				}
				if !isExtremum(d0, d1, d2, x, y, v) {
					continue
				}
				kp, ok := refine(p, o, l, x, y, cfg)
				if !ok {
					continue
				}
				kp.X *= scale
				kp.Y *= scale
				kp.Sigma *= scale
				kps = append(kps, kp)
			}
		}
		found[si] = kps
	})

	kps := a.kps[:0]
	for _, f := range found {
		kps = append(kps, f...)
	}
	a.kps = kps
	return kps
}

// isExtremum reports whether d1(x,y)=v is a strict maximum or minimum over
// its 26 scale-space neighbors. Callers guarantee (x, y) is at least one
// pixel inside the image, so neighbors are read without border clamping.
//
//texlint:hotpath
func isExtremum(d0, d1, d2 *texture.Image, x, y int, v float32) bool {
	w := d1.W
	c := y*w + x
	if v > 0 {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				i := c + dy*w + dx
				if d0.Pix[i] >= v || d2.Pix[i] >= v {
					return false
				}
				if (dx != 0 || dy != 0) && d1.Pix[i] >= v {
					return false
				}
			}
		}
		return true
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			i := c + dy*w + dx
			if d0.Pix[i] <= v || d2.Pix[i] <= v {
				return false
			}
			if (dx != 0 || dy != 0) && d1.Pix[i] <= v {
				return false
			}
		}
	}
	return true
}

// refine performs up to five iterations of 3-D quadratic interpolation to
// locate the extremum to subpixel accuracy, then applies the contrast and
// principal-curvature (edge) tests from Lowe §4 and §4.1.
func refine(p *pyramid, o, l, x, y int, cfg Config) (Keypoint, bool) {
	d := p.dog[o]
	var dx, dy, ds float64
	for iter := 0; iter < 5; iter++ {
		d0, d1, d2 := d[l-1], d[l], d[l+1]
		// (x, y) stays at least 5 pixels inside the image (guarded below),
		// so the 3x3x3 stencil reads the pixel buffers directly.
		w := d1.W
		c := y*w + x
		p0, p1, p2 := d0.Pix, d1.Pix, d2.Pix

		// First derivatives (central differences).
		gx := 0.5 * float64(p1[c+1]-p1[c-1])
		gy := 0.5 * float64(p1[c+w]-p1[c-w])
		gs := 0.5 * float64(p2[c]-p0[c])

		// Second derivatives.
		v := float64(p1[c])
		hxx := float64(p1[c+1]) + float64(p1[c-1]) - 2*v
		hyy := float64(p1[c+w]) + float64(p1[c-w]) - 2*v
		hss := float64(p2[c]) + float64(p0[c]) - 2*v
		hxy := 0.25 * float64(p1[c+w+1]-p1[c+w-1]-p1[c-w+1]+p1[c-w-1])
		hxs := 0.25 * float64(p2[c+1]-p2[c-1]-p0[c+1]+p0[c-1])
		hys := 0.25 * float64(p2[c+w]-p2[c-w]-p0[c+w]+p0[c-w])

		// Solve H·δ = -g with Cramer's rule.
		det := hxx*(hyy*hss-hys*hys) - hxy*(hxy*hss-hys*hxs) + hxs*(hxy*hys-hyy*hxs)
		if math.Abs(det) < 1e-20 {
			return Keypoint{}, false
		}
		dx = -(gx*(hyy*hss-hys*hys) - gy*(hxy*hss-hys*hxs) + gs*(hxy*hys-hyy*hxs)) / det
		dy = -(hxx*(gy*hss-gs*hys) - hxy*(gx*hss-gs*hxs) + hxs*(gx*hys-gy*hxs)) / det
		ds = -(hxx*(hyy*gs-hys*gy) - hxy*(hxy*gs-hys*gx) + hxs*(hxy*gy-hyy*gx)) / det

		if math.Abs(dx) < 0.5 && math.Abs(dy) < 0.5 && math.Abs(ds) < 0.5 {
			// Converged: contrast test on the interpolated value.
			contrast := v + 0.5*(gx*dx+gy*dy+gs*ds)
			if math.Abs(contrast) < cfg.ContrastThreshold {
				return Keypoint{}, false
			}
			// Edge test: ratio of principal curvatures of the 2-D Hessian.
			tr := hxx + hyy
			det2 := hxx*hyy - hxy*hxy
			r := cfg.EdgeThreshold
			if det2 <= 0 || tr*tr*r >= (r+1)*(r+1)*det2 {
				return Keypoint{}, false
			}
			level := float64(l) + ds
			sigma := p.baseSigma * math.Pow(2, level/float64(p.nScales))
			return Keypoint{
				X:        float64(x) + dx,
				Y:        float64(y) + dy,
				Sigma:    sigma,
				Response: math.Abs(contrast),
				Octave:   o,
				Level:    l,
			}, true
		}

		// Step to the neighboring sample and retry.
		x += int(math.Round(dx))
		y += int(math.Round(dy))
		l += int(math.Round(ds))
		if l < 1 || l > len(d)-2 || x < 5 || x >= d[0].W-5 || y < 5 || y >= d[0].H-5 {
			return Keypoint{}, false
		}
	}
	return Keypoint{}, false
}

// orientedSet collects the oriented keypoints spawned by one detection:
// almost always at most a few peaks, stored inline; the rare keypoint with
// more than four ≥80% peaks spills into the (arena-recycled) extra slice.
type orientedSet struct {
	n     int
	kp    [4]Keypoint
	extra []Keypoint
}

// add appends one oriented keypoint, preserving peak order.
func (s *orientedSet) add(k Keypoint) {
	if s.n < len(s.kp) {
		s.kp[s.n] = k
		s.n++
		return
	}
	s.extra = append(s.extra, k)
}

// assignOrientations computes the dominant gradient orientation(s) of each
// keypoint from a 36-bin histogram of gradient angles in a Gaussian-weighted
// neighborhood (Lowe §5). Peaks within 80% of the maximum spawn additional
// keypoints, as in the original algorithm. Keypoints are independent, so
// they are processed in parallel and the per-keypoint results concatenated
// in input order — the output is identical at any GOMAXPROCS. The returned
// slice aliases the arena and must be copied before escaping the
// extraction.
func assignOrientations(p *pyramid, a *arena, kps []Keypoint) []Keypoint {
	const nbins = 36
	for len(a.sets) < len(kps) {
		a.sets = append(a.sets, orientedSet{})
	}
	oriented := a.sets[:len(kps)]
	for i := range oriented {
		oriented[i].n = 0
		oriented[i].extra = oriented[i].extra[:0]
	}
	blas.Parallel(len(kps), func(ki int) {
		kp := kps[ki]
		g := p.gauss[kp.Octave][kp.Level]
		scale := math.Pow(2, float64(kp.Octave)) * p.coordScale
		// Keypoint position in octave coordinates.
		ox := kp.X / scale
		oy := kp.Y / scale
		sigma := 1.5 * kp.Sigma / scale
		radius := int(math.Round(3 * sigma))
		if radius < 1 {
			radius = 1
		}

		var hist [nbins]float64
		xi, yi := int(math.Round(ox)), int(math.Round(oy))
		inv := -0.5 / (sigma * sigma)
		gw, pix := g.W, g.Pix
		for dy := -radius; dy <= radius; dy++ {
			for dx := -radius; dx <= radius; dx++ {
				x, y := xi+dx, yi+dy
				if x < 1 || x >= g.W-1 || y < 1 || y >= g.H-1 {
					continue
				}
				// Interior pixel: read neighbors without border clamping.
				c := y*gw + x
				gx := float64(pix[c+1] - pix[c-1])
				gy := float64(pix[c+gw] - pix[c-gw])
				mag := math.Sqrt(gx*gx + gy*gy)
				ang := math.Atan2(gy, gx) // [-π, π]
				w := math.Exp(float64(dx*dx+dy*dy) * inv)
				bin := int(math.Floor((ang + math.Pi) / (2 * math.Pi) * nbins))
				if bin >= nbins {
					bin = nbins - 1
				}
				hist[bin] += w * mag
			}
		}

		// Smooth the histogram twice with a [1 1 1]/3 box filter.
		for pass := 0; pass < 2; pass++ {
			var sm [nbins]float64
			for i := 0; i < nbins; i++ {
				sm[i] = (hist[(i+nbins-1)%nbins] + hist[i] + hist[(i+1)%nbins]) / 3
			}
			hist = sm
		}

		maxVal := 0.0
		for _, v := range hist {
			if v > maxVal {
				maxVal = v
			}
		}
		if maxVal == 0 {
			return
		}
		for i := 0; i < nbins; i++ {
			prev := hist[(i+nbins-1)%nbins]
			next := hist[(i+1)%nbins]
			if hist[i] <= prev || hist[i] <= next || hist[i] < 0.8*maxVal {
				continue
			}
			// Parabolic peak interpolation.
			offset := 0.5 * (prev - next) / (prev - 2*hist[i] + next)
			angle := (float64(i)+0.5+offset)/nbins*2*math.Pi - math.Pi
			if angle < 0 {
				angle += 2 * math.Pi
			}
			k := kp
			k.Angle = angle
			oriented[ki].add(k)
		}
	})

	out := a.okps[:0]
	for i := range oriented {
		out = append(out, oriented[i].kp[:oriented[i].n]...)
		out = append(out, oriented[i].extra...)
	}
	a.okps = out
	return out
}

// topKByResponse sorts keypoints by descending DoG response and keeps the
// k strongest (k <= 0 keeps all, still sorted). Response ordering is what
// makes the asymmetric extraction of Sec. 7 a simple prefix: reference
// images keep the m strongest features, queries the n strongest, and a
// caller holding a full extraction can trim to any budget by truncation.
func topKByResponse(kps []Keypoint, k int) []Keypoint {
	sort.Slice(kps, func(i, j int) bool {
		if kps[i].Response != kps[j].Response {
			return kps[i].Response > kps[j].Response
		}
		// Deterministic tie-break on position.
		if kps[i].Y != kps[j].Y {
			return kps[i].Y < kps[j].Y
		}
		return kps[i].X < kps[j].X
	})
	if k <= 0 || k >= len(kps) {
		return kps
	}
	return kps[:k]
}
