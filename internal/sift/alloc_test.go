package sift

import (
	"testing"

	"texid/internal/texture"
)

// TestExtractSteadyStateAllocs guards the arena pooling of the
// detection/orientation/descriptor working sets: a steady-state Extract
// allocates only its escaping outputs (descriptor matrix, keypoint slice,
// Features) plus small fixed pyramid bookkeeping — formerly ~1000
// allocations per op, one-plus per keypoint.
func TestExtractSteadyStateAllocs(t *testing.T) {
	im := texture.Generate(42, texture.DefaultGenParams())
	cfg := DefaultConfig()
	cfg.RootSIFT = true

	// Warm the arena pool and the kernel cache.
	Extract(im, cfg)
	Extract(im, cfg)

	allocs := testing.AllocsPerRun(5, func() { Extract(im, cfg) })
	const bound = 200
	if allocs > bound {
		t.Fatalf("steady-state Extract allocates %.0f times per op, want <= %d", allocs, bound)
	}
}
