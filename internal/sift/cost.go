package sift

import "math"

// CostEstimate breaks down the arithmetic work of one extraction, used by
// the verify-cost experiment to reproduce the paper's Sec. 3.3 analysis:
// for one-to-one verification the feature extraction dominates, while for
// one-to-many search the 2-NN matching does (its cost scales with the
// reference count M, extraction's does not).
type CostEstimate struct {
	PyramidFLOPs    float64 // separable Gaussian convolutions + DoG
	DetectFLOPs     float64 // extrema scan + refinement
	DescriptorFLOPs float64 // orientation + descriptor windows
}

// Total returns the summed extraction FLOPs.
func (c CostEstimate) Total() float64 {
	return c.PyramidFLOPs + c.DetectFLOPs + c.DescriptorFLOPs
}

// EstimateCost computes the extraction work for a square image of the
// given side under cfg, assuming nKeypoints survive to the descriptor
// stage. The model counts multiply-adds the same way the 2-NN FLOP count
// does (2 FLOPs per MAC), so the two sides are comparable.
func EstimateCost(side int, cfg Config, nKeypoints int) CostEstimate {
	var est CostEstimate

	w := float64(side)
	if cfg.Upsample {
		w *= 2
	}
	levels := float64(cfg.OctaveScales + 3)

	// Gaussian pyramid: two separable passes per level with ~8·sigma+1
	// taps (sigma ~1.6 average within an octave), per octave at
	// quarter-area steps; plus one subtraction pass per DoG level.
	taps := 8*cfg.Sigma + 1
	area := w * w
	for area >= 16*16 {
		convFLOPs := area * levels * 2 * taps * 2 // 2 passes, 2 FLOPs/tap
		dogFLOPs := area * (levels - 1)
		est.PyramidFLOPs += convFLOPs + dogFLOPs
		// Extrema scan: 26 comparisons per candidate site across the
		// usable DoG levels.
		est.DetectFLOPs += area * (levels - 3) * 26
		area /= 4
	}

	// Descriptors: orientation window (~(12σ)² samples × ~10 FLOPs) plus
	// the 4×4×8 descriptor accumulation (~(24σ)² samples × ~30 FLOPs for
	// gradient, rotation, Gaussian weight, and trilinear scatter), at a
	// representative sigma of 2.
	const sigma = 2.0
	orient := math.Pow(12*sigma, 2) * 10
	desc := math.Pow(24*sigma, 2) * 30
	est.DescriptorFLOPs = float64(nKeypoints) * (orient + desc)
	return est
}

// Match2NNFLOPs is the similarity-matrix work of matching one query
// against M references (2·m·n·d FLOPs per pair).
func Match2NNFLOPs(M, m, n, d int) float64 {
	return float64(M) * 2 * float64(m) * float64(n) * float64(d)
}
