package sift

import (
	"math"

	"texid/internal/blas"
	"texid/internal/texture"
)

// Config holds the extractor parameters. The zero value is not usable; use
// DefaultConfig.
type Config struct {
	// Sigma is the base blur of the first scale-space level (Lowe: 1.6).
	Sigma float64
	// InitialBlur is the blur assumed already present in the input image
	// (Lowe: 0.5).
	InitialBlur float64
	// OctaveScales is the number of sampled intervals per octave (Lowe: 3).
	OctaveScales int
	// MaxOctaves caps the pyramid depth; 0 means as deep as the image
	// allows.
	MaxOctaves int
	// Upsample doubles the input image before building the pyramid
	// (Lowe's "-1 octave"). Fine pressed-leaf detail lives at 1–3 px, so
	// this roughly quadruples the keypoint yield on texture images.
	Upsample bool
	// ContrastThreshold rejects low-contrast extrema, on images scaled to
	// [0, 1] (Lowe uses 0.03).
	ContrastThreshold float64
	// EdgeThreshold is the maximum ratio of principal curvatures (Lowe: 10).
	EdgeThreshold float64
	// MaxFeatures keeps only the strongest keypoints by DoG response;
	// 0 keeps all. The paper extracts 768 features per image by default and
	// studies reducing the reference side to 384 (Table 7).
	MaxFeatures int
	// RootSIFT applies the Hellinger-kernel transform after extraction:
	// L1-normalize, element-wise square root. RootSIFT descriptors have
	// unit L2 norm, which lets the 2-NN pipeline drop the N_R/N_Q terms
	// (Algorithm 2).
	RootSIFT bool
}

// DefaultConfig returns Lowe's standard parameters with the paper's default
// feature budget.
func DefaultConfig() Config {
	return Config{
		Sigma:             1.6,
		InitialBlur:       0.5,
		OctaveScales:      3,
		Upsample:          true,
		ContrastThreshold: 0.006,
		EdgeThreshold:     10,
		MaxFeatures:       768,
		RootSIFT:          false,
	}
}

// Features is the output of extraction: a d×N descriptor matrix (one
// descriptor per column, matching the paper's feature-matrix layout) plus
// the keypoint geometry needed for geometric verification.
type Features struct {
	Descriptors *blas.Matrix // DescriptorDim × len(Keypoints)
	Keypoints   []Keypoint
}

// Count returns the number of extracted features.
func (f *Features) Count() int { return len(f.Keypoints) }

// Extract runs the full SIFT pipeline on im.
func Extract(im *texture.Image, cfg Config) *Features {
	a := arenaPool.Get().(*arena)
	p := buildPyramidArena(a, im, cfg)
	kps := detectExtrema(p, a, cfg)
	kps = assignOrientations(p, a, kps)
	kps = topKByResponse(kps, cfg.MaxFeatures)

	// Descriptors are independent per keypoint and each writes its own
	// column, so compute them in parallel — output is identical at any
	// GOMAXPROCS.
	desc := blas.NewMatrix(DescriptorDim, len(kps))
	blas.Parallel(len(kps), func(i int) {
		computeDescriptorInto(p, kps[i], desc.Col(i))
	})
	// kps aliases the arena's pooled buffers; the escaping copy is the one
	// fresh keypoint allocation per extraction. The descriptor matrix never
	// aliases pyramid storage, so the levels can be recycled immediately.
	out := make([]Keypoint, len(kps))
	copy(out, kps)
	p.release(a)
	arenaPool.Put(a)
	f := &Features{Descriptors: desc, Keypoints: out}
	if cfg.RootSIFT {
		ApplyRootSIFT(f.Descriptors)
	}
	return f
}

// ExtractBatch runs Extract on every image, processing images concurrently
// (one worker per image via the blas worker pool). Each image's extraction
// is fully independent and internally deterministic, so out[i] is bitwise
// identical to Extract(ims[i], cfg) at any GOMAXPROCS. A nil entry yields a
// nil entry.
func ExtractBatch(ims []*texture.Image, cfg Config) []*Features {
	out := make([]*Features, len(ims))
	blas.Parallel(len(ims), func(i int) {
		if ims[i] != nil {
			out[i] = Extract(ims[i], cfg)
		}
	})
	return out
}

// ApplyRootSIFT transforms descriptors in place: each column is
// L1-normalized and square-rooted element-wise. The Euclidean distance
// between RootSIFT vectors equals the Hellinger-kernel distance between the
// original SIFT histograms, and every transformed vector has unit L2 norm —
// so ρ²(r, q) = 2 − 2·rᵀq, eliminating Algorithm 1's norm vectors.
func ApplyRootSIFT(desc *blas.Matrix) {
	for j := 0; j < desc.Cols; j++ {
		col := desc.Col(j)
		var l1 float64
		for _, v := range col {
			l1 += math.Abs(float64(v))
		}
		if l1 == 0 {
			continue
		}
		inv := 1 / l1
		for i, v := range col {
			col[i] = float32(math.Sqrt(math.Abs(float64(v)) * inv))
		}
	}
}

// ExtractAsymmetric extracts reference features with budget m and query
// features with budget n from the same configuration, implementing the
// asymmetric extraction of Sec. 7. It returns the adjusted configs.
func ExtractAsymmetric(cfg Config, m, n int) (refCfg, queryCfg Config) {
	refCfg = cfg
	refCfg.MaxFeatures = m
	queryCfg = cfg
	queryCfg.MaxFeatures = n
	return refCfg, queryCfg
}
