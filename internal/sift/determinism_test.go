package sift

import (
	"reflect"
	"runtime"
	"testing"

	"texid/internal/texture"
)

// gomaxprocsVariants is the GOMAXPROCS sweep the determinism tests run
// under: serial, minimal parallelism, and everything the machine has.
func gomaxprocsVariants() []int {
	vs := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		vs = append(vs, n)
	}
	return vs
}

// TestExtractBitwiseAcrossGOMAXPROCS verifies that the parallel pyramid,
// detection, orientation, and descriptor stages keep extraction bitwise
// reproducible no matter how many workers run the blocks.
func TestExtractBitwiseAcrossGOMAXPROCS(t *testing.T) {
	im := testImage(11)
	cfg := testConfig()
	cfg.RootSIFT = true
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var want *Features
	for _, procs := range gomaxprocsVariants() {
		runtime.GOMAXPROCS(procs)
		f := Extract(im, cfg)
		if want == nil {
			want = f
			continue
		}
		if !reflect.DeepEqual(want.Keypoints, f.Keypoints) {
			t.Fatalf("GOMAXPROCS=%d: keypoints differ from serial run", procs)
		}
		for i, v := range f.Descriptors.Data {
			if v != want.Descriptors.Data[i] {
				t.Fatalf("GOMAXPROCS=%d: descriptor word %d = %x, want %x",
					procs, i, v, want.Descriptors.Data[i])
			}
		}
	}
}

// TestExtractBatchMatchesExtract verifies that the batched entry point is
// exactly per-image extraction: same keypoints, same descriptor bits, nil
// images passed through as nil.
func TestExtractBatchMatchesExtract(t *testing.T) {
	cfg := testConfig()
	ims := []*texture.Image{testImage(21), nil, testImage(22), testImage(23)}
	got := ExtractBatch(ims, cfg)
	if len(got) != len(ims) {
		t.Fatalf("ExtractBatch returned %d entries for %d images", len(got), len(ims))
	}
	for i, im := range ims {
		if im == nil {
			if got[i] != nil {
				t.Fatalf("entry %d: non-nil features for nil image", i)
			}
			continue
		}
		want := Extract(im, cfg)
		if !reflect.DeepEqual(want.Keypoints, got[i].Keypoints) {
			t.Fatalf("entry %d: keypoints differ from Extract", i)
		}
		for j, v := range got[i].Descriptors.Data {
			if v != want.Descriptors.Data[j] {
				t.Fatalf("entry %d: descriptor word %d differs from Extract", i, j)
			}
		}
	}
}
