// Package sift implements the SIFT local-feature pipeline used by the
// texture-identification system: Gaussian scale-space construction,
// difference-of-Gaussians keypoint detection with subpixel refinement,
// contrast and edge-response filtering, orientation assignment, 128-D
// descriptor extraction in the OpenCV norm-512 convention, and the RootSIFT
// transform (Arandjelović & Zisserman) that the paper adopts so the 2-NN
// distance computation simplifies to Algorithm 2.
//
// The implementation follows Lowe's 2004 paper. It is a from-scratch
// substitute for the OpenCV SIFT extractor used by the authors; descriptor
// statistics (non-negative histograms, L2 norm 512) match OpenCV's, which
// is what drives the FP16 scale-factor behaviour studied in Table 2.
package sift

import (
	"math"

	"texid/internal/texture"
)

// pyramid holds the Gaussian and DoG scale-space of one image.
type pyramid struct {
	nOctaves   int
	nScales    int // intervals per octave (s); each octave has s+3 Gaussian levels
	gauss      [][]*texture.Image
	dog        [][]*texture.Image
	sigmas     []float64 // per-level blur within an octave
	baseSigma  float64
	coordScale float64 // octave-0 pixel -> original pixel (0.5 when upsampled)
}

// gaussianKernel returns a normalized 1-D Gaussian kernel for the given
// sigma, truncated at 4 sigma.
func gaussianKernel(sigma float64) []float32 {
	if sigma <= 0 {
		return []float32{1}
	}
	radius := int(math.Ceil(4 * sigma))
	if radius < 1 {
		radius = 1
	}
	k := make([]float32, 2*radius+1)
	var sum float64
	inv := -0.5 / (sigma * sigma)
	for i := -radius; i <= radius; i++ {
		v := math.Exp(float64(i*i) * inv)
		k[i+radius] = float32(v)
		sum += v
	}
	for i := range k {
		k[i] = float32(float64(k[i]) / sum)
	}
	return k
}

// blur applies a separable Gaussian blur.
func blur(im *texture.Image, sigma float64) *texture.Image {
	if sigma <= 0 {
		return im.Clone()
	}
	k := gaussianKernel(sigma)
	radius := len(k) / 2

	tmp := texture.NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var s float32
			for i := -radius; i <= radius; i++ {
				s += k[i+radius] * im.At(x+i, y)
			}
			tmp.Pix[y*im.W+x] = s
		}
	}
	out := texture.NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var s float32
			for i := -radius; i <= radius; i++ {
				s += k[i+radius] * tmp.At(x, y+i)
			}
			out.Pix[y*im.W+x] = s
		}
	}
	return out
}

// downsample halves the image by taking every other pixel, as in Lowe's
// pyramid construction (the source is already blurred past the Nyquist rate).
func downsample(im *texture.Image) *texture.Image {
	w, h := im.W/2, im.H/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := texture.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = im.At(2*x, 2*y)
		}
	}
	return out
}

// subtract returns a-b pixel-wise; the images must have equal dimensions.
func subtract(a, b *texture.Image) *texture.Image {
	out := texture.NewImage(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = a.Pix[i] - b.Pix[i]
	}
	return out
}

// upsample2x doubles the image with bilinear interpolation (Lowe's
// "-1 octave" base).
func upsample2x(im *texture.Image) *texture.Image {
	out := texture.NewImage(im.W*2, im.H*2)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			out.Pix[y*out.W+x] = im.Bilinear(float64(x)/2, float64(y)/2)
		}
	}
	return out
}

// buildPyramid constructs the Gaussian and DoG scale spaces.
func buildPyramid(im *texture.Image, cfg Config) *pyramid {
	s := cfg.OctaveScales
	levels := s + 3

	coordScale := 1.0
	initialBlur := cfg.InitialBlur
	if cfg.Upsample {
		im = upsample2x(im)
		coordScale = 0.5
		initialBlur *= 2 // upsampling doubles the assumed camera blur
	}

	// Number of octaves: stop when the octave base is smaller than 16 px.
	minSide := im.W
	if im.H < minSide {
		minSide = im.H
	}
	nOct := 1
	for side := minSide / 2; side >= 16; side /= 2 {
		nOct++
	}
	if cfg.MaxOctaves > 0 && nOct > cfg.MaxOctaves {
		nOct = cfg.MaxOctaves
	}

	p := &pyramid{
		nOctaves:   nOct,
		nScales:    s,
		gauss:      make([][]*texture.Image, nOct),
		dog:        make([][]*texture.Image, nOct),
		sigmas:     make([]float64, levels),
		baseSigma:  cfg.Sigma,
		coordScale: coordScale,
	}

	// Per-level incremental blurs: level i has total blur sigma·2^(i/s);
	// sigmas[i] is the incremental blur applied on top of level i-1.
	k := math.Pow(2, 1/float64(s))
	p.sigmas[0] = cfg.Sigma
	prev := cfg.Sigma
	for i := 1; i < levels; i++ {
		total := cfg.Sigma * math.Pow(k, float64(i))
		p.sigmas[i] = math.Sqrt(total*total - prev*prev)
		prev = total
	}

	// Base image: assume the camera already applied InitialBlur; add the
	// difference needed to reach Sigma.
	base := im
	if cfg.Sigma > initialBlur {
		base = blur(im, math.Sqrt(cfg.Sigma*cfg.Sigma-initialBlur*initialBlur))
	} else {
		base = im.Clone()
	}

	for o := 0; o < nOct; o++ {
		p.gauss[o] = make([]*texture.Image, levels)
		if o == 0 {
			p.gauss[o][0] = base
		} else {
			// Level s of the previous octave has blur 2·sigma, the right
			// starting point after downsampling.
			p.gauss[o][0] = downsample(p.gauss[o-1][s])
		}
		for i := 1; i < levels; i++ {
			p.gauss[o][i] = blur(p.gauss[o][i-1], p.sigmas[i])
		}
		p.dog[o] = make([]*texture.Image, levels-1)
		for i := 0; i < levels-1; i++ {
			p.dog[o][i] = subtract(p.gauss[o][i+1], p.gauss[o][i])
		}
	}
	return p
}
