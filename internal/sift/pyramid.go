// Package sift implements the SIFT local-feature pipeline used by the
// texture-identification system: Gaussian scale-space construction,
// difference-of-Gaussians keypoint detection with subpixel refinement,
// contrast and edge-response filtering, orientation assignment, 128-D
// descriptor extraction in the OpenCV norm-512 convention, and the RootSIFT
// transform (Arandjelović & Zisserman) that the paper adopts so the 2-NN
// distance computation simplifies to Algorithm 2.
//
// The implementation follows Lowe's 2004 paper. It is a from-scratch
// substitute for the OpenCV SIFT extractor used by the authors; descriptor
// statistics (non-negative histograms, L2 norm 512) match OpenCV's, which
// is what drives the FP16 scale-factor behaviour studied in Table 2.
package sift

import (
	"math"
	"sync"

	"texid/internal/blas"
	"texid/internal/texture"
)

// pyramid holds the Gaussian and DoG scale-space of one image.
type pyramid struct {
	nOctaves   int
	nScales    int // intervals per octave (s); each octave has s+3 Gaussian levels
	gauss      [][]*texture.Image
	dog        [][]*texture.Image
	sigmas     []float64 // per-level blur within an octave
	baseSigma  float64
	coordScale float64 // octave-0 pixel -> original pixel (0.5 when upsampled)
}

// arena recycles the scale-space image buffers across extractions. Every
// image taken from it is fully overwritten by its producer (blur,
// downsample, subtract, upsample), so reuse cannot perturb pixel values.
// An arena is not safe for concurrent use; each Extract call owns one.
//
// Beyond the pyramid levels, the arena pools the detection and
// orientation working sets: the per-slab keypoint buffers and their
// concatenations, and the per-keypoint orientation sets. These hold the
// bulk of the extractor's former steady-state allocations (one-plus per
// keypoint); pooling them leaves only the escaping outputs — the
// descriptor matrix and the final keypoint slice — as fresh allocations.
type arena struct {
	free []*texture.Image

	slabs   []slabRef     // DoG slab list
	slabKps [][]Keypoint  // per-slab detection results
	kps     []Keypoint    // detection concatenation
	sets    []orientedSet // per-keypoint orientation scratch
	okps    []Keypoint    // orientation concatenation
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// get returns a w×h image with undefined contents, reusing a free buffer
// when one is large enough. A nil arena always allocates.
func (a *arena) get(w, h int) *texture.Image {
	if a == nil {
		return texture.NewImage(w, h)
	}
	need := w * h
	for i, im := range a.free {
		if cap(im.Pix) >= need {
			last := len(a.free) - 1
			a.free[i] = a.free[last]
			a.free = a.free[:last]
			im.W, im.H, im.Pix = w, h, im.Pix[:need]
			return im
		}
	}
	return texture.NewImage(w, h)
}

// put returns an image to the arena for reuse.
func (a *arena) put(im *texture.Image) {
	if a == nil || im == nil {
		return
	}
	a.free = append(a.free, im)
}

// release returns every pyramid level to the arena. The pyramid must not be
// used afterwards.
func (p *pyramid) release(a *arena) {
	for o := range p.gauss {
		for _, im := range p.gauss[o] {
			a.put(im)
		}
		for _, im := range p.dog[o] {
			a.put(im)
		}
	}
	p.gauss, p.dog = nil, nil
}

// kernelCache memoizes gaussianKernel per sigma: the pyramid re-derives the
// same handful of incremental sigmas for every image, so each kernel is
// computed once per process. Cached kernels are shared read-only.
var kernelCache sync.Map // float64 -> []float32

// gaussianKernel returns a normalized 1-D Gaussian kernel for the given
// sigma, truncated at 4 sigma. The returned slice is shared and must not be
// modified.
func gaussianKernel(sigma float64) []float32 {
	if sigma <= 0 {
		return []float32{1}
	}
	if v, ok := kernelCache.Load(sigma); ok {
		return v.([]float32)
	}
	radius := int(math.Ceil(4 * sigma))
	if radius < 1 {
		radius = 1
	}
	k := make([]float32, 2*radius+1)
	var sum float64
	inv := -0.5 / (sigma * sigma)
	for i := -radius; i <= radius; i++ {
		v := math.Exp(float64(i*i) * inv)
		k[i+radius] = float32(v)
		sum += v
	}
	for i := range k {
		k[i] = float32(float64(k[i]) / sum)
	}
	v, _ := kernelCache.LoadOrStore(sigma, k)
	return v.([]float32)
}

// rowBlock is the unit of parallel work in the blur passes: a fixed-size run
// of image rows, so the partition depends only on the image height (never on
// worker count) and every pixel keeps its sequential accumulation order.
const rowBlock = 32

// blur applies a separable Gaussian blur.
func blur(im *texture.Image, sigma float64) *texture.Image {
	return blurArena(nil, im, sigma)
}

// BlurImage exposes the separable Gaussian blur for benchmarks and tools.
func BlurImage(im *texture.Image, sigma float64) *texture.Image {
	return blur(im, sigma)
}

// blurArena is blur drawing its two image buffers from a. Both passes
// parallelize over fixed row blocks; interior pixels take a slice-indexed
// fast path while border pixels keep the clamped At lookup, accumulating in
// the same tap order either way, so the result is bitwise identical to the
// straightforward nested-loop filter at any GOMAXPROCS.
func blurArena(a *arena, im *texture.Image, sigma float64) *texture.Image {
	if sigma <= 0 {
		out := a.get(im.W, im.H)
		copy(out.Pix, im.Pix)
		return out
	}
	k := gaussianKernel(sigma)
	radius := len(k) / 2
	W, H := im.W, im.H

	// Horizontal pass: tmp[y][x] = sum_i k[i]·im[y][x-r+i].
	tmp := a.get(W, H)
	blas.Parallel((H+rowBlock-1)/rowBlock, func(b int) {
		for y := b * rowBlock; y < min((b+1)*rowBlock, H); y++ {
			row := im.Pix[y*W : y*W+W]
			dst := tmp.Pix[y*W : y*W+W]
			lo, hi := radius, W-radius
			if hi < lo {
				lo, hi = W, W // kernel wider than the row: clamp everywhere
			}
			for x := 0; x < lo; x++ {
				var s float32
				for i := -radius; i <= radius; i++ {
					s += k[i+radius] * im.At(x+i, y)
				}
				dst[x] = s
			}
			for x := lo; x < hi; x++ {
				src := row[x-radius : x+radius+1]
				var s float32
				for i, kv := range k {
					s += kv * src[i]
				}
				dst[x] = s
			}
			for x := hi; x < W; x++ {
				var s float32
				for i := -radius; i <= radius; i++ {
					s += k[i+radius] * im.At(x+i, y)
				}
				dst[x] = s
			}
		}
	})

	// Vertical pass: out[y][x] = sum_i k[i]·tmp[y-r+i][x], accumulated
	// row-wise in ascending tap order (the same per-pixel chain as a
	// scalar loop over i) with the source row index clamped at the border.
	out := a.get(W, H)
	blas.Parallel((H+rowBlock-1)/rowBlock, func(b int) {
		for y := b * rowBlock; y < min((b+1)*rowBlock, H); y++ {
			dst := out.Pix[y*W : y*W+W]
			src := tmp.Pix[clampRow(y-radius, H)*W:]
			src = src[:W]
			for x, v := range src {
				dst[x] = k[0] * v
			}
			for i := 1; i < len(k); i++ {
				src := tmp.Pix[clampRow(y-radius+i, H)*W:]
				src = src[:W]
				kv := k[i]
				for x, v := range src {
					dst[x] += kv * v
				}
			}
		}
	})
	a.put(tmp)
	return out
}

// clampRow clamps a row index to [0, h).
//
//texlint:hotpath
func clampRow(y, h int) int {
	if y < 0 {
		return 0
	}
	if y >= h {
		return h - 1
	}
	return y
}

// downsample halves the image by taking every other pixel, as in Lowe's
// pyramid construction (the source is already blurred past the Nyquist rate).
func downsample(im *texture.Image) *texture.Image {
	return downsampleArena(nil, im)
}

func downsampleArena(a *arena, im *texture.Image) *texture.Image {
	w, h := im.W/2, im.H/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := a.get(w, h)
	for y := 0; y < h; y++ {
		src := im.Pix[2*y*im.W:]
		dst := out.Pix[y*w : y*w+w]
		for x := range dst {
			dst[x] = src[2*x]
		}
	}
	return out
}

// subtractArena returns a-b pixel-wise; the images must have equal dimensions.
func subtractArena(ar *arena, a, b *texture.Image) *texture.Image {
	out := ar.get(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = a.Pix[i] - b.Pix[i]
	}
	return out
}

// upsample2x doubles the image with bilinear interpolation (Lowe's
// "-1 octave" base).
func upsample2x(a *arena, im *texture.Image) *texture.Image {
	out := a.get(im.W*2, im.H*2)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			out.Pix[y*out.W+x] = im.Bilinear(float64(x)/2, float64(y)/2)
		}
	}
	return out
}

// buildPyramid constructs the Gaussian and DoG scale spaces.
func buildPyramid(im *texture.Image, cfg Config) *pyramid {
	return buildPyramidArena(nil, im, cfg)
}

// buildPyramidArena is buildPyramid drawing every level from a; the caller
// recycles them with pyramid.release once detection is done.
func buildPyramidArena(a *arena, im *texture.Image, cfg Config) *pyramid {
	s := cfg.OctaveScales
	levels := s + 3

	coordScale := 1.0
	initialBlur := cfg.InitialBlur
	upsampled := false
	if cfg.Upsample {
		im = upsample2x(a, im)
		upsampled = true
		coordScale = 0.5
		initialBlur *= 2 // upsampling doubles the assumed camera blur
	}

	// Number of octaves: stop when the octave base is smaller than 16 px.
	minSide := im.W
	if im.H < minSide {
		minSide = im.H
	}
	nOct := 1
	for side := minSide / 2; side >= 16; side /= 2 {
		nOct++
	}
	if cfg.MaxOctaves > 0 && nOct > cfg.MaxOctaves {
		nOct = cfg.MaxOctaves
	}

	p := &pyramid{
		nOctaves:   nOct,
		nScales:    s,
		gauss:      make([][]*texture.Image, nOct),
		dog:        make([][]*texture.Image, nOct),
		sigmas:     make([]float64, levels),
		baseSigma:  cfg.Sigma,
		coordScale: coordScale,
	}

	// Per-level incremental blurs: level i has total blur sigma·2^(i/s);
	// sigmas[i] is the incremental blur applied on top of level i-1.
	k := math.Pow(2, 1/float64(s))
	p.sigmas[0] = cfg.Sigma
	prev := cfg.Sigma
	for i := 1; i < levels; i++ {
		total := cfg.Sigma * math.Pow(k, float64(i))
		p.sigmas[i] = math.Sqrt(total*total - prev*prev)
		prev = total
	}

	// Base image: assume the camera already applied InitialBlur; add the
	// difference needed to reach Sigma. The pyramid must own its level-0
	// storage (release recycles it), so a non-upsampled, non-blurred input
	// is copied rather than aliased.
	var base *texture.Image
	if cfg.Sigma > initialBlur {
		base = blurArena(a, im, math.Sqrt(cfg.Sigma*cfg.Sigma-initialBlur*initialBlur))
		if upsampled {
			a.put(im)
		}
	} else if upsampled {
		base = im // already arena-owned
	} else {
		base = a.get(im.W, im.H)
		copy(base.Pix, im.Pix)
	}

	for o := 0; o < nOct; o++ {
		p.gauss[o] = make([]*texture.Image, levels)
		if o == 0 {
			p.gauss[o][0] = base
		} else {
			// Level s of the previous octave has blur 2·sigma, the right
			// starting point after downsampling.
			p.gauss[o][0] = downsampleArena(a, p.gauss[o-1][s])
		}
		for i := 1; i < levels; i++ {
			p.gauss[o][i] = blurArena(a, p.gauss[o][i-1], p.sigmas[i])
		}
		p.dog[o] = make([]*texture.Image, levels-1)
		for i := 0; i < levels-1; i++ {
			p.dog[o][i] = subtractArena(a, p.gauss[o][i+1], p.gauss[o][i])
		}
	}
	return p
}
