package gpusim

// Event is a CUDA-style marker on a stream's timeline: Record captures the
// stream's current completion horizon, WaitEvent makes another stream's
// subsequent operations start no earlier than that point, and Elapsed
// measures inter-event simulated time. Events are how real CUDA code
// builds cross-stream dependency graphs (e.g. a dedicated copy stream
// feeding several compute streams); the engine's round-robin issue achieves
// the same overlap implicitly, so events are provided for completeness and
// for downstream users building custom schedules.
type Event struct {
	dev    *Device
	timeUS float64
	set    bool
}

// NewEvent creates an unrecorded event.
func (d *Device) NewEvent() *Event { return &Event{dev: d} }

// Record captures s's current tail: the event "fires" when all work
// enqueued on s so far completes.
func (s *Stream) Record(e *Event) {
	s.dev.mu.Lock()
	defer s.dev.mu.Unlock()
	e.timeUS = s.tailUS
	e.set = true
}

// WaitEvent stalls the stream until the event fires: subsequent operations
// on s start no earlier than the recorded time. Waiting on an unrecorded
// event is a no-op (as in CUDA).
func (s *Stream) WaitEvent(e *Event) {
	s.dev.mu.Lock()
	defer s.dev.mu.Unlock()
	if e.set && e.timeUS > s.tailUS {
		s.tailUS = e.timeUS
	}
}

// TimeUS returns the event's recorded simulated time (0 if unrecorded).
func (e *Event) TimeUS() float64 {
	e.dev.mu.Lock()
	defer e.dev.mu.Unlock()
	return e.timeUS
}

// Elapsed returns the simulated microseconds between two recorded events
// (CUDA's cudaEventElapsedTime).
func (e *Event) Elapsed(since *Event) float64 {
	e.dev.mu.Lock()
	defer e.dev.mu.Unlock()
	return e.timeUS - since.timeUS
}
