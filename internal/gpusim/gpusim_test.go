package gpusim

import (
	"math"
	"sync"
	"testing"
)

// within checks a simulated time against a paper anchor with a relative
// tolerance: the model is calibrated, not copied, so small residuals are
// expected.
func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want)/want > relTol {
		t.Errorf("%s = %.2f, paper anchor %.2f (tolerance %.0f%%)", name, got, want, relTol*100)
	} else {
		t.Logf("%s = %.2f (paper %.2f)", name, got, want)
	}
}

func TestP100CalibrationAnchorsTable1(t *testing.T) {
	s := TeslaP100()
	// Table 1: m=n=768, d=128, batch 1.
	within(t, "FP32 GEMM", s.GemmTimeUS(768, 768, 128, FP32), 35.22, 0.10)
	within(t, "FP16 GEMM", s.GemmTimeUS(768, 768, 128, FP16), 24.92, 0.10)
	within(t, "FP32 top-2 scan", s.Top2ScanTimeUS(768, 768, 1, FP32), 40.20, 0.10)
	within(t, "FP16 top-2 scan", s.Top2ScanTimeUS(768, 768, 1, FP16), 68.32, 0.10)
	within(t, "FP32 insertion sort", s.InsertionSortTimeUS(768, 768, 1, FP32), 221.5, 0.10)
	// Step 4 (add N_R): read+write of the 768×768 FP32 matrix.
	within(t, "add N_R", s.ElementwiseTimeUS(2*768*768*4), 8.94, 0.15)
	// Step 8 (D2H copy of the 2×768 result + indices), pageable memory.
	within(t, "D2H result copy", s.CopyTimeUS(2*768*(4+4), pageable), 47.32, 0.15)
	// Baseline monolithic kernel ≈ total minus D2H and post-processing.
	within(t, "baseline kernel", s.BaselineMatchTimeUS(768, 768, 128), 437, 0.10)
}

const pageable = false

func TestP100CalibrationAnchorsTable3(t *testing.T) {
	s := TeslaP100()
	// Table 3: batch 1024, per-image times.
	within(t, "batched HGEMM/img", s.GemmTimeUS(768*1024, 768, 128, FP16)/1024, 11.58, 0.10)
	within(t, "batched top-2/img", s.Top2ScanTimeUS(768, 768, 1024, FP16)/1024, 3.82, 0.10)
}

func TestTable4Efficiencies(t *testing.T) {
	// Table 4: achieved TFLOPS at batch 1024.
	p100 := TeslaP100()
	v100 := TeslaV100(false)
	v100tc := TeslaV100(true)
	effP := p100.GemmTFLOPS(768*1024, 768, 128, FP16) / p100.PeakTFLOPS(FP16)
	effV := v100.GemmTFLOPS(768*1024, 768, 128, FP16) / v100.PeakTFLOPS(FP16)
	effTC := v100tc.GemmTFLOPS(768*1024, 768, 128, FP16) / v100tc.PeakTFLOPS(FP16)
	within(t, "P100 HGEMM efficiency", effP, 0.679, 0.05)
	within(t, "V100 HGEMM efficiency", effV, 0.657, 0.05)
	within(t, "V100-TC HGEMM efficiency", effTC, 0.282, 0.08)
	if !(effTC < effV && effV < 0.75) {
		t.Errorf("tensor core efficiency should be lowest at this matrix shape")
	}
}

func TestGemmEfficiencyGrowsWithBatch(t *testing.T) {
	s := TeslaP100()
	prev := 0.0
	for _, b := range []int{1, 4, 16, 64, 256, 1024} {
		tf := s.GemmTFLOPS(768*b, 768, 128, FP16)
		if tf <= prev {
			t.Fatalf("TFLOPS not monotonic at batch %d: %.2f <= %.2f", b, tf, prev)
		}
		prev = tf
	}
}

func TestMemoryAccounting(t *testing.T) {
	d := NewDevice(TeslaP100())
	base := d.Allocated()
	if base != TeslaP100().RuntimeOverhead {
		t.Fatalf("fresh device allocated %d, want runtime overhead", base)
	}
	if err := d.Alloc(1 << 30); err != nil {
		t.Fatal(err)
	}
	if d.Allocated() != base+1<<30 {
		t.Fatalf("allocated = %d", d.Allocated())
	}
	if err := d.Alloc(16 << 30); err == nil {
		t.Fatal("over-allocation should fail")
	}
	d.Free(1 << 30)
	if d.Allocated() != base {
		t.Fatalf("after free allocated = %d", d.Allocated())
	}
	if d.PeakAllocated() != base+1<<30 {
		t.Fatalf("peak = %d", d.PeakAllocated())
	}
}

func TestStreamSerializesWithinStream(t *testing.T) {
	d := NewDevice(TeslaP100())
	s := d.NewStream()
	t1 := s.Gemm(768, 768, 128, FP32, nil)
	t2 := s.CopyD2H(1<<20, false, nil)
	if t2 <= t1 {
		t.Fatalf("in-stream ops must serialize: %f then %f", t1, t2)
	}
	want := d.Spec.GemmTimeUS(768, 768, 128, FP32) + d.Spec.CopyTimeUS(1<<20, false)
	if math.Abs(d.Synchronize()-want) > 1e-6 {
		t.Fatalf("device clock %.3f, want %.3f", d.Synchronize(), want)
	}
}

func TestStreamsOverlapCopyAndCompute(t *testing.T) {
	// Two streams: one long copy, one long kernel. They should overlap
	// almost perfectly because they use different engines.
	d := NewDevice(TeslaP100())
	s1 := d.NewStream()
	s2 := d.NewStream()
	copyUS := d.Spec.CopyTimeUS(100<<20, true)
	gemmUS := d.Spec.GemmTimeUS(768*256, 768, 128, FP16)
	s1.CopyH2D(100<<20, true, nil)
	s2.Gemm(768*256, 768, 128, FP16, nil)
	got := d.Synchronize()
	want := math.Max(copyUS, gemmUS)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("overlapped makespan %.1f, want max(%.1f, %.1f)", got, copyUS, gemmUS)
	}
}

func TestEngineContentionSerializes(t *testing.T) {
	// Two streams issuing kernels contend for the single compute engine.
	d := NewDevice(TeslaP100())
	s1 := d.NewStream()
	s2 := d.NewStream()
	g := d.Spec.GemmTimeUS(768, 768, 128, FP32)
	s1.Gemm(768, 768, 128, FP32, nil)
	s2.Gemm(768, 768, 128, FP32, nil)
	if got := d.Synchronize(); math.Abs(got-2*g) > 1e-6 {
		t.Fatalf("contended makespan %.2f, want %.2f", got, 2*g)
	}
}

func TestPipelineApproachesBottleneck(t *testing.T) {
	// Classic software pipelining: with enough streams alternating
	// copy→compute chunks, throughput approaches the slower engine's rate
	// (Table 6's schedule-efficiency climb).
	d := NewDevice(TeslaP100())
	const chunks = 32
	copyBytes := int64(50 << 20)
	copyUS := d.Spec.CopyTimeUS(copyBytes, true)
	gemmUS := d.Spec.GemmTimeUS(768*256, 768, 128, FP16)

	// Serial (one stream).
	s := d.NewStream()
	for i := 0; i < chunks; i++ {
		s.CopyH2D(copyBytes, true, nil)
		s.Gemm(768*256, 768, 128, FP16, nil)
	}
	serial := d.Synchronize()

	// Pipelined (four streams, round-robin).
	d2 := NewDevice(TeslaP100())
	streams := make([]*Stream, 4)
	for i := range streams {
		streams[i] = d2.NewStream()
	}
	for i := 0; i < chunks; i++ {
		st := streams[i%4]
		st.CopyH2D(copyBytes, true, nil)
		st.Gemm(768*256, 768, 128, FP16, nil)
	}
	pipelined := d2.Synchronize()

	bottleneck := math.Max(copyUS, gemmUS) * chunks
	if pipelined >= serial {
		t.Fatalf("pipelining did not help: %.0f >= %.0f", pipelined, serial)
	}
	if (pipelined-bottleneck)/bottleneck > 0.10 {
		t.Fatalf("pipelined %.0f should be within 10%% of bottleneck %.0f", pipelined, bottleneck)
	}
	t.Logf("serial %.0f us, pipelined %.0f us, bottleneck bound %.0f us", serial, pipelined, bottleneck)
}

func TestHostPostDoesNotBlockDevice(t *testing.T) {
	d := NewDevice(TeslaP100())
	s1 := d.NewStream()
	s2 := d.NewStream()
	s1.HostPost(1024, FP16, nil)
	s2.Gemm(768, 768, 128, FP32, nil)
	// The device compute engine is free during s1's host work.
	want := math.Max(d.Spec.HostPostTimeUS(1024, FP16), d.Spec.GemmTimeUS(768, 768, 128, FP32))
	if got := d.Synchronize(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("makespan %.2f, want %.2f", got, want)
	}
}

func TestProfileAccumulates(t *testing.T) {
	d := NewDevice(TeslaP100())
	s := d.NewStream()
	s.Gemm(10, 10, 10, FP32, nil)
	s.Gemm(10, 10, 10, FP32, nil)
	p := d.Profile()
	if p["gemm/fp32"].Count != 2 {
		t.Fatalf("profile count = %d", p["gemm/fp32"].Count)
	}
	if d.ProfileString() == "" {
		t.Fatal("empty profile string")
	}
	d.ResetClock()
	if len(d.Profile()) != 0 {
		t.Fatal("ResetClock should clear the profile")
	}
}

func TestFunctionalPayloadRuns(t *testing.T) {
	d := NewDevice(TeslaP100())
	s := d.NewStream()
	ran := false
	s.Gemm(1, 1, 1, FP32, func() { ran = true })
	if !ran {
		t.Fatal("kernel payload did not execute")
	}
}

func TestConcurrentEnqueueSafe(t *testing.T) {
	d := NewDevice(TeslaP100())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		st := d.NewStream()
		wg.Add(1)
		go func(st *Stream) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				st.Gemm(64, 64, 64, FP16, nil)
				st.CopyH2D(1<<16, true, nil)
			}
		}(st)
	}
	wg.Wait()
	p := d.Profile()
	if p["gemm/fp16"].Count != 800 || p["copy/h2d"].Count != 800 {
		t.Fatalf("lost operations under concurrency: %+v", p)
	}
}

func TestPrecisionHelpers(t *testing.T) {
	if FP32.ElemBytes() != 4 || FP16.ElemBytes() != 2 {
		t.Fatal("ElemBytes wrong")
	}
	if FP32.String() != "fp32" || FP16.String() != "fp16" {
		t.Fatal("String wrong")
	}
}

func TestV100FasterThanP100(t *testing.T) {
	p := TeslaP100()
	v := TeslaV100(false)
	if v.GemmTimeUS(768*1024, 768, 128, FP16) >= p.GemmTimeUS(768*1024, 768, 128, FP16) {
		t.Fatal("V100 should beat P100 on batched HGEMM")
	}
	vtc := TeslaV100(true)
	if vtc.GemmTimeUS(768*1024, 768, 128, FP16) >= v.GemmTimeUS(768*1024, 768, 128, FP16) {
		t.Fatal("tensor cores should beat plain FP16 at batch 1024")
	}
}

func TestJitterMeanOne(t *testing.T) {
	j := Jitter{CopyCoV: 0.45, Seed: 9}
	var sum, sumSq float64
	const n = 20000
	for i := uint64(1); i <= n; i++ {
		f := j.factor(i, 0.45)
		if f <= 0 {
			t.Fatalf("non-positive jitter factor %g", f)
		}
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("jitter mean %g, want ~1 (durations must be unbiased)", mean)
	}
	cov := math.Sqrt(sumSq/n-mean*mean) / mean
	if cov < 0.35 || cov > 0.55 {
		t.Fatalf("jitter CoV %g, want ~0.45", cov)
	}
}

func TestJitterDeterministic(t *testing.T) {
	spec := WithJitter(TeslaP100(), 0.45, 7)
	run := func() float64 {
		d := NewDevice(spec)
		s := d.NewStream()
		for i := 0; i < 50; i++ {
			s.CopyH2D(1<<20, true, nil)
			s.Gemm(768, 768, 128, FP16, nil)
		}
		return d.Synchronize()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("jittered simulation not reproducible: %f vs %f", a, b)
	}
}

func TestJitterZeroIsExact(t *testing.T) {
	spec := TeslaP100() // zero jitter
	d := NewDevice(spec)
	s := d.NewStream()
	s.Gemm(768, 768, 128, FP32, nil)
	want := spec.GemmTimeUS(768, 768, 128, FP32)
	if got := d.Synchronize(); got != want {
		t.Fatalf("zero jitter changed duration: %f vs %f", got, want)
	}
}

func TestHostPostFP16PenaltyOnlyAtBatch1(t *testing.T) {
	s := TeslaP100()
	b1fp32 := s.HostPostTimeUS(1, FP32)
	b1fp16 := s.HostPostTimeUS(1, FP16)
	if b1fp16 <= b1fp32 {
		t.Fatal("FP16 widening penalty missing at batch 1")
	}
	bNfp32 := s.HostPostTimeUS(1024, FP32)
	bNfp16 := s.HostPostTimeUS(1024, FP16)
	if bNfp16 != bNfp32 {
		t.Fatal("batched post-processing should not pay the FP16 penalty (Table 3)")
	}
}

func TestEventCrossStreamDependency(t *testing.T) {
	// Producer copies on stream A; consumer kernel on stream B must not
	// start before the copy completes when synchronized by an event.
	d := NewDevice(TeslaP100())
	a := d.NewStream()
	b := d.NewStream()
	ev := d.NewEvent()

	copyUS := d.Spec.CopyTimeUS(100<<20, true)
	gemmUS := d.Spec.GemmTimeUS(768, 768, 128, FP16)

	a.CopyH2D(100<<20, true, nil)
	a.Record(ev)
	b.WaitEvent(ev)
	end := b.Gemm(768, 768, 128, FP16, nil)

	want := copyUS + gemmUS
	if math.Abs(end-want) > 1e-6 {
		t.Fatalf("synchronized kernel ends at %.1f, want %.1f", end, want)
	}
	if ev.TimeUS() != copyUS {
		t.Fatalf("event time %.1f, want %.1f", ev.TimeUS(), copyUS)
	}
}

func TestEventUnrecordedIsNoOp(t *testing.T) {
	d := NewDevice(TeslaP100())
	s := d.NewStream()
	ev := d.NewEvent()
	s.WaitEvent(ev) // must not stall
	end := s.Gemm(64, 64, 64, FP32, nil)
	if end != d.Spec.GemmTimeUS(64, 64, 64, FP32) {
		t.Fatalf("unrecorded event stalled the stream: %f", end)
	}
}

func TestEventElapsed(t *testing.T) {
	d := NewDevice(TeslaP100())
	s := d.NewStream()
	e1 := d.NewEvent()
	e2 := d.NewEvent()
	s.Record(e1)
	s.Gemm(768, 768, 128, FP32, nil)
	s.Record(e2)
	want := d.Spec.GemmTimeUS(768, 768, 128, FP32)
	if got := e2.Elapsed(e1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Elapsed = %f, want %f", got, want)
	}
}

func TestA100Projection(t *testing.T) {
	a100 := TeslaA100()
	v100 := TeslaV100(true)
	if a100.GemmTimeUS(768*1024, 768, 128, FP16) >= v100.GemmTimeUS(768*1024, 768, 128, FP16) {
		t.Fatal("A100 tensor GEMM should beat V100")
	}
	if a100.MemBytes != 40<<30 {
		t.Fatal("A100 memory wrong")
	}
}
