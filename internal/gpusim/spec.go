// Package gpusim is a functional-plus-timing simulator of the CUDA devices
// the paper runs on (Tesla P100 and V100). Kernels enqueued on simulated
// streams really execute — their Go closures compute actual results on
// actual data — while a discrete-event timeline advances per-device clocks
// using an analytical cost model (compute-efficiency curves for GEMM,
// occupancy/bandwidth curves for the top-2 scan, DMA engines for PCIe
// transfers). Streams contend for shared engines (compute, H2D copy, D2H
// copy), which is what makes copy/compute overlap and the PCIe bottleneck
// emergent behaviours rather than hard-coded answers.
//
// Calibration: the per-curve constants below are fitted to the paper's
// anchor measurements (Table 1 step times at batch 1, Table 3 at batch
// 1024, Table 4 HGEMM efficiencies, and the measured 9.4–9.6 GB/s effective
// PCIe bandwidth). Every experiment then *runs* against the model; nothing
// outside this file stores paper numbers.
package gpusim

import "fmt"

// Precision selects the arithmetic path of a simulated kernel.
type Precision int

const (
	FP32 Precision = iota
	FP16
)

func (p Precision) String() string {
	if p == FP32 {
		return "fp32"
	}
	return "fp16"
}

// ElemBytes returns the storage size of one element.
func (p Precision) ElemBytes() int {
	if p == FP32 {
		return 4
	}
	return 2
}

// gemmCurve is a saturating efficiency curve: at total FLOP count w the
// achieved fraction of peak is EffMax·w/(w+WHalf). Small matrices (batch 1)
// sit far below saturation; batched matrices approach EffMax, reproducing
// the data-reuse argument of Sec. 5.2.
type gemmCurve struct {
	PeakTFLOPS float64
	EffMax     float64
	WHalf      float64 // FLOPs at which efficiency reaches EffMax/2
}

func (c gemmCurve) timeUS(flops float64) float64 {
	eff := c.EffMax * flops / (flops + c.WHalf)
	if eff <= 0 {
		return 0
	}
	return flops / (c.PeakTFLOPS * 1e12 * eff) * 1e6
}

// scanCurve models the single-pass top-2 selection: one thread per output
// column scans m candidates. Throughput in elements/s is EMax·occ with
// occ = threads/(threads+THalf): a batch-1 launch (n threads) cannot hide
// memory latency, a batched launch (batch·n threads) saturates the device.
// The result is additionally capped by memory bandwidth.
type scanCurve struct {
	EMaxGElems float64 // saturated element throughput, 1e9 elems/s
	THalf      float64 // threads at which throughput reaches EMax/2
}

func (c scanCurve) timeUS(elems, threads float64, bytes float64, bwGBs float64) float64 {
	occ := threads / (threads + c.THalf)
	t := elems / (c.EMaxGElems * 1e9 * occ) * 1e6
	if bw := bytes / (bwGBs * 1e9) * 1e6; bw > t {
		t = bw
	}
	return t
}

// DeviceSpec describes one GPU model plus the calibrated cost-model
// constants.
type DeviceSpec struct {
	Name string

	// Memory system.
	MemBytes        int64   // device memory capacity
	MemBWGBs        float64 // peak DRAM bandwidth
	MemBWEff        float64 // achievable fraction for streaming elementwise kernels
	RuntimeOverhead int64   // CUDA context + library workspace resident in device memory

	// PCIe link (effective, as measured in the paper's cloud VMs).
	PCIePinnedGBs   float64 // host->device with pinned host memory
	PCIePageableGBs float64 // host->device or device->host with pageable memory
	PCIeLatencyUS   float64 // per-transfer fixed cost (driver + DMA setup)

	// Compute curves.
	GemmFP32   gemmCurve
	GemmFP16   gemmCurve
	TensorCore bool
	GemmTC     gemmCurve // used for FP16 GEMM when TensorCore is true

	// Top-2 selection curves (per element scanned).
	ScanFP32 scanCurve
	ScanFP16 scanCurve
	// InsertionSortFactor is the slowdown of the modified insertion sort
	// used by the reference cuBLAS KNN implementation [Garcia et al.]
	// relative to the single-pass scan: it repeatedly loads and stores the
	// candidate window in device memory instead of keeping it in registers.
	InsertionSortFactor float64

	// BaselineEff is the fraction of FP32 peak achieved by the monolithic
	// OpenCV-CUDA brute-force match kernel (the paper measured 4.4% device
	// utilization for the whole pipeline).
	BaselineEff float64

	// KernelFloorUS is the minimum wall time of any kernel launch
	// (driver + launch latency), applied to small elementwise kernels.
	KernelFloorUS float64

	// HostPostUSPerImage is the CPU-side post-processing time (ratio test,
	// edge removal) per image at batch 1; batching amortizes it by
	// HostPostBatchFactor.
	HostPostUSPerImage  float64
	HostPostBatchFactor float64
	// HostPostFP16Extra multiplies post-processing when results arrive in
	// FP16 and must be widened on the CPU (Table 1 measured +36%).
	HostPostFP16Extra float64

	// Jitter models cloud-VM execution-time variance; zero disables it
	// (micro-benchmark experiments run jitter-free, streaming experiments
	// enable it via WithJitter).
	Jitter Jitter
}

// TeslaP100 returns the 16 GB PCIe Tesla P100 model the paper's single-GPU
// experiments use.
func TeslaP100() DeviceSpec {
	return DeviceSpec{
		Name:            "Tesla P100/16GB",
		MemBytes:        16 << 30,
		MemBWGBs:        732,
		MemBWEff:        0.72,
		RuntimeOverhead: 300 << 20,
		PCIePinnedGBs:   9.4,
		PCIePageableGBs: 5.6,
		PCIeLatencyUS:   40,

		GemmFP32: gemmCurve{PeakTFLOPS: 9.3, EffMax: 0.75, WHalf: 9.46e7},
		GemmFP16: gemmCurve{PeakTFLOPS: 18.7, EffMax: 0.68, WHalf: 1.66e8},

		ScanFP32: scanCurve{EMaxGElems: 264, THalf: 13000},
		ScanFP16: scanCurve{EMaxGElems: 157, THalf: 13000},

		InsertionSortFactor: 5.5,
		BaselineEff:         0.0374,
		KernelFloorUS:       4.5,

		HostPostUSPerImage:  12.6,
		HostPostBatchFactor: 0.305,
		HostPostFP16Extra:   1.36,
	}
}

// TeslaV100 returns the 16 GB Tesla V100 model; withTensorCore selects the
// HMMA path for FP16 GEMM (Table 4's third row).
func TeslaV100(withTensorCore bool) DeviceSpec {
	s := DeviceSpec{
		Name:            "Tesla V100/16GB",
		MemBytes:        16 << 30,
		MemBWGBs:        900,
		MemBWEff:        0.72,
		RuntimeOverhead: 300 << 20,
		PCIePinnedGBs:   9.6,
		PCIePageableGBs: 5.8,
		PCIeLatencyUS:   40,

		GemmFP32: gemmCurve{PeakTFLOPS: 14.0, EffMax: 0.75, WHalf: 1.42e8},
		GemmFP16: gemmCurve{PeakTFLOPS: 28.0, EffMax: 0.66, WHalf: 2.49e8},
		GemmTC:   gemmCurve{PeakTFLOPS: 112.0, EffMax: 0.29, WHalf: 5.54e8},

		ScanFP32: scanCurve{EMaxGElems: 330, THalf: 13000},
		ScanFP16: scanCurve{EMaxGElems: 220, THalf: 13000},

		InsertionSortFactor: 5.5,
		BaselineEff:         0.0374,
		KernelFloorUS:       4.5,

		HostPostUSPerImage:  12.6,
		HostPostBatchFactor: 0.305,
		HostPostFP16Extra:   1.36,
	}
	s.TensorCore = withTensorCore
	if withTensorCore {
		s.Name = "Tesla V100/16GB (tensor core)"
	}
	return s
}

// TeslaA100 returns a 40 GB SXM A100 model — the third FP16-capable card
// the paper names ("such as Tesla P100, V100, and A100"). No paper
// measurements exist for it, so its curves are projected: peak numbers
// from the datasheet (312 TFLOPS FP16 tensor, 1555 GB/s HBM2e, PCIe Gen4),
// achievable-efficiency shapes scaled from the V100 fits (WHalf grows with
// peak: more parallelism needs more work to saturate). The device-projection
// experiment uses it to ask how the pipeline would scale on newer hardware.
func TeslaA100() DeviceSpec {
	return DeviceSpec{
		Name:            "Tesla A100/40GB (projected)",
		MemBytes:        40 << 30,
		MemBWGBs:        1555,
		MemBWEff:        0.75,
		RuntimeOverhead: 300 << 20,
		PCIePinnedGBs:   22, // Gen4 x16 effective
		PCIePageableGBs: 12,
		PCIeLatencyUS:   35,

		GemmFP32: gemmCurve{PeakTFLOPS: 19.5, EffMax: 0.75, WHalf: 1.98e8},
		GemmFP16: gemmCurve{PeakTFLOPS: 78, EffMax: 0.62, WHalf: 6.9e8},
		GemmTC:   gemmCurve{PeakTFLOPS: 312, EffMax: 0.27, WHalf: 1.54e9},

		ScanFP32: scanCurve{EMaxGElems: 560, THalf: 13000},
		ScanFP16: scanCurve{EMaxGElems: 380, THalf: 13000},

		InsertionSortFactor: 5.5,
		BaselineEff:         0.0374,
		KernelFloorUS:       4.0,

		HostPostUSPerImage:  12.6,
		HostPostBatchFactor: 0.305,
		HostPostFP16Extra:   1.36,
		TensorCore:          true,
	}
}

// GemmTimeUS returns the simulated duration of a C = AᵀB kernel with
// A: k×m, B: k×n (2·m·n·k FLOPs).
func (s *DeviceSpec) GemmTimeUS(m, n, k int, prec Precision) float64 {
	flops := 2 * float64(m) * float64(n) * float64(k)
	switch {
	case prec == FP32:
		return s.GemmFP32.timeUS(flops)
	case s.TensorCore:
		return s.GemmTC.timeUS(flops)
	default:
		return s.GemmFP16.timeUS(flops)
	}
}

// GemmTFLOPS returns the achieved TFLOPS of such a kernel, used by the
// GPU-efficiency experiments (Table 4).
func (s *DeviceSpec) GemmTFLOPS(m, n, k int, prec Precision) float64 {
	flops := 2 * float64(m) * float64(n) * float64(k)
	return flops / (s.GemmTimeUS(m, n, k, prec) * 1e-6) / 1e12
}

// PeakTFLOPS returns the theoretical peak for the precision (Table 4's
// denominator).
func (s *DeviceSpec) PeakTFLOPS(prec Precision) float64 {
	switch {
	case prec == FP32:
		return s.GemmFP32.PeakTFLOPS
	case s.TensorCore:
		return s.GemmTC.PeakTFLOPS
	default:
		return s.GemmFP16.PeakTFLOPS
	}
}

// Top2ScanTimeUS returns the simulated duration of the register-resident
// top-2 selection over a (rows·batch)×cols distance matrix: one thread per
// output column (cols·batch threads), each scanning rows elements.
func (s *DeviceSpec) Top2ScanTimeUS(rows, cols, batch int, prec Precision) float64 {
	elems := float64(rows) * float64(cols) * float64(batch)
	threads := float64(cols) * float64(batch)
	bytes := elems * float64(prec.ElemBytes())
	c := s.ScanFP32
	if prec == FP16 {
		c = s.ScanFP16
	}
	t := c.timeUS(elems, threads, bytes, s.MemBWGBs)
	if t < s.KernelFloorUS {
		t = s.KernelFloorUS
	}
	return t
}

// InsertionSortTimeUS models the reference implementation's modified
// insertion sort (Algorithm 1 step 5 before our optimization), which loads
// and stores from device memory on every comparison.
func (s *DeviceSpec) InsertionSortTimeUS(rows, cols, batch int, prec Precision) float64 {
	return s.Top2ScanTimeUS(rows, cols, batch, prec) * s.InsertionSortFactor
}

// ElementwiseTimeUS returns the simulated duration of a streaming
// elementwise kernel touching the given number of bytes (reads + writes).
func (s *DeviceSpec) ElementwiseTimeUS(bytes int64) float64 {
	t := float64(bytes) / (s.MemBWGBs * s.MemBWEff * 1e9) * 1e6
	if t < s.KernelFloorUS {
		t = s.KernelFloorUS
	}
	return t
}

// CopyTimeUS returns the simulated duration of a PCIe transfer.
func (s *DeviceSpec) CopyTimeUS(bytes int64, pinned bool) float64 {
	bw := s.PCIePageableGBs
	if pinned {
		bw = s.PCIePinnedGBs
	}
	return s.PCIeLatencyUS + float64(bytes)/(bw*1e9)*1e6
}

// HammingMatchTimeUS models a binary-descriptor brute-force 2-NN kernel
// (XOR + popcount over W 64-bit words per comparison, top-2 kept in
// registers). Binary matching has no GEMM formulation — cuBLAS and tensor
// cores cannot help — but the raw integer work per pair is ~16x smaller
// than the d=128 FP16 GEMM, so a plain CUDA kernel at a conservative
// fraction of integer peak (we reuse the FP32 peak with BaselineEff-like
// headroom of 30%) is still fast. Used by the descriptor ablation's ORB
// row.
func (s *DeviceSpec) HammingMatchTimeUS(m, n, batch, words int) float64 {
	// XOR + popcount + accumulate ≈ 3 int ops per word, plus the top-2
	// compare chain per candidate.
	ops := float64(batch) * float64(m) * float64(n) * (3*float64(words) + 2)
	const intEff = 0.30
	return ops / (s.GemmFP32.PeakTFLOPS * 1e12 * intEff) * 1e6
}

// BinaryScanTimeUS models the Hamming prefilter scan: every resident code
// (codes of W 64-bit words each) is XOR+popcount-compared against a small
// set of query probe codes, keeping a per-image running sum. With W=2 the
// kernel reads 16 bytes per code once and does probes·(3W+2) integer ops on
// it, so for realistic probe counts it is bandwidth-bound — the time is the
// max of the streaming-read term and the integer-throughput term (same
// conservative 30% of FP32 peak as HammingMatchTimeUS), clamped to the
// kernel launch floor.
func (s *DeviceSpec) BinaryScanTimeUS(codes, probes, words int) float64 {
	bytes := float64(codes) * float64(words) * 8
	bw := bytes / (s.MemBWGBs * s.MemBWEff * 1e9) * 1e6
	ops := float64(codes) * float64(probes) * (3*float64(words) + 2)
	const intEff = 0.30
	compute := ops / (s.GemmFP32.PeakTFLOPS * 1e12 * intEff) * 1e6
	t := bw
	if compute > t {
		t = compute
	}
	if t < s.KernelFloorUS {
		t = s.KernelFloorUS
	}
	return t
}

// BaselineMatchTimeUS models the monolithic OpenCV-CUDA brute-force 2-NN
// kernel for one reference-query pair (m×n distances over k dims).
func (s *DeviceSpec) BaselineMatchTimeUS(m, n, k int) float64 {
	flops := 2 * float64(m) * float64(n) * float64(k)
	return flops / (s.GemmFP32.PeakTFLOPS * 1e12 * s.BaselineEff) * 1e6
}

// HostPostTimeUS returns the CPU post-processing time for a batch of
// images. The FP16 widening penalty (Table 1: +36%) only applies at batch
// 1 — the batched path converts results in bulk, which Table 3's measured
// 3.85 us/image (= 12.6 × 0.305, no FP16 term) confirms.
func (s *DeviceSpec) HostPostTimeUS(batch int, prec Precision) float64 {
	per := s.HostPostUSPerImage
	if batch > 1 {
		per *= s.HostPostBatchFactor
	} else if prec == FP16 {
		per *= s.HostPostFP16Extra
	}
	return per * float64(batch)
}

func (s *DeviceSpec) String() string {
	return fmt.Sprintf("%s (%.0f GB, %.1f/%.1f TFLOPS fp32/fp16)",
		s.Name, float64(s.MemBytes)/(1<<30), s.GemmFP32.PeakTFLOPS, s.PeakTFLOPS(FP16))
}
