package gpusim

import (
	"fmt"
	"sort"
	"sync"
)

// Device is one simulated GPU. All scheduling state is protected by a
// single mutex, so multiple host goroutines (one per stream, as in the
// paper's design) can enqueue work concurrently.
//
// The timing model is a resource-occupancy discrete-event simulation:
// a device owns three engines — compute, H2D copy, D2H copy — that each
// process one operation at a time, plus any number of streams. An operation
// enqueued on a stream starts at max(stream tail, engine free time), which
// yields exactly the semantics the paper exploits in Sec. 6.2: operations
// within one stream serialize, while copies on one stream overlap kernels
// on another until the shared engine saturates.
type Device struct {
	Spec DeviceSpec

	mu sync.Mutex
	//texlint:guards mu
	allocated int64
	//texlint:guards mu
	peakAlloc int64
	// The three engines are mutated only inside schedule/Synchronize/
	// ResetClock under mu, but the Stream kernel wrappers take their
	// addresses unlocked to tell schedule which engine an op occupies —
	// a handoff //texlint:guards cannot express, so the contract is
	// enforced by keeping engine mutation confined to those methods.
	compute engine
	h2d     engine
	d2h     engine
	//texlint:guards mu
	streams []*Stream
	//texlint:guards mu
	prof map[string]*OpStats
	//texlint:guards mu
	opSeq uint64
}

// engine is a serially-reusable resource on the device timeline.
type engine struct {
	freeAtUS float64
}

// OpStats accumulates simulated time per operation kind.
type OpStats struct {
	Count   int
	TotalUS float64
}

// NewDevice creates a device and charges the CUDA runtime overhead against
// its memory.
func NewDevice(spec DeviceSpec) *Device {
	d := &Device{Spec: spec, prof: make(map[string]*OpStats)}
	d.allocated = spec.RuntimeOverhead
	d.peakAlloc = d.allocated
	return d
}

// Alloc reserves device memory, failing when the capacity would be
// exceeded — the condition that forces the hybrid host-memory cache.
func (d *Device) Alloc(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("gpusim: negative allocation %d", bytes)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.allocated+bytes > d.Spec.MemBytes {
		return fmt.Errorf("gpusim: out of device memory: %d + %d > %d",
			d.allocated, bytes, d.Spec.MemBytes)
	}
	d.allocated += bytes
	if d.allocated > d.peakAlloc {
		d.peakAlloc = d.allocated
	}
	return nil
}

// Free releases device memory.
func (d *Device) Free(bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.allocated -= bytes
	if d.allocated < 0 {
		panic("gpusim: double free")
	}
}

// Allocated returns the currently reserved device memory in bytes.
func (d *Device) Allocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocated
}

// PeakAllocated returns the high-water mark of device memory usage.
func (d *Device) PeakAllocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakAlloc
}

// FreeBytes returns the remaining device memory.
func (d *Device) FreeBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Spec.MemBytes - d.allocated
}

// NewStream creates an asynchronous command stream. Each stream also models
// the dedicated host CPU thread the paper pairs with it.
func (d *Device) NewStream() *Stream {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := &Stream{dev: d}
	d.streams = append(d.streams, s)
	return s
}

// Synchronize waits for all streams and returns the device clock in
// simulated microseconds.
func (d *Device) Synchronize() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := 0.0
	for _, s := range d.streams {
		if s.tailUS > now {
			now = s.tailUS
		}
	}
	if d.compute.freeAtUS > now {
		now = d.compute.freeAtUS
	}
	if d.h2d.freeAtUS > now {
		now = d.h2d.freeAtUS
	}
	if d.d2h.freeAtUS > now {
		now = d.d2h.freeAtUS
	}
	return now
}

// ResetClock rewinds the device timeline (between experiments). Memory
// accounting is unaffected.
func (d *Device) ResetClock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.compute.freeAtUS = 0
	d.h2d.freeAtUS = 0
	d.d2h.freeAtUS = 0
	for _, s := range d.streams {
		s.tailUS = 0
	}
	d.prof = make(map[string]*OpStats)
}

// Profile returns a copy of the per-operation time accounting.
func (d *Device) Profile() map[string]OpStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]OpStats, len(d.prof))
	for k, v := range d.prof {
		out[k] = *v
	}
	return out
}

// ProfileString formats the profile sorted by descending total time.
func (d *Device) ProfileString() string {
	prof := d.Profile()
	keys := make([]string, 0, len(prof))
	for k := range prof {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return prof[keys[i]].TotalUS > prof[keys[j]].TotalUS })
	out := ""
	for _, k := range keys {
		s := prof[k]
		out += fmt.Sprintf("%-24s %8d ops %12.1f us\n", k, s.Count, s.TotalUS)
	}
	return out
}

// schedule places an operation of the given duration on a stream and
// engine and returns its completion time. A nil engine means the operation
// only occupies the stream (host-side work on the stream's CPU thread).
// cov is the jitter coefficient of variation for this operation class.
//
//texlint:hotpath
func (d *Device) schedule(s *Stream, e *engine, name string, durUS float64, cov float64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.opSeq++
	durUS *= d.Spec.Jitter.factor(d.opSeq, cov)
	start := s.tailUS
	if e != nil && e.freeAtUS > start {
		start = e.freeAtUS
	}
	end := start + durUS
	s.tailUS = end
	if e != nil {
		e.freeAtUS = end
	}
	st, ok := d.prof[name]
	if !ok {
		st = d.newOpStats(name)
	}
	st.Count++
	st.TotalUS += durUS
	return end
}

// newOpStats creates and registers the profile bucket for an op name.
//
//texlint:coldpath one bucket per distinct op name, created on its first occurrence and amortized across the run
func (d *Device) newOpStats(name string) *OpStats {
	st := &OpStats{}
	d.prof[name] = st
	return st
}

// Stream is an in-order command queue plus its paired host CPU thread.
type Stream struct {
	dev    *Device
	tailUS float64
}

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// TailUS returns the stream's current completion horizon.
func (s *Stream) TailUS() float64 {
	s.dev.mu.Lock()
	defer s.dev.mu.Unlock()
	return s.tailUS
}

// run executes the functional payload (if any) eagerly: simulated results
// are computed for real regardless of where they land on the timeline.
func run(fn func()) {
	if fn != nil {
		fn()
	}
}

// opName returns the precomputed profile key "<family>/<precision>".
// Keeping these as constants (rather than concatenating per call) keeps the
// per-op scheduling path allocation-free.
func opName(fp32, fp16 string, prec Precision) string {
	if prec == FP16 {
		return fp16
	}
	return fp32
}

// Gemm enqueues a C = AᵀB kernel (A: k×m, B: k×n) on the compute engine.
func (s *Stream) Gemm(m, n, k int, prec Precision, fn func()) float64 {
	run(fn)
	return s.dev.schedule(s, &s.dev.compute, opName("gemm/fp32", "gemm/fp16", prec), s.dev.Spec.GemmTimeUS(m, n, k, prec), s.dev.kernelCoV())
}

// Top2Scan enqueues the register-resident top-2 selection over a
// (rows)×(cols·batch) distance matrix.
func (s *Stream) Top2Scan(rows, cols, batch int, prec Precision, fn func()) float64 {
	run(fn)
	return s.dev.schedule(s, &s.dev.compute, opName("top2scan/fp32", "top2scan/fp16", prec), s.dev.Spec.Top2ScanTimeUS(rows, cols, batch, prec), s.dev.kernelCoV())
}

// InsertionSort enqueues the reference implementation's modified insertion
// sort (the pre-optimization Algorithm 1 step 5).
func (s *Stream) InsertionSort(rows, cols, batch int, prec Precision, fn func()) float64 {
	run(fn)
	return s.dev.schedule(s, &s.dev.compute, opName("insertionsort/fp32", "insertionsort/fp16", prec), s.dev.Spec.InsertionSortTimeUS(rows, cols, batch, prec), s.dev.kernelCoV())
}

// Elementwise enqueues a streaming kernel touching the given bytes. op is
// the full profile key (e.g. "elementwise/addNR"); callers pass constants
// so the scheduling path performs no string concatenation.
func (s *Stream) Elementwise(op string, bytes int64, fn func()) float64 {
	run(fn)
	return s.dev.schedule(s, &s.dev.compute, op, s.dev.Spec.ElementwiseTimeUS(bytes), s.dev.kernelCoV())
}

// BinaryScan enqueues the Hamming prefilter scan (codes packed binary
// codes × probes query codes) on the compute engine.
func (s *Stream) BinaryScan(codes, probes, words int, fn func()) float64 {
	run(fn)
	return s.dev.schedule(s, &s.dev.compute, "binscan", s.dev.Spec.BinaryScanTimeUS(codes, probes, words), s.dev.kernelCoV())
}

// BaselineMatch enqueues the monolithic OpenCV-CUDA brute-force 2-NN
// kernel for one image pair.
func (s *Stream) BaselineMatch(m, n, k int, fn func()) float64 {
	run(fn)
	return s.dev.schedule(s, &s.dev.compute, "baseline-match", s.dev.Spec.BaselineMatchTimeUS(m, n, k), s.dev.kernelCoV())
}

// CopyH2D enqueues a host-to-device transfer on the H2D DMA engine.
func (s *Stream) CopyH2D(bytes int64, pinned bool, fn func()) float64 {
	run(fn)
	return s.dev.schedule(s, &s.dev.h2d, "copy/h2d", s.dev.Spec.CopyTimeUS(bytes, pinned), s.dev.Spec.Jitter.CopyCoV)
}

// CopyD2H enqueues a device-to-host transfer on the D2H DMA engine.
// Result copies use pageable host memory, as in the paper's measurement.
func (s *Stream) CopyD2H(bytes int64, pinned bool, fn func()) float64 {
	run(fn)
	return s.dev.schedule(s, &s.dev.d2h, "copy/d2h", s.dev.Spec.CopyTimeUS(bytes, pinned), s.dev.Spec.Jitter.CopyCoV)
}

// HostPost enqueues CPU post-processing (ratio test, edge removal) on the
// stream's dedicated host thread: it occupies the stream but no device
// engine.
func (s *Stream) HostPost(batch int, prec Precision, fn func()) float64 {
	run(fn)
	return s.dev.schedule(s, nil, "host/post", s.dev.Spec.HostPostTimeUS(batch, prec), 0)
}

// kernelCoV is the jitter coefficient of variation for compute kernels:
// one quarter of the copy CoV (kernel times are far more stable than PCIe
// transfers in a shared VM).
func (d *Device) kernelCoV() float64 { return d.Spec.Jitter.CopyCoV / 4 }
