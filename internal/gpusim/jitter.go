package gpusim

import "math"

// Jitter models the execution-time variance the paper's cloud VMs exhibit
// (shared PCIe fabric, driver scheduling, VM preemption). Operation
// durations are multiplied by a deterministic, mean-one lognormal factor
// derived from the operation's issue index, so simulations remain
// reproducible. Jitter is what keeps low-stream-count pipelines from
// overlapping perfectly: a late copy leaves the DMA engine idle, and only
// additional concurrent streams (statistical multiplexing) win the
// bandwidth back — the schedule-efficiency climb of Table 6.
//
// CopyCoV applies to PCIe transfers (the noisiest resource in a cloud VM);
// kernels receive one quarter of that coefficient of variation.
type Jitter struct {
	CopyCoV float64
	Seed    uint64
}

// WithJitter returns a copy of the spec with jitter enabled.
func WithJitter(spec DeviceSpec, copyCoV float64, seed uint64) DeviceSpec {
	spec.Jitter = Jitter{CopyCoV: copyCoV, Seed: seed}
	return spec
}

// factor returns the duration multiplier for the n-th jittered operation.
func (j Jitter) factor(n uint64, cov float64) float64 {
	if cov <= 0 {
		return 1
	}
	// lognormal with E[F] = 1: F = exp(sigma·z - sigma²/2) where
	// sigma² = ln(1+cov²).
	sigma := math.Sqrt(math.Log(1 + cov*cov))
	z := gaussFromHash(n*0x9E3779B97F4A7C15 ^ j.Seed)
	return math.Exp(sigma*z - sigma*sigma/2)
}

// gaussFromHash produces an approximately standard-normal value from a
// 64-bit hash (sum of four uniforms, scaled).
func gaussFromHash(h uint64) float64 {
	var sum float64
	for i := 0; i < 4; i++ {
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		h *= 0xC4CEB9FE1A85EC53
		sum += float64(h>>11) / float64(1<<53)
	}
	// Var(sum of 4 U(0,1)) = 1/3; normalize to unit variance.
	return (sum - 2) * math.Sqrt(3)
}
