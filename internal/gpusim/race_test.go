package gpusim

import (
	"sync"
	"testing"
)

// TestConcurrentStreamsAndObservers mixes per-stream enqueues with the
// observer surface (Synchronize, TailUS, Profile, memory accounting) the
// engine touches from other goroutines. Under -race this is the
// simulator's thread-safety gate; the count assertions catch lost updates
// regardless of the detector.
func TestConcurrentStreamsAndObservers(t *testing.T) {
	d := NewDevice(TeslaV100(true))
	const streams, ops = 6, 50
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		st := d.NewStream()
		wg.Add(1)
		go func(st *Stream) {
			defer wg.Done()
			for j := 0; j < ops; j++ {
				st.CopyH2D(1<<14, true, nil)
				st.Gemm(32, 32, 32, FP16, nil)
				st.CopyD2H(1<<12, false, nil)
				_ = st.TailUS()
			}
		}(st)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			_ = d.Synchronize()
			_ = d.Profile()
			if err := d.Alloc(1 << 10); err == nil {
				d.Free(1 << 10)
			}
			_ = d.Allocated()
		}
	}()
	wg.Wait()

	p := d.Profile()
	want := streams * ops
	for _, name := range []string{"copy/h2d", "gemm/fp16", "copy/d2h"} {
		if p[name].Count != want {
			t.Fatalf("%s: %d ops recorded, want %d", name, p[name].Count, want)
		}
	}
	if d.Synchronize() <= 0 {
		t.Fatal("device clock did not advance")
	}
	if d.Allocated() != d.Spec.RuntimeOverhead {
		t.Fatalf("leaked %d bytes of device memory beyond the runtime overhead",
			d.Allocated()-d.Spec.RuntimeOverhead)
	}
}
