// Package cbir implements the content-based image retrieval baseline the
// paper contrasts texture identification against (Sec. 2): instead of
// matching the query against every reference image separately (the paper's
// one-by-one 2-NN), CBIR engines pool the features of ALL reference images
// into a single index; each query feature votes for the reference image
// that owns its nearest pooled neighbor. Faiss-style engines additionally
// compress the pooled features with product quantization (PQ) to reach
// billion scale.
//
// The paper's argument — reproduced by the "cbir" experiment — is that the
// pooled/compressed computation pattern trades away exactly the
// fine-grained discrimination texture identification needs: under PQ
// compression the vote histogram flattens and top-1 accuracy drops, while
// the paper's per-image matching keeps full feature fidelity at FP16 cost.
package cbir

import (
	"fmt"
	"math"

	"texid/internal/blas"
	"texid/internal/match"
)

// Index is an exact pooled-feature index (the uncompressed CBIR baseline).
type Index struct {
	dim   int
	pool  []float32 // column-major pooled descriptors
	owner []int32   // pooled column -> reference id
}

// NewIndex creates an empty pooled index for descriptors of the given
// dimension.
func NewIndex(dim int) *Index {
	if dim <= 0 {
		panic(fmt.Sprintf("cbir: invalid dimension %d", dim))
	}
	return &Index{dim: dim}
}

// Add pools the feature matrix (dim×k) of one reference image.
func (ix *Index) Add(id int, feats *blas.Matrix) error {
	if feats.Rows != ix.dim {
		return fmt.Errorf("cbir: features are %d-dimensional, index wants %d", feats.Rows, ix.dim)
	}
	for j := 0; j < feats.Cols; j++ {
		ix.pool = append(ix.pool, feats.Col(j)...)
		ix.owner = append(ix.owner, int32(id))
	}
	return nil
}

// Size returns the number of pooled features.
func (ix *Index) Size() int { return len(ix.owner) }

// Bytes returns the memory footprint of the pooled descriptors (FP32).
func (ix *Index) Bytes() int64 { return int64(len(ix.pool)) * 4 }

// Search runs the CBIR retrieval: every query feature finds its nearest and
// second-nearest pooled neighbors (a single global 2-NN — this is the
// "only single nearest neighbor across all the features" pattern of
// Sec. 2); features passing the ratio test vote for the owning reference.
// Results are vote counts per reference, ranked.
func (ix *Index) Search(query *blas.Matrix, ratio float64) []match.SearchResult {
	votes := map[int]int{}
	for j := 0; j < query.Cols; j++ {
		q := query.Col(j)
		best, second := float32(math.MaxFloat32), float32(math.MaxFloat32)
		bestOwner := int32(-1)
		for c := 0; c < len(ix.owner); c++ {
			cand := ix.pool[c*ix.dim : c*ix.dim+ix.dim]
			var d float32
			for i, v := range q {
				diff := v - cand[i]
				d += diff * diff
			}
			if d < best {
				// Lowe's ratio in the pooled setting compares against the
				// nearest neighbor from a *different* image, so repeated
				// structure within the true image does not suppress votes.
				if ix.owner[c] != bestOwner {
					second = best
				}
				best = d
				bestOwner = ix.owner[c]
			} else if d < second && ix.owner[c] != bestOwner {
				second = d
			}
		}
		if bestOwner >= 0 && float64(math.Sqrt(float64(best))) < ratio*float64(math.Sqrt(float64(second))) {
			votes[int(bestOwner)]++
		}
	}
	out := make([]match.SearchResult, 0, len(votes))
	for id, v := range votes {
		out = append(out, match.SearchResult{RefID: id, Score: v})
	}
	return match.RankResults(out)
}
