package cbir

import (
	"math"
	"math/rand"
	"testing"

	"texid/internal/blas"
)

// cluster builds a feature matrix whose columns are noisy copies of a
// per-image prototype set, giving each "image" a distinctive signature.
func clusterFeatures(rng *rand.Rand, protos *blas.Matrix, sigma float32) *blas.Matrix {
	out := protos.Clone()
	for j := 0; j < out.Cols; j++ {
		col := out.Col(j)
		var s float64
		for i := range col {
			col[i] += (rng.Float32()*2 - 1) * sigma
			if col[i] < 0 {
				col[i] = 0
			}
			s += float64(col[i]) * float64(col[i])
		}
		f := float32(1 / math.Sqrt(s))
		for i := range col {
			col[i] *= f
		}
	}
	return out
}

func randomUnit(rng *rand.Rand, d, n int) *blas.Matrix {
	m := blas.NewMatrix(d, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		var s float64
		for i := range col {
			col[i] = rng.Float32()
			s += float64(col[i]) * float64(col[i])
		}
		f := float32(1 / math.Sqrt(s))
		for i := range col {
			col[i] *= f
		}
	}
	return m
}

func TestExactIndexIdentifies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, k := 16, 20
	ix := NewIndex(d)
	protos := make([]*blas.Matrix, 5)
	for id := range protos {
		protos[id] = randomUnit(rng, d, k)
		if err := ix.Add(id, protos[id]); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Size() != 5*k {
		t.Fatalf("pooled %d features", ix.Size())
	}
	query := clusterFeatures(rng, protos[3], 0.02)
	res := ix.Search(query, 0.8)
	if len(res) == 0 || res[0].RefID != 3 {
		t.Fatalf("exact CBIR failed: %v", res)
	}
	if res[0].Score < k/2 {
		t.Fatalf("too few votes: %d", res[0].Score)
	}
}

func TestExactIndexDimensionCheck(t *testing.T) {
	ix := NewIndex(8)
	if err := ix.Add(0, blas.NewMatrix(9, 2)); err == nil {
		t.Fatal("wrong dimension accepted")
	}
}

func TestPQTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := randomUnit(rng, 16, 50)
	if _, err := TrainPQ(train, PQConfig{Subspaces: 3, Centroids: 8, KMeansIters: 2}); err == nil {
		t.Fatal("non-divisible subspaces accepted")
	}
	if _, err := TrainPQ(train, PQConfig{Subspaces: 4, Centroids: 300}); err == nil {
		t.Fatal("over-wide codebook accepted")
	}
	if _, err := TrainPQ(train, PQConfig{Subspaces: 4, Centroids: 100, KMeansIters: 2}); err == nil {
		t.Fatal("too few training vectors accepted")
	}
}

func TestPQIdentifiesAndCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, k := 16, 24
	protos := make([]*blas.Matrix, 6)
	var trainCols [][]float32
	for id := range protos {
		protos[id] = randomUnit(rng, d, k)
		for j := 0; j < k; j++ {
			trainCols = append(trainCols, protos[id].Col(j))
		}
	}
	train := blas.FromColumns(d, trainCols)
	cfg := PQConfig{Subspaces: 4, Centroids: 32, KMeansIters: 10, Seed: 7}
	ix, err := TrainPQ(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := range protos {
		if err := ix.Add(id, protos[id]); err != nil {
			t.Fatal(err)
		}
	}
	// Compression: 4 bytes per descriptor vs 64 bytes FP32.
	if ix.Bytes() != int64(ix.Size()*cfg.Subspaces) {
		t.Fatalf("code bytes %d for %d features", ix.Bytes(), ix.Size())
	}
	query := clusterFeatures(rng, protos[2], 0.01)
	res := ix.Search(query, 0.9)
	if len(res) == 0 || res[0].RefID != 2 {
		t.Fatalf("PQ CBIR failed: %v", res)
	}
}

func TestPQLosesDiscriminationVsExact(t *testing.T) {
	// The paper's Sec. 2 point, in miniature: under heavy quantization the
	// ratio test passes fewer query features (vote counts shrink) than the
	// exact pooled index.
	rng := rand.New(rand.NewSource(4))
	d, k := 16, 24
	protos := make([]*blas.Matrix, 8)
	exact := NewIndex(d)
	var trainCols [][]float32
	for id := range protos {
		protos[id] = randomUnit(rng, d, k)
		exact.Add(id, protos[id])
		for j := 0; j < k; j++ {
			trainCols = append(trainCols, protos[id].Col(j))
		}
	}
	// A very coarse quantizer (2 subspaces, 8 centroids) to make the
	// effect unmistakable at this tiny scale.
	pq, err := TrainPQ(blas.FromColumns(d, trainCols), PQConfig{Subspaces: 2, Centroids: 8, KMeansIters: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for id := range protos {
		pq.Add(id, protos[id])
	}
	exactVotes, pqVotes := 0, 0
	for trial := 0; trial < 4; trial++ {
		q := clusterFeatures(rng, protos[trial], 0.05)
		if r := exact.Search(q, 0.8); len(r) > 0 && r[0].RefID == trial {
			exactVotes += r[0].Score
		}
		if r := pq.Search(q, 0.8); len(r) > 0 && r[0].RefID == trial {
			pqVotes += r[0].Score
		}
	}
	if pqVotes >= exactVotes {
		t.Fatalf("coarse PQ should lose votes vs exact: pq=%d exact=%d", pqVotes, exactVotes)
	}
	t.Logf("true-image votes: exact %d, coarse PQ %d", exactVotes, pqVotes)
}

func TestPQDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := randomUnit(rng, 8, 64)
	cfg := PQConfig{Subspaces: 2, Centroids: 16, KMeansIters: 5, Seed: 9}
	a, _ := TrainPQ(train, cfg)
	b, _ := TrainPQ(train, cfg)
	for s := range a.codebooks {
		for i := range a.codebooks[s] {
			if a.codebooks[s][i] != b.codebooks[s][i] {
				t.Fatal("training not deterministic")
			}
		}
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := NewIndex(8)
	if res := ix.Search(randomUnit(rng, 8, 4), 0.8); len(res) != 0 {
		t.Fatalf("empty exact index returned %v", res)
	}
	pq, _ := TrainPQ(randomUnit(rng, 8, 32), PQConfig{Subspaces: 2, Centroids: 8, KMeansIters: 2, Seed: 1})
	if res := pq.Search(randomUnit(rng, 8, 4), 0.8); len(res) != 0 {
		t.Fatalf("empty PQ index returned %v", res)
	}
}
