package cbir

import (
	"fmt"
	"math"
	"math/rand"

	"texid/internal/blas"
	"texid/internal/match"
)

// PQConfig configures a product quantizer (Jégou et al., the compression
// behind Faiss's billion-scale indexes).
type PQConfig struct {
	// Subspaces (M) splits the descriptor into M contiguous sub-vectors,
	// each quantized independently; the code is M bytes.
	Subspaces int
	// Centroids (K) per subspace codebook; 256 keeps one byte per code.
	Centroids int
	// KMeansIters bounds the Lloyd iterations during training.
	KMeansIters int
	// Seed makes training deterministic.
	Seed int64
}

// DefaultPQConfig returns the common 8-byte-per-descriptor configuration.
func DefaultPQConfig() PQConfig {
	return PQConfig{Subspaces: 8, Centroids: 256, KMeansIters: 12, Seed: 1}
}

// PQIndex is a pooled index with product-quantized descriptors.
type PQIndex struct {
	cfg    PQConfig
	dim    int
	subDim int
	// codebooks[s] is Centroids×subDim, row-major per centroid.
	codebooks [][]float32
	codes     []uint8 // len = Subspaces per pooled feature
	owner     []int32
}

// TrainPQ learns codebooks from a training sample (dim×n matrix of
// descriptors) with per-subspace k-means, seeded from cfg.Seed.
func TrainPQ(train *blas.Matrix, cfg PQConfig) (*PQIndex, error) {
	return TrainPQRand(train, cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// TrainPQRand is TrainPQ with an explicit generator: k-means seeding and
// empty-centroid re-seeding draw from rng, so identically seeded
// generators reproduce the same codebooks bit for bit.
func TrainPQRand(train *blas.Matrix, cfg PQConfig, rng *rand.Rand) (*PQIndex, error) {
	if cfg.Subspaces <= 0 || cfg.Centroids <= 1 || cfg.Centroids > 256 {
		return nil, fmt.Errorf("cbir: invalid PQ config %+v", cfg)
	}
	if train.Rows%cfg.Subspaces != 0 {
		return nil, fmt.Errorf("cbir: dimension %d not divisible by %d subspaces", train.Rows, cfg.Subspaces)
	}
	if train.Cols < cfg.Centroids {
		return nil, fmt.Errorf("cbir: %d training vectors for %d centroids", train.Cols, cfg.Centroids)
	}
	ix := &PQIndex{cfg: cfg, dim: train.Rows, subDim: train.Rows / cfg.Subspaces}
	for s := 0; s < cfg.Subspaces; s++ {
		ix.codebooks = append(ix.codebooks, kmeans(train, s*ix.subDim, ix.subDim, cfg.Centroids, cfg.KMeansIters, rng))
	}
	return ix, nil
}

// kmeans runs Lloyd's algorithm on the sub-vectors train[offset:offset+subDim, :].
func kmeans(train *blas.Matrix, offset, subDim, k, iters int, rng *rand.Rand) []float32 {
	n := train.Cols
	cent := make([]float32, k*subDim)
	// k-means++ style seeding simplified: random distinct columns.
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		col := train.Col(perm[c%n])
		copy(cent[c*subDim:(c+1)*subDim], col[offset:offset+subDim])
	}
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*subDim)
	for it := 0; it < iters; it++ {
		changed := 0
		for j := 0; j < n; j++ {
			v := train.Col(j)[offset : offset+subDim]
			best, bestD := 0, float32(math.MaxFloat32)
			for c := 0; c < k; c++ {
				cv := cent[c*subDim : (c+1)*subDim]
				var d float32
				for i := range v {
					diff := v[i] - cv[i]
					d += diff * diff
				}
				if d < bestD {
					bestD = d
					best = c
				}
			}
			if assign[j] != best {
				changed++
				assign[j] = best
			}
		}
		for i := range sums {
			sums[i] = 0
		}
		for c := range counts {
			counts[c] = 0
		}
		for j := 0; j < n; j++ {
			c := assign[j]
			counts[c]++
			v := train.Col(j)[offset : offset+subDim]
			for i := range v {
				sums[c*subDim+i] += float64(v[i])
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty centroid from a random vector.
				col := train.Col(rng.Intn(n))
				copy(cent[c*subDim:(c+1)*subDim], col[offset:offset+subDim])
				continue
			}
			for i := 0; i < subDim; i++ {
				cent[c*subDim+i] = float32(sums[c*subDim+i] / float64(counts[c]))
			}
		}
		if changed == 0 {
			break
		}
	}
	return cent
}

// encode quantizes one descriptor to its M-byte code.
func (ix *PQIndex) encode(v []float32) []uint8 {
	code := make([]uint8, ix.cfg.Subspaces)
	for s := 0; s < ix.cfg.Subspaces; s++ {
		sub := v[s*ix.subDim : (s+1)*ix.subDim]
		cb := ix.codebooks[s]
		best, bestD := 0, float32(math.MaxFloat32)
		for c := 0; c < ix.cfg.Centroids; c++ {
			cv := cb[c*ix.subDim : (c+1)*ix.subDim]
			var d float32
			for i := range sub {
				diff := sub[i] - cv[i]
				d += diff * diff
			}
			if d < bestD {
				bestD = d
				best = c
			}
		}
		code[s] = uint8(best)
	}
	return code
}

// Add pools and quantizes one reference image's features.
func (ix *PQIndex) Add(id int, feats *blas.Matrix) error {
	if feats.Rows != ix.dim {
		return fmt.Errorf("cbir: features are %d-dimensional, index wants %d", feats.Rows, ix.dim)
	}
	for j := 0; j < feats.Cols; j++ {
		ix.codes = append(ix.codes, ix.encode(feats.Col(j))...)
		ix.owner = append(ix.owner, int32(id))
	}
	return nil
}

// Size returns the number of pooled features.
func (ix *PQIndex) Size() int { return len(ix.owner) }

// Bytes returns the compressed footprint (codes only, as Faiss reports).
func (ix *PQIndex) Bytes() int64 { return int64(len(ix.codes)) }

// Search runs asymmetric-distance (ADC) retrieval: a per-query lookup
// table of query-subvector-to-centroid distances turns each candidate
// distance into M table lookups. Votes use the same cross-image ratio test
// as the exact index.
func (ix *PQIndex) Search(query *blas.Matrix, ratio float64) []match.SearchResult {
	if len(ix.owner) == 0 {
		return nil
	}
	M, K, sd := ix.cfg.Subspaces, ix.cfg.Centroids, ix.subDim
	table := make([]float32, M*K)
	votes := map[int]int{}
	for j := 0; j < query.Cols; j++ {
		q := query.Col(j)
		for s := 0; s < M; s++ {
			sub := q[s*sd : (s+1)*sd]
			cb := ix.codebooks[s]
			for c := 0; c < K; c++ {
				cv := cb[c*sd : (c+1)*sd]
				var d float32
				for i := range sub {
					diff := sub[i] - cv[i]
					d += diff * diff
				}
				table[s*K+c] = d
			}
		}
		best, second := float32(math.MaxFloat32), float32(math.MaxFloat32)
		bestOwner := int32(-1)
		for f := 0; f < len(ix.owner); f++ {
			code := ix.codes[f*M : (f+1)*M]
			var d float32
			for s, c := range code {
				d += table[s*K+int(c)]
			}
			if d < best {
				if ix.owner[f] != bestOwner {
					second = best
				}
				best = d
				bestOwner = ix.owner[f]
			} else if d < second && ix.owner[f] != bestOwner {
				second = d
			}
		}
		if bestOwner >= 0 && math.Sqrt(float64(best)) < ratio*math.Sqrt(float64(second)) {
			votes[int(bestOwner)]++
		}
	}
	out := make([]match.SearchResult, 0, len(votes))
	for id, v := range votes {
		out = append(out, match.SearchResult{RefID: id, Score: v})
	}
	return match.RankResults(out)
}
