package cbir

import (
	"math/rand"
	"testing"
)

func TestTrainPQRandReproducible(t *testing.T) {
	train := randomUnit(rand.New(rand.NewSource(3)), 8, 32)
	cfg := PQConfig{Subspaces: 2, Centroids: 4, KMeansIters: 4, Seed: 5}
	a, err := TrainPQRand(train, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainPQRand(train, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.codebooks {
		for i := range a.codebooks[s] {
			if a.codebooks[s][i] != b.codebooks[s][i] {
				t.Fatalf("codebook %d entry %d differs between identically seeded generators", s, i)
			}
		}
	}
}

func TestTrainPQMatchesSeededRand(t *testing.T) {
	train := randomUnit(rand.New(rand.NewSource(3)), 8, 32)
	cfg := PQConfig{Subspaces: 2, Centroids: 4, KMeansIters: 4, Seed: 9}
	a, err := TrainPQ(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainPQRand(train, cfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.codebooks {
		for i := range a.codebooks[s] {
			if a.codebooks[s][i] != b.codebooks[s][i] {
				t.Fatal("TrainPQ must equal TrainPQRand with a cfg.Seed-seeded generator")
			}
		}
	}
}
