// Package cache implements the hybrid two-level feature cache of Sec. 6:
// GPU memory is the first-level cache and the much larger host memory the
// second level, managed FIFO — new reference batches enter GPU memory and
// the oldest GPU-resident batch is swapped out to the host when the GPU
// budget fills. The swap granularity is an entire batch, matching the
// batched GEMM layout. Host-resident batches are streamed to the device on
// every search (the engine overlaps those copies with compute using
// multiple streams).
package cache

import (
	"errors"
	"fmt"
)

// Location says which memory level currently holds a batch.
type Location int

const (
	OnGPU Location = iota
	OnHost
)

func (l Location) String() string {
	if l == OnGPU {
		return "gpu"
	}
	return "host"
}

// ErrCapacity is returned when neither level can hold a new batch.
var ErrCapacity = errors.New("cache: hybrid cache capacity exceeded")

// Item is one cached reference batch.
type Item struct {
	ID      int
	Bytes   int64
	Loc     Location
	Payload any
}

// Hybrid is the two-level FIFO cache. It tracks budgets and locations;
// the owner supplies an eviction callback that releases the batch's device
// memory when it is demoted to the host level.
type Hybrid struct {
	gpuBudget  int64
	hostBudget int64
	gpuUsed    int64
	hostUsed   int64
	gpuFIFO    []*Item // oldest first
	order      []*Item // insertion order of all items (stable iteration)
	items      map[int]*Item
	onDemote   func(*Item)
}

// New creates a hybrid cache with the given per-level byte budgets.
// onDemote (may be nil) is invoked when an item moves from GPU to host.
func New(gpuBudget, hostBudget int64, onDemote func(*Item)) *Hybrid {
	return &Hybrid{
		gpuBudget:  gpuBudget,
		hostBudget: hostBudget,
		items:      make(map[int]*Item),
		onDemote:   onDemote,
	}
}

// Add enqueues a new batch. It is placed in GPU memory; if the GPU budget
// would overflow, the oldest GPU-resident batches are demoted to host
// memory first. Returns ErrCapacity when the batch fits in neither level.
func (h *Hybrid) Add(id int, bytes int64, payload any) (*Item, error) {
	if _, dup := h.items[id]; dup {
		return nil, fmt.Errorf("cache: duplicate batch id %d", id)
	}
	if bytes > h.gpuBudget {
		return nil, fmt.Errorf("cache: batch of %d bytes exceeds the GPU budget %d", bytes, h.gpuBudget)
	}
	for h.gpuUsed+bytes > h.gpuBudget {
		if err := h.demoteOldest(); err != nil {
			return nil, err
		}
	}
	it := &Item{ID: id, Bytes: bytes, Loc: OnGPU, Payload: payload}
	h.items[id] = it
	h.order = append(h.order, it)
	h.gpuFIFO = append(h.gpuFIFO, it)
	h.gpuUsed += bytes
	return it, nil
}

// demoteOldest moves the oldest GPU-resident batch to the host level.
func (h *Hybrid) demoteOldest() error {
	if len(h.gpuFIFO) == 0 {
		return ErrCapacity
	}
	it := h.gpuFIFO[0]
	if h.hostUsed+it.Bytes > h.hostBudget {
		return ErrCapacity
	}
	h.gpuFIFO = h.gpuFIFO[1:]
	it.Loc = OnHost
	h.gpuUsed -= it.Bytes
	h.hostUsed += it.Bytes
	if h.onDemote != nil {
		h.onDemote(it)
	}
	return nil
}

// Get returns the item with the given id, or nil.
func (h *Hybrid) Get(id int) *Item { return h.items[id] }

// Remove deletes an item from the cache, returning its former location.
// Removing an unknown id is a no-op and returns false.
func (h *Hybrid) Remove(id int) (Location, bool) {
	it, ok := h.items[id]
	if !ok {
		return 0, false
	}
	delete(h.items, id)
	h.order = removeItem(h.order, it)
	if it.Loc == OnGPU {
		h.gpuFIFO = removeItem(h.gpuFIFO, it)
		h.gpuUsed -= it.Bytes
	} else {
		h.hostUsed -= it.Bytes
	}
	return it.Loc, true
}

func removeItem(s []*Item, it *Item) []*Item {
	for i, v := range s {
		if v == it {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Items returns all cached items in insertion order.
func (h *Hybrid) Items() []*Item { return append([]*Item(nil), h.order...) }

// AppendItems appends all cached items in insertion order to dst and
// returns the extended slice. Search loops pass a recycled buffer so the
// steady-state snapshot allocates nothing.
func (h *Hybrid) AppendItems(dst []*Item) []*Item {
	return append(dst, h.order...) //texlint:ignore hotalloc grows only when batches sealed since the caller's last search; steady state reuses the caller's buffer at full capacity
}

// Stats summarizes cache occupancy.
type Stats struct {
	GPUUsed, GPUBudget   int64
	HostUsed, HostBudget int64
	GPUItems, HostItems  int
}

// Stats returns the current occupancy.
func (h *Hybrid) Stats() Stats {
	s := Stats{
		GPUUsed: h.gpuUsed, GPUBudget: h.gpuBudget,
		HostUsed: h.hostUsed, HostBudget: h.hostBudget,
	}
	for _, it := range h.items {
		if it.Loc == OnGPU {
			s.GPUItems++
		} else {
			s.HostItems++
		}
	}
	return s
}

// CapacityBytes returns the total cache capacity across both levels — the
// paper's headline "5× larger memory capacity" is simply
// (GPU budget + host budget) / GPU budget.
func (h *Hybrid) CapacityBytes() int64 { return h.gpuBudget + h.hostBudget }

// CapacityImages converts the total capacity to a number of reference
// images of the given per-image footprint.
func (h *Hybrid) CapacityImages(bytesPerImage int64) int64 {
	if bytesPerImage <= 0 {
		return 0
	}
	return h.CapacityBytes() / bytesPerImage
}
