package cache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Hybrid is externally synchronized by design (the engine serializes all
// cache access under its own mutex). This stress test mirrors that usage:
// a mutex-guarded wrapper hammered from many goroutines, with the FIFO
// budget invariants checked on every observation. Under -race it verifies
// the locking discipline is sufficient; without it, that concurrent churn
// never corrupts the occupancy accounting.
func TestHybridConcurrentUnderLock(t *testing.T) {
	const gpuBudget, hostBudget, itemBytes = 8 * 64, 32 * 64, 64
	var mu sync.Mutex
	demoted := 0
	h := New(gpuBudget, hostBudget, func(*Item) { demoted++ })

	checkInvariants := func(s Stats) error {
		if s.GPUUsed < 0 || s.GPUUsed > s.GPUBudget {
			return fmt.Errorf("GPU occupancy %d outside [0, %d]", s.GPUUsed, s.GPUBudget)
		}
		if s.HostUsed < 0 || s.HostUsed > s.HostBudget {
			return fmt.Errorf("host occupancy %d outside [0, %d]", s.HostUsed, s.HostBudget)
		}
		if int64(s.GPUItems)*itemBytes != s.GPUUsed || int64(s.HostItems)*itemBytes != s.HostUsed {
			return fmt.Errorf("item counts disagree with occupancy: %+v", s)
		}
		return nil
	}

	const workers, opsPer = 6, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * opsPer
			for j := 0; j < opsPer; j++ {
				id := base + j
				mu.Lock()
				_, err := h.Add(id, itemBytes, nil)
				if err != nil && !errors.Is(err, ErrCapacity) {
					mu.Unlock()
					errs <- err
					return
				}
				if it := h.Get(id); err == nil && it == nil {
					mu.Unlock()
					errs <- fmt.Errorf("id %d missing right after Add", id)
					return
				}
				serr := checkInvariants(h.Stats())
				if j%3 == 0 {
					h.Remove(id)
				}
				mu.Unlock()
				if serr != nil {
					errs <- serr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if err := checkInvariants(h.Stats()); err != nil {
		t.Fatal(err)
	}
	if len(h.Items()) != len(h.items) {
		t.Fatalf("Items() returned %d entries, index holds %d", len(h.Items()), len(h.items))
	}
	if demoted == 0 {
		t.Fatal("expected FIFO demotions under GPU-budget pressure")
	}
}
