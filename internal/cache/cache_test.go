package cache

import (
	"testing"
	"testing/quick"
)

func TestAddStaysOnGPUWithinBudget(t *testing.T) {
	h := New(100, 1000, nil)
	for i := 0; i < 4; i++ {
		it, err := h.Add(i, 25, nil)
		if err != nil {
			t.Fatal(err)
		}
		if it.Loc != OnGPU {
			t.Fatalf("item %d on %v", i, it.Loc)
		}
	}
	s := h.Stats()
	if s.GPUUsed != 100 || s.GPUItems != 4 || s.HostItems != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFIFODemotion(t *testing.T) {
	demoted := []int{}
	h := New(100, 1000, func(it *Item) { demoted = append(demoted, it.ID) })
	for i := 0; i < 6; i++ {
		if _, err := h.Add(i, 25, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Adding 6 items of 25 into a 100-byte GPU: items 0 and 1 demote, in
	// FIFO order.
	if len(demoted) != 2 || demoted[0] != 0 || demoted[1] != 1 {
		t.Fatalf("demotions %v, want [0 1]", demoted)
	}
	if h.Get(0).Loc != OnHost || h.Get(5).Loc != OnGPU {
		t.Fatal("locations wrong after demotion")
	}
	s := h.Stats()
	if s.GPUUsed != 100 || s.HostUsed != 50 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCapacityExceeded(t *testing.T) {
	h := New(50, 50, nil)
	if _, err := h.Add(0, 50, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Add(1, 50, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Add(2, 50, nil); err != ErrCapacity {
		t.Fatalf("want ErrCapacity, got %v", err)
	}
	// A single batch larger than the whole GPU is rejected outright.
	if _, err := h.Add(3, 51, nil); err == nil {
		t.Fatal("oversized batch must be rejected")
	}
}

func TestDuplicateID(t *testing.T) {
	h := New(100, 100, nil)
	h.Add(7, 10, nil)
	if _, err := h.Add(7, 10, nil); err == nil {
		t.Fatal("duplicate id must error")
	}
}

func TestRemove(t *testing.T) {
	h := New(50, 100, nil)
	h.Add(0, 25, nil)
	h.Add(1, 25, nil)
	h.Add(2, 25, nil) // demotes 0
	loc, ok := h.Remove(0)
	if !ok || loc != OnHost {
		t.Fatalf("Remove(0) = %v, %v", loc, ok)
	}
	loc, ok = h.Remove(2)
	if !ok || loc != OnGPU {
		t.Fatalf("Remove(2) = %v, %v", loc, ok)
	}
	if _, ok := h.Remove(99); ok {
		t.Fatal("removing unknown id should report false")
	}
	s := h.Stats()
	if s.GPUUsed != 25 || s.HostUsed != 0 {
		t.Fatalf("stats after removes %+v", s)
	}
	// Freed GPU space is reusable without demotion.
	if _, err := h.Add(3, 25, nil); err != nil {
		t.Fatal(err)
	}
	if h.Get(1).Loc != OnGPU {
		t.Fatal("item 1 should still be on GPU")
	}
}

func TestItemsInsertionOrder(t *testing.T) {
	h := New(1000, 1000, nil)
	for i := 0; i < 5; i++ {
		h.Add(i*10, 1, nil)
	}
	items := h.Items()
	for i, it := range items {
		if it.ID != i*10 {
			t.Fatalf("order[%d] = %d", i, it.ID)
		}
	}
}

func TestCapacityMath(t *testing.T) {
	// The paper's configuration: 16 GB GPU + 64 GB host = 5× capacity.
	gpu := int64(16) << 30
	host := int64(64) << 30
	h := New(gpu, host, nil)
	if h.CapacityBytes() != gpu+host {
		t.Fatal("capacity bytes wrong")
	}
	ratio := float64(h.CapacityBytes()) / float64(gpu)
	if ratio != 5 {
		t.Fatalf("hybrid/GPU capacity ratio = %g, want 5", ratio)
	}
	// FP16 768-feature matrices: 768·128·2 bytes each.
	per := int64(768 * 128 * 2)
	imgs := h.CapacityImages(per)
	if imgs < 420_000 || imgs > 440_000 {
		t.Fatalf("capacity %d images, want ~427k", imgs)
	}
	if h.CapacityImages(0) != 0 {
		t.Fatal("zero-byte image capacity must be 0")
	}
}

func TestPropertyInvariants(t *testing.T) {
	// Whatever the add/remove sequence, used bytes per level never exceed
	// budgets and GPU items sum to gpuUsed.
	f := func(ops []uint8) bool {
		h := New(64, 256, nil)
		id := 0
		live := map[int]bool{}
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				// remove an arbitrary live id
				for k := range live {
					h.Remove(k)
					delete(live, k)
					break
				}
			} else {
				sz := int64(op%32) + 1
				if _, err := h.Add(id, sz, nil); err == nil {
					live[id] = true
				}
				id++
			}
			s := h.Stats()
			if s.GPUUsed > s.GPUBudget || s.HostUsed > s.HostBudget || s.GPUUsed < 0 || s.HostUsed < 0 {
				return false
			}
			var gpuSum, hostSum int64
			for _, it := range h.Items() {
				if it.Loc == OnGPU {
					gpuSum += it.Bytes
				} else {
					hostSum += it.Bytes
				}
			}
			if gpuSum != s.GPUUsed || hostSum != s.HostUsed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
