package bench

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/gpusim"
	"texid/internal/knn"
	"texid/internal/match"
	"texid/internal/sift"
	"texid/internal/texture"
)

// AblateGeometric isolates the pipeline's final stage (Fig. 2): RANSAC
// geometric verification. Raw ratio-test matches occasionally agree by
// accident — repetitive texture produces a handful of scattered false
// correspondences — so at an aggressive acceptance threshold, foreign
// textures can be falsely accepted. Geometric verification requires the
// correspondences to agree on one similarity transform, which accidental
// matches never do. The experiment measures true-query accuracy and
// foreign-query false-accept rate with and without verification at a low
// threshold.
func AblateGeometric(opts Options) *Table {
	const lowThreshold = 3
	t := &Table{
		ID: "Ablate-geometric",
		Title: fmt.Sprintf("RANSAC geometric verification at an aggressive threshold (min matches %d)",
			lowThreshold),
		Header: []string{"Post-processing", "True-query accuracy", "Foreign false-accept rate"},
	}

	p := texture.DefaultGenParams()
	p.Size = opts.ImageSize
	ds := texture.BuildDataset(opts.Seed, opts.Refs, opts.Queries, opts.Difficulty, p)
	// Foreign textures: never enrolled, captured like real queries.
	foreignBase := texture.BuildDataset(opts.Seed+999_999, opts.Queries, opts.Queries, opts.Difficulty, p)

	cfg := sift.DefaultConfig()
	cfg.MaxFeatures = 0
	m := opts.scaled(384)
	n := opts.scaled(768)

	extract := func(im *texture.Image) *sift.Features { return sift.Extract(im, cfg) }
	refs := make([]*sift.Features, len(ds.Refs))
	for i, im := range ds.Refs {
		refs[i] = extract(im)
	}
	queries := make([]*sift.Features, len(ds.Queries))
	for i, im := range ds.Queries {
		queries[i] = extract(im)
	}
	foreign := make([]*sift.Features, len(foreignBase.Queries))
	for i, im := range foreignBase.Queries {
		foreign[i] = extract(im)
	}

	dev := gpusim.NewDevice(gpusim.TeslaP100())
	stream := dev.NewStream()
	refMats := make([]*blas.Matrix, len(refs))
	ids := make([]int, len(refs))
	for i, f := range refs {
		refMats[i] = trim(f, m, true)
		ids[i] = i
	}
	rb, err := knn.NewRefBatch(dev, ids, refMats, gpusim.FP32, 1, false)
	if err != nil {
		panic(fmt.Sprintf("bench: ref batch: %v", err))
	}

	// evaluate scores one query against all refs under a match config.
	evaluate := func(qf *sift.Features, mcfg match.Config) (int, bool) {
		q, err := knn.NewQuery(dev, trim(qf, n, true), gpusim.FP32, 1)
		if err != nil {
			panic(fmt.Sprintf("bench: query: %v", err))
		}
		defer q.Free()
		pairs, err := knn.MatchBatch(stream, rb, q, knn.Options{Algorithm: knn.RootSIFT, Precision: gpusim.FP32})
		if err != nil {
			panic(fmt.Sprintf("bench: match: %v", err))
		}
		var results []match.SearchResult
		for _, pair := range pairs {
			refKps := refs[pair.RefID].Keypoints
			if len(refKps) > m {
				refKps = refKps[:m]
			}
			qKps := qf.Keypoints
			if len(qKps) > n {
				qKps = qKps[:n]
			}
			results = append(results, match.SearchResult{
				RefID: pair.RefID,
				Score: match.PairScore(pair, refKps, qKps, mcfg),
			})
		}
		top, ok := match.Identify(results, mcfg)
		return top.RefID, ok
	}

	for _, geometric := range []bool{false, true} {
		mcfg := match.DefaultConfig()
		mcfg.EdgeMargin = 0
		mcfg.ImageSize = opts.ImageSize
		mcfg.MinMatches = lowThreshold
		mcfg.Geometric = geometric
		mcfg.RANSACTol = 5
		mcfg.Seed = opts.Seed

		correct := 0
		for qi, qf := range queries {
			id, ok := evaluate(qf, mcfg)
			if ok && id == ds.Truth[qi] {
				correct++
			}
		}
		falseAccepts := 0
		for _, qf := range foreign {
			if _, ok := evaluate(qf, mcfg); ok {
				falseAccepts++
			}
		}
		name := "ratio test only"
		if geometric {
			name = "ratio test + RANSAC"
		}
		t.AddRow(name,
			pct(float64(correct)/float64(len(queries))),
			pct(float64(falseAccepts)/float64(len(foreign))))
	}
	t.AddNote("geometric verification suppresses accidental correspondences that clear a low raw-match " +
		"threshold; the paper's Fig. 2 pipeline runs it as the final stage (its Table 1 microbenchmarks skip it)")
	return t
}
