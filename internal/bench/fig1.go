package bench

import (
	"texid/internal/gpusim"
	"texid/internal/knn"
)

// Fig1 reproduces Fig. 1: capacity and speed as the four optimizations
// stack, from the OpenCV-CUDA baseline to the full production
// configuration (cuBLAS top-2, FP16, RootSIFT batching, hybrid cache with
// streams, asymmetric features).
func Fig1(opts Options) *Table {
	spec := gpusim.TeslaP100()
	t := &Table{
		ID:     "Fig 1",
		Title:  "Cumulative effect of the optimizations (Tesla P100, 16 GB GPU + 64 GB host)",
		Header: []string{"Configuration", "Speed (img/s)", "Capacity (refs)", "Speed x", "Capacity x"},
	}

	gpuBytes := float64(spec.MemBytes)
	hybridBytes := gpuBytes + float64(64<<30)

	// Per-reference footprints: FP32/FP16 with norm vectors (Algorithm 1)
	// or without (RootSIFT).
	perRef := func(m int, prec gpusim.Precision, norms bool) float64 {
		b := float64(m * paperD * prec.ElemBytes())
		if norms {
			b += float64(m * 4)
		}
		return b
	}

	type stage struct {
		name     string
		speed    float64
		capacity float64
	}
	var stages []stage

	// 1. Baseline: OpenCV-CUDA brute force, FP32, GPU memory only.
	_, tot := runPhantomMatch(spec, knn.Baseline, gpusim.FP32, 1, paperM, paperN, paperD)
	stages = append(stages, stage{"baseline: OpenCV CUDA, FP32", 1e6 / tot, gpuBytes / perRef(paperM, gpusim.FP32, true)})

	// 2. cuBLAS with the single-pass top-2 scan.
	_, tot = runPhantomMatch(spec, knn.Eq1Top2, gpusim.FP32, 1, paperM, paperN, paperD)
	stages = append(stages, stage{"+ cuBLAS + top-2 scan", 1e6 / tot, gpuBytes / perRef(paperM, gpusim.FP32, true)})

	// 3. FP16 feature storage.
	_, tot = runPhantomMatch(spec, knn.Eq1Top2, gpusim.FP16, 1, paperM, paperN, paperD)
	stages = append(stages, stage{"+ FP16", 1e6 / tot, gpuBytes / perRef(paperM, gpusim.FP16, true)})

	// 4. RootSIFT + batching (batch 1024).
	_, tot = runPhantomMatch(spec, knn.RootSIFT, gpusim.FP16, 1024, paperM, paperN, paperD)
	stages = append(stages, stage{"+ RootSIFT + batch 1024", 1024e6 / tot, gpuBytes / perRef(paperM, gpusim.FP16, false)})

	// 5. Hybrid cache + 8 streams (host-resident references, jittered VM).
	speed, _ := jitteredHybridSpeed(spec, opts.JitterCoV, uint64(opts.Seed)+11,
		512, 8, 16, paperM, paperN, true)
	stages = append(stages, stage{"+ hybrid cache + 8 streams", speed, hybridBytes / perRef(paperM, gpusim.FP16, false)})

	// 6. Asymmetric features m=384, n=768 (batch 256, as in Table 7).
	_, tot = runPhantomMatch(spec, knn.RootSIFT, gpusim.FP16, 256, 384, paperN, paperD)
	stages = append(stages, stage{"+ asymmetric m=384", 256e6 / tot, hybridBytes / perRef(384, gpusim.FP16, false)})

	base := stages[0]
	for _, s := range stages {
		t.AddRow(s.name, f0(s.speed), f0(s.capacity),
			f1(s.speed/base.speed)+"x", f1(s.capacity/base.capacity)+"x")
	}
	final := stages[len(stages)-1]
	t.AddNote("final vs baseline: %.1fx speed, %.1fx capacity (paper: 31x speed, 20x capacity)",
		final.speed/base.speed, final.capacity/base.capacity)
	t.AddNote("stage 6 speed measured GPU-resident at batch 256 (the paper's Table 7 configuration)")
	return t
}
