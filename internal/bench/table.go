// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation against the simulated devices and the
// synthetic dataset, printing paper-reported values next to measured ones.
// The per-experiment index lives in DESIGN.md; the recorded outcomes in
// EXPERIMENTS.md.
package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result: a titled grid plus free-form
// notes (deviations, configuration, paper anchors).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown (used to generate
// EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// f1, f2, f0 format floats at fixed precision; dash renders missing cells.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.2f%%", v*100)
}

const dash = "-"
