package bench

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/knn"
)

// PruneSweep measures the binary Hamming prefilter (extension): for each
// candidate budget C the table reports candidate recall (did the true
// reference survive the prefilter into the rerank set), end-to-end open-set
// top-1 accuracy, the average number of references reranked, and the
// simulated per-query device time. C=0 is the unpruned baseline. The sweep
// is the acceptance gate for any change to the prefilter: accuracy at the
// default budget must match the unpruned row.
func PruneSweep(opts Options) *Table {
	return pruneWithDataset(buildAccDataset(opts), opts)
}

func pruneWithDataset(ds *accDataset, opts Options) *Table {
	m := opts.scaled(384)
	n := opts.scaled(768)
	t := &Table{
		ID: "Prune",
		Title: fmt.Sprintf("Hamming-prefilter recall vs candidate budget C (extension; m=%d, n=%d, %d refs, %d queries)",
			m, n, opts.Refs, len(ds.queries)),
		Header: []string{"C", "Candidate recall", "Top-1 accuracy", "Avg reranked", "Sim us/query"},
	}

	for _, c := range []int{0, 1, 2, 4, 8, 16} {
		cfg := engine.DefaultConfig()
		cfg.Precision = gpusim.FP32 // accuracy sweep: FP16 delta is Table 2's job
		cfg.Accum = blas.AccumFP32
		cfg.Algorithm = knn.RootSIFT
		cfg.BatchSize = 8
		cfg.Streams = 2
		cfg.RefFeatures = m
		cfg.QueryFeatures = n
		cfg.Match.MinMatches = opts.MinMatches
		cfg.PruneC = c
		eng, err := engine.New(cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: prune engine: %v", err))
		}
		for i, f := range ds.refs {
			if err := eng.Add(i, trim(f, m, true), nil); err != nil {
				panic(fmt.Sprintf("bench: prune enroll: %v", err))
			}
		}

		recalled, correct, compared := 0, 0, 0
		var simUS float64
		for qi, qf := range ds.queries {
			rep, err := eng.Search(trim(qf, n, true), nil)
			if err != nil {
				panic(fmt.Sprintf("bench: prune search: %v", err))
			}
			for _, r := range rep.Ranked {
				if r.RefID == ds.truth[qi] {
					recalled++
					break
				}
			}
			if rep.Accepted && rep.BestID == ds.truth[qi] {
				correct++
			}
			compared += rep.Compared
			simUS += rep.ElapsedUS
		}
		nq := len(ds.queries)
		label := fmt.Sprintf("%d", c)
		if c == 0 {
			label = "off"
		}
		t.AddRow(label,
			pct(float64(recalled)/float64(nq)),
			pct(float64(correct)/float64(nq)),
			fmt.Sprintf("%.1f", float64(compared)/float64(nq)),
			fmt.Sprintf("%.0f", simUS/float64(nq)))
	}
	t.AddNote("candidate recall counts queries whose true reference survives into the exact rerank; " +
		"top-1 applies the open-set MinMatches rule after the rerank")
	t.AddNote("the rerank is bitwise identical to the unpruned kernels, so accuracy can only differ " +
		"when the prefilter drops the true reference (recall < 100%%)")
	t.AddNote("wall-clock capacity: see engine_search_steady_pruned vs engine_search_steady_unpruned_10x " +
		"in BENCH_HOST.json (a 10x shard at roughly unpruned-16-image latency)")
	return t
}
