package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"texid/internal/blas"
	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/knn"
	"texid/internal/serve"
)

// The serving benchmark measures what the micro-batching admission layer
// (internal/serve) buys over the serialized single-query path. It has two
// halves with different determinism contracts:
//
//   - Simulated throughput (gated, BENCH_SERVE.json): a lockstep closed
//     loop — C clients submit together, coalesce into one C-query
//     SearchBatch pass, and the next wave starts when all have finished —
//     on a PCIe-bound phantom workload (FP16 references streaming from the
//     host cache, where sharing one H2D transfer across C queries is the
//     paper's Sec. 5.3 win). Wave composition is pinned by construction,
//     so simulated QPS is bit-reproducible and safe to gate in CI.
//   - Wall-clock serving (reported, never gated): free-running closed-loop
//     and open-loop load generators over a functional workload, reporting
//     achieved QPS, p50/p99 latency, and the achieved batch-size mix.
//     These numbers are machine- and scheduler-dependent.

// ServingConcurrencies are the offered-load levels of the suite.
var ServingConcurrencies = []int{1, 4, 16, 64}

// ServingGateConcurrency and ServingSpeedupFloor are the acceptance gate:
// at concurrency 16 the coalesced path must deliver at least 3x the
// serialized path's simulated QPS.
const (
	ServingGateConcurrency = 16
	ServingSpeedupFloor    = 3.0
)

// ServingLevel is one concurrency level of the deterministic simulated
// half.
type ServingLevel struct {
	Concurrency int `json:"concurrency"`
	// Queries is the total number of searches issued on each path.
	Queries int `json:"queries"`
	// SerialQPS and BatchedQPS are simulated queries/second of the
	// serialized single-query path and the coalesced path; Speedup is
	// their ratio.
	SerialQPS  float64 `json:"sim_qps_serial"`
	BatchedQPS float64 `json:"sim_qps_batched"`
	Speedup    float64 `json:"speedup"`
	// SerialP50MS/.P99MS and P50MS/P99MS are per-query simulated latency
	// quantiles (a coalesced query's latency is its batch's completion
	// time — the Sec. 5.3 trade-off, visible here as batched p50 above
	// serial p50 while QPS multiplies).
	SerialP50MS float64 `json:"sim_p50_ms_serial"`
	SerialP99MS float64 `json:"sim_p99_ms_serial"`
	P50MS       float64 `json:"sim_p50_ms_batched"`
	P99MS       float64 `json:"sim_p99_ms_batched"`
	// MeanBatch and SizeHist are the achieved admission batch sizes
	// (SizeHist buckets are serve.SizeBuckets() plus overflow).
	MeanBatch float64  `json:"mean_batch"`
	SizeHist  []uint64 `json:"batch_size_hist"`
	// Identical reports the functional identity check: per-query results
	// through the admission layer were equal, field for field and rank
	// for rank, to sequential Engine.Search results.
	Identical bool `json:"identical"`
}

// WallLevel is one wall-clock load-generator run (machine-dependent;
// informational only).
type WallLevel struct {
	// Mode is "closed" (C workers in a closed loop) or "open" (fixed
	// arrival rate, latency measured from intended arrival to avoid
	// coordinated omission).
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	Queries     int     `json:"queries"`
	QPS         float64 `json:"qps"`
	// DirectQPS is the same closed loop bypassing the admission layer
	// (concurrent Engine.Search; the engine's exec lock serializes the
	// GEMM passes). Zero for open-loop runs.
	DirectQPS float64 `json:"qps_direct,omitempty"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	MeanBatch float64 `json:"mean_batch"`
}

// ServingReport is the serving benchmark output (BENCH_SERVE.json).
type ServingReport struct {
	Device        string `json:"device"`
	Refs          int    `json:"refs"`
	RefFeatures   int    `json:"ref_features"`
	QueryFeatures int    `json:"query_features"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	// Sim is deterministic and gated; Wall is machine-dependent and
	// informational.
	Sim  []ServingLevel `json:"sim"`
	Wall []WallLevel    `json:"wall,omitempty"`
}

// servingSimConfig is the PCIe-bound phantom workload: FP16 references at
// the paper's reduced budget (m = 384, Table 7) with a GPU cache holding
// exactly one resident batch, so nearly every reference batch streams over
// PCIe per search pass — the regime where coalescing C queries into one
// pass approaches C-fold throughput.
func servingSimConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Spec = gpusim.TeslaP100()
	cfg.Precision = gpusim.FP16
	cfg.Algorithm = knn.RootSIFT
	cfg.BatchSize = 256
	cfg.Streams = 8
	cfg.RefFeatures = 384
	cfg.QueryFeatures = 128
	cfg.Dim = paperD
	cfg.PinnedHost = true
	cfg.HostCacheBytes = 256 << 30
	cfg.GPUCacheBytes = int64(cfg.BatchSize)*int64(cfg.RefFeatures)*int64(paperD)*2 + 1
	return cfg
}

// servingSimRefs is the phantom reference count (64 batches of 256).
const servingSimRefs = 64 * 256

// servingSimEngine builds the phantom fixture.
func servingSimEngine() *engine.Engine {
	e, err := engine.New(servingSimConfig())
	if err != nil {
		panic(fmt.Sprintf("bench: serving engine: %v", err))
	}
	if err := e.AddPhantom(0, servingSimRefs); err != nil {
		panic(fmt.Sprintf("bench: phantom refs: %v", err))
	}
	return e
}

// lockstepWaves drives eb with waves of exactly c concurrent phantom
// searches (the admission window is far above scheduling jitter and the
// batch cap equals c, so every wave coalesces into one pass) and returns
// every query's simulated latency in issue order.
func lockstepWaves(eb *serve.EngineBatcher, c, waves int) []float64 {
	lat := make([]float64, 0, c*waves)
	wave := make([]float64, c)
	for w := 0; w < waves; w++ {
		var wg sync.WaitGroup
		for i := 0; i < c; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rep, err := eb.Search(nil, nil)
				if err != nil {
					panic(fmt.Sprintf("bench: coalesced search: %v", err))
				}
				wave[i] = rep.ElapsedUS
			}(i)
		}
		wg.Wait()
		lat = append(lat, wave...)
	}
	return lat
}

// servingSimLevel measures one concurrency level of the deterministic
// half: serialized vs coalesced simulated QPS on the phantom workload,
// plus the functional identity check.
func servingSimLevel(c, waves int) ServingLevel {
	n := c * waves
	lv := ServingLevel{Concurrency: c, Queries: n}

	// Serialized path: each search pays the full streaming pass. The
	// engine's exec lock serializes concurrent callers, so a sequential
	// loop measures the same simulated cost without scheduling noise.
	eSerial := servingSimEngine()
	serial := make([]float64, n)
	var serialUS float64
	for i := range serial {
		rep, err := eSerial.Search(nil, nil)
		if err != nil {
			panic(fmt.Sprintf("bench: serial search: %v", err))
		}
		serial[i] = rep.ElapsedUS
		serialUS += rep.ElapsedUS
	}

	// Coalesced path: lockstep waves of c clients share each pass.
	eBatched := servingSimEngine()
	eb := serve.ForEngine(eBatched, serve.Options{MaxBatch: c, Window: time.Second})
	batched := lockstepWaves(eb, c, waves)
	eb.Close()
	// Every query in a wave reports the wave's completion time; summing
	// one latency per wave gives the coalesced timeline's total length.
	var batchedUS float64
	for w := 0; w < waves; w++ {
		batchedUS += batched[w*c]
	}

	st := eb.Stats()
	lv.SerialQPS = float64(n) / serialUS * 1e6
	lv.BatchedQPS = float64(n) / batchedUS * 1e6
	lv.Speedup = lv.BatchedQPS / lv.SerialQPS
	lv.SerialP50MS = quantileUS(serial, 0.50) / 1000
	lv.SerialP99MS = quantileUS(serial, 0.99) / 1000
	lv.P50MS = quantileUS(batched, 0.50) / 1000
	lv.P99MS = quantileUS(batched, 0.99) / 1000
	lv.MeanBatch = st.MeanBatch
	lv.SizeHist = st.SizeHist[:]
	lv.Identical = servingIdentityCheck(c)
	return lv
}

// servingIdentityCheck runs 2c functional queries both sequentially and
// through the admission layer (waves of c) on one engine and reports
// whether every per-query result matched exactly.
func servingIdentityCheck(c int) bool {
	cfg := engine.DefaultConfig()
	cfg.Precision = gpusim.FP32
	cfg.Algorithm = knn.RootSIFT
	cfg.BatchSize = 4
	cfg.Streams = 2
	cfg.RefFeatures = 24
	cfg.QueryFeatures = 32
	cfg.Dim = 16
	cfg.HostCacheBytes = 1 << 30
	cfg.Match.MinMatches = 10
	cfg.Match.EdgeMargin = 0
	e, err := engine.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: identity engine: %v", err))
	}
	rng := rand.New(rand.NewSource(83))
	refs := make([]*blas.Matrix, 12)
	for i := range refs {
		refs[i] = unitCols(rng, 16, 24)
		if err := e.Add(i, refs[i], nil); err != nil {
			panic(fmt.Sprintf("bench: identity enroll: %v", err))
		}
	}
	n := 2 * c
	if n > 64 {
		n = 64
	}
	queries := make([]*blas.Matrix, n)
	for i := range queries {
		queries[i] = perturbCols(rng, refs[i%len(refs)], 32)
	}

	want := make([]*engine.Report, n)
	for i, q := range queries {
		rep, err := e.Search(q, nil)
		if err != nil {
			panic(fmt.Sprintf("bench: identity serial: %v", err))
		}
		want[i] = rep
	}

	eb := serve.ForEngine(e, serve.Options{MaxBatch: c, Window: time.Second})
	defer eb.Close()
	got := make([]*engine.Report, n)
	for base := 0; base < n; base += c {
		end := base + c
		if end > n {
			end = n
		}
		var wg sync.WaitGroup
		for i := base; i < end; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rep, err := eb.Search(queries[i], nil)
				if err != nil {
					panic(fmt.Sprintf("bench: identity coalesced: %v", err))
				}
				got[i] = rep
			}(i)
		}
		wg.Wait()
	}

	for i := range queries {
		g, w := got[i], want[i]
		if g.BestID != w.BestID || g.Score != w.Score || g.Accepted != w.Accepted ||
			g.Compared != w.Compared || len(g.Ranked) != len(w.Ranked) {
			return false
		}
		for j := range g.Ranked {
			if g.Ranked[j] != w.Ranked[j] {
				return false
			}
		}
	}
	return true
}

// servingWallFixture builds the functional engine + query pool for the
// wall-clock generators (small FP32 workload: each search is a real GEMM
// pipeline but cheap enough to drive thousands of requests).
func servingWallFixture() (*engine.Engine, []*blas.Matrix) {
	cfg := engine.DefaultConfig()
	cfg.Precision = gpusim.FP32
	cfg.Algorithm = knn.RootSIFT
	cfg.BatchSize = 4
	cfg.Streams = 2
	cfg.RefFeatures = 24
	cfg.QueryFeatures = 32
	cfg.Dim = 16
	cfg.HostCacheBytes = 1 << 30
	cfg.Match.MinMatches = 10
	cfg.Match.EdgeMargin = 0
	e, err := engine.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: wall engine: %v", err))
	}
	rng := rand.New(rand.NewSource(84))
	refs := make([]*blas.Matrix, 16)
	for i := range refs {
		refs[i] = unitCols(rng, 16, 24)
		if err := e.Add(i, refs[i], nil); err != nil {
			panic(fmt.Sprintf("bench: wall enroll: %v", err))
		}
	}
	queries := make([]*blas.Matrix, 32)
	for i := range queries {
		queries[i] = perturbCols(rng, refs[i%len(refs)], 32)
	}
	return e, queries
}

// servingWallClosed runs a free-running closed loop: c workers issue
// perQueries searches each through the admission layer, then the same load
// directly against the engine for the serialized comparison.
func servingWallClosed(c, perWorker int) WallLevel {
	e, queries := servingWallFixture()
	n := c * perWorker

	run := func(search func(q *blas.Matrix) error) (qps float64, lat []float64) {
		lat = make([]float64, n)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := 0; k < perWorker; k++ {
					i := w*perWorker + k
					t0 := time.Now()
					if err := search(queries[i%len(queries)]); err != nil {
						panic(fmt.Sprintf("bench: wall search: %v", err))
					}
					lat[i] = float64(time.Since(t0).Microseconds())
				}
			}(w)
		}
		wg.Wait()
		return float64(n) / time.Since(start).Seconds(), lat
	}

	eb := serve.ForEngine(e, serve.Options{MaxBatch: c, Window: 200 * time.Microsecond})
	qps, lat := run(func(q *blas.Matrix) error { _, err := eb.Search(q, nil); return err })
	st := eb.Stats()
	eb.Close()
	direct, _ := run(func(q *blas.Matrix) error { _, err := e.Search(q, nil); return err })

	return WallLevel{
		Mode:        "closed",
		Concurrency: c,
		Queries:     n,
		QPS:         qps,
		DirectQPS:   direct,
		P50MS:       quantileUS(lat, 0.50) / 1000,
		P99MS:       quantileUS(lat, 0.99) / 1000,
		MeanBatch:   st.MeanBatch,
	}
}

// servingWallOpen runs an open-loop generator: n queries arrive on a fixed
// interval regardless of completions, and each query's latency is measured
// from its intended arrival time (so queueing delay during overload is
// charged, not hidden).
func servingWallOpen(n int, interval time.Duration, maxBatch int) WallLevel {
	e, queries := servingWallFixture()
	eb := serve.ForEngine(e, serve.Options{MaxBatch: maxBatch, Window: 200 * time.Microsecond})
	defer eb.Close()

	lat := make([]float64, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		intended := start.Add(time.Duration(i) * interval)
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, intended time.Time) {
			defer wg.Done()
			if _, err := eb.Search(queries[i%len(queries)], nil); err != nil {
				panic(fmt.Sprintf("bench: open-loop search: %v", err))
			}
			lat[i] = float64(time.Since(intended).Microseconds())
		}(i, intended)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	st := eb.Stats()

	return WallLevel{
		Mode:        "open",
		Concurrency: maxBatch,
		Queries:     n,
		QPS:         float64(n) / elapsed,
		P50MS:       quantileUS(lat, 0.50) / 1000,
		P99MS:       quantileUS(lat, 0.99) / 1000,
		MeanBatch:   st.MeanBatch,
	}
}

// RunServing runs the full serving suite. includeWall adds the
// machine-dependent load-generator runs (skipped for baseline-only use).
func RunServing(includeWall bool) *ServingReport {
	cfg := servingSimConfig()
	rep := &ServingReport{
		Device:        cfg.Spec.Name,
		Refs:          servingSimRefs,
		RefFeatures:   cfg.RefFeatures,
		QueryFeatures: cfg.QueryFeatures,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
	for _, c := range ServingConcurrencies {
		waves := 3
		rep.Sim = append(rep.Sim, servingSimLevel(c, waves))
	}
	if includeWall {
		for _, c := range ServingConcurrencies {
			rep.Wall = append(rep.Wall, servingWallClosed(c, 32))
		}
		rep.Wall = append(rep.Wall, servingWallOpen(256, 500*time.Microsecond, 16))
	}
	return rep
}

// quantileUS returns the q-quantile of the (copied, sorted) latency
// samples.
func quantileUS(lat []float64, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// unitCols fills a d×n matrix with unit-L2-norm random columns (stand-in
// RootSIFT descriptors).
func unitCols(rng *rand.Rand, d, n int) *blas.Matrix {
	m := blas.NewMatrix(d, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		var s float64
		for i := range col {
			col[i] = rng.Float32()
			s += float64(col[i]) * float64(col[i])
		}
		f := float32(1 / math.Sqrt(s))
		for i := range col {
			col[i] *= f
		}
	}
	return m
}

// perturbCols derives an n-column query whose leading columns are noisy
// copies of ref's (re-normalized), the rest random — enough overlap to
// match, enough noise to exercise ranking.
func perturbCols(rng *rand.Rand, ref *blas.Matrix, n int) *blas.Matrix {
	q := blas.NewMatrix(ref.Rows, n)
	for j := 0; j < n; j++ {
		if j < ref.Cols {
			copy(q.Col(j), ref.Col(j))
			col := q.Col(j)
			var s float64
			for i := range col {
				col[i] += (rng.Float32()*2 - 1) * 0.02
				if col[i] < 0 {
					col[i] = 0
				}
				s += float64(col[i]) * float64(col[i])
			}
			f := float32(1 / math.Sqrt(s))
			for i := range col {
				col[i] *= f
			}
		} else {
			copy(q.Col(j), unitCols(rng, ref.Rows, 1).Col(0))
		}
	}
	return q
}

// WriteFile writes the serving report as indented JSON (BENCH_SERVE.json).
func (r *ServingReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadServingReport reads a report written by WriteFile.
func LoadServingReport(path string) (*ServingReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &ServingReport{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// CompareServingReports gates the deterministic half: every current level
// must pass the identity check, the gate concurrency must clear the
// speedup floor, and batched QPS must not drop more than tolerance below
// the committed baseline. Wall-clock results are never compared.
func CompareServingReports(baseline, current *ServingReport, tolerance float64) []string {
	base := make(map[int]ServingLevel, len(baseline.Sim))
	for _, lv := range baseline.Sim {
		base[lv.Concurrency] = lv
	}
	var problems []string
	for _, lv := range current.Sim {
		if !lv.Identical {
			problems = append(problems,
				fmt.Sprintf("concurrency %d: coalesced results diverged from sequential searches", lv.Concurrency))
		}
		if lv.Concurrency == ServingGateConcurrency && lv.Speedup < ServingSpeedupFloor {
			problems = append(problems,
				fmt.Sprintf("concurrency %d: speedup %.2fx below the %.1fx floor", lv.Concurrency, lv.Speedup, ServingSpeedupFloor))
		}
		b, ok := base[lv.Concurrency]
		if !ok || b.BatchedQPS <= 0 {
			continue
		}
		if lv.BatchedQPS < b.BatchedQPS*(1-tolerance) {
			problems = append(problems,
				fmt.Sprintf("concurrency %d: batched %.0f QPS vs baseline %.0f QPS (tolerance %.0f%%)",
					lv.Concurrency, lv.BatchedQPS, b.BatchedQPS, tolerance*100))
		}
	}
	return problems
}
