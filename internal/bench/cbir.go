package bench

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/cbir"
	"texid/internal/gpusim"
	"texid/internal/knn"
	"texid/internal/match"
)

// CBIR reproduces the Sec. 2 argument as an experiment (extension): on the
// same dataset and feature budgets, compare the paper's per-image 2-NN
// matching against the CBIR pattern it rejects — a single pooled feature
// index, exact and product-quantized. Identification accuracy uses the
// same open-set top-1 rule everywhere.
func CBIR(opts Options) *Table {
	return cbirWithDataset(buildAccDataset(opts), opts)
}

func cbirWithDataset(ds *accDataset, opts Options) *Table {
	m := opts.scaled(384)
	n := opts.scaled(768)
	t := &Table{
		ID: "CBIR",
		Title: fmt.Sprintf("Per-image matching vs pooled CBIR index (extension; m=%d, n=%d, %d refs, %d queries)",
			m, n, opts.Refs, len(ds.queries)),
		Header: []string{"Method", "Memory per reference", "Top-1 accuracy"},
	}
	ratio := 0.75

	// (a) The paper's approach: per-image 2-NN matching, FP16 storage.
	acc := top1Accuracy(ds, m, n, true, knn.Options{
		Algorithm: knn.RootSIFT, Precision: gpusim.FP32,
	}, ratio, opts.MinMatches)
	perRefFP16 := float64(m*128*2) / 1024
	t.AddRow("per-image 2-NN (paper, FP16)", fmt.Sprintf("%.1f KB", perRefFP16), pct(acc))

	// Shared pooled data.
	refMats := make([]*blas.Matrix, len(ds.refs))
	var trainCols [][]float32
	for i, f := range ds.refs {
		refMats[i] = trim(f, m, true)
		for j := 0; j < refMats[i].Cols; j++ {
			trainCols = append(trainCols, refMats[i].Col(j))
		}
	}

	// (b) Exact pooled CBIR voting (FP32 pool, as CBIR engines keep it).
	exact := cbir.NewIndex(128)
	for i, rm := range refMats {
		if err := exact.Add(i, rm); err != nil {
			panic(fmt.Sprintf("bench: cbir add: %v", err))
		}
	}
	t.AddRow("pooled exact voting (CBIR)", fmt.Sprintf("%.1f KB", float64(m*128*4)/1024),
		pct(pooledAccuracy(ds, exact.Search, n, opts.MinMatches, ratio)))

	// (c) Product-quantized pooled index (Faiss-style, 8 bytes/feature).
	pqCfg := cbir.DefaultPQConfig()
	pqCfg.Seed = opts.Seed
	// Codebooks cannot exceed the training set (relevant only at tiny
	// test scales).
	if pqCfg.Centroids > len(trainCols)/2 {
		pqCfg.Centroids = len(trainCols) / 2
	}
	pq, err := cbir.TrainPQ(blas.FromColumns(128, trainCols), pqCfg)
	if err != nil {
		panic(fmt.Sprintf("bench: PQ train: %v", err))
	}
	for i, rm := range refMats {
		if err := pq.Add(i, rm); err != nil {
			panic(fmt.Sprintf("bench: PQ add: %v", err))
		}
	}
	t.AddRow("pooled PQ voting (Faiss-style)", fmt.Sprintf("%.1f KB", float64(m*pqCfg.Subspaces)/1024),
		pct(pooledAccuracy(ds, pq.Search, n, opts.MinMatches, ratio)))

	t.AddNote("the paper argues (Sec. 2) that pooled/compressed CBIR indexes trade away the fine-grained " +
		"discrimination product traceability needs; per-image matching keeps full fidelity at FP16 cost")
	t.AddNote("PQ compresses 64x vs FP32 (16x vs FP16) but flattens the vote histogram under capture perturbation")
	return t
}

// pooledAccuracy runs every query through a pooled-index search function
// and applies the open-set top-1 rule.
func pooledAccuracy(ds *accDataset, search func(*blas.Matrix, float64) []match.SearchResult, n, minMatches int, ratio float64) float64 {
	correct := 0
	for qi, qf := range ds.queries {
		res := search(trim(qf, n, true), ratio)
		top, ok := match.Identify(res, match.Config{MinMatches: minMatches})
		if ok && top.RefID == ds.truth[qi] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.queries))
}
