package bench

import (
	"fmt"

	"texid/internal/gpusim"
	"texid/internal/knn"
)

// DeviceProjection (extension) runs the production pipeline configuration
// across the GPU generations the paper names (P100, V100, A100) and
// reports the end-to-end speed, the PCIe-bound hybrid streaming ceiling,
// and which resource binds. On newer parts the compute bound rises much
// faster than the PCIe bound — so the hybrid cache's streaming design,
// marginal on the P100, becomes the limiting factor, and asymmetric
// extraction (halving bytes per image) matters even more.
func DeviceProjection(opts Options) *Table {
	t := &Table{
		ID:     "Devices",
		Title:  "Pipeline projection across GPU generations (batch 1024, FP16, m=n=768)",
		Header: []string{"GPU", "Resident speed (img/s)", "PCIe bound (img/s)", "Binding resource (hybrid)"},
	}
	specs := []gpusim.DeviceSpec{
		gpusim.TeslaP100(),
		gpusim.TeslaV100(false),
		gpusim.TeslaV100(true),
		gpusim.TeslaA100(),
	}
	bytesPerImage := float64(paperM * paperD * 2)
	for _, spec := range specs {
		_, tot := runPhantomMatch(spec, knn.RootSIFT, gpusim.FP16, 1024, paperM, paperN, paperD)
		resident := 1024e6 / tot
		pcie := spec.PCIePinnedGBs * 1e9 / bytesPerImage
		binding := "compute"
		if pcie < resident {
			binding = "PCIe"
		}
		t.AddRow(spec.Name, f0(resident), f0(pcie), binding)
	}
	t.AddNote("A100 numbers are projections (no paper measurements exist); see gpusim.TeslaA100")
	t.AddNote(fmt.Sprintf("with asymmetric m=384 the PCIe bound doubles to %s img/s per link generation",
		f0(2*specs[0].PCIePinnedGBs*1e9/bytesPerImage)))
	return t
}
