package bench

import (
	"fmt"

	"texid/internal/gpusim"
	"texid/internal/knn"
	"texid/internal/match"
	"texid/internal/orb"
	"texid/internal/sift"
	"texid/internal/surf"
	"texid/internal/texture"
)

// AblateDescriptor compares the paper's SIFT (d=128) pipeline against the
// two alternative descriptors Sec. 3.1 names: SURF (d=64, half the GEMM
// work and feature memory) and ORB (256-bit binary codes under Hamming
// distance, which the cuBLAS machinery cannot accelerate at all). Accuracy
// runs the real extractors on the same dataset; GEMM speeds come from the
// simulated batched matcher at the paper's feature counts.
func AblateDescriptor(opts Options) *Table {
	m := opts.scaled(768)
	n := opts.scaled(768)
	t := &Table{
		ID: "Ablate-descriptor",
		Title: fmt.Sprintf("SIFT vs SURF vs ORB: accuracy (m=%d, n=%d) and batched GEMM speed (batch 1024)",
			m, n),
		Header: []string{"Descriptor", "d", "KB per reference (FP16, m=768)", "Top-1 accuracy", "Speed (images/s)"},
	}

	// Shared image dataset.
	p := texture.DefaultGenParams()
	p.Size = opts.ImageSize
	ds := texture.BuildDataset(opts.Seed, opts.Refs, opts.Queries, opts.Difficulty, p)
	spec := gpusim.TeslaP100()
	ratio := 0.75

	// SIFT (RootSIFT, the production pipeline).
	siftCfg := sift.DefaultConfig()
	siftCfg.MaxFeatures = 0
	siftDS := &accDataset{truth: ds.Truth, opts: opts}
	siftDS.refs = sift.ExtractBatch(ds.Refs, siftCfg)
	siftDS.queries = sift.ExtractBatch(ds.Queries, siftCfg)
	siftAcc := top1Accuracy(siftDS, m, n, true, knn.Options{
		Algorithm: knn.RootSIFT, Precision: gpusim.FP32,
	}, ratio, opts.MinMatches)
	_, siftTot := runPhantomMatch(spec, knn.RootSIFT, gpusim.FP16, 1024, paperM, paperN, 128)
	t.AddRow("SIFT + RootSIFT", "128", f1(float64(768*128*2)/1024), pct(siftAcc), f0(1024e6/siftTot))

	// SURF (unit-norm descriptors, same Algorithm 2 matcher).
	surfCfg := surf.DefaultConfig()
	surfCfg.MaxFeatures = 0
	surfDS := &accDataset{truth: ds.Truth, opts: opts}
	for _, im := range ds.Refs {
		surfDS.refs = append(surfDS.refs, surf.Extract(im, surfCfg))
	}
	for _, im := range ds.Queries {
		surfDS.queries = append(surfDS.queries, surf.Extract(im, surfCfg))
	}
	surfAcc := top1Accuracy(surfDS, m, n, false /* already unit-norm */, knn.Options{
		Algorithm: knn.RootSIFT, Precision: gpusim.FP32,
	}, ratio, opts.MinMatches)
	_, surfTot := runPhantomMatch(spec, knn.RootSIFT, gpusim.FP16, 1024, paperM, paperN, 64)
	t.AddRow("SURF", "64", f1(float64(768*64*2)/1024), pct(surfAcc), f0(1024e6/surfTot))

	// ORB (binary codes, Hamming matching — the Sec. 3.1 third option).
	orbCfg := orb.DefaultConfig()
	orbCfg.MaxFeatures = 0
	orbRefs := make([]*orb.Features, len(ds.Refs))
	for i, im := range ds.Refs {
		orbRefs[i] = trimORB(orb.Extract(im, orbCfg), m)
	}
	correct := 0
	for qi, im := range ds.Queries {
		q := trimORB(orb.Extract(im, orbCfg), n)
		ranked := orb.Score(orbRefs, q, 0.8)
		top, ok := match.Identify(ranked, match.Config{MinMatches: opts.MinMatches})
		if ok && top.RefID == ds.Truth[qi] {
			correct++
		}
	}
	orbAcc := float64(correct) / float64(len(ds.Queries))
	// A plain CUDA Hamming kernel (no GEMM possible) plus the shared
	// pipeline tail (D2H + post-processing, per Table 3's batched figures).
	orbTot := spec.HammingMatchTimeUS(paperM, paperN, 1024, orb.CodeWords) + 1024*(1.7+3.9)
	t.AddRow("ORB (binary, Hamming)", "256 bit", f1(float64(768*orb.BytesPerFeature)/1024), pct(orbAcc), f0(1024e6/orbTot))

	t.AddNote("SURF halves GEMM work and reference memory; the paper (following [27]) uses SIFT for accuracy")
	t.AddNote("SURF detectors also find fewer keypoints on fine pressed-leaf texture, compounding the accuracy gap")
	t.AddNote("ORB matching is XOR+popcount under Hamming distance — no GEMM formulation exists, so none of the " +
		"paper's cuBLAS/tensor-core machinery applies; its speed comes from a plain-kernel integer model " +
		"(gpusim.HammingMatchTimeUS). Fast and tiny, but the accuracy gap is why the paper follows [27] to SIFT")
	return t
}

// trimORB keeps the k strongest ORB features (they are response-sorted).
func trimORB(f *orb.Features, k int) *orb.Features {
	if k >= f.Count() {
		return f
	}
	return &orb.Features{Codes: f.Codes[:k], Keypoints: f.Keypoints[:k]}
}
