package bench

import (
	"fmt"

	"texid/internal/cluster"
	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/knn"
)

// System reproduces the Sec. 8 deployment: 14 Tesla P100 containers, each
// with a 76 GB hybrid cache (16 GB GPU with 4 GB reserved for engine
// workspace + 64 GB host), the production engine configuration (RootSIFT,
// FP16, asymmetric m=384/n=768, batch 256, 8 streams), and phantom
// references filling a scaled-down index with the paper's GPU:host
// residency ratio.
func System(opts Options) *Table {
	t := &Table{
		ID:     "Sec 8",
		Title:  "Distributed texture search system (14 GPU containers)",
		Header: []string{"Metric", "Measured", "Paper"},
	}

	const workers = 14
	// Full-scale capacity math, exactly as the paper computes it: 76 GB of
	// hybrid cache per container, 14 containers, m=384 FP16 matrices.
	perRef := int64(384 * paperD * 2)
	fullCacheBytes := int64(workers) * (76 << 30)
	fullCapacity := fullCacheBytes / perRef

	// Measured aggregate speed on a scaled index that preserves the
	// paper's ~16% GPU / 84% host residency split.
	scale := int64(1)
	refs := opts.SystemRefs
	if refs <= 0 {
		refs = 1_000_000
	}
	if int64(refs) < fullCapacity {
		scale = (fullCapacity + int64(refs) - 1) / int64(refs)
	}

	ecfg := engine.DefaultConfig()
	ecfg.Spec = gpusim.WithJitter(gpusim.TeslaP100(), opts.JitterCoV, uint64(opts.Seed)+13)
	ecfg.BatchSize = 256
	ecfg.Streams = 8
	ecfg.Precision = gpusim.FP16
	ecfg.Algorithm = knn.RootSIFT
	ecfg.RefFeatures = 384
	ecfg.QueryFeatures = 768
	ecfg.GPUCacheBytes = (12 << 30) / scale
	ecfg.HostCacheBytes = (64 << 30) / scale

	cl, err := cluster.New(cluster.Config{Workers: workers, Engine: ecfg})
	if err != nil {
		panic(fmt.Sprintf("bench: cluster: %v", err))
	}
	// Fill to 95% of the scaled capacity (batch granularity makes an exact
	// fill overflow the last batch).
	scaledCapacity := (ecfg.GPUCacheBytes + ecfg.HostCacheBytes) / perRef * workers
	if int64(refs) > scaledCapacity*95/100 {
		refs = int(scaledCapacity * 95 / 100)
	}
	if err := cl.AddPhantom(refs); err != nil {
		panic(fmt.Sprintf("bench: phantom: %v", err))
	}
	rep, err := cl.Search(nil, nil)
	if err != nil {
		panic(fmt.Sprintf("bench: search: %v", err))
	}

	// The paper's headline 872,984 images/s is 14x its Table 7 single-GPU
	// figure (62,356 at m=384, batch 256, GPU-resident). Report both that
	// basis and the stricter measured hybrid-streaming number.
	_, tot := runPhantomMatch(gpusim.TeslaP100(), knn.RootSIFT, gpusim.FP16, 256, 384, 768, paperD)
	table7Basis := float64(workers) * 256e6 / tot

	t.AddRow("GPU containers", fmt.Sprintf("%d", workers), "14")
	t.AddRow("Hybrid cache (GB total)", f0(float64(fullCacheBytes)/(1<<30)), "1064")
	t.AddRow("Capacity (reference images)", fmt.Sprintf("%d", fullCapacity), "10.8M")
	t.AddRow("Aggregate speed, Table-7 basis (images/s)", f0(table7Basis), "872,984")
	t.AddRow("Aggregate speed, hybrid streaming (images/s)", f0(rep.Speed), dash)
	t.AddRow("Search time per million refs (s)", f2(1e6/rep.Speed), "~1.15")
	t.AddRow("Scaled index measured on", fmt.Sprintf("%d refs (1/%d)", refs, scale), dash)
	t.AddNote("per-container hybrid speed %.0f images/s vs the paper's 62,356 — with asymmetric m=384 "+
		"the PCIe requirement halves, so streaming no longer bottlenecks (Sec. 7's point), and our "+
		"overlap is cleaner than the paper's VMs (Table 6 note)", rep.Speed/workers)
	t.AddNote("slowest/fastest shard elapsed: %.2f", shardSkew(rep))
	return t
}

// shardSkew reports load balance across workers.
func shardSkew(rep *cluster.Report) float64 {
	if len(rep.PerWorker) == 0 {
		return 1
	}
	lo, hi := rep.PerWorker[0], rep.PerWorker[0]
	for _, v := range rep.PerWorker {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == 0 {
		return 1
	}
	return hi / lo
}
