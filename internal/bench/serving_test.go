package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestServingIdentityCheck(t *testing.T) {
	if !servingIdentityCheck(4) {
		t.Fatal("coalesced results diverged from sequential searches at concurrency 4")
	}
}

func TestServingSimLevelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two phantom engines")
	}
	a := servingSimLevel(2, 1)
	b := servingSimLevel(2, 1)
	if a.SerialQPS != b.SerialQPS || a.BatchedQPS != b.BatchedQPS || a.Speedup != b.Speedup {
		t.Fatalf("simulated level not bit-reproducible: %+v vs %+v", a, b)
	}
	if a.Speedup <= 1 {
		t.Fatalf("coalescing two clients should beat the serialized path: speedup %.2fx", a.Speedup)
	}
	if a.MeanBatch != 2 {
		t.Fatalf("lockstep waves of 2 should coalesce fully: mean batch %.2f", a.MeanBatch)
	}
}

func TestServingWallClosedSmoke(t *testing.T) {
	lv := servingWallClosed(2, 4)
	if lv.QPS <= 0 || lv.DirectQPS <= 0 {
		t.Fatalf("closed loop reported no throughput: %+v", lv)
	}
	if lv.Queries != 8 || lv.MeanBatch < 1 {
		t.Fatalf("closed loop shape wrong: %+v", lv)
	}
}

func TestQuantileUS(t *testing.T) {
	lat := []float64{5, 1, 3, 2, 4}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 3}, {0.99, 5}, {0.01, 1}, {1.00, 5},
	} {
		if got := quantileUS(lat, tc.q); got != tc.want {
			t.Errorf("quantileUS(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := quantileUS(nil, 0.5); got != 0 {
		t.Errorf("empty sample quantile = %v, want 0", got)
	}
}

func TestCompareServingReports(t *testing.T) {
	level := func(c int, qps, speedup float64, identical bool) ServingLevel {
		return ServingLevel{Concurrency: c, BatchedQPS: qps, Speedup: speedup, Identical: identical}
	}
	base := &ServingReport{Sim: []ServingLevel{
		level(1, 10, 1.0, true),
		level(16, 100, 5.0, true),
	}}

	clean := &ServingReport{Sim: []ServingLevel{
		level(1, 10, 1.0, true),
		level(16, 95, 4.8, true),
	}}
	if problems := CompareServingReports(base, clean, 0.10); len(problems) != 0 {
		t.Fatalf("clean run flagged: %v", problems)
	}

	bad := &ServingReport{Sim: []ServingLevel{
		level(1, 10, 1.0, false), // identity broken
		level(16, 60, 2.5, true), // below the 3x floor and >10% QPS drop
	}}
	problems := CompareServingReports(base, bad, 0.10)
	if len(problems) != 3 {
		t.Fatalf("want 3 problems (identity, floor, regression), got %d: %v", len(problems), problems)
	}
	for i, frag := range []string{"diverged", "below", "baseline"} {
		if !strings.Contains(problems[i], frag) {
			t.Errorf("problem %d %q missing %q", i, problems[i], frag)
		}
	}

	// A level absent from the baseline gates on identity/floor only.
	fresh := &ServingReport{Sim: []ServingLevel{level(64, 1, 8.0, true)}}
	if problems := CompareServingReports(base, fresh, 0.10); len(problems) != 0 {
		t.Fatalf("baseline-less level flagged: %v", problems)
	}
}

func TestServingReportRoundTrip(t *testing.T) {
	rep := &ServingReport{
		Device: "test", Refs: 1, RefFeatures: 2, QueryFeatures: 3, GOMAXPROCS: 4,
		Sim: []ServingLevel{{Concurrency: 16, Queries: 48, BatchedQPS: 42, Speedup: 3.5,
			SizeHist: make([]uint64, 9), Identical: true}},
		Wall: []WallLevel{{Mode: "open", Concurrency: 16, Queries: 256, QPS: 7}},
	}
	path := filepath.Join(t.TempDir(), "serve.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadServingReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != rep.Device || len(got.Sim) != 1 || got.Sim[0].BatchedQPS != 42 ||
		len(got.Wall) != 1 || got.Wall[0].Mode != "open" {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if _, err := LoadServingReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline loaded without error")
	}
}
