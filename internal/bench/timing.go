package bench

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/gpusim"
	"texid/internal/knn"
)

// paperDims are the evaluation dimensions used throughout the paper:
// m = n = 768 SIFT features of d = 128.
const (
	paperM = 768
	paperN = 768
	paperD = 128
)

// flopsPerImage is the similarity-matrix work per reference image.
func flopsPerImage(m, n, d int) float64 { return 2 * float64(m) * float64(n) * float64(d) }

// runPhantomMatch runs one MatchBatch invocation of the given variant on a
// fresh device and returns the device profile and total elapsed time.
func runPhantomMatch(spec gpusim.DeviceSpec, algo knn.Algorithm, prec gpusim.Precision, batch, m, n, d int) (map[string]gpusim.OpStats, float64) {
	dev := gpusim.NewDevice(spec)
	stream := dev.NewStream()
	withNorms := algo != knn.RootSIFT
	rb, err := knn.PhantomRefBatch(dev, batch, m, d, prec, withNorms)
	if err != nil {
		panic(fmt.Sprintf("bench: phantom refs: %v", err))
	}
	q, err := knn.PhantomQuery(dev, n, d)
	if err != nil {
		panic(fmt.Sprintf("bench: phantom query: %v", err))
	}
	if _, err := knn.MatchBatch(stream, rb, q, knn.Options{
		Algorithm: algo, Precision: prec, Scale: 1, Accum: blas.AccumFP16,
	}); err != nil {
		panic(fmt.Sprintf("bench: match: %v", err))
	}
	return dev.Profile(), dev.Synchronize()
}

// stepUS extracts one op kind's total time from a profile, or 0.
func stepUS(prof map[string]gpusim.OpStats, key string) float64 {
	return prof[key].TotalUS
}

// memory10kMB is Table 1's memory column: 10,000 reference feature
// matrices plus their N_R vectors plus the CUDA runtime overhead, in MB.
func memory10kMB(spec gpusim.DeviceSpec, prec gpusim.Precision) float64 {
	per := int64(paperM)*int64(paperD)*int64(prec.ElemBytes()) + int64(paperM)*4
	return float64(10000*per+spec.RuntimeOverhead) / (1 << 20)
}

// Table1 reproduces Table 1: per-step times, total, speed and memory of
// the four 2-NN implementations at batch 1.
func Table1(opts Options) *Table {
	spec := gpusim.TeslaP100()
	t := &Table{
		ID:     "Table 1",
		Title:  "cuBLAS 2-NN implementations, m=n=768, d=128, Tesla P100",
		Header: []string{"Execution step (us)", "CUDA (OpenCV)", "cuBLAS [9]", "cuBLAS (ours)", "cuBLAS+FP16 (ours)"},
	}

	type variant struct {
		algo knn.Algorithm
		prec gpusim.Precision
	}
	variants := []variant{
		{knn.Baseline, gpusim.FP32},
		{knn.Garcia, gpusim.FP32},
		{knn.Eq1Top2, gpusim.FP32},
		{knn.Eq1Top2, gpusim.FP16},
	}
	profiles := make([]map[string]gpusim.OpStats, len(variants))
	totals := make([]float64, len(variants))
	for i, v := range variants {
		profiles[i], totals[i] = runPhantomMatch(spec, v.algo, v.prec, 1, paperM, paperN, paperD)
	}

	cell := func(i int, keys ...string) string {
		var sum float64
		for _, k := range keys {
			sum += stepUS(profiles[i], k)
		}
		if sum == 0 {
			return dash
		}
		return f2(sum)
	}
	prec := func(i int) string { return variants[i].prec.String() }
	t.AddRow("GEMM / step 3",
		dash, cell(1, "gemm/"+prec(1)), cell(2, "gemm/"+prec(2)), cell(3, "gemm/"+prec(3)))
	t.AddRow("Add N_R / step 4",
		dash, cell(1, "elementwise/addNR"), cell(2, "elementwise/addNR"), cell(3, "elementwise/addNR"))
	t.AddRow("Top-2 sort / step 5",
		dash, cell(1, "insertionsort/fp32"), cell(2, "top2scan/fp32"), cell(3, "top2scan/fp16"))
	t.AddRow("Add N_Q and sqrt / steps 6-7",
		dash, cell(1, "elementwise/addNQ-sqrt"), cell(2, "elementwise/addNQ-sqrt"), cell(3, "elementwise/addNQ-sqrt"))
	t.AddRow("D2H memory copy / step 8",
		cell(0, "copy/d2h"), cell(1, "copy/d2h"), cell(2, "copy/d2h"), cell(3, "copy/d2h"))
	t.AddRow("Post-processing / CPU",
		cell(0, "host/post"), cell(1, "host/post"), cell(2, "host/post"), cell(3, "host/post"))
	t.AddRow("Monolithic match kernel",
		cell(0, "baseline-match"), dash, dash, dash)

	speeds := make([]float64, len(variants))
	row := []string{"Total time (us)"}
	for i, tot := range totals {
		speeds[i] = 1e6 / tot
		row = append(row, f1(tot))
	}
	t.AddRow(row...)
	row = []string{"Speed (images/s)"}
	for _, s := range speeds {
		row = append(row, f0(s))
	}
	t.AddRow(row...)
	t.AddRow("GPU memory, 10k refs (MB)",
		f0(memory10kMB(spec, gpusim.FP32)),
		f0(memory10kMB(spec, gpusim.FP32)),
		f0(memory10kMB(spec, gpusim.FP32)),
		f0(memory10kMB(spec, gpusim.FP16)))

	t.AddNote("paper totals: 497.0 / 330.3 / 148.5 / 169.0 us; speeds 2012 / 3027 / 6734 / 5917 images/s")
	t.AddNote("paper memory: 4271 / 4307 / 4307 / 2307 MB")
	t.AddNote("the FP16 top-2 scan is slower than FP32 (half-precision compare intrinsic), as the paper observed")
	return t
}

// Table3 reproduces Table 3: per-image step times of the batched
// RootSIFT pipeline (Algorithm 2 + FP16) at batch 1 vs 1024.
func Table3(opts Options) *Table {
	spec := gpusim.TeslaP100()
	t := &Table{
		ID:     "Table 3",
		Title:  "Batched reference feature matrix (Algorithm 2, FP16), per-image times, Tesla P100",
		Header: []string{"Execution step (us/image)", "BatchSize=1", "BatchSize=1024"},
	}
	p1, tot1 := runPhantomMatch(spec, knn.RootSIFT, gpusim.FP16, 1, paperM, paperN, paperD)
	p1024, tot1024 := runPhantomMatch(spec, knn.RootSIFT, gpusim.FP16, 1024, paperM, paperN, paperD)

	per := func(p map[string]gpusim.OpStats, key string, batch float64) string {
		v := stepUS(p, key) / batch
		if v == 0 {
			return dash
		}
		return f2(v)
	}
	t.AddRow("HGEMM / step 1", per(p1, "gemm/fp16", 1), per(p1024, "gemm/fp16", 1024))
	t.AddRow("Sort and sqrt / steps 2-3", per(p1, "top2scan/fp16", 1), per(p1024, "top2scan/fp16", 1024))
	t.AddRow("D2H memory copy / step 4", per(p1, "copy/d2h", 1), per(p1024, "copy/d2h", 1024))
	t.AddRow("Post-processing / CPU", per(p1, "host/post", 1), per(p1024, "host/post", 1024))
	t.AddRow("Total time (us/image)", f2(tot1), f2(tot1024/1024))
	t.AddRow("Speed (images/s)", f0(1e6/tot1), f0(1024e6/tot1024))
	t.AddNote("paper: batch 1 total 173.8 us (5,753 images/s); batch 1024 total 21.96 us (45,539 images/s)")
	return t
}

// Table4 reproduces Table 4: end-to-end GPU efficiency at batch 1024 on
// P100, V100, and V100 with tensor cores.
func Table4(opts Options) *Table {
	t := &Table{
		ID:     "Table 4",
		Title:  "GPU efficiency, m=n=768, d=128, batch 1024",
		Header: []string{"GPU", "Speed (images/s)", "Achieved TFLOPS", "Peak TFLOPS (FP16)", "Efficiency"},
	}
	specs := []gpusim.DeviceSpec{
		gpusim.TeslaP100(),
		gpusim.TeslaV100(false),
		gpusim.TeslaV100(true),
	}
	for _, spec := range specs {
		_, tot := runPhantomMatch(spec, knn.RootSIFT, gpusim.FP16, 1024, paperM, paperN, paperD)
		speed := 1024e6 / tot
		achieved := speed * flopsPerImage(paperM, paperN, paperD) / 1e12
		peak := spec.PeakTFLOPS(gpusim.FP16)
		t.AddRow(spec.Name, f0(speed), f2(achieved), f1(peak), pct(achieved/peak))
	}
	t.AddNote("paper: 45,539 / 67,612 / 86,519 images/s; 6.69 / 9.94 / 12.72 TFLOPS; 35.8%% / 35.5%% / 11.4%%")
	return t
}

// Fig4 reproduces Fig. 4: batched search speed vs batch size on P100 and
// V100 (with and without tensor cores).
func Fig4(opts Options) *Table {
	t := &Table{
		ID:     "Fig 4",
		Title:  "Search speed vs batch size (RootSIFT + batching, FP16, m=n=768)",
		Header: []string{"Batch", "P100 (img/s)", "V100 (img/s)", "V100+TC (img/s)"},
	}
	specs := []gpusim.DeviceSpec{
		gpusim.TeslaP100(),
		gpusim.TeslaV100(false),
		gpusim.TeslaV100(true),
	}
	var p100Speeds []float64
	for batch := 1; batch <= 1024; batch *= 2 {
		row := []string{fmt.Sprintf("%d", batch)}
		for i, spec := range specs {
			_, tot := runPhantomMatch(spec, knn.RootSIFT, gpusim.FP16, batch, paperM, paperN, paperD)
			speed := float64(batch) * 1e6 / tot
			row = append(row, f0(speed))
			if i == 0 {
				p100Speeds = append(p100Speeds, speed)
			}
		}
		t.AddRow(row...)
	}
	gain := p100Speeds[len(p100Speeds)-1] / p100Speeds[0]
	t.AddNote("P100 batch-1024 over batch-1 speedup: %.1fx (paper: 7.9x)", gain)
	t.AddNote("paper endpoints: P100 5,753 -> 45,539; V100 ~9,000 -> 67,612; V100+TC -> 86,519 images/s")
	t.AddNote("gains flatten past batch 256, as in the paper")
	return t
}
