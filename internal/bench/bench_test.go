package bench

import (
	"strconv"
	"strings"
	"testing"
)

// tinyOpts keeps the functional experiments fast enough for unit tests.
func tinyOpts() Options {
	opts := DefaultOptions()
	opts.Refs = 5
	opts.Queries = 6
	opts.FeatureScale = 8
	opts.MinMatches = 6
	opts.SystemRefs = 100_000
	return opts
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(cell, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func row(t *testing.T, tb *Table, key string) []string {
	t.Helper()
	for _, r := range tb.Rows {
		if strings.Contains(r[0], key) {
			return r
		}
	}
	t.Fatalf("table %s has no row containing %q", tb.ID, key)
	return nil
}

func TestTable1Shape(t *testing.T) {
	tb := Table1(tinyOpts())
	speeds := row(t, tb, "Speed")
	base := cellFloat(t, speeds[1])
	garcia := cellFloat(t, speeds[2])
	ours := cellFloat(t, speeds[3])
	fp16 := cellFloat(t, speeds[4])
	// Paper ordering: baseline < Garcia < ours; FP16 slightly slower than
	// FP32 at batch 1 (the half-precision compare penalty).
	if !(base < garcia && garcia < ours) {
		t.Fatalf("speed ordering wrong: %v %v %v", base, garcia, ours)
	}
	if !(fp16 < ours && fp16 > garcia) {
		t.Fatalf("FP16 batch-1 speed should sit between Garcia and ours: %v", fp16)
	}
	// Within 10% of the paper's anchors.
	anchors := []float64{2012, 3027, 6734, 5917}
	for i, want := range anchors {
		got := cellFloat(t, speeds[i+1])
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("variant %d speed %v, paper %v", i, got, want)
		}
	}
	mem := row(t, tb, "GPU memory")
	if cellFloat(t, mem[4]) >= cellFloat(t, mem[1]) {
		t.Fatal("FP16 memory should be roughly half of FP32")
	}
}

func TestTable2Shape(t *testing.T) {
	tb := Table2(tinyOpts())
	// Scale factor 1 must overflow.
	var sawOverflow bool
	errs := map[string]float64{}
	for _, r := range tb.Rows {
		if r[1] == "1" && r[2] == "overflow" {
			sawOverflow = true
		}
		if r[2] != "overflow" && r[2] != dash {
			errs[r[1]] = cellFloat(t, r[2])
		}
	}
	if !sawOverflow {
		t.Fatal("scale factor 1 should overflow FP16 accumulation")
	}
	// Plateau: production scale 2^-7 error well under 1%; tiny scales lose
	// precision to subnormals.
	if errs["2^-7"] > 0.5 {
		t.Fatalf("2^-7 compression error %v%%, want < 0.5%%", errs["2^-7"])
	}
	if errs["2^-16"] <= errs["2^-7"] {
		t.Fatalf("2^-16 error (%v) should exceed 2^-7 error (%v)", errs["2^-16"], errs["2^-7"])
	}
}

func TestTable3Shape(t *testing.T) {
	tb := Table3(tinyOpts())
	speeds := row(t, tb, "Speed")
	single := cellFloat(t, speeds[1])
	batched := cellFloat(t, speeds[2])
	if batched < 5*single {
		t.Fatalf("batching speedup only %.1fx (paper: 7.9x)", batched/single)
	}
	if batched < 40000 || batched > 52000 {
		t.Fatalf("batched speed %v, paper 45,539", batched)
	}
}

func TestTable4Shape(t *testing.T) {
	tb := Table4(tinyOpts())
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 GPU rows, got %d", len(tb.Rows))
	}
	p100 := cellFloat(t, tb.Rows[0][4])
	v100 := cellFloat(t, tb.Rows[1][4])
	tc := cellFloat(t, tb.Rows[2][4])
	// Tensor cores have by far the lowest end-to-end efficiency at this
	// matrix shape (Table 4's headline observation).
	if !(tc < v100 && tc < p100) {
		t.Fatalf("tensor-core efficiency should be lowest: %v %v %v", p100, v100, tc)
	}
	if p100 < 30 || p100 > 45 {
		t.Fatalf("P100 efficiency %v%%, paper 35.8%%", p100)
	}
}

func TestTable5Shape(t *testing.T) {
	tb := Table5(tinyOpts())
	gpu := cellFloat(t, row(t, tb, "GPU memory")[1])
	pageable := cellFloat(t, row(t, tb, "w/o pinned")[1])
	pinned := cellFloat(t, row(t, tb, "w/ pinned")[1])
	if !(gpu > pinned && pinned > pageable) {
		t.Fatalf("want gpu > pinned > pageable, got %v %v %v", gpu, pinned, pageable)
	}
	// Paper: pinned hybrid loses ~44% vs GPU-resident.
	drop := 1 - pinned/gpu
	if drop < 0.30 || drop > 0.60 {
		t.Fatalf("hybrid slowdown %.0f%%, paper ~44%%", drop*100)
	}
}

func TestTable6Shape(t *testing.T) {
	tb := Table6(tinyOpts())
	speeds := map[string]float64{}
	for _, r := range tb.Rows {
		speeds[r[0]+"/"+r[1]] = cellFloat(t, r[3])
	}
	for _, batch := range []string{"512", "256"} {
		s1 := speeds[batch+"/1"]
		s2 := speeds[batch+"/2"]
		s8 := speeds[batch+"/8"]
		if !(s2 > s1 && s8 >= s2) {
			t.Fatalf("batch %s: streams must not slow search: %v %v %v", batch, s1, s2, s8)
		}
		if s8 < s1*1.5 {
			t.Fatalf("batch %s: 8 streams should recover most of the PCIe loss (%.0f vs %.0f)", batch, s8, s1)
		}
	}
	// Extra GPU memory grows linearly with streams.
	var ws1, ws8 float64
	for _, r := range tb.Rows {
		if r[0] == "512" && r[1] == "1" {
			ws1 = cellFloat(t, r[2])
		}
		if r[0] == "512" && r[1] == "8" {
			ws8 = cellFloat(t, r[2])
		}
	}
	if ws8 < ws1*7.5 || ws8 > ws1*8.5 {
		t.Fatalf("workspace should scale ~8x with 8 streams: %v -> %v", ws1, ws8)
	}
}

func TestTable7Shape(t *testing.T) {
	tb := Table7(tinyOpts())
	if len(tb.Rows) != 7 {
		t.Fatalf("want 7 configurations, got %d", len(tb.Rows))
	}
	// Speed rises monotonically as m shrinks (m sweep is rows 0-3).
	var prev float64
	for i := 0; i < 4; i++ {
		speed := cellFloat(t, tb.Rows[i][3])
		if speed <= prev {
			t.Fatalf("speed not increasing as m shrinks: row %d = %v", i, speed)
		}
		prev = speed
	}
	// Accuracy must not increase when m shrinks (allowing equality at this
	// tiny dataset size).
	accFull := cellFloat(t, tb.Rows[0][2])
	accSmall := cellFloat(t, tb.Rows[3][2])
	if accSmall > accFull {
		t.Fatalf("accuracy increased with fewer reference features: %v -> %v", accFull, accSmall)
	}
	// The paper's operating point row exists.
	if tb.Rows[2][0] != "384" || tb.Rows[2][1] != "768" {
		t.Fatalf("row 2 should be the m=384,n=768 operating point: %v", tb.Rows[2])
	}
}

func TestFig1Shape(t *testing.T) {
	tb := Fig1(tinyOpts())
	last := tb.Rows[len(tb.Rows)-1]
	speedup := cellFloat(t, last[3])
	capacity := cellFloat(t, last[4])
	if speedup < 25 || speedup > 45 {
		t.Fatalf("cumulative speedup %vx, paper 31x", speedup)
	}
	if capacity < 19 || capacity > 21 {
		t.Fatalf("cumulative capacity %vx, paper 20x", capacity)
	}
	// Capacity doubles at the FP16 stage and again at the asymmetric stage.
	capFP32 := cellFloat(t, tb.Rows[0][2])
	capFP16 := cellFloat(t, tb.Rows[2][2])
	if capFP16 < capFP32*1.9 || capFP16 > capFP32*2.1 {
		t.Fatalf("FP16 should double capacity: %v -> %v", capFP32, capFP16)
	}
}

func TestFig4Shape(t *testing.T) {
	tb := Fig4(tinyOpts())
	if len(tb.Rows) != 11 { // batch 1..1024 in powers of two
		t.Fatalf("want 11 batch sizes, got %d", len(tb.Rows))
	}
	for col := 1; col <= 3; col++ {
		var prev float64
		for _, r := range tb.Rows {
			v := cellFloat(t, r[col])
			if v <= prev {
				t.Fatalf("column %d not monotone at batch %s", col, r[0])
			}
			prev = v
		}
	}
	// Gains flatten: the last doubling adds < 5%.
	p512 := cellFloat(t, tb.Rows[9][1])
	p1024 := cellFloat(t, tb.Rows[10][1])
	if p1024/p512 > 1.05 {
		t.Fatalf("speed should flatten past batch 256: %v -> %v", p512, p1024)
	}
	// V100+TC is the fastest at large batch.
	if cellFloat(t, tb.Rows[10][3]) <= cellFloat(t, tb.Rows[10][2]) {
		t.Fatal("tensor cores should win at batch 1024")
	}
}

func TestSystemShape(t *testing.T) {
	tb := System(tinyOpts())
	cap := cellFloat(t, row(t, tb, "Capacity")[1])
	if cap < 10e6 || cap > 13e6 {
		t.Fatalf("capacity %v, paper 10.8M", cap)
	}
	basis := cellFloat(t, row(t, tb, "Table-7 basis")[1])
	if basis < 700_000 || basis > 1_300_000 {
		t.Fatalf("aggregate speed %v, paper 872,984", basis)
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nope", tinyOpts()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	tb, err := Run("table4", tinyOpts())
	if err != nil || tb.ID != "Table 4" {
		t.Fatalf("Run(table4) = %v, %v", tb, err)
	}
	for _, id := range Experiments {
		if id == "" {
			t.Fatal("empty experiment id")
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddNote("n%d", 5)
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "note: n5") {
		t.Fatalf("String output wrong:\n%s", s)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "*n5*") {
		t.Fatalf("Markdown output wrong:\n%s", md)
	}
}

func TestOptionsScaled(t *testing.T) {
	opts := Options{FeatureScale: 4}
	if opts.scaled(768) != 192 {
		t.Fatalf("scaled(768) = %d", opts.scaled(768))
	}
	opts.FeatureScale = 0
	if opts.scaled(768) != 768 {
		t.Fatal("FeatureScale 0 should mean paper scale")
	}
	opts.FeatureScale = 1000
	if opts.scaled(768) != 8 {
		t.Fatal("scaled() should clamp at a usable minimum")
	}
}

func TestQueryBatchShape(t *testing.T) {
	tb := QueryBatch(tinyOpts())
	if len(tb.Rows) != 6 {
		t.Fatalf("want 6 batch sizes, got %d", len(tb.Rows))
	}
	// Throughput non-decreasing, latency increasing roughly linearly.
	var prevTP, prevLat float64
	for i, r := range tb.Rows {
		tp := cellFloat(t, r[1])
		lat := cellFloat(t, r[2])
		if tp < prevTP*0.99 {
			t.Fatalf("throughput dropped at row %d: %v -> %v", i, prevTP, tp)
		}
		if lat <= prevLat {
			t.Fatalf("latency must grow with query batch at row %d", i)
		}
		prevTP, prevLat = tp, lat
	}
	lastLat := cellFloat(t, tb.Rows[5][3])
	if lastLat < 25 || lastLat > 40 {
		t.Fatalf("32-query latency multiplier %vx, want ~31x", lastLat)
	}
}

func TestAblateSortShape(t *testing.T) {
	tb := AblateSort(tinyOpts())
	for _, r := range tb.Rows {
		adv := cellFloat(t, r[3])
		if adv < 3 {
			t.Fatalf("scan advantage %vx at batch %s, want substantial", adv, r[0])
		}
	}
}

func TestAblateSwapShape(t *testing.T) {
	tb := AblateSwap(tinyOpts())
	whole := cellFloat(t, tb.Rows[0][1])
	per := cellFloat(t, tb.Rows[1][1])
	if per < 2*whole {
		t.Fatalf("per-image DMA should be much slower: %v vs %v", per, whole)
	}
}

func TestAblateJitterShape(t *testing.T) {
	tb := AblateJitter(tinyOpts())
	// At every jitter level, 8 streams beat 1 stream; and at 2 streams,
	// higher jitter means lower efficiency (the Table 6 mechanism).
	var prev2 float64 = 200
	for _, r := range tb.Rows {
		s1 := cellFloat(t, r[1])
		s2 := cellFloat(t, r[2])
		s8 := cellFloat(t, r[4])
		if s8 <= s1 {
			t.Fatalf("CoV %s: 8 streams (%v%%) should beat 1 (%v%%)", r[0], s8, s1)
		}
		if s2 > prev2+1e-9 {
			t.Fatalf("2-stream efficiency should fall as jitter grows: %v -> %v", prev2, s2)
		}
		prev2 = s2
	}
}

func TestCBIRShape(t *testing.T) {
	tb := CBIR(tinyOpts())
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 methods, got %d", len(tb.Rows))
	}
	ours := cellFloat(t, tb.Rows[0][2])
	pq := cellFloat(t, tb.Rows[2][2])
	if pq > ours {
		t.Fatalf("PQ-compressed CBIR should not beat per-image matching: %v vs %v", pq, ours)
	}
}

func TestAblateDescriptorShape(t *testing.T) {
	tb := AblateDescriptor(tinyOpts())
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 descriptor rows, got %d", len(tb.Rows))
	}
	siftAcc := cellFloat(t, tb.Rows[0][3])
	surfAcc := cellFloat(t, tb.Rows[1][3])
	siftSpeed := cellFloat(t, tb.Rows[0][4])
	surfSpeed := cellFloat(t, tb.Rows[1][4])
	if surfSpeed <= siftSpeed {
		t.Fatalf("d=64 must be faster: %v vs %v", surfSpeed, siftSpeed)
	}
	if surfAcc > siftAcc {
		t.Fatalf("SURF should not beat SIFT on this texture task: %v vs %v", surfAcc, siftAcc)
	}
	orbAcc := cellFloat(t, tb.Rows[2][3])
	if orbAcc > siftAcc {
		t.Fatalf("ORB should not beat SIFT on this texture task: %v vs %v", orbAcc, siftAcc)
	}
	orbSpeed := cellFloat(t, tb.Rows[2][4])
	if orbSpeed <= siftSpeed {
		t.Fatalf("binary Hamming matching should outpace the FP16 GEMM path: %v vs %v", orbSpeed, siftSpeed)
	}
}

func TestVerifyCostShape(t *testing.T) {
	tb := VerifyCost(tinyOpts())
	// Verification (M=1): extraction dominates; million-scale search:
	// matching dominates.
	first := cellFloat(t, tb.Rows[0][4])
	last := cellFloat(t, tb.Rows[len(tb.Rows)-1][4])
	if first > 50 {
		t.Fatalf("verification matching share %v%%, want minority", first)
	}
	if last < 99 {
		t.Fatalf("million-scale matching share %v%%, want ~100%%", last)
	}
}

func TestDifficultySweepShape(t *testing.T) {
	tb := DifficultySweep(tinyOpts())
	if len(tb.Rows) != 5 {
		t.Fatalf("want 5 difficulty points, got %d", len(tb.Rows))
	}
	first := cellFloat(t, tb.Rows[0][1])
	lastTwo := cellFloat(t, tb.Rows[3][1]) + cellFloat(t, tb.Rows[4][1])
	if first < cellFloat(t, tb.Rows[4][1]) {
		t.Fatalf("accuracy should not rise with difficulty: %v -> %v", first, cellFloat(t, tb.Rows[4][1]))
	}
	if first < 50 {
		t.Fatalf("easy captures should mostly identify: %v%%", first)
	}
	_ = lastTwo
}

func TestDeviceProjectionShape(t *testing.T) {
	tb := DeviceProjection(tinyOpts())
	if len(tb.Rows) != 4 {
		t.Fatalf("want 4 devices, got %d", len(tb.Rows))
	}
	var prev float64
	for _, r := range tb.Rows {
		v := cellFloat(t, r[1])
		if v <= prev {
			t.Fatalf("resident speed should rise across generations: %s = %v", r[0], v)
		}
		prev = v
	}
	// Newer devices become PCIe-bound in hybrid mode.
	if tb.Rows[3][3] != "PCIe" {
		t.Fatalf("A100 hybrid should be PCIe-bound, got %s", tb.Rows[3][3])
	}
}

func TestAblateGeometricShape(t *testing.T) {
	tb := AblateGeometric(tinyOpts())
	if len(tb.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(tb.Rows))
	}
	rawAcc := cellFloat(t, tb.Rows[0][1])
	geoAcc := cellFloat(t, tb.Rows[1][1])
	rawFAR := cellFloat(t, tb.Rows[0][2])
	geoFAR := cellFloat(t, tb.Rows[1][2])
	if geoFAR > rawFAR {
		t.Fatalf("RANSAC should not raise the false-accept rate: %v -> %v", rawFAR, geoFAR)
	}
	if geoAcc < rawAcc-25 {
		t.Fatalf("RANSAC should not destroy true accuracy: %v -> %v", rawAcc, geoAcc)
	}
}

func TestPruneSweepShape(t *testing.T) {
	tb := PruneSweep(tinyOpts())
	if len(tb.Rows) != 6 {
		t.Fatalf("want 6 budget rows, got %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "off" {
		t.Fatalf("first row should be the unpruned baseline, got %q", tb.Rows[0][0])
	}
	offRecall := cellFloat(t, tb.Rows[0][1])
	offAcc := cellFloat(t, tb.Rows[0][2])
	if offRecall != 100 {
		t.Fatalf("unpruned candidate recall must be 100%%, got %v", offRecall)
	}
	var prevRecall float64
	for _, r := range tb.Rows[1:] {
		recall := cellFloat(t, r[1])
		if recall < prevRecall {
			t.Fatalf("candidate recall should not fall as C grows: C=%s %v < %v", r[0], recall, prevRecall)
		}
		prevRecall = recall
	}
	// At the largest budget the prefilter passes everything through (C=16 >=
	// 5 refs): recall and accuracy must match the unpruned row exactly.
	last := tb.Rows[len(tb.Rows)-1]
	if cellFloat(t, last[1]) != 100 {
		t.Fatalf("C>=N recall %v, want 100", cellFloat(t, last[1]))
	}
	if cellFloat(t, last[2]) != offAcc {
		t.Fatalf("C>=N accuracy %v, want unpruned %v", cellFloat(t, last[2]), offAcc)
	}
	// Avg reranked tracks min(C, refs).
	if got := cellFloat(t, tb.Rows[1][3]); got != 1 {
		t.Fatalf("C=1 should rerank exactly 1 image/query, got %v", got)
	}
	if got := cellFloat(t, last[3]); got != 5 {
		t.Fatalf("C=16 on 5 refs should rerank all 5, got %v", got)
	}
}
