package bench

import (
	"fmt"

	"texid/internal/sift"
)

// VerifyCost reproduces the Sec. 3.3 analysis as numbers: "by considering
// the verification task, the feature extraction step dominates the compute
// demands ... however, [for] the identification task of searching in a
// large reference dataset, the 2-nearest neighbors matching becomes the
// most complicated step". Extraction work is constant per query; matching
// work scales with the reference count M.
func VerifyCost(opts Options) *Table {
	t := &Table{
		ID:     "Verify-cost",
		Title:  "Extraction vs matching work per query (1024px capture, m=n=768, d=128)",
		Header: []string{"Task", "References M", "Extraction GFLOPs", "Matching GFLOPs", "Matching share"},
	}
	cfg := sift.DefaultConfig()
	ext := sift.EstimateCost(1024, cfg, 768).Total() / 1e9
	for _, M := range []int{1, 100, 10_000, 1_000_000, 10_800_000} {
		matchF := sift.Match2NNFLOPs(M, 768, 768, 128) / 1e9
		task := "search"
		if M == 1 {
			task = "verification"
		}
		t.AddRow(task, fmt.Sprintf("%d", M), f2(ext), f2(matchF), pct(matchF/(matchF+ext)))
	}
	t.AddNote("the paper: 'each matching requires 75 million multiply-add operations. If we search in a " +
		"million texture images, we need to handle 75 trillion operations'")
	t.AddNote("crossover sits at M ≈ %.0f references: below it (verification) extraction dominates, "+
		"above it (search) matching does — why the paper accelerates matching, not extraction",
		ext*1e9/sift.Match2NNFLOPs(1, 768, 768, 128))
	return t
}
