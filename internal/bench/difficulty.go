package bench

import (
	"fmt"

	"texid/internal/gpusim"
	"texid/internal/knn"
)

// DifficultySweep (extension) maps the pipeline's robustness range: top-1
// accuracy at the production operating point (m=384, n=768, scaled) as the
// capture perturbation strength grows from near-identical re-captures to
// heavily blurred, occluded, re-lit smartphone shots. The paper's dataset
// fixes one difficulty (real tea-brick captures); the synthetic dataset's
// knob lets us chart the whole curve.
func DifficultySweep(opts Options) *Table {
	m := opts.scaled(384)
	n := opts.scaled(768)
	t := &Table{
		ID: "Difficulty",
		Title: fmt.Sprintf("Accuracy vs capture difficulty (extension; m=%d, n=%d, %d refs, %d queries per point)",
			m, n, opts.Refs, opts.Queries),
		Header: []string{"Difficulty", "Top-1 accuracy"},
	}
	for _, d := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		o := opts
		o.Difficulty = d
		ds := buildAccDataset(o)
		acc := top1Accuracy(ds, m, n, true, knn.Options{
			Algorithm: knn.RootSIFT, Precision: gpusim.FP32,
		}, 0.75, opts.MinMatches)
		t.AddRow(f2(d), pct(acc))
	}
	t.AddNote("difficulty draws viewpoint (up to ~26 deg + shear), illumination (±35%%), defocus blur " +
		"(sigma up to 2.8 px), sensor noise, and occlusion (up to 28%% of the side)")
	t.AddNote("blur is the dominant failure mode: it erases the fine-scale keypoints pressed-leaf texture lives on")
	return t
}
