package bench

import (
	"fmt"

	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/knn"
)

// hybridSearchSpeed builds a phantom engine where all but one batch of
// references is host-resident, runs one search, and returns the achieved
// speed plus the engine's workspace size.
func hybridSearchSpeed(spec gpusim.DeviceSpec, batch, streams, nBatches, m, n int, allGPU, pinned bool) (speed float64, workspaceGB float64) {
	cfg := engine.DefaultConfig()
	cfg.Spec = spec
	cfg.BatchSize = batch
	cfg.Streams = streams
	cfg.Precision = gpusim.FP16
	cfg.Algorithm = knn.RootSIFT
	cfg.RefFeatures = m
	cfg.QueryFeatures = n
	cfg.Dim = paperD
	cfg.PinnedHost = pinned
	cfg.HostCacheBytes = 256 << 30
	if !allGPU {
		// Budget for exactly one resident batch: everything else demotes
		// to the host level and must stream over PCIe per search.
		cfg.GPUCacheBytes = int64(batch)*int64(m)*int64(paperD)*2 + 1
	}
	e, err := engine.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: engine: %v", err))
	}
	if err := e.AddPhantom(0, nBatches*batch); err != nil {
		panic(fmt.Sprintf("bench: phantom refs: %v", err))
	}
	rep, err := e.Search(nil, nil)
	if err != nil {
		panic(fmt.Sprintf("bench: search: %v", err))
	}
	return rep.Speed, e.Stats().WorkspaceGB
}

// Table5 reproduces Table 5: search speed with the hybrid memory cache —
// GPU-resident vs host-resident with and without pinned memory (batch
// 1024, single stream).
func Table5(opts Options) *Table {
	spec := gpusim.TeslaP100()
	t := &Table{
		ID:     "Table 5",
		Title:  "Hybrid memory cache, m=n=768, batch 1024, 1 stream, Tesla P100",
		Header: []string{"Cache type", "Speed (images/s)"},
	}
	gpu, _ := hybridSearchSpeed(spec, 1024, 1, 8, paperM, paperN, true, true)
	pageable, _ := hybridSearchSpeed(spec, 1024, 1, 8, paperM, paperN, false, false)
	pinned, _ := hybridSearchSpeed(spec, 1024, 1, 8, paperM, paperN, false, true)
	t.AddRow("GPU memory", f0(gpu))
	t.AddRow("Host memory w/o pinned memory", f0(pageable))
	t.AddRow("Host memory w/ pinned memory", f0(pinned))
	t.AddNote("paper: 45,539 / 17,619 / 25,362 images/s")
	t.AddNote("hybrid slowdown %.1f%% (paper 43.9%%): the PCIe link is the bottleneck", (1-pinned/gpu)*100)
	return t
}

// jitteredHybridSpeed averages hybridSearchSpeed over several jitter seeds
// (a single seed draw swings the PCIe-bound makespan by ~±12%).
func jitteredHybridSpeed(base gpusim.DeviceSpec, cov float64, seed0 uint64, batch, streams, nBatches, m, n int, pinned bool) (speed, wsGB float64) {
	reps := 8
	if cov == 0 {
		reps = 1
	}
	var sum float64
	for r := 0; r < reps; r++ {
		spec := gpusim.WithJitter(base, cov, seed0+uint64(r)*101)
		s, ws := hybridSearchSpeed(spec, batch, streams, nBatches, m, n, false, pinned)
		sum += s
		wsGB = ws
	}
	return sum / float64(reps), wsGB
}

// Table6 reproduces Table 6: multi-stream recovery of the hybrid-cache
// speed loss — batch {512, 256} x streams {1, 2, 4, 8}, host-resident
// references, pinned memory, with cloud-VM jitter enabled.
func Table6(opts Options) *Table {
	base := gpusim.TeslaP100()
	t := &Table{
		ID:     "Table 6",
		Title:  "Multiple CPU threads and CUDA streams, m=n=768, Tesla P100, host-resident refs",
		Header: []string{"Batch", "Streams", "Extra GPU mem (GB)", "Speed (images/s)", "Schedule efficiency"},
	}
	// Theoretical peak: the search is PCIe-bound when references stream
	// from the host — bytes per image over the pinned link, adjusted for
	// the one batch (of 16) that stays GPU-resident and needs no copy.
	const nBatches = 16
	bytesPerImage := float64(paperM * paperD * 2)
	theoretical := base.PCIePinnedGBs * 1e9 / bytesPerImage * nBatches / (nBatches - 1)
	for _, batch := range []int{512, 256} {
		for _, streams := range []int{1, 2, 4, 8} {
			speed, wsGB := jitteredHybridSpeed(base, opts.JitterCoV, uint64(opts.Seed)+7,
				batch, streams, nBatches, paperM, paperN, true)
			t.AddRow(fmt.Sprintf("%d", batch), fmt.Sprintf("%d", streams),
				f2(wsGB), f0(speed), pct(speed/theoretical))
		}
	}
	t.AddNote("theoretical PCIe-bound speed: %s images/s (paper: 47,592)", f0(theoretical))
	t.AddNote("paper batch 512: 24,984 / 29,459 / 37,955 / 41,546 (52.5%% / 61.9%% / 79.8%% / 87.3%%)")
	t.AddNote("paper batch 256: 24,554 / 28,259 / 36,733 / 40,310")
	t.AddNote("deviation: our simulated overlap is cleaner than the paper's cloud VMs, so " +
		"efficiency saturates by ~4 streams instead of climbing to 8; trend direction is preserved")
	return t
}
