package bench

import (
	"fmt"
	"math"

	"texid/internal/blas"
	"texid/internal/gpusim"
	"texid/internal/half"
	"texid/internal/knn"
	"texid/internal/match"
	"texid/internal/sift"
	"texid/internal/texture"
)

// accDataset is the functional accuracy benchmark: real SIFT features
// extracted from the synthetic tea-brick dataset, kept at full feature
// count so each experiment can trim to its (m, n) budget.
type accDataset struct {
	refs    []*sift.Features // raw SIFT, response-sorted, norm-512
	queries []*sift.Features
	truth   []int
	opts    Options
}

// buildAccDataset renders the dataset and extracts features once.
func buildAccDataset(opts Options) *accDataset {
	p := texture.DefaultGenParams()
	p.Size = opts.ImageSize
	ds := texture.BuildDataset(opts.Seed, opts.Refs, opts.Queries, opts.Difficulty, p)

	cfg := sift.DefaultConfig()
	cfg.MaxFeatures = 0 // keep everything; experiments trim
	out := &accDataset{truth: ds.Truth, opts: opts}
	out.refs = sift.ExtractBatch(ds.Refs, cfg)
	out.queries = sift.ExtractBatch(ds.Queries, cfg)
	return out
}

// subset returns a view of the dataset limited to the first q queries
// (Table 2's FP16-accumulating GEMMs are ~20x slower than FP32, so it runs
// on fewer queries than Table 7).
func (ds *accDataset) subset(q int) *accDataset {
	if q >= len(ds.queries) {
		return ds
	}
	out := *ds
	out.queries = ds.queries[:q]
	out.truth = ds.truth[:q]
	return &out
}

// trim returns the first k response-ranked descriptor columns as a fresh
// matrix; rootSIFT applies the Hellinger transform to the copy. Images
// with fewer than k features are padded with zero columns (harmless under
// unit-norm matching: a zero vector sits at distance √2 from every real
// feature, so the ratio test never selects it).
func trim(f *sift.Features, k int, rootSIFT bool) *blas.Matrix {
	have := f.Count()
	if have > k {
		have = k
	}
	m := f.Descriptors.Slice(0, have).Clone()
	if rootSIFT {
		sift.ApplyRootSIFT(m)
	}
	if have == k {
		return m
	}
	padded := blas.NewMatrix(m.Rows, k)
	for j := 0; j < have; j++ {
		copy(padded.Col(j), m.Col(j))
	}
	return padded
}

// top1Accuracy runs the full one-to-many search for every query through
// the real 2-NN kernels and returns the fraction identified correctly:
// the true reference must rank first AND clear the minMatches acceptance
// threshold (open-set identification — a weak best match is a rejection).
func top1Accuracy(ds *accDataset, m, n int, rootSIFT bool, opts knn.Options, ratio float64, minMatches int) float64 {
	dev := gpusim.NewDevice(gpusim.TeslaP100())
	stream := dev.NewStream()

	refMats := make([]*blas.Matrix, len(ds.refs))
	ids := make([]int, len(ds.refs))
	for i, f := range ds.refs {
		refMats[i] = trim(f, m, rootSIFT)
		ids[i] = i
	}
	withNorms := opts.Algorithm != knn.RootSIFT
	rb, err := knn.NewRefBatch(dev, ids, refMats, opts.Precision, opts.Scale, withNorms)
	if err != nil {
		panic(fmt.Sprintf("bench: ref batch: %v", err))
	}
	defer rb.Free()

	correct := 0
	for qi, qf := range ds.queries {
		q, err := knn.NewQuery(dev, trim(qf, n, rootSIFT), opts.Precision, opts.Scale)
		if err != nil {
			panic(fmt.Sprintf("bench: query: %v", err))
		}
		pairs, err := knn.MatchBatch(stream, rb, q, opts)
		if err != nil {
			panic(fmt.Sprintf("bench: match: %v", err))
		}
		var results []match.SearchResult
		for _, p := range pairs {
			results = append(results, match.SearchResult{
				RefID: p.RefID,
				Score: len(match.RatioTest(p, ratio)),
			})
		}
		top, ok := match.Identify(results, match.Config{MinMatches: minMatches})
		if ok && top.RefID == ds.truth[qi] {
			correct++
		}
		q.Free()
	}
	return float64(correct) / float64(len(ds.queries))
}

// compressionError measures the mean relative error of pairwise feature
// distances under FP16 storage with the given scale factor (Eq. 2),
// sampling up to maxPairs reference-query image pairs. It also reports
// whether any distance overflowed.
func compressionError(ds *accDataset, m, n int, scale float32, accum blas.AccumMode, maxPairs int) (avg float64, overflow bool) {
	var relSum float64
	var count int
	pairs := 0
	for ri := range ds.refs {
		for qi := range ds.queries {
			if pairs >= maxPairs {
				break
			}
			pairs++
			R := trim(ds.refs[ri], m, false)
			Q := trim(ds.queries[qi], n, false)

			exact := blas.NewMatrix(R.Cols, Q.Cols)
			blas.GemmTN(-2, R, Q, 0, exact)
			nr := blas.SquaredNorms(R)
			nq := blas.SquaredNorms(Q)

			hR, ovR := blas.HalfFromMatrix(R, scale)
			hQ, ovQ := blas.HalfFromMatrix(Q, scale)
			if ovR+ovQ > 0 {
				return 0, true
			}
			approx := blas.NewMatrix(R.Cols, Q.Cols)
			blas.HGemmTN(-2, hR, hQ, accum, approx)
			inv := 1 / (scale * scale)

			for j := 0; j < Q.Cols; j++ {
				for i := 0; i < R.Cols; i++ {
					a := float64(approx.At(i, j)) * float64(inv)
					if math.IsInf(a, 0) || math.IsNaN(a) {
						return 0, true
					}
					exactρ2 := float64(exact.At(i, j)) + float64(nr[i]) + float64(nq[j])
					approxρ2 := a + float64(nr[i]) + float64(nq[j])
					if exactρ2 <= 1e-9 {
						continue
					}
					eρ := math.Sqrt(exactρ2)
					aρ := math.Sqrt(math.Max(approxρ2, 0))
					relSum += math.Abs(aρ-eρ) / eρ
					count++
				}
			}
		}
	}
	if count == 0 {
		return 0, false
	}
	return relSum / float64(count), false
}

// Table2 reproduces Table 2: FP16 compression error and top-1 search
// accuracy across scale factors, on real (scaled-down) SIFT features.
func Table2(opts Options) *Table {
	return table2WithDataset(buildAccDataset(opts), opts)
}

func table2WithDataset(ds *accDataset, opts Options) *Table {
	ds = ds.subset(12)
	m := opts.scaled(768)
	n := opts.scaled(768)
	t := &Table{
		ID: "Table 2",
		Title: fmt.Sprintf("FP16 compression error and accuracy vs scale factor (m=n=%d, %d refs, %d queries)",
			m, opts.Refs, len(ds.queries)),
		Header: []string{"Precision", "Scale factor", "Avg compression error", "Top-1 accuracy"},
	}

	ratio := 0.75
	fullPrec := top1Accuracy(ds, m, n, false, knn.Options{
		Algorithm: knn.Eq1Top2, Precision: gpusim.FP32,
	}, ratio, opts.MinMatches)
	t.AddRow("full precision", dash, dash, pct(fullPrec))

	maxPairs := 24
	for _, exp := range []int{0, -1, -2, -7, -12, -14, -16} {
		scale := half.PowerOfTwoScale(exp)
		label := "1"
		if exp != 0 {
			label = fmt.Sprintf("2^%d", exp)
		}
		err, overflow := compressionError(ds, m, n, scale, blas.AccumFP16, maxPairs)
		if overflow {
			t.AddRow("FP16", label, "overflow", dash)
			continue
		}
		acc := top1Accuracy(ds, m, n, false, knn.Options{
			Algorithm: knn.Eq1Top2, Precision: gpusim.FP16,
			Scale: scale, Accum: blas.AccumFP16,
		}, ratio, opts.MinMatches)
		t.AddRow("FP16", label, pct(err), pct(acc))
	}
	t.AddNote("paper (m=n=768, tea-brick dataset): full precision 98.58%%; scales 1 and 2^-1 overflow; " +
		"2^-2..2^-12 error 0.1026%% at full accuracy; 2^-14 0.1043%%/98.31%%; 2^-16 0.3492%%/98.31%%")
	t.AddNote("dimensions scaled by 1/%d for pure-Go FP16-accumulating GEMM tractability", opts.FeatureScale)
	return t
}

// Table7 reproduces Table 7: accuracy and speed of asymmetric feature
// extraction. Accuracy runs the real pipeline at scaled dimensions (FP32
// matching; the FP16 delta is covered by Table 2); speed runs phantom
// batches at the paper's full dimensions.
func Table7(opts Options) *Table {
	return table7WithDataset(buildAccDataset(opts), opts)
}

func table7WithDataset(ds *accDataset, opts Options) *Table {
	t := &Table{
		ID: "Table 7",
		Title: fmt.Sprintf("Asymmetric feature counts: accuracy (scaled 1/%d, %d refs, %d queries) and speed (batch 256)",
			opts.FeatureScale, opts.Refs, opts.Queries),
		Header: []string{"m (reference)", "n (query)", "Top-1 accuracy", "Speed (images/s)"},
	}
	spec := gpusim.TeslaP100()
	configs := [][2]int{
		{768, 768}, {512, 768}, {384, 768}, {256, 768},
		{384, 1024}, {384, 512}, {384, 384},
	}
	ratio := 0.75
	for _, c := range configs {
		m, n := c[0], c[1]
		acc := top1Accuracy(ds, opts.scaled(m), opts.scaled(n), true, knn.Options{
			Algorithm: knn.RootSIFT, Precision: gpusim.FP32,
		}, ratio, opts.MinMatches)
		_, tot := runPhantomMatch(spec, knn.RootSIFT, gpusim.FP16, 256, m, n, paperD)
		speed := 256e6 / tot
		t.AddRow(fmt.Sprintf("%d", m), fmt.Sprintf("%d", n), pct(acc), f0(speed))
	}
	t.AddNote("paper accuracy: 97.74 / 97.74 / 97.46 / 94.07 (m sweep); 98.02 / 95.76 / 91.81 (n sweep around m=384)")
	t.AddNote("paper speed: 46,323 / 57,859 / 62,356 / 68,472; 46,204 / 91,367 / 111,818 images/s")
	t.AddNote("paper's chosen operating point m=384, n=768: accuracy loss 0.28%%, speed +34.6%%, half the reference memory")
	return t
}
