package bench

import "fmt"

// Experiments lists every reproducible table and figure by id, followed by
// the ablation/extension experiments.
var Experiments = []string{
	"table1", "table2", "table3", "table4", "table5", "table6", "table7",
	"fig1", "fig4", "system",
	"qbatch", "ablate-sort", "ablate-swap", "ablate-jitter", "ablate-descriptor", "ablate-geometric", "cbir", "verify-cost", "difficulty", "devices", "prune",
}

// Run executes one experiment by id.
func Run(id string, opts Options) (*Table, error) {
	switch id {
	case "table1":
		return Table1(opts), nil
	case "table2":
		return Table2(opts), nil
	case "table3":
		return Table3(opts), nil
	case "table4":
		return Table4(opts), nil
	case "table5":
		return Table5(opts), nil
	case "table6":
		return Table6(opts), nil
	case "table7":
		return Table7(opts), nil
	case "fig1":
		return Fig1(opts), nil
	case "fig4":
		return Fig4(opts), nil
	case "system":
		return System(opts), nil
	case "qbatch":
		return QueryBatch(opts), nil
	case "ablate-sort":
		return AblateSort(opts), nil
	case "ablate-swap":
		return AblateSwap(opts), nil
	case "ablate-jitter":
		return AblateJitter(opts), nil
	case "ablate-descriptor":
		return AblateDescriptor(opts), nil
	case "ablate-geometric":
		return AblateGeometric(opts), nil
	case "cbir":
		return CBIR(opts), nil
	case "verify-cost":
		return VerifyCost(opts), nil
	case "difficulty":
		return DifficultySweep(opts), nil
	case "devices":
		return DeviceProjection(opts), nil
	case "prune":
		return PruneSweep(opts), nil
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, Experiments)
}

// All runs every experiment. The accuracy dataset is built once and shared
// between Table 2 and Table 7.
func All(opts Options) []*Table {
	ds := buildAccDataset(opts)
	return []*Table{
		Table1(opts),
		table2WithDataset(ds, opts),
		Table3(opts),
		Table4(opts),
		Table5(opts),
		Table6(opts),
		table7WithDataset(ds, opts),
		Fig1(opts),
		Fig4(opts),
		System(opts),
		QueryBatch(opts),
		AblateSort(opts),
		AblateSwap(opts),
		AblateJitter(opts),
		AblateDescriptor(opts),
		AblateGeometric(opts),
		cbirWithDataset(ds, opts),
		VerifyCost(opts),
		DifficultySweep(opts),
		DeviceProjection(opts),
		pruneWithDataset(ds, opts),
	}
}
