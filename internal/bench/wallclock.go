package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"regexp"
	"runtime"
	"time"

	"texid/internal/binq"
	"texid/internal/blas"
	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/knn"
	"texid/internal/match"
	"texid/internal/sift"
	"texid/internal/texture"
)

// The rest of this package measures *simulated* device time: results are
// exact and deterministic, and "elapsed" means microseconds charged by the
// calibrated GPU model. This file is the opposite: it measures real host
// wall-clock time of the CPU kernels that back the simulator (GEMM, blur,
// extraction, the full search path), so host-side optimizations show up as
// real speedups. Wall-clock numbers are machine-dependent and live outside
// the determinism contract — they never feed back into simulated results.

// HostOpResult is one measured host operation.
type HostOpResult struct {
	// Op names the operation, e.g. "gemm_tn_768x768x128".
	Op string `json:"op"`
	// NsPerOp is the best (minimum) per-iteration wall time across runs.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerSec is the nominal operand traffic divided by NsPerOp.
	MBPerSec float64 `json:"mb_per_s"`
	// AllocsPerOp is the mean heap allocations per iteration.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// HostReport is the wall-clock benchmark suite output (BENCH_HOST.json).
type HostReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Results    []HostOpResult `json:"results"`
}

// measure times f adaptively: iterations grow until one run takes at least
// minRunTime, and the reported ns/op is the best of count such runs (the
// usual defense against scheduler noise). Allocations come from the last
// run's runtime counters.
func measure(count int, f func()) (nsPerOp, allocsPerOp float64) {
	const minRunTime = 200 * time.Millisecond
	f() // warmup: pools, kernel caches, lazy init
	if count < 1 {
		count = 1
	}
	iters := 1
	best := 0.0
	for run := 0; run < count; run++ {
		for {
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			dur := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if dur < minRunTime && iters < 1<<20 {
				// Re-run with more iterations (Go testing's strategy).
				grow := int(float64(iters) * 1.5 * float64(minRunTime) / float64(dur+1))
				if grow <= iters {
					grow = iters * 2
				}
				iters = grow
				continue
			}
			ns := float64(dur.Nanoseconds()) / float64(iters)
			if best == 0 || ns < best {
				best = ns
			}
			allocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
			break
		}
	}
	return best, allocsPerOp
}

// hostOp is one suite entry: a setup-once closure returning the op body and
// its nominal bytes moved per iteration.
type hostOp struct {
	name  string
	bytes float64
	fn    func()
}

// RunHostBench runs the wall-clock suite, taking the best of count runs per
// op. The op set covers the host hot paths: the packed GEMM micro-kernel,
// the FP16 GEMM (both accumulator modes), the separable blur, full SIFT
// extraction, steady-state engine search (FP32 and FP16), and the
// end-to-end extract+search path. A non-nil opFilter restricts the suite
// to ops whose name matches, so a single op can be iterated on locally
// without paying for the rest (fixtures for skipped ops are never built).
func RunHostBench(count int, opFilter *regexp.Regexp) *HostReport {
	rep := &HostReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, op := range hostOps(opFilter) {
		ns, allocs := measure(count, op.fn)
		rep.Results = append(rep.Results, HostOpResult{
			Op:          op.Op(),
			NsPerOp:     ns,
			MBPerSec:    op.bytes / (ns / 1e9) / (1 << 20),
			AllocsPerOp: allocs,
		})
	}
	return rep
}

func (op hostOp) Op() string { return op.name }

// hostOps builds the suite, constructing fixtures only for ops that pass
// opFilter (nil keeps everything) — the engine fixtures in particular are
// too expensive to build just to be skipped.
func hostOps(opFilter *regexp.Regexp) []hostOp {
	keep := func(name string) bool { return opFilter == nil || opFilter.MatchString(name) }
	var ops []hostOp

	// Packed FP32 GEMM at the paper's similarity-matrix shape.
	if name := fmt.Sprintf("gemm_tn_%dx%dx%d", 768, 768, 128); keep(name) {
		const m, n, d = 768, 768, 128
		A := randMatrix(1, d, m)
		B := randMatrix(2, d, n)
		C := blas.NewMatrix(m, n)
		ops = append(ops, hostOp{
			name:  name,
			bytes: float64(4 * (m*d + n*d + m*n)),
			fn:    func() { blas.GemmTN(-2, A, B, 0, C) },
		})
	}

	// FP16 GEMM, both accumulator modes (the F16C fused-rounding kernels;
	// staging is pooled, and the fp32acc variant pins the tensor-core-mode
	// lane that the steady-state fixtures don't exercise).
	{
		const m, n, d = 256, 256, 128
		name16 := fmt.Sprintf("hgemm_tn_%dx%dx%d", m, n, d)
		name32 := fmt.Sprintf("hgemm_tn_%dx%dx%d_fp32acc", m, n, d)
		if keep(name16) || keep(name32) {
			A, _ := blas.HalfFromMatrix(randMatrix(3, d, m), 1)
			B, _ := blas.HalfFromMatrix(randMatrix(4, d, n), 1)
			C := blas.NewMatrix(m, n)
			if keep(name16) {
				ops = append(ops, hostOp{
					name:  name16,
					bytes: float64(2*(m*d+n*d) + 4*m*n),
					fn:    func() { blas.HGemmTN(-2, A, B, blas.AccumFP16, C) },
				})
			}
			if keep(name32) {
				ops = append(ops, hostOp{
					name:  name32,
					bytes: float64(2*(m*d+n*d) + 4*m*n),
					fn:    func() { blas.HGemmTN(-2, A, B, blas.AccumFP32, C) },
				})
			}
		}
	}

	// Separable Gaussian blur on a pyramid-base-sized image.
	if keep("blur_512_sigma1.6") {
		p := texture.DefaultGenParams()
		p.Size = 512
		im := texture.Generate(11, p)
		ops = append(ops, hostOp{
			name:  "blur_512_sigma1.6",
			bytes: float64(4 * 4 * 512 * 512),
			fn:    func() { sift.BlurImage(im, 1.6) },
		})
	}

	// Full SIFT extraction (pyramid + detect + describe + RootSIFT).
	if keep("sift_extract_128") {
		p := texture.DefaultGenParams()
		p.Size = 128
		im := texture.Generate(12, p)
		cfg := sift.DefaultConfig()
		cfg.RootSIFT = true
		ops = append(ops, hostOp{
			name:  "sift_extract_128",
			bytes: float64(4 * 128 * 128),
			fn:    func() { sift.Extract(im, cfg) },
		})
	}

	// Binary Hamming prefilter scan over a ~1M-descriptor shard: the
	// pruning hot loop (XOR + popcount over packed 128-bit codes, blocked
	// and parallel), isolated from the rerank.
	if keep("binq_scan_1m") {
		const m, images, probes = 384, 2604, 64 // 999,936 codes
		state := uint64(0x9E3779B97F4A7C15)
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		panel := make([]binq.Code, images*m)
		for i := range panel {
			panel[i] = binq.Code{next(), next()}
		}
		q := make([]binq.Code, probes)
		for i := range q {
			q[i] = binq.Code{next(), next()}
		}
		scores := make([]uint32, images)
		var sc binq.Scanner
		ops = append(ops, hostOp{
			name:  "binq_scan_1m",
			bytes: float64(len(panel) * binq.Bytes),
			fn:    func() { sc.Scan(panel, m, q, scores) },
		})
	}

	// Steady-state search on a 10x-larger reference set, pruned vs not:
	// the pair that backs the capacity claim (the prefilter reranks only
	// PruneC of the 160 images, so the pruned op must stay close to the
	// 16-image steady-state cost instead of scaling with the shard).
	if keep("engine_search_steady_pruned") {
		eng, q := prunedSearchFixture(16)
		ops = append(ops, hostOp{
			name:  "engine_search_steady_pruned",
			bytes: float64(prunedRefs*searchM)*binq.Bytes + float64(16*searchM*128*2),
			fn: func() {
				if _, err := eng.Search(q, nil); err != nil {
					panic(fmt.Sprintf("bench: pruned search: %v", err))
				}
			},
		})
	}
	if keep("engine_search_steady_unpruned_10x") {
		eng, q := prunedSearchFixture(0)
		ops = append(ops, hostOp{
			name:  "engine_search_steady_unpruned_10x",
			bytes: float64(prunedRefs * searchM * 128 * 2),
			fn: func() {
				if _, err := eng.Search(q, nil); err != nil {
					panic(fmt.Sprintf("bench: unpruned 10x search: %v", err))
				}
			},
		})
	}

	// Steady-state engine search and the end-to-end extract+search path.
	for _, prec := range []gpusim.Precision{gpusim.FP32, gpusim.FP16} {
		prec := prec
		searchName := "engine_search_steady_" + prec.String()
		e2e := prec == gpusim.FP32
		if !keep(searchName) && !(e2e && keep("extract_search_e2e")) {
			continue
		}
		eng, queryIm, queryFeats, cfg := searchFixture(prec)
		bytesPerSearch := float64(searchRefs) * float64(searchM) * 128 * float64(prec.ElemBytes())
		if keep(searchName) {
			ops = append(ops, hostOp{
				name:  searchName,
				bytes: bytesPerSearch,
				fn: func() {
					if _, err := eng.Search(queryFeats.Descriptors, queryFeats.Keypoints); err != nil {
						panic(fmt.Sprintf("bench: search: %v", err))
					}
				},
			})
		}
		if e2e && keep("extract_search_e2e") {
			ops = append(ops, hostOp{
				name:  "extract_search_e2e",
				bytes: bytesPerSearch,
				fn: func() {
					f := sift.Extract(queryIm, cfg)
					if _, err := eng.Search(f.Descriptors, f.Keypoints); err != nil {
						panic(fmt.Sprintf("bench: search: %v", err))
					}
				},
			})
		}
	}
	return ops
}

// CheckCeilings returns one message per op whose measured ns/op exceeds its
// entry in ceilings (op name → max ns/op). Unlike the relative baseline
// comparison, ceilings are absolute floors-of-speedup: bench.sh uses them
// to assert the FP16 fast path stays an order of magnitude ahead of the
// pre-optimization numbers, not merely unregressed against the last run.
func CheckCeilings(rep *HostReport, ceilings map[string]float64) []string {
	var violations []string
	for _, r := range rep.Results {
		maxNs, ok := ceilings[r.Op]
		if !ok {
			continue
		}
		if r.NsPerOp > maxNs {
			violations = append(violations,
				fmt.Sprintf("%s: %.0f ns/op exceeds ceiling %.0f ns/op (%.2fx over)",
					r.Op, r.NsPerOp, maxNs, r.NsPerOp/maxNs))
		}
	}
	return violations
}

const (
	searchRefs = 16
	searchM    = 256
	// prunedRefs is the 10x shard for the pruning pair: large enough that
	// an unpruned search is GEMM-dominated, small enough to enroll fast.
	prunedRefs = 10 * searchRefs
)

// unitDescriptors returns a d×n matrix of non-negative unit-norm columns —
// the shape and value range of RootSIFT descriptors. The pruning fixtures
// enroll 160 reference images; synthesizing descriptors keeps that setup in
// milliseconds where SIFT extraction would dominate the whole suite.
func unitDescriptors(rng *rand.Rand, d, n int) *blas.Matrix {
	m := blas.NewMatrix(d, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		var sum float64
		for i := range col {
			v := float32(rng.Float64())
			col[i] = v * v // skew toward small values like real histograms
			sum += float64(col[i]) * float64(col[i])
		}
		inv := float32(1 / (math.Sqrt(sum) + 1e-12))
		for i := range col {
			col[i] *= inv
		}
	}
	return m
}

// noisyRecapture builds an n-column query from a reference's descriptors:
// each query column is a perturbed copy of a (cycled) reference column,
// clamped non-negative and re-normalized.
func noisyRecapture(rng *rand.Rand, ref *blas.Matrix, n int, sigma float64) *blas.Matrix {
	q := blas.NewMatrix(ref.Rows, n)
	for j := 0; j < n; j++ {
		src := ref.Col(j % ref.Cols)
		col := q.Col(j)
		var sum float64
		for i := range col {
			v := src[i] + float32(rng.NormFloat64()*sigma)
			if v < 0 {
				v = 0
			}
			col[i] = v
			sum += float64(v) * float64(v)
		}
		inv := float32(1 / (math.Sqrt(sum) + 1e-12))
		for i := range col {
			col[i] *= inv
		}
	}
	return q
}

// prunedSearchFixture builds the 10x-shard engine for the pruning pair.
// pruneC == 0 leaves the prefilter off (the unpruned comparison op).
func prunedSearchFixture(pruneC int) (*engine.Engine, *blas.Matrix) {
	cfg := engine.DefaultConfig()
	cfg.Precision = gpusim.FP16
	cfg.Algorithm = knn.RootSIFT
	cfg.Accum = blas.AccumFP16
	cfg.BatchSize = 8
	cfg.Streams = 2
	cfg.RefFeatures = searchM
	cfg.QueryFeatures = 768
	cfg.Match = match.DefaultConfig()
	cfg.PruneC = pruneC
	eng, err := engine.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: engine: %v", err))
	}
	rng := rand.New(rand.NewSource(4242))
	refs := make([]*blas.Matrix, prunedRefs)
	for i := range refs {
		refs[i] = unitDescriptors(rng, cfg.Dim, searchM)
		if err := eng.Add(i, refs[i], nil); err != nil {
			panic(fmt.Sprintf("bench: enroll: %v", err))
		}
	}
	if err := eng.Flush(); err != nil {
		panic(fmt.Sprintf("bench: flush: %v", err))
	}
	return eng, noisyRecapture(rng, refs[3], 768, 0.02)
}

// searchFixture builds a small engine with enrolled synthetic references
// plus one captured query for the steady-state search ops.
func searchFixture(prec gpusim.Precision) (*engine.Engine, *texture.Image, *sift.Features, sift.Config) {
	cfg := engine.DefaultConfig()
	cfg.Precision = prec
	cfg.Algorithm = knn.RootSIFT
	cfg.Accum = blas.AccumFP16
	cfg.BatchSize = 8
	cfg.Streams = 2
	cfg.RefFeatures = searchM
	cfg.QueryFeatures = 768
	cfg.Match = match.DefaultConfig()
	eng, err := engine.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: engine: %v", err))
	}

	p := texture.DefaultGenParams()
	p.Size = 128
	ecfg := sift.DefaultConfig()
	ecfg.RootSIFT = true
	ims := make([]*texture.Image, searchRefs)
	for i := range ims {
		ims[i] = texture.Generate(int64(100+i), p)
	}
	for i, f := range sift.ExtractBatch(ims, ecfg) {
		if err := eng.Add(i, trim(f, searchM, false), f.Keypoints); err != nil {
			panic(fmt.Sprintf("bench: enroll: %v", err))
		}
	}

	rng := rand.New(rand.NewSource(999))
	queryIm := texture.RandomPerturbation(rng, 0.4).Apply(ims[3])
	queryFeats := sift.Extract(queryIm, ecfg)
	return eng, queryIm, queryFeats, ecfg
}

// randMatrix fills a rows×cols matrix with a deterministic pattern in
// (-1, 1) — enough variety to defeat any value-dependent shortcuts.
func randMatrix(seed int64, rows, cols int) *blas.Matrix {
	m := blas.NewMatrix(rows, cols)
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for i := range m.Data {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		m.Data[i] = float32(int64(state%2001)-1000) / 1000
	}
	return m
}

// WriteFile writes the report as indented JSON.
func (r *HostReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadHostReport reads a report written by WriteFile.
func LoadHostReport(path string) (*HostReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &HostReport{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// CompareHostReports returns one message per op whose ns/op regressed by
// more than tolerance (e.g. 0.20 = 20%) relative to the baseline. Ops
// missing from either report are skipped (the suite may grow).
func CompareHostReports(baseline, current *HostReport, tolerance float64) []string {
	base := make(map[string]HostOpResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Op] = r
	}
	var regressions []string
	for _, r := range current.Results {
		b, ok := base[r.Op]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		if ratio > 1+tolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx, tolerance %.0f%%)",
					r.Op, r.NsPerOp, b.NsPerOp, ratio, tolerance*100))
		}
	}
	return regressions
}
