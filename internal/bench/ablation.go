package bench

import (
	"fmt"

	"texid/internal/engine"
	"texid/internal/gpusim"
)

// The ablations isolate the design choices DESIGN.md calls out. They are
// extensions beyond the paper's own tables (texbench ids: qbatch,
// ablate-sort, ablate-swap, ablate-jitter).

// QueryBatch explores the Sec. 5.3 trade-off the paper defers: batching
// *queries* raises GEMM data reuse (throughput) but couples every query's
// latency to the batch. One row per query-batch size.
func QueryBatch(opts Options) *Table {
	t := &Table{
		ID:     "QBatch",
		Title:  "Query batching (extension; Sec. 5.3 trade-off): batch 256 refs, m=n=768, P100",
		Header: []string{"Query batch", "Throughput (cmp/s)", "Per-query latency (ms)", "Latency x"},
	}
	cfg := engine.DefaultConfig()
	cfg.BatchSize = 256
	cfg.Streams = 1
	cfg.RefFeatures = paperM
	cfg.QueryFeatures = paperN
	e, err := engine.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: engine: %v", err))
	}
	if err := e.AddPhantom(0, 4096); err != nil {
		panic(fmt.Sprintf("bench: phantom: %v", err))
	}
	var baseLatency float64
	for _, bq := range []int{1, 2, 4, 8, 16, 32} {
		br, err := e.SearchBatchPhantom(bq)
		if err != nil {
			panic(fmt.Sprintf("bench: search batch: %v", err))
		}
		if bq == 1 {
			baseLatency = br.ElapsedUS
		}
		t.AddRow(fmt.Sprintf("%d", bq), f0(br.Throughput),
			f2(br.ElapsedUS/1000), f1(br.ElapsedUS/baseLatency)+"x")
	}
	t.AddNote("throughput gain saturates once the reference batch already fills the GPU; " +
		"latency grows linearly — the QoS cost the paper cites for deferring query batching")
	return t
}

// AblateSort compares the modified insertion sort of the reference cuBLAS
// KNN [9] against the paper's single-pass top-2 scan across batch sizes:
// the scan's advantage is largest exactly where the pipeline lives.
func AblateSort(opts Options) *Table {
	spec := gpusim.TeslaP100()
	t := &Table{
		ID:     "Ablate-sort",
		Title:  "Top-2 selection: insertion sort [9] vs single-pass scan (FP32, m=n=768)",
		Header: []string{"Batch", "Insertion (us/img)", "Scan (us/img)", "Scan advantage"},
	}
	for _, batch := range []int{1, 16, 256, 1024} {
		ins := spec.InsertionSortTimeUS(paperM, paperN, batch, gpusim.FP32) / float64(batch)
		scan := spec.Top2ScanTimeUS(paperM, paperN, batch, gpusim.FP32) / float64(batch)
		t.AddRow(fmt.Sprintf("%d", batch), f2(ins), f2(scan), f1(ins/scan)+"x")
	}
	t.AddNote("the paper measured an 81.9%% sort-time reduction at batch 1 (221.5 -> 40.2 us)")
	return t
}

// AblateSwap isolates the hybrid cache's swap granularity: streaming a
// batch as one DMA transfer vs one transfer per reference matrix. Per-image
// transfers pay the PCIe setup latency hundreds of times per batch — the
// paper's "more efficient to transmit a large block in single DMA".
func AblateSwap(opts Options) *Table {
	spec := gpusim.TeslaP100()
	t := &Table{
		ID:     "Ablate-swap",
		Title:  "Hybrid cache swap granularity (batch 1024, FP16, m=768, pinned PCIe)",
		Header: []string{"Transfer granularity", "H2D time per batch (ms)", "Implied ceiling (img/s)"},
	}
	perImage := int64(paperM * paperD * 2)
	batch := int64(1024)

	oneDMA := spec.CopyTimeUS(perImage*batch, true)
	perDMA := float64(batch) * spec.CopyTimeUS(perImage, true)
	t.AddRow("whole batch, single DMA", f2(oneDMA/1000), f0(float64(batch)/(oneDMA*1e-6)))
	t.AddRow("per reference matrix", f2(perDMA/1000), f0(float64(batch)/(perDMA*1e-6)))
	t.AddNote("per-image DMA pays the %.0f us transfer setup 1024 times: %.1fx slower streaming",
		spec.PCIeLatencyUS, perDMA/oneDMA)
	return t
}

// AblateJitter sweeps the cloud-VM jitter model: with no jitter the
// discrete-event pipeline overlaps almost perfectly at 2 streams; as
// variance grows, more streams are needed to keep the copy engine busy —
// the mechanism behind Table 6's efficiency climb.
func AblateJitter(opts Options) *Table {
	t := &Table{
		ID:     "Ablate-jitter",
		Title:  "Schedule efficiency vs cloud-VM jitter (batch 512, host-resident, pinned)",
		Header: []string{"Jitter CoV", "1 stream", "2 streams", "4 streams", "8 streams"},
	}
	base := gpusim.TeslaP100()
	const nBatches = 16
	bytesPerImage := float64(paperM * paperD * 2)
	theoretical := base.PCIePinnedGBs * 1e9 / bytesPerImage * nBatches / (nBatches - 1)
	for _, cov := range []float64{0, 0.25, 0.45, 0.9} {
		row := []string{f2(cov)}
		for _, streams := range []int{1, 2, 4, 8} {
			speed, _ := jitteredHybridSpeed(base, cov, uint64(opts.Seed)+17,
				512, streams, nBatches, paperM, paperN, true)
			row = append(row, pct(speed/theoretical))
		}
		t.AddRow(row...)
	}
	t.AddNote("the paper's VMs behave like CoV~0.45: 52.5%% -> 87.3%% from 1 to 8 streams")
	return t
}
