package bench

// Options scales the experiments. Timing experiments always run at the
// paper's full dimensions (they use phantom batches, which cost nothing to
// "compute"); accuracy experiments run the real functional pipeline on the
// synthetic dataset, so their sizes are scaled down by default to stay
// tractable on a laptop CPU. Every knob can be raised toward paper scale.
type Options struct {
	// Seed makes every experiment deterministic.
	Seed int64

	// Refs and Queries size the accuracy dataset (the paper's tea-brick
	// dataset has 300,000 references and 354 queries).
	Refs    int
	Queries int
	// ImageSize is the synthetic texture side in pixels.
	ImageSize int
	// Difficulty in [0,1] controls query perturbation strength; tuned so
	// the full-precision baseline sits near the paper's ~98%.
	Difficulty float64
	// FeatureScale divides the paper's feature budgets for the functional
	// experiments: 4 maps (m, n) = (768, 768) to (192, 192). 1 runs at
	// paper scale (hours of pure-Go GEMM).
	FeatureScale int
	// MinMatches is the identification acceptance threshold at the scaled
	// dimensions: a query only counts as correctly identified when its
	// true reference ranks first with at least this many ratio-test
	// matches (open-set top-1, as product traceability requires).
	MinMatches int

	// SystemRefs is the phantom reference count for the Sec. 8 cluster
	// experiment (the paper deploys 10.8 M).
	SystemRefs int

	// JitterCoV is the cloud-VM variance applied to the streaming
	// experiments (Tables 5-6).
	JitterCoV float64
}

// DefaultOptions returns laptop-tractable defaults (a full run of every
// experiment takes a few minutes, dominated by the FP16 functional GEMMs
// of Table 2).
func DefaultOptions() Options {
	return Options{
		Seed:         1,
		Refs:         12,
		Queries:      24,
		ImageSize:    128,
		Difficulty:   0.75,
		FeatureScale: 4,
		MinMatches:   12,
		SystemRefs:   1_000_000,
		JitterCoV:    0.45,
	}
}

// scaled divides a paper-scale feature budget by FeatureScale.
func (o Options) scaled(n int) int {
	s := o.FeatureScale
	if s <= 0 {
		s = 1
	}
	v := n / s
	if v < 8 {
		v = 8
	}
	return v
}
