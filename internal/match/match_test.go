package match

import (
	"math"
	"math/rand"
	"testing"

	"texid/internal/knn"
	"texid/internal/sift"
)

func pair(best, second []float32) knn.Pair2NN {
	idx := make([]int32, len(best))
	for i := range idx {
		idx[i] = int32(i)
	}
	return knn.Pair2NN{Best: best, Second: second, BestIdx: idx}
}

func TestRatioTest(t *testing.T) {
	r := pair(
		[]float32{1.0, 1.0, 0.5, float32(math.Inf(1))},
		[]float32{2.0, 1.1, 2.0, 3.0},
	)
	cs := RatioTest(r, 0.75)
	if len(cs) != 2 {
		t.Fatalf("got %d correspondences, want 2 (idx 0 and 2)", len(cs))
	}
	if cs[0].QueryIdx != 0 || cs[1].QueryIdx != 2 {
		t.Fatalf("wrong survivors: %+v", cs)
	}
}

func TestRatioTestRejectsOverflow(t *testing.T) {
	inf := float32(math.Inf(1))
	r := pair([]float32{inf, 0.1}, []float32{inf, inf})
	if cs := RatioTest(r, 0.75); len(cs) != 0 {
		t.Fatalf("overflowed distances must never match, got %+v", cs)
	}
}

func TestRatioTestThresholdBoundary(t *testing.T) {
	r := pair([]float32{0.75}, []float32{1.0})
	if len(RatioTest(r, 0.75)) != 0 {
		t.Fatal("best == ratio*second must be rejected (strict <)")
	}
	r = pair([]float32{0.7499}, []float32{1.0})
	if len(RatioTest(r, 0.75)) != 1 {
		t.Fatal("best just under threshold must pass")
	}
}

func TestFilterEdges(t *testing.T) {
	kps := []sift.Keypoint{
		{X: 2, Y: 50},    // near left edge
		{X: 128, Y: 128}, // center
		{X: 254, Y: 50},  // near right edge
	}
	cs := []Correspondence{{QueryIdx: 0}, {QueryIdx: 1}, {QueryIdx: 2}}
	out := FilterEdges(cs, kps, 256, 4)
	if len(out) != 1 || out[0].QueryIdx != 1 {
		t.Fatalf("edge filter kept %+v", out)
	}
	if got := FilterEdges(cs, kps, 256, 0); len(got) != 3 {
		t.Fatal("margin 0 must be a no-op")
	}
}

func TestVerifySimilarityRecoversTransform(t *testing.T) {
	// Reference keypoints mapped by a known similarity + outliers: RANSAC
	// should count exactly the inliers.
	rng := rand.New(rand.NewSource(42))
	theta, scale := 0.3, 1.2
	tx, ty := 10.0, -5.0
	cosT, sinT := math.Cos(theta)*scale, math.Sin(theta)*scale

	var refKps, queryKps []sift.Keypoint
	var cs []Correspondence
	for i := 0; i < 30; i++ {
		x := rng.Float64() * 200
		y := rng.Float64() * 200
		refKps = append(refKps, sift.Keypoint{X: x, Y: y})
		if i < 20 { // inlier
			queryKps = append(queryKps, sift.Keypoint{
				X: cosT*x - sinT*y + tx,
				Y: sinT*x + cosT*y + ty,
			})
		} else { // outlier
			queryKps = append(queryKps, sift.Keypoint{X: rng.Float64() * 200, Y: rng.Float64() * 200})
		}
		cs = append(cs, Correspondence{QueryIdx: i, RefIdx: i})
	}
	cfg := DefaultConfig()
	cfg.Geometric = true
	inl := VerifySimilarity(cs, refKps, queryKps, cfg)
	if inl < 19 || inl > 22 {
		t.Fatalf("RANSAC found %d inliers, want ~20", inl)
	}
}

func TestVerifySimilarityTooFew(t *testing.T) {
	if got := VerifySimilarity([]Correspondence{{QueryIdx: 0, RefIdx: 0}}, nil, nil, DefaultConfig()); got != 0 {
		t.Fatalf("single correspondence should verify to 0, got %d", got)
	}
}

func TestPairScoreWithoutGeometry(t *testing.T) {
	r := pair([]float32{0.1, 0.1, 0.9}, []float32{1, 1, 1})
	cfg := DefaultConfig()
	cfg.EdgeMargin = 0
	if got := PairScore(r, nil, nil, cfg); got != 2 {
		t.Fatalf("score = %d, want 2", got)
	}
}

func TestIdentify(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinMatches = 10
	results := []SearchResult{{RefID: 3, Score: 5}, {RefID: 7, Score: 50}, {RefID: 1, Score: 12}}
	top, ok := Identify(results, cfg)
	if !ok || top.RefID != 7 || top.Score != 50 {
		t.Fatalf("Identify = %+v, %v", top, ok)
	}
	// Below threshold: candidate returned but not accepted.
	weak := []SearchResult{{RefID: 2, Score: 4}}
	top, ok = Identify(weak, cfg)
	if ok || top.RefID != 2 {
		t.Fatalf("weak Identify = %+v, %v", top, ok)
	}
	// Empty input.
	if _, ok := Identify(nil, cfg); ok {
		t.Fatal("empty results must not identify")
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	r := RankResults([]SearchResult{{RefID: 9, Score: 5}, {RefID: 2, Score: 5}, {RefID: 5, Score: 5}})
	if r[0].RefID != 2 || r[1].RefID != 5 || r[2].RefID != 9 {
		t.Fatalf("tie-break not by RefID: %+v", r)
	}
}

func TestVerifyDecision(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinMatches = 8
	if Verify(7, cfg) || !Verify(8, cfg) {
		t.Fatal("verification threshold wrong")
	}
}
