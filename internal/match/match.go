// Package match implements the post-2-NN stages of the image-matching
// pipeline (Fig. 2): the ratio test that keeps distinctive correspondences,
// edge-feature removal, optional geometric verification with a RANSAC
// similarity model, and the match-count decision rule that declares two
// texture images identical.
package match

import (
	"math"
	"math/rand"
	"sort"

	"texid/internal/knn"
	"texid/internal/sift"
)

// Config controls the matching decision pipeline.
type Config struct {
	// Ratio is the Lowe ratio-test threshold: a query feature is a
	// distinct match when best < Ratio·second.
	Ratio float64
	// EdgeMargin drops correspondences whose query keypoint lies within
	// this many pixels of the image border (the paper's "edge feature
	// removing" post-processing step).
	EdgeMargin float64
	// ImageSize is the query image side in pixels, used by EdgeMargin.
	ImageSize int
	// MinMatches is the decision threshold: two images contain the same
	// texture only when at least this many verified matches survive.
	MinMatches int
	// Geometric enables RANSAC verification of a similarity transform.
	Geometric bool
	// RANSACIters and RANSACTol configure the verifier.
	RANSACIters int
	RANSACTol   float64
	// Seed makes RANSAC deterministic.
	Seed int64
}

// DefaultConfig returns the thresholds used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		Ratio:       0.75,
		EdgeMargin:  4,
		ImageSize:   256,
		MinMatches:  8,
		Geometric:   false,
		RANSACIters: 200,
		RANSACTol:   4,
		Seed:        1,
	}
}

// Correspondence is one surviving query→reference feature match.
type Correspondence struct {
	QueryIdx int
	RefIdx   int
	Dist     float64
}

// RatioTest applies the 2-NN ratio test to one pair result, returning the
// distinctive correspondences. Non-finite distances (FP16 overflow) never
// pass.
func RatioTest(r knn.Pair2NN, ratio float64) []Correspondence {
	var out []Correspondence
	for j := range r.Best {
		b, s := float64(r.Best[j]), float64(r.Second[j])
		if math.IsInf(b, 0) || math.IsNaN(b) || math.IsInf(s, 0) {
			continue
		}
		if s <= 0 {
			continue
		}
		if b < ratio*s {
			out = append(out, Correspondence{QueryIdx: j, RefIdx: int(r.BestIdx[j]), Dist: b}) //texlint:ignore hotalloc survivors are a small data-dependent subset; the slice is consumed immediately by scoring and the zero-alloc contract covers the O(m·n) kernels, not this epilogue
		}
	}
	return out
}

// FilterEdges drops correspondences whose query keypoint lies within
// margin pixels of the border.
func FilterEdges(cs []Correspondence, queryKps []sift.Keypoint, size int, margin float64) []Correspondence {
	if margin <= 0 || queryKps == nil {
		return cs
	}
	out := cs[:0]
	for _, c := range cs {
		if c.QueryIdx >= len(queryKps) {
			continue
		}
		kp := queryKps[c.QueryIdx]
		if kp.X < margin || kp.Y < margin || kp.X > float64(size)-margin || kp.Y > float64(size)-margin {
			continue
		}
		out = append(out, c)
	}
	return out
}

// PairScore scores one reference against the query: the number of matches
// surviving the ratio test, edge filter, and (optionally) geometric
// verification. refKps/queryKps may be nil when geometric verification is
// disabled.
func PairScore(r knn.Pair2NN, refKps, queryKps []sift.Keypoint, cfg Config) int {
	return PairScoreRand(r, refKps, queryKps, cfg, nil)
}

// PairScoreRand is PairScore with an explicit generator for the RANSAC
// stage. A nil rng falls back to a cfg.Seed-seeded generator.
func PairScoreRand(r knn.Pair2NN, refKps, queryKps []sift.Keypoint, cfg Config, rng *rand.Rand) int {
	cs := RatioTest(r, cfg.Ratio)
	cs = FilterEdges(cs, queryKps, cfg.ImageSize, cfg.EdgeMargin)
	if !cfg.Geometric || len(cs) < 3 || refKps == nil || queryKps == nil {
		return len(cs)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed)) //texlint:ignore hotalloc geometric verification is explicitly outside the zero-alloc contract; production config runs with Geometric=false
	}
	return VerifySimilarityRand(cs, refKps, queryKps, cfg, rng)
}

// VerifySimilarity runs RANSAC over a 4-DOF similarity transform
// (rotation, isotropic scale, translation) mapping reference keypoints to
// query keypoints, returning the inlier count of the best model. RANSAC
// sampling is seeded from cfg.Seed.
func VerifySimilarity(cs []Correspondence, refKps, queryKps []sift.Keypoint, cfg Config) int {
	return VerifySimilarityRand(cs, refKps, queryKps, cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// VerifySimilarityRand is VerifySimilarity with an explicit generator for
// the RANSAC pair sampling; identically seeded generators pick the same
// hypotheses and return the same inlier count.
func VerifySimilarityRand(cs []Correspondence, refKps, queryKps []sift.Keypoint, cfg Config, rng *rand.Rand) int {
	if len(cs) < 2 {
		return 0
	}
	tol2 := cfg.RANSACTol * cfg.RANSACTol
	best := 0
	for iter := 0; iter < cfg.RANSACIters; iter++ {
		i := rng.Intn(len(cs))
		j := rng.Intn(len(cs))
		if i == j {
			continue
		}
		a, b := cs[i], cs[j]
		if a.RefIdx >= len(refKps) || b.RefIdx >= len(refKps) ||
			a.QueryIdx >= len(queryKps) || b.QueryIdx >= len(queryKps) {
			continue
		}
		// Solve the similarity from the two pairs.
		rx1, ry1 := refKps[a.RefIdx].X, refKps[a.RefIdx].Y
		rx2, ry2 := refKps[b.RefIdx].X, refKps[b.RefIdx].Y
		qx1, qy1 := queryKps[a.QueryIdx].X, queryKps[a.QueryIdx].Y
		qx2, qy2 := queryKps[b.QueryIdx].X, queryKps[b.QueryIdx].Y
		drx, dry := rx2-rx1, ry2-ry1
		dqx, dqy := qx2-qx1, qy2-qy1
		den := drx*drx + dry*dry
		if den < 1e-9 {
			continue
		}
		// Complex division (dq / dr) gives scale·rotation as (p, q).
		p := (dqx*drx + dqy*dry) / den
		q := (dqy*drx - dqx*dry) / den
		tx := qx1 - (p*rx1 - q*ry1)
		ty := qy1 - (q*rx1 + p*ry1)

		inl := 0
		for _, c := range cs {
			if c.RefIdx >= len(refKps) || c.QueryIdx >= len(queryKps) {
				continue
			}
			rx, ry := refKps[c.RefIdx].X, refKps[c.RefIdx].Y
			px := p*rx - q*ry + tx
			py := q*rx + p*ry + ty
			dx := px - queryKps[c.QueryIdx].X
			dy := py - queryKps[c.QueryIdx].Y
			if dx*dx+dy*dy <= tol2 {
				inl++
			}
		}
		if inl > best {
			best = inl
		}
	}
	return best
}

// SearchResult is one candidate from a one-to-many search.
type SearchResult struct {
	RefID int
	Score int
}

// RankResults sorts candidates by descending score with deterministic
// RefID tie-breaking and returns them.
func RankResults(results []SearchResult) []SearchResult {
	sort.Slice(results, func(i, j int) bool { //texlint:ignore hotalloc one sort of the final ranking per search, after the device timeline is closed; not part of the per-batch kernel loop
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].RefID < results[j].RefID
	})
	return results
}

// Identify returns the best candidate and whether it clears the
// MinMatches decision threshold (the one-to-many search decision).
func Identify(results []SearchResult, cfg Config) (SearchResult, bool) {
	if len(results) == 0 {
		return SearchResult{RefID: -1}, false
	}
	ranked := RankResults(append([]SearchResult(nil), results...)) //texlint:ignore hotalloc Identify must not reorder the caller's slice, so it copies; one copy per search on the final ranking, not per batch
	top := ranked[0]
	return top, top.Score >= cfg.MinMatches
}

// Verify answers the one-to-one verification task: do the two images
// contain the same texture?
func Verify(score int, cfg Config) bool { return score >= cfg.MinMatches }
