package match

import (
	"math"
	"math/rand"
	"testing"

	"texid/internal/sift"
)

// transformScene builds keypoints related by a known similarity plus
// outliers, for exercising the RANSAC verifier.
func transformScene(seed int64) ([]Correspondence, []sift.Keypoint, []sift.Keypoint) {
	rng := rand.New(rand.NewSource(seed))
	cosT, sinT := math.Cos(0.2)*1.1, math.Sin(0.2)*1.1
	var refKps, queryKps []sift.Keypoint
	var cs []Correspondence
	for i := 0; i < 25; i++ {
		x, y := rng.Float64()*200, rng.Float64()*200
		refKps = append(refKps, sift.Keypoint{X: x, Y: y})
		if i < 18 {
			queryKps = append(queryKps, sift.Keypoint{X: cosT*x - sinT*y + 3, Y: sinT*x + cosT*y - 7})
		} else {
			queryKps = append(queryKps, sift.Keypoint{X: rng.Float64() * 200, Y: rng.Float64() * 200})
		}
		cs = append(cs, Correspondence{QueryIdx: i, RefIdx: i})
	}
	return cs, refKps, queryKps
}

func TestVerifySimilarityRandReproducible(t *testing.T) {
	cs, refKps, queryKps := transformScene(12)
	cfg := DefaultConfig()
	cfg.Geometric = true
	a := VerifySimilarityRand(cs, refKps, queryKps, cfg, rand.New(rand.NewSource(2)))
	b := VerifySimilarityRand(cs, refKps, queryKps, cfg, rand.New(rand.NewSource(2)))
	if a != b {
		t.Fatalf("identically seeded generators disagree: %d vs %d", a, b)
	}
	if a < 17 {
		t.Fatalf("RANSAC found %d inliers, want ~18", a)
	}
}

func TestVerifySimilarityMatchesSeededRand(t *testing.T) {
	cs, refKps, queryKps := transformScene(13)
	cfg := DefaultConfig()
	cfg.Geometric = true
	a := VerifySimilarity(cs, refKps, queryKps, cfg)
	b := VerifySimilarityRand(cs, refKps, queryKps, cfg, rand.New(rand.NewSource(cfg.Seed)))
	if a != b {
		t.Fatalf("VerifySimilarity (%d) must equal VerifySimilarityRand with a cfg.Seed-seeded generator (%d)", a, b)
	}
}

func TestPairScoreRandThreadsGenerator(t *testing.T) {
	cs, refKps, queryKps := transformScene(14)
	cfg := DefaultConfig()
	cfg.Geometric = true
	cfg.EdgeMargin = 0
	// Build a Pair2NN whose ratio test keeps every correspondence so the
	// geometric stage runs.
	best := make([]float32, len(cs))
	second := make([]float32, len(cs))
	for i := range cs {
		best[i] = 0.2
		second[i] = 1
	}
	r := pair(best, second)
	a := PairScoreRand(r, refKps, queryKps, cfg, rand.New(rand.NewSource(3)))
	b := PairScoreRand(r, refKps, queryKps, cfg, rand.New(rand.NewSource(3)))
	if a != b {
		t.Fatalf("identically seeded generators disagree: %d vs %d", a, b)
	}
	if c := PairScoreRand(r, refKps, queryKps, cfg, nil); c != PairScore(r, refKps, queryKps, cfg) {
		t.Fatal("nil rng must fall back to the cfg.Seed path")
	}
}
