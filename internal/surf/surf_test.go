package surf

import (
	"math"
	"math/rand"
	"testing"

	"texid/internal/texture"
)

func testImage(seed int64) *texture.Image {
	p := texture.DefaultGenParams()
	p.Size = 128
	p.Flakes = 500
	return texture.Generate(seed, p)
}

func TestIntegralImage(t *testing.T) {
	im := texture.NewImage(4, 3)
	for i := range im.Pix {
		im.Pix[i] = 1
	}
	ii := newIntegral(im)
	if got := ii.boxSum(0, 0, 4, 3); got != 12 {
		t.Fatalf("full box sum = %g, want 12", got)
	}
	if got := ii.boxSum(1, 1, 3, 2); got != 2 {
		t.Fatalf("inner box sum = %g, want 2", got)
	}
	// Clamped queries.
	if got := ii.boxSum(-5, -5, 100, 100); got != 12 {
		t.Fatalf("clamped box sum = %g", got)
	}
	if got := ii.boxSum(3, 2, 1, 1); got != 0 {
		t.Fatalf("inverted box sum = %g, want 0", got)
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := texture.NewImage(16, 11)
	for i := range im.Pix {
		im.Pix[i] = rng.Float32()
	}
	ii := newIntegral(im)
	for trial := 0; trial < 100; trial++ {
		x0, y0 := rng.Intn(16), rng.Intn(11)
		x1, y1 := x0+rng.Intn(16-x0)+1, y0+rng.Intn(11-y0)+1
		var want float64
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				want += float64(im.At(x, y))
			}
		}
		if got := ii.boxSum(x0, y0, x1, y1); math.Abs(got-want) > 1e-4 {
			t.Fatalf("boxSum(%d,%d,%d,%d) = %g, want %g", x0, y0, x1, y1, got, want)
		}
	}
}

func TestHaarResponses(t *testing.T) {
	// A vertical step edge: haarX large, haarY ~0.
	im := texture.NewImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 16; x < 32; x++ {
			im.Set(x, y, 1)
		}
	}
	ii := newIntegral(im)
	if hx := ii.haarX(16, 16, 8); hx <= 0 {
		t.Fatalf("haarX on a rising edge = %g, want > 0", hx)
	}
	if hy := math.Abs(ii.haarY(16, 16, 8)); hy > 1e-9 {
		t.Fatalf("haarY on a vertical edge = %g, want 0", hy)
	}
}

func TestExtractFindsKeypoints(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFeatures = 0
	f := Extract(testImage(1), cfg)
	if f.Count() < 60 {
		t.Fatalf("only %d SURF keypoints on a textured image", f.Count())
	}
	if f.Descriptors.Rows != DescriptorDim {
		t.Fatalf("descriptor dim %d", f.Descriptors.Rows)
	}
	for j := 0; j < f.Count(); j++ {
		var n float64
		for _, v := range f.Descriptors.Col(j) {
			n += float64(v) * float64(v)
		}
		if math.Abs(n-1) > 1e-3 {
			t.Fatalf("descriptor %d has squared norm %g, want 1", j, n)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	a := Extract(testImage(2), DefaultConfig())
	b := Extract(testImage(2), DefaultConfig())
	if a.Count() != b.Count() {
		t.Fatalf("counts differ: %d vs %d", a.Count(), b.Count())
	}
	for i := range a.Descriptors.Data {
		if a.Descriptors.Data[i] != b.Descriptors.Data[i] {
			t.Fatal("extraction not deterministic")
		}
	}
}

func TestMaxFeaturesCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFeatures = 40
	f := Extract(testImage(3), cfg)
	if f.Count() != 40 {
		t.Fatalf("cap produced %d features", f.Count())
	}
	// Response-sorted: strongest first.
	for i := 1; i < f.Count(); i++ {
		if f.Keypoints[i].Response > f.Keypoints[i-1].Response {
			t.Fatal("keypoints not response-sorted")
		}
	}
}

// matchCount is a brute-force 2-NN ratio-test count between feature sets.
func matchCount(ref, query *blasFeatures, ratio float64) int {
	n := 0
	for q := 0; q < query.cols; q++ {
		qc := query.col(q)
		best, second := math.MaxFloat64, math.MaxFloat64
		for r := 0; r < ref.cols; r++ {
			rc := ref.col(r)
			var d float64
			for i := range qc {
				diff := float64(qc[i] - rc[i])
				d += diff * diff
			}
			if d < best {
				second = best
				best = d
			} else if d < second {
				second = d
			}
		}
		if second > 0 && math.Sqrt(best) < ratio*math.Sqrt(second) {
			n++
		}
	}
	return n
}

type blasFeatures struct {
	cols int
	col  func(int) []float32
}

func TestDiscriminability(t *testing.T) {
	// SURF features of a perturbed re-capture must match the true texture
	// far better than a different texture.
	cfg := DefaultConfig()
	cfg.MaxFeatures = 200
	refA := Extract(testImage(10), cfg)
	refB := Extract(testImage(11), cfg)
	rng := rand.New(rand.NewSource(5))
	pert := texture.RandomPerturbation(rng, 0.25)
	query := Extract(pert.Apply(testImage(10)), cfg)

	fa := &blasFeatures{cols: refA.Descriptors.Cols, col: refA.Descriptors.Col}
	fb := &blasFeatures{cols: refB.Descriptors.Cols, col: refB.Descriptors.Col}
	fq := &blasFeatures{cols: query.Descriptors.Cols, col: query.Descriptors.Col}
	same := matchCount(fa, fq, 0.75)
	diff := matchCount(fb, fq, 0.75)
	t.Logf("SURF matches: same %d, different %d", same, diff)
	if same < 10 {
		t.Fatalf("too few same-texture SURF matches: %d", same)
	}
	if same < 3*diff {
		t.Fatalf("insufficient margin: same %d vs diff %d", same, diff)
	}
}
