package surf

import (
	"math"

	"texid/internal/blas"
	"texid/internal/sift"
	"texid/internal/texture"
)

// describe computes the 64-D SURF descriptor: a 20s window rotated to the
// keypoint orientation, split into a 4×4 grid; each cell accumulates
// (Σdx, Σ|dx|, Σdy, Σ|dy|) of rotated, Gaussian-weighted Haar responses
// sampled on a 5×5 grid. The vector is L2-normalized (unit norm, directly
// usable by the Algorithm 2 matcher, like RootSIFT vectors).
func describe(ii *integralImage, kp sift.Keypoint, angle float64) []float32 {
	s := kp.Sigma
	si := int(math.Round(s))
	if si < 1 {
		si = 1
	}
	cosT, sinT := math.Cos(angle), math.Sin(angle)
	desc := make([]float64, DescriptorDim)

	idx := 0
	for cy := -2; cy < 2; cy++ {
		for cx := -2; cx < 2; cx++ {
			var sdx, sdy, adx, ady float64
			for u := 0; u < 5; u++ {
				for v := 0; v < 5; v++ {
					// Sample position in the keypoint frame (units of s).
					px := (float64(cx*5+u) + 0.5) * s
					py := (float64(cy*5+v) + 0.5) * s
					// Rotate into image coordinates.
					gx := kp.X + px*cosT - py*sinT
					gy := kp.Y + px*sinT + py*cosT
					rx := ii.haarX(int(math.Round(gx)), int(math.Round(gy)), 2*si)
					ry := ii.haarY(int(math.Round(gx)), int(math.Round(gy)), 2*si)
					// Rotate responses back into the keypoint frame.
					dx := rx*cosT + ry*sinT
					dy := -rx*sinT + ry*cosT
					w := gauss(px/s, py/s, 3.3)
					dx *= w
					dy *= w
					sdx += dx
					sdy += dy
					adx += math.Abs(dx)
					ady += math.Abs(dy)
				}
			}
			desc[idx] = sdx
			desc[idx+1] = adx
			desc[idx+2] = sdy
			desc[idx+3] = ady
			idx += 4
		}
	}

	var norm float64
	for _, v := range desc {
		norm += v * v
	}
	out := make([]float32, DescriptorDim)
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for i, v := range desc {
			out[i] = float32(v * inv)
		}
	}
	return out
}

// Extract runs the full SURF pipeline. Results are returned in the shared
// sift.Features container (the matching system is descriptor-agnostic —
// only the dimension differs: 64 instead of 128).
func Extract(im *texture.Image, cfg Config) *sift.Features {
	ii := newIntegral(im)
	kps := detect(ii, cfg)
	desc := blas.NewMatrix(DescriptorDim, len(kps))
	for i := range kps {
		kps[i].Angle = orientation(ii, kps[i])
		copy(desc.Col(i), describe(ii, kps[i], kps[i].Angle))
	}
	return &sift.Features{Descriptors: desc, Keypoints: kps}
}
