// Package surf implements a SURF feature extractor (Bay et al., "Speeded-Up
// Robust Features"), the d=64 alternative descriptor the paper names next
// to SIFT ("d is 128 [for SIFT], while d is 64 for SURF features"). The
// ablate-descriptor experiment uses it to measure the d=64 trade-off: half
// the GEMM work and half the feature memory against some discrimination
// loss.
//
// The pipeline is the standard one: integral image, Fast-Hessian detection
// with box-filter approximations of the Gaussian second derivatives,
// 3×3×3 non-maximum suppression, Haar-wavelet dominant orientation, and a
// 4×4 grid of (Σdx, Σ|dx|, Σdy, Σ|dy|) sums normalized to unit length.
// Features are returned in the shared sift.Features container so the rest
// of the matching system is descriptor-agnostic.
package surf

import "texid/internal/texture"

// integralImage supports O(1) box sums: ii[y][x] holds the sum of all
// pixels above-left of (x, y) exclusive, in a (W+1)×(H+1) table.
type integralImage struct {
	w, h int
	sum  []float64 // (w+1)*(h+1), row-major
}

func newIntegral(im *texture.Image) *integralImage {
	ii := &integralImage{w: im.W, h: im.H, sum: make([]float64, (im.W+1)*(im.H+1))}
	stride := im.W + 1
	for y := 1; y <= im.H; y++ {
		var rowSum float64
		for x := 1; x <= im.W; x++ {
			rowSum += float64(im.Pix[(y-1)*im.W+(x-1)])
			ii.sum[y*stride+x] = ii.sum[(y-1)*stride+x] + rowSum
		}
	}
	return ii
}

// boxSum returns the pixel sum of the rectangle [x0, x1)×[y0, y1), clamped
// to the image.
func (ii *integralImage) boxSum(x0, y0, x1, y1 int) float64 {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > ii.w {
		x1 = ii.w
	}
	if y1 > ii.h {
		y1 = ii.h
	}
	if x0 >= x1 || y0 >= y1 {
		return 0
	}
	stride := ii.w + 1
	return ii.sum[y1*stride+x1] - ii.sum[y0*stride+x1] - ii.sum[y1*stride+x0] + ii.sum[y0*stride+x0]
}

// haarX and haarY are Haar wavelet responses of side s centered at (x, y):
// right-minus-left and bottom-minus-top halves.
func (ii *integralImage) haarX(x, y, s int) float64 {
	h := s / 2
	return ii.boxSum(x, y-h, x+h, y+h) - ii.boxSum(x-h, y-h, x, y+h)
}

func (ii *integralImage) haarY(x, y, s int) float64 {
	h := s / 2
	return ii.boxSum(x-h, y, x+h, y+h) - ii.boxSum(x-h, y-h, x+h, y)
}
