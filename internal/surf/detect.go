package surf

import (
	"math"
	"sort"

	"texid/internal/sift"
)

// Config controls the SURF extractor.
type Config struct {
	// Octaves of the Fast-Hessian pyramid (filter sizes grow per octave).
	Octaves int
	// HessianThreshold rejects weak blob responses (images are in [0,1]).
	HessianThreshold float64
	// MaxFeatures keeps the strongest keypoints; 0 keeps all.
	MaxFeatures int
}

// DefaultConfig mirrors the common OpenCV defaults, adapted to [0,1]
// pixel range.
func DefaultConfig() Config {
	return Config{Octaves: 3, HessianThreshold: 1e-4, MaxFeatures: 768}
}

// DescriptorDim is the SURF descriptor length (4×4 subregions × 4 sums).
const DescriptorDim = 64

// filter sizes per octave (standard SURF ladder).
var octaveFilters = [][]int{
	{9, 15, 21, 27},
	{15, 27, 39, 51},
	{27, 51, 75, 99},
	{51, 99, 147, 195},
}

// responseMap holds Fast-Hessian responses for one filter size at one
// sampling step.
type responseMap struct {
	step int
	size int // filter size L
	w, h int
	resp []float64
	lap  []bool // sign of the Laplacian (trace), for matching polarity
}

func (rm *responseMap) at(ix, iy int) float64 {
	if ix < 0 || iy < 0 || ix >= rm.w || iy >= rm.h {
		return 0
	}
	return rm.resp[iy*rm.w+ix]
}

// buildResponse computes det(H_approx) over the sampled grid for filter
// size L: box-filter approximations of the Gaussian second derivatives,
// with the 0.9 relative-weight correction from the SURF paper.
func buildResponse(ii *integralImage, L, step int) *responseMap {
	rm := &responseMap{step: step, size: L, w: ii.w / step, h: ii.h / step}
	rm.resp = make([]float64, rm.w*rm.h)
	rm.lap = make([]bool, rm.w*rm.h)
	l := L / 3
	b := (L - 1) / 2
	inv := 1.0 / float64(L*L)
	box := func(y, x, rows, cols int) float64 {
		return ii.boxSum(x, y, x+cols, y+rows)
	}
	for iy := 0; iy < rm.h; iy++ {
		for ix := 0; ix < rm.w; ix++ {
			x := ix * step
			y := iy * step
			dxx := box(y-l+1, x-b, 2*l-1, L) - 3*box(y-l+1, x-l/2, 2*l-1, l)
			dyy := box(y-b, x-l+1, L, 2*l-1) - 3*box(y-l/2, x-l+1, l, 2*l-1)
			dxy := box(y-l, x+1, l, l) + box(y+1, x-l, l, l) -
				box(y-l, x-l, l, l) - box(y+1, x+1, l, l)
			dxx *= inv
			dyy *= inv
			dxy *= inv
			rm.resp[iy*rm.w+ix] = dxx*dyy - 0.81*dxy*dxy
			rm.lap[iy*rm.w+ix] = dxx+dyy >= 0
		}
	}
	return rm
}

// detect finds 3×3×3 maxima of det(H) across each octave's middle
// intervals and returns keypoints in image coordinates. Scale follows the
// SURF convention sigma = 1.2·L/9.
func detect(ii *integralImage, cfg Config) []sift.Keypoint {
	var kps []sift.Keypoint
	octaves := cfg.Octaves
	if octaves > len(octaveFilters) {
		octaves = len(octaveFilters)
	}
	for o := 0; o < octaves; o++ {
		step := 1 << o
		maps := make([]*responseMap, len(octaveFilters[o]))
		for i, L := range octaveFilters[o] {
			maps[i] = buildResponse(ii, L, step)
		}
		for mi := 1; mi < len(maps)-1; mi++ {
			b, m, t := maps[mi-1], maps[mi], maps[mi+1]
			// Stay clear of the largest filter's border.
			border := (maps[len(maps)-1].size/2)/step + 1
			for iy := border; iy < m.h-border; iy++ {
				for ix := border; ix < m.w-border; ix++ {
					v := m.at(ix, iy)
					if v < cfg.HessianThreshold {
						continue
					}
					if !isMax3x3x3(b, m, t, ix, iy, v) {
						continue
					}
					kps = append(kps, sift.Keypoint{
						X:        float64(ix * step),
						Y:        float64(iy * step),
						Sigma:    1.2 * float64(m.size) / 9,
						Response: v,
						Octave:   o,
						Level:    mi,
					})
				}
			}
		}
	}
	sort.Slice(kps, func(i, j int) bool {
		if kps[i].Response != kps[j].Response {
			return kps[i].Response > kps[j].Response
		}
		if kps[i].Y != kps[j].Y {
			return kps[i].Y < kps[j].Y
		}
		return kps[i].X < kps[j].X
	})
	if cfg.MaxFeatures > 0 && len(kps) > cfg.MaxFeatures {
		kps = kps[:cfg.MaxFeatures]
	}
	return kps
}

func isMax3x3x3(b, m, t *responseMap, ix, iy int, v float64) bool {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if b.at(ix+dx, iy+dy) >= v || t.at(ix+dx, iy+dy) >= v {
				return false
			}
			if (dx != 0 || dy != 0) && m.at(ix+dx, iy+dy) >= v {
				return false
			}
		}
	}
	return true
}

// orientation computes the dominant direction from Haar responses in a
// radius-6s circle, scanned with a π/3 sliding window (Bay et al. §3.2).
func orientation(ii *integralImage, kp sift.Keypoint) float64 {
	s := int(math.Round(kp.Sigma))
	if s < 1 {
		s = 1
	}
	x0, y0 := int(kp.X), int(kp.Y)
	type resp struct{ angle, dx, dy float64 }
	var rs []resp
	for i := -6; i <= 6; i++ {
		for j := -6; j <= 6; j++ {
			if i*i+j*j > 36 {
				continue
			}
			gx := ii.haarX(x0+i*s, y0+j*s, 4*s)
			gy := ii.haarY(x0+i*s, y0+j*s, 4*s)
			w := gauss(float64(i), float64(j), 2.5)
			rs = append(rs, resp{math.Atan2(gy*w, gx*w), gx * w, gy * w})
		}
	}
	best, bestMag := 0.0, -1.0
	for win := 0.0; win < 2*math.Pi; win += math.Pi / 18 {
		var sx, sy float64
		for _, r := range rs {
			d := angleDiff(r.angle, win)
			if d >= 0 && d < math.Pi/3 {
				sx += r.dx
				sy += r.dy
			}
		}
		if mag := sx*sx + sy*sy; mag > bestMag {
			bestMag = mag
			best = math.Atan2(sy, sx)
		}
	}
	if best < 0 {
		best += 2 * math.Pi
	}
	return best
}

func gauss(x, y, sigma float64) float64 {
	return math.Exp(-(x*x + y*y) / (2 * sigma * sigma))
}

// angleDiff returns a-b wrapped into [0, 2π).
func angleDiff(a, b float64) float64 {
	d := a - b
	for d < 0 {
		d += 2 * math.Pi
	}
	for d >= 2*math.Pi {
		d -= 2 * math.Pi
	}
	return d
}
