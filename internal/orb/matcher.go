package orb

import (
	"math/bits"

	"texid/internal/match"
)

// Hamming returns the Hamming distance between two codes (0..256).
func Hamming(a, b Code) int {
	d := 0
	for i := range a {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// Match2NN runs brute-force 2-NN Hamming matching with Lowe's ratio test
// and returns the number of distinctive correspondences — the binary
// analogue of the paper's SIFT matching step. Note the contrast that
// motivates the ablate-binary experiment: this computation has no GEMM
// formulation, so the cuBLAS/tensor-core machinery the paper builds cannot
// accelerate it (XOR+popcount is instead trivially memory-bound).
func Match2NN(ref, query *Features, ratio float64) int {
	matches := 0
	for q := range query.Codes {
		best, second := 257, 257
		for r := range ref.Codes {
			d := Hamming(query.Codes[q], ref.Codes[r])
			if d < best {
				second = best
				best = d
			} else if d < second {
				second = d
			}
		}
		if second > 0 && float64(best) < ratio*float64(second) {
			matches++
		}
	}
	return matches
}

// Score ranks references by distinctive-match count against one query,
// returning ranked results for the open-set top-1 decision.
func Score(refs []*Features, query *Features, ratio float64) []match.SearchResult {
	out := make([]match.SearchResult, 0, len(refs))
	for id, ref := range refs {
		out = append(out, match.SearchResult{RefID: id, Score: Match2NN(ref, query, ratio)})
	}
	return match.RankResults(out)
}

// BytesPerFeature is the storage cost of one binary descriptor.
const BytesPerFeature = CodeWords * 8
