package orb

import (
	"math/rand"
	"testing"
)

func TestExtractRandReproducible(t *testing.T) {
	im := testImage(4)
	cfg := DefaultConfig()
	a := ExtractRand(im, cfg, rand.New(rand.NewSource(6)))
	b := ExtractRand(im, cfg, rand.New(rand.NewSource(6)))
	if a.Count() != b.Count() {
		t.Fatalf("counts differ: %d vs %d", a.Count(), b.Count())
	}
	for i := range a.Codes {
		if a.Codes[i] != b.Codes[i] {
			t.Fatal("codes differ between identically seeded generators")
		}
	}
}

func TestExtractMatchesSeededRand(t *testing.T) {
	im := testImage(5)
	cfg := DefaultConfig()
	a := Extract(im, cfg)
	b := ExtractRand(im, cfg, rand.New(rand.NewSource(cfg.PatternSeed)))
	if a.Count() != b.Count() {
		t.Fatalf("counts differ: %d vs %d", a.Count(), b.Count())
	}
	for i := range a.Codes {
		if a.Codes[i] != b.Codes[i] {
			t.Fatal("Extract must equal ExtractRand with a PatternSeed-seeded generator")
		}
	}
}
