package orb

import (
	"math"
	"math/rand"

	"texid/internal/sift"
	"texid/internal/texture"
)

// CodeWords is the descriptor length in 64-bit words (256 binary tests).
const CodeWords = 4

// Code is one 256-bit binary descriptor.
type Code [CodeWords]uint64

// Features is a binary feature set: codes plus keypoint geometry.
type Features struct {
	Codes     []Code
	Keypoints []sift.Keypoint
}

// Count returns the number of features.
func (f *Features) Count() int { return len(f.Codes) }

// pattern is the set of 256 BRIEF test point pairs, drawn once per seed
// from an isotropic Gaussian over the 31x31 patch (sigma = patch/5,
// clamped), as in the BRIEF paper.
type pattern [256][4]int8

func makePattern(seed int64) *pattern {
	return makePatternRand(rand.New(rand.NewSource(seed)))
}

func makePatternRand(rng *rand.Rand) *pattern {
	var p pattern
	draw := func() int8 {
		for {
			v := rng.NormFloat64() * 31 / 5
			if v >= -15 && v <= 15 {
				return int8(math.Round(v))
			}
		}
	}
	for i := range p {
		p[i] = [4]int8{draw(), draw(), draw(), draw()}
	}
	return &p
}

// describe computes the steered-BRIEF code for one keypoint: the test
// pattern is rotated by the keypoint's orientation before sampling.
func describe(im *texture.Image, x, y int, angle float64, p *pattern) Code {
	cosT, sinT := math.Cos(angle), math.Sin(angle)
	rot := func(dx, dy int8) (int, int) {
		fx := float64(dx)
		fy := float64(dy)
		return x + int(math.Round(cosT*fx-sinT*fy)), y + int(math.Round(sinT*fx+cosT*fy))
	}
	var code Code
	for i, t := range p {
		ax, ay := rot(t[0], t[1])
		bx, by := rot(t[2], t[3])
		if im.At(ax, ay) < im.At(bx, by) {
			code[i/64] |= 1 << (i % 64)
		}
	}
	return code
}

// Extract runs the full ORB pipeline: pyramid FAST detection, intensity-
// centroid orientation, and steered-BRIEF codes. The BRIEF test pattern
// is drawn deterministically from cfg.PatternSeed.
func Extract(im *texture.Image, cfg Config) *Features {
	return extract(im, cfg, makePattern(cfg.PatternSeed))
}

// ExtractRand is Extract with an explicit generator for the BRIEF test
// pattern; identically seeded generators yield identical descriptors.
// Matching descriptors across images requires the same pattern, so pass
// generators in the same state (or extract every image with one call
// sequence from one generator only when that is intended).
func ExtractRand(im *texture.Image, cfg Config, rng *rand.Rand) *Features {
	return extract(im, cfg, makePatternRand(rng))
}

func extract(im *texture.Image, cfg Config, pat *pattern) *Features {
	kps, levels := detect(im, cfg)
	out := &Features{Keypoints: kps, Codes: make([]Code, len(kps))}
	scale := 1.0
	scales := make([]float64, len(levels))
	for l := range levels {
		scales[l] = scale
		scale *= cfg.ScaleFactor
	}
	for i, kp := range kps {
		lvl := levels[kp.Octave]
		s := scales[kp.Octave]
		out.Codes[i] = describe(lvl, int(math.Round(kp.X/s)), int(math.Round(kp.Y/s)), kp.Angle, pat)
	}
	return out
}
