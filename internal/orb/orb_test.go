package orb

import (
	"math/rand"
	"testing"

	"texid/internal/texture"
)

func testImage(seed int64) *texture.Image {
	p := texture.DefaultGenParams()
	p.Size = 128
	p.Flakes = 500
	return texture.Generate(seed, p)
}

func TestHamming(t *testing.T) {
	var a, b Code
	if Hamming(a, b) != 0 {
		t.Fatal("identical codes should be at distance 0")
	}
	b[0] = 0b1011
	if Hamming(a, b) != 3 {
		t.Fatalf("Hamming = %d, want 3", Hamming(a, b))
	}
	for i := range b {
		b[i] = ^uint64(0)
	}
	if Hamming(a, b) != 256 {
		t.Fatalf("all-ones distance = %d, want 256", Hamming(a, b))
	}
}

func TestFASTScoreOnCorner(t *testing.T) {
	// A bright square on dark background: its corners fire the FAST-9
	// segment test (>= 9 contiguous darker circle pixels), flat regions
	// and straight edges do not.
	im := texture.NewImage(64, 64)
	for y := 32; y < 64; y++ {
		for x := 32; x < 64; x++ {
			im.Set(x, y, 1)
		}
	}
	if s := fastScore(im, 48, 48, 0.06); s != 0 {
		t.Fatalf("flat interior scored %g", s)
	}
	if s := fastScore(im, 48, 32, 0.06); s != 0 {
		t.Fatalf("straight edge scored %g", s)
	}
	if s := fastScore(im, 32, 32, 0.06); s == 0 {
		t.Fatal("square corner scored 0")
	}
}

func TestExtractFindsKeypoints(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFeatures = 0
	f := Extract(testImage(1), cfg)
	if f.Count() < 100 {
		t.Fatalf("only %d ORB keypoints on a textured image", f.Count())
	}
	if len(f.Codes) != len(f.Keypoints) {
		t.Fatal("codes and keypoints out of sync")
	}
}

func TestExtractDeterministic(t *testing.T) {
	a := Extract(testImage(2), DefaultConfig())
	b := Extract(testImage(2), DefaultConfig())
	if a.Count() != b.Count() {
		t.Fatalf("counts differ: %d vs %d", a.Count(), b.Count())
	}
	for i := range a.Codes {
		if a.Codes[i] != b.Codes[i] {
			t.Fatal("codes differ between identical runs")
		}
	}
}

func TestPatternSeedMatters(t *testing.T) {
	cfg := DefaultConfig()
	a := Extract(testImage(3), cfg)
	cfg.PatternSeed = 99
	b := Extract(testImage(3), cfg)
	same := 0
	for i := range a.Codes {
		if a.Codes[i] == b.Codes[i] {
			same++
		}
	}
	if same > a.Count()/10 {
		t.Fatalf("different patterns produced %d/%d identical codes", same, a.Count())
	}
}

func TestMaxFeaturesCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFeatures = 50
	f := Extract(testImage(4), cfg)
	if f.Count() != 50 {
		t.Fatalf("cap produced %d features", f.Count())
	}
}

func TestDiscriminability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFeatures = 300
	refA := Extract(testImage(10), cfg)
	refB := Extract(testImage(11), cfg)
	rng := rand.New(rand.NewSource(5))
	pert := texture.RandomPerturbation(rng, 0.2)
	query := Extract(pert.Apply(testImage(10)), cfg)

	same := Match2NN(refA, query, 0.8)
	diff := Match2NN(refB, query, 0.8)
	t.Logf("ORB matches: same %d, different %d", same, diff)
	if same < 8 {
		t.Fatalf("too few same-texture ORB matches: %d", same)
	}
	if same < 2*diff {
		t.Fatalf("insufficient margin: same %d vs diff %d", same, diff)
	}
}

func TestScoreRanksTrueReferenceFirst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFeatures = 300
	refs := make([]*Features, 4)
	for i := range refs {
		refs[i] = Extract(testImage(int64(20+i)), cfg)
	}
	rng := rand.New(rand.NewSource(6))
	pert := texture.RandomPerturbation(rng, 0.2)
	query := Extract(pert.Apply(testImage(22)), cfg)
	ranked := Score(refs, query, 0.8)
	if ranked[0].RefID != 2 {
		t.Fatalf("top candidate %d, want 2 (scores %v)", ranked[0].RefID, ranked)
	}
}
