// Package orb implements an ORB feature extractor (Rublee et al., "ORB: an
// efficient alternative to SIFT or SURF"), the third local-feature option
// the paper names in Sec. 3.1. ORB couples FAST corners with steered BRIEF
// binary descriptors compared under Hamming distance — which is exactly why
// it is interesting here: binary descriptors have no GEMM formulation, so
// none of the paper's cuBLAS machinery applies to them. The ablate-binary
// experiment measures what that trade buys and costs.
//
// Deviations from the original: descriptors use a seeded pseudo-random
// BRIEF test pattern (Gaussian point pairs, as in the BRIEF paper) rather
// than ORB's learned 256-pair pattern, and corner ranking uses the FAST
// score rather than Harris. Both substitutions preserve the descriptor's
// statistical behaviour.
package orb

import (
	"math"
	"sort"

	"texid/internal/sift"
	"texid/internal/texture"
)

// Config controls the extractor.
type Config struct {
	// FASTThreshold is the intensity delta for the segment test (images
	// are in [0,1]; OpenCV's 20/255 ≈ 0.08).
	FASTThreshold float32
	// Levels and ScaleFactor define the detection pyramid.
	Levels      int
	ScaleFactor float64
	// MaxFeatures keeps the strongest corners; 0 keeps all.
	MaxFeatures int
	// PatternSeed seeds the BRIEF test pattern (both sides of a match must
	// agree on it).
	PatternSeed int64
}

// DefaultConfig mirrors common ORB settings.
func DefaultConfig() Config {
	return Config{
		FASTThreshold: 0.06,
		Levels:        5,
		ScaleFactor:   1.2,
		MaxFeatures:   768,
		PatternSeed:   7,
	}
}

// circle16 is the Bresenham circle of radius 3 used by FAST-9.
var circle16 = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// fastScore runs the FAST-9 segment test at (x, y); it returns the corner
// score (sum of absolute differences over the contiguous arc) or 0.
func fastScore(im *texture.Image, x, y int, thr float32) float32 {
	p := im.At(x, y)
	var brighter, darker [32]bool // doubled circle for wraparound runs
	var diffs [16]float32
	for i, c := range circle16 {
		v := im.At(x+c[0], y+c[1])
		diffs[i] = v - p
		brighter[i] = v > p+thr
		darker[i] = v < p-thr
		brighter[i+16] = brighter[i]
		darker[i+16] = darker[i]
	}
	run := func(flags *[32]bool) bool {
		count := 0
		for i := 0; i < 32; i++ {
			if flags[i] {
				count++
				if count >= 9 {
					return true
				}
			} else {
				count = 0
			}
		}
		return false
	}
	if !run(&brighter) && !run(&darker) {
		return 0
	}
	var score float32
	for _, d := range diffs {
		if d > thr {
			score += d - thr
		} else if d < -thr {
			score += -d - thr
		}
	}
	return score
}

// orientation computes the intensity-centroid angle within a radius-15
// patch (Rublee et al. §3.2).
func orientation(im *texture.Image, x, y int) float64 {
	var m01, m10 float64
	const r = 15
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy > r*r {
				continue
			}
			v := float64(im.At(x+dx, y+dy))
			m10 += float64(dx) * v
			m01 += float64(dy) * v
		}
	}
	a := math.Atan2(m01, m10)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// halveTo resizes im to the given dimensions with bilinear sampling.
func resize(im *texture.Image, w, h int) *texture.Image {
	out := texture.NewImage(w, h)
	sx := float64(im.W) / float64(w)
	sy := float64(im.H) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = im.Bilinear(float64(x)*sx, float64(y)*sy)
		}
	}
	return out
}

// detect finds FAST corners across the pyramid, with 3x3 non-maximum
// suppression per level, response-ranked.
func detect(im *texture.Image, cfg Config) ([]sift.Keypoint, []*texture.Image) {
	levels := make([]*texture.Image, cfg.Levels)
	var kps []sift.Keypoint
	scale := 1.0
	for l := 0; l < cfg.Levels; l++ {
		var lvl *texture.Image
		if l == 0 {
			lvl = im
		} else {
			w := int(float64(im.W) / scale)
			h := int(float64(im.H) / scale)
			if w < 32 || h < 32 {
				levels = levels[:l]
				break
			}
			lvl = resize(im, w, h)
		}
		levels[l] = lvl

		scores := make([]float32, lvl.W*lvl.H)
		border := 19 // room for the descriptor patch
		for y := border; y < lvl.H-border; y++ {
			for x := border; x < lvl.W-border; x++ {
				scores[y*lvl.W+x] = fastScore(lvl, x, y, cfg.FASTThreshold)
			}
		}
		for y := border; y < lvl.H-border; y++ {
			for x := border; x < lvl.W-border; x++ {
				s := scores[y*lvl.W+x]
				if s == 0 {
					continue
				}
				// 3x3 non-maximum suppression with deterministic
				// tie-breaking: earlier scan positions win equal scores.
				max := true
				for dy := -1; dy <= 1 && max; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if dx == 0 && dy == 0 {
							continue
						}
						n := scores[(y+dy)*lvl.W+(x+dx)]
						earlier := dy < 0 || (dy == 0 && dx < 0)
						if n > s || (earlier && n == s) {
							max = false
							break
						}
					}
				}
				if !max {
					continue
				}
				kps = append(kps, sift.Keypoint{
					X:        float64(x) * scale,
					Y:        float64(y) * scale,
					Sigma:    scale,
					Angle:    orientation(lvl, x, y),
					Response: float64(s),
					Octave:   l,
				})
			}
		}
		scale *= cfg.ScaleFactor
	}
	sort.Slice(kps, func(i, j int) bool {
		if kps[i].Response != kps[j].Response {
			return kps[i].Response > kps[j].Response
		}
		if kps[i].Y != kps[j].Y {
			return kps[i].Y < kps[j].Y
		}
		return kps[i].X < kps[j].X
	})
	if cfg.MaxFeatures > 0 && len(kps) > cfg.MaxFeatures {
		kps = kps[:cfg.MaxFeatures]
	}
	return kps, levels
}
