// Package soak is the sustained-load harness for the serving path: an
// open-loop load generator that drives a search target (in-process
// engine, in-process multi-shard cluster, or a live texsearchd over
// HTTP) at a configured request rate and reports coordinated-omission-
// safe tail latency plus GC telemetry.
//
// Open loop vs closed loop: a closed-loop generator (a fixed worker pool
// issuing the next request only after the previous one returns) lets a
// slow server throttle its own load — stalls shrink the offered rate and
// the measured tail collapses toward the stall-free path. The soak
// harness instead schedules request *arrival times* up front from the
// configured rate (Poisson or uniform interarrivals) and launches each
// request at its intended time regardless of how many are still in
// flight, the way production traffic actually behaves.
//
// Coordinated omission: every latency is measured against the request's
// intended send time, not the moment a goroutine got around to sending
// it. If the generator itself falls behind (scheduler stall, GC pause on
// the load path), that queueing delay is charged to the requests it
// delayed rather than silently dropped — the p99.9 of the report is the
// p99.9 a real open-loop client would have seen.
//
// Two clocks: wall-mode scenarios (steady, churn, GOGC sweep) measure
// real time and are machine-dependent — their baselines gate relative
// regressions only. The sim-clock variant (SimSoak) replays the same
// scenario shape on the simulated device clock with a sequential
// queueing model, producing bit-identical latency histograms and result
// transcripts across runs and GOMAXPROCS settings; that half gates
// unconditionally, including in CI.
package soak

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Target is a search service under soak. Keys select deterministically
// from the target's query/churn pools, so a seeded scenario issues the
// same op sequence against every target implementation.
type Target interface {
	// Search runs one read (identification) op.
	Search(k uint64) error
	// Enroll runs one write (enrollment-churn) op: an Update cycling a
	// bounded id pool, so sustained churn reshapes the index without
	// growing the reference count.
	Enroll(k uint64) error
	// Close releases the target.
	Close() error
}

// Arrival processes supported by Scenario.
const (
	// ArrivalPoisson draws exponential interarrival gaps (memoryless open
	// traffic, the production default).
	ArrivalPoisson = "poisson"
	// ArrivalUniform spaces arrivals exactly 1/QPS apart (a metronome:
	// lower variance, useful to isolate server-side jitter).
	ArrivalUniform = "uniform"
)

// Scenario is one soak workload shape.
type Scenario struct {
	// Name labels the scenario in reports ("steady", "churn", ...).
	Name string
	// QPS is the offered arrival rate (requests per wall second).
	QPS float64
	// Duration is how long to offer load.
	Duration time.Duration
	// Arrival is ArrivalPoisson (default) or ArrivalUniform.
	Arrival string
	// WriteRatio is the fraction of arrivals that are enrollment-churn
	// writes (0 = read-only steady state).
	WriteRatio float64
	// Seed fixes the arrival schedule and read/write interleaving.
	Seed int64
	// GOGC, when > 0, runs the scenario under debug.SetGCPercent(GOGC)
	// (restored afterwards). Used by the sweep mode.
	GOGC int
	// MemLimitMB, when > 0, runs the scenario under a soft memory limit
	// of MemLimitMB MiB (restored afterwards). Used by the sweep mode.
	MemLimitMB int64
}

// LatencySummary is one histogram's report: CO-safe quantiles in
// milliseconds measured against intended send times.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// summarize converts a microsecond histogram into the report form.
func summarize(h *hist) LatencySummary {
	return LatencySummary{
		Count:  h.count,
		MeanMS: h.mean() / 1e3,
		P50MS:  float64(h.quantile(0.50)) / 1e3,
		P99MS:  float64(h.quantile(0.99)) / 1e3,
		P999MS: float64(h.quantile(0.999)) / 1e3,
		MaxMS:  float64(h.max) / 1e3,
	}
}

// ScenarioResult is the structured outcome of one wall-mode scenario.
type ScenarioResult struct {
	Name        string  `json:"name"`
	Arrival     string  `json:"arrival"`
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationSec float64 `json:"duration_sec"`
	WriteRatio  float64 `json:"write_ratio"`
	// GOGC/MemLimitMB echo sweep overrides (0 = runtime default).
	GOGC       int   `json:"gogc,omitempty"`
	MemLimitMB int64 `json:"mem_limit_mb,omitempty"`

	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Errors int64 `json:"errors"`

	// Read is the headline CO-safe latency distribution; Write covers the
	// churn ops (absent in read-only scenarios).
	Read  LatencySummary  `json:"read"`
	Write *LatencySummary `json:"write,omitempty"`

	GC GCTelemetry `json:"gc"`
}

// op is one precomputed arrival.
type op struct {
	offset time.Duration // intended send time relative to scenario start
	write  bool
	key    uint64
}

// schedule precomputes the full arrival sequence from the scenario seed,
// so the offered load is identical run to run (up to wall-clock noise).
func schedule(sc Scenario) []op {
	n := int(sc.QPS * sc.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	ops := make([]op, n)
	var at float64 // seconds
	for i := range ops {
		switch sc.Arrival {
		case ArrivalUniform:
			at = float64(i) / sc.QPS
		default: // Poisson
			at += rng.ExpFloat64() / sc.QPS
		}
		ops[i] = op{
			offset: time.Duration(at * float64(time.Second)),
			write:  rng.Float64() < sc.WriteRatio,
			key:    uint64(rng.Int63()),
		}
	}
	return ops
}

// Run executes one scenario against target and returns its result.
//
// The dispatcher sleeps until each op's intended send time and fires it
// in its own goroutine; latency is completion minus *intended* time, so
// dispatcher lag is charged to the ops it delayed (no coordinated
// omission). Writes and reads land in separate histograms.
func Run(target Target, sc Scenario) (*ScenarioResult, error) {
	if sc.QPS <= 0 || sc.Duration <= 0 {
		return nil, fmt.Errorf("soak: scenario %q needs positive QPS and Duration", sc.Name)
	}
	if sc.Arrival == "" {
		sc.Arrival = ArrivalPoisson
	}
	if sc.GOGC > 0 {
		defer debug.SetGCPercent(debug.SetGCPercent(sc.GOGC))
	}
	if sc.MemLimitMB > 0 {
		defer debug.SetMemoryLimit(debug.SetMemoryLimit(sc.MemLimitMB << 20))
	}

	ops := schedule(sc)

	var (
		mu        sync.Mutex // guards readHist and writeHist
		readHist  hist
		writeHist hist
		errs      atomic.Int64
		wg        sync.WaitGroup
	)

	tel := startTelemetry(0)
	start := time.Now()
	for i := range ops {
		o := ops[i]
		intended := start.Add(o.offset)
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			if o.write {
				err = target.Enroll(o.key)
			} else {
				err = target.Search(o.key)
			}
			lat := time.Since(intended).Microseconds()
			if err != nil {
				errs.Add(1)
				return
			}
			mu.Lock()
			if o.write {
				writeHist.record(lat)
			} else {
				readHist.record(lat)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	gc := tel.stop()

	mu.Lock()
	defer mu.Unlock()
	res := &ScenarioResult{
		Name:        sc.Name,
		Arrival:     sc.Arrival,
		TargetQPS:   sc.QPS,
		AchievedQPS: float64(len(ops)) / elapsed.Seconds(),
		DurationSec: elapsed.Seconds(),
		WriteRatio:  sc.WriteRatio,
		GOGC:        sc.GOGC,
		MemLimitMB:  sc.MemLimitMB,
		Reads:       readHist.count,
		Writes:      writeHist.count,
		Errors:      errs.Load(),
		Read:        summarize(&readHist),
		GC:          gc,
	}
	if writeHist.count > 0 {
		w := summarize(&writeHist)
		res.Write = &w
	}
	return res, nil
}

// RunSweep reruns one scenario shape under each GOGC value (and, when
// memLimitMB > 0, one extra GOGC=off-style run bounded by the soft
// memory limit), isolating the collector's contribution to the tail.
// The factory builds a fresh target per point so heap shape does not
// leak between sweep points.
func RunSweep(factory func() (Target, error), base Scenario, gogcs []int, memLimitMB int64) ([]ScenarioResult, error) {
	var out []ScenarioResult
	runPoint := func(sc Scenario) error {
		t, err := factory()
		if err != nil {
			return err
		}
		defer t.Close() //texlint:ignore errcheck sweep targets are in-process fixtures; Close errors carry no signal here
		res, err := Run(t, sc)
		if err != nil {
			return err
		}
		out = append(out, *res)
		return nil
	}
	for _, g := range gogcs {
		sc := base
		sc.Name = fmt.Sprintf("%s/gogc=%d", base.Name, g)
		sc.GOGC = g
		if err := runPoint(sc); err != nil {
			return out, err
		}
	}
	if memLimitMB > 0 {
		sc := base
		sc.Name = fmt.Sprintf("%s/memlimit=%dMiB", base.Name, memLimitMB)
		sc.MemLimitMB = memLimitMB
		if err := runPoint(sc); err != nil {
			return out, err
		}
	}
	return out, nil
}
