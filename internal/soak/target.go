package soak

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"texid/internal/blas"
	"texid/internal/cluster"
	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/knn"
	"texid/internal/serve"
	"texid/internal/wire"
)

// FixtureConfig shapes the in-process soak fixtures. The defaults are the
// small functional FP32 engine used throughout the serving tests: real
// GEMM + 2-NN matching on tiny dimensions, so a soak exercises the full
// hot path (admission, scatter, match, merge) at CI-friendly cost.
type FixtureConfig struct {
	// Refs is the steady reference population per fixture.
	Refs int
	// Queries is the size of the precomputed query pool.
	Queries int
	// ChurnPool is the number of reference ids the churn writer cycles
	// Updates over (bounded, so churn never grows the population).
	ChurnPool int
	// CompactEvery triggers an index compaction after this many churn
	// writes (tombstone reclamation under load). 0 disables.
	CompactEvery int
	// Seed fixes the generated features.
	Seed int64
	// MaxBatch/WindowUS configure the admission layer.
	MaxBatch int
	WindowUS int
}

// DefaultFixture returns the standard soak fixture shape.
func DefaultFixture() FixtureConfig {
	return FixtureConfig{
		Refs:         16,
		Queries:      64,
		ChurnPool:    8,
		CompactEvery: 256,
		Seed:         1,
		MaxBatch:     16,
		WindowUS:     200,
	}
}

// soakEngineConfig is the tiny functional engine the in-process fixtures
// run on (mirrors the cluster test fixture).
func soakEngineConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.BatchSize = 4
	cfg.Streams = 2
	cfg.Precision = gpusim.FP32
	cfg.Algorithm = knn.RootSIFT
	cfg.RefFeatures = 24
	cfg.QueryFeatures = 32
	cfg.Dim = 16
	cfg.HostCacheBytes = 1 << 30
	cfg.Match.MinMatches = 10
	cfg.Match.EdgeMargin = 0
	return cfg
}

// unitCols returns a d×n matrix of L2-normalized random columns.
func unitCols(rng *rand.Rand, d, n int) *blas.Matrix {
	m := blas.NewMatrix(d, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		var s float64
		for i := range col {
			col[i] = rng.Float32()
			s += float64(col[i]) * float64(col[i])
		}
		f := float32(1 / math.Sqrt(s))
		for i := range col {
			col[i] *= f
		}
	}
	return m
}

// perturb returns an n-column query whose first columns are noisy copies
// of ref (so searches find a real match, exercising full ranking).
func perturb(rng *rand.Rand, ref *blas.Matrix, n int) *blas.Matrix {
	q := blas.NewMatrix(ref.Rows, n)
	for j := 0; j < n; j++ {
		if j < ref.Cols {
			copy(q.Col(j), ref.Col(j))
			col := q.Col(j)
			var s float64
			for i := range col {
				col[i] += (rng.Float32()*2 - 1) * 0.02
				if col[i] < 0 {
					col[i] = 0
				}
				s += float64(col[i]) * float64(col[i])
			}
			f := float32(1 / math.Sqrt(s))
			for i := range col {
				col[i] *= f
			}
		} else {
			copy(q.Col(j), unitCols(rng, ref.Rows, 1).Col(0))
		}
	}
	return q
}

// fixtureData is the shared precomputed pool: reference features, query
// features, and replacement features for churn updates.
type fixtureData struct {
	refs    []*blas.Matrix
	queries []*blas.Matrix
	churn   []*blas.Matrix
	// churnIDs are the reference ids the writer cycles over (a suffix of
	// the enrolled population).
	churnIDs []int
}

func buildFixtureData(fc FixtureConfig) *fixtureData {
	rng := rand.New(rand.NewSource(fc.Seed))
	d := &fixtureData{
		refs:    make([]*blas.Matrix, fc.Refs),
		queries: make([]*blas.Matrix, fc.Queries),
		churn:   make([]*blas.Matrix, fc.ChurnPool*2),
	}
	for i := range d.refs {
		d.refs[i] = unitCols(rng, 16, 24)
	}
	for i := range d.queries {
		// Queries target the non-churned prefix so read results stay
		// meaningful while the churn suffix is rewritten underneath them.
		stable := fc.Refs - fc.ChurnPool
		if stable < 1 {
			stable = 1
		}
		d.queries[i] = perturb(rng, d.refs[i%stable], 32)
	}
	for i := range d.churn {
		d.churn[i] = unitCols(rng, 16, 24)
	}
	for i := 0; i < fc.ChurnPool && i < fc.Refs; i++ {
		d.churnIDs = append(d.churnIDs, fc.Refs-fc.ChurnPool+i)
	}
	return d
}

// churner implements bounded enrollment churn over any update/compact
// pair: each write Updates one pooled id with fresh features, and every
// CompactEvery writes one (single) caller also compacts the index so
// tombstones cannot accumulate over an hours-scale run.
type churner struct {
	data         *fixtureData
	update       func(id int, feats *blas.Matrix) error
	compact      func() error
	compactEvery uint64

	writes    atomic.Uint64
	compactMu sync.Mutex
}

func (ch *churner) enroll(k uint64) error {
	if len(ch.data.churnIDs) == 0 {
		return nil
	}
	id := ch.data.churnIDs[k%uint64(len(ch.data.churnIDs))]
	feats := ch.data.churn[k%uint64(len(ch.data.churn))]
	if err := ch.update(id, feats); err != nil {
		return err
	}
	if ch.compactEvery > 0 && ch.writes.Add(1)%ch.compactEvery == 0 {
		// One compactor at a time; a concurrent writer skips rather than
		// queueing up behind the index write lock.
		if ch.compactMu.TryLock() {
			defer ch.compactMu.Unlock()
			return ch.compact()
		}
	}
	return nil
}

// EngineTarget soaks a single engine behind the serve admission layer
// (the CI in-process mode).
type EngineTarget struct {
	eng  *engine.Engine
	eb   *serve.EngineBatcher
	data *fixtureData
	ch   churner
}

// NewEngineTarget builds the single-engine fixture.
func NewEngineTarget(fc FixtureConfig) (*EngineTarget, error) {
	eng, err := engine.New(soakEngineConfig())
	if err != nil {
		return nil, err
	}
	data := buildFixtureData(fc)
	for i, f := range data.refs {
		if err := eng.Add(i, f, nil); err != nil {
			return nil, err
		}
	}
	if err := eng.Flush(); err != nil {
		return nil, err
	}
	t := &EngineTarget{
		eng:  eng,
		eb:   serve.ForEngine(eng, serveOptions(fc)),
		data: data,
	}
	t.ch = churner{
		data:         data,
		update:       func(id int, feats *blas.Matrix) error { return eng.Update(id, feats, nil) },
		compact:      func() error { _, err := eng.Compact(); return err },
		compactEvery: uint64(fc.CompactEvery),
	}
	return t, nil
}

func serveOptions(fc FixtureConfig) serve.Options {
	return serve.Options{
		MaxBatch: fc.MaxBatch,
		Window:   time.Duration(fc.WindowUS) * time.Microsecond,
	}
}

// Search implements Target.
func (t *EngineTarget) Search(k uint64) error {
	q := t.data.queries[k%uint64(len(t.data.queries))]
	rep, err := t.eb.Search(q, nil)
	if err != nil {
		return err
	}
	if rep == nil {
		return fmt.Errorf("soak: nil report")
	}
	return nil
}

// Enroll implements Target.
func (t *EngineTarget) Enroll(k uint64) error { return t.ch.enroll(k) }

// Close implements Target.
func (t *EngineTarget) Close() error {
	t.eb.Close()
	return nil
}

// ClusterTarget soaks an in-process multi-shard cluster through the
// coordinator's coalescing path (scatter-gather + merge under load).
type ClusterTarget struct {
	c    *cluster.Cluster
	data *fixtureData
	ch   churner
}

// NewClusterTarget builds a workers-shard in-process cluster fixture.
func NewClusterTarget(workers int, fc FixtureConfig) (*ClusterTarget, error) {
	if workers < 1 {
		workers = 1
	}
	c, err := cluster.New(cluster.Config{
		Workers: workers,
		Engine:  soakEngineConfig(),
		Serve:   serveOptions(fc),
	})
	if err != nil {
		return nil, err
	}
	data := buildFixtureData(fc)
	for i, f := range data.refs {
		if err := c.Add(i, f, nil); err != nil {
			return nil, err
		}
	}
	t := &ClusterTarget{c: c, data: data}
	t.ch = churner{
		data:         data,
		update:       func(id int, feats *blas.Matrix) error { return c.Update(id, feats, nil) },
		compact:      func() error { _, err := c.Compact(); return err },
		compactEvery: uint64(fc.CompactEvery),
	}
	return t, nil
}

// Search implements Target.
func (t *ClusterTarget) Search(k uint64) error {
	q := t.data.queries[k%uint64(len(t.data.queries))]
	rep, err := t.c.SearchCoalesced(q, nil)
	if err != nil {
		return err
	}
	if rep == nil {
		return fmt.Errorf("soak: nil report")
	}
	return nil
}

// Enroll implements Target.
func (t *ClusterTarget) Enroll(k uint64) error { return t.ch.enroll(k) }

// Close implements Target.
func (t *ClusterTarget) Close() error { return t.c.Close() }

// Cluster exposes the underlying cluster (for metrics audits in tests).
func (t *ClusterTarget) Cluster() *cluster.Cluster { return t.c }

// HTTPTarget soaks a live texsearchd over its REST API.
type HTTPTarget struct {
	api  *cluster.Client
	data *fixtureData
	recs []*wire.FeatureRecord // query records, pre-encoded shapes
	ch   churner
}

// NewHTTPTarget points the soak at a running daemon. It enrolls the
// fixture references (ids 0..Refs-1) before returning, so point it at a
// scratch instance, not a production index.
func NewHTTPTarget(baseURL string, fc FixtureConfig) (*HTTPTarget, error) {
	api := cluster.NewClient(baseURL)
	if err := api.Health(); err != nil {
		return nil, fmt.Errorf("soak: daemon %s not healthy: %w", baseURL, err)
	}
	data := buildFixtureData(fc)
	for i, f := range data.refs {
		rec := &wire.FeatureRecord{ID: int64(i), Precision: gpusim.FP32, Scale: 1, Features: f}
		if err := api.Add(rec); err != nil {
			return nil, fmt.Errorf("soak: enroll %d: %w", i, err)
		}
	}
	t := &HTTPTarget{api: api, data: data}
	t.recs = make([]*wire.FeatureRecord, len(data.queries))
	for i, q := range data.queries {
		t.recs[i] = &wire.FeatureRecord{Precision: gpusim.FP32, Scale: 1, Features: q}
	}
	t.ch = churner{
		data: data,
		update: func(id int, feats *blas.Matrix) error {
			return api.Update(id, &wire.FeatureRecord{ID: int64(id), Precision: gpusim.FP32, Scale: 1, Features: feats})
		},
		compact:      func() error { _, err := api.Compact(); return err },
		compactEvery: uint64(fc.CompactEvery),
	}
	return t, nil
}

// Search implements Target.
func (t *HTTPTarget) Search(k uint64) error {
	rec := t.recs[k%uint64(len(t.recs))]
	_, err := t.api.Search(rec)
	return err
}

// Enroll implements Target.
func (t *HTTPTarget) Enroll(k uint64) error { return t.ch.enroll(k) }

// Close implements Target.
func (t *HTTPTarget) Close() error { return nil }
