package soak

import "math/bits"

// hist is a log-linear latency histogram in the style of HdrHistogram:
// values below 2^subBits land in exact unit buckets, and every octave
// above that is split into 2^subBits linear sub-buckets, bounding the
// relative quantile error at 1/2^subBits (~3%) across the whole range.
// All state is integral, so recording the same sample sequence always
// yields the same buckets — quantiles from a deterministic run are
// bit-reproducible, unlike a sampled or floating-accumulator design.
//
// Values are dimensionless int64s; the soak harness records microseconds.
type hist struct {
	buckets [numBuckets]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

const (
	subBits = 5 // 32 linear sub-buckets per octave
	subMask = 1<<subBits - 1
	// 59 octaves above the linear region cover the full int64 range.
	numBuckets = 60 << subBits
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 1<<subBits {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	shift := msb - subBits
	return (msb-subBits)<<subBits + int((v>>shift)&subMask) + 1<<subBits
}

// bucketHigh returns the largest value mapping to bucket i (the upper
// edge reported by quantiles, so estimates err on the safe side).
func bucketHigh(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	oct := (i - 1<<subBits) >> subBits
	rem := int64(i & subMask)
	width := int64(1) << oct
	return (1<<subBits+rem+1)*width - 1
}

// record adds one sample.
func (h *hist) record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// quantile returns an upper-bound estimate of the q-quantile. The exact
// maximum is returned for q >= 1 (and whenever the target falls in the
// top bucket), so reported max values are never widened to a bucket edge.
func (h *hist) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	target := int64(q*float64(h.count)) + 1
	if target > h.count {
		target = h.count
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i]
		if seen >= target {
			hi := bucketHigh(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// mean returns the arithmetic mean of recorded samples.
func (h *hist) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// merge folds other into h (used to combine per-worker histograms).
func (h *hist) merge(other *hist) {
	if other.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}
