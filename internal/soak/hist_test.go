package soak

import (
	"math/rand"
	"testing"
)

// TestHistBucketsRoundTrip pins the log-linear bucket math: every value's
// bucket upper edge is >= the value, and edges are monotone.
func TestHistBucketsRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 2, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345}
	for _, v := range vals {
		i := bucketOf(v)
		if hi := bucketHigh(i); hi < v {
			t.Fatalf("value %d: bucket %d upper edge %d below the value", v, i, hi)
		}
		if v > 0 {
			if j := bucketOf(bucketHigh(i) + 1); j <= i {
				t.Fatalf("value %d: bucket %d not closed at its upper edge", v, i)
			}
		}
	}
	prev := int64(-1)
	for i := 0; i < 1<<10; i++ {
		hi := bucketHigh(i)
		if hi <= prev {
			t.Fatalf("bucket %d: edge %d not monotone (prev %d)", i, hi, prev)
		}
		prev = hi
	}
}

// TestHistQuantileError pins the design bound: log-linear quantiles err
// upward by at most 1/2^subBits (~3.2%) plus one unit.
func TestHistQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var h hist
	exact := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 50000) // heavy-tailed µs-scale samples
		h.record(v)
		exact = append(exact, v)
	}
	if h.count != 20000 {
		t.Fatalf("count = %d", h.count)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.quantile(q)
		// Exact quantile by selection.
		sorted := append([]int64(nil), exact...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		want := sorted[int(q*float64(len(sorted)))]
		if got < want {
			t.Fatalf("q=%v: estimate %d below exact %d (quantiles must err upward)", q, got, want)
		}
		if maxAllowed := want + want>>subBits + 1; got > maxAllowed {
			t.Fatalf("q=%v: estimate %d exceeds error bound %d (exact %d)", q, got, maxAllowed, want)
		}
	}
	if h.quantile(1) != h.max {
		t.Fatalf("q=1 returned %d, want exact max %d", h.quantile(1), h.max)
	}
}

// TestHistMerge pins that merging two histograms equals recording the
// union, including exact min/max.
func TestHistMerge(t *testing.T) {
	var a, b, all hist
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 16))
		if i%2 == 0 {
			a.record(v)
		} else {
			b.record(v)
		}
		all.record(v)
	}
	a.merge(&b)
	if a.count != all.count || a.sum != all.sum || a.min != all.min || a.max != all.max {
		t.Fatalf("merge mismatch: got (%d,%d,%d,%d) want (%d,%d,%d,%d)",
			a.count, a.sum, a.min, a.max, all.count, all.sum, all.min, all.max)
	}
	for q := 1; q < 100; q++ {
		if a.quantile(float64(q)/100) != all.quantile(float64(q)/100) {
			t.Fatalf("merged q%d differs from union", q)
		}
	}
}
