package soak

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"texid/internal/blas"
	"texid/internal/cluster"
	"texid/internal/faultsim"
	"texid/internal/wire"
)

// SimConfig shapes one deterministic sim-clock soak: the same open-loop
// scenario as the wall harness, replayed sequentially on the simulated
// device clock with a single-server queueing model. Because every input
// (features, arrival gaps, read/write interleaving, fault schedule) is
// derived from the seed and every latency is virtual, two runs — at any
// GOMAXPROCS — produce byte-identical transcripts.
type SimConfig struct {
	// Workers is the shard count; Refs the enrolled population.
	Workers int
	Refs    int
	// Ops is the number of soak operations to replay.
	Ops int
	// QPS is the virtual arrival rate (ops per simulated second).
	QPS float64
	// Arrival is ArrivalPoisson (default) or ArrivalUniform.
	Arrival string
	// WriteRatio is the fraction of ops that are churn Updates.
	WriteRatio float64
	// Seed fixes features, schedule, and fault streams.
	Seed int64
	// MinShards/Health pass through to the cluster config.
	MinShards int
	Health    cluster.HealthPolicy
	// Plan, when non-nil, builds the fault schedule. It receives the
	// number of transport Add calls each worker sees during enrollment,
	// so kill indices can be placed relative to the soak's own reads.
	Plan func(addsPerWorker int) faultsim.Plan
	// LocalWorkEvery, when > 0, has every worker run one direct local
	// search each time this many ops complete — the background
	// maintenance work a real shard performs regardless of coordinator
	// traffic. It is what advances a partitioned worker's virtual clock
	// (coordinator calls are refused before they reach the engine), so
	// partition-heal schedules need it to make the heal reachable.
	LocalWorkEvery int
	// OnOp, when non-nil, observes every completed op (for health-FSM
	// assertions in tests). It must be deterministic if the transcript
	// digest is being compared.
	OnOp func(i int, rep *cluster.Report, err error)
	// TraceHealth, when set, samples every worker's health state after
	// each op into SimResult.HealthTrace and folds the states into the
	// transcript, so failure-detector trajectories are part of the
	// byte-identity contract.
	TraceHealth bool
}

// SimResult is the outcome of one deterministic soak.
type SimResult struct {
	Ops    int `json:"ops"`
	Reads  int `json:"reads"`
	Writes int `json:"writes"`
	Errors int `json:"errors"`
	// Virtual CO-safe latency quantiles in simulated microseconds.
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
	// Digest is the FNV-64a hash of the transcript, rendered as hex.
	Digest string `json:"digest"`
	// Transcript concatenates each read's wire-encoded summary, its
	// quantized virtual latency, and every error string (not serialized;
	// compared byte-for-byte by the determinism tests).
	Transcript []byte `json:"-"`
	// HealthTrace[i] is every worker's health state after op i (only
	// populated when SimConfig.TraceHealth is set).
	HealthTrace [][]cluster.HealthState `json:"-"`
}

// RunSim replays one deterministic sim-clock soak.
//
// The queueing model is open-loop single-server: op i's virtual start is
// max(arrival_i, completion_{i-1}), its service time is the simulated
// ElapsedUS the cluster reports, and its recorded latency is completion
// minus *arrival* — the coordinated-omission-safe definition, same as
// the wall harness, so a slow shard backs up the virtual queue and the
// backlog is charged to the ops it delayed.
//
//texlint:clockdomain
func RunSim(sc SimConfig) (*SimResult, error) {
	if sc.Workers < 1 || sc.Refs < 1 || sc.Ops < 1 || sc.QPS <= 0 {
		return nil, fmt.Errorf("soak: sim config needs Workers, Refs, Ops, QPS")
	}
	rng := rand.New(rand.NewSource(sc.Seed))

	refs := make([]*blas.Matrix, sc.Refs)
	for i := range refs {
		refs[i] = unitCols(rng, 16, 24)
	}
	queries := make([]*blas.Matrix, 2*sc.Refs)
	for i := range queries {
		queries[i] = perturb(rng, refs[i%sc.Refs], 32)
	}
	churn := make([]*blas.Matrix, sc.Refs)
	for i := range churn {
		churn[i] = unitCols(rng, 16, 24)
	}

	cfg := cluster.Config{
		Workers:   sc.Workers,
		Engine:    soakEngineConfig(),
		MinShards: sc.MinShards,
		Health:    sc.Health,
	}
	if sc.Plan != nil {
		cfg.Fault = faultsim.New(sc.Plan(sc.Refs / sc.Workers))
	}
	c, err := cluster.New(cfg) //texlint:ignore clockdomain construction is host-side setup (kvstore ping uses wall-clock timeouts); only the op replay below is on the simulated timeline
	if err != nil {
		return nil, err
	}
	defer c.Close() //texlint:ignore errcheck in-process fixture teardown; nothing to recover from here
	for i, f := range refs {
		//texlint:ignore clockdomain transport enrollment is host-side; its wall-clock use (kvstore timeouts) never reaches the virtual timeline
		if err := c.Add(i, f, nil); err != nil {
			return nil, fmt.Errorf("soak: sim enroll %d: %w", i, err)
		}
	}

	res := &SimResult{Ops: sc.Ops}
	var (
		lat        hist
		transcript []byte
		arrival    float64 // virtual µs
		busy       float64 // virtual completion time of the previous op
		gapUS      = 1e6 / sc.QPS
	)
	for i := 0; i < sc.Ops; i++ {
		if sc.Arrival == ArrivalUniform {
			arrival = float64(i) * gapUS
		} else {
			arrival += rng.ExpFloat64() * gapUS
		}
		write := rng.Float64() < sc.WriteRatio
		key := uint64(rng.Int63())

		var service float64
		var rep *cluster.Report
		var opErr error
		if write {
			res.Writes++
			id := int(key % uint64(sc.Refs))
			//texlint:ignore clockdomain cluster RPC plumbing is host-side; only the returned simulated ElapsedUS enters the virtual timeline
			opErr = c.Update(id, churn[key%uint64(len(churn))], nil)
		} else {
			res.Reads++
			//texlint:ignore clockdomain cluster RPC plumbing is host-side; only the returned simulated ElapsedUS enters the virtual timeline
			rep, opErr = c.Search(queries[key%uint64(len(queries))], nil)
			if opErr == nil {
				service = rep.ElapsedUS
			}
		}

		start := arrival
		if busy > start {
			start = busy
		}
		complete := start + service
		busy = complete
		l := int64(complete - arrival)
		lat.record(l)

		if opErr != nil {
			res.Errors++
			transcript = append(transcript, fmt.Sprintf("op %d error: %v\n", i, opErr)...)
		} else if rep != nil {
			transcript = append(transcript, wire.EncodeSummary(rep.Summary())...)
		}
		transcript = binary.BigEndian.AppendUint64(transcript, uint64(l))
		if sc.TraceHealth {
			states := c.Health()
			res.HealthTrace = append(res.HealthTrace, states)
			for _, st := range states {
				transcript = append(transcript, byte(st))
			}
		}
		if sc.OnOp != nil {
			sc.OnOp(i, rep, opErr)
		}
		if sc.LocalWorkEvery > 0 && (i+1)%sc.LocalWorkEvery == 0 {
			for wi, eng := range c.Workers() {
				if _, err := eng.Search(queries[uint64(i+wi)%uint64(len(queries))], nil); err != nil {
					return nil, fmt.Errorf("soak: local work on worker %d: %w", wi, err)
				}
			}
		}
	}

	res.P50US = float64(lat.quantile(0.50))
	res.P99US = float64(lat.quantile(0.99))
	res.P999US = float64(lat.quantile(0.999))
	res.MaxUS = float64(lat.max)
	res.Transcript = transcript
	h := fnv.New64a()
	_, _ = h.Write(transcript)
	res.Digest = fmt.Sprintf("%016x", h.Sum64())
	return res, nil
}
