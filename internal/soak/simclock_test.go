package soak

import (
	"bytes"
	"runtime"
	"testing"
)

// simTestConfig is the short deterministic soak used by the identity
// tests: 3 shards, mixed read/write, Poisson virtual arrivals.
func simTestConfig() SimConfig {
	return SimConfig{
		Workers: 3, Refs: 6, Ops: 60,
		QPS: 2000, WriteRatio: 0.2, Seed: 31,
	}
}

// TestSimSoakBitIdentical is the acceptance gate for the deterministic
// half of the harness: the full transcript (wire summaries, quantized
// virtual latencies, error strings) is byte-identical across 3
// consecutive runs and at GOMAXPROCS 1 and 4.
func TestSimSoakBitIdentical(t *testing.T) {
	sc := simTestConfig()
	first, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if first.Errors != 0 {
		t.Fatalf("%d errors without faults", first.Errors)
	}
	if first.Reads == 0 || first.Writes == 0 {
		t.Fatalf("mix collapsed: %d reads, %d writes", first.Reads, first.Writes)
	}
	if !(first.P50US <= first.P99US && first.P99US <= first.P999US && first.P999US <= first.MaxUS) {
		t.Fatalf("virtual quantiles out of order: %+v", first)
	}
	if first.MaxUS <= 0 {
		t.Fatal("no virtual latency recorded")
	}

	for run := 0; run < 2; run++ {
		again, err := RunSim(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Transcript, first.Transcript) {
			t.Fatalf("run %d transcript differs from first", run+2)
		}
		if again.Digest != first.Digest {
			t.Fatalf("run %d digest %s != %s", run+2, again.Digest, first.Digest)
		}
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		again, err := RunSim(sc)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Transcript, first.Transcript) {
			t.Fatalf("GOMAXPROCS=%d transcript differs", procs)
		}
	}
}

// TestSimSoakQueueingBacklog pins the coordinated-omission correction in
// the virtual queueing model: at an offered rate far above the simulated
// service rate, the open-loop queue must back up and the tail must
// dwarf the median (a closed-loop harness would report a flat profile).
func TestSimSoakQueueingBacklog(t *testing.T) {
	fast := simTestConfig()
	fast.QPS = 50 // far below service rate: nearly no queueing
	slow := simTestConfig()
	slow.QPS = 1e6 // far above service rate: every op queues

	fr, err := RunSim(fast)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := RunSim(slow)
	if err != nil {
		t.Fatal(err)
	}
	if sr.MaxUS <= fr.MaxUS {
		t.Fatalf("overload max %v not above underload max %v", sr.MaxUS, fr.MaxUS)
	}
	// Under heavy overload the backlog grows linearly with op index, so
	// the overloaded tail must dwarf anything the underloaded run saw,
	// and must still sit above its own median (every op is queued, later
	// ops deeper). A closed-loop harness would show neither.
	if sr.P999US < 10*fr.MaxUS {
		t.Fatalf("overloaded p99.9 %.0fµs not far above underloaded max %.0fµs", sr.P999US, fr.MaxUS)
	}
	if sr.P999US < 2*sr.P50US {
		t.Fatalf("overloaded tail %.0fµs vs median %.0fµs: backlog not charged to delayed ops", sr.P999US, sr.P50US)
	}
}

// TestRunSimChecked pins the self-check wrapper texbench gates on.
func TestRunSimChecked(t *testing.T) {
	rep, err := RunSimChecked(simTestConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic {
		t.Fatal("self-check reported nondeterminism on a deterministic config")
	}
	if rep.Runs != 2 || rep.Digest == "" {
		t.Fatalf("sim report incomplete: %+v", rep)
	}
}
