package soak

import (
	"fmt"
	"runtime"

	"texid/internal/blas"
	"texid/internal/cluster"
	"texid/internal/engine"
	"texid/internal/serve"
	"texid/internal/sift"
)

// allocsPerRun measures steady-state heap allocations per call of f,
// pinned to one P so other goroutines' allocations cannot be misbilled
// (the same discipline as testing.AllocsPerRun, without dragging the
// testing package into a production binary).
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm caches and freelists outside the measured window
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(runs)
}

// RunAllocProbes measures the allocs/op of the serving hot paths that
// BENCH_SOAK.json pins at zero drift:
//
//   - engine_search_steady: one warm Engine.Search (the knn hot path)
//   - serve_submit_demux: one Batcher.Do round trip through the pooled
//     call freelist (MaxBatch=1, so no coalescing noise — this is the
//     pure submit/demux overhead, which must stay at zero)
//   - cluster_searchbatch_scatter: one 4-query SearchBatch scatter-gather
//     across 3 shards, merge included
func RunAllocProbes() (map[string]float64, error) {
	out := make(map[string]float64, 3)

	// knn engine hot path.
	eng, err := engine.New(soakEngineConfig())
	if err != nil {
		return nil, err
	}
	data := buildFixtureData(DefaultFixture())
	for i, f := range data.refs {
		if err := eng.Add(i, f, nil); err != nil {
			return nil, err
		}
	}
	if err := eng.Flush(); err != nil {
		return nil, err
	}
	q := data.queries[0]
	var searchErr error
	out["engine_search_steady"] = allocsPerRun(20, func() {
		if _, err := eng.Search(q, nil); err != nil {
			searchErr = err
		}
	})
	if searchErr != nil {
		return nil, fmt.Errorf("soak: engine probe: %w", searchErr)
	}

	// Pure batcher submit/demux (identity runner, no engine).
	results := make([]int, 1)
	b := serve.New(func(qs []int) ([]int, error) {
		results = results[:0]
		for _, v := range qs {
			results = append(results, v)
		}
		return results, nil
	}, serve.Options{MaxBatch: 1})
	var doErr error
	out["serve_submit_demux"] = allocsPerRun(100, func() {
		if _, err := b.Do(7); err != nil {
			doErr = err
		}
	})
	b.Close()
	if doErr != nil {
		return nil, fmt.Errorf("soak: batcher probe: %w", doErr)
	}

	// Coordinator scatter-gather.
	c, err := cluster.New(cluster.Config{Workers: 3, Engine: soakEngineConfig()})
	if err != nil {
		return nil, err
	}
	defer c.Close() //texlint:ignore errcheck in-process fixture teardown; nothing to recover from here
	for i, f := range data.refs {
		if err := c.Add(i, f, nil); err != nil {
			return nil, err
		}
	}
	batch := []*blas.Matrix{data.queries[0], data.queries[1], data.queries[2], data.queries[3]}
	kps := make([][]sift.Keypoint, len(batch))
	var batchErr error
	out["cluster_searchbatch_scatter"] = allocsPerRun(10, func() {
		if _, err := c.SearchBatch(batch, kps); err != nil {
			batchErr = err
		}
	})
	if batchErr != nil {
		return nil, fmt.Errorf("soak: scatter probe: %w", batchErr)
	}
	return out, nil
}
