package soak

import (
	"bytes"
	"runtime"
	"testing"

	"texid/internal/cluster"
	"texid/internal/faultsim"
)

// chaosSoakConfig composes a mid-run worker kill with a partition-heal
// window inside one deterministic soak: worker-1 dies permanently a few
// reads in, worker-2 is partitioned from just after its first search
// until background local work carries its virtual clock past the window.
func chaosSoakConfig() SimConfig {
	return SimConfig{
		Workers: 3, Refs: 6, Ops: 90,
		QPS: 2000, WriteRatio: 0.25, Seed: 33,
		Health: cluster.HealthPolicy{SuspectAfter: 1, DeadAfter: 2, ProbeEvery: 2},
		// Workers run one local search every 8 ops: that is the only thing
		// that moves a partitioned worker's clock, so it bounds heal time.
		LocalWorkEvery: 8,
		TraceHealth:    true,
		Plan: func(addsPerWorker int) faultsim.Plan {
			return faultsim.Plan{
				Seed: 34,
				// Worker-1 drops dead mid-run, a few searches past enrollment.
				Kill: map[string]uint64{"worker-1": uint64(addsPerWorker) + 6},
				// Worker-2's window opens after enrollment (clock 0 < 1) and
				// closes at 400 virtual µs: its first search lands it at
				// ~66µs (inside), refused calls freeze the clock there, and
				// five rounds of local work (~66µs each) carry it past the
				// window, at which point a probe resurrects it.
				Partitions: []faultsim.Partition{{Peer: "worker-2", FromUS: 1, ToUS: 400}},
			}
		},
	}
}

// runChaosSoak executes the composed scenario once and sanity-checks the
// run shape common to all repetitions.
func runChaosSoak(t *testing.T) *SimResult {
	t.Helper()
	res, err := RunSim(chaosSoakConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("degenerate mix: %d reads, %d writes", res.Reads, res.Writes)
	}
	if len(res.HealthTrace) != res.Ops {
		t.Fatalf("health trace has %d rows, want %d", len(res.HealthTrace), res.Ops)
	}
	return res
}

// TestChaosSoakComposedFaults asserts the behavioral contract of the
// composed schedule: the killed worker degrades monotonically (it never
// reports Healthy again), the partitioned worker recovers monotonically
// (once healed it stays Healthy), and reads keep succeeding as partial
// results throughout.
func TestChaosSoakComposedFaults(t *testing.T) {
	res := runChaosSoak(t)

	state := func(op, worker int) cluster.HealthState { return res.HealthTrace[op][worker] }

	// Worker-1 (killed): finds its way out of Healthy and never back.
	firstDown := -1
	for op := 0; op < res.Ops; op++ {
		if state(op, 1) != cluster.Healthy {
			firstDown = op
			break
		}
	}
	if firstDown < 0 {
		t.Fatal("killed worker never left Healthy")
	}
	sawDead := false
	for op := firstDown; op < res.Ops; op++ {
		st := state(op, 1)
		if st == cluster.Healthy {
			t.Fatalf("killed worker returned to Healthy at op %d", op)
		}
		if st == cluster.Dead {
			sawDead = true
		}
	}
	if !sawDead {
		t.Fatal("killed worker was never declared Dead")
	}

	// Worker-2 (partitioned): goes down, comes back, and stays back.
	wentDown, lastDown := false, -1
	for op := 0; op < res.Ops; op++ {
		if state(op, 2) != cluster.Healthy {
			wentDown = true
			lastDown = op
		}
	}
	if !wentDown {
		t.Fatal("partition never took worker-2 out")
	}
	if lastDown == res.Ops-1 {
		t.Fatalf("partitioned worker never healed (still %v at the end)", state(res.Ops-1, 2))
	}
	for op := lastDown + 1; op < res.Ops; op++ {
		if state(op, 2) != cluster.Healthy {
			t.Fatalf("worker-2 flapped back down at op %d after healing", op)
		}
	}

	// Worker-0 carries the whole run untouched.
	for op := 0; op < res.Ops; op++ {
		if state(op, 0) != cluster.Healthy {
			t.Fatalf("unfaulted worker-0 degraded at op %d: %v", op, state(op, 0))
		}
	}

	// Result-shape checks ride on a second run with an observer (the
	// trace-bearing transcript is already pinned byte-identical below).
	sc := chaosSoakConfig()
	minShards, lastShards := 3, -1
	sc.OnOp = func(i int, rep *cluster.Report, err error) {
		if err != nil || rep == nil {
			return
		}
		if rep.ShardsAnswered < minShards {
			minShards = rep.ShardsAnswered
		}
		lastShards = rep.ShardsAnswered
	}
	if _, err := RunSim(sc); err != nil {
		t.Fatal(err)
	}
	if minShards != 1 {
		t.Fatalf("double-fault phase answered %d shards at minimum, want 1", minShards)
	}
	if lastShards != 2 {
		t.Fatalf("final read answered %d shards, want 2 (worker-1 dead, worker-2 healed)", lastShards)
	}
}

// TestChaosSoakBitIdentical is the satellite's identity gate: the full
// transcript — wire-encoded partial results, quantized virtual
// latencies, error strings, and the per-op health trace — is
// byte-identical across 3 consecutive runs and at GOMAXPROCS 1 and 4.
func TestChaosSoakBitIdentical(t *testing.T) {
	first := runChaosSoak(t)
	for run := 0; run < 2; run++ {
		if got := runChaosSoak(t); !bytes.Equal(got.Transcript, first.Transcript) {
			t.Fatalf("run %d transcript differs", run+2)
		}
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		got := runChaosSoak(t)
		runtime.GOMAXPROCS(prev)
		if !bytes.Equal(got.Transcript, first.Transcript) {
			t.Fatalf("GOMAXPROCS=%d transcript differs", procs)
		}
	}
}
