package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SimReport wraps the deterministic soak outcome with its self-check:
// the run is executed at least twice and Deterministic records whether
// every repetition produced the same transcript digest. Compare treats a
// false here as a hard regression — identity under load is a contract,
// not a statistic.
type SimReport struct {
	SimResult
	Runs          int  `json:"runs"`
	Deterministic bool `json:"deterministic"`
}

// Report is the BENCH_SOAK.json shape: wall scenarios (machine-dependent,
// gated with tolerance), the deterministic sim soak (gated exactly), and
// allocation probes for the serving hot paths (gated at zero drift).
type Report struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Mode       string `json:"mode"` // engine | cluster | http
	Shards     int    `json:"shards"`

	Scenarios []ScenarioResult `json:"scenarios"`
	Sweep     []ScenarioResult `json:"sweep,omitempty"`
	Sim       *SimReport       `json:"sim,omitempty"`

	// AllocsPerOp are steady-state heap allocations per operation on the
	// serving hot paths (see RunAllocProbes). These are code-shape
	// properties, not timings: they gate at zero drift on any machine.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadReport reads a BENCH_SOAK.json report.
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("soak: parse %s: %w", path, err)
	}
	return &r, nil
}

// RunSimChecked runs the deterministic soak `runs` times and reports
// whether every repetition produced an identical transcript digest.
func RunSimChecked(sc SimConfig, runs int) (*SimReport, error) {
	if runs < 2 {
		runs = 2
	}
	first, err := RunSim(sc)
	if err != nil {
		return nil, err
	}
	rep := &SimReport{SimResult: *first, Runs: runs, Deterministic: true}
	for i := 1; i < runs; i++ {
		again, err := RunSim(sc)
		if err != nil {
			return nil, err
		}
		if again.Digest != first.Digest {
			rep.Deterministic = false
		}
	}
	return rep, nil
}

// Compare gates current against baseline and returns the problems found
// (empty = pass).
//
// Always gated: the sim-clock soak's determinism self-check, sim error
// counts, and zero allocs/op drift (a code-shape property, so a baseline
// from any machine applies). Gated only when gateWall is set: read-path
// p99 within tol of baseline, achieved QPS within 20% of offered, and
// zero wall-scenario errors — those are machine-dependent, so CI (which
// runs on unknown hardware) checks only the exact half.
func Compare(baseline, current *Report, tol float64, gateWall bool) []string {
	var problems []string

	if current.Sim == nil {
		problems = append(problems, "sim: current report has no deterministic sim-clock soak")
	} else {
		if !current.Sim.Deterministic {
			problems = append(problems, fmt.Sprintf("sim: transcript digest varied across %d runs (determinism contract broken)", current.Sim.Runs))
		}
		if baseline.Sim != nil && current.Sim.Errors != baseline.Sim.Errors {
			problems = append(problems, fmt.Sprintf("sim: %d errors, baseline had %d", current.Sim.Errors, baseline.Sim.Errors))
		}
	}

	curAllocs := current.AllocsPerOp
	ops := make([]string, 0, len(baseline.AllocsPerOp))
	for op := range baseline.AllocsPerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		base := baseline.AllocsPerOp[op]
		cur, ok := curAllocs[op]
		if !ok {
			problems = append(problems, fmt.Sprintf("allocs: probe %q missing from current report", op))
			continue
		}
		// Zero drift: any increase beyond rounding noise fails.
		if cur > base+0.5 {
			problems = append(problems, fmt.Sprintf("allocs: %s %.1f allocs/op, baseline %.1f (+%.1f)", op, cur, base, cur-base))
		}
	}

	if !gateWall {
		return problems
	}
	baseByName := make(map[string]ScenarioResult, len(baseline.Scenarios))
	for _, s := range baseline.Scenarios {
		baseByName[s.Name] = s
	}
	for _, s := range current.Scenarios {
		if s.Errors > 0 {
			problems = append(problems, fmt.Sprintf("%s: %d errors under load", s.Name, s.Errors))
		}
		if s.AchievedQPS < 0.8*s.TargetQPS {
			problems = append(problems, fmt.Sprintf("%s: achieved %.1f QPS of %.1f offered (generator fell behind)", s.Name, s.AchievedQPS, s.TargetQPS))
		}
		b, ok := baseByName[s.Name]
		if !ok {
			continue
		}
		if b.Read.P99MS > 0 && s.Read.P99MS > b.Read.P99MS*(1+tol) {
			problems = append(problems, fmt.Sprintf("%s: read p99 %.2f ms, baseline %.2f ms (>%.0f%% regression)", s.Name, s.Read.P99MS, b.Read.P99MS, tol*100))
		}
	}
	return problems
}
