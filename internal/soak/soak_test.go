package soak

import (
	"testing"
	"time"
)

// shortFixture shrinks the default fixture for seconds-scale tests.
func shortFixture() FixtureConfig {
	fc := DefaultFixture()
	fc.CompactEvery = 16
	return fc
}

// TestWallSoakSteady drives the in-process engine target with a short
// read-only open-loop scenario and checks the report is coherent:
// every op accounted for, no errors, CO-safe quantiles ordered, and GC
// telemetry populated.
func TestWallSoakSteady(t *testing.T) {
	target, err := NewEngineTarget(shortFixture())
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close() //nolint:errcheck

	res, err := Run(target, Scenario{
		Name: "steady", QPS: 100, Duration: 1500 * time.Millisecond, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors under steady load", res.Errors)
	}
	if res.Reads+res.Writes != int64(int(100*1.5)) {
		t.Fatalf("ops %d+%d, want %d scheduled arrivals", res.Reads, res.Writes, int(100*1.5))
	}
	if res.Writes != 0 || res.Write != nil {
		t.Fatalf("read-only scenario recorded %d writes", res.Writes)
	}
	r := res.Read
	if !(r.P50MS <= r.P99MS && r.P99MS <= r.P999MS && r.P999MS <= r.MaxMS) {
		t.Fatalf("quantiles out of order: %+v", r)
	}
	if r.MaxMS <= 0 {
		t.Fatalf("no latency recorded: %+v", r)
	}
	if res.GC.AllocMB <= 0 {
		t.Fatalf("GC telemetry missing: %+v", res.GC)
	}
	if res.GC.GoroutinePeak < 1 {
		t.Fatalf("goroutine peak not sampled: %+v", res.GC)
	}
}

// TestWallSoakChurn mixes enrollment churn into the read stream and
// verifies writes actually execute (including periodic compaction) and
// reads keep succeeding while the index is rewritten underneath them.
func TestWallSoakChurn(t *testing.T) {
	target, err := NewEngineTarget(shortFixture())
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close() //nolint:errcheck

	res, err := Run(target, Scenario{
		Name: "churn", QPS: 100, Duration: 1500 * time.Millisecond,
		WriteRatio: 0.3, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors under churn", res.Errors)
	}
	if res.Writes == 0 || res.Write == nil {
		t.Fatal("churn scenario performed no writes")
	}
	if res.Reads == 0 {
		t.Fatal("churn scenario performed no reads")
	}
	if target.ch.writes.Load() == 0 {
		t.Fatal("churner never ran")
	}
	if target.ch.compactEvery > 0 && target.ch.writes.Load() > target.ch.compactEvery {
		// At least one compaction must have fired once enough writes ran.
		stats := target.eng.Stats()
		if stats.Searches == 0 {
			t.Fatalf("engine stats empty after soak: %+v", stats)
		}
	}
}

// TestWallSoakClusterTarget runs the multi-shard in-process target (the
// coordinator coalescing path) under mixed load.
func TestWallSoakClusterTarget(t *testing.T) {
	target, err := NewClusterTarget(3, shortFixture())
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close() //nolint:errcheck

	res, err := Run(target, Scenario{
		Name: "cluster-churn", QPS: 80, Duration: time.Second,
		WriteRatio: 0.2, Arrival: ArrivalUniform, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors on the cluster target", res.Errors)
	}
	searches := 0
	for _, ws := range target.Cluster().Stats().PerWorker {
		searches += ws.Searches
	}
	if searches == 0 {
		t.Fatal("cluster saw no searches")
	}
}

// TestSweepAppliesGOGC runs a two-point GOGC sweep and checks each point
// is labeled and measured.
func TestSweepAppliesGOGC(t *testing.T) {
	factory := func() (Target, error) { return NewEngineTarget(shortFixture()) }
	out, err := RunSweep(factory, Scenario{
		Name: "steady", QPS: 60, Duration: 700 * time.Millisecond, Seed: 24,
	}, []int{100, 400}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("sweep produced %d points, want 3", len(out))
	}
	if out[0].GOGC != 100 || out[1].GOGC != 400 {
		t.Fatalf("GOGC labels wrong: %+v %+v", out[0], out[1])
	}
	if out[2].MemLimitMB != 256 {
		t.Fatalf("memlimit point missing: %+v", out[2])
	}
	for _, p := range out {
		if p.Errors != 0 || p.Read.Count == 0 {
			t.Fatalf("sweep point %s unhealthy: %+v", p.Name, p)
		}
	}
}

// TestScheduleDeterministic pins that the arrival schedule is a pure
// function of the scenario seed.
func TestScheduleDeterministic(t *testing.T) {
	sc := Scenario{Name: "x", QPS: 500, Duration: time.Second, WriteRatio: 0.25, Seed: 7}
	a, b := schedule(sc), schedule(sc)
	if len(a) != len(b) || len(a) != 500 {
		t.Fatalf("schedule sizes: %d vs %d", len(a), len(b))
	}
	writes := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between runs", i)
		}
		if i > 0 && a[i].offset < a[i-1].offset {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		if a[i].write {
			writes++
		}
	}
	if writes < 80 || writes > 170 {
		t.Fatalf("write mix %d/500 far from the configured 25%%", writes)
	}
}

// TestAllocProbes pins the zero-alloc batcher contract at the probe level:
// the pure submit/demux round trip must not allocate, and the probe map
// carries all gated ops.
func TestAllocProbes(t *testing.T) {
	probes, err := RunAllocProbes()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"engine_search_steady", "serve_submit_demux", "cluster_searchbatch_scatter"} {
		if _, ok := probes[op]; !ok {
			t.Fatalf("probe %q missing: %v", op, probes)
		}
	}
	if a := probes["serve_submit_demux"]; a > 0.5 {
		t.Fatalf("batcher submit/demux allocates %.1f/op, want 0", a)
	}
	if a := probes["engine_search_steady"]; a > 50 {
		t.Fatalf("engine steady-state search allocates %.1f/op, drifted above the pinned bound", a)
	}
}
