package soak

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// GCTelemetry is the runtime's view of one soak scenario: what the
// collector did while the load ran. Pause quantiles come from the
// runtime's own /gc/pauses:seconds histogram (delta between scenario
// start and end, so concurrent scenarios never see each other's pauses);
// heap and goroutine peaks are sampled on a coarse ticker, which is
// enough to catch sustained growth even if it can miss a momentary spike.
type GCTelemetry struct {
	// Pauses is the number of stop-the-world pauses observed.
	Pauses int64 `json:"pauses"`
	// Cycles is the number of completed GC cycles.
	Cycles uint64 `json:"cycles"`
	// PauseP50US/PauseP99US/PauseMaxUS are stop-the-world pause quantiles
	// in microseconds (upper-bound estimates from the runtime histogram).
	PauseP50US float64 `json:"pause_p50_us"`
	PauseP99US float64 `json:"pause_p99_us"`
	PauseMaxUS float64 `json:"pause_max_us"`
	// HeapPeakMB is the peak sampled heap-objects footprint.
	HeapPeakMB float64 `json:"heap_peak_mb"`
	// GoroutinePeak is the peak sampled goroutine count.
	GoroutinePeak int `json:"goroutine_peak"`
	// AllocMB is the total bytes allocated during the scenario.
	AllocMB float64 `json:"alloc_mb"`
}

// Metric names sampled from runtime/metrics. All exist since Go 1.16+;
// sampler degrades to zeros (KindBad) rather than failing if one is ever
// renamed.
const (
	mGCPauses   = "/gc/pauses:seconds"
	mGCCycles   = "/gc/cycles/total:gc-cycles"
	mHeapAllocs = "/gc/heap/allocs:bytes"
	mHeapBytes  = "/memory/classes/heap/objects:bytes"
	mGoroutines = "/sched/goroutines:goroutines"
)

// telemetry samples runtime/metrics for the duration of one scenario.
type telemetry struct {
	start []metrics.Sample

	mu sync.Mutex
	//texlint:guards mu
	heapPeak uint64
	//texlint:guards mu
	goroutinePeak uint64

	done chan struct{}
	wg   sync.WaitGroup
}

// startTelemetry snapshots the cumulative runtime metrics and begins
// sampling instantaneous ones (heap, goroutines) every interval.
func startTelemetry(interval time.Duration) *telemetry {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	t := &telemetry{
		start: newSamples(),
		done:  make(chan struct{}),
	}
	metrics.Read(t.start)
	t.samplePeaks()
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-t.done:
				return
			case <-tick.C:
				t.samplePeaks()
			}
		}
	}()
	return t
}

func newSamples() []metrics.Sample {
	names := []string{mGCPauses, mGCCycles, mHeapAllocs}
	s := make([]metrics.Sample, len(names))
	for i, n := range names {
		s[i].Name = n
	}
	return s
}

// samplePeaks reads the instantaneous gauges and folds them into the
// running peaks.
func (t *telemetry) samplePeaks() {
	s := []metrics.Sample{{Name: mHeapBytes}, {Name: mGoroutines}}
	metrics.Read(s)
	t.mu.Lock()
	if v := kindUint64(s[0]); v > t.heapPeak {
		t.heapPeak = v
	}
	if v := kindUint64(s[1]); v > t.goroutinePeak {
		t.goroutinePeak = v
	}
	t.mu.Unlock()
}

// stop ends sampling and returns the telemetry delta for the scenario.
func (t *telemetry) stop() GCTelemetry {
	close(t.done)
	t.wg.Wait()
	t.samplePeaks()

	end := newSamples()
	metrics.Read(end)

	var g GCTelemetry
	g.Cycles = kindUint64(end[1]) - kindUint64(t.start[1])
	g.AllocMB = float64(kindUint64(end[2])-kindUint64(t.start[2])) / (1 << 20)
	t.mu.Lock()
	g.HeapPeakMB = float64(t.heapPeak) / (1 << 20)
	g.GoroutinePeak = int(t.goroutinePeak)
	t.mu.Unlock()

	if d := histDelta(t.start[0], end[0]); d != nil {
		g.Pauses = d.total
		g.PauseP50US = d.quantile(0.50) * 1e6
		g.PauseP99US = d.quantile(0.99) * 1e6
		g.PauseMaxUS = d.maxEdge() * 1e6
	}
	return g
}

func kindUint64(s metrics.Sample) uint64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s.Value.Uint64()
}

// pauseDelta is the per-bucket difference of two runtime pause
// histograms: the pauses that happened during the scenario.
type pauseDelta struct {
	edges  []float64 // len(counts)+1 boundaries, possibly ±Inf at the ends
	counts []uint64
	total  int64
}

func histDelta(start, end metrics.Sample) *pauseDelta {
	if start.Value.Kind() != metrics.KindFloat64Histogram || end.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	h0, h1 := start.Value.Float64Histogram(), end.Value.Float64Histogram()
	if len(h0.Counts) != len(h1.Counts) {
		return nil
	}
	d := &pauseDelta{edges: h1.Buckets, counts: make([]uint64, len(h1.Counts))}
	for i := range d.counts {
		d.counts[i] = h1.Counts[i] - h0.Counts[i]
		d.total += int64(d.counts[i])
	}
	return d
}

// quantile returns the upper bucket edge at which the cumulative count
// reaches q (finite: an infinite top edge falls back to its lower edge).
func (d *pauseDelta) quantile(q float64) float64 {
	if d.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(d.total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range d.counts {
		seen += int64(c)
		if seen >= target {
			return d.edge(i)
		}
	}
	return d.edge(len(d.counts) - 1)
}

// maxEdge returns the upper edge of the highest non-empty bucket.
func (d *pauseDelta) maxEdge() float64 {
	for i := len(d.counts) - 1; i >= 0; i-- {
		if d.counts[i] > 0 {
			return d.edge(i)
		}
	}
	return 0
}

// edge returns a finite upper edge for bucket i.
func (d *pauseDelta) edge(i int) float64 {
	hi := d.edges[i+1]
	if math.IsInf(hi, 1) {
		hi = d.edges[i]
	}
	if math.IsInf(hi, -1) || math.IsNaN(hi) {
		return 0
	}
	return hi
}
