package knn

import (
	"fmt"
	"math"

	"texid/internal/blas"
	"texid/internal/gpusim"
)

// MatchBatch runs the selected 2-NN variant for every reference image in
// the batch against one query, enqueuing the corresponding operations on
// stream and returning per-reference results. Phantom inputs produce
// results with nil slices (timing only).
func MatchBatch(stream *gpusim.Stream, rb *RefBatch, q *Query, opts Options) ([]Pair2NN, error) {
	return MatchBatchScratch(stream, rb, q, opts, nil)
}

// MatchBatchScratch is MatchBatch with an optional reusable Scratch: the
// distance matrix and result slabs come from sc, so steady-state search
// allocates nothing per batch. Results alias sc and must be consumed
// before the next call reusing it; a nil sc behaves exactly like
// MatchBatch.
//
//texlint:hotpath
//texlint:scratchalias
func MatchBatchScratch(stream *gpusim.Stream, rb *RefBatch, q *Query, opts Options, sc *Scratch) ([]Pair2NN, error) {
	if rb.D != q.D {
		return nil, fmt.Errorf("knn: dimension mismatch: refs d=%d, query d=%d", rb.D, q.D)
	}
	switch opts.Algorithm {
	case Baseline:
		return matchBaseline(stream, rb, q) //texlint:ignore hotalloc the baseline variant allocates per batch by design; it exists to be measured against, not to meet the zero-alloc contract
	case Garcia, Eq1Top2:
		return matchEq1(stream, rb, q, opts, sc)
	case RootSIFT:
		return matchRootSIFT(stream, rb, q, opts, sc)
	}
	return nil, fmt.Errorf("knn: unknown algorithm %v", opts.Algorithm)
}

// matchBaseline models the OpenCV-CUDA path: one monolithic brute-force
// kernel per reference image (no batching, no GEMM decomposition).
//
//texlint:ignore streampair the engine synchronizes the device after issuing every batch
func matchBaseline(stream *gpusim.Stream, rb *RefBatch, q *Query) ([]Pair2NN, error) {
	results := make([]Pair2NN, rb.Count())
	for b := 0; b < rb.Count(); b++ {
		b := b
		stream.BaselineMatch(rb.M, q.N, rb.D, func() {
			if rb.phantom || q.phantom {
				results[b] = Pair2NN{RefID: rb.IDs[b]}
				return
			}
			R := rb.F32.Slice(b*rb.M, (b+1)*rb.M)
			results[b] = bruteForce2NN(rb.IDs[b], R, q.F32)
		})
		stream.CopyD2H(resultBytes(q.N, gpusim.FP32), false, nil)
		stream.HostPost(1, gpusim.FP32, nil)
	}
	return results, nil
}

// matchEq1 runs Algorithm 1: GEMM, add N_R, sort (insertion or top-2
// scan), add N_Q + sqrt, D2H. Used by both the Garcia reference variant
// and the paper's top-2 optimization.
//
//texlint:ignore streampair the engine synchronizes the device after issuing every batch
func matchEq1(stream *gpusim.Stream, rb *RefBatch, q *Query, opts Options, sc *Scratch) ([]Pair2NN, error) {
	B := rb.Count()
	m, n, d := rb.M, q.N, rb.D
	prec := opts.Precision
	phantom := rb.phantom || q.phantom
	if prec == gpusim.FP16 && rb.F16 == nil && !rb.phantom {
		return nil, fmt.Errorf("knn: FP16 match on an FP32 reference batch")
	}
	if prec == gpusim.FP16 && q.F16 == nil && !q.phantom {
		return nil, fmt.Errorf("knn: FP16 match on an FP32-staged query (stage with Precision FP16)")
	}
	if rb.Norms == nil && !rb.phantom {
		return nil, fmt.Errorf("knn: Algorithm 1 requires reference norms (withNorms=true)")
	}

	// The functional payload computes the full similarity matrix and the
	// per-item top-2 in one closure chain; the timing model charges each
	// pipeline step separately.
	var C *blas.Matrix
	results := sc.pairSlab(rb.IDs, n, phantom)
	if !phantom {
		C = sc.matrix(B*m, n)
	}

	// Steps 1-3: norms (amortized/offline for refs, tiny for query) + GEMM.
	stream.Gemm(B*m, n, d, prec, func() {
		if phantom {
			return
		}
		if prec == gpusim.FP16 {
			blas.HGemmTNPanel(-2, rb.Panel(), rb.F16, q.F16, opts.Accum, C)
			// Undo the feature scale: A holds -2·s²·RᵀQ.
			inv := 1 / (rb.Scale * q.Scale)
			for i := range C.Data {
				C.Data[i] *= inv
			}
		} else {
			blas.GemmTN(-2, rb.F32, q.F32, 0, C)
		}
	})

	// Step 4: add N_R to every row. The device still charges the
	// elementwise traversal here, but the host-side arithmetic is fused
	// into the selection pass below (Top2AddRows), which adds N_R on the
	// fly — one sweep over the m×n block instead of two.
	stream.Elementwise("elementwise/addNR", 2*int64(B)*int64(m)*int64(n)*int64(prec.ElemBytes()), nil)

	// Step 5: per-column top-2 selection within each reference block,
	// with the step-4 row add fused in.
	sel := func() { //texlint:ignore hotalloc the payload closure runs eagerly inside the stream call and is never retained, so it stays on the stack
		if phantom {
			return
		}
		blas.Parallel(B, func(b int) {
			p := &results[b]
			blas.Top2AddRows(C, rb.Norms, b*m, (b+1)*m, p.Best, p.Second, p.BestIdx)
		})
	}
	if opts.Algorithm == Garcia {
		stream.InsertionSort(m, n, B, prec, sel)
	} else {
		stream.Top2Scan(m, n, B, prec, sel)
	}

	// Steps 6-7: add N_Q to the two survivors and square-root (fused).
	stream.Elementwise("elementwise/addNQ-sqrt", 2*int64(B)*2*int64(n)*int64(prec.ElemBytes()), func() {
		if phantom {
			return
		}
		for b := 0; b < B; b++ {
			finishDistances(&results[b], q.Norms)
		}
	})

	// Step 8: move the 2×n result and indices to host, then post-process.
	stream.CopyD2H(int64(B)*resultBytes(n, prec), false, nil)
	stream.HostPost(B, prec, nil)
	return results, nil
}

// matchRootSIFT runs Algorithm 2: with unit-norm RootSIFT features,
// ρ² = 2 + A where A = -2·RᵀQ, so the pipeline is GEMM plus one fused
// top-2/sqrt kernel.
//
//texlint:ignore streampair the engine synchronizes the device after issuing every batch
func matchRootSIFT(stream *gpusim.Stream, rb *RefBatch, q *Query, opts Options, sc *Scratch) ([]Pair2NN, error) {
	B := rb.Count()
	m, n, d := rb.M, q.N, rb.D
	prec := opts.Precision
	phantom := rb.phantom || q.phantom
	if prec == gpusim.FP16 && !phantom && (rb.F16 == nil || q.F16 == nil) {
		return nil, fmt.Errorf("knn: FP16 match on FP32-staged operands (stage with Precision FP16)")
	}

	var C *blas.Matrix
	results := sc.pairSlab(rb.IDs, n, phantom)
	if !phantom {
		C = sc.matrix(B*m, n)
	}

	stream.Gemm(B*m, n, d, prec, func() {
		if phantom {
			return
		}
		if prec == gpusim.FP16 {
			blas.HGemmTNPanel(-2, rb.Panel(), rb.F16, q.F16, opts.Accum, C)
			inv := 1 / (rb.Scale * q.Scale)
			for i := range C.Data {
				C.Data[i] *= inv
			}
		} else {
			blas.GemmTN(-2, rb.F32, q.F32, 0, C)
		}
	})

	// Fused steps 2-3: top-2 per column per block, then sqrt(2 + a) in
	// registers. Same device cost as the plain top-2 scan.
	stream.Top2Scan(m, n, B, prec, func() {
		if phantom {
			return
		}
		blas.Parallel(B, func(b int) {
			p := &results[b]
			blas.Top2AddRows(C, nil, b*m, (b+1)*m, p.Best, p.Second, p.BestIdx)
			for j := range p.Best {
				p.Best[j] = sqrt32(2 + p.Best[j])
				p.Second[j] = sqrt32(2 + p.Second[j])
			}
		})
	})

	stream.CopyD2H(int64(B)*resultBytes(n, prec), false, nil)
	stream.HostPost(B, prec, nil)
	return results, nil
}

// bruteForce2NN is the functional baseline: direct O(d·m·n) squared
// distances plus scan. It is also the oracle the tests compare against.
func bruteForce2NN(refID int, R, Q *blas.Matrix) Pair2NN {
	n := Q.Cols
	r := Pair2NN{
		RefID:   refID,
		Best:    make([]float32, n),
		Second:  make([]float32, n),
		BestIdx: make([]int32, n),
	}
	for j := 0; j < n; j++ {
		qc := Q.Col(j)
		best, second := float32(math.MaxFloat32), float32(math.MaxFloat32)
		bestIdx := int32(-1)
		for i := 0; i < R.Cols; i++ {
			rc := R.Col(i)
			var d float32
			for l := range qc {
				diff := rc[l] - qc[l]
				d += diff * diff
			}
			if d < best {
				second = best
				best = d
				bestIdx = int32(i)
			} else if d < second {
				second = d
			}
		}
		r.Best[j] = sqrt32(best)
		r.Second[j] = sqrt32(second)
		r.BestIdx[j] = bestIdx
	}
	return r
}

// selectTop2Block scans rows [lo, hi) of every column of C, keeping the
// two smallest values in registers — the single-pass selection that
// replaces the insertion sort. Values are returned as squared distances
// (callers apply N_Q/sqrt or the RootSIFT 2+A epilogue).
func selectTop2Block(refID int, C *blas.Matrix, lo, hi int) Pair2NN {
	n := C.Cols
	r := Pair2NN{
		RefID:   refID,
		Best:    make([]float32, n),
		Second:  make([]float32, n),
		BestIdx: make([]int32, n),
	}
	for j := 0; j < n; j++ {
		col := C.Col(j)
		best, second := float32(math.MaxFloat32), float32(math.MaxFloat32)
		bestIdx := int32(-1)
		for i := lo; i < hi; i++ {
			v := col[i]
			if v < best {
				second = best
				best = v
				bestIdx = int32(i - lo)
			} else if v < second {
				second = v
			}
		}
		r.Best[j] = best
		r.Second[j] = second
		r.BestIdx[j] = bestIdx
	}
	return r
}

// finishDistances applies Algorithm 1 steps 6-7 to one result: add N_Q,
// clamp tiny negatives from cancellation, square-root. FP16 overflow
// (±Inf) propagates to +Inf distances.
func finishDistances(r *Pair2NN, qNorms []float32) {
	for j := range r.Best {
		r.Best[j] = sqrt32(r.Best[j] + qNorms[j])
		r.Second[j] = sqrt32(r.Second[j] + qNorms[j])
	}
}

// sqrt32 is float32 sqrt with negative-cancellation clamping; -Inf (an
// overflowed FP16 −2RᵀQ term) maps to +Inf distance so overflow is
// detectable downstream.
func sqrt32(v float32) float32 {
	if math.IsInf(float64(v), 0) {
		return float32(math.Inf(1))
	}
	if v < 0 {
		return 0
	}
	return float32(math.Sqrt(float64(v)))
}

// WorkspaceBytes exposes the per-invocation device workspace so the engine
// can charge per-stream scratch memory (Table 6's extra-GPU-memory
// column): the (B·m)×n distance matrix.
func WorkspaceBytes(batch, m, n int, prec gpusim.Precision) int64 {
	return workspaceBytes(batch, m, n, prec)
}
