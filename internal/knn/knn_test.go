package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"texid/internal/blas"
	"texid/internal/gpusim"
	"texid/internal/half"
	"texid/internal/sift"
)

func randomFeatures(rng *rand.Rand, d, n int, norm float64) *blas.Matrix {
	m := blas.NewMatrix(d, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		var s float64
		for i := range col {
			col[i] = rng.Float32()
			s += float64(col[i]) * float64(col[i])
		}
		f := float32(norm / math.Sqrt(s))
		for i := range col {
			col[i] *= f
		}
	}
	return m
}

// rootSIFTFeatures returns unit-norm non-negative features (the RootSIFT
// invariant).
func rootSIFTFeatures(rng *rand.Rand, d, n int) *blas.Matrix {
	m := randomFeatures(rng, d, n, 512)
	sift.ApplyRootSIFT(m)
	return m
}

func newTestDevice() *gpusim.Device { return gpusim.NewDevice(gpusim.TeslaP100()) }

func TestAllAlgorithmsAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, m, n := 32, 40, 24
	dev := newTestDevice()
	stream := dev.NewStream()

	refs := []*blas.Matrix{rootSIFTFeatures(rng, d, m), rootSIFTFeatures(rng, d, m)}
	qm := rootSIFTFeatures(rng, d, n)
	q, err := NewQuery(dev, qm, gpusim.FP32, 1)
	if err != nil {
		t.Fatal(err)
	}

	oracle := []Pair2NN{bruteForce2NN(0, refs[0], qm), bruteForce2NN(1, refs[1], qm)}

	for _, algo := range []Algorithm{Baseline, Garcia, Eq1Top2, RootSIFT} {
		rb, err := NewRefBatch(dev, []int{0, 1}, refs, gpusim.FP32, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatchBatch(stream, rb, q, Options{Algorithm: algo, Precision: gpusim.FP32})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("%v: %d results", algo, len(got))
		}
		for b := range got {
			for j := 0; j < n; j++ {
				if got[b].BestIdx[j] != oracle[b].BestIdx[j] {
					t.Errorf("%v ref %d query %d: best idx %d, want %d",
						algo, b, j, got[b].BestIdx[j], oracle[b].BestIdx[j])
				}
				if diff := math.Abs(float64(got[b].Best[j] - oracle[b].Best[j])); diff > 2e-3 {
					t.Errorf("%v ref %d query %d: best %g, want %g",
						algo, b, j, got[b].Best[j], oracle[b].Best[j])
				}
				if diff := math.Abs(float64(got[b].Second[j] - oracle[b].Second[j])); diff > 2e-3 {
					t.Errorf("%v ref %d query %d: second %g, want %g",
						algo, b, j, got[b].Second[j], oracle[b].Second[j])
				}
			}
		}
		rb.Free()
	}
}

func TestFP16MatchesFP32Closely(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, m, n := 128, 64, 32
	dev := newTestDevice()
	stream := dev.NewStream()

	refs := []*blas.Matrix{rootSIFTFeatures(rng, d, m)}
	qm := rootSIFTFeatures(rng, d, n)
	q, _ := NewQuery(dev, qm, gpusim.FP16, 1)
	oracle := bruteForce2NN(0, refs[0], qm)

	rb, err := NewRefBatch(dev, []int{0}, refs, gpusim.FP16, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Overflow != 0 {
		t.Fatalf("RootSIFT features overflowed FP16: %d", rb.Overflow)
	}
	got, err := MatchBatch(stream, rb, q, Options{
		Algorithm: RootSIFT, Precision: gpusim.FP16, Scale: 1, Accum: blas.AccumFP16,
	})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for j := 0; j < n; j++ {
		if got[0].BestIdx[j] == oracle.BestIdx[j] {
			agree++
		}
		if diff := math.Abs(float64(got[0].Best[j] - oracle.Best[j])); diff > 0.05 {
			t.Errorf("query %d: FP16 best %g vs FP32 %g", j, got[0].Best[j], oracle.Best[j])
		}
	}
	if agree < n*9/10 {
		t.Fatalf("FP16 nearest-neighbor agreement only %d/%d", agree, n)
	}
}

func TestFP16ScaledEq1Matches(t *testing.T) {
	// Algorithm 1 in FP16 with the production scale factor 2^-7 on
	// norm-512 SIFT-convention features must agree with brute force.
	rng := rand.New(rand.NewSource(3))
	d, m, n := 128, 48, 24
	dev := newTestDevice()
	stream := dev.NewStream()

	refs := []*blas.Matrix{randomFeatures(rng, d, m, 512)}
	qm := randomFeatures(rng, d, n, 512)
	scale := half.PowerOfTwoScale(-7)
	q, _ := NewQuery(dev, qm, gpusim.FP16, scale)
	oracle := bruteForce2NN(0, refs[0], qm)

	rb, err := NewRefBatch(dev, []int{0}, refs, gpusim.FP16, scale, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatchBatch(stream, rb, q, Options{
		Algorithm: Eq1Top2, Precision: gpusim.FP16, Scale: scale, Accum: blas.AccumFP16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		rel := math.Abs(float64(got[0].Best[j]-oracle.Best[j])) / float64(oracle.Best[j])
		if rel > 0.02 {
			t.Errorf("query %d: scaled FP16 distance off by %.2f%%", j, rel*100)
		}
	}
}

func TestUnscaledSIFTOverflows(t *testing.T) {
	// Norm-512 features without scaling overflow the FP16 accumulator —
	// Table 2's "overflow" rows.
	rng := rand.New(rand.NewSource(4))
	d, m, n := 128, 16, 8
	dev := newTestDevice()
	stream := dev.NewStream()

	refs := []*blas.Matrix{randomFeatures(rng, d, m, 512)}
	qm := randomFeatures(rng, d, n, 512)
	q, _ := NewQuery(dev, qm, gpusim.FP16, 1)
	rb, _ := NewRefBatch(dev, []int{0}, refs, gpusim.FP16, 1, true)
	got, err := MatchBatch(stream, rb, q, Options{
		Algorithm: Eq1Top2, Precision: gpusim.FP16, Scale: 1, Accum: blas.AccumFP16,
	})
	if err != nil {
		t.Fatal(err)
	}
	overflowed := false
	for j := 0; j < n; j++ {
		if math.IsInf(float64(got[0].Best[j]), 1) {
			overflowed = true
		}
	}
	if !overflowed {
		t.Fatal("expected FP16 accumulation overflow with unscaled norm-512 features")
	}
}

func TestBatchEqualsSequential(t *testing.T) {
	// Batching is a pure throughput optimization: per-reference results
	// must be identical to one-at-a-time matching.
	rng := rand.New(rand.NewSource(5))
	d, m, n, B := 16, 20, 12, 5
	dev := newTestDevice()
	stream := dev.NewStream()

	refs := make([]*blas.Matrix, B)
	ids := make([]int, B)
	for i := range refs {
		refs[i] = rootSIFTFeatures(rng, d, m)
		ids[i] = 100 + i
	}
	qm := rootSIFTFeatures(rng, d, n)
	q, _ := NewQuery(dev, qm, gpusim.FP32, 1)

	batched, _ := NewRefBatch(dev, ids, refs, gpusim.FP32, 1, false)
	got, err := MatchBatch(stream, batched, q, Options{Algorithm: RootSIFT, Precision: gpusim.FP32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < B; i++ {
		single, _ := NewRefBatch(dev, ids[i:i+1], refs[i:i+1], gpusim.FP32, 1, false)
		want, err := MatchBatch(stream, single, q, Options{Algorithm: RootSIFT, Precision: gpusim.FP32})
		if err != nil {
			t.Fatal(err)
		}
		if got[i].RefID != ids[i] {
			t.Fatalf("batch result %d has id %d", i, got[i].RefID)
		}
		for j := 0; j < n; j++ {
			if got[i].Best[j] != want[0].Best[j] || got[i].BestIdx[j] != want[0].BestIdx[j] {
				t.Fatalf("batch/sequential mismatch at ref %d query %d", i, j)
			}
		}
		single.Free()
	}
}

func TestPhantomTimingOnly(t *testing.T) {
	dev := newTestDevice()
	stream := dev.NewStream()
	rb, err := PhantomRefBatch(dev, 1024, 768, 128, gpusim.FP16, false)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := PhantomQuery(dev, 768, 128)
	res, err := MatchBatch(stream, rb, q, Options{Algorithm: RootSIFT, Precision: gpusim.FP16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1024 || res[0].Best != nil {
		t.Fatalf("phantom results should be empty shells, got %d with data=%v", len(res), res[0].Best != nil)
	}
	elapsed := dev.Synchronize()
	// Per-image time should be near Table 3's 21.96 us.
	per := elapsed / 1024
	if per < 15 || per > 30 {
		t.Fatalf("phantom batched per-image time %.2f us, expected ~22", per)
	}
}

func TestDeviceMemoryChargedAndFreed(t *testing.T) {
	dev := newTestDevice()
	base := dev.Allocated()
	rb, err := PhantomRefBatch(dev, 10000, 768, 128, gpusim.FP16, true)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10000) * (768*128*2 + 768*4)
	if dev.Allocated()-base != want {
		t.Fatalf("allocated %d, want %d", dev.Allocated()-base, want)
	}
	// Table 1's memory column: ~2307 MB including runtime overhead.
	totalMB := float64(dev.Allocated()) / (1 << 20)
	if totalMB < 2100 || totalMB > 2500 {
		t.Fatalf("10k FP16 refs + overhead = %.0f MB, paper ~2307", totalMB)
	}
	rb.Free()
	if dev.Allocated() != base {
		t.Fatal("Free did not release memory")
	}
}

func TestRefBatchValidation(t *testing.T) {
	dev := newTestDevice()
	rng := rand.New(rand.NewSource(6))
	if _, err := NewRefBatch(dev, []int{1}, nil, gpusim.FP32, 1, true); err == nil {
		t.Fatal("want error for id/matrix count mismatch")
	}
	if _, err := NewRefBatch(dev, nil, nil, gpusim.FP32, 1, true); err == nil {
		t.Fatal("want error for empty batch")
	}
	mats := []*blas.Matrix{randomFeatures(rng, 8, 4, 1), randomFeatures(rng, 8, 5, 1)}
	if _, err := NewRefBatch(dev, []int{0, 1}, mats, gpusim.FP32, 1, true); err == nil {
		t.Fatal("want error for ragged feature counts")
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	dev := newTestDevice()
	stream := dev.NewStream()
	rng := rand.New(rand.NewSource(7))
	rb, _ := NewRefBatch(dev, []int{0}, []*blas.Matrix{randomFeatures(rng, 16, 4, 1)}, gpusim.FP32, 1, true)
	q, _ := NewQuery(dev, randomFeatures(rng, 32, 4, 1), gpusim.FP32, 1)
	if _, err := MatchBatch(stream, rb, q, Options{Algorithm: Eq1Top2}); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

func TestAlgorithmString(t *testing.T) {
	for algo, want := range map[Algorithm]string{
		Baseline: "cuda-opencv", Garcia: "cublas-garcia",
		Eq1Top2: "cublas-top2", RootSIFT: "cublas-rootsift",
	} {
		if algo.String() != want {
			t.Errorf("%d.String() = %q", algo, algo.String())
		}
	}
}

func TestPropertyTop2SelectionMatchesSortOracle(t *testing.T) {
	// The register-resident top-2 selection must agree with a full sort
	// for arbitrary inputs (including duplicates and negatives).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(30)
		cols := 1 + rng.Intn(8)
		C := blas.NewMatrix(rows, cols)
		for i := range C.Data {
			C.Data[i] = float32(rng.NormFloat64())
			if rng.Intn(10) == 0 {
				C.Data[i] = 0 // force duplicates
			}
		}
		got := selectTop2Block(7, C, 0, rows)
		for j := 0; j < cols; j++ {
			col := append([]float32(nil), C.Col(j)...)
			sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
			if got.Best[j] != col[0] || got.Second[j] != col[1] {
				return false
			}
			// BestIdx points at a minimal element.
			if C.At(int(got.BestIdx[j]), j) != col[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBlockOffsets(t *testing.T) {
	// Per-block selection over a concatenated matrix equals selection over
	// the individual blocks, with indices relative to the block.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(6)
		B := 1 + rng.Intn(4)
		C := blas.NewMatrix(B*m, 2)
		for i := range C.Data {
			C.Data[i] = rng.Float32()
		}
		for b := 0; b < B; b++ {
			whole := selectTop2Block(b, C, b*m, (b+1)*m)
			sub := C.Slice(0, C.Cols) // same matrix; compare index semantics
			_ = sub
			for j := 0; j < 2; j++ {
				idx := int(whole.BestIdx[j])
				if idx < 0 || idx >= m {
					return false
				}
				if C.At(b*m+idx, j) != whole.Best[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
