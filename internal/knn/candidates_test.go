package knn

import (
	"math"
	"math/rand"
	"testing"

	"texid/internal/blas"
	"texid/internal/gpusim"
)

// TestCandidatesBitwiseEqualFullMatch is the determinism contract of the
// pruned rerank: for every precision, the candidate-restricted match must
// produce, slot for slot, the exact bits the full match produced for those
// references — not merely close values.
func TestCandidatesBitwiseEqualFullMatch(t *testing.T) {
	for _, prec := range []gpusim.Precision{gpusim.FP32, gpusim.FP16} {
		t.Run(prec.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			d, m, n, B := 64, 48, 24, 7
			dev := newTestDevice()
			stream := dev.NewStream()

			refs := make([]*blas.Matrix, B)
			ids := make([]int, B)
			for i := range refs {
				refs[i] = rootSIFTFeatures(rng, d, m)
				ids[i] = 100 + i
			}
			rb, err := NewRefBatch(dev, ids, refs, prec, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			defer rb.Free()
			qm := rootSIFTFeatures(rng, d, n)
			q, err := NewQuery(dev, qm, prec, 1)
			if err != nil {
				t.Fatal(err)
			}
			defer q.Free()
			opts := Options{Algorithm: RootSIFT, Precision: prec, Scale: 1}

			full, err := MatchBatchScratch(stream, rb, q, opts, nil)
			if err != nil {
				t.Fatal(err)
			}

			slots := []int32{0, 2, 3, 6}
			var sc Scratch
			got, err := MatchCandidatesScratch(stream, rb, q, slots, opts, &sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(slots) {
				t.Fatalf("%d results, want %d", len(got), len(slots))
			}
			for si, slot := range slots {
				want := full[slot]
				if got[si].RefID != want.RefID {
					t.Fatalf("slot %d: ref %d, want %d", slot, got[si].RefID, want.RefID)
				}
				for j := 0; j < n; j++ {
					if math.Float32bits(got[si].Best[j]) != math.Float32bits(want.Best[j]) ||
						math.Float32bits(got[si].Second[j]) != math.Float32bits(want.Second[j]) ||
						got[si].BestIdx[j] != want.BestIdx[j] {
						t.Fatalf("slot %d query %d: (%x,%x,%d) != full (%x,%x,%d)",
							slot, j,
							math.Float32bits(got[si].Best[j]), math.Float32bits(got[si].Second[j]), got[si].BestIdx[j],
							math.Float32bits(want.Best[j]), math.Float32bits(want.Second[j]), want.BestIdx[j])
					}
				}
			}
		})
	}
}

// TestMultiQueryCandidatesBitwiseEqual pins the same contract for the
// batched-query form against MatchMultiQueryInto.
func TestMultiQueryCandidatesBitwiseEqual(t *testing.T) {
	for _, prec := range []gpusim.Precision{gpusim.FP32, gpusim.FP16} {
		t.Run(prec.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(12))
			d, m, n, B, Bq := 32, 40, 16, 6, 3
			dev := newTestDevice()
			stream := dev.NewStream()

			refs := make([]*blas.Matrix, B)
			ids := make([]int, B)
			for i := range refs {
				refs[i] = rootSIFTFeatures(rng, d, m)
				ids[i] = i
			}
			rb, err := NewRefBatch(dev, ids, refs, prec, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			defer rb.Free()
			queries := make([]*Query, Bq)
			for i := range queries {
				queries[i], err = NewQuery(dev, rootSIFTFeatures(rng, d, n), prec, 1)
				if err != nil {
					t.Fatal(err)
				}
				defer queries[i].Free()
			}
			opts := Options{Algorithm: RootSIFT, Precision: prec, Scale: 1}

			var full Scratch
			mq, err := BuildMultiQuery(queries, prec, &full)
			if err != nil {
				t.Fatal(err)
			}
			want, err := MatchMultiQueryInto(stream, rb, mq, opts, &full)
			if err != nil {
				t.Fatal(err)
			}
			// Deep-copy before the scratch is reused below.
			wantCopy := make([][]Pair2NN, Bq)
			for qi := range want {
				wantCopy[qi] = make([]Pair2NN, len(want[qi]))
				for b, p := range want[qi] {
					wantCopy[qi][b] = Pair2NN{
						RefID:   p.RefID,
						Best:    append([]float32(nil), p.Best...),
						Second:  append([]float32(nil), p.Second...),
						BestIdx: append([]int32(nil), p.BestIdx...),
					}
				}
			}

			slots := []int32{1, 4, 5}
			got, err := MatchMultiQueryCandidates(stream, rb, mq, slots, opts, &full)
			if err != nil {
				t.Fatal(err)
			}
			for qi := 0; qi < Bq; qi++ {
				for si, slot := range slots {
					g, w := got[qi][si], wantCopy[qi][slot]
					if g.RefID != w.RefID {
						t.Fatalf("query %d slot %d: ref %d, want %d", qi, slot, g.RefID, w.RefID)
					}
					for j := range g.Best {
						if math.Float32bits(g.Best[j]) != math.Float32bits(w.Best[j]) ||
							math.Float32bits(g.Second[j]) != math.Float32bits(w.Second[j]) ||
							g.BestIdx[j] != w.BestIdx[j] {
							t.Fatalf("query %d slot %d col %d: bits differ from full match", qi, slot, j)
						}
					}
				}
			}
		})
	}
}

// TestCandidatesRejectsNonRootSIFT: pruning exists for the production
// Algorithm 2 path only.
func TestCandidatesRejectsNonRootSIFT(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dev := newTestDevice()
	stream := dev.NewStream()
	rb, _ := NewRefBatch(dev, []int{0}, []*blas.Matrix{rootSIFTFeatures(rng, 16, 8)}, gpusim.FP32, 1, true)
	q, _ := NewQuery(dev, rootSIFTFeatures(rng, 16, 4), gpusim.FP32, 1)
	if _, err := MatchCandidatesScratch(stream, rb, q, []int32{0}, Options{Algorithm: Eq1Top2}, nil); err == nil {
		t.Fatal("non-RootSIFT candidate match accepted")
	}
}
