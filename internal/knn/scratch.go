package knn

import (
	"texid/internal/blas"
	"texid/internal/gpusim"
)

// Scratch holds the reusable working set of the match kernels: the distance
// matrix, the per-reference top-2 state, and the multi-query concatenation
// buffers. Threading one Scratch through MatchBatchScratch /
// MatchMultiQueryInto makes steady-state search allocation-free on the hot
// path.
//
// A Scratch is not safe for concurrent use; the engine owns one per engine
// under its mutex. Pair2NN results returned by the *Scratch variants alias
// the scratch buffers and are only valid until the next call that reuses
// it — callers must consume (score) each batch's results before issuing
// the next batch, which is exactly what the engine's incremental scoring
// loop does.
type Scratch struct {
	cbuf   []float32
	c      blas.Matrix
	best   []float32
	second []float32
	idx    []int32
	pairs  []Pair2NN
	multi  [][]Pair2NN
	catF32 blas.Matrix
	catF16 blas.HalfMatrix
	// Candidate-rerank working set: the gathered reference ids of the
	// pruned slots and the query operand's widened staging (built once per
	// batch, shared by every candidate slot's staged GEMM).
	candIDs []int
	qstage  []float32
}

// candSlots gathers the reference ids of the given batch slots into the
// reusable id buffer (or a fresh one when sc is nil).
func (sc *Scratch) candSlots(rb *RefBatch, slots []int32) []int {
	if sc == nil {
		ids := make([]int, len(slots)) //texlint:ignore hotalloc nil-scratch fallback; the engine always threads a scratch
		for i, s := range slots {
			ids[i] = rb.IDs[s]
		}
		return ids
	}
	if cap(sc.candIDs) < len(slots) {
		sc.candIDs = make([]int, len(slots))
	}
	sc.candIDs = sc.candIDs[:len(slots)]
	for i, s := range slots {
		sc.candIDs[i] = rb.IDs[s]
	}
	return sc.candIDs
}

// matrix returns a rows×cols matrix backed by the scratch buffer (or a
// fresh allocation when sc is nil). Contents are undefined; callers must
// fully overwrite it.
func (sc *Scratch) matrix(rows, cols int) *blas.Matrix {
	if sc == nil {
		return blas.NewMatrix(rows, cols) //texlint:ignore hotalloc nil-scratch fallback for the allocation-tolerant MatchBatch path; the engine always threads a scratch
	}
	need := rows * cols
	if cap(sc.cbuf) < need {
		sc.cbuf = make([]float32, need)
	}
	sc.c = blas.Matrix{Rows: rows, Cols: cols, Stride: rows, Data: sc.cbuf[:need]}
	return &sc.c
}

// grow ensures the top-2 slabs can hold cnt result rows of width n.
func (sc *Scratch) grow(cnt, n int) {
	if cap(sc.best) < cnt*n {
		sc.best = make([]float32, cnt*n)
		sc.second = make([]float32, cnt*n)
		sc.idx = make([]int32, cnt*n)
	}
	sc.best = sc.best[:cnt*n]
	sc.second = sc.second[:cnt*n]
	sc.idx = sc.idx[:cnt*n]
}

// pairSlab returns B result shells. For real matches the Best/Second/
// BestIdx slices are carved out of the scratch slabs (or freshly allocated
// when sc is nil); phantom shells carry the reference ID only.
func (sc *Scratch) pairSlab(ids []int, n int, phantom bool) []Pair2NN {
	B := len(ids)
	if sc == nil {
		return newPairSlab(ids, n, phantom)
	}
	if cap(sc.pairs) < B {
		sc.pairs = make([]Pair2NN, B)
	}
	sc.pairs = sc.pairs[:B]
	if !phantom {
		sc.grow(B, n)
	}
	for b, id := range ids {
		if phantom {
			sc.pairs[b] = Pair2NN{RefID: id}
			continue
		}
		sc.pairs[b] = Pair2NN{
			RefID:   id,
			Best:    sc.best[b*n : (b+1)*n : (b+1)*n],
			Second:  sc.second[b*n : (b+1)*n : (b+1)*n],
			BestIdx: sc.idx[b*n : (b+1)*n : (b+1)*n],
		}
	}
	return sc.pairs
}

// multiSlab returns Bq slices of B result shells each, carved from the
// scratch slabs like pairSlab.
func (sc *Scratch) multiSlab(ids []int, Bq, n int, phantom bool) [][]Pair2NN {
	B := len(ids)
	if sc == nil {
		return newMultiSlab(ids, Bq, n, phantom)
	}
	if cap(sc.multi) < Bq {
		sc.multi = make([][]Pair2NN, Bq)
	}
	sc.multi = sc.multi[:Bq]
	if cap(sc.pairs) < Bq*B {
		sc.pairs = make([]Pair2NN, Bq*B)
	}
	sc.pairs = sc.pairs[:Bq*B]
	if !phantom {
		sc.grow(Bq*B, n)
	}
	for qi := 0; qi < Bq; qi++ {
		row := sc.pairs[qi*B : (qi+1)*B : (qi+1)*B]
		for b, id := range ids {
			if phantom {
				row[b] = Pair2NN{RefID: id}
				continue
			}
			at := qi*B + b
			row[b] = Pair2NN{
				RefID:   id,
				Best:    sc.best[at*n : (at+1)*n : (at+1)*n],
				Second:  sc.second[at*n : (at+1)*n : (at+1)*n],
				BestIdx: sc.idx[at*n : (at+1)*n : (at+1)*n],
			}
		}
		sc.multi[qi] = row
	}
	return sc.multi
}

// newPairSlab is the nil-scratch fallback of pairSlab: one fresh shell
// (plus result slices) per reference.
//
//texlint:coldpath nil-scratch fallback used by MatchBatch and tests; the engine's serving loop always supplies a Scratch
func newPairSlab(ids []int, n int, phantom bool) []Pair2NN {
	pairs := make([]Pair2NN, len(ids))
	for b, id := range ids {
		pairs[b].RefID = id
		if !phantom {
			pairs[b].Best = make([]float32, n)
			pairs[b].Second = make([]float32, n)
			pairs[b].BestIdx = make([]int32, n)
		}
	}
	return pairs
}

// newMultiSlab is the nil-scratch fallback of multiSlab.
//
//texlint:coldpath nil-scratch fallback used by MatchMultiQuery and tests; the engine's serving loop always supplies a Scratch
func newMultiSlab(ids []int, Bq, n int, phantom bool) [][]Pair2NN {
	out := make([][]Pair2NN, Bq)
	for qi := range out {
		out[qi] = newPairSlab(ids, n, phantom)
	}
	return out
}

// QueryScratch recycles the buffers NewQuery stages per search: the squared
// norm vector, the binary16 conversion, and the Query shell itself. Owned
// by the engine under its mutex.
type QueryScratch struct {
	norms []float32
	half  blas.HalfMatrix
	q     Query
}

// NewQueryScratch is NewQuery staging into qs's buffers; with a nil qs it
// is identical to NewQuery. The returned Query (and its matrices) alias qs
// and are valid until the next NewQueryScratch call with the same qs.
// Like NewQuery, the binary16 conversion (and its device bytes) are only
// paid when the engine precision is FP16.
//
//texlint:hotpath
//texlint:scratchalias
func NewQueryScratch(dev *gpusim.Device, mat *blas.Matrix, prec gpusim.Precision, scale float32, qs *QueryScratch) (*Query, error) {
	if qs == nil {
		return NewQuery(dev, mat, prec, scale) //texlint:ignore hotalloc nil-scratch fallback; NewQuery allocates fresh buffers by contract
	}
	if scale == 0 {
		scale = 1
	}
	qs.norms = blas.SquaredNormsInto(mat, qs.norms)
	qs.q = Query{
		dev:   dev,
		N:     mat.Cols,
		D:     mat.Rows,
		F32:   mat,
		Norms: qs.norms,
		Scale: scale,
		bytes: queryBytes(mat.Cols, mat.Rows, prec),
	}
	if prec == gpusim.FP16 {
		qs.q.Overflow = blas.HalfFromMatrixInto(mat, scale, &qs.half)
		qs.q.F16 = &qs.half
	}
	if err := dev.Alloc(qs.q.bytes); err != nil {
		return nil, err
	}
	return &qs.q, nil
}
