package knn

import (
	"math/rand"
	"testing"

	"texid/internal/blas"
	"texid/internal/gpusim"
)

func TestMultiQueryMatchesSingleQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	d, m, n := 16, 20, 12
	dev := newTestDevice()
	stream := dev.NewStream()

	refs := []*blas.Matrix{rootSIFTFeatures(rng, d, m), rootSIFTFeatures(rng, d, m), rootSIFTFeatures(rng, d, m)}
	rb, err := NewRefBatch(dev, []int{0, 1, 2}, refs, gpusim.FP32, 1, false)
	if err != nil {
		t.Fatal(err)
	}

	qmats := []*blas.Matrix{rootSIFTFeatures(rng, d, n), rootSIFTFeatures(rng, d, n)}
	queries := make([]*Query, len(qmats))
	for i, qm := range qmats {
		queries[i], err = NewQuery(dev, qm, gpusim.FP32, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{Algorithm: RootSIFT, Precision: gpusim.FP32}

	multi, err := MatchMultiQuery(stream, rb, queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 2 || len(multi[0]) != 3 {
		t.Fatalf("result shape [%d][%d]", len(multi), len(multi[0]))
	}
	for qi, q := range queries {
		single, err := MatchBatch(stream, rb, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for b := range single {
			for j := 0; j < n; j++ {
				if multi[qi][b].Best[j] != single[b].Best[j] ||
					multi[qi][b].BestIdx[j] != single[b].BestIdx[j] ||
					multi[qi][b].Second[j] != single[b].Second[j] {
					t.Fatalf("query %d ref %d feature %d: multi/single mismatch", qi, b, j)
				}
			}
		}
	}
}

func TestMultiQueryFP16(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d, m, n := 32, 16, 8
	dev := newTestDevice()
	stream := dev.NewStream()
	refs := []*blas.Matrix{rootSIFTFeatures(rng, d, m)}
	rb, _ := NewRefBatch(dev, []int{0}, refs, gpusim.FP16, 1, false)
	q1, _ := NewQuery(dev, rootSIFTFeatures(rng, d, n), gpusim.FP16, 1)
	q2, _ := NewQuery(dev, rootSIFTFeatures(rng, d, n), gpusim.FP16, 1)
	opts := Options{Algorithm: RootSIFT, Precision: gpusim.FP16, Scale: 1}
	multi, err := MatchMultiQuery(stream, rb, []*Query{q1, q2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := MatchBatch(stream, rb, q2, opts)
	for j := 0; j < n; j++ {
		if multi[1][0].BestIdx[j] != single[0].BestIdx[j] {
			t.Fatalf("FP16 multi/single best index mismatch at feature %d", j)
		}
	}
}

func TestMultiQueryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dev := newTestDevice()
	stream := dev.NewStream()
	refs := []*blas.Matrix{rootSIFTFeatures(rng, 16, 8)}
	rb, _ := NewRefBatch(dev, []int{0}, refs, gpusim.FP32, 1, true)

	if _, err := MatchMultiQuery(stream, rb, nil, Options{Algorithm: RootSIFT}); err == nil {
		t.Fatal("empty query batch accepted")
	}
	q, _ := NewQuery(dev, rootSIFTFeatures(rng, 16, 8), gpusim.FP16, 1)
	if _, err := MatchMultiQuery(stream, rb, []*Query{q}, Options{Algorithm: Eq1Top2}); err == nil {
		t.Fatal("non-RootSIFT algorithm accepted")
	}
	ragged, _ := NewQuery(dev, rootSIFTFeatures(rng, 16, 5), gpusim.FP16, 1)
	if _, err := MatchMultiQuery(stream, rb, []*Query{q, ragged}, Options{Algorithm: RootSIFT}); err == nil {
		t.Fatal("ragged query batch accepted")
	}
}

func TestMultiQueryThroughputBeatsSequential(t *testing.T) {
	// The point of Sec. 5.3: batching queries raises GEMM data reuse, so a
	// query batch completes faster than the same queries issued one by one.
	dev := newTestDevice()
	stream := dev.NewStream()
	rb, err := PhantomRefBatch(dev, 64, 768, 128, gpusim.FP16, false)
	if err != nil {
		t.Fatal(err)
	}
	const Bq = 16
	queries := make([]*Query, Bq)
	for i := range queries {
		queries[i], err = PhantomQuery(dev, 768, 128)
		if err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{Algorithm: RootSIFT, Precision: gpusim.FP16}

	t0 := dev.Synchronize()
	if _, err := MatchMultiQuery(stream, rb, queries, opts); err != nil {
		t.Fatal(err)
	}
	batched := dev.Synchronize() - t0

	t0 = dev.Synchronize()
	for range queries {
		if _, err := MatchBatch(stream, rb, queries[0], opts); err != nil {
			t.Fatal(err)
		}
	}
	sequential := dev.Synchronize() - t0

	if batched >= sequential {
		t.Fatalf("query batching did not help: batched %.0f us vs sequential %.0f us", batched, sequential)
	}
	t.Logf("batched %.0f us vs sequential %.0f us (%.2fx)", batched, sequential, sequential/batched)
}
