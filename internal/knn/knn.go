// Package knn implements the 2-nearest-neighbors feature matching kernels
// at the heart of the texture-identification system, in all the variants
// the paper compares (Table 1):
//
//   - Baseline: the monolithic OpenCV-CUDA brute-force kernel.
//   - Garcia: the cuBLAS formulation of Garcia et al. [9] — Algorithm 1
//     with a modified insertion sort.
//   - Eq1Top2: the paper's optimized Algorithm 1 — the sort is replaced by
//     a register-resident single-pass top-2 scan (81.9% less sort time).
//   - RootSIFT: Algorithm 2 — with unit-norm RootSIFT features the
//     N_R/N_Q terms vanish and the pipeline collapses to GEMM + fused
//     top-2/sqrt, which is also the batched production path.
//
// Each variant both *executes* (computes real distances on real features)
// and *costs* (enqueues the corresponding operations on a gpusim stream),
// so accuracy experiments and timing experiments share one code path.
// Phantom blocks carry dimensions but no data, letting paper-scale timing
// sweeps run without petaflops of host arithmetic.
package knn

import (
	"fmt"

	"texid/internal/binq"
	"texid/internal/blas"
	"texid/internal/gpusim"
)

// Algorithm selects the matching kernel variant.
type Algorithm int

const (
	// Baseline is the native OpenCV-CUDA brute-force implementation.
	Baseline Algorithm = iota
	// Garcia is Algorithm 1 with the reference insertion sort [9].
	Garcia
	// Eq1Top2 is Algorithm 1 with the single-pass top-2 scan (ours).
	Eq1Top2
	// RootSIFT is Algorithm 2: unit-norm features, GEMM + fused
	// top-2/sqrt (ours, the production path).
	RootSIFT
)

func (a Algorithm) String() string {
	switch a {
	case Baseline:
		return "cuda-opencv"
	case Garcia:
		return "cublas-garcia"
	case Eq1Top2:
		return "cublas-top2"
	case RootSIFT:
		return "cublas-rootsift"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configures a match invocation.
type Options struct {
	Algorithm Algorithm
	Precision gpusim.Precision
	// Scale is the FP16 scale factor applied to features before
	// conversion (Table 2); ignored for FP32. Zero means 1.
	Scale float32
	// Accum is the FP16 GEMM accumulator mode (FP16 on P100, FP32 with
	// tensor cores).
	Accum blas.AccumMode
}

// Pair2NN is the 2-NN result of one query image against one reference
// image: for every query feature, the distance to its nearest and
// second-nearest reference feature, plus the nearest feature's index for
// geometric verification. Distances are true (unsquared) Euclidean
// distances; an overflowed FP16 distance surfaces as +Inf.
type Pair2NN struct {
	RefID   int
	Best    []float32
	Second  []float32
	BestIdx []int32
}

// RefBatch is a batch of B reference feature matrices resident in device
// memory, concatenated column-wise (Fig. 3) so one GEMM serves the whole
// batch. FP16 batches also keep the conversion overflow count.
type RefBatch struct {
	dev      *gpusim.Device
	IDs      []int
	M, D     int
	F32      *blas.Matrix     // d×(B·M); nil for FP16-only or phantom batches
	F16      *blas.HalfMatrix // nil for FP32 or phantom batches
	Norms    []float32        // squared L2 norms of the original features
	Scale    float32
	Overflow int
	bytes    int64
	freed    bool
	phantom  bool

	// codes is the batch's binary prefilter panel: one packed 128-bit code
	// per descriptor, slot i's codes at codes[i*M:(i+1)*M] (mirroring the
	// concatenated feature layout). Unlike the feature payload, the code
	// panel stays device-resident across cache demotion — at 16 bytes per
	// descriptor it is ~6% of the FP16 feature footprint, and keeping it on
	// the device is what lets the Hamming scan run without re-streaming
	// demoted batches. Nil when pruning is disabled; nil with codeBytes > 0
	// for phantom batches.
	codes      []binq.Code
	codeBytes  int64
	codesFreed bool

	// panel caches the widened float32 staging of F16 across searches, so
	// the resident reference operand is converted once per batch lifetime
	// instead of once per GEMM. It is confined by whatever synchronizes
	// access to the batch (the engine's index RWMutex); Free deliberately
	// leaves it alone — a demoted batch streamed back in reuses it — and
	// ReleasePanel returns it to the scratch pool when the batch is
	// dropped for good.
	panel blas.Panel
}

// Panel returns the batch's cached widened-operand panel for use with
// blas.HGemmTNPanel. The caller must hold the lock that guards the batch.
func (rb *RefBatch) Panel() *blas.Panel { return &rb.panel }

// ReleasePanel returns the cached widened staging to the blas scratch
// pool. Call it when the batch leaves the index permanently; a batch that
// is merely demoted from device memory keeps its panel.
func (rb *RefBatch) ReleasePanel() { rb.panel.Release() }

// Count returns the number of reference images in the batch.
func (rb *RefBatch) Count() int { return len(rb.IDs) }

// Bytes returns the logical size of the batch — the device memory it holds
// when resident, and the transfer size when it must be streamed from the
// host after demotion.
func (rb *RefBatch) Bytes() int64 { return rb.bytes }

// Phantom reports whether the batch carries timing dimensions only.
func (rb *RefBatch) Phantom() bool { return rb.phantom }

// refBatchBytes returns the device footprint of a batch: the feature
// matrix plus, for the Algorithm-1 paths, the FP32 norm vectors. RootSIFT
// batches need no norms (withNorms=false), one source of the capacity win.
func refBatchBytes(count, m, d int, prec gpusim.Precision, withNorms bool) int64 {
	b := int64(count) * int64(m) * int64(d) * int64(prec.ElemBytes())
	if withNorms {
		b += int64(count) * int64(m) * 4
	}
	return b
}

// NewRefBatch uploads reference feature matrices (each d×m with the same m)
// into device memory. ids give each matrix its stable identity. For FP16,
// features are scaled by scale before conversion.
func NewRefBatch(dev *gpusim.Device, ids []int, mats []*blas.Matrix, prec gpusim.Precision, scale float32, withNorms bool) (*RefBatch, error) {
	if len(ids) != len(mats) {
		return nil, fmt.Errorf("knn: %d ids for %d matrices", len(ids), len(mats))
	}
	if len(mats) == 0 {
		return nil, fmt.Errorf("knn: empty reference batch")
	}
	if scale == 0 {
		scale = 1
	}
	d := mats[0].Rows
	m := mats[0].Cols
	for i, mat := range mats {
		if mat.Rows != d || mat.Cols != m {
			return nil, fmt.Errorf("knn: reference %d is %dx%d, want %dx%d", i, mat.Rows, mat.Cols, d, m)
		}
	}
	concat := blas.ConcatColumns(mats...)
	rb := &RefBatch{
		dev:   dev,
		IDs:   append([]int(nil), ids...),
		M:     m,
		D:     d,
		Scale: scale,
		bytes: refBatchBytes(len(mats), m, d, prec, withNorms),
	}
	if withNorms {
		rb.Norms = blas.SquaredNorms(concat)
	}
	if prec == gpusim.FP16 {
		rb.F16, rb.Overflow = blas.HalfFromMatrix(concat, scale)
		// Widen eagerly while the batch is still private to this call:
		// enroll/compact pays the one-time conversion, searches hit a warm
		// panel from the first query on.
		rb.panel.For(rb.F16)
	} else {
		rb.F32 = concat
	}
	if err := dev.Alloc(rb.bytes); err != nil {
		return nil, err
	}
	return rb, nil
}

// PhantomRefBatch reserves device memory for a batch of the given
// dimensions without any payload, for paper-scale timing experiments.
func PhantomRefBatch(dev *gpusim.Device, count, m, d int, prec gpusim.Precision, withNorms bool) (*RefBatch, error) {
	rb := &RefBatch{
		dev:     dev,
		IDs:     make([]int, count),
		M:       m,
		D:       d,
		Scale:   1,
		bytes:   refBatchBytes(count, m, d, prec, withNorms),
		phantom: true,
	}
	for i := range rb.IDs {
		rb.IDs[i] = i
	}
	if err := dev.Alloc(rb.bytes); err != nil {
		return nil, err
	}
	return rb, nil
}

// Free releases the batch's device memory. The batch data (if any) stays in
// host memory and Bytes() keeps reporting the logical size, so a demoted
// batch can still be streamed back to the device. The binary code panel, if
// attached, deliberately survives demotion: FreeCodes releases it when the
// batch leaves the index for good.
func (rb *RefBatch) Free() {
	if !rb.freed {
		rb.dev.Free(rb.bytes)
		rb.freed = true
	}
}

// AttachCodes stores the batch's binary prefilter code panel and charges
// its device footprint (count·M codes of 16 bytes). codes may be nil for
// phantom batches, in which case only the footprint is charged. The panel
// is charged outside Bytes() because it is never demoted with the feature
// payload — the scan must always find it resident.
func (rb *RefBatch) AttachCodes(codes []binq.Code, count int) error {
	if codes != nil && len(codes) != count*rb.M {
		return fmt.Errorf("knn: %d codes for %d references of %d descriptors", len(codes), count, rb.M)
	}
	bytes := int64(count) * int64(rb.M) * binq.Bytes
	if err := rb.dev.Alloc(bytes); err != nil {
		return err
	}
	rb.codes = codes
	rb.codeBytes = bytes
	rb.codesFreed = false
	return nil
}

// Codes returns the batch's binary code panel (nil when pruning is off or
// the batch is phantom).
func (rb *RefBatch) Codes() []binq.Code { return rb.codes }

// CodeBytes returns the device footprint of the attached code panel.
func (rb *RefBatch) CodeBytes() int64 { return rb.codeBytes }

// FreeCodes releases the code panel's device memory. Call it when the
// batch leaves the index permanently; demotion must not.
func (rb *RefBatch) FreeCodes() {
	if rb.codeBytes > 0 && !rb.codesFreed {
		rb.dev.Free(rb.codeBytes)
		rb.codesFreed = true
		rb.codes = nil
	}
}

// Query is a query feature matrix staged in device memory. FP16 queries
// are staged in both precisions so one upload serves every algorithm
// variant; pure-FP32 queries skip the binary16 conversion and its device
// footprint entirely.
type Query struct {
	dev      *gpusim.Device
	N, D     int
	F32      *blas.Matrix
	F16      *blas.HalfMatrix // nil for FP32-staged queries
	Norms    []float32
	Scale    float32
	Overflow int
	bytes    int64
	phantom  bool
}

// queryBytes is the device footprint of a staged query: 4 bytes/element
// for the FP32 copy, plus 2 for the binary16 copy when the engine runs
// FP16.
func queryBytes(n, d int, prec gpusim.Precision) int64 {
	per := int64(4)
	if prec == gpusim.FP16 {
		per = 6
	}
	return int64(n) * int64(d) * per
}

// NewQuery uploads a query feature matrix (d×n), staged for the given
// engine precision: FP32 engines pay neither the HalfFromMatrix conversion
// nor the fp16 copy's device bytes; FP16 engines stage both copies so the
// same upload serves the FP32-realm variants (Baseline, norms).
func NewQuery(dev *gpusim.Device, mat *blas.Matrix, prec gpusim.Precision, scale float32) (*Query, error) {
	if scale == 0 {
		scale = 1
	}
	q := &Query{
		dev:   dev,
		N:     mat.Cols,
		D:     mat.Rows,
		F32:   mat,
		Norms: blas.SquaredNorms(mat),
		Scale: scale,
		bytes: queryBytes(mat.Cols, mat.Rows, prec),
	}
	if prec == gpusim.FP16 {
		q.F16, q.Overflow = blas.HalfFromMatrix(mat, scale)
	}
	if err := dev.Alloc(q.bytes); err != nil {
		return nil, err
	}
	return q, nil
}

// PhantomQuery reserves query dimensions without payload.
//
//texlint:coldpath phantom timing mode trades one shell allocation per query for skipping all host arithmetic; it is not the steady-state serving path
func PhantomQuery(dev *gpusim.Device, n, d int) (*Query, error) {
	q := &Query{dev: dev, N: n, D: d, Scale: 1, bytes: int64(n) * int64(d) * 6, phantom: true}
	if err := dev.Alloc(q.bytes); err != nil {
		return nil, err
	}
	return q, nil
}

// Free releases the query's device memory.
func (q *Query) Free() {
	if q.bytes > 0 {
		q.dev.Free(q.bytes)
		q.bytes = 0
	}
}

// resultBytes is the D2H payload per reference item: the 2×n distance
// sub-matrix plus the 2×n int32 index matrix (Algorithm 1 step 8).
func resultBytes(n int, prec gpusim.Precision) int64 {
	return int64(2*n*prec.ElemBytes()) + int64(2*n*4)
}

// workspaceBytes returns the per-invocation device workspace: the
// (B·m)×n distance matrix in the working precision. The engine charges
// this per stream (Table 6's "extra GPU memory" column).
func workspaceBytes(batch, m, n int, prec gpusim.Precision) int64 {
	return int64(batch) * int64(m) * int64(n) * int64(prec.ElemBytes())
}
