package knn

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/gpusim"
)

// MultiQuery is a prepared column-wise concatenation of a query batch (the
// Sec. 5.3 trade-off the paper defers): the feature matrices of B_q query
// images become one d×(B_q·n) operand, so a single GEMM of shape
// (B_r·m)×(B_q·n) serves every (reference, query) pair. Building it once and
// reusing it across every reference batch of a search avoids re-copying the
// query features per batch.
type MultiQuery struct {
	queries []*Query
	n       int // features per query (batch must be rectangular)
	phantom bool
	catF32  *blas.Matrix
	catF16  *blas.HalfMatrix
}

// BuildMultiQuery validates a query batch and stages its concatenation,
// reusing sc's concat buffers when sc is non-nil. The result aliases sc (and
// the queries' matrices) and is valid until sc's next BuildMultiQuery call.
//
//texlint:scratchalias
func BuildMultiQuery(queries []*Query, prec gpusim.Precision, sc *Scratch) (*MultiQuery, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("knn: empty query batch")
	}
	mq := &MultiQuery{queries: queries, n: queries[0].N}
	for i, q := range queries {
		if q.N != mq.n {
			return nil, fmt.Errorf("knn: ragged query batch: query %d has %d features, want %d", i, q.N, mq.n)
		}
		mq.phantom = mq.phantom || q.phantom
	}
	if mq.phantom {
		return mq, nil
	}
	if prec == gpusim.FP16 {
		qcat := make([]*blas.HalfMatrix, len(queries))
		for i, q := range queries {
			qcat[i] = q.F16
		}
		if sc == nil {
			mq.catF16 = blas.ConcatHalfColumnsInto(&blas.HalfMatrix{}, qcat...)
		} else {
			mq.catF16 = blas.ConcatHalfColumnsInto(&sc.catF16, qcat...)
		}
	} else {
		qcat := make([]*blas.Matrix, len(queries))
		for i, q := range queries {
			qcat[i] = q.F32
		}
		if sc == nil {
			mq.catF32 = blas.ConcatColumnsInto(&blas.Matrix{}, qcat...)
		} else {
			mq.catF32 = blas.ConcatColumnsInto(&sc.catF32, qcat...)
		}
	}
	return mq, nil
}

// MatchMultiQuery runs the multi-query batched 2-NN for one reference batch.
// Throughput rises with B_q (more data reuse on the reference operand), but
// every query now waits for the whole batch — the latency/QoS cost the paper
// mentions. Only the RootSIFT (Algorithm 2) path is supported, matching the
// production configuration.
//
// The result is indexed [query][reference]. Phantom inputs produce empty
// result shells (timing only).
func MatchMultiQuery(stream *gpusim.Stream, rb *RefBatch, queries []*Query, opts Options) ([][]Pair2NN, error) {
	if opts.Algorithm != RootSIFT {
		return nil, fmt.Errorf("knn: multi-query batching supports the RootSIFT path only, got %v", opts.Algorithm)
	}
	mq, err := BuildMultiQuery(queries, opts.Precision, nil)
	if err != nil {
		return nil, err
	}
	return MatchMultiQueryInto(stream, rb, mq, opts, nil)
}

// MatchMultiQueryInto is MatchMultiQuery against a prepared MultiQuery, with
// an optional reusable Scratch for the distance matrix and result slabs.
// Results alias sc (see Scratch) and must be consumed before the next call
// reusing it.
//
//texlint:hotpath
//texlint:scratchalias
//texlint:ignore streampair the engine synchronizes the device after issuing every batch
func MatchMultiQueryInto(stream *gpusim.Stream, rb *RefBatch, mq *MultiQuery, opts Options, sc *Scratch) ([][]Pair2NN, error) {
	if opts.Algorithm != RootSIFT {
		return nil, fmt.Errorf("knn: multi-query batching supports the RootSIFT path only, got %v", opts.Algorithm)
	}
	for i, q := range mq.queries {
		if q.D != rb.D {
			return nil, fmt.Errorf("knn: query %d dimension %d, refs %d", i, q.D, rb.D)
		}
	}
	B := rb.Count()
	Bq := len(mq.queries)
	m, n, d := rb.M, mq.n, rb.D
	prec := opts.Precision
	phantom := rb.phantom || mq.phantom

	results := sc.multiSlab(rb.IDs, Bq, n, phantom)
	var C *blas.Matrix
	if !phantom {
		C = sc.matrix(B*m, Bq*n)
	}

	// One GEMM over the full query concatenation.
	stream.Gemm(B*m, Bq*n, d, prec, func() {
		if phantom {
			return
		}
		if prec == gpusim.FP16 {
			blas.HGemmTNPanel(-2, rb.Panel(), rb.F16, mq.catF16, opts.Accum, C)
			inv := 1 / (rb.Scale * mq.queries[0].Scale)
			for i := range C.Data {
				C.Data[i] *= inv
			}
		} else {
			blas.GemmTN(-2, rb.F32, mq.catF32, 0, C)
		}
	})

	// Fused top-2 + sqrt(2+A): B_r·B_q·n selection threads.
	stream.Top2Scan(m, n*Bq, B, prec, func() {
		if phantom {
			return
		}
		blas.Parallel(Bq, func(qi int) {
			sub := C.SliceView(qi*n, (qi+1)*n)
			rs := results[qi]
			for b := 0; b < B; b++ {
				p := &rs[b]
				blas.Top2AddRows(&sub, nil, b*m, (b+1)*m, p.Best, p.Second, p.BestIdx)
				for j := range p.Best {
					p.Best[j] = sqrt32(2 + p.Best[j])
					p.Second[j] = sqrt32(2 + p.Second[j])
				}
			}
		})
	})

	stream.CopyD2H(int64(B)*int64(Bq)*resultBytes(n, prec), false, nil)
	stream.HostPost(B*Bq, prec, nil)
	return results, nil
}
