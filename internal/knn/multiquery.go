package knn

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/gpusim"
)

// MatchMultiQuery extends the batched 2-NN to a *query* batch (the Sec. 5.3
// trade-off the paper defers): the feature matrices of B_q query images are
// concatenated column-wise exactly like reference batching, so one GEMM of
// shape (B_r·m)×(B_q·n) serves every (reference, query) pair. Throughput
// rises with B_q (more data reuse on the reference operand), but every
// query now waits for the whole batch — the latency/QoS cost the paper
// mentions. Only the RootSIFT (Algorithm 2) path is supported, matching the
// production configuration.
//
// The result is indexed [query][reference]. Phantom inputs produce empty
// result shells (timing only).
//
//texlint:ignore streampair the engine synchronizes the device after issuing every batch
func MatchMultiQuery(stream *gpusim.Stream, rb *RefBatch, queries []*Query, opts Options) ([][]Pair2NN, error) {
	if opts.Algorithm != RootSIFT {
		return nil, fmt.Errorf("knn: multi-query batching supports the RootSIFT path only, got %v", opts.Algorithm)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("knn: empty query batch")
	}
	n := queries[0].N
	for i, q := range queries {
		if q.D != rb.D {
			return nil, fmt.Errorf("knn: query %d dimension %d, refs %d", i, q.D, rb.D)
		}
		if q.N != n {
			return nil, fmt.Errorf("knn: ragged query batch: query %d has %d features, want %d", i, q.N, n)
		}
	}
	B := rb.Count()
	Bq := len(queries)
	m, d := rb.M, rb.D
	prec := opts.Precision
	phantom := rb.phantom
	for _, q := range queries {
		phantom = phantom || q.phantom
	}

	results := make([][]Pair2NN, Bq)
	var C *blas.Matrix

	// One GEMM over the full query concatenation.
	stream.Gemm(B*m, Bq*n, d, prec, func() {
		if phantom {
			return
		}
		C = blas.NewMatrix(B*m, Bq*n)
		if prec == gpusim.FP16 {
			qcat := make([]*blas.HalfMatrix, Bq)
			for i, q := range queries {
				qcat[i] = q.F16
			}
			hq := concatHalfColumns(qcat...)
			blas.HGemmTN(-2, rb.F16, hq, opts.Accum, C)
			inv := 1 / (rb.Scale * queries[0].Scale)
			for i := range C.Data {
				C.Data[i] *= inv
			}
		} else {
			qcat := make([]*blas.Matrix, Bq)
			for i, q := range queries {
				qcat[i] = q.F32
			}
			blas.GemmTN(-2, rb.F32, blas.ConcatColumns(qcat...), 0, C)
		}
	})

	// Fused top-2 + sqrt(2+A): B_r·B_q·n selection threads.
	stream.Top2Scan(m, n*Bq, B, prec, func() {
		if C == nil {
			for qi := range results {
				shells := make([]Pair2NN, B)
				for b := 0; b < B; b++ {
					shells[b] = Pair2NN{RefID: rb.IDs[b]}
				}
				results[qi] = shells
			}
			return
		}
		for qi := 0; qi < Bq; qi++ {
			sub := C.Slice(qi*n, (qi+1)*n)
			rs := make([]Pair2NN, B)
			for b := 0; b < B; b++ {
				r := selectTop2Block(rb.IDs[b], sub, b*m, (b+1)*m)
				for j := range r.Best {
					r.Best[j] = sqrt32(2 + r.Best[j])
					r.Second[j] = sqrt32(2 + r.Second[j])
				}
				rs[b] = r
			}
			results[qi] = rs
		}
	})

	stream.CopyD2H(int64(B)*int64(Bq)*resultBytes(n, prec), false, nil)
	stream.HostPost(B*Bq, prec, nil)
	return results, nil
}

// concatHalfColumns concatenates binary16 matrices column-wise.
func concatHalfColumns(ms ...*blas.HalfMatrix) *blas.HalfMatrix {
	rows := ms[0].Rows
	total := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("knn: concat row mismatch %d != %d", m.Rows, rows))
		}
		total += m.Cols
	}
	out := blas.NewHalfMatrix(rows, total)
	at := 0
	for _, m := range ms {
		for j := 0; j < m.Cols; j++ {
			copy(out.Col(at), m.Col(j))
			at++
		}
	}
	return out
}
