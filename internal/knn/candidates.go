package knn

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/gpusim"
)

// Candidate rerank: the exact 2-NN restricted to a pruned slot subset of a
// reference batch. The Hamming prefilter (internal/binq) selects top-C
// candidate images per query; these variants run the same GEMM + fused
// top-2/sqrt pipeline as matchRootSIFT/MatchMultiQueryInto but only over
// the selected slots, producing scores bitwise identical to the full
// match's for those references:
//
//   - FP32: GemmTN's per-element value is one sequential FMA chain over
//     the two operand columns (see gemm.go), so a per-slot GemmTN over a
//     column slice of the resident operand writes the same bits as the
//     corresponding rows of the full batched GEMM.
//   - FP16: hgemmCore consumes only the widened k-stride staging, served
//     from the batch's cached Panel; a candidate slot's staging is the
//     contiguous chunk aw[slot*m*k:(slot+1)*m*k], fed through
//     blas.HGemmTNStaged with the same per-element chains.
//
// Only the RootSIFT (Algorithm 2) path is supported — pruning exists for
// the production configuration.

// rowBlockView returns rows [lo, lo+rows) of C as a strided view (no
// allocation; the value aliases C's storage).
func rowBlockView(C *blas.Matrix, lo, rows int) blas.Matrix {
	return blas.Matrix{Rows: rows, Cols: C.Cols, Stride: C.Stride, Data: C.Data[lo:]}
}

// MatchCandidatesScratch runs the exact RootSIFT 2-NN of one query against
// only the given slots (ascending indices into rb's images), enqueuing the
// gather + GEMM + top-2 pipeline on stream. Results (one Pair2NN per slot,
// in slot order) are bitwise identical to the corresponding entries of
// MatchBatchScratch and alias sc like every *Scratch variant. Phantom
// inputs produce timing-only shells.
//
//texlint:hotpath
//texlint:scratchalias
//texlint:ignore streampair the engine synchronizes the device after issuing every batch
func MatchCandidatesScratch(stream *gpusim.Stream, rb *RefBatch, q *Query, slots []int32, opts Options, sc *Scratch) ([]Pair2NN, error) {
	if opts.Algorithm != RootSIFT {
		return nil, fmt.Errorf("knn: candidate pruning supports the RootSIFT path only, got %v", opts.Algorithm)
	}
	if rb.D != q.D {
		return nil, fmt.Errorf("knn: dimension mismatch: refs d=%d, query d=%d", rb.D, q.D)
	}
	nc := len(slots)
	if nc == 0 {
		return nil, nil
	}
	m, n, d := rb.M, q.N, rb.D
	prec := opts.Precision
	phantom := rb.phantom || q.phantom
	if prec == gpusim.FP16 && !phantom && (rb.F16 == nil || q.F16 == nil) {
		return nil, fmt.Errorf("knn: FP16 candidate match on FP32-staged operands")
	}

	ids := sc.candSlots(rb, slots)
	results := sc.pairSlab(ids, n, phantom)
	var C *blas.Matrix
	if !phantom {
		C = sc.matrix(nc*m, n)
	}

	// Gather: the selected slots' feature columns stream through device
	// memory once to form the contiguous rerank operand.
	stream.Elementwise("binq/gather", 2*int64(nc)*int64(m)*int64(d)*int64(prec.ElemBytes()), nil)

	// One GEMM covering the gathered candidate operand.
	stream.Gemm(nc*m, n, d, prec, func() {
		if phantom {
			return
		}
		if prec == gpusim.FP16 {
			aw := rb.Panel().For(rb.F16)
			sc.qstage = blas.StageHalf(q.F16, sc.qstage)
			for si, slot := range slots {
				cv := rowBlockView(C, si*m, m)
				blas.HGemmTNStaged(-2, aw[int(slot)*m*d:(int(slot)+1)*m*d], sc.qstage, m, n, d, opts.Accum, &cv)
			}
			inv := 1 / (rb.Scale * q.Scale)
			for i := range C.Data {
				C.Data[i] *= inv
			}
		} else {
			for si, slot := range slots {
				av := rb.F32.SliceView(int(slot)*m, (int(slot)+1)*m)
				cv := rowBlockView(C, si*m, m)
				blas.GemmTN(-2, &av, q.F32, 0, &cv)
			}
		}
	})

	// Fused top-2 + sqrt(2+A) over the candidate blocks.
	stream.Top2Scan(m, n, nc, prec, func() {
		if phantom {
			return
		}
		blas.Parallel(nc, func(b int) {
			p := &results[b]
			blas.Top2AddRows(C, nil, b*m, (b+1)*m, p.Best, p.Second, p.BestIdx)
			for j := range p.Best {
				p.Best[j] = sqrt32(2 + p.Best[j])
				p.Second[j] = sqrt32(2 + p.Second[j])
			}
		})
	})

	stream.CopyD2H(int64(nc)*resultBytes(n, prec), false, nil)
	stream.HostPost(nc, prec, nil)
	return results, nil
}

// MatchMultiQueryCandidates is the multi-query form: the exact 2-NN of a
// prepared query batch against only the given slots (typically the union
// of the per-query candidate sets for this reference batch). The result is
// indexed [query][slot position]; each entry is bitwise identical to the
// corresponding MatchMultiQueryInto entry. Results alias sc.
//
//texlint:hotpath
//texlint:scratchalias
//texlint:ignore streampair the engine synchronizes the device after issuing every batch
func MatchMultiQueryCandidates(stream *gpusim.Stream, rb *RefBatch, mq *MultiQuery, slots []int32, opts Options, sc *Scratch) ([][]Pair2NN, error) {
	if opts.Algorithm != RootSIFT {
		return nil, fmt.Errorf("knn: candidate pruning supports the RootSIFT path only, got %v", opts.Algorithm)
	}
	for i, q := range mq.queries {
		if q.D != rb.D {
			return nil, fmt.Errorf("knn: query %d dimension %d, refs %d", i, q.D, rb.D)
		}
	}
	nc := len(slots)
	if nc == 0 {
		return nil, nil
	}
	Bq := len(mq.queries)
	m, n, d := rb.M, mq.n, rb.D
	prec := opts.Precision
	phantom := rb.phantom || mq.phantom
	if prec == gpusim.FP16 && !phantom && (rb.F16 == nil || mq.catF16 == nil) {
		return nil, fmt.Errorf("knn: FP16 candidate match on FP32-staged operands")
	}

	ids := sc.candSlots(rb, slots)
	results := sc.multiSlab(ids, Bq, n, phantom)
	var C *blas.Matrix
	if !phantom {
		C = sc.matrix(nc*m, Bq*n)
	}

	stream.Elementwise("binq/gather", 2*int64(nc)*int64(m)*int64(d)*int64(prec.ElemBytes()), nil)

	stream.Gemm(nc*m, Bq*n, d, prec, func() {
		if phantom {
			return
		}
		if prec == gpusim.FP16 {
			aw := rb.Panel().For(rb.F16)
			sc.qstage = blas.StageHalf(mq.catF16, sc.qstage)
			for si, slot := range slots {
				cv := rowBlockView(C, si*m, m)
				blas.HGemmTNStaged(-2, aw[int(slot)*m*d:(int(slot)+1)*m*d], sc.qstage, m, Bq*n, d, opts.Accum, &cv)
			}
			inv := 1 / (rb.Scale * mq.queries[0].Scale)
			for i := range C.Data {
				C.Data[i] *= inv
			}
		} else {
			for si, slot := range slots {
				av := rb.F32.SliceView(int(slot)*m, (int(slot)+1)*m)
				cv := rowBlockView(C, si*m, m)
				blas.GemmTN(-2, &av, mq.catF32, 0, &cv)
			}
		}
	})

	stream.Top2Scan(m, n*Bq, nc, prec, func() {
		if phantom {
			return
		}
		blas.Parallel(Bq, func(qi int) {
			sub := C.SliceView(qi*n, (qi+1)*n)
			rs := results[qi]
			for b := 0; b < nc; b++ {
				p := &rs[b]
				blas.Top2AddRows(&sub, nil, b*m, (b+1)*m, p.Best, p.Second, p.BestIdx)
				for j := range p.Best {
					p.Best[j] = sqrt32(2 + p.Best[j])
					p.Second[j] = sqrt32(2 + p.Second[j])
				}
			}
		})
	})

	stream.CopyD2H(int64(nc)*int64(Bq)*resultBytes(n, prec), false, nil)
	stream.HostPost(nc*Bq, prec, nil)
	return results, nil
}
