package half

import "fmt"

// Vector is a dense slice of binary16 values. Feature matrices are stored as
// Vectors in column-major order when resident in simulated device memory.
type Vector []Float16

// FromSlice converts a float32 slice to binary16, element-wise, with
// round-to-nearest-even.
func FromSlice(src []float32) Vector {
	dst := make(Vector, len(src))
	for i, f := range src {
		dst[i] = FromFloat32(f)
	}
	return dst
}

// ScaleFromSlice converts src to binary16 after multiplying every element by
// scale. The paper applies a power-of-two scale factor (2^-7 in production)
// before the FP32→FP16 conversion to keep the GEMM accumulation inside the
// binary16 range. It returns the number of elements that overflowed to ±Inf
// despite the scaling, so callers can detect an unusable scale factor.
func ScaleFromSlice(src []float32, scale float32) (Vector, int) {
	dst := make(Vector, len(src))
	overflow := 0
	for i, f := range src {
		h := FromFloat32(f * scale)
		if h.IsInf() {
			overflow++
		}
		dst[i] = h
	}
	return dst, overflow
}

// ToSlice converts the vector back to float32, element-wise.
func (v Vector) ToSlice() []float32 {
	dst := make([]float32, len(v))
	for i, h := range v {
		dst[i] = h.Float32()
	}
	return dst
}

// Bytes returns the storage size of the vector in bytes (2 per element).
func (v Vector) Bytes() int { return 2 * len(v) }

// CountInf returns the number of ±Inf elements, used to report overflow in
// distance matrices produced by FP16-accumulating GEMM.
func (v Vector) CountInf() int {
	n := 0
	for _, h := range v {
		if h.IsInf() {
			n++
		}
	}
	return n
}

// Dot computes the dot product of two equal-length binary16 vectors with
// full FP16 accumulation semantics: each product and each partial sum is
// rounded to binary16, as in pre-Volta HGEMM. It panics if lengths differ.
func Dot(a, b Vector) Float16 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("half: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var acc Float16 // +0
	for i := range a {
		acc = FMA(a[i], b[i], acc)
	}
	return acc
}

// PowerOfTwoScale returns 2^exp as a float32. Table 2 sweeps scale factors
// 2^0 down to 2^-16; powers of two are exact in both binary16 and binary32,
// so scaling introduces no rounding of its own.
func PowerOfTwoScale(exp int) float32 {
	s := float32(1)
	for ; exp > 0; exp-- {
		s *= 2
	}
	for ; exp < 0; exp++ {
		s *= 0.5
	}
	return s
}
