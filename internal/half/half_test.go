package half

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Float16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},
		{-65504, 0xFBFF},
		{5.9604644775390625e-08, 0x0001}, // smallest subnormal 2^-24
		{6.103515625e-05, 0x0400},        // smallest normal 2^-14
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if !c.bits.IsNaN() {
			if back := c.bits.Float32(); back != c.f {
				t.Errorf("Float16(%#04x).Float32() = %g, want %g", c.bits, back, c.f)
			}
		}
	}
}

func TestOverflowToInf(t *testing.T) {
	for _, f := range []float32{65520, 70000, 1e6, 1e30} {
		h := FromFloat32(f)
		if h != PositiveInfinity {
			t.Errorf("FromFloat32(%g) = %#04x, want +Inf", f, h)
		}
		if h = FromFloat32(-f); h != NegativeInfinity {
			t.Errorf("FromFloat32(%g) = %#04x, want -Inf", -f, h)
		}
	}
	// 65504 is the max finite value; 65519.996 rounds to 65504, 65520 to Inf.
	if h := FromFloat32(65519); h != MaxValue {
		t.Errorf("FromFloat32(65519) = %#04x, want MaxValue (round down)", h)
	}
}

func TestNaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("FromFloat32(NaN) = %#04x, not a NaN", h)
	}
	if !math.IsNaN(float64(h.Float32())) {
		t.Fatalf("NaN did not round-trip")
	}
	if h.IsFinite() || h.IsInf() {
		t.Fatalf("NaN misclassified: IsFinite=%v IsInf=%v", h.IsFinite(), h.IsInf())
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and the next representable
	// binary16 value (1 + 2^-10); RNE must round to the even fraction (1).
	f := float32(1) + float32(1)/2048
	if got := FromFloat32(f); got != 0x3C00 {
		t.Errorf("halfway 1+2^-11 = %#04x, want 0x3C00 (ties to even)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even is 1+2^-9.
	f = float32(1) + 3*float32(1)/2048
	if got := FromFloat32(f); got != 0x3C02 {
		t.Errorf("halfway 1+3*2^-11 = %#04x, want 0x3C02 (ties to even)", got)
	}
	// Just above halfway must round up.
	f = float32(1) + float32(1)/2048 + float32(1)/(1<<20)
	if got := FromFloat32(f); got != 0x3C01 {
		t.Errorf("above halfway = %#04x, want 0x3C01", got)
	}
}

func TestSubnormals(t *testing.T) {
	// All subnormal bit patterns must round-trip exactly.
	for bits := Float16(1); bits < 0x0400; bits++ {
		f := bits.Float32()
		if got := FromFloat32(f); got != bits {
			t.Fatalf("subnormal %#04x round-trip = %#04x", bits, got)
		}
	}
}

func TestRoundTripAllFinite(t *testing.T) {
	// Every finite binary16 value converts to float32 and back unchanged.
	for i := 0; i < 1<<16; i++ {
		h := Float16(i)
		if !h.IsFinite() {
			continue
		}
		if got := FromFloat32(h.Float32()); got != h {
			t.Fatalf("round-trip %#04x -> %g -> %#04x", h, h.Float32(), got)
		}
	}
}

func TestPropertyConversionMonotonic(t *testing.T) {
	// For finite positive floats a <= b, conversion preserves order
	// (weakly). Property-based with random pairs.
	f := func(x, y float32) bool {
		a, b := float32(math.Abs(float64(x))), float32(math.Abs(float64(y)))
		if a > b {
			a, b = b, a
		}
		ha, hb := FromFloat32(a), FromFloat32(b)
		return ha.Float32() <= hb.Float32()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRoundingError(t *testing.T) {
	// Relative rounding error of a single conversion is at most 2^-11
	// for values in the normal range.
	f := func(x float32) bool {
		if x != x || math.IsInf(float64(x), 0) {
			return true
		}
		ax := math.Abs(float64(x))
		if ax < 6.2e-05 || ax > 65000 {
			return true // outside normal range
		}
		h := FromFloat32(x)
		rel := math.Abs(float64(h.Float32())-float64(x)) / ax
		return rel <= 1.0/2048
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestNeg(t *testing.T) {
	for _, f := range []float32{0, 1, -3.5, 65504, 0.0001} {
		want := -FromFloat32(f).Float32()
		if got := FromFloat32(f).Neg().Float32(); got != want {
			t.Errorf("Neg(%g) = %g, want %g", f, got, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	if got := Add(FromFloat32(1.5), FromFloat32(2.25)).Float32(); got != 3.75 {
		t.Errorf("1.5+2.25 = %g", got)
	}
	if got := Mul(FromFloat32(3), FromFloat32(0.5)).Float32(); got != 1.5 {
		t.Errorf("3*0.5 = %g", got)
	}
	// FP16 addition absorbs small addends: 2048 + 1 == 2048 in binary16
	// (ulp of 2048 is 2).
	if got := Add(FromFloat32(2048), FromFloat32(1)).Float32(); got != 2048 {
		t.Errorf("2048+1 = %g, want 2048 (absorption)", got)
	}
	// Accumulation overflow: max + max = +Inf.
	if got := Add(MaxValue, MaxValue); got != PositiveInfinity {
		t.Errorf("max+max = %#04x, want +Inf", got)
	}
}

func TestFMAMatchesSeparateOps(t *testing.T) {
	f := func(a, b, c float32) bool {
		clamp := func(x float32) Float16 {
			if math.Abs(float64(x)) > 100 {
				x = float32(math.Mod(float64(x), 100))
			}
			return FromFloat32(x)
		}
		ha, hb, hc := clamp(a), clamp(b), clamp(c)
		want := Add(Mul(ha, hb), hc)
		return FMA(ha, hb, hc) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDotAccumulationOverflow(t *testing.T) {
	// A dot product of two 128-dim vectors with entries 512/sqrt(128) has
	// true value 512*512 = 262144 > 65504, so FP16 accumulation must
	// overflow. This is exactly the SIFT norm-512 overflow from Table 2.
	d := 128
	v := make(Vector, d)
	x := float32(512) / float32(math.Sqrt(float64(d)))
	for i := range v {
		v[i] = FromFloat32(x)
	}
	if got := Dot(v, v); got != PositiveInfinity {
		t.Errorf("norm-512 self dot = %v, want +Inf", got.Float32())
	}
	// Scaling both vectors by 2^-2 keeps the dot at 262144/16 = 16384,
	// comfortably finite.
	s := PowerOfTwoScale(-2)
	w := make(Vector, d)
	for i := range w {
		w[i] = FromFloat32(x * s)
	}
	got := Dot(w, w).Float32()
	if got < 16000 || got > 16700 {
		t.Errorf("scaled self dot = %g, want ~16384", got)
	}
}

func TestScaleFromSlice(t *testing.T) {
	src := []float32{100000, 1, -2, 70000}
	v, overflow := ScaleFromSlice(src, 1)
	if overflow != 2 {
		t.Errorf("overflow = %d, want 2", overflow)
	}
	if v.CountInf() != 2 {
		t.Errorf("CountInf = %d, want 2", v.CountInf())
	}
	v, overflow = ScaleFromSlice(src, 0.25)
	if overflow != 0 {
		t.Errorf("scaled overflow = %d, want 0", overflow)
	}
	if got := v.ToSlice()[1]; got != 0.25 {
		t.Errorf("scaled element = %g, want 0.25", got)
	}
}

func TestPowerOfTwoScale(t *testing.T) {
	cases := map[int]float32{0: 1, 1: 2, 3: 8, -1: 0.5, -7: 0.0078125, -16: 1.52587890625e-05}
	for exp, want := range cases {
		if got := PowerOfTwoScale(exp); got != want {
			t.Errorf("PowerOfTwoScale(%d) = %g, want %g", exp, got, want)
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	src := []float32{0, 1, -1, 0.5, 1024, -65504}
	v := FromSlice(src)
	if v.Bytes() != 2*len(src) {
		t.Errorf("Bytes = %d", v.Bytes())
	}
	for i, f := range v.ToSlice() {
		if f != src[i] {
			t.Errorf("element %d: %g != %g", i, f, src[i])
		}
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	var sink Float16
	for i := 0; i < b.N; i++ {
		sink = FromFloat32(float32(i) * 0.001)
	}
	_ = sink
}

func BenchmarkToFloat32(b *testing.B) {
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = Float16(i & 0x7BFF).Float32()
	}
	_ = sink
}

func TestRoundMatchesExactConversion(t *testing.T) {
	// The fast Round path must agree bit-for-bit with the exact
	// FromFloat32 -> Float32 composition for every interesting value.
	check := func(f float32) {
		t.Helper()
		want := FromFloat32(f).Float32()
		got := Round(f)
		wb := math.Float32bits(want)
		gb := math.Float32bits(got)
		if wb != gb && !(math.IsNaN(float64(want)) && math.IsNaN(float64(got))) {
			t.Fatalf("Round(%g) = %g (%#08x), want %g (%#08x)", f, got, gb, want, wb)
		}
	}
	// Every binary16 boundary: all 65536 half values and their midpoints.
	for i := 0; i < 1<<16; i++ {
		h := Float16(i)
		if h.IsNaN() {
			continue
		}
		f := h.Float32()
		check(f)
		if h.IsFinite() {
			next := Float16(i + 1)
			if next.IsFinite() && (h&0x8000) == (next&0x8000) {
				mid := (float64(f) + float64(next.Float32())) / 2
				check(float32(mid))
				check(float32(mid) * (1 + 1e-7))
			}
		}
	}
	// Overflow boundary cases.
	for _, f := range []float32{65504, 65519, 65520, 65536, 1e10, -65520, -1e10} {
		check(f)
	}
	// Random sweep.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		f := math.Float32frombits(rng.Uint32())
		if f != f {
			continue
		}
		check(f)
	}
}

func BenchmarkRound(b *testing.B) {
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = Round(float32(i)*0.001 + sink*1e-9)
	}
	_ = sink
}
