package half

import (
	"math"
	"testing"
)

// TestDecodeTableExhaustive pins every one of the 65,536 decode-table
// entries to the scalar reference decode, bit for bit (NaNs included).
func TestDecodeTableExhaustive(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := Float16(i)
		got := math.Float32bits(h.Float32())
		want := math.Float32bits(float32Scalar(h))
		if got != want {
			t.Fatalf("decTable[%#04x] = %#08x, scalar decode = %#08x", i, got, want)
		}
	}
}

// checkEncode asserts the table-driven FromFloat32 matches the scalar
// reference on the float32 with bit pattern b.
func checkEncode(t *testing.T, b uint32) {
	t.Helper()
	f := math.Float32frombits(b)
	got := FromFloat32(f)
	want := fromFloat32Scalar(f)
	if got != want {
		t.Fatalf("FromFloat32(%#08x = %g) = %#04x, scalar = %#04x", b, f, got, want)
	}
}

// TestEncodeRoundTripExhaustive converts every binary16 bit pattern to
// float32 and back. Finite halves and infinities must round-trip to the
// identical bit pattern; NaNs must canonicalize exactly as the scalar
// encode does (quiet NaN sign|0x7E00).
func TestEncodeRoundTripExhaustive(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := Float16(i)
		f := h.Float32()
		got := FromFloat32(f)
		want := fromFloat32Scalar(f)
		if got != want {
			t.Fatalf("round-trip %#04x: FromFloat32 = %#04x, scalar = %#04x", i, got, want)
		}
		if !h.IsNaN() && got != h {
			t.Fatalf("half %#04x does not round-trip: got %#04x", i, got)
		}
		if h.IsNaN() && got != h&0x8000|0x7E00 {
			t.Fatalf("NaN %#04x not canonicalized: got %#04x", i, got)
		}
	}
}

// TestEncodeTieCasesEveryExponent builds exact RNE ties at every float32
// exponent that can reach the encoder: for each representable half
// significand at each exponent, the float32 exactly halfway to the next
// half must round to even, and the values one ULP either side of the tie
// must round toward themselves. All three are checked against the scalar
// reference at every exponent class (normal, subnormal, overflow edge).
func TestEncodeTieCasesEveryExponent(t *testing.T) {
	for exp := uint32(1); exp <= 254; exp++ {
		for _, sign := range []uint32{0, 0x80000000} {
			// The tie pattern depends on how many significand bits the
			// half keeps at this exponent; probe the same discarded-bit
			// boundary the encoder's shift tables see.
			shift := uint32(encShift[(sign|exp<<23)>>23])
			if shift >= 24 {
				shift = 23 // everything is discarded; probe the top bit
			}
			half := uint32(1) << (shift - 1)
			for _, frac := range []uint32{0, 1 << shift, 2 << shift, 0x7FFFFF &^ (1<<shift - 1)} {
				base := sign | exp<<23 | frac&0x7FFFFF
				checkEncode(t, base|half)   // exact tie: round to even
				checkEncode(t, base|half-1) // just below: round down
				checkEncode(t, base|half+1) // just above: round up
			}
		}
	}
}

// TestEncodeBoundaries spot-checks the named boundary values where the
// encode tables switch class: subnormal/normal, overflow, zero underflow,
// and the Inf/NaN escape.
func TestEncodeBoundaries(t *testing.T) {
	cases := []struct {
		name string
		bits uint32
	}{
		{"+0", 0x00000000},
		{"-0", 0x80000000},
		{"smallest f32 subnormal", 0x00000001},
		{"largest f32 subnormal", 0x007FFFFF},
		{"smallest f32 normal", 0x00800000},
		{"below half-subnormal threshold", math.Float32bits(float32(1) / (1 << 26))},
		{"half of smallest half subnormal (tie to zero)", 0x33000000},
		{"just above tie to zero", 0x33000001},
		{"smallest half subnormal", 0x33800000},
		{"largest half subnormal", math.Float32bits(0x03FF * float32(1) / (1 << 24))},
		{"subnormal rounding up to smallest normal", 0x387FFFFF},
		{"smallest half normal", 0x38800000},
		{"one", 0x3F800000},
		{"one plus tie", 0x3F800800},
		{"one plus tie + ulp", 0x3F800801},
		{"largest half normal 65504", 0x477FE000},
		{"65504 + below-tie", 0x477FEFFF},
		{"65504 + tie (rounds to Inf)", 0x477FF000},
		{"65520 exactly (tie to Inf)", 0x477FF000},
		{"65536", 0x47800000},
		{"max float32", 0x7F7FFFFF},
		{"+Inf", 0x7F800000},
		{"-Inf", 0xFF800000},
		{"quiet NaN", 0x7FC00000},
		{"signaling-pattern NaN", 0x7F800001},
		{"negative NaN with payload", 0xFFC01234},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkEncode(t, c.bits) })
	}
	// Pin the semantics, not just the equivalence, for the two values the
	// paper's overflow study leans on.
	if got := FromFloat32(65504); got != MaxValue {
		t.Fatalf("FromFloat32(65504) = %#04x, want MaxValue", got)
	}
	if got := FromFloat32(65520); got != PositiveInfinity {
		t.Fatalf("FromFloat32(65520) = %#04x, want +Inf (RNE tie at the overflow boundary)", got)
	}
}

// TestEncodeAgainstScalar sweeps a large deterministic sample of the full
// float32 space (every exponent × varied significands, plus an LCG sweep)
// against the scalar reference.
func TestEncodeAgainstScalar(t *testing.T) {
	for exp := uint32(0); exp <= 255; exp++ {
		for _, frac := range []uint32{
			0, 1, 0x1000, 0x1FFF, 0x2000, 0x2001, 0x3FFF,
			0x400000, 0x5A5A5A, 0x7FF000, 0x7FFFFF,
		} {
			checkEncode(t, exp<<23|frac)
			checkEncode(t, 0x80000000|exp<<23|frac)
		}
	}
	// Deterministic LCG sweep across the whole uint32 space.
	x := uint32(0x12345678)
	for i := 0; i < 4_000_000; i++ {
		x = x*1664525 + 1013904223
		checkEncode(t, x)
	}
}
