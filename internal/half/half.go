// Package half implements IEEE 754 binary16 (half-precision) floating point.
//
// The texture-identification engine stores reference feature matrices in
// half precision to double the effective cache capacity and exploit the
// simulated GPU's FP16 arithmetic paths. The paper's Table 2 studies how a
// scale factor applied before the FP32→FP16 conversion trades overflow
// against compression error; this package provides the exact conversion and
// arithmetic semantics needed to reproduce that study, including
// round-to-nearest-even and overflow to ±Inf (pre-Volta HGEMM accumulates in
// FP16, so overflow is observable in the distance matrix).
package half

import "math"

// Float16 is an IEEE 754 binary16 value stored in its raw bit pattern:
// 1 sign bit, 5 exponent bits (bias 15), 10 fraction bits.
type Float16 uint16

const (
	// PositiveInfinity and NegativeInfinity are the binary16 infinities.
	PositiveInfinity Float16 = 0x7C00
	NegativeInfinity Float16 = 0xFC00

	// MaxValue is the largest finite binary16 value, 65504.
	MaxValue Float16 = 0x7BFF
	// SmallestNormal is the smallest positive normal value, 2^-14.
	SmallestNormal Float16 = 0x0400
	// SmallestSubnormal is the smallest positive subnormal value, 2^-24.
	SmallestSubnormal Float16 = 0x0001
)

// Max is the largest finite value representable in binary16, as a float32.
const Max float32 = 65504

// FromBits reinterprets a raw binary16 bit pattern as a Float16. It is
// the only sanctioned way to materialize a Float16 from integer bits
// outside this package (serialization round-trips); converting values
// must go through FromFloat32, which rounds.
func FromBits(b uint16) Float16 { return Float16(b) }

// Bits returns the raw binary16 bit pattern, for serialization.
func (f Float16) Bits() uint16 { return uint16(f) }

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even,
// the rounding mode used by CUDA's __float2half_rn and by cuBLAS HGEMM.
// Values whose magnitude exceeds 65504 after rounding become ±Inf.
//
// The conversion is table-driven (see table.go): the 9-bit sign+exponent
// field indexes base/shift tables and the RNE increment is a branch-free
// carry, so the only branch left is the Inf/NaN escape.
// TestEncodeAgainstScalar pins it bit-for-bit to fromFloat32Scalar.
func FromFloat32(f float32) Float16 {
	b := math.Float32bits(f)
	if b&0x7F800000 == 0x7F800000 { // Inf or NaN
		sign := uint16(b>>16) & 0x8000
		if b&0x7FFFFF != 0 {
			// NaN: keep a quiet NaN with some payload.
			return Float16(sign | 0x7E00)
		}
		return Float16(sign | 0x7C00)
	}
	i := b >> 23 // 9 bits: sign + biased float32 exponent
	sig := b&0x7FFFFF | 0x800000
	shift := encShift[i]
	h := encBase[i] + uint16(sig>>shift)
	// Branch-free round-to-nearest-even: the discarded bits plus the
	// result's own parity carry a 1 out of bit shift-1 exactly when RNE
	// rounds up (rem > half, or rem == half with an odd significand).
	rem := sig & (uint32(1)<<shift - 1)
	h += uint16((rem + uint32(1)<<(shift-1) - 1 + uint32(h&1)) >> shift)
	return Float16(h)
}

// fromFloat32Scalar is the branchy reference conversion the encode tables
// are verified against (exhaustively, in table_test.go). It is kept
// bit-for-bit as originally shipped; do not "optimize" it.
func fromFloat32Scalar(f float32) Float16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xFF
	frac := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if frac != 0 {
			// NaN: keep a quiet NaN with some payload.
			return Float16(sign | 0x7E00)
		}
		return Float16(sign | 0x7C00)
	case exp == 0 && frac == 0: // signed zero
		return Float16(sign)
	}

	// Unbiased exponent of the float32 value.
	e := exp - 127

	if e > 15 {
		// Too large for binary16 even before rounding.
		return Float16(sign | 0x7C00)
	}

	if e >= -14 {
		// Normal binary16 range. Keep 10 fraction bits, round the rest.
		he := uint16(e+15) << 10
		hf := uint16(frac >> 13)
		// Round to nearest even on the 13 discarded bits.
		rem := frac & 0x1FFF
		half := uint32(0x1000)
		if rem > half || (rem == half && hf&1 == 1) {
			hf++
			if hf == 0x400 { // fraction overflow: bump exponent
				hf = 0
				he += 1 << 10
				if he >= 0x7C00 {
					return Float16(sign | 0x7C00)
				}
			}
		}
		return Float16(sign | he | hf)
	}

	if e < -25 {
		// Rounds to zero even as a subnormal.
		return Float16(sign)
	}

	// Subnormal binary16: implicit leading 1 must be made explicit and the
	// whole significand shifted right.
	sig := frac | 0x800000 // 24-bit significand with explicit leading 1
	shift := uint32(-e - 14 + 13)
	hf := uint16(sig >> shift)
	rem := sig & ((1 << shift) - 1)
	half := uint32(1) << (shift - 1)
	if rem > half || (rem == half && hf&1 == 1) {
		hf++
		// A subnormal rounding up into 0x400 becomes the smallest normal,
		// which the bit pattern already encodes correctly.
	}
	return Float16(sign | hf)
}

// Float32 converts a binary16 value to float32 exactly (the conversion is
// always lossless in this direction). It is a single load from the 65,536
// entry decode table (table.go), built at init from float32Scalar and
// pinned to it exhaustively by TestDecodeTableExhaustive.
func (h Float16) Float32() float32 { return decTable[h] }

// float32Scalar is the branchy reference decode used to build the table
// and to verify it. Kept bit-for-bit as originally shipped.
func float32Scalar(h Float16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	frac := uint32(h & 0x3FF)

	switch {
	case exp == 0x1F: // Inf or NaN
		if frac != 0 {
			return math.Float32frombits(sign | 0x7FC00000 | frac<<13)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= 0x3FF
		return math.Float32frombits(sign | e<<23 | frac<<13)
	}
	return math.Float32frombits(sign | (exp+127-15)<<23 | frac<<13)
}

// IsInf reports whether h is +Inf or -Inf.
func (h Float16) IsInf() bool { return h&0x7FFF == 0x7C00 }

// IsNaN reports whether h is a NaN.
func (h Float16) IsNaN() bool { return h&0x7C00 == 0x7C00 && h&0x3FF != 0 }

// IsFinite reports whether h is neither Inf nor NaN.
func (h Float16) IsFinite() bool { return h&0x7C00 != 0x7C00 }

// Neg returns -h.
func (h Float16) Neg() Float16 { return h ^ 0x8000 }

// Round rounds a float32 through binary16 and back — how every
// intermediate value behaves inside an FP16-accumulating GEMM. It is the
// hot operation of the functional FP16 experiments, so the normal range
// takes a branch-light bit-manipulation path: rounding a float32 to a
// 10-bit mantissa is an add-and-mask (with the RNE tie bit taken from bit
// 13), and a mantissa carry propagates into the exponent for free. Values
// that are subnormal in binary16 (|f| < 2^-14), zero, Inf or NaN take the
// exact slow path; results that round to 2^16 or beyond overflow to ±Inf.
func Round(f float32) float32 {
	b := math.Float32bits(f)
	exp := (b >> 23) & 0xFF
	if exp-113 >= 142 { // binary16-subnormal magnitude, zero, Inf, or NaN
		return roundSlow(f)
	}
	r := (b + 0xFFF + ((b >> 13) & 1)) &^ 0x1FFF
	if r&0x7FFFFFFF >= 0x47800000 { // |rounded| >= 65536: overflow
		return math.Float32frombits(b&0x80000000 | 0x7F800000)
	}
	return math.Float32frombits(r)
}

// roundSlow handles the values outside Round's fast range exactly.
func roundSlow(f float32) float32 { return FromFloat32(f).Float32() }

// Add returns a+b computed in binary16 (operands are treated as exact,
// the sum is rounded to binary16).
func Add(a, b Float16) Float16 { return FromFloat32(a.Float32() + b.Float32()) }

// Mul returns a*b rounded to binary16.
func Mul(a, b Float16) Float16 { return FromFloat32(a.Float32() * b.Float32()) }

// FMA returns a*b+c with the product and the sum each rounded to binary16,
// matching pre-Volta HGEMM accumulation (no wider accumulator).
func FMA(a, b, c Float16) Float16 {
	p := FromFloat32(a.Float32() * b.Float32())
	return Add(p, c)
}
