package half

// Conversion tables for the fast binary16 paths.
//
// Decode (half → float32) is a straight 65,536-entry float32 table: 256 KiB,
// small enough to live in L2 next to the operand panels it decodes, and the
// only way to widen a half in one data-dependent load with zero branches.
// The table is filled at init from float32Scalar, the branchy reference
// decode, and TestDecodeTableExhaustive re-verifies every entry against it.
//
// Encode (float32 → half) cannot table the full 32-bit input, but all of
// its branch structure depends only on the 9-bit sign+exponent field:
//
//   - encShift[i] is how far the 24-bit explicit significand (frac|0x800000)
//     shifts right to land in the half's significand field;
//   - encBase[i] is the sign and exponent skeleton the shifted significand
//     is ADDED to (not or'ed): for normal results the explicit leading bit
//     arrives as +0x400 and carries into the exponent field, and a
//     round-up out of a full significand bumps the exponent the same way,
//     so subnormal→normal and normal→Inf promotion need no branches.
//
// Exponent classes (e = biased float32 exponent, i = sign<<8 | e):
//
//   e ≥ 143          overflow: base = ±Inf, shift 25 discards everything
//                    (a 24-bit significand can never carry out of bit 24).
//   113 ≤ e ≤ 142    normal halves: shift 13, base exponent e-113 so the
//                    explicit bit's +0x400 lands the true exponent e-112.
//   102 ≤ e ≤ 112    subnormal halves: shift 126-e, zero base exponent.
//   e ≤ 101          rounds to signed zero even as a subnormal: shift 25.
//
// e = 255 (Inf/NaN) never reaches the tables — FromFloat32 branches first.
var (
	decTable [1 << 16]float32
	encBase  [512]uint16
	encShift [512]uint8
)

func init() {
	for i := range decTable {
		decTable[i] = float32Scalar(Float16(i))
	}
	for i := range encBase {
		sign := uint16(i>>8) << 15
		e := i & 0xFF
		switch {
		case e >= 143:
			encBase[i] = sign | 0x7C00
			encShift[i] = 25
		case e >= 113:
			encBase[i] = sign | uint16(e-113)<<10
			encShift[i] = 13
		case e >= 102:
			encBase[i] = sign
			encShift[i] = uint8(126 - e)
		default:
			encBase[i] = sign
			encShift[i] = 25
		}
	}
}
