package kvstore

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadCommand throws arbitrary bytes at the server-side command parser.
// The invariants: never panic, never allocate proportionally to a hostile
// length prefix (the chunked readBlob path), and a successful parse yields
// at least the command word.
func FuzzReadCommand(f *testing.F) {
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$0\r\n\r\n"))
	f.Add([]byte("PING\r\n"))                      // inline form
	f.Add([]byte("SET key value\r\n"))             // inline with args
	f.Add([]byte("*1\r\n$-1\r\n"))                 // null bulk inside a command
	f.Add([]byte("*1048577\r\n"))                  // element count over the cap
	f.Add([]byte("*1\r\n$536870913\r\n"))          // bulk length over the cap
	f.Add([]byte("*1\r\n$536870912\r\nhi\r\n"))    // huge claimed length, tiny payload
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$3\r\nab"))   // truncated payload
	f.Add([]byte("*1\r\n$2\r\nabXY"))              // missing CRLF terminator
	f.Add([]byte("\r\n"))                          // empty line
	f.Add([]byte("*-1\r\n"))                       // negative count
	f.Add([]byte("*1\r\n$999999999999999999\r\n")) // length prefix overflow

	f.Fuzz(func(t *testing.T, data []byte) {
		args, err := readCommand(bufio.NewReader(bytes.NewReader(data)))
		if err == nil && len(args) == 0 {
			t.Fatal("parse succeeded with zero arguments")
		}
	})
}

// FuzzReadReply throws arbitrary bytes at the client-side reply parser
// (hostile or corrupted server). Invariants: no panic, no stack exhaustion
// from nested arrays, no allocation driven by unparsed length prefixes.
func FuzzReadReply(f *testing.F) {
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte("-ERR boom\r\n"))
	f.Add([]byte(":42\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("$-1\r\n"))
	f.Add([]byte("*2\r\n$1\r\na\r\n:7\r\n"))
	f.Add([]byte("*1\r\n*1\r\n*1\r\n:0\r\n"))    // nesting
	f.Add(bytes.Repeat([]byte("*1\r\n"), 64))    // nesting past the depth cap
	f.Add([]byte("$536870912\r\nx\r\n"))         // huge claimed bulk, tiny payload
	f.Add([]byte("*1048577\r\n"))                // array count over the cap
	f.Add([]byte(":notanumber\r\n"))             // bad integer
	f.Add([]byte("$3\r\nabcXY"))                 // missing CRLF
	f.Add([]byte("?what\r\n"))                   // unknown type byte

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := readReply(bufio.NewReader(bytes.NewReader(data)))
		if err == nil {
			switch rep.kind {
			case '+', '-', ':', '$', '*':
			default:
				t.Fatalf("parse succeeded with bogus kind %q", rep.kind)
			}
		}
	})
}
