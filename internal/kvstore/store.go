// Package kvstore is a minimal Redis-compatible in-memory key-value store:
// the metadata service of the distributed search system (Fig. 6 runs one
// Redis container; this package is the stdlib substitute). It speaks a
// subset of RESP (REdis Serialization Protocol) over TCP — enough for the
// system's needs: string keys holding serialized feature records, hashes
// for per-shard metadata, and housekeeping commands.
//
// Supported commands: PING, ECHO, SET, GET, SETNX, MGET, INCR, DEL,
// EXISTS, KEYS, DBSIZE, FLUSHALL, HSET, HGET, HDEL, HLEN, HKEYS.
package kvstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store is the in-memory database. It is safe for concurrent use and can
// be used directly (embedded) or served over TCP.
type Store struct {
	mu sync.RWMutex
	//texlint:guards mu
	strings map[string][]byte
	//texlint:guards mu
	hashes map[string]map[string][]byte
	aof    *aofLog // nil for purely in-memory stores
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		strings: make(map[string][]byte),
		hashes:  make(map[string]map[string][]byte),
	}
}

// Set stores value under key, replacing any previous value (and removing a
// hash of the same name, as Redis does).
func (s *Store) Set(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.hashes, key)
	s.strings[key] = append([]byte(nil), value...)
	s.log([]byte("SET"), []byte(key), value)
}

// Get returns the value under key, with a presence flag.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.strings[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// SetNX stores value under key only when the key is absent, reporting
// whether it was stored (Redis SETNX, used for shard leader election and
// idempotent enrollment).
func (s *Store) SetNX(key string, value []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.strings[key]; ok {
		return false
	}
	if _, ok := s.hashes[key]; ok {
		return false
	}
	s.strings[key] = append([]byte(nil), value...)
	s.log([]byte("SET"), []byte(key), value)
	return true
}

// MGet fetches several keys at once; absent keys yield nil entries.
func (s *Store) MGet(keys ...string) [][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]byte, len(keys))
	for i, k := range keys {
		if v, ok := s.strings[k]; ok {
			out[i] = append([]byte(nil), v...)
		}
	}
	return out
}

// Incr atomically increments the integer stored at key (initializing a
// missing key to 0), returning the new value; non-integer values error.
// The coordinator uses it for monotonically increasing texture ids.
func (s *Store) Incr(key string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.strings[key]
	n := int64(0)
	if len(v) > 0 {
		var err error
		n, err = strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("kvstore: value at %q is not an integer", key)
		}
	}
	n++
	delete(s.hashes, key)
	s.strings[key] = []byte(strconv.FormatInt(n, 10))
	s.log([]byte("SET"), []byte(key), s.strings[key])
	return n, nil
}

// Del removes keys (string or hash), returning how many existed.
func (s *Store) Del(keys ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if _, ok := s.strings[k]; ok {
			delete(s.strings, k)
			n++
			s.log([]byte("DEL"), []byte(k))
		} else if _, ok := s.hashes[k]; ok {
			delete(s.hashes, k)
			n++
			s.log([]byte("DEL"), []byte(k))
		}
	}
	return n
}

// Exists reports how many of the keys exist.
func (s *Store) Exists(keys ...string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, k := range keys {
		if _, ok := s.strings[k]; ok {
			n++
		} else if _, ok := s.hashes[k]; ok {
			n++
		}
	}
	return n
}

// Keys returns all keys matching the glob pattern (only "*" wildcards are
// supported, which covers Redis's common usage), sorted for determinism.
func (s *Store) Keys(pattern string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.strings {
		if globMatch(pattern, k) {
			out = append(out, k)
		}
	}
	for k := range s.hashes {
		if globMatch(pattern, k) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// DBSize returns the number of keys.
func (s *Store) DBSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.strings) + len(s.hashes)
}

// FlushAll removes every key.
func (s *Store) FlushAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.strings = make(map[string][]byte)
	s.hashes = make(map[string]map[string][]byte)
	s.log([]byte("FLUSHALL"))
}

// HSet sets field in the hash at key, reporting whether the field is new.
func (s *Store) HSet(key, field string, value []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.strings, key)
	h, ok := s.hashes[key]
	if !ok {
		h = make(map[string][]byte)
		s.hashes[key] = h
	}
	_, existed := h[field]
	h[field] = append([]byte(nil), value...)
	s.log([]byte("HSET"), []byte(key), []byte(field), value)
	return !existed
}

// HGet returns field from the hash at key.
func (s *Store) HGet(key, field string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.hashes[key]
	if !ok {
		return nil, false
	}
	v, ok := h[field]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// HDel removes fields from the hash at key, returning how many existed.
func (s *Store) HDel(key string, fields ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hashes[key]
	if !ok {
		return 0
	}
	n := 0
	for _, f := range fields {
		if _, ok := h[f]; ok {
			delete(h, f)
			n++
			s.log([]byte("HDEL"), []byte(key), []byte(f))
		}
	}
	if len(h) == 0 {
		delete(s.hashes, key)
	}
	return n
}

// HLen returns the number of fields in the hash at key.
func (s *Store) HLen(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.hashes[key])
}

// HKeys returns the sorted field names of the hash at key.
func (s *Store) HKeys(key string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.hashes[key]
	out := make([]string, 0, len(h))
	for f := range h {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// globMatch matches pattern against s where '*' matches any run of
// characters. '?' and character classes are not supported.
func globMatch(pattern, s string) bool {
	if pattern == "*" || pattern == "" {
		return true
	}
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for _, p := range parts[1 : len(parts)-1] {
		i := strings.Index(s, p)
		if i < 0 {
			return false
		}
		s = s[i+len(p):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}
