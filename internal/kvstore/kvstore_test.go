package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Set("a", []byte("1"))
	v, ok := s.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	if n := s.Del("a", "missing"); n != 1 {
		t.Fatalf("Del = %d", n)
	}
	if s.DBSize() != 0 {
		t.Fatalf("DBSize = %d", s.DBSize())
	}
}

func TestStoreValueIsolation(t *testing.T) {
	s := NewStore()
	buf := []byte("abc")
	s.Set("k", buf)
	buf[0] = 'X' // caller mutation must not leak in
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatalf("stored value aliased caller buffer: %q", v)
	}
	v[0] = 'Y' // returned copy mutation must not leak back
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatalf("returned value aliased store: %q", v2)
	}
}

func TestStoreHashes(t *testing.T) {
	s := NewStore()
	if !s.HSet("h", "f1", []byte("v1")) {
		t.Fatal("new field should report true")
	}
	if s.HSet("h", "f1", []byte("v2")) {
		t.Fatal("overwrite should report false")
	}
	v, ok := s.HGet("h", "f1")
	if !ok || string(v) != "v2" {
		t.Fatalf("HGet = %q, %v", v, ok)
	}
	s.HSet("h", "f2", []byte("x"))
	if got := s.HKeys("h"); len(got) != 2 || got[0] != "f1" || got[1] != "f2" {
		t.Fatalf("HKeys = %v", got)
	}
	if s.HLen("h") != 2 {
		t.Fatalf("HLen = %d", s.HLen("h"))
	}
	if n := s.HDel("h", "f1", "zzz"); n != 1 {
		t.Fatalf("HDel = %d", n)
	}
	// Deleting the last field removes the hash key entirely.
	s.HDel("h", "f2")
	if s.Exists("h") != 0 {
		t.Fatal("empty hash should disappear")
	}
}

func TestTypeReplacement(t *testing.T) {
	s := NewStore()
	s.Set("k", []byte("str"))
	s.HSet("k", "f", []byte("hash"))
	if _, ok := s.Get("k"); ok {
		t.Fatal("HSET should replace the string key, as in Redis")
	}
	s.Set("k", []byte("str2"))
	if _, ok := s.HGet("k", "f"); ok {
		t.Fatal("SET should replace the hash key")
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "anything", true},
		{"tex:*", "tex:42", true},
		{"tex:*", "other:42", false},
		{"a*b*c", "aXXbYYc", true},
		{"a*b*c", "aXXbYY", false},
		{"exact", "exact", true},
		{"exact", "exactly", false},
	}
	for _, c := range cases {
		if got := globMatch(c.pattern, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v", c.pattern, c.s, got)
		}
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	srv, err := Serve(NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0, 1, 2, 0xFF, '\r', '\n'}, 1000) // binary-safe
	if err := c.Set("tex:1", payload); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("tex:1")
	if err != nil || !ok || !bytes.Equal(v, payload) {
		t.Fatalf("Get round-trip failed: ok=%v err=%v len=%d", ok, err, len(v))
	}
	if _, ok, _ := c.Get("nope"); ok {
		t.Fatal("missing key reported present")
	}
	c.Set("tex:2", []byte("b"))
	c.HSet("meta", "shard", []byte("3"))
	keys, err := c.Keys("tex:*")
	if err != nil || len(keys) != 2 || keys[0] != "tex:1" {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	if n, _ := c.DBSize(); n != 3 {
		t.Fatalf("DBSize = %d", n)
	}
	if v, ok, _ := c.HGet("meta", "shard"); !ok || string(v) != "3" {
		t.Fatalf("HGet = %q", v)
	}
	if n, _ := c.Del("tex:1", "tex:2"); n != 2 {
		t.Fatalf("Del = %d", n)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.DBSize(); n != 0 {
		t.Fatalf("DBSize after flush = %d", n)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv, err := Serve(NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k:%d:%d", g, i)
				if err := c.Set(key, []byte(key)); err != nil {
					errs <- err
					return
				}
				v, ok, err := c.Get(key)
				if err != nil || !ok || string(v) != key {
					errs <- fmt.Errorf("get %s: %q %v %v", key, v, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerRejectsUnknownCommand(t *testing.T) {
	srv, _ := Serve(NewStore(), "127.0.0.1:0")
	defer srv.Close()
	c, _ := Dial(srv.Addr())
	defer c.Close()
	if _, err := c.do(bs("BOGUS")...); err == nil {
		t.Fatal("unknown command accepted")
	}
	// Connection must still work after an error reply.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestSetNXMGetIncr(t *testing.T) {
	srv, _ := Serve(NewStore(), "127.0.0.1:0")
	defer srv.Close()
	c, _ := Dial(srv.Addr())
	defer c.Close()

	ok, err := c.SetNX("lock", []byte("a"))
	if err != nil || !ok {
		t.Fatalf("first SetNX = %v, %v", ok, err)
	}
	ok, _ = c.SetNX("lock", []byte("b"))
	if ok {
		t.Fatal("second SetNX should not overwrite")
	}
	v, _, _ := c.Get("lock")
	if string(v) != "a" {
		t.Fatalf("lock = %q", v)
	}

	c.Set("k1", []byte("x"))
	vals, err := c.MGet("k1", "missing", "lock")
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "x" || vals[1] != nil || string(vals[2]) != "a" {
		t.Fatalf("MGet = %q", vals)
	}

	for want := 1; want <= 3; want++ {
		n, err := c.Incr("ctr")
		if err != nil || n != want {
			t.Fatalf("Incr = %d, %v (want %d)", n, err, want)
		}
	}
	if _, err := c.Incr("k1"); err == nil {
		t.Fatal("Incr on non-integer should error")
	}
}

func TestStoreIncrTypeReplacement(t *testing.T) {
	s := NewStore()
	s.HSet("h", "f", []byte("1"))
	if _, err := s.Incr("h"); err != nil {
		t.Fatalf("Incr on hash key: %v", err)
	}
	if _, ok := s.HGet("h", "f"); ok {
		t.Fatal("Incr should replace the hash key")
	}
}

func TestServerSurvivesGarbageBytes(t *testing.T) {
	// Protocol robustness: random bytes must never crash the server, and a
	// fresh connection must still work afterwards.
	srv, _ := Serve(NewStore(), "127.0.0.1:0")
	defer srv.Close()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1+rng.Intn(200))
		rng.Read(buf)
		conn.Write(buf)
		conn.Write([]byte("\r\n"))
		conn.Close()
	}
	// Mutated valid commands.
	valid := []byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n")
	for trial := 0; trial < 100; trial++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), valid...)
		mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
		conn.Write(mut)
		conn.Close()
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("server unhealthy after garbage: %v", err)
	}
}

func TestAOFPersistence(t *testing.T) {
	path := t.TempDir() + "/store.aof"
	s, err := OpenAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	binary := []byte{0, 1, '\r', '\n', 0xFF}
	s.Set("tex:1", binary)
	s.Set("tex:2", []byte("b"))
	s.Del("tex:2")
	s.HSet("meta", "shard", []byte("3"))
	s.HSet("meta", "gone", []byte("x"))
	s.HDel("meta", "gone")
	s.SetNX("lock", []byte("v"))
	s.SetNX("lock", []byte("w")) // not stored, not logged
	s.Incr("ctr")
	s.Incr("ctr")
	if err := s.CloseAOF(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.CloseAOF()
	if v, ok := r.Get("tex:1"); !ok || !bytes.Equal(v, binary) {
		t.Fatalf("tex:1 = %q, %v", v, ok)
	}
	if _, ok := r.Get("tex:2"); ok {
		t.Fatal("deleted key replayed")
	}
	if v, ok := r.HGet("meta", "shard"); !ok || string(v) != "3" {
		t.Fatalf("meta.shard = %q", v)
	}
	if _, ok := r.HGet("meta", "gone"); ok {
		t.Fatal("HDel not replayed")
	}
	if v, _ := r.Get("lock"); string(v) != "v" {
		t.Fatalf("lock = %q, want first SetNX value", v)
	}
	if v, _ := r.Get("ctr"); string(v) != "2" {
		t.Fatalf("ctr = %q, want 2", v)
	}
	// Mutations after reopen append to the same log.
	r.Set("tex:9", []byte("z"))
	r.CloseAOF()
	r2, err := OpenAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.CloseAOF()
	if _, ok := r2.Get("tex:9"); !ok {
		t.Fatal("post-reopen write lost")
	}
}

func TestAOFFlushAll(t *testing.T) {
	path := t.TempDir() + "/store.aof"
	s, _ := OpenAOF(path)
	s.Set("a", []byte("1"))
	s.FlushAll()
	s.Set("b", []byte("2"))
	s.CloseAOF()
	r, err := OpenAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.CloseAOF()
	if r.DBSize() != 1 {
		t.Fatalf("DBSize = %d, want 1", r.DBSize())
	}
	if _, ok := r.Get("a"); ok {
		t.Fatal("FLUSHALL not replayed")
	}
}

func TestAOFCorruptLog(t *testing.T) {
	path := t.TempDir() + "/store.aof"
	os.WriteFile(path, []byte("*2\r\n$3\r\nSET\r\n$1"), 0o644)
	if _, err := OpenAOF(path); err == nil {
		t.Fatal("corrupt AOF accepted")
	}
}

func TestAOFServedOverTCP(t *testing.T) {
	path := t.TempDir() + "/store.aof"
	s, _ := OpenAOF(path)
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := Dial(srv.Addr())
	c.Set("k", []byte("v"))
	c.Close()
	srv.Close()
	s.CloseAOF()
	r, _ := OpenAOF(path)
	defer r.CloseAOF()
	if v, ok := r.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("TCP-written key not persisted: %q %v", v, ok)
	}
}
