package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a minimal RESP client for the kvstore server (or a real Redis,
// for the commands this package implements). It serializes requests over a
// single connection and is safe for concurrent use.
type Client struct {
	mu sync.Mutex
	// conn is immutable after Dial; Close uses it without mu by design
	// (closing the socket is what unblocks a request parked in do).
	conn net.Conn
	//texlint:guards mu
	r *bufio.Reader
	//texlint:guards mu
	w       *bufio.Writer
	timeout time.Duration // per-exchange I/O deadline; 0 = none
}

// Dial connects to a RESP server with no I/O timeouts (a hung server blocks
// the caller indefinitely; prefer DialTimeout in serving paths).
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout connects to a RESP server, bounding both the connection
// attempt and every subsequent request/response exchange by timeout
// (0 disables the bound).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), timeout: timeout}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// do sends one command and reads its reply.
//
//texlint:ignore lockcheck the request/response exchange must be atomic on the shared connection
func (c *Client) do(args ...[]byte) (reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return reply{}, fmt.Errorf("kvstore: setting deadline: %w", err)
		}
	}
	writeArrayHeader(c.w, len(args))
	for _, a := range args {
		writeBulk(c.w, a)
	}
	if err := c.w.Flush(); err != nil {
		return reply{}, err
	}
	rep, err := readReply(c.r)
	if err != nil {
		return reply{}, err
	}
	if rep.kind == '-' {
		return reply{}, fmt.Errorf("kvstore: server error: %s", rep.str)
	}
	return rep, nil
}

func bs(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	rep, err := c.do(bs("PING")...)
	if err != nil {
		return err
	}
	if rep.str != "PONG" {
		return fmt.Errorf("kvstore: unexpected PING reply %q", rep.str)
	}
	return nil
}

// Set stores value under key.
func (c *Client) Set(key string, value []byte) error {
	_, err := c.do([]byte("SET"), []byte(key), value)
	return err
}

// Get fetches key; the bool reports presence.
func (c *Client) Get(key string) ([]byte, bool, error) {
	rep, err := c.do(bs("GET", key)...)
	if err != nil {
		return nil, false, err
	}
	return rep.bulk, rep.bulk != nil, nil
}

// SetNX stores value only when key is absent; true means it was stored.
func (c *Client) SetNX(key string, value []byte) (bool, error) {
	rep, err := c.do([]byte("SETNX"), []byte(key), value)
	return rep.n == 1, err
}

// MGet fetches several keys; absent keys yield nil entries.
func (c *Client) MGet(keys ...string) ([][]byte, error) {
	args := append(bs("MGET"), bs(keys...)...)
	rep, err := c.do(args...)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(rep.array))
	for i, r := range rep.array {
		out[i] = r.bulk
	}
	return out, nil
}

// Incr increments the integer at key and returns the new value.
func (c *Client) Incr(key string) (int, error) {
	rep, err := c.do(bs("INCR", key)...)
	return rep.n, err
}

// Del removes keys and returns how many existed.
func (c *Client) Del(keys ...string) (int, error) {
	args := append(bs("DEL"), bs(keys...)...)
	rep, err := c.do(args...)
	return rep.n, err
}

// Keys lists keys matching pattern.
func (c *Client) Keys(pattern string) ([]string, error) {
	rep, err := c.do(bs("KEYS", pattern)...)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(rep.array))
	for i, r := range rep.array {
		out[i] = string(r.bulk)
	}
	return out, nil
}

// DBSize returns the number of keys.
func (c *Client) DBSize() (int, error) {
	rep, err := c.do(bs("DBSIZE")...)
	return rep.n, err
}

// FlushAll clears the database.
func (c *Client) FlushAll() error {
	_, err := c.do(bs("FLUSHALL")...)
	return err
}

// HSet sets a hash field; true means the field was newly created.
func (c *Client) HSet(key, field string, value []byte) (bool, error) {
	rep, err := c.do([]byte("HSET"), []byte(key), []byte(field), value)
	return rep.n == 1, err
}

// HGet fetches a hash field.
func (c *Client) HGet(key, field string) ([]byte, bool, error) {
	rep, err := c.do(bs("HGET", key, field)...)
	if err != nil {
		return nil, false, err
	}
	return rep.bulk, rep.bulk != nil, nil
}

// HDel removes hash fields, returning how many existed.
func (c *Client) HDel(key string, fields ...string) (int, error) {
	args := append(bs("HDEL", key), bs(fields...)...)
	rep, err := c.do(args...)
	return rep.n, err
}

// HKeys lists a hash's fields.
func (c *Client) HKeys(key string) ([]string, error) {
	rep, err := c.do(bs("HKEYS", key)...)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(rep.array))
	for i, r := range rep.array {
		out[i] = string(r.bulk)
	}
	return out, nil
}
