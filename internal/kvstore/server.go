package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Server serves a Store over TCP using RESP.
type Server struct {
	store *Store
	ln    net.Listener

	mu sync.Mutex
	//texlint:guards mu
	conns map[net.Conn]struct{}
	//texlint:guards mu
	closed bool
	wg     sync.WaitGroup
}

// Serve starts serving the store on addr (e.g. "127.0.0.1:0") and returns
// immediately; the listener runs until Close.
func Serve(store *Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and closes every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		_ = c.Close() // best-effort teardown; the listener error is the one reported
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		args, err := readCommand(r)
		if err != nil {
			return
		}
		if !s.dispatch(w, args) {
			_ = w.Flush() // QUIT reply delivery is best-effort; the conn closes either way
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one command and writes its reply; it returns false when
// the connection should close (QUIT).
func (s *Server) dispatch(w *bufio.Writer, args [][]byte) bool {
	if len(args) == 0 {
		writeError(w, "empty command")
		return true
	}
	cmd := strings.ToUpper(string(args[0]))
	str := func(i int) string { return string(args[i]) }
	switch cmd {
	case "PING":
		if len(args) == 2 {
			writeBulk(w, args[1])
		} else {
			writeSimple(w, "PONG")
		}
	case "ECHO":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'echo'")
			break
		}
		writeBulk(w, args[1])
	case "SET":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for 'set'")
			break
		}
		s.store.Set(str(1), args[2])
		writeSimple(w, "OK")
	case "GET":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'get'")
			break
		}
		v, ok := s.store.Get(str(1))
		if !ok {
			writeBulk(w, nil)
		} else {
			writeBulk(w, v)
		}
	case "SETNX":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for 'setnx'")
			break
		}
		if s.store.SetNX(str(1), args[2]) {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "MGET":
		if len(args) < 2 {
			writeError(w, "wrong number of arguments for 'mget'")
			break
		}
		keys := make([]string, len(args)-1)
		for i := range keys {
			keys[i] = str(i + 1)
		}
		vals := s.store.MGet(keys...)
		writeArrayHeader(w, len(vals))
		for _, v := range vals {
			writeBulk(w, v)
		}
	case "INCR":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'incr'")
			break
		}
		n, err := s.store.Incr(str(1))
		if err != nil {
			writeError(w, err.Error())
			break
		}
		writeInt(w, int(n))
	case "DEL":
		if len(args) < 2 {
			writeError(w, "wrong number of arguments for 'del'")
			break
		}
		keys := make([]string, len(args)-1)
		for i := range keys {
			keys[i] = str(i + 1)
		}
		writeInt(w, s.store.Del(keys...))
	case "EXISTS":
		if len(args) < 2 {
			writeError(w, "wrong number of arguments for 'exists'")
			break
		}
		keys := make([]string, len(args)-1)
		for i := range keys {
			keys[i] = str(i + 1)
		}
		writeInt(w, s.store.Exists(keys...))
	case "KEYS":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'keys'")
			break
		}
		keys := s.store.Keys(str(1))
		writeArrayHeader(w, len(keys))
		for _, k := range keys {
			writeBulk(w, []byte(k))
		}
	case "DBSIZE":
		writeInt(w, s.store.DBSize())
	case "FLUSHALL":
		s.store.FlushAll()
		writeSimple(w, "OK")
	case "HSET":
		if len(args) != 4 {
			writeError(w, "wrong number of arguments for 'hset'")
			break
		}
		if s.store.HSet(str(1), str(2), args[3]) {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "HGET":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for 'hget'")
			break
		}
		v, ok := s.store.HGet(str(1), str(2))
		if !ok {
			writeBulk(w, nil)
		} else {
			writeBulk(w, v)
		}
	case "HDEL":
		if len(args) < 3 {
			writeError(w, "wrong number of arguments for 'hdel'")
			break
		}
		fields := make([]string, len(args)-2)
		for i := range fields {
			fields[i] = str(i + 2)
		}
		writeInt(w, s.store.HDel(str(1), fields...))
	case "HLEN":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'hlen'")
			break
		}
		writeInt(w, s.store.HLen(str(1)))
	case "HKEYS":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'hkeys'")
			break
		}
		fields := s.store.HKeys(str(1))
		writeArrayHeader(w, len(fields))
		for _, f := range fields {
			writeBulk(w, []byte(f))
		}
	case "QUIT":
		writeSimple(w, "OK")
		return false
	default:
		writeError(w, fmt.Sprintf("unknown command '%s'", cmd))
	}
	return true
}
