package kvstore

import (
	"net"
	"testing"
	"time"
)

// TestDialTimeoutOnSilentServer verifies the bounded client: a server that
// accepts the connection but never replies must fail the exchange within
// the deadline instead of blocking forever.
func TestDialTimeoutOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never reply
		}
	}()

	c, err := DialTimeout(ln.Addr().String(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("silent server did not error")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("timed out after %v, want ~100ms", waited)
	}
}
