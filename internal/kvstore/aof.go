package kvstore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
)

// Append-only-file persistence (Redis's AOF, simplified): every mutation is
// logged as a RESP command array and replayed on open, so a restarted
// store recovers its contents. The log format IS the wire protocol, which
// keeps one parser for both.

// aofLog serializes mutations to disk.
type aofLog struct {
	mu sync.Mutex
	//texlint:guards mu
	f *os.File
	//texlint:guards mu
	w *bufio.Writer
}

// append logs one command and flushes it (durability over throughput; the
// store's write volume is feature enrollments, not a hot path).
//
//texlint:ignore lockcheck serializing whole records through the shared writer is this mutex's purpose
func (a *aofLog) append(args ...[]byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	writeArrayHeader(a.w, len(args))
	for _, arg := range args {
		writeBulk(a.w, arg)
	}
	return a.w.Flush()
}

//texlint:ignore lockcheck the final flush must not interleave with a concurrent append
func (a *aofLog) close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.w.Flush(); err != nil {
		_ = a.f.Close() // the flush error is the one worth reporting
		return err
	}
	return a.f.Close()
}

// OpenAOF opens (or creates) an append-only-file-backed store at path:
// existing log records are replayed into a fresh store, and every
// subsequent mutation is appended. Close the store with CloseAOF to flush.
func OpenAOF(path string) (*Store, error) {
	s := NewStore()

	// Replay phase (no logging while replaying).
	if f, err := os.Open(path); err == nil {
		r := bufio.NewReader(f)
		for {
			// EOF before a record starts is a clean end; EOF (or anything
			// else) mid-record means a truncated/corrupt log.
			if _, err := r.Peek(1); err == io.EOF {
				break
			}
			args, err := readCommand(r)
			if err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("kvstore: corrupt AOF %s: %w", path, err)
			}
			if err := s.replay(args); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("kvstore: replaying AOF %s: %w", path, err)
			}
		}
		// Close errors are irrelevant for a file only ever read from.
		_ = f.Close()
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.aof = &aofLog{f: f, w: bufio.NewWriter(f)}
	return s, nil
}

// CloseAOF flushes and closes the store's log (no-op for in-memory stores).
func (s *Store) CloseAOF() error {
	if s.aof == nil {
		return nil
	}
	a := s.aof
	s.aof = nil
	return a.close()
}

// replay applies one logged mutation.
func (s *Store) replay(args [][]byte) error {
	if len(args) == 0 {
		return fmt.Errorf("empty record")
	}
	cmd := string(args[0])
	switch cmd {
	case "SET":
		if len(args) != 3 {
			return fmt.Errorf("bad SET record")
		}
		s.Set(string(args[1]), args[2])
	case "DEL":
		keys := make([]string, len(args)-1)
		for i := range keys {
			keys[i] = string(args[i+1])
		}
		s.Del(keys...)
	case "HSET":
		if len(args) != 4 {
			return fmt.Errorf("bad HSET record")
		}
		s.HSet(string(args[1]), string(args[2]), args[3])
	case "HDEL":
		if len(args) < 3 {
			return fmt.Errorf("bad HDEL record")
		}
		fields := make([]string, len(args)-2)
		for i := range fields {
			fields[i] = string(args[i+2])
		}
		s.HDel(string(args[1]), fields...)
	case "FLUSHALL":
		s.FlushAll()
	default:
		return fmt.Errorf("unknown record %q", cmd)
	}
	return nil
}

// log appends a mutation record when AOF is enabled.
func (s *Store) log(args ...[]byte) {
	if s.aof != nil {
		// Logging failures are surfaced loudly: losing durability silently
		// would defeat the point of an AOF.
		if err := s.aof.append(args...); err != nil {
			panic(fmt.Sprintf("kvstore: AOF write failed: %v", err))
		}
	}
}
