package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"strconv"

	"texid/internal/limits"
)

// RESP (REdis Serialization Protocol) framing: requests are arrays of bulk
// strings; replies are simple strings, errors, integers, bulk strings, or
// arrays.

var errProtocol = errors.New("kvstore: protocol error")

// maxBulkLen bounds a single bulk string (512 MB, Redis's own limit).
const maxBulkLen = 512 << 20

// readCommand parses one client command (an array of bulk strings).
// It also accepts the inline format ("PING\r\n") for debugging with nc.
// The reader is a network peer (or a possibly corrupt AOF): every count and
// length parsed here is hostile until bounds-checked.
//
//texlint:untrusted
func readCommand(r *bufio.Reader) ([][]byte, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, errProtocol
	}
	if line[0] != '*' {
		// Inline command: split on spaces.
		var args [][]byte
		for _, f := range splitInline(line) {
			args = append(args, f)
		}
		if len(args) == 0 {
			return nil, errProtocol
		}
		return args, nil
	}
	// A command needs at least its name: reject empty arrays outright
	// (dispatching one would index args[0]).
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 1 || n > 1<<20 {
		return nil, errProtocol
	}
	// The element count is attacker-controlled: start small and let append
	// grow the slice only as elements actually parse.
	args := make([][]byte, 0, limits.Cap(n, 64))
	for i := 0; i < n; i++ {
		arg, err := readBulk(r)
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
	}
	return args, nil
}

func splitInline(line []byte) [][]byte {
	var out [][]byte
	start := -1
	for i, c := range line {
		if c == ' ' {
			if start >= 0 {
				out = append(out, line[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, line[start:])
	}
	return out
}

func readBulk(r *bufio.Reader) ([]byte, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '$' {
		return nil, errProtocol
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < -1 || n > maxBulkLen {
		return nil, errProtocol
	}
	if n == -1 {
		return nil, nil // null bulk
	}
	return readBlob(r, n)
}

// readBlob reads an n-byte payload plus its trailing CRLF. The length
// prefix is attacker-controlled (up to maxBulkLen), so memory is committed
// chunk by chunk via limits.ReadChunked, only as payload bytes actually
// arrive — a hostile "$536870912\r\n" header costs the peer half a gigabyte
// of traffic, not us half a gigabyte of RAM.
func readBlob(r *bufio.Reader, n int) ([]byte, error) {
	buf, err := limits.ReadChunked(r, n+2, limits.DefaultChunk)
	if err != nil {
		return nil, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, errProtocol
	}
	return buf[:n], nil
}

func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, errProtocol
	}
	return line[:len(line)-2], nil
}

// Reply writers.

func writeSimple(w *bufio.Writer, s string) { fmt.Fprintf(w, "+%s\r\n", s) }
func writeError(w *bufio.Writer, s string)  { fmt.Fprintf(w, "-ERR %s\r\n", s) }
func writeInt(w *bufio.Writer, n int)       { fmt.Fprintf(w, ":%d\r\n", n) }

func writeBulk(w *bufio.Writer, b []byte) {
	if b == nil {
		w.WriteString("$-1\r\n")
		return
	}
	fmt.Fprintf(w, "$%d\r\n", len(b))
	w.Write(b)
	w.WriteString("\r\n")
}

func writeArrayHeader(w *bufio.Writer, n int) { fmt.Fprintf(w, "*%d\r\n", n) }

// Reply reading (client side).

// reply is a decoded RESP reply.
type reply struct {
	kind  byte // '+', '-', ':', '$', '*'
	str   string
	n     int
	bulk  []byte
	array []reply
}

// maxReplyDepth bounds array nesting so a malicious server cannot drive the
// recursive parser into stack exhaustion.
const maxReplyDepth = 32

// readReply parses one server reply. The reader is a network peer: counts
// and lengths are hostile until bounds-checked.
//
//texlint:untrusted
func readReply(r *bufio.Reader) (reply, error) {
	return readReplyDepth(r, 0)
}

func readReplyDepth(r *bufio.Reader, depth int) (reply, error) {
	if depth > maxReplyDepth {
		return reply{}, errProtocol
	}
	line, err := readLine(r)
	if err != nil {
		return reply{}, err
	}
	if len(line) == 0 {
		return reply{}, errProtocol
	}
	switch line[0] {
	case '+':
		return reply{kind: '+', str: string(line[1:])}, nil
	case '-':
		return reply{kind: '-', str: string(line[1:])}, nil
	case ':':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil {
			return reply{}, errProtocol
		}
		return reply{kind: ':', n: n}, nil
	case '$':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil || n < -1 || n > maxBulkLen {
			return reply{}, errProtocol
		}
		if n == -1 {
			return reply{kind: '$', bulk: nil}, nil
		}
		buf, err := readBlob(r, n)
		if err != nil {
			return reply{}, err
		}
		return reply{kind: '$', bulk: buf}, nil
	case '*':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil || n < 0 || n > 1<<20 {
			return reply{}, errProtocol
		}
		// Like readCommand: grow with parsed elements, never with the
		// untrusted header.
		arr := make([]reply, 0, limits.Cap(n, 64))
		for i := 0; i < n; i++ {
			el, err := readReplyDepth(r, depth+1)
			if err != nil {
				return reply{}, err
			}
			arr = append(arr, el)
		}
		return reply{kind: '*', array: arr}, nil
	}
	return reply{}, errProtocol
}
