package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// RESP (REdis Serialization Protocol) framing: requests are arrays of bulk
// strings; replies are simple strings, errors, integers, bulk strings, or
// arrays.

var errProtocol = errors.New("kvstore: protocol error")

// maxBulkLen bounds a single bulk string (512 MB, Redis's own limit).
const maxBulkLen = 512 << 20

// readCommand parses one client command (an array of bulk strings).
// It also accepts the inline format ("PING\r\n") for debugging with nc.
func readCommand(r *bufio.Reader) ([][]byte, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, errProtocol
	}
	if line[0] != '*' {
		// Inline command: split on spaces.
		var args [][]byte
		for _, f := range splitInline(line) {
			args = append(args, f)
		}
		if len(args) == 0 {
			return nil, errProtocol
		}
		return args, nil
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 0 || n > 1<<20 {
		return nil, errProtocol
	}
	args := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		arg, err := readBulk(r)
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
	}
	return args, nil
}

func splitInline(line []byte) [][]byte {
	var out [][]byte
	start := -1
	for i, c := range line {
		if c == ' ' {
			if start >= 0 {
				out = append(out, line[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, line[start:])
	}
	return out
}

func readBulk(r *bufio.Reader) ([]byte, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '$' {
		return nil, errProtocol
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < -1 || n > maxBulkLen {
		return nil, errProtocol
	}
	if n == -1 {
		return nil, nil // null bulk
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, errProtocol
	}
	return buf[:n], nil
}

func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, errProtocol
	}
	return line[:len(line)-2], nil
}

// Reply writers.

func writeSimple(w *bufio.Writer, s string) { fmt.Fprintf(w, "+%s\r\n", s) }
func writeError(w *bufio.Writer, s string)  { fmt.Fprintf(w, "-ERR %s\r\n", s) }
func writeInt(w *bufio.Writer, n int)       { fmt.Fprintf(w, ":%d\r\n", n) }

func writeBulk(w *bufio.Writer, b []byte) {
	if b == nil {
		w.WriteString("$-1\r\n")
		return
	}
	fmt.Fprintf(w, "$%d\r\n", len(b))
	w.Write(b)
	w.WriteString("\r\n")
}

func writeArrayHeader(w *bufio.Writer, n int) { fmt.Fprintf(w, "*%d\r\n", n) }

// Reply reading (client side).

// reply is a decoded RESP reply.
type reply struct {
	kind  byte // '+', '-', ':', '$', '*'
	str   string
	n     int
	bulk  []byte
	array []reply
}

func readReply(r *bufio.Reader) (reply, error) {
	line, err := readLine(r)
	if err != nil {
		return reply{}, err
	}
	if len(line) == 0 {
		return reply{}, errProtocol
	}
	switch line[0] {
	case '+':
		return reply{kind: '+', str: string(line[1:])}, nil
	case '-':
		return reply{kind: '-', str: string(line[1:])}, nil
	case ':':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil {
			return reply{}, errProtocol
		}
		return reply{kind: ':', n: n}, nil
	case '$':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil || n < -1 || n > maxBulkLen {
			return reply{}, errProtocol
		}
		if n == -1 {
			return reply{kind: '$', bulk: nil}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return reply{}, err
		}
		return reply{kind: '$', bulk: buf[:n]}, nil
	case '*':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil || n < 0 || n > 1<<20 {
			return reply{}, errProtocol
		}
		arr := make([]reply, n)
		for i := range arr {
			arr[i], err = readReply(r)
			if err != nil {
				return reply{}, err
			}
		}
		return reply{kind: '*', array: arr}, nil
	}
	return reply{}, errProtocol
}
