package faultsim

import (
	"errors"
	"sync"
	"testing"
)

// drawSequence records the first n decisions a fresh injector hands the
// named peer.
func drawSequence(plan Plan, peer string, n int) []Decision {
	p := New(plan).Peer(peer)
	out := make([]Decision, n)
	for i := range out {
		out[i] = p.Next("search", 0)
	}
	return out
}

func TestDecisionsDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, DropRate: 0.2, HangRate: 0.1, ReplyLossRate: 0.1, SlowRate: 0.3, SlowUS: 1000}
	a := drawSequence(plan, "worker-0", 200)
	b := drawSequence(plan, "worker-0", 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must change the stream (overwhelmingly likely over
	// 200 draws at these rates).
	c := drawSequence(Plan{Seed: 8, DropRate: 0.2, HangRate: 0.1, ReplyLossRate: 0.1, SlowRate: 0.3, SlowUS: 1000}, "worker-0", 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed change did not alter the decision stream")
	}
}

// TestPerPeerStreamsIndependent verifies the property the chaos suite's
// GOMAXPROCS sweep relies on: a peer's decision stream depends only on its
// own call count, not on how calls to other peers interleave.
func TestPerPeerStreamsIndependent(t *testing.T) {
	plan := Plan{Seed: 3, DropRate: 0.25, SlowRate: 0.25, SlowUS: 500}

	solo := drawSequence(plan, "worker-1", 100)

	// Same peer, but its calls now race calls to nine other peers.
	in := New(plan)
	var wg sync.WaitGroup
	for g := 0; g < 9; g++ {
		name := "noise-" + string(rune('a'+g))
		p := in.Peer(name)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Next("search", 0)
			}
		}()
	}
	p := in.Peer("worker-1")
	interleaved := make([]Decision, 100)
	for i := range interleaved {
		interleaved[i] = p.Next("search", 0)
	}
	wg.Wait()

	for i := range solo {
		if solo[i] != interleaved[i] {
			t.Fatalf("decision %d changed under interleaving: %+v vs %+v", i, solo[i], interleaved[i])
		}
	}
}

func TestRateExtremes(t *testing.T) {
	p := New(Plan{Seed: 1}).Peer("w")
	for i := 0; i < 100; i++ {
		if d := p.Next("op", 0); d.Outcome != Pass || d.ExtraUS != 0 {
			t.Fatalf("zero-rate plan injected %+v at call %d", d, i)
		}
	}
	p = New(Plan{Seed: 1, DropRate: 1}).Peer("w")
	for i := 0; i < 100; i++ {
		if d := p.Next("op", 0); d.Outcome != Drop {
			t.Fatalf("DropRate=1 produced %+v at call %d", d, i)
		}
	}
}

func TestPartitionWindow(t *testing.T) {
	plan := Plan{Seed: 5, Partitions: []Partition{{Peer: "w0", FromUS: 100, ToUS: 200}}}
	in := New(plan)
	p := in.Peer("w0")
	other := in.Peer("w1")

	cases := []struct {
		nowUS float64
		down  bool
	}{
		{0, false}, {99.9, false}, {100, true}, {150, true}, {199.9, true}, {200, false}, {1e6, false},
	}
	for _, c := range cases {
		if got := p.Next("op", c.nowUS) == (Decision{Outcome: Down}); got != c.down {
			t.Fatalf("now=%v: down=%v, want %v", c.nowUS, got, c.down)
		}
	}
	// The window is keyed to w0 only.
	if d := other.Next("op", 150); d.Outcome != Pass {
		t.Fatalf("partition leaked to another peer: %+v", d)
	}
}

func TestKillIsPermanent(t *testing.T) {
	in := New(Plan{Seed: 2, Kill: map[string]uint64{"w2": 4}})
	p := in.Peer("w2")
	for i := 1; i <= 10; i++ {
		d := p.Next("op", 0)
		if i < 4 && d.Outcome == Down {
			t.Fatalf("killed before call 4 (call %d)", i)
		}
		if i >= 4 && d.Outcome != Down {
			t.Fatalf("alive after kill at call %d: %+v", i, d)
		}
	}
	if surv := in.Peer("w3").Next("op", 0); surv.Outcome != Pass {
		t.Fatalf("kill leaked to another peer: %+v", surv)
	}
}

func TestDoOutcomes(t *testing.T) {
	invoked := 0
	invoke := func() (float64, error) { invoked++; return 100, nil }

	// Drop: invoke never runs.
	p := New(Plan{Seed: 1, DropRate: 1}).Peer("w")
	el, err := p.Do("op", 1000, 0, invoke)
	if !errors.Is(err, ErrDropped) || invoked != 0 || el != 0 {
		t.Fatalf("drop: el=%v err=%v invoked=%d", el, err, invoked)
	}

	// Hang: bills the deadline, invoke never runs.
	p = New(Plan{Seed: 1, HangRate: 1}).Peer("w")
	el, err = p.Do("op", 1000, 0, invoke)
	if !errors.Is(err, ErrDeadline) || invoked != 0 || el != 1000 {
		t.Fatalf("hang: el=%v err=%v invoked=%d", el, err, invoked)
	}

	// ReplyLost: invoke runs, caller still times out.
	p = New(Plan{Seed: 1, ReplyLossRate: 1}).Peer("w")
	el, err = p.Do("op", 1000, 0, invoke)
	if !errors.Is(err, ErrReplyLost) || invoked != 1 || el != 1000 {
		t.Fatalf("replylost: el=%v err=%v invoked=%d", el, err, invoked)
	}

	// Slow past the deadline surfaces as a deadline error.
	invoked = 0
	p = New(Plan{Seed: 1, SlowRate: 1, SlowUS: 1e6}).Peer("w")
	el, err = p.Do("op", 1000, 0, invoke)
	if !errors.Is(err, ErrDeadline) || invoked != 1 || el != 1000 {
		t.Fatalf("slow-past-deadline: el=%v err=%v invoked=%d", el, err, invoked)
	}

	// Slow within a generous deadline passes with extra latency.
	invoked = 0
	p = New(Plan{Seed: 1, SlowRate: 1, SlowUS: 200}).Peer("w")
	el, err = p.Do("op", 1e6, 0, invoke)
	if err != nil || invoked != 1 || el <= 100 || el > 100+300 {
		t.Fatalf("slow: el=%v err=%v invoked=%d", el, err, invoked)
	}

	// Clean pass is transparent.
	invoked = 0
	p = New(Plan{Seed: 1}).Peer("w")
	el, err = p.Do("op", 1e6, 0, invoke)
	if err != nil || invoked != 1 || el != 100 {
		t.Fatalf("pass: el=%v err=%v invoked=%d", el, err, invoked)
	}

	// The wrapped call's own error passes through un-translated.
	boom := errors.New("engine exploded")
	el, err = p.Do("op", 1e6, 0, func() (float64, error) { return 5, boom })
	if !errors.Is(err, boom) || el != 5 || Injected(err) {
		t.Fatalf("wrapped error: el=%v err=%v", el, err)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	for attempt := 2; attempt <= 5; attempt++ {
		base := 1000.0
		want := base
		for i := 2; i < attempt; i++ {
			want *= 2
		}
		d1 := Backoff(42, "w1", attempt, base)
		d2 := Backoff(42, "w1", attempt, base)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		if d1 < want*0.5 || d1 >= want*1.5 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d1, want*0.5, want*1.5)
		}
	}
	if Backoff(42, "w1", 1, 1000) != 0 {
		t.Fatal("first attempt must not back off")
	}
	if Backoff(42, "w1", 3, 0) != 0 {
		t.Fatal("zero base must not back off")
	}
	if Backoff(42, "w1", 3, 1000) == Backoff(42, "w2", 3, 1000) {
		t.Fatal("jitter does not separate peers")
	}
}

func TestInjectedClassifier(t *testing.T) {
	for _, err := range []error{ErrDropped, ErrDeadline, ErrReplyLost, ErrPeerDown} {
		if !Injected(err) {
			t.Fatalf("%v not classified as injected", err)
		}
	}
	if Injected(errors.New("other")) || Injected(nil) {
		t.Fatal("misclassified non-injected error")
	}
}
