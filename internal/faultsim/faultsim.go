// Package faultsim is a seeded, deterministic fault injector for the
// distributed serving path. It decides the fate of coordinator→worker (or
// coordinator→kvstore) transport calls — latency spikes, dropped calls,
// hangs that outlive the caller's deadline, work-done-but-reply-lost
// failures, and partition windows — from nothing but a seed, a per-peer
// call counter, and the peer's *virtual* clock. Wall time never enters the
// decision, so a fault schedule replays bit-identically across runs,
// GOMAXPROCS settings, and machines: the same contract the GPU timing
// simulation keeps (see DESIGN.md, "Correctness invariants").
//
// The injector plugs in behind a minimal transport seam: callers funnel
// each call through Peer.Do with a closure that runs the real call and
// reports the virtual microseconds it consumed. With a nil injector the
// seam collapses to a direct invocation (zero-fault serving is bit-
// identical to not having the seam at all).
package faultsim

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Injected call failures. Callers distinguish them from genuine worker
// errors with Injected.
var (
	// ErrDropped is a call that never reached the peer.
	ErrDropped = errors.New("faultsim: call dropped")
	// ErrDeadline is a call that exceeded the caller's per-call deadline
	// (the peer hung, or was slow enough that the caller gave up).
	ErrDeadline = errors.New("faultsim: deadline exceeded")
	// ErrReplyLost is a call whose work completed on the peer but whose
	// reply never arrived (slow-then-fail: the caller cannot tell this
	// from a hang, but the peer's state did advance).
	ErrReplyLost = errors.New("faultsim: reply lost")
	// ErrPeerDown is a peer that is unreachable: inside a partition
	// window, or killed by the schedule.
	ErrPeerDown = errors.New("faultsim: peer unreachable")
)

// Injected reports whether err originated from a fault schedule rather
// than from the wrapped call itself.
func Injected(err error) bool {
	return errors.Is(err, ErrDropped) || errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrReplyLost) || errors.Is(err, ErrPeerDown)
}

// Partition makes a peer unreachable while its virtual clock is inside
// [FromUS, ToUS). Because the clock only advances when the peer performs
// simulated work, a partition "heals" deterministically: the first call
// after the peer's clock passes ToUS goes through.
type Partition struct {
	Peer   string
	FromUS float64
	ToUS   float64
}

// Plan is a deterministic fault schedule. Rates are probabilities in
// [0, 1] evaluated per call from a hash of (Seed, peer, op, call index);
// they are cumulative in the order Drop, Hang, ReplyLoss, Slow (a single
// uniform draw picks at most one outcome per call).
type Plan struct {
	// Seed keys every per-call decision. Two injectors with the same plan
	// issue identical decision sequences to identically-named peers.
	Seed int64
	// DropRate is the probability a call errors immediately without
	// reaching the peer.
	DropRate float64
	// HangRate is the probability a call hangs until the caller's
	// deadline fires (the peer never executes it).
	HangRate float64
	// ReplyLossRate is the probability the peer executes the call but the
	// reply is lost: the caller sees a deadline error, the peer's clock
	// and state advance (slow-then-fail).
	ReplyLossRate float64
	// SlowRate is the probability of a latency spike: the call succeeds
	// after SlowUS·[0.5, 1.5) extra virtual microseconds. A spike that
	// pushes the call past its deadline surfaces as ErrDeadline.
	SlowRate float64
	// SlowUS is the mean injected latency of a spike.
	SlowUS float64
	// Partitions are virtual-clock unreachability windows.
	Partitions []Partition
	// Kill maps a peer name to the 1-based call index at which the peer
	// dies permanently: that call and every later one fail ErrPeerDown.
	// This is the "kill a worker mid-stream" primitive of the chaos suite.
	Kill map[string]uint64
}

// Injector hands out per-peer fault decision streams for one Plan.
type Injector struct {
	plan Plan

	mu    sync.Mutex
	peers map[string]*Peer
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, peers: make(map[string]*Peer)}
}

// Plan returns the injector's schedule.
func (in *Injector) Plan() Plan { return in.plan }

// Peer returns the decision stream for the named peer, creating it on
// first use. Callers should cache the handle: Peer takes a lock, Do/Next
// do not.
func (in *Injector) Peer(name string) *Peer {
	in.mu.Lock()
	defer in.mu.Unlock()
	if p, ok := in.peers[name]; ok {
		return p
	}
	p := &Peer{name: name, plan: &in.plan, tag: hashString(uint64(in.plan.Seed), name)}
	for _, w := range in.plan.Partitions {
		if w.Peer == name {
			p.parts = append(p.parts, w)
		}
	}
	if in.plan.Kill != nil {
		p.killAt = in.plan.Kill[name]
	}
	in.peers[name] = p
	return p
}

// Peer is one peer's deterministic decision stream. The per-peer call
// counter makes decisions independent of how calls to *other* peers
// interleave: scatter-gather over N workers sees the same per-worker fault
// sequence at any GOMAXPROCS.
type Peer struct {
	name   string
	plan   *Plan
	tag    uint64 // hash of (seed, name), folded into every decision
	seq    atomic.Uint64
	parts  []Partition
	killAt uint64
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.name }

// Calls returns how many calls the peer has been asked to decide.
func (p *Peer) Calls() uint64 { return p.seq.Load() }

// Outcome is the fate of one call.
type Outcome int

const (
	// Pass executes the call unmodified.
	Pass Outcome = iota
	// Slow executes the call, then adds ExtraUS of virtual latency.
	Slow
	// Drop fails the call immediately; the peer never sees it.
	Drop
	// Hang blocks the call past the caller's deadline; the peer never
	// executes it.
	Hang
	// ReplyLost executes the call but loses the reply; the caller times
	// out while the peer's state advances.
	ReplyLost
	// Down is an unreachable peer (partition window or kill).
	Down
)

// String names the outcome for logs and test tables.
func (o Outcome) String() string {
	switch o {
	case Pass:
		return "pass"
	case Slow:
		return "slow"
	case Drop:
		return "drop"
	case Hang:
		return "hang"
	case ReplyLost:
		return "replylost"
	case Down:
		return "down"
	}
	return "unknown"
}

// Decision is the injector's verdict for one call.
type Decision struct {
	Outcome Outcome
	// ExtraUS is injected latency in virtual microseconds (Slow only).
	ExtraUS float64
}

// Next draws the fate of the peer's next call. op folds the operation name
// into the decision hash; nowUS is the peer's current virtual-clock
// reading, evaluated against partition windows. Purely arithmetic: no wall
// clock, no global randomness, no allocation.
//
//texlint:hotpath
//texlint:clockdomain
func (p *Peer) Next(op string, nowUS float64) Decision {
	seq := p.seq.Add(1)
	if p.killAt > 0 && seq >= p.killAt {
		return Decision{Outcome: Down}
	}
	for _, w := range p.parts {
		if nowUS >= w.FromUS && nowUS < w.ToUS {
			return Decision{Outcome: Down}
		}
	}
	h := mix(p.tag ^ hashString(seq, op))
	u := uniform(h)
	pl := p.plan
	switch {
	case u < pl.DropRate:
		return Decision{Outcome: Drop}
	case u < pl.DropRate+pl.HangRate:
		return Decision{Outcome: Hang}
	case u < pl.DropRate+pl.HangRate+pl.ReplyLossRate:
		return Decision{Outcome: ReplyLost}
	case u < pl.DropRate+pl.HangRate+pl.ReplyLossRate+pl.SlowRate:
		// Spike magnitude from a second, independent hash draw.
		return Decision{Outcome: Slow, ExtraUS: pl.SlowUS * (0.5 + uniform(mix(h)))}
	}
	return Decision{}
}

// Do applies the peer's next fault decision to one call. invoke runs the
// real call and returns the virtual microseconds it consumed; deadlineUS
// (<= 0: none) is the caller's per-call deadline and nowUS the peer's
// virtual clock at issue time. The returned latency is what the *caller*
// observes: injected latency counts, and failed calls bill the full
// deadline (the caller waited that long to find out).
//
//texlint:clockdomain
func (p *Peer) Do(op string, deadlineUS, nowUS float64, invoke func() (float64, error)) (float64, error) {
	d := p.Next(op, nowUS)
	switch d.Outcome {
	case Down:
		return 0, ErrPeerDown
	case Drop:
		return 0, ErrDropped
	case Hang:
		if deadlineUS > 0 {
			return deadlineUS, ErrDeadline
		}
		return 0, ErrDropped
	case ReplyLost:
		el, err := invoke()
		if err != nil {
			// The call itself failed; the lost reply is moot.
			return el, err
		}
		if deadlineUS > 0 && deadlineUS > el {
			el = deadlineUS
		}
		return el, ErrReplyLost
	}
	el, err := invoke()
	if err != nil {
		return el, err
	}
	el += d.ExtraUS
	if deadlineUS > 0 && el > deadlineUS {
		return deadlineUS, ErrDeadline
	}
	return el, nil
}

// Backoff returns the deterministic jittered backoff, in virtual
// microseconds, charged before retry attempt n (2-based: the first retry
// is attempt 2). The base delay doubles per attempt and is multiplied by a
// jitter factor in [0.5, 1.5) derived from (seed, peer, attempt) — spread
// enough to de-synchronize retry storms, deterministic enough to replay.
//
//texlint:hotpath
//texlint:clockdomain
func Backoff(seed int64, peer string, attempt int, baseUS float64) float64 {
	if attempt < 2 || baseUS <= 0 {
		return 0
	}
	d := baseUS
	for i := 2; i < attempt; i++ {
		d *= 2
	}
	return d * (0.5 + uniform(mix(hashString(uint64(seed), peer)^uint64(attempt))))
}

// hashString folds s into a seed with FNV-1a, then finalizes.
func hashString(seed uint64, s string) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return mix(h)
}

// mix is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// uniform maps a hash to [0, 1).
func uniform(h uint64) float64 { return float64(h>>11) / float64(1<<53) }
