// Package serve implements the continuous micro-batching admission layer
// in front of the search engine: concurrent single-query Search calls are
// coalesced — whatever has arrived within a bounded window, up to a
// configurable batch cap — into one multi-query GEMM pass, and the
// per-query results are demultiplexed back to the callers. This is the
// admit-concurrently/execute-batched shape that GPU similarity-search
// systems (Faiss) and modern inference servers use to turn many small
// GEMMs into a few large ones; here it is what lets the paper's Sec. 5.3
// query-batching trade-off be exercised by real concurrent traffic rather
// than only by pre-assembled batch requests.
//
// Determinism contract: coalescing changes only which queries share a
// GEMM pass, never a query's result — Engine.SearchBatch is pinned
// bitwise-identical to one-by-one execution, so the batcher inherits
// result determinism at any GOMAXPROCS and any admission schedule. What
// coalescing does change is virtual-time attribution: a batched query's
// simulated latency is its batch's completion time (the Sec. 5.3
// latency/throughput trade-off). The admission window itself is wall
// clock by nature (it paces real arrivals) and stays strictly outside
// the simulated clock, per DESIGN.md's two-clock contract.
package serve

import (
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("serve: batcher closed")

// errShortBatch reports a runner that returned fewer results than queries.
var errShortBatch = errors.New("serve: runner returned short result batch")

// Runner executes one coalesced batch of queries and returns one result
// per query, in order. It is called by exactly one goroutine at a time.
type Runner[Q, R any] func(queries []Q) ([]R, error)

// Options configures a Batcher.
type Options struct {
	// MaxBatch caps how many queries coalesce into one execution
	// (values < 1 mean 1, i.e. no coalescing). It maps onto the paper's
	// query-batch-size ablation axis (Sec. 5.3): larger batches raise
	// GEMM efficiency and amortize PCIe streaming of host-resident
	// reference batches, at the cost of per-query latency.
	MaxBatch int
	// Window bounds how long the batch leader waits (wall clock) for the
	// batch to fill after it starts assembling one. 0 means greedy:
	// execute immediately with whatever has queued — arrivals during an
	// execution still coalesce into the next batch (continuous
	// batching), so under sustained concurrency batches fill without any
	// added admission delay.
	Window time.Duration
	// Observe, when non-nil, is called once per executed batch with the
	// achieved batch size (for metrics export). It must not block.
	Observe func(batchSize int)
}

// call is one in-flight query: its input, its result slot, and a reusable
// completion signal. Calls are pooled on a freelist so the steady-state
// submit/demux path allocates nothing.
type call[Q, R any] struct {
	query Q
	res   R
	err   error
	done  chan struct{} // buffered(1); reused across the pool
}

// Batcher coalesces concurrent Do calls into batched Runner executions.
// The zero value is not usable; construct with New.
//
// The batching discipline is leader-driven: the first submitter whose
// arrival finds no active leader becomes the leader, optionally waits up
// to Window for the batch to fill, executes, demultiplexes, and keeps
// draining the queue until it is empty before resigning. No background
// goroutine exists while the batcher is idle.
type Batcher[Q, R any] struct {
	run  Runner[Q, R]
	opts Options

	mu   sync.Mutex
	idle sync.Cond // signaled when the leader resigns
	//texlint:guards mu
	queue []*call[Q, R]
	//texlint:guards mu
	free []*call[Q, R]
	//texlint:guards mu
	leading bool
	//texlint:guards mu
	closed bool

	// full wakes a Window-waiting leader early when the queue reaches
	// MaxBatch (buffered(1); signaled outside mu, best-effort).
	full chan struct{}

	// Leader-only scatter buffers, reused across batches.
	batch   []*call[Q, R]
	queries []Q

	// created counts call objects ever allocated; when the batcher is
	// idle every one of them must sit on the freelist, which is the
	// leak/double-recycle invariant the edge-case tests pin.
	//texlint:guards mu
	created uint64

	// Stats, guarded by mu.
	//texlint:guards mu
	submitted uint64
	//texlint:guards mu
	batches uint64
	//texlint:guards mu
	sizeHist [len(sizeBuckets) + 1]uint64
}

// sizeBuckets are the achieved-batch-size histogram bucket upper bounds;
// a final implicit bucket counts batches larger than the last bound.
var sizeBuckets = [...]int{1, 2, 4, 8, 16, 32, 64, 128}

// New builds a Batcher that executes coalesced batches with run.
func New[Q, R any](run Runner[Q, R], opts Options) *Batcher[Q, R] {
	if opts.MaxBatch < 1 {
		opts.MaxBatch = 1
	}
	if opts.Window < 0 {
		opts.Window = 0
	}
	b := &Batcher[Q, R]{
		run:     run,
		opts:    opts,
		full:    make(chan struct{}, 1),
		queue:   make([]*call[Q, R], 0, opts.MaxBatch),
		free:    make([]*call[Q, R], 0, opts.MaxBatch),
		batch:   make([]*call[Q, R], 0, opts.MaxBatch),
		queries: make([]Q, 0, opts.MaxBatch),
	}
	b.idle.L = &b.mu
	return b
}

// Do submits one query, waits for the coalesced execution it lands in,
// and returns its demultiplexed result. Safe for concurrent use.
//
//texlint:hotpath
func (b *Batcher[Q, R]) Do(query Q) (R, error) {
	c, lead, signal := b.submit(query)
	if c == nil {
		var zero R
		return zero, ErrClosed
	}
	if signal {
		// The queue just reached MaxBatch: wake a window-waiting leader
		// early (best-effort; a stale token only shortens one window).
		select {
		case b.full <- struct{}{}:
		default:
		}
	}
	if lead {
		b.lead()
	}
	<-c.done
	res, err := c.res, c.err
	b.release(c)
	return res, err
}

// submit enqueues a call, electing the caller leader if none is active.
// It reports whether a window-waiting leader should be woken (the queue
// just filled to MaxBatch while someone else leads).
//
//texlint:hotpath
func (b *Batcher[Q, R]) submit(query Q) (c *call[Q, R], lead, signal bool) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, false, false
	}
	if n := len(b.free); n > 0 {
		c = b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
	} else {
		c = &call[Q, R]{done: make(chan struct{}, 1)} //texlint:ignore hotalloc freelist warm-up: each call object is allocated once at peak concurrency and recycled forever after
		b.created++
	}
	c.query = query
	if len(b.queue) == cap(b.queue) {
		grown := make([]*call[Q, R], len(b.queue), 2*cap(b.queue)+1)
		copy(grown, b.queue)
		b.queue = grown
	}
	b.queue = b.queue[:len(b.queue)+1]
	b.queue[len(b.queue)-1] = c
	b.submitted++
	if !b.leading {
		b.leading = true
		lead = true
	}
	signal = !lead && len(b.queue) >= b.opts.MaxBatch
	b.mu.Unlock()
	return c, lead, signal
}

// release returns a completed call to the freelist. The pooled call must
// not be touched afterwards: the freelist may reissue it to a concurrent
// Do immediately (poollife enforces this at every call site).
//
//texlint:freelist
//texlint:hotpath
func (b *Batcher[Q, R]) release(c *call[Q, R]) {
	var zeroQ Q
	var zeroR R
	c.query, c.res, c.err = zeroQ, zeroR, nil
	b.mu.Lock()
	if len(b.free) == cap(b.free) {
		grown := make([]*call[Q, R], len(b.free), 2*cap(b.free)+1)
		copy(grown, b.free)
		b.free = grown
	}
	b.free = b.free[:len(b.free)+1]
	b.free[len(b.free)-1] = c
	b.mu.Unlock()
}

// lead runs the batching loop: wait (bounded) for the batch to fill,
// collect up to MaxBatch queued calls, execute them as one batch, demux,
// and repeat until the queue drains.
//
//texlint:coldpath leader machinery runs once per coalesced batch, not per query; the per-query work is in submit/complete
func (b *Batcher[Q, R]) lead() {
	for {
		if b.opts.Window > 0 {
			b.mu.Lock()
			wait := len(b.queue) < b.opts.MaxBatch
			b.mu.Unlock()
			if wait {
				// Drain a stale fill token so the wait below reflects
				// this round's queue, then wait for fill or timeout.
				select {
				case <-b.full:
				default:
				}
				t := time.NewTimer(b.opts.Window)
				select {
				case <-b.full:
				case <-t.C:
				}
				t.Stop()
			}
		}

		b.mu.Lock()
		n := len(b.queue)
		if n == 0 {
			b.leading = false
			if b.closed {
				b.idle.Broadcast()
			}
			b.mu.Unlock()
			return
		}
		if n > b.opts.MaxBatch {
			n = b.opts.MaxBatch
		}
		b.batch = append(b.batch[:0], b.queue[:n]...)
		rest := copy(b.queue, b.queue[n:])
		for i := rest; i < len(b.queue); i++ {
			b.queue[i] = nil
		}
		b.queue = b.queue[:rest]
		b.queries = b.queries[:0]
		for _, c := range b.batch {
			b.queries = append(b.queries, c.query)
		}
		b.batches++
		b.sizeHist[sizeBucket(n)]++
		b.mu.Unlock()

		// Execute with no lock held: submitters keep queueing into the
		// next batch while this one runs (continuous batching).
		results, err := b.run(b.queries)
		if err == nil && len(results) < n {
			err = errShortBatch
		}
		b.complete(b.batch, results, err)
		if b.opts.Observe != nil {
			b.opts.Observe(n)
		}

		// Avoid retaining caller data past the batch.
		var zeroQ Q
		for i := range b.queries {
			b.queries[i] = zeroQ
		}
	}
}

// complete demultiplexes one executed batch: each call gets its own
// result (or the shared error) and its waiter is woken. The done channel
// is buffered with exactly one waiter, so the send never blocks.
//
//texlint:hotpath
func (b *Batcher[Q, R]) complete(batch []*call[Q, R], results []R, err error) {
	for i, c := range batch {
		if err != nil {
			c.err = err
		} else {
			c.res = results[i]
		}
		c.done <- struct{}{}
	}
}

// Close rejects new submissions and waits for queued work to drain.
// Outstanding Do calls complete normally.
func (b *Batcher[Q, R]) Close() {
	b.mu.Lock()
	b.closed = true
	for b.leading {
		b.idle.Wait() //texlint:ignore lockcheck sync.Cond.Wait requires holding mu and releases it while parked
	}
	b.mu.Unlock()
}

// Stats is a point-in-time snapshot of the batcher's admission counters.
type Stats struct {
	// Submitted counts accepted queries; Batches counts coalesced
	// executions, so Submitted/Batches is the achieved mean batch size.
	Submitted uint64
	Batches   uint64
	MeanBatch float64
	// SizeHist is the achieved-batch-size histogram: SizeHist[i] counts
	// batches with size ≤ SizeBuckets[i] (cumulative-free, per-bucket);
	// the final entry counts batches larger than the last bound.
	SizeHist [len(sizeBuckets) + 1]uint64
}

// SizeBuckets returns the histogram bucket upper bounds used by Stats.
func SizeBuckets() []int { return append([]int(nil), sizeBuckets[:]...) }

// Stats returns current admission counters.
func (b *Batcher[Q, R]) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Stats{Submitted: b.submitted, Batches: b.batches, SizeHist: b.sizeHist}
	if b.batches > 0 {
		s.MeanBatch = float64(b.submitted) / float64(b.batches)
	}
	return s
}

// sizeBucket maps a batch size to its histogram bucket index.
func sizeBucket(n int) int {
	for i, le := range sizeBuckets {
		if n <= le {
			return i
		}
	}
	return len(sizeBuckets)
}
