package serve

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// allocsDuring returns the total heap allocations performed while f ran
// (all goroutines — the concurrent complement of AllocsPerRun).
func allocsDuring(f func()) uint64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// TestBatcherSubmitDemuxZeroAlloc pins the freelist contract the
// BENCH_SOAK gate tracks: once the pool is warm, a sequential Do round
// trip (submit → lead → execute → demux → release) performs zero heap
// allocations. Any drift here fails tier-1, not just the opt-in bench.
func TestBatcherSubmitDemuxZeroAlloc(t *testing.T) {
	results := make([]int, 1)
	b := New(func(qs []int) ([]int, error) {
		results = results[:0]
		for _, q := range qs {
			results = append(results, q)
		}
		return results, nil
	}, Options{MaxBatch: 1})
	defer b.Close()

	// Warm the freelist and the runner's result buffer.
	if _, err := b.Do(1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := b.Do(2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm submit/demux does %.1f allocs/op, want 0", allocs)
	}
}

// TestEngineBatcherAllocsUnderChurn guards the serve hot path under the
// soak's mixed workload: steady-state batched searches interleaved with
// enrollment churn (Update on a bounded id pool). The measured window
// covers the whole read+write interleaving; the bound is deliberately
// above the engine's own steady-state search cost (pinned separately at
// <= 50) but tight enough that a leak per op — or losing the call
// freelist — fails immediately.
func TestEngineBatcherAllocsUnderChurn(t *testing.T) {
	e, refs := testEngine(t, 8)
	rng := rand.New(rand.NewSource(17))
	qs := queries(rng, refs, 8, 32)
	fresh := unitFeatures(rng, 16, 24)

	eb := ForEngine(e, Options{MaxBatch: 4})
	defer eb.Close()

	// Warm: one search and one update so caches, freelists, and the
	// engine scratch reach steady state before measuring.
	if _, err := eb.Search(qs[0], nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(100, fresh, nil); err != nil {
		t.Fatal(err)
	}

	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		// One interleaved unit: three reads through the admission layer,
		// one churn write straight into the engine (the soak's write
		// path), exactly as the mixed scenario drives them.
		for k := 0; k < 3; k++ {
			if _, err := eb.Search(qs[(i+k)%len(qs)], nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Update(100+(i%4), fresh, nil); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// 3 searches (< 50 each when warm) + 1 Update (pending-buffer append,
	// tombstone, occasional seal). 400 gives seal amortization headroom
	// while still catching any per-op leak growth.
	if allocs > 400 {
		t.Fatalf("read+churn interleaving does %.1f allocs/unit, drifted above the pinned bound", allocs)
	}
}

// TestEngineBatcherConcurrentChurnBounded is the concurrent variant:
// AllocsPerRun cannot isolate goroutines, so this measures total process
// allocations across a fixed concurrent read+enroll workload and bounds
// the per-op mean. It catches catastrophic drift (a per-op leak on the
// demux or scatter path) that single-threaded pinning can miss.
func TestEngineBatcherConcurrentChurnBounded(t *testing.T) {
	e, refs := testEngine(t, 8)
	rng := rand.New(rand.NewSource(19))
	qs := queries(rng, refs, 16, 32)
	fresh := unitFeatures(rng, 16, 24)
	eb := ForEngine(e, Options{MaxBatch: 4})
	defer eb.Close()

	run := func(ops int) {
		var wg sync.WaitGroup
		for i := 0; i < ops; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if i%8 == 7 {
					if err := e.Update(100+(i%4), fresh, nil); err != nil {
						t.Errorf("update: %v", err)
					}
					return
				}
				if _, err := eb.Search(qs[i%len(qs)], nil); err != nil {
					t.Errorf("search: %v", err)
				}
			}(i)
		}
		wg.Wait()
	}
	run(64) // warm

	const ops = 512
	allocs := allocsDuring(func() { run(ops) })
	perOp := float64(allocs) / ops
	if perOp > 500 {
		t.Fatalf("concurrent read+churn averages %.0f allocs/op, drifted above the pinned bound", perOp)
	}
}
