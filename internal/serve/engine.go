package serve

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/engine"
	"texid/internal/knn"
	"texid/internal/sift"
)

// Query is one search input for an engine-backed batcher: pre-extracted
// query features plus optional keypoints (for geometric verification).
// A nil Feats runs a phantom (timing-only) search, as in Engine.Search.
type Query struct {
	Feats *blas.Matrix
	Kps   []sift.Keypoint
}

// result pairs a per-query report with a per-query error, so one
// malformed query in a coalesced batch fails alone instead of poisoning
// the queries it happened to share a GEMM pass with.
type result struct {
	rep *engine.Report
	err error
}

// EngineBatcher fronts one Engine with the micro-batching admission
// layer: concurrent Search calls coalesce into Engine.SearchBatch passes.
type EngineBatcher struct {
	b *Batcher[Query, result]
}

// ForEngine builds the admission layer over e. Coalesced execution
// requires the RootSIFT algorithm (the only batchable 2-NN variant);
// other algorithms — and mixed phantom/real batches — transparently fall
// back to per-query execution while keeping the same admission
// accounting.
func ForEngine(e *engine.Engine, opts Options) *EngineBatcher {
	batchable := e.Config().Algorithm == knn.RootSIFT
	dim := e.Config().Dim

	// Leader-only scatter buffers (the Runner is called by exactly one
	// goroutine at a time), reused across batches.
	var feats []*blas.Matrix
	var kps [][]sift.Keypoint

	run := func(qs []Query) ([]result, error) {
		results := make([]result, len(qs))

		// Validate up front and decide the execution shape: SearchBatch
		// needs uniform queries (all real with the engine's Dim, or all
		// phantom).
		phantoms, invalid := 0, false
		for i, q := range qs {
			if q.Feats == nil {
				phantoms++
			} else if q.Feats.Rows != dim {
				results[i].err = fmt.Errorf("engine: query dim %d, want %d", q.Feats.Rows, dim)
				invalid = true
			}
		}
		uniform := phantoms == 0 || phantoms == len(qs)

		if !batchable || invalid || !uniform || len(qs) == 1 {
			for i, q := range qs {
				if results[i].err != nil {
					continue
				}
				results[i].rep, results[i].err = e.Search(q.Feats, q.Kps)
			}
			return results, nil
		}

		feats = feats[:0]
		kps = kps[:0]
		for _, q := range qs {
			feats = append(feats, q.Feats)
			kps = append(kps, q.Kps)
		}
		br, err := e.SearchBatch(feats, kps)
		if err != nil {
			return nil, err
		}
		for i, rep := range br.Reports {
			results[i].rep = rep
		}
		return results, nil
	}
	return &EngineBatcher{b: New(run, opts)}
}

// Search submits one query through the admission layer and returns its
// demultiplexed per-query report. Results are bitwise identical to
// calling Engine.Search directly; only the simulated latency attribution
// differs (a coalesced query's ElapsedUS is its batch's completion time).
//
//texlint:hotpath
func (eb *EngineBatcher) Search(queryFeats *blas.Matrix, queryKps []sift.Keypoint) (*engine.Report, error) {
	r, err := eb.b.Do(Query{Feats: queryFeats, Kps: queryKps})
	if err != nil {
		return nil, err
	}
	return r.rep, r.err
}

// Close drains and shuts down the admission layer.
func (eb *EngineBatcher) Close() { eb.b.Close() }

// Stats returns the admission counters.
func (eb *EngineBatcher) Stats() Stats { return eb.b.Stats() }
