package serve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// checkFreelist pins the poollife contract at runtime: with no Do in
// flight, every call object ever created is on the freelist exactly once
// (no leaks), no pointer appears twice (no double recycle), and the
// queue is empty.
func checkFreelist[Q, R any](t *testing.T, b *Batcher[Q, R]) {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.queue) != 0 {
		t.Fatalf("queue holds %d calls while idle", len(b.queue))
	}
	seen := make(map[*call[Q, R]]bool, len(b.free))
	for i, c := range b.free {
		if c == nil {
			t.Fatalf("nil slot %d on the freelist", i)
		}
		if seen[c] {
			t.Fatalf("call %p recycled twice onto the freelist", c)
		}
		seen[c] = true
	}
	if uint64(len(b.free)) != b.created {
		t.Fatalf("freelist holds %d of %d created calls (leak)", len(b.free), b.created)
	}
}

// TestBatcherEdgeMaxBatchOne pins the no-coalescing degenerate case:
// every Do is its own batch, results demux correctly, and sequential use
// cycles one single pooled call.
func TestBatcherEdgeMaxBatchOne(t *testing.T) {
	var mu sync.Mutex
	batches := 0
	b := New(func(qs []int) ([]int, error) {
		mu.Lock()
		batches++
		mu.Unlock()
		if len(qs) != 1 {
			t.Errorf("MaxBatch=1 executed a batch of %d", len(qs))
		}
		return []int{qs[0] * 10}, nil
	}, Options{MaxBatch: 1})
	defer b.Close()

	for i := 0; i < 100; i++ {
		got, err := b.Do(i)
		if err != nil || got != i*10 {
			t.Fatalf("Do(%d) = %d, %v", i, got, err)
		}
	}
	mu.Lock()
	if batches != 100 {
		t.Fatalf("%d batches for 100 sequential Dos", batches)
	}
	mu.Unlock()
	checkFreelist(t, b)
	b.mu.Lock()
	if b.created != 1 {
		t.Fatalf("sequential MaxBatch=1 allocated %d calls, want 1 recycled forever", b.created)
	}
	b.mu.Unlock()
}

// TestBatcherEdgeWindowZero pins greedy mode under concurrency: no
// admission delay is added, every result demuxes to its submitter, and
// the freelist ends exactly balanced.
func TestBatcherEdgeWindowZero(t *testing.T) {
	b := New(func(qs []int) ([]int, error) {
		out := make([]int, len(qs))
		for i, q := range qs {
			out[i] = q + 1000
		}
		// A short stall lets later submitters coalesce (continuous
		// batching) without a window.
		time.Sleep(200 * time.Microsecond)
		return out, nil
	}, Options{MaxBatch: 8, Window: 0})
	defer b.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := b.Do(i)
			if err == nil && got != i+1000 {
				err = errors.New("demuxed wrong result")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Do(%d): %v", i, err)
		}
	}
	st := b.Stats()
	if st.Submitted != n || st.Batches == 0 || st.Batches > n {
		t.Fatalf("stats off: %+v", st)
	}
	checkFreelist(t, b)
}

// TestBatcherEdgeCloseMidGather cancels the leader's gather from the
// outside: Close lands while a leader is still waiting out its window.
// The in-flight query must complete normally (Close drains, never
// drops), later submissions must fail ErrClosed, and no pooled call may
// leak or double-recycle.
func TestBatcherEdgeCloseMidGather(t *testing.T) {
	ran := make(chan int, 1)
	b := New(func(qs []int) ([]int, error) {
		ran <- len(qs)
		out := make([]int, len(qs))
		for i, q := range qs {
			out[i] = -q
		}
		return out, nil
	}, Options{MaxBatch: 64, Window: 50 * time.Millisecond})

	done := make(chan error, 1)
	go func() {
		got, err := b.Do(5)
		if err == nil && got != -5 {
			err = errors.New("demuxed wrong result")
		}
		done <- err
	}()
	// Wait until the Do above has become the window-waiting leader.
	deadline := time.Now().Add(time.Second)
	for {
		b.mu.Lock()
		leading := b.leading
		b.mu.Unlock()
		if leading {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never started gathering")
		}
		time.Sleep(100 * time.Microsecond)
	}

	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()

	if err := <-done; err != nil {
		t.Fatalf("query dropped by Close mid-gather: %v", err)
	}
	select {
	case n := <-ran:
		if n != 1 {
			t.Fatalf("gathered batch of %d, want the lone leader", n)
		}
	default:
		t.Fatal("runner never executed the gathered batch")
	}
	<-closed
	if _, err := b.Do(6); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
	checkFreelist(t, b)
}

// TestBatcherEdgeAllError pins the shared-error demux path: when the
// runner fails the whole batch, every caller gets the error, and every
// pooled call still returns to the freelist exactly once.
func TestBatcherEdgeAllError(t *testing.T) {
	boom := errors.New("boom")
	b := New(func(qs []int) ([]int, error) {
		return nil, boom
	}, Options{MaxBatch: 8, Window: time.Millisecond})
	defer b.Close()

	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Do(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("Do(%d) = %v, want the runner error", i, err)
		}
	}
	checkFreelist(t, b)
}

// TestBatcherEdgeShortBatchError pins the runner-contract guard: a runner
// returning fewer results than queries fails the whole batch with
// errShortBatch instead of demuxing garbage, and recycles cleanly.
func TestBatcherEdgeShortBatchError(t *testing.T) {
	b := New(func(qs []int) ([]int, error) {
		return make([]int, len(qs)/2), nil
	}, Options{MaxBatch: 4, Window: time.Millisecond})
	defer b.Close()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Do(i)
		}(i)
	}
	wg.Wait()
	short := 0
	for _, err := range errs {
		if errors.Is(err, errShortBatch) {
			short++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if short == 0 {
		t.Fatal("short runner result never surfaced errShortBatch")
	}
	checkFreelist(t, b)
}

// TestBatcherFreelistUnderChurn hammers the pool from concurrent
// submitters with randomized timing and verifies the balance sheet at
// the end: created == recycled, no duplicates — the runtime complement
// of the static poollife check.
func TestBatcherFreelistUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	delays := make([]time.Duration, 256)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
	}
	b := New(func(qs []int) ([]int, error) {
		out := make([]int, len(qs))
		copy(out, qs)
		return out, nil
	}, Options{MaxBatch: 4, Window: 100 * time.Microsecond})

	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				time.Sleep(delays[i%len(delays)])
				if _, err := b.Do(i); err != nil {
					t.Errorf("Do: %v", err)
				}
			}(round*64 + i)
		}
		wg.Wait()
		checkFreelist(t, b)
	}
	b.Close()
	checkFreelist(t, b)
}
