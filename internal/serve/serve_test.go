package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"texid/internal/blas"
	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/knn"
)

// testConfig is a small functional FP32 RootSIFT engine configuration.
func testConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.BatchSize = 4
	cfg.Streams = 2
	cfg.Precision = gpusim.FP32
	cfg.Algorithm = knn.RootSIFT
	cfg.RefFeatures = 24
	cfg.QueryFeatures = 32
	cfg.Dim = 16
	cfg.HostCacheBytes = 1 << 30
	cfg.Match.MinMatches = 10
	cfg.Match.EdgeMargin = 0
	return cfg
}

// unitFeatures builds a d×n matrix of random unit-norm non-negative
// columns (RootSIFT-like).
func unitFeatures(rng *rand.Rand, d, n int) *blas.Matrix {
	m := blas.NewMatrix(d, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		var s float64
		for i := range col {
			col[i] = rng.Float32()
			s += float64(col[i]) * float64(col[i])
		}
		f := float32(1 / math.Sqrt(s))
		for i := range col {
			col[i] *= f
		}
	}
	return m
}

// testEngine builds an engine with nRefs enrolled references and returns
// the reference feature matrices for deriving queries.
func testEngine(t *testing.T, nRefs int) (*engine.Engine, []*blas.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	cfg := testConfig()
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*blas.Matrix, nRefs)
	for i := range refs {
		refs[i] = unitFeatures(rng, cfg.Dim, cfg.RefFeatures)
		if err := e.Add(100+i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e, refs
}

// queries derives n query feature matrices that hit distinct references.
func queries(rng *rand.Rand, refs []*blas.Matrix, n, queryFeats int) []*blas.Matrix {
	out := make([]*blas.Matrix, n)
	for i := range out {
		ref := refs[i%len(refs)]
		q := blas.NewMatrix(ref.Rows, queryFeats)
		for j := 0; j < queryFeats; j++ {
			src := ref.Col(j % ref.Cols)
			dst := q.Col(j)
			var s float64
			for k := range dst {
				dst[k] = src[k] + (rng.Float32()*2-1)*0.02
				if dst[k] < 0 {
					dst[k] = 0
				}
				s += float64(dst[k]) * float64(dst[k])
			}
			f := float32(1 / math.Sqrt(s))
			for k := range dst {
				dst[k] *= f
			}
		}
		out[i] = q
	}
	return out
}

// assertSameReport fails unless got and want agree on every
// result-bearing field (timing attribution is allowed to differ).
func assertSameReport(t *testing.T, label string, got, want *engine.Report) {
	t.Helper()
	if got.BestID != want.BestID || got.Score != want.Score || got.Accepted != want.Accepted ||
		got.Compared != want.Compared {
		t.Fatalf("%s: got (id=%d score=%d acc=%v cmp=%d), want (id=%d score=%d acc=%v cmp=%d)",
			label, got.BestID, got.Score, got.Accepted, got.Compared,
			want.BestID, want.Score, want.Accepted, want.Compared)
	}
	if len(got.Ranked) != len(want.Ranked) {
		t.Fatalf("%s: ranked length %d, want %d", label, len(got.Ranked), len(want.Ranked))
	}
	for i := range got.Ranked {
		if got.Ranked[i] != want.Ranked[i] {
			t.Fatalf("%s: ranked[%d] = %+v, want %+v", label, i, got.Ranked[i], want.Ranked[i])
		}
	}
}

// TestBatcherMatchesSequentialSearches is the core identity contract: N
// concurrent searches through the admission layer return results
// identical to sequential single-query searches, across GOMAXPROCS and
// admission windows (run under -race by scripts/check.sh).
func TestBatcherMatchesSequentialSearches(t *testing.T) {
	const nQueries = 24
	e, refs := testEngine(t, 8)
	qs := queries(rand.New(rand.NewSource(11)), refs, nQueries, 32)

	// Ground truth: sequential single-query searches.
	want := make([]*engine.Report, nQueries)
	for i, q := range qs {
		rep, err := e.Search(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		for _, window := range []time.Duration{0, 200 * time.Microsecond, 5 * time.Millisecond} {
			t.Run(fmt.Sprintf("procs=%d/window=%v", procs, window), func(t *testing.T) {
				runtime.GOMAXPROCS(procs)
				eb := ForEngine(e, Options{MaxBatch: 8, Window: window})
				defer eb.Close()

				got := make([]*engine.Report, nQueries)
				errs := make([]error, nQueries)
				var wg sync.WaitGroup
				for i := range qs {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						got[i], errs[i] = eb.Search(qs[i], nil)
					}(i)
				}
				wg.Wait()
				for i := range qs {
					if errs[i] != nil {
						t.Fatalf("query %d: %v", i, errs[i])
					}
					assertSameReport(t, fmt.Sprintf("query %d", i), got[i], want[i])
				}
			})
		}
	}
}

// TestBatcherCoalesces verifies that concurrent submissions actually
// share GEMM passes rather than degenerating to one batch per query.
func TestBatcherCoalesces(t *testing.T) {
	e, refs := testEngine(t, 4)
	qs := queries(rand.New(rand.NewSource(13)), refs, 16, 32)

	// A generous window plus MaxBatch = number of in-flight queries
	// forces full coalescing: the leader waits until everyone arrives.
	eb := ForEngine(e, Options{MaxBatch: 16, Window: time.Second})
	defer eb.Close()

	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := eb.Search(qs[i], nil); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	st := eb.Stats()
	if st.Submitted != 16 {
		t.Fatalf("submitted %d, want 16", st.Submitted)
	}
	// The first arrival may lead a batch alone only if the runner starts
	// before the rest queue; the window makes that overwhelmingly
	// unlikely, but accept any real coalescing.
	if st.Batches >= st.Submitted {
		t.Fatalf("no coalescing: %d batches for %d queries", st.Batches, st.Submitted)
	}
	if st.MeanBatch <= 1 {
		t.Fatalf("mean batch %.2f, want > 1", st.MeanBatch)
	}
}

// TestBatcherRespectsMaxBatch pins the admission cap via the Observe
// hook.
func TestBatcherRespectsMaxBatch(t *testing.T) {
	e, refs := testEngine(t, 4)
	qs := queries(rand.New(rand.NewSource(17)), refs, 24, 32)

	var mu sync.Mutex
	var sizes []int
	eb := ForEngine(e, Options{
		MaxBatch: 4,
		Window:   50 * time.Millisecond,
		Observe: func(n int) {
			mu.Lock()
			sizes = append(sizes, n)
			mu.Unlock()
		},
	})
	defer eb.Close()

	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := eb.Search(qs[i], nil); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, n := range sizes {
		if n < 1 || n > 4 {
			t.Fatalf("achieved batch size %d outside [1, 4]", n)
		}
		total += n
	}
	if total != len(qs) {
		t.Fatalf("observed %d queries across batches, want %d", total, len(qs))
	}
}

// TestBatcherErrorIsolation: a malformed query co-batched with valid
// ones fails alone; the valid queries still get their results.
func TestBatcherErrorIsolation(t *testing.T) {
	e, refs := testEngine(t, 4)
	good := queries(rand.New(rand.NewSource(19)), refs, 2, 32)
	bad := blas.NewMatrix(7, 32) // wrong dim

	want0, err := e.Search(good[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	want1, err := e.Search(good[1], nil)
	if err != nil {
		t.Fatal(err)
	}

	eb := ForEngine(e, Options{MaxBatch: 3, Window: time.Second})
	defer eb.Close()

	var wg sync.WaitGroup
	var reps [3]*engine.Report
	var errs [3]error
	inputs := []*blas.Matrix{good[0], bad, good[1]}
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = eb.Search(inputs[i], nil)
		}(i)
	}
	wg.Wait()

	if errs[1] == nil {
		t.Fatal("malformed query did not error")
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid queries poisoned by co-batched error: %v, %v", errs[0], errs[2])
	}
	assertSameReport(t, "query 0", reps[0], want0)
	assertSameReport(t, "query 2", reps[2], want1)
}

// TestBatcherClose: Close drains queued work and subsequent submissions
// are rejected.
func TestBatcherClose(t *testing.T) {
	e, refs := testEngine(t, 4)
	qs := queries(rand.New(rand.NewSource(23)), refs, 4, 32)

	eb := ForEngine(e, Options{MaxBatch: 4})
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := eb.Search(qs[i], nil); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	eb.Close()
	if _, err := eb.Search(qs[0], nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Search after Close: %v, want ErrClosed", err)
	}
}

// TestBatcherShortRunner: a runner that under-returns fails every waiter
// in the batch instead of deadlocking or misattributing results.
func TestBatcherShortRunner(t *testing.T) {
	b := New(func(qs []int) ([]int, error) {
		return make([]int, len(qs)-1), nil
	}, Options{MaxBatch: 4, Window: time.Second})
	defer b.Close()

	var wg sync.WaitGroup
	var errs [2]error
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Do(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d: no error from short runner", i)
		}
	}
}

// TestBatcherPassThrough: MaxBatch 1 degenerates to serialized
// single-query execution but stays correct.
func TestBatcherPassThrough(t *testing.T) {
	e, refs := testEngine(t, 4)
	qs := queries(rand.New(rand.NewSource(29)), refs, 4, 32)
	want := make([]*engine.Report, len(qs))
	for i, q := range qs {
		rep, err := e.Search(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	eb := ForEngine(e, Options{MaxBatch: 1})
	defer eb.Close()
	for i, q := range qs {
		rep, err := eb.Search(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertSameReport(t, fmt.Sprintf("query %d", i), rep, want[i])
	}
	st := eb.Stats()
	if st.Submitted != 4 || st.Batches != 4 {
		t.Fatalf("pass-through stats: %+v", st)
	}
}

// TestBatcherStatsHistogram pins the size-bucket mapping.
func TestBatcherStatsHistogram(t *testing.T) {
	if got := sizeBucket(1); got != 0 {
		t.Fatalf("sizeBucket(1) = %d", got)
	}
	if got := sizeBucket(2); got != 1 {
		t.Fatalf("sizeBucket(2) = %d", got)
	}
	if got := sizeBucket(3); got != 2 {
		t.Fatalf("sizeBucket(3) = %d (bucket le=4)", got)
	}
	if got := sizeBucket(129); got != len(sizeBuckets) {
		t.Fatalf("sizeBucket(129) = %d (overflow bucket)", got)
	}
	buckets := SizeBuckets()
	if len(buckets) != len(sizeBuckets) || buckets[0] != 1 || buckets[len(buckets)-1] != 128 {
		t.Fatalf("SizeBuckets() = %v", buckets)
	}
}

// TestBatcherPhantomQueries: all-phantom coalesced batches run the
// timing-only SearchBatch path (the serving benchmark depends on this).
func TestBatcherPhantomQueries(t *testing.T) {
	cfg := testConfig()
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddPhantom(0, 16); err != nil {
		t.Fatal(err)
	}
	eb := ForEngine(e, Options{MaxBatch: 8, Window: time.Second})
	defer eb.Close()

	var wg sync.WaitGroup
	var reps [8]*engine.Report
	var errs [8]error
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = eb.Search(nil, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if errs[i] != nil {
			t.Fatalf("phantom %d: %v", i, errs[i])
		}
		if reps[i].Compared != 16 {
			t.Fatalf("phantom %d compared %d references, want 16", i, reps[i].Compared)
		}
	}
	if st := eb.Stats(); st.Batches >= st.Submitted {
		t.Fatalf("phantoms did not coalesce: %+v", st)
	}
}
