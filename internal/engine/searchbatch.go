package engine

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/cache"
	"texid/internal/knn"
	"texid/internal/match"
	"texid/internal/sift"
)

// BatchReport is the outcome of a multi-query search: per-query reports
// plus the batch-level throughput/latency trade-off (Sec. 5.3: batching
// queries raises throughput but every query's latency becomes the whole
// batch's completion time).
type BatchReport struct {
	Reports []*Report
	// ElapsedUS is the simulated completion time of the whole batch; it is
	// also every individual query's latency.
	ElapsedUS float64
	// Throughput is reference comparisons per second across the batch.
	Throughput float64
	// Compared is the total number of (query, reference) comparisons.
	Compared int
}

// SearchBatch answers several queries in one pass: query feature matrices
// are padded to the engine's QueryFeatures budget, concatenated, and matched
// with one GEMM per reference batch (knn.MatchMultiQuery). Only the
// RootSIFT algorithm supports query batching. A nil entry (or nil slice
// with count > 0 via SearchBatchPhantom) runs phantom timing.
func (e *Engine) SearchBatch(queryFeats []*blas.Matrix, queryKps [][]sift.Keypoint) (*BatchReport, error) {
	if e.cfg.Algorithm != knn.RootSIFT {
		return nil, fmt.Errorf("engine: query batching requires the RootSIFT algorithm")
	}
	if len(queryFeats) == 0 {
		return nil, fmt.Errorf("engine: empty query batch")
	}
	// Like Search: the pure-compute GEMM phase runs under the index read
	// lock only (plus execMu for the shared streams/scratch), so cluster
	// enrollment on one shard no longer serializes against batched
	// searches on another.
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if err := e.sealPending(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	queries := make([]*knn.Query, len(queryFeats))
	for i, qf := range queryFeats {
		var q *knn.Query
		var err error
		if qf == nil {
			q, err = knn.PhantomQuery(e.dev, e.cfg.QueryFeatures, e.cfg.Dim)
		} else {
			if qf.Rows != e.cfg.Dim {
				return nil, fmt.Errorf("engine: query %d dim %d, want %d", i, qf.Rows, e.cfg.Dim)
			}
			q, err = knn.NewQuery(e.dev, padQueryColumns(qf, e.cfg.QueryFeatures), e.cfg.Precision, e.cfg.Scale)
		}
		if err != nil {
			return nil, err
		}
		defer q.Free()
		queries[i] = q
	}

	items := e.hybrid.AppendItems(e.itemsBuf[:0])
	e.itemsBuf = items
	opts := knn.Options{
		Algorithm: e.cfg.Algorithm,
		Precision: e.cfg.Precision,
		Scale:     e.cfg.Scale,
		Accum:     e.cfg.Accum,
	}

	// Concatenate the query batch once; every reference batch reuses the
	// same staged operand instead of re-copying it per GEMM.
	mq, err := knn.BuildMultiQuery(queries, opts.Precision, &e.scratch)
	if err != nil {
		return nil, err
	}

	phantom := queryFeats[0] == nil
	reports := make([]*Report, len(queries))
	for qi := range reports {
		reports[qi] = &Report{BestID: -1}
		if !phantom {
			reports[qi].Ranked = make([]match.SearchResult, 0, len(e.refs))
		}
	}

	start := e.dev.Synchronize()
	if e.cfg.PruneC > 0 {
		if err := e.prunedBatchPass(mq, queryFeats, queryKps, opts, items, reports, phantom); err != nil {
			return nil, err
		}
	} else {
		S := len(e.streams)
		// Results alias e.scratch, so each batch is scored before the next
		// issue reuses the buffers (stream closures run eagerly at enqueue).
		// Scoring batch-major preserves each query's ranking order: every
		// query's candidates still arrive in reference-batch order.
		for base := 0; base < len(items); base += S {
			for s := 0; s < S && base+s < len(items); s++ {
				it := items[base+s]
				sb := it.Payload.(*sealedBatch)
				stream := e.streams[s]
				if it.Loc == cache.OnHost {
					stream.CopyH2D(sb.rb.Bytes(), e.cfg.PinnedHost, nil)
				}
				res, err := knn.MatchMultiQueryInto(stream, sb.rb, mq, opts, &e.scratch)
				if err != nil {
					return nil, err
				}
				for qi, rep := range reports {
					rep.Compared += sb.rb.Count()
					if phantom {
						continue
					}
					for _, pair := range res[qi] {
						public, live := e.uidToPublic[pair.RefID]
						if !live {
							continue
						}
						meta := e.refs[public]
						var kps []sift.Keypoint
						if queryKps != nil && qi < len(queryKps) {
							kps = queryKps[qi]
						}
						score := match.PairScore(pair, meta.kps, kps, e.cfg.Match)
						rep.Ranked = append(rep.Ranked, match.SearchResult{RefID: public, Score: score})
					}
				}
			}
		}
	}
	elapsed := e.dev.Synchronize() - start
	e.searches.Add(int64(len(queries)))

	br := &BatchReport{ElapsedUS: elapsed}
	for _, rep := range reports {
		rep.ElapsedUS = elapsed
		if !phantom {
			top, ok := match.Identify(rep.Ranked, e.cfg.Match)
			rep.Ranked = match.RankResults(rep.Ranked)
			rep.BestID = top.RefID
			rep.Score = top.Score
			rep.Accepted = ok
		}
		br.Compared += rep.Compared
		br.Reports = append(br.Reports, rep)
	}
	if elapsed > 0 {
		br.Throughput = float64(br.Compared) / (elapsed * 1e-6)
		for _, rep := range br.Reports {
			rep.Speed = br.Throughput / float64(len(br.Reports))
		}
	}
	return br, nil
}

// SearchBatchPhantom runs a timing-only batched-query search with count
// phantom queries.
func (e *Engine) SearchBatchPhantom(count int) (*BatchReport, error) {
	return e.SearchBatch(make([]*blas.Matrix, count), nil)
}

// padQueryColumns pads a query feature matrix with zero columns up to n.
// Zero descriptors are harmless under RootSIFT matching: they sit at
// distance sqrt(2) from every unit-norm reference feature, so best equals
// second-best and the ratio test always rejects them.
func padQueryColumns(q *blas.Matrix, n int) *blas.Matrix {
	if q.Cols >= n {
		return q
	}
	out := blas.NewMatrix(q.Rows, n)
	for j := 0; j < q.Cols; j++ {
		copy(out.Col(j), q.Col(j))
	}
	return out
}
