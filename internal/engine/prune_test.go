package engine

import (
	"math/rand"
	"runtime"
	"testing"

	"texid/internal/blas"
	"texid/internal/match"
)

func prunedConfig(c int) Config {
	cfg := testConfig()
	cfg.PruneC = c
	return cfg
}

func enrollTestRefs(t *testing.T, e *Engine, rng *rand.Rand, n int) []*blas.Matrix {
	t.Helper()
	refs := make([]*blas.Matrix, n)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		if err := e.Add(100+i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return refs
}

func sameRanked(a, b []match.SearchResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPrunedSearchFindsReference: the prefilter must not prune away the
// true match at the default candidate budget.
func TestPrunedSearchFindsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	e, err := New(prunedConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	refs := enrollTestRefs(t, e, rng, 12)
	q := queryFor(rng, refs[7], 32, 0.02)
	rep, err := e.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestID != 107 {
		t.Fatalf("best = %d, want 107 (ranked %v)", rep.BestID, rep.Ranked)
	}
	if rep.Scanned != 12 {
		t.Fatalf("scanned %d, want 12", rep.Scanned)
	}
	if rep.Compared != 4 {
		t.Fatalf("compared %d, want PruneC=4", rep.Compared)
	}
}

// TestPrunedSearchDeterministic: byte-identical results across repeated
// runs and GOMAXPROCS settings — the scan, selection, and rerank must not
// depend on scheduling.
func TestPrunedSearchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	e, err := New(prunedConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	refs := enrollTestRefs(t, e, rng, 11)
	q := queryFor(rng, refs[4], 32, 0.05)

	type outcome struct {
		best, score int
		ranked      []match.SearchResult
	}
	var runs []outcome
	for run := 0; run < 3; run++ {
		for _, procs := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			rep, err := e.Search(q, nil)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, outcome{rep.BestID, rep.Score,
				append([]match.SearchResult(nil), rep.Ranked...)})
		}
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].best != runs[0].best || runs[i].score != runs[0].score ||
			!sameRanked(runs[i].ranked, runs[0].ranked) {
			t.Fatalf("run %d differs: %+v vs %+v", i, runs[i], runs[0])
		}
	}
}

// TestPruneCCoveringAllRefsMatchesUnpruned: with C >= N the prefilter
// passes everything through, and the rerank's scores must be bitwise
// identical to the unpruned engine's.
func TestPruneCCoveringAllRefsMatchesUnpruned(t *testing.T) {
	const N = 10
	rngA := rand.New(rand.NewSource(23))
	rngB := rand.New(rand.NewSource(23))
	pruned, err := New(prunedConfig(N))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	refs := enrollTestRefs(t, pruned, rngA, N)
	enrollTestRefs(t, plain, rngB, N)

	q := queryFor(rand.New(rand.NewSource(24)), refs[2], 32, 0.05)
	rp, err := pruned.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := plain.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.BestID != ru.BestID || rp.Score != ru.Score || !sameRanked(rp.Ranked, ru.Ranked) {
		t.Fatalf("pruned C=N diverged from unpruned:\n%+v\nvs\n%+v", rp, ru)
	}
	if rp.Compared != N {
		t.Fatalf("compared %d, want %d", rp.Compared, N)
	}
}

// TestPruneCZeroIsUnpruned: the zero value takes the legacy single-phase
// path — no scan op, Scanned stays 0, full Compared.
func TestPruneCZeroIsUnpruned(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	refs := enrollTestRefs(t, e, rng, 6)
	rep, err := e.Search(queryFor(rng, refs[0], 32, 0.05), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 0 {
		t.Fatalf("unpruned search reports Scanned=%d", rep.Scanned)
	}
	if rep.Compared != 6 {
		t.Fatalf("compared %d, want 6", rep.Compared)
	}
	if e.Thresholds() != nil {
		t.Fatal("thresholds learned with pruning off")
	}
}

// TestPrunedSearchBatchMatchesSingle: the batched pruned path must agree
// with per-query pruned searches.
func TestPrunedSearchBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	e, err := New(prunedConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	refs := enrollTestRefs(t, e, rng, 9)
	queries := []*blas.Matrix{
		queryFor(rng, refs[1], 32, 0.05),
		queryFor(rng, refs[6], 32, 0.05),
		unitFeatures(rng, 16, 32),
	}
	br, err := e.SearchBatch(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		single, err := e.Search(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep := br.Reports[qi]
		if rep.BestID != single.BestID || rep.Score != single.Score ||
			!sameRanked(rep.Ranked, single.Ranked) {
			t.Fatalf("query %d: batch %+v vs single %+v", qi, rep, single)
		}
		if rep.Scanned != 9 {
			t.Fatalf("query %d scanned %d, want 9", qi, rep.Scanned)
		}
	}
}

// TestPrunedPhantomSearch: phantom-enrolled engines still charge the scan
// and rerank only C candidates.
func TestPrunedPhantomSearch(t *testing.T) {
	cfg := prunedConfig(8)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddPhantom(0, 64); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Search(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 64 {
		t.Fatalf("scanned %d, want 64", rep.Scanned)
	}
	if rep.Compared != 8 {
		t.Fatalf("compared %d, want 8", rep.Compared)
	}
	if rep.ElapsedUS <= 0 {
		t.Fatalf("no simulated time: %+v", rep)
	}
}

// TestPrunedCompactKeepsCodes: compaction must carry the enrolled codes
// (and thresholds) through, so pruned searches keep working bit-for-bit.
func TestPrunedCompactKeepsCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	e, err := New(prunedConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	refs := enrollTestRefs(t, e, rng, 8)
	q := queryFor(rng, refs[5], 32, 0.05)
	before, err := e.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{100, 103} {
		if !e.Remove(id) {
			t.Fatalf("remove %d failed", id)
		}
	}
	reclaimed, err := e.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 2 {
		t.Fatalf("reclaimed %d, want 2", reclaimed)
	}
	after, err := e.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.BestID != before.BestID {
		t.Fatalf("best changed after compact: %d vs %d", after.BestID, before.BestID)
	}
	if after.Scanned != 6 {
		t.Fatalf("scanned %d after compact, want 6", after.Scanned)
	}
}

// TestPruneConfigValidation: pruning is RootSIFT-only and bounded by the
// code width.
func TestPruneConfigValidation(t *testing.T) {
	cfg := prunedConfig(4)
	cfg.Algorithm = 0 // Baseline
	if _, err := New(cfg); err == nil {
		t.Fatal("pruning accepted for non-RootSIFT algorithm")
	}
	cfg = prunedConfig(4)
	cfg.Dim = 256
	if _, err := New(cfg); err == nil {
		t.Fatal("pruning accepted for dim > 128")
	}
}

// TestThresholdLifecycle: SetThresholds only on an empty pruning engine,
// Thresholds returns the learned vector after the first seal.
func TestThresholdLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	e, err := New(prunedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if e.Thresholds() != nil {
		t.Fatal("thresholds before first seal")
	}
	enrollTestRefs(t, e, rng, 4)
	th := e.Thresholds()
	if len(th) != 16 {
		t.Fatalf("thresholds len %d, want 16", len(th))
	}
	if err := e.SetThresholds(th); err == nil {
		t.Fatal("SetThresholds accepted on a non-empty index")
	}

	e2, err := New(prunedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.SetThresholds(th); err != nil {
		t.Fatal(err)
	}
	got := e2.Thresholds()
	for i := range th {
		if got[i] != th[i] {
			t.Fatalf("restored threshold %d = %g, want %g", i, got[i], th[i])
		}
	}
}
