package engine

import (
	"texid/internal/binq"
	"texid/internal/blas"
	"texid/internal/cache"
	"texid/internal/knn"
	"texid/internal/match"
	"texid/internal/sift"
)

// Candidate pruning (Config.PruneC > 0) turns every search into two
// phases:
//
//  1. Scan: the query's strongest descriptors are binarized with the
//     engine's learned thresholds and XOR/popcount-compared against the
//     always-resident 128-bit code panel of every reference — including
//     host-demoted batches, whose codes never leave the device. Each
//     image's score is the sum over probes of the minimum Hamming distance
//     to any of its codes.
//  2. Rerank: only the top-C images (deterministic ties: lower scan score,
//     then lower global slot) run the exact GEMM + fused top-2 pipeline,
//     via the candidate-restricted match variants whose outputs are
//     bitwise identical to the full match for the selected slots.
//
// Host-resident batches with no selected candidates are skipped entirely —
// no PCIe transfer, no kernels — which is where the capacity gain comes
// from: the feature payload of a pruned-out batch never crosses the bus.
//
// Phantom scans (phantom queries, or phantom-enrolled batches, which have
// no code data) charge the same simulated kernel time and deterministically
// select the first C global slots.

// pruneScratch is the reusable working set of the pruned search path,
// owned by the engine alongside knn.Scratch.
//
//texlint:guards execMu
type pruneScratch struct {
	scanner  binq.Scanner
	qcodes   []binq.Code // encoded probes, all queries concatenated
	probeOff []int       // per-query probe offsets (len Bq+1)
	scores   []uint32    // scan scores, [qi*total+g]
	sel      binq.TopC
	cand     []int32 // per-query candidate lists (ascending), concatenated
	candOff  []int   // per-query offsets into cand (len Bq+1)
	cursor   []int   // per-query walk position in cand
	segLo    []int   // per-query segment bounds within the current batch
	segHi    []int
	slots    []int32 // current batch's (union) candidate slots, ascending
	slotIdx  []int32 // batch slot -> position in slots
	mark     []bool
	base     []int // per-batch global slot offset
}

func (ps *pruneScratch) growScores(n int) []uint32 {
	if cap(ps.scores) < n {
		ps.scores = make([]uint32, n)
	}
	ps.scores = ps.scores[:n]
	return ps.scores
}

func (ps *pruneScratch) growInts(n int) {
	if cap(ps.probeOff) < n+1 {
		ps.probeOff = make([]int, n+1)
		ps.candOff = make([]int, n+1)
		ps.cursor = make([]int, n)
		ps.segLo = make([]int, n)
		ps.segHi = make([]int, n)
	}
	ps.probeOff = ps.probeOff[:n+1]
	ps.candOff = ps.candOff[:n+1]
	ps.cursor = ps.cursor[:n]
	ps.segLo = ps.segLo[:n]
	ps.segHi = ps.segHi[:n]
}

func (ps *pruneScratch) growMarks(count int) {
	if cap(ps.mark) < count {
		ps.mark = make([]bool, count) // zeroed; reused marks are cleared after every batch
		ps.slotIdx = make([]int32, count)
	}
	ps.mark = ps.mark[:count]
	ps.slotIdx = ps.slotIdx[:count]
}

// layout records the per-batch global slot offsets and total image count,
// and reports whether any batch lacks code data (forcing a phantom scan).
func (ps *pruneScratch) layout(items []*cache.Item) (total int, phantomScan bool) {
	ps.base = ps.base[:0]
	for _, it := range items {
		rb := it.Payload.(*sealedBatch).rb
		ps.base = append(ps.base, total) //texlint:ignore hotalloc engine-owned scratch reused via [:0]; reaches batch-count capacity after the first pass
		total += rb.Count()
		if rb.Codes() == nil {
			phantomScan = true
		}
	}
	return total, phantomScan
}

// encodeProbes binarizes the first min(limit, mat.Cols) columns of mat
// (SIFT orders descriptors by response, so these are the strongest),
// appending onto ps.qcodes.
func (ps *pruneScratch) encodeProbes(t binq.Thresholds, mat *blas.Matrix, limit int) {
	p := limit
	if mat.Cols < p {
		p = mat.Cols
	}
	view := blas.Matrix{Rows: mat.Rows, Cols: p, Stride: mat.Stride, Data: mat.Data}
	ps.qcodes = t.Encode(&view, ps.qcodes)
}

// selectTopC fills ps.cand (from offset len(ps.cand)) with the C best
// global slots of scores: ascending slot order, ties broken toward lower
// slots — the determinism contract of the prefilter.
func (ps *pruneScratch) selectTopC(scores []uint32, c int) {
	ps.sel.Reset(c)
	for g, s := range scores {
		ps.sel.Offer(int32(g), s)
	}
	ps.cand = ps.sel.AppendSorted(ps.cand)
}

// firstC appends slots 0..min(c,total)-1 — the phantom-scan selection.
func (ps *pruneScratch) firstC(c, total int) {
	if c > total {
		c = total
	}
	for g := 0; g < c; g++ {
		ps.cand = append(ps.cand, int32(g)) //texlint:ignore hotalloc engine-owned scratch reused via [:0]; bounded by Bq*PruneC entries
	}
}

// prunedPass runs the scan + candidate-rerank phases of a single-query
// search. Called with execMu held and mu read-locked, between the
// Synchronize() pair that attributes the elapsed interval.
//
//texlint:hotpath
//texlint:ignore streampair Search synchronizes the device after this pass returns
func (e *Engine) prunedPass(q *knn.Query, queryFeats *blas.Matrix, queryKps []sift.Keypoint,
	opts knn.Options, items []*cache.Item, report *Report, phantom bool) error {
	ps := &e.prune
	total, phantomScan := ps.layout(items)
	phantomScan = phantomScan || phantom
	report.Scanned = total
	if total == 0 {
		return nil
	}

	probes := e.cfg.PruneProbes
	ps.qcodes = ps.qcodes[:0]
	if !phantomScan {
		ps.encodeProbes(e.thresh, queryFeats, probes)
		probes = len(ps.qcodes)
	}
	var scores []uint32
	if !phantomScan {
		scores = ps.growScores(total)
	}

	// Phase 1: scan every batch's resident code panel. Demoted batches need
	// no transfer — their codes never left the device.
	S := len(e.streams)
	for bi, it := range items {
		rb := it.Payload.(*sealedBatch).rb
		count, lo := rb.Count(), ps.base[bi]
		e.streams[bi%S].BinaryScan(count*rb.M, probes, binq.Words, func() {
			if phantomScan {
				return
			}
			ps.scanner.Scan(rb.Codes(), rb.M, ps.qcodes, scores[lo:lo+count])
		})
	}

	ps.cand = ps.cand[:0]
	if phantomScan {
		ps.firstC(e.cfg.PruneC, total)
	} else {
		ps.selectTopC(scores, e.cfg.PruneC)
	}

	// Phase 2: exact rerank of the selected slots, batch by batch in the
	// same stream layout. Batches with no candidates are skipped outright.
	ci := 0
	for bi, it := range items {
		if ci >= len(ps.cand) {
			break
		}
		rb := it.Payload.(*sealedBatch).rb
		base := ps.base[bi]
		end := base + rb.Count()
		lo := ci
		for ci < len(ps.cand) && int(ps.cand[ci]) < end {
			ci++
		}
		if ci == lo {
			continue
		}
		ps.slots = ps.slots[:0]
		for _, g := range ps.cand[lo:ci] {
			ps.slots = append(ps.slots, g-int32(base)) //texlint:ignore hotalloc engine-owned scratch reused via [:0]; bounded by PruneC entries
		}
		stream := e.streams[bi%S]
		if it.Loc == cache.OnHost {
			// Only the candidates' feature columns cross PCIe.
			stream.CopyH2D(int64(len(ps.slots))*int64(rb.M)*int64(rb.D)*int64(e.cfg.Precision.ElemBytes()),
				e.cfg.PinnedHost, nil)
		}
		res, err := knn.MatchCandidatesScratch(stream, rb, q, ps.slots, opts, &e.scratch)
		if err != nil {
			return err
		}
		report.Compared += len(ps.slots)
		if phantom {
			continue
		}
		for _, pair := range res {
			public, live := e.uidToPublic[pair.RefID]
			if !live {
				continue // tombstoned slot won a candidate place; harmless
			}
			meta := e.refs[public]
			score := match.PairScore(pair, meta.kps, queryKps, e.cfg.Match)
			report.Ranked = append(report.Ranked, match.SearchResult{RefID: public, Score: score})
		}
	}
	return nil
}

// prunedBatchPass is the multi-query form: one scan pass per batch covers
// every query's probe set, selection is per query, and each batch reranks
// the union of its queries' candidates with one gathered multi-query GEMM.
//
//texlint:hotpath
//texlint:ignore streampair SearchBatch synchronizes the device after this pass returns
func (e *Engine) prunedBatchPass(mq *knn.MultiQuery, queryFeats []*blas.Matrix, queryKps [][]sift.Keypoint,
	opts knn.Options, items []*cache.Item, reports []*Report, phantom bool) error {
	ps := &e.prune
	Bq := len(reports)
	total, phantomScan := ps.layout(items)
	phantomScan = phantomScan || phantom
	for _, rep := range reports {
		rep.Scanned = total
	}
	if total == 0 {
		return nil
	}
	ps.growInts(Bq)

	ps.qcodes = ps.qcodes[:0]
	totalProbes := 0
	for qi := 0; qi < Bq; qi++ {
		ps.probeOff[qi] = len(ps.qcodes)
		if !phantomScan {
			ps.encodeProbes(e.thresh, queryFeats[qi], e.cfg.PruneProbes)
		} else {
			totalProbes += e.cfg.PruneProbes
		}
	}
	ps.probeOff[Bq] = len(ps.qcodes)
	if !phantomScan {
		totalProbes = len(ps.qcodes)
	}
	var scores []uint32
	if !phantomScan {
		scores = ps.growScores(Bq * total)
	}

	// Phase 1: one scan op per batch covering all queries' probes.
	S := len(e.streams)
	for bi, it := range items {
		rb := it.Payload.(*sealedBatch).rb
		count, lo := rb.Count(), ps.base[bi]
		e.streams[bi%S].BinaryScan(count*rb.M, totalProbes, binq.Words, func() {
			if phantomScan {
				return
			}
			for qi := 0; qi < Bq; qi++ {
				ps.scanner.Scan(rb.Codes(), rb.M,
					ps.qcodes[ps.probeOff[qi]:ps.probeOff[qi+1]],
					scores[qi*total+lo:qi*total+lo+count])
			}
		})
	}

	// Per-query selection into the concatenated candidate list.
	ps.cand = ps.cand[:0]
	for qi := 0; qi < Bq; qi++ {
		ps.candOff[qi] = len(ps.cand)
		if phantomScan {
			ps.firstC(e.cfg.PruneC, total)
		} else {
			ps.selectTopC(scores[qi*total:(qi+1)*total], e.cfg.PruneC)
		}
		ps.cursor[qi] = ps.candOff[qi]
	}
	ps.candOff[Bq] = len(ps.cand)

	// Phase 2: per batch, rerank the union of all queries' candidates with
	// one gathered multi-query GEMM, then score each query from its own
	// segment.
	for bi, it := range items {
		rb := it.Payload.(*sealedBatch).rb
		count := rb.Count()
		base := ps.base[bi]
		end := base + count
		ps.growMarks(count)
		any := false
		for qi := 0; qi < Bq; qi++ {
			ps.segLo[qi] = ps.cursor[qi]
			for ps.cursor[qi] < ps.candOff[qi+1] && int(ps.cand[ps.cursor[qi]]) < end {
				ps.cursor[qi]++
			}
			ps.segHi[qi] = ps.cursor[qi]
			for _, g := range ps.cand[ps.segLo[qi]:ps.segHi[qi]] {
				if !ps.mark[int(g)-base] {
					ps.mark[int(g)-base] = true
					any = true
				}
			}
		}
		if !any {
			continue
		}
		ps.slots = ps.slots[:0]
		for s := 0; s < count; s++ {
			if ps.mark[s] {
				ps.slotIdx[s] = int32(len(ps.slots))
				ps.slots = append(ps.slots, int32(s)) //texlint:ignore hotalloc engine-owned scratch reused via [:0]; bounded by the batch image count
				ps.mark[s] = false
			}
		}
		stream := e.streams[bi%S]
		if it.Loc == cache.OnHost {
			stream.CopyH2D(int64(len(ps.slots))*int64(rb.M)*int64(rb.D)*int64(e.cfg.Precision.ElemBytes()),
				e.cfg.PinnedHost, nil)
		}
		res, err := knn.MatchMultiQueryCandidates(stream, rb, mq, ps.slots, opts, &e.scratch)
		if err != nil {
			return err
		}
		for qi, rep := range reports {
			seg := ps.cand[ps.segLo[qi]:ps.segHi[qi]]
			rep.Compared += len(seg)
			if phantom {
				continue
			}
			for _, g := range seg {
				pair := res[qi][ps.slotIdx[int(g)-base]]
				public, live := e.uidToPublic[pair.RefID]
				if !live {
					continue
				}
				meta := e.refs[public]
				var kps []sift.Keypoint
				if queryKps != nil && qi < len(queryKps) {
					kps = queryKps[qi]
				}
				score := match.PairScore(pair, meta.kps, kps, e.cfg.Match)
				rep.Ranked = append(rep.Ranked, match.SearchResult{RefID: public, Score: score})
			}
		}
	}
	return nil
}
