package engine

import (
	"fmt"

	"texid/internal/binq"
	"texid/internal/blas"
	"texid/internal/knn"
)

// Compact rebuilds the reference store without dead slots. Removed and
// updated references leave tombstoned slots behind in their immutable
// batches — searches skip them, but they still burn cache memory and GEMM
// work. Compact re-enrolls every live reference into fresh batches and
// drops the old ones, returning the number of dead slots reclaimed.
//
// Phantom batches carry no feature payload and cannot be rebuilt; engines
// holding phantom references return an error.
func (e *Engine) Compact() (reclaimed int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.sealLocked(); err != nil {
		return 0, err
	}

	// Collect live features in enrollment (uid) order so batch locality is
	// preserved.
	type live struct {
		uid    int
		public int
		feats  *blas.Matrix
		codes  []binq.Code
	}
	var all []live
	dead := 0
	items := e.hybrid.Items()
	for _, it := range items {
		sb := it.Payload.(*sealedBatch)
		rb := sb.rb
		if rb.Phantom() {
			return 0, fmt.Errorf("engine: cannot compact phantom references")
		}
		for slot, uid := range rb.IDs {
			public, ok := e.uidToPublic[uid]
			if !ok {
				dead++
				continue
			}
			var feats *blas.Matrix
			if rb.F32 != nil {
				feats = rb.F32.Slice(slot*rb.M, (slot+1)*rb.M).Clone()
			} else {
				// FP16 batches widen back to float32; the storage scale is
				// divided out so re-enrollment re-applies it identically.
				feats = rb.F16.Slice(slot*rb.M, (slot+1)*rb.M).Float32()
				if rb.Scale != 0 && rb.Scale != 1 {
					inv := 1 / rb.Scale
					for i := range feats.Data {
						feats.Data[i] *= inv
					}
				}
			}
			var codes []binq.Code
			if panel := rb.Codes(); panel != nil {
				// Carry the enrolled codes through verbatim: re-encoding
				// from widened (quantized) features could flip bits that
				// sit exactly on a threshold.
				codes = append(codes, panel[slot*rb.M:(slot+1)*rb.M]...)
			}
			all = append(all, live{uid: uid, public: public, feats: feats, codes: codes})
		}
	}
	if dead == 0 {
		return 0, nil
	}

	// Drop every old batch, then rebuild. These batches leave the index for
	// good, so their cached widened-operand panels go back to the scratch
	// pool (demotion, by contrast, keeps the panel with the host copy).
	for _, it := range items {
		sb := it.Payload.(*sealedBatch)
		if sb.resident {
			sb.rb.Free()
			sb.resident = false
		}
		sb.rb.FreeCodes()
		sb.rb.ReleasePanel()
		e.hybrid.Remove(it.ID)
	}

	for start := 0; start < len(all); start += e.cfg.BatchSize {
		end := start + e.cfg.BatchSize
		if end > len(all) {
			end = len(all)
		}
		uids := make([]int, 0, end-start)
		mats := make([]*blas.Matrix, 0, end-start)
		for _, l := range all[start:end] {
			uids = append(uids, l.uid)
			mats = append(mats, l.feats)
		}
		rb, err := knn.NewRefBatch(e.dev, uids, mats, e.cfg.Precision,
			e.cfg.Scale, e.cfg.Algorithm != knn.RootSIFT)
		if err != nil {
			return 0, err
		}
		if e.cfg.PruneC > 0 {
			panel := make([]binq.Code, 0, (end-start)*e.cfg.RefFeatures)
			for _, l := range all[start:end] {
				panel = append(panel, l.codes...)
			}
			if err := rb.AttachCodes(panel, end-start); err != nil {
				rb.Free()
				return 0, err
			}
		}
		if err := e.commitBatchLocked(rb); err != nil {
			return 0, err
		}
	}
	return dead, nil
}
