package engine

import (
	"math/rand"
	"testing"

	"texid/internal/blas"
	"texid/internal/gpusim"
)

// fp16TestConfig is testConfig in FP16 with FP16 accumulation — the
// configuration that exercises the cached widened-operand panels on the
// reference batches.
func fp16TestConfig() Config {
	cfg := testConfig()
	cfg.Precision = gpusim.FP16
	cfg.Accum = blas.AccumFP16
	return cfg
}

// TestSearchFP16PanelStability: repeated identical FP16 searches — the
// first on cold panels, the rest served from warm ones — must return
// identical rankings, and the panels must stay pinned to the resident
// batches rather than being rebuilt per search.
func TestSearchFP16PanelStability(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	e, err := New(fp16TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*blas.Matrix, 9) // two full batches + one pending ref
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		if err := e.Add(i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	q := queryFor(rng, refs[4], 32, 0.02)
	first, err := e.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.BestID != 4 || !first.Accepted {
		t.Fatalf("FP16 search missed the enrolled reference: %+v", first)
	}
	for pass := 0; pass < 3; pass++ {
		rep, err := e.Search(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Ranked) != len(first.Ranked) {
			t.Fatalf("pass %d: ranked %d candidates, first search %d", pass, len(rep.Ranked), len(first.Ranked))
		}
		for i := range rep.Ranked {
			if rep.Ranked[i] != first.Ranked[i] {
				t.Fatalf("pass %d: ranking diverged at %d: %+v vs %+v — warm panel served different bits",
					pass, i, rep.Ranked[i], first.Ranked[i])
			}
		}
	}
}

// TestSearchFP16AfterUpdateAndCompact drives the index write paths that
// must invalidate or release cached panels: Update rebuilds a batch in
// place (stale panel floats would keep matching the old features), and
// Remove+Compact drops batches entirely and re-enrolls the survivors into
// new ones.
func TestSearchFP16AfterUpdateAndCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	e, err := New(fp16TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*blas.Matrix, 8)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		if err := e.Add(i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every panel.
	if _, err := e.Search(queryFor(rng, refs[2], 32, 0.02), nil); err != nil {
		t.Fatal(err)
	}

	// Update: the batch is rebuilt through HalfFromMatrixInto/concat, which
	// restamps the matrix generation; a search must see the new features.
	newRef := unitFeatures(rng, 16, 24)
	if err := e.Update(2, newRef, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Search(queryFor(rng, refs[2], 32, 0.02), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted && rep.BestID == 2 {
		t.Fatal("stale panel: old features still matched after Update")
	}
	rep, err = e.Search(queryFor(rng, newRef, 32, 0.02), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestID != 2 || !rep.Accepted {
		t.Fatalf("updated features not found under FP16 panels: %+v", rep)
	}

	// Remove + Compact: dropped batches release their panels; the
	// re-enrolled survivors get fresh ones and must still match — with the
	// same per-reference scores as before compaction, since each
	// reference's rounding chains are independent of batch grouping.
	q5 := queryFor(rng, refs[5], 32, 0.02)
	before, err := e.Search(q5, nil)
	if err != nil {
		t.Fatal(err)
	}
	scores := map[int]int{}
	for _, r := range before.Ranked {
		scores[r.RefID] = r.Score
	}
	if !e.Remove(0) {
		t.Fatal("Remove(0) failed")
	}
	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := e.Search(q5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.BestID != 5 || !after.Accepted {
		t.Fatalf("reference lost after FP16 compaction: %+v", after)
	}
	if len(after.Ranked) != len(before.Ranked)-1 {
		t.Fatalf("compacted index ranks %d candidates, want %d", len(after.Ranked), len(before.Ranked)-1)
	}
	for _, r := range after.Ranked {
		if want, ok := scores[r.RefID]; !ok || want != r.Score {
			t.Fatalf("score for ref %d changed across compaction: got %d, want %d (stale or missing panel)",
				r.RefID, r.Score, scores[r.RefID])
		}
	}
}
