package engine

import (
	"math/rand"
	"runtime"
	"testing"

	"texid/internal/blas"
)

// gomaxprocsVariants is the GOMAXPROCS sweep the determinism tests run
// under: serial, minimal parallelism, and everything the machine has.
func gomaxprocsVariants() []int {
	vs := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		vs = append(vs, n)
	}
	return vs
}

// searchFixture builds a small populated engine plus a query that matches
// one of the enrolled references.
func searchFixture(t *testing.T) (*Engine, *blas.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	cfg := testConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var target *blas.Matrix
	for id := 0; id < 6; id++ {
		feats := unitFeatures(rng, cfg.Dim, cfg.RefFeatures)
		if id == 3 {
			target = feats
		}
		if err := e.Add(id, feats, nil); err != nil {
			t.Fatal(err)
		}
	}
	return e, queryFor(rng, target, testConfig().QueryFeatures, 0.05)
}

// TestSearchIdenticalAcrossGOMAXPROCS verifies that the whole search path —
// staging, GEMM, fused top-2 scan, scoring, ranking — returns identical
// reports at any worker count.
func TestSearchIdenticalAcrossGOMAXPROCS(t *testing.T) {
	e, q := searchFixture(t)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var want *Report
	for _, procs := range gomaxprocsVariants() {
		runtime.GOMAXPROCS(procs)
		rep, err := e.Search(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rep
			continue
		}
		if rep.BestID != want.BestID || rep.Score != want.Score || rep.Accepted != want.Accepted {
			t.Fatalf("GOMAXPROCS=%d: decision (%d, %d, %v), want (%d, %d, %v)",
				procs, rep.BestID, rep.Score, rep.Accepted, want.BestID, want.Score, want.Accepted)
		}
		if len(rep.Ranked) != len(want.Ranked) {
			t.Fatalf("GOMAXPROCS=%d: %d ranked results, want %d", procs, len(rep.Ranked), len(want.Ranked))
		}
		for i, r := range rep.Ranked {
			if r != want.Ranked[i] {
				t.Fatalf("GOMAXPROCS=%d: ranked[%d] = %+v, want %+v", procs, i, r, want.Ranked[i])
			}
		}
	}
}

// TestSearchSteadyStateAllocs pins down the steady-state allocation budget
// of Search. After warm-up the knn scratch (distance matrix, top-2 slabs,
// staging buffers) is reused, so what remains is the per-search Report, the
// escaping Ranked slice, and the per-pair correspondence slices built by the
// ratio test — a small constant independent of batch count. The bound has
// headroom for ratio-test append growth but fails loudly if per-batch matrix
// or slab allocation is ever reintroduced (hundreds of allocs).
func TestSearchSteadyStateAllocs(t *testing.T) {
	e, q := searchFixture(t)
	if _, err := e.Search(q, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := e.Search(q, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 50 {
		t.Fatalf("steady-state Search does %.1f allocs/op, want <= 50", allocs)
	}
}
